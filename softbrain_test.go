package softbrain_test

import (
	"testing"

	"softbrain"
)

// TestPublicAPIDotProduct drives the whole system through the public
// facade only: graph building, compilation, program emission, execution
// and the power model.
func TestPublicAPIDotProduct(t *testing.T) {
	cfg := softbrain.DefaultConfig()
	m, err := softbrain.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}

	b := softbrain.NewGraph("dotprod")
	a := b.Input("A", 3)
	v := b.Input("B", 3)
	var prods []softbrain.Ref
	for i := 0; i < 3; i++ {
		prods = append(prods, b.N(softbrain.Mul(64), a.W(i), v.W(i)))
	}
	b.Output("C", b.ReduceTree(softbrain.Add(64), prods...))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	// The standalone compiler entry point also works.
	s, err := softbrain.Compile(cfg.Fabric, g)
	if err != nil {
		t.Fatal(err)
	}
	if s.Depth <= 0 {
		t.Error("schedule has no pipeline depth")
	}

	const n, aAddr, bAddr, rAddr = 24, 0x1000, 0x2000, 0x3000
	for i := uint64(0); i < n; i++ {
		m.Sys.Mem.WriteU64(aAddr+8*i, i)
		m.Sys.Mem.WriteU64(bAddr+8*i, i+1)
	}
	p := softbrain.NewProgram("dotprod")
	p.CompileAndConfigure(cfg.Fabric, g)
	p.Emit(softbrain.MemPort{Src: softbrain.Linear(aAddr, n*8), Dst: p.In("A")})
	p.Emit(softbrain.MemPort{Src: softbrain.Linear(bAddr, n*8), Dst: p.In("B")})
	p.Emit(softbrain.PortMem{Src: p.Out("C"), Dst: softbrain.Linear(rAddr, n/3*8)})
	p.Emit(softbrain.BarrierAll{})

	stats, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n/3; i++ {
		var want uint64
		for j := uint64(0); j < 3; j++ {
			k := 3*i + j
			want += k * (k + 1)
		}
		if got := m.Sys.Mem.ReadU64(rAddr + 8*i); got != want {
			t.Errorf("r[%d] = %d, want %d", i, got, want)
		}
	}
	model := softbrain.NewPowerModel(cfg)
	if mw := model.AveragePower(stats, 1); mw <= 0 || mw > model.UnitPeakPower() {
		t.Errorf("power %.1f mW out of range", mw)
	}
}

// TestPublicAPIGraphText round-trips a graph through the text format.
func TestPublicAPIGraphText(t *testing.T) {
	g, err := softbrain.ParseGraph(`
dfg f
input X 1
abs64 a X
output O a
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := softbrain.Compile(softbrain.NewFabric(4, 4), g); err != nil {
		t.Fatal(err)
	}
}
