// Command sddfg compiles a dataflow graph in the .dfg text format onto
// a CGRA fabric and reports the schedule: placement, routing, delay
// matching, vector-port mapping, pipeline depth and configuration size.
//
// Usage:
//
//	sddfg path/to/graph.dfg
//	sddfg -fabric dnn -v graph.dfg
//	echo 'dfg f ...' | sddfg -
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"softbrain/internal/cgra"
	"softbrain/internal/dfg"
	"softbrain/internal/sched"
)

func main() {
	fabricName := flag.String("fabric", "broad", "fabric to target: broad or dnn")
	verbose := flag.Bool("v", false, "print per-connection routes")
	dot := flag.Bool("dot", false, "emit the DFG in Graphviz format and exit")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sddfg [-fabric broad|dnn] [-v] <file.dfg | ->")
		os.Exit(2)
	}

	var src io.Reader
	if flag.Arg(0) == "-" {
		src = os.Stdin
	} else {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		src = f
	}
	g, err := dfg.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	if *dot {
		fmt.Print(g.Dot())
		return
	}

	var fabric *cgra.Fabric
	switch *fabricName {
	case "broad":
		fabric = cgra.BroadFabric()
	case "dnn":
		fabric = cgra.DNNFabric()
	default:
		log.Fatalf("unknown fabric %q (want broad or dnn)", *fabricName)
	}

	s, err := sched.Schedule(fabric, g)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("dfg %s: %d instructions, %d inputs, %d outputs\n",
		g.Name, len(g.Nodes), len(g.Ins), len(g.Outs))
	fmt.Printf("mapped onto %dx%d fabric\n", fabric.Rows, fabric.Cols)
	fmt.Printf("pipeline depth: %d cycles, config bitstream: %d bytes\n\n", s.Depth, s.ConfigBytes())

	fmt.Println("placement (row,col: node):")
	for _, n := range g.Nodes {
		r, c := fabric.Pos(s.Place[n.ID])
		name := n.Name
		if name == "" {
			name = fmt.Sprintf("n%d", n.ID)
		}
		fmt.Printf("  (%d,%d): %s = %v, fires at cycle %d\n", r, c, name, n.Op, s.NodeFire[n.ID])
	}
	fmt.Println("\nport mapping:")
	for i, in := range g.Ins {
		fmt.Printf("  input %-8s -> hardware port %d (width %d words)\n",
			in.Name, s.InPortMap[i], fabric.InPorts[s.InPortMap[i]].Width)
	}
	for i, out := range g.Outs {
		fmt.Printf("  output %-7s -> hardware port %d, arrives at cycle %d\n",
			out.Name, s.OutPortMap[i], s.OutArrive[i])
	}
	if *verbose {
		fmt.Println("\nroutes (PE path, +delay FIFO setting):")
		for _, n := range g.Nodes {
			for i, c := range s.Operand[n.ID] {
				if c.Path == nil {
					continue
				}
				fmt.Printf("  %v -> node %d arg %d: %v +%d\n", c.Val, n.ID, i, c.Path, c.Delay)
			}
		}
		for p := range g.Outs {
			for w, c := range s.OutConn[p] {
				fmt.Printf("  %v -> output %s word %d: %v +%d\n", c.Val, g.Outs[p].Name, w, c.Path, c.Delay)
			}
		}
	}
}
