// sdserve runs the simulator as a hardened HTTP service: bounded
// worker pool, admission control with load shedding, per-request
// wall-clock deadlines, content-addressed result caching, and
// graceful drain on SIGTERM.
//
//	sdserve                      # serve on :8475 until SIGTERM/SIGINT
//	sdserve -addr :9000          # another port
//	sdserve -pprof               # also mount /debug/pprof/
//	sdserve -smoke               # in-process end-to-end self test (CI gate)
//	sdserve -loadgen             # in-process load generation -> BENCH_serve.json
//
// Endpoints: POST /v1/run (submission; ?stream=1 for SSE progress),
// GET /v1/runs/{id}/events (attach to an in-flight run), GET /healthz,
// /readyz, /statusz (live run introspection), /metrics (Prometheus
// text exposition). Every request is logged structured to stderr with
// a request ID joinable to its run's events.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"softbrain/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8475", "listen address")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = host cores)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 2x workers)")
	cacheN := flag.Int("cache", 256, "result cache entries (-1 disables)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request wall-clock budget")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "ceiling on client-requested budgets")
	grace := flag.Duration("drain-grace", 15*time.Second, "how long SIGTERM lets in-flight runs finish")
	progress := flag.Duration("progress-every", 250*time.Millisecond, "heartbeat interval for streamed progress events")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	logLevel := flag.String("log-level", "info", "request log level (debug logs every progress heartbeat)")
	smoke := flag.Bool("smoke", false, "run the in-process self test and exit")

	loadgen := flag.Bool("loadgen", false, "run in-process load generation and exit")
	lgClients := flag.Int("loadgen-clients", 8, "with -loadgen: concurrent clients")
	lgRequests := flag.Int("loadgen-requests", 400, "with -loadgen: total requests")
	lgChaos := flag.Int("loadgen-chaos", 9, "with -loadgen: abandon every Nth request mid-run (0 = never)")
	lgStream := flag.Int("loadgen-stream", 4, "with -loadgen: stream every Nth request over SSE (0 = never)")
	lgOut := flag.String("out", "BENCH_serve.json", "with -loadgen: output path")
	flag.Parse()

	opts := serve.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheN,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		DrainGrace:     *grace,
		ProgressEvery:  *progress,
		EnablePprof:    *pprofFlag,
	}

	switch {
	case *smoke:
		if err := serve.SelfTest(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "sdserve:", err)
			os.Exit(1)
		}
	case *loadgen:
		if err := runLoadgen(opts, *lgClients, *lgRequests, *lgChaos, *lgStream, *lgOut); err != nil {
			fmt.Fprintln(os.Stderr, "sdserve:", err)
			os.Exit(1)
		}
	default:
		var lvl slog.Level
		if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
			fmt.Fprintf(os.Stderr, "sdserve: bad -log-level %q: %v\n", *logLevel, err)
			os.Exit(2)
		}
		opts.Logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
		if err := run(*addr, opts); err != nil {
			fmt.Fprintln(os.Stderr, "sdserve:", err)
			os.Exit(1)
		}
	}
}

// run serves until SIGTERM or SIGINT, then drains: admission stops
// (fresh submissions get 503 + Retry-After), in-flight and queued runs
// get the grace window to finish, stragglers are canceled with a typed
// draining error, and the final counters are flushed to stderr.
func run(addr string, opts serve.Options) error {
	s := serve.New(opts)
	hs := &http.Server{Addr: addr, Handler: s}

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "sdserve: listening on %s\n", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		return err
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "sdserve: %v: draining\n", got)
	}

	s.Drain() // every accepted run responds before this returns
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	hs.Shutdown(ctx) // best effort; idle keep-alive conns may linger
	hs.Close()

	c := s.Counters()
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sdserve: final counters:\n%s\n", data)
	if c.Panics != 0 {
		return fmt.Errorf("%d panics were contained during this run", c.Panics)
	}
	return nil
}

// runLoadgen starts an in-process server on a loopback port, drives it
// with the shared load generator, and writes the throughput/latency
// summary published next to BENCH_sim.json.
func runLoadgen(opts serve.Options, clients, requests, chaos, stream int, out string) error {
	s := serve.New(opts)
	hs := &http.Server{Handler: s}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go hs.Serve(ln)
	defer hs.Close()
	defer s.Drain()

	cfg := serve.LoadConfig{
		Clients:  clients,
		Requests: requests,
		Workloads: []string{
			"gemm", "fft", "spmv-crs", "stencil2d", "gemm", "lut", "bfs", "gemm",
		},
		Seed:        1,
		CancelEvery: chaos,
		CancelAfter: 2 * time.Millisecond,
		StreamEvery: stream,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	res, err := serve.RunLoad(ctx, "http://"+ln.Addr().String(), cfg)
	if err != nil {
		return err
	}

	report := struct {
		Config   serve.LoadConfig  `json:"config"`
		Result   *serve.LoadResult `json:"result"`
		Counters serve.Counters    `json:"server_counters"`
	}{cfg, res, s.Counters()}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Printf("sdserve loadgen: %d clients, %d requests (chaos every %d)\n", clients, requests, chaos)
	fmt.Printf("  ok %d (cached %d, deduped %d)  shed %d  canceled %d  failed %d  retries %d\n",
		res.OK, res.CacheHits, res.Deduped, res.Shed, res.Canceled, res.Failed, res.Retries)
	fmt.Printf("  %.1f sims/sec   p50 %v   p90 %v   p99 %v\n", res.SimsPerSec, res.P50, res.P90, res.P99)
	if res.StreamOK > 0 {
		fmt.Printf("  streamed: ok %d  progress frames %d  p50 %v  p99 %v\n",
			res.StreamOK, res.StreamProgress, res.StreamP50, res.StreamP99)
	}
	fmt.Printf("  wrote %s\n", out)
	if c := s.Counters(); c.Panics != 0 {
		return fmt.Errorf("%d panics were contained during load generation", c.Panics)
	}
	return nil
}
