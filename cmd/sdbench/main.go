// Command sdbench regenerates the paper's evaluation artifacts: Table 3
// (area and power breakdown), Figure 11 (DNN speedups), Table 4
// (workload characterization), and Figures 12-15 (MachSuite vs
// iso-performance ASICs).
//
// Usage:
//
//	sdbench              # everything
//	sdbench -table 3     # one table
//	sdbench -fig 11      # one figure (12-15 run the same study)
//	sdbench -fix         # barrier-elimination study (docs/LINT.md)
//	sdbench -json        # simulator host-performance study -> BENCH_sim.json
//	sdbench -json -smoke # CI smoke slice, checked against the goldens
//	sdbench -json -progress 2s # heartbeat lines to stderr while it runs
//	sdbench -timeout 10m # bound the whole run by wall clock
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"softbrain/internal/bench"
	"softbrain/internal/core"
)

func main() {
	table := flag.Int("table", 0, "print only this table (3 or 4)")
	fig := flag.Int("fig", 0, "print only this figure (11-15)")
	ablate := flag.Bool("ablate", false, "run the microarchitecture ablation study")
	fixStudy := flag.Bool("fix", false, "run the barrier synthesis/elimination study")
	jsonOut := flag.Bool("json", false, "measure simulator host performance and write JSON")
	smoke := flag.Bool("smoke", false, "with -json: only the CI smoke slice, checked against -goldens")
	out := flag.String("out", "BENCH_sim.json", "with -json: output path")
	goldens := flag.String("goldens", "scripts/bench_goldens.json", "with -json -smoke: golden cycle counts")
	updateGoldens := flag.Bool("update-goldens", false, "with -json: rewrite the goldens from this run")
	ratchet := flag.String("ratchet", "", "with -json: committed BENCH_sim.json to ratchet ns/cycle against (fail on geomean regression past bench.PerfTolerance)")
	progress := flag.Duration("progress", 0, "with -json: print a heartbeat line per workload to stderr every interval, e.g. 2s (0 = off; heartbeats ride the timed runs, so host timings include their cost)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole run, e.g. 10m (0 = none; the cycle watchdog still applies)")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, *timeout,
			fmt.Errorf("sdbench: -timeout %v exceeded", *timeout))
		defer cancel()
	}

	if *jsonOut {
		if err := runSimBench(ctx, *smoke, *out, *goldens, *updateGoldens, *ratchet, *progress); err != nil {
			fail(err)
		}
		return
	}
	if *ablate {
		if err := printAblations(ctx); err != nil {
			fail(err)
		}
		return
	}
	if *fixStudy {
		if err := printFixStudy(ctx); err != nil {
			fail(err)
		}
		return
	}
	all := *table == 0 && *fig == 0
	if all || *table == 3 {
		printTable3()
	}
	if all || *fig == 11 {
		if err := printFig11(ctx); err != nil {
			fail(err)
		}
	}
	if all || *table == 4 {
		printTable4()
	}
	if all || (*fig >= 12 && *fig <= 15) {
		if err := printMachSuite(ctx, *fig); err != nil {
			fail(err)
		}
	}
}

// fail reports an execution error and exits. A wall-clock cancellation
// (-timeout) arrives as a core.CanceledError; print it on one line
// rather than the full machine-state rendering.
func fail(err error) {
	var ce *core.CanceledError
	if errors.As(err, &ce) {
		fmt.Fprintf(os.Stderr, "sdbench: %v\n", err)
		os.Exit(1)
	}
	log.Fatal(err)
}

// runSimBench measures simulated cycles and host wall time per workload
// (per-cycle ticking vs the event-driven scheduler), writes the JSON
// artifact, and — for the smoke slice — fails if simulated cycle counts
// drift from the committed goldens. With -ratchet it also fails if the
// geomean of the per-workload ns/cycle ratios against the committed
// BENCH_sim.json regressed more than bench.PerfTolerance.
func runSimBench(ctx context.Context, smoke bool, out, goldens string, update bool, ratchet string, progress time.Duration) error {
	var hb func(string, core.ProgressReport)
	if progress > 0 {
		hb = func(workload string, r core.ProgressReport) {
			fmt.Fprintf(os.Stderr, "sdbench: %s: %s\n", workload, r.Line())
		}
	}
	rows, err := bench.SimBenchHeartbeatContext(ctx, smoke, progress, hb)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "workload\tunits\tcycles\twall ms (no skip)\twall ms\tns/cycle\tspeedup\tticks/cycle\tspans")
	for _, r := range rows {
		if r.Workload == bench.GeomeanWorkload {
			fmt.Fprintf(w, "%s\t\t\t\t\t%.1f\t%.2fx\t\t\n", r.Workload, r.NsPerCycle, r.Speedup)
			continue
		}
		spans, ticksPerCycle := uint64(0), 0.0
		if r.Sched != nil {
			spans, ticksPerCycle = r.Sched.Spans, r.Sched.TicksPerCycle
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%.1f\t%.1f\t%.1f\t%.2fx\t%.2f\t%d\n",
			r.Workload, r.Units, r.Cycles,
			float64(r.WallNsNoSkip)/1e6, float64(r.WallNs)/1e6,
			r.NsPerCycle, r.Speedup, ticksPerCycle, spans)
	}
	w.Flush()
	if err := bench.WriteSimJSON(rows, out); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	if update {
		if err := bench.UpdateSimGoldens(rows, goldens); err != nil {
			return err
		}
		fmt.Printf("updated %s\n", goldens)
		return nil
	}
	if smoke {
		if err := bench.CheckSimGoldens(rows, goldens); err != nil {
			return err
		}
	}
	if ratchet != "" {
		if err := bench.CheckSimPerf(rows, ratchet, bench.PerfTolerance); err != nil {
			return err
		}
		fmt.Printf("host-performance ratchet ok (geomean within %.0f%% of %s)\n", 100*bench.PerfTolerance, ratchet)
	}
	return nil
}

func printAblations(ctx context.Context) error {
	fmt.Println("Ablation study: warm-run cycles with features disabled")
	rows, err := bench.AblationsContext(ctx)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "workload\tbaseline\t-all-in-flight\t-dispatch-window\t-balance\twindow=2\thalf-depth ports\tcold base\tcold -inflight")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r.Workload, r.Baseline, r.NoAllInFlight, r.InOrderIssue,
			r.NoBalanceUnit, r.SmallWindow, r.ShallowPorts,
			r.ColdBaseline, r.ColdNoAllInFlight)
	}
	w.Flush()
	return nil
}

func printFixStudy(ctx context.Context) error {
	fmt.Println("Barrier study: cycles as shipped, fully serialized, and after sdfix;")
	fmt.Println("then placement: latest-legal baseline vs profile-guided cost-aware hoisting")
	rows, err := bench.FixStudyContext(ctx)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "workload\tbarriers\tserialized\tfixed\tcycles\tserialized\tfixed\trecovered\thoists\tlatest\thoisted\tdrain\thoisted\tdelta")
	for _, r := range rows {
		rec := 0.0
		if r.SerializedCy > r.FixedCy && r.SerializedCy > r.ShippedCy {
			rec = 100 * float64(r.SerializedCy-r.FixedCy) / float64(r.SerializedCy-r.ShippedCy)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%.1f%%\t%d\t%d\t%d\t%d\t%d\t%+d\n",
			r.Workload, r.Shipped, r.Serialized, r.Fixed,
			r.ShippedCy, r.SerializedCy, r.FixedCy, rec,
			r.Hoists, r.LatestCy, r.HoistedCy,
			r.LatestDrain, r.HoistedDrain,
			int64(r.HoistedDrain)-int64(r.LatestDrain))
	}
	w.Flush()
	return nil
}

func tw() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func printTable3() {
	r := bench.Table3()
	fmt.Println("Table 3: Area and Power Breakdown / Comparison (55 nm)")
	w := tw()
	fmt.Fprintln(w, "component\tarea (mm^2)\tpower (mW)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%s\t%.2f\t%.1f\n", row.Component, row.AreaMM2, row.PowerMW)
	}
	fmt.Fprintf(w, "1 Softbrain Total\t%.2f\t%.1f\n", r.UnitArea, r.UnitPower)
	fmt.Fprintf(w, "8 Softbrain Units\t%.2f\t%.1f\n", r.TotalArea, r.TotalPower)
	fmt.Fprintf(w, "DianNao\t%.2f\t%.1f\n", r.DianNaoArea, r.DianNaoPower)
	fmt.Fprintf(w, "Softbrain/DianNao Overhead\t%.2fx\t%.2fx\n", r.AreaOverhead, r.PowerOverhead)
	w.Flush()
	fmt.Println()
}

func printFig11(ctx context.Context) error {
	fmt.Println("Figure 11: Performance on DNN Workloads (speedup vs 1-thread CPU)")
	rows, err := bench.Fig11Context(ctx)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "workload\tGPU\tDianNao\tSoftbrain\tSoftbrain cycles\tpower (mW)")
	for _, r := range rows {
		if r.SoftbrainCycles == 0 {
			fmt.Fprintf(w, "%s\t%.1fx\t%.1fx\t%.1fx\t\t\n", r.Workload, r.GPU, r.DianNao, r.Softbrain)
			continue
		}
		fmt.Fprintf(w, "%s\t%.1fx\t%.1fx\t%.1fx\t%d\t%.1f\n",
			r.Workload, r.GPU, r.DianNao, r.Softbrain, r.SoftbrainCycles, r.SoftbrainPowerMW)
	}
	w.Flush()
	fmt.Println()
	return nil
}

func printTable4() {
	fmt.Println("Table 4: Workload Characterization")
	w := tw()
	fmt.Fprintln(w, "workload\tstream patterns\tdatapath")
	for _, r := range bench.Table4() {
		if r.Unsuitable {
			continue
		}
		fmt.Fprintf(w, "%s\t%s\t%s\n", r.Workload, r.Patterns, r.Datapath)
	}
	w.Flush()
	fmt.Println("\nUnsuitable codes:")
	w = tw()
	for _, r := range bench.Table4() {
		if r.Unsuitable {
			fmt.Fprintf(w, "%s\t%s\n", r.Workload, r.Reason)
		}
	}
	w.Flush()
	fmt.Println()
}

func printMachSuite(ctx context.Context, fig int) error {
	rows, err := bench.MachSuiteStudyContext(ctx)
	if err != nil {
		return err
	}
	show := func(n int) bool { return fig == 0 || fig == n }
	if show(12) {
		fmt.Println("Figure 12: Speedup vs OOO4 baseline")
		w := tw()
		fmt.Fprintln(w, "workload\tSoftbrain\tASIC")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.2fx\t%.2fx\n", r.Workload, r.SoftbrainSpeedup, r.ASICSpeedup)
		}
		w.Flush()
		fmt.Println()
	}
	if show(13) {
		fmt.Println("Figure 13: Power efficiency vs OOO4 baseline")
		w := tw()
		fmt.Fprintln(w, "workload\tSoftbrain\tASIC")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.1fx\t%.1fx\n", r.Workload, r.SoftbrainPowerEff, r.ASICPowerEff)
		}
		w.Flush()
		fmt.Println()
	}
	if show(14) {
		fmt.Println("Figure 14: Energy efficiency vs OOO4 baseline")
		w := tw()
		fmt.Fprintln(w, "workload\tSoftbrain\tASIC")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.1fx\t%.1fx\n", r.Workload, r.SoftbrainEnergyEff, r.ASICEnergyEff)
		}
		w.Flush()
		fmt.Println()
	}
	if show(15) {
		fmt.Println("Figure 15: ASIC area relative to Softbrain")
		w := tw()
		fmt.Fprintln(w, "workload\tASIC/Softbrain area\tASIC design")
		for _, r := range rows {
			if r.Workload == "GM" {
				fmt.Fprintf(w, "%s\t%.3fx\t\n", r.Workload, r.ASICAreaRel)
				continue
			}
			fmt.Fprintf(w, "%s\t%.3fx\tunroll=%d pipelined=%v %.3f mm^2\n",
				r.Workload, r.ASICAreaRel, r.ASICDesign.Unroll, r.ASICDesign.Pipelined, r.ASICDesign.AreaMM2)
		}
		w.Flush()
		sb := bench.Table3().UnitArea
		fmt.Printf("\nAll eight ASICs together: %.2f mm^2 = %.2fx one Softbrain (%.2f mm^2)\n\n",
			bench.TotalASICArea(rows), bench.TotalASICArea(rows)/sb, sb)
	}
	return nil
}
