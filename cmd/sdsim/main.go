// Command sdsim runs one workload on the Softbrain simulator, verifies
// its output against the golden model, and prints statistics and power.
//
// Usage:
//
//	sdsim -list
//	sdsim -w gemm -scale 2
//	sdsim -w conv3p            # DNN layers run on the 8-unit cluster
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"softbrain/internal/core"
	"softbrain/internal/power"
	"softbrain/internal/workloads"
	"softbrain/internal/workloads/dnn"
	"softbrain/internal/workloads/ext"
	"softbrain/internal/workloads/machsuite"
)

func main() {
	name := flag.String("w", "", "workload name (see -list)")
	scale := flag.Int("scale", 1, "problem scale for MachSuite workloads")
	warm := flag.Bool("warm", false, "measure a cache-warm (second) run")
	list := flag.Bool("list", false, "list available workloads")
	doTrace := flag.Bool("trace", false, "print an execution timeline (single-unit workloads)")
	flag.Parse()

	if *list || *name == "" {
		fmt.Println("MachSuite workloads (single unit, broadly provisioned):")
		for _, e := range machsuite.All() {
			fmt.Printf("  %-14s %s / %s\n", e.Name, e.Patterns, e.Datapath)
		}
		fmt.Println("Extension workloads (the paper's footnote-3 codes):")
		for _, e := range ext.All() {
			fmt.Printf("  %-14s %s / %s\n", e.Name, e.Patterns, e.Datapath)
		}
		fmt.Println("DNN layers (8-unit DNN-provisioned cluster):")
		for _, l := range dnn.Layers() {
			fmt.Printf("  %s", l.Name)
		}
		fmt.Println()
		return
	}

	inst, cfg, units, err := build(*name, *scale)
	if err != nil {
		log.Fatal(err)
	}
	if *doTrace && units == 1 {
		if err := runTraced(inst, cfg); err != nil {
			log.Fatal(err)
		}
		return
	}
	run := inst.Run
	if *warm {
		run = inst.RunWarm
	}
	stats, err := run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	model := power.NewModel(cfg)
	fmt.Printf("%s: verified OK on %d unit(s)\n\n", inst.Name, units)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "cycles\t%d\n", stats.Cycles)
	fmt.Fprintf(w, "dataflow instances\t%d\n", stats.Instances)
	fmt.Fprintf(w, "functional-unit ops\t%d\n", stats.FUOps)
	fmt.Fprintf(w, "stream commands\t%d\n", stats.Commands)
	fmt.Fprintf(w, "control-core instructions\t%d\n", stats.CoreInstrs)
	fmt.Fprintf(w, "memory read / written\t%d / %d bytes\n", stats.MemBytesRead, stats.MemBytesWritten)
	fmt.Fprintf(w, "cache hits / misses\t%d / %d\n", stats.CacheHits, stats.CacheMisses)
	fmt.Fprintf(w, "scratchpad read / written\t%d / %d bytes\n", stats.ScratchBytesRead, stats.ScratchBytesWrit)
	fmt.Fprintf(w, "recurrence traffic\t%d bytes\n", stats.RecurrenceBytes)
	fmt.Fprintf(w, "average power\t%.1f mW\n", model.AveragePower(stats, units))
	fmt.Fprintf(w, "energy\t%.1f nJ\n", model.EnergyNJ(stats, units))
	w.Flush()
}

// runTraced executes a single-unit instance with the timeline recorder
// attached and prints the Figure 4(b)-style Gantt chart.
func runTraced(inst *workloads.Instance, cfg core.Config) error {
	m, err := core.NewMachine(cfg)
	if err != nil {
		return err
	}
	if inst.Init != nil {
		inst.Init(m.Sys.Mem)
	}
	m.EnableTrace(4096)
	stats, err := m.Run(inst.Progs[0])
	if err != nil {
		return err
	}
	if inst.Check != nil {
		if err := inst.Check(m.Sys.Mem); err != nil {
			return err
		}
	}
	fmt.Printf("%s: verified OK, %d cycles\n\n", inst.Name, stats.Cycles)
	fmt.Print(m.Trace().Gantt(100))
	return nil
}

func build(name string, scale int) (*workloads.Instance, core.Config, int, error) {
	if l, err := dnn.Find(name); err == nil {
		cfg := dnn.Config()
		inst, err := l.Build(cfg, dnn.Units)
		return inst, cfg, dnn.Units, err
	}
	cfg := core.DefaultConfig()
	if e, err := machsuite.Find(name); err == nil {
		inst, err := e.Build(cfg, scale)
		return inst, cfg, 1, err
	}
	e, err := ext.Find(name)
	if err != nil {
		return nil, core.Config{}, 0, fmt.Errorf("unknown workload %q (see -list)", name)
	}
	inst, err := e.Build(cfg, scale)
	return inst, cfg, 1, err
}
