// Command sdsim runs one workload on the Softbrain simulator, verifies
// its output against the golden model, and prints statistics and power.
//
// Usage:
//
//	sdsim -list
//	sdsim -w gemm -scale 2
//	sdsim -w conv3p            # DNN layers run on the 8-unit cluster
//	sdsim -w gemm -faults delay:7   # run under a seeded fault profile
//	sdsim -w gemm -metrics out.json            # stall attribution + bandwidth table
//	sdsim -w gemm -trace-out out.trace.json    # Chrome/Perfetto trace
//	sdsim -w gemm -progress 2s                 # heartbeat to stderr
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"softbrain/internal/core"
	"softbrain/internal/faults"
	"softbrain/internal/obs"
	"softbrain/internal/power"
	"softbrain/internal/sim"
	"softbrain/internal/workloads"
	"softbrain/internal/workloads/dnn"
	"softbrain/internal/workloads/ext"
	"softbrain/internal/workloads/machsuite"
)

func main() {
	name := flag.String("w", "", "workload name (see -list)")
	scale := flag.Int("scale", 1, "problem scale for MachSuite workloads")
	warm := flag.Bool("warm", false, "measure a cache-warm (second) run")
	list := flag.Bool("list", false, "list available workloads")
	doTrace := flag.Bool("trace", false, "print an execution timeline (single-unit workloads)")
	metricsPath := flag.String("metrics", "", "write the metrics dump (stall attribution, counters, per-stream bandwidth) as JSON to this file")
	traceOut := flag.String("trace-out", "", "write a Chrome/Perfetto trace-event JSON file (load in ui.perfetto.dev)")
	progress := flag.Duration("progress", 0, "print a heartbeat (cycle, commands, stall mix) to stderr every interval, e.g. 2s")
	faultSpec := flag.String("faults", "", "fault profile \"name\" or \"name:seed\" ("+strings.Join(faults.Profiles(), ", ")+")")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the run, e.g. 30s (0 = none; the cycle watchdog still applies)")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, *timeout,
			fmt.Errorf("sdsim: -timeout %v exceeded", *timeout))
		defer cancel()
	}

	if *list || *name == "" {
		fmt.Println("MachSuite workloads (single unit, broadly provisioned):")
		for _, e := range machsuite.All() {
			fmt.Printf("  %-14s %s / %s\n", e.Name, e.Patterns, e.Datapath)
		}
		fmt.Println("Extension workloads (the paper's footnote-3 codes):")
		for _, e := range ext.All() {
			fmt.Printf("  %-14s %s / %s\n", e.Name, e.Patterns, e.Datapath)
		}
		fmt.Println("DNN layers (8-unit DNN-provisioned cluster):")
		for _, l := range dnn.Layers() {
			fmt.Printf("  %s", l.Name)
		}
		fmt.Println()
		return
	}

	inst, cfg, units, err := build(*name, *scale)
	if err != nil {
		log.Fatal(err)
	}
	if *faultSpec != "" {
		fc, err := faults.ParseProfile(*faultSpec)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Faults = &fc
		runFaulted(ctx, inst, cfg, units, *warm)
		return
	}
	if *metricsPath != "" || *traceOut != "" || *progress > 0 {
		if err := runObserved(ctx, inst, cfg, units, *warm, *metricsPath, *traceOut, *progress); err != nil {
			fail(err)
		}
		return
	}
	if *doTrace && units == 1 {
		if err := runTraced(ctx, inst, cfg); err != nil {
			fail(err)
		}
		return
	}
	run := inst.RunContext
	if *warm {
		run = inst.RunWarmContext
	}
	stats, err := run(ctx, cfg)
	if err != nil {
		fail(err)
	}

	model := power.NewModel(cfg)
	fmt.Printf("%s: verified OK on %d unit(s)\n\n", inst.Name, units)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "cycles\t%d\n", stats.Cycles)
	fmt.Fprintf(w, "dataflow instances\t%d\n", stats.Instances)
	fmt.Fprintf(w, "functional-unit ops\t%d\n", stats.FUOps)
	fmt.Fprintf(w, "stream commands\t%d\n", stats.Commands)
	fmt.Fprintf(w, "control-core instructions\t%d\n", stats.CoreInstrs)
	fmt.Fprintf(w, "memory read / written\t%d / %d bytes\n", stats.MemBytesRead, stats.MemBytesWritten)
	fmt.Fprintf(w, "cache hits / misses\t%d / %d\n", stats.CacheHits, stats.CacheMisses)
	fmt.Fprintf(w, "scratchpad read / written\t%d / %d bytes\n", stats.ScratchBytesRead, stats.ScratchBytesWrit)
	fmt.Fprintf(w, "recurrence traffic\t%d bytes\n", stats.RecurrenceBytes)
	fmt.Fprintf(w, "average power\t%.1f mW\n", model.AveragePower(stats, units))
	fmt.Fprintf(w, "energy\t%.1f nJ\n", model.EnergyNJ(stats, units))
	w.Flush()
}

// fail prints an execution error and exits. Hangs and recovered
// invariant panics arrive as structured errors whose rendering carries
// the classification, culprit stream/port, wait chain, and machine
// state, so they go to stderr verbatim rather than through log's
// single-line prefix.
func fail(err error) {
	var ce *core.CanceledError
	if errors.As(err, &ce) {
		fmt.Fprintf(os.Stderr, "sdsim: %v\n", err)
		os.Exit(1)
	}
	var de *core.DeadlockError
	var me *core.MachineError
	if errors.As(err, &de) || errors.As(err, &me) {
		fmt.Fprintf(os.Stderr, "sdsim: execution failed\n\n%v\n", err)
		os.Exit(1)
	}
	log.Fatal(err)
}

// runFaulted executes the instance under a fault profile, mirroring
// Instance.Run but keeping the cluster so the delivered-fault counts
// can be reported. Corrupting profiles may legitimately end in a
// verification mismatch or a classified hang; both are reported as
// structured errors, never a panic.
func runFaulted(ctx context.Context, inst *workloads.Instance, cfg core.Config, units int, warm bool) {
	cl, err := core.NewCluster(cfg, inst.Units())
	if err != nil {
		log.Fatal(err)
	}
	if inst.Init != nil {
		inst.Init(cl.Mem)
	}
	runs := 1
	if warm {
		runs = 2
	}
	var stats *core.Stats
	for i := 0; i < runs; i++ {
		if stats, err = cl.RunContext(ctx, inst.Progs); err != nil {
			fmt.Fprintf(os.Stderr, "sdsim: faults delivered: %v\n", cl.FaultStats())
			fail(err)
		}
	}
	verdict := "verified OK"
	if inst.Check != nil {
		if cerr := inst.Check(cl.Mem); cerr != nil {
			if !cfg.Faults.Corrupting() {
				fmt.Fprintf(os.Stderr, "sdsim: faults delivered: %v\n", cl.FaultStats())
				log.Fatalf("non-corrupting faults changed the output: %v", cerr)
			}
			verdict = fmt.Sprintf("output corrupted (expected under bitflips): %v", cerr)
		}
	}
	fmt.Printf("%s: %s on %d unit(s) under faults\n", inst.Name, verdict, units)
	fmt.Printf("cycles: %d\n", stats.Cycles)
	fmt.Printf("faults delivered: %v\n", cl.FaultStats())
}

// runObserved executes the instance with the observability layer
// attached: the metrics registry (stall attribution, counters, stream
// bandwidth), optionally the span recorder feeding the Perfetto
// export, and optionally the heartbeat. Mirrors Instance.Run but keeps
// the cluster so the collected metrics can be exported.
func runObserved(ctx context.Context, inst *workloads.Instance, cfg core.Config, units int, warm bool,
	metricsPath, tracePath string, progress time.Duration) error {
	cl, err := core.NewCluster(cfg, inst.Units())
	if err != nil {
		return err
	}
	cl.EnableMetrics(obs.Options{Slices: obs.DefaultSlices})
	if tracePath != "" {
		for _, u := range cl.Units {
			u.EnableTrace(4096)
		}
	}
	if progress > 0 {
		cl.SetHeartbeat(progress, func(r core.ProgressReport) {
			fmt.Fprintf(os.Stderr, "sdsim: %s\n", r.Line())
		})
	}
	if inst.Init != nil {
		inst.Init(cl.Mem)
	}
	runs := 1
	if warm {
		runs = 2
	}
	var stats *core.Stats
	for i := 0; i < runs; i++ {
		if stats, err = cl.RunContext(ctx, inst.Progs); err != nil {
			return err
		}
	}
	if inst.Check != nil {
		if err := inst.Check(cl.Mem); err != nil {
			return err
		}
	}
	dump := cl.MetricsDump()
	if err := obs.CheckConservation(dump); err != nil {
		return fmt.Errorf("stall attribution broke conservation: %w", err)
	}
	fmt.Printf("%s: verified OK on %d unit(s), %d cycles\n\n", inst.Name, units, stats.Cycles)
	peak := float64(cfg.Mem.LineBytes) / float64(cfg.Mem.MissInterval)
	fmt.Print(obs.BandwidthTable(dump, peak))
	// The wake-set scheduler's own counters come from a separate run:
	// attaching the metrics registry forces per-cycle stall attribution,
	// which disables span retirement, so the observed run above cannot
	// show what the event-driven scheduler does by default. The extra
	// run doubles as an equivalence check on its cycle count.
	if metricsPath != "" {
		sStats, sched, tickBy, err := inst.RunSchedContext(ctx, cfg)
		if err != nil {
			return err
		}
		if !warm && sStats.Cycles != stats.Cycles {
			return fmt.Errorf("event-driven run changed the cycle count (%d -> %d)", stats.Cycles, sStats.Cycles)
		}
		printSched(sched, tickBy, units)
	}
	if metricsPath != "" {
		data, err := dump.MarshalIndent()
		if err != nil {
			return err
		}
		if err := os.WriteFile(metricsPath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("\nmetrics dump written to %s\n", metricsPath)
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := obs.WriteTrace(f, cl.TraceInputs(stats.Cycles)); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (load in ui.perfetto.dev or chrome://tracing)\n", tracePath)
	}
	return nil
}

// printSched renders the wake-set scheduler counters of one full
// event-driven run: how many cycles were stepped vs jumped, how many
// component ticks the wake sets elided, and what span retirement
// batched. These are host-performance diagnostics, deliberately kept
// out of the obs metrics dump (dumps are byte-compared across
// scheduling modes).
func printSched(s sim.SchedStats, by map[string]uint64, units int) {
	fmt.Printf("\nwake-set scheduler (event-driven run):\n")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	total := s.Cycles + s.Skipped
	fmt.Fprintf(w, "cycles stepped / jumped\t%d / %d (%d jumps)\n", s.Cycles, s.Skipped, s.Jumps)
	if total > 0 {
		fmt.Fprintf(w, "component ticks\t%d (%.2f per cycle, of %d registered)\n",
			s.CompTicks, float64(s.CompTicks)/float64(total), 6*units)
	}
	fmt.Fprintf(w, "component sleeps\t%d\n", s.CompSleeps)
	fmt.Fprintf(w, "signal wakes\t%d\n", s.SigWakes)
	fmt.Fprintf(w, "spans retired\t%d, covering %d cycles\n", s.Spans, s.SpanCycles)
	names := []string{"cgra", "mse", "sse", "rse", "dispatch", "core"}
	for _, n := range names {
		fmt.Fprintf(w, "ticks: %s\t%d\n", n, by[n])
	}
	w.Flush()
	if s.Spans > 0 {
		fmt.Printf("span lengths (log2 buckets):")
		for b, n := range s.SpanHist {
			if n == 0 {
				continue
			}
			lo := uint64(1) << b
			hi := lo*2 - 1
			if b == 0 {
				fmt.Printf("  1:%d", n)
			} else {
				fmt.Printf("  %d-%d:%d", lo, hi, n)
			}
		}
		fmt.Println()
	}
}

// runTraced executes a single-unit instance with the timeline recorder
// attached and prints the Figure 4(b)-style Gantt chart.
func runTraced(ctx context.Context, inst *workloads.Instance, cfg core.Config) error {
	m, err := core.NewMachine(cfg)
	if err != nil {
		return err
	}
	if inst.Init != nil {
		inst.Init(m.Sys.Mem)
	}
	m.EnableTrace(4096)
	stats, err := m.RunContext(ctx, inst.Progs[0])
	if err != nil {
		return err
	}
	if inst.Check != nil {
		if err := inst.Check(m.Sys.Mem); err != nil {
			return err
		}
	}
	fmt.Printf("%s: verified OK, %d cycles\n\n", inst.Name, stats.Cycles)
	fmt.Print(m.Trace().Gantt(100))
	return nil
}

func build(name string, scale int) (*workloads.Instance, core.Config, int, error) {
	if l, err := dnn.Find(name); err == nil {
		cfg := dnn.Config()
		inst, err := l.Build(cfg, dnn.Units)
		return inst, cfg, dnn.Units, err
	}
	cfg := core.DefaultConfig()
	if e, err := machsuite.Find(name); err == nil {
		inst, err := e.Build(cfg, scale)
		return inst, cfg, 1, err
	}
	e, err := ext.Find(name)
	if err != nil {
		return nil, core.Config{}, 0, fmt.Errorf("unknown workload %q (see -list)", name)
	}
	inst, err := e.Build(cfg, scale)
	return inst, cfg, 1, err
}
