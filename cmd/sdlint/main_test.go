package main

import (
	"encoding/json"
	"strings"
	"testing"

	"softbrain/internal/fix"
	"softbrain/internal/isa"
	"softbrain/internal/lint"
)

// TestJSONSchemaGolden locks the -json schema: field names, order, and
// omit behavior are a stable contract for downstream tooling. Any
// change here is a breaking schema change and must be deliberate.
func TestJSONSchemaGolden(t *testing.T) {
	rep := jsonReport{
		Scope:        "cluster",
		BytesChecked: map[string]uint64{"inter-unit-race": 4096, "race": 128},
		Findings: []jsonFinding{
			toJSON("examples", lint.Finding{
				Prog: "producer", Index: 2, Check: lint.CheckInterUnit,
				Code: "inter-unit-overlap", Sev: lint.SevError,
				Other: 5, Unit: 1, OtherUnit: 0, Phase: 0,
				Msg: "unit 1 overlaps unit 0",
			}),
			toJSON("machsuite", lint.Finding{
				Prog: "bfs", Index: 7, Check: lint.CheckRace,
				Code: "race-mem", Sev: lint.SevError,
				Other: 3, Unit: -1, OtherUnit: -1, Phase: -1,
				Barrier: isa.KindBarrierAll, Msg: "needs a barrier",
			}),
		},
	}
	got, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	const want = `{
  "scope": "cluster",
  "bytes_checked": {
    "inter-unit-race": 4096,
    "race": 128
  },
  "findings": [
    {
      "suite": "examples",
      "prog": "producer",
      "index": 2,
      "check": "inter-unit-race",
      "code": "inter-unit-overlap",
      "severity": "error",
      "other": 5,
      "unit": 1,
      "other_unit": 0,
      "phase": 0,
      "msg": "unit 1 overlaps unit 0"
    },
    {
      "suite": "machsuite",
      "prog": "bfs",
      "index": 7,
      "check": "race",
      "code": "race-mem",
      "severity": "error",
      "other": 3,
      "unit": -1,
      "other_unit": -1,
      "phase": -1,
      "barrier": "SD_Barrier_All",
      "msg": "needs a barrier"
    }
  ]
}`
	if string(got) != want {
		t.Errorf("-json schema drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestEmptyReportShape locks the zero-finding report: findings must be
// an empty array, never null, so consumers can always range over it.
func TestEmptyReportShape(t *testing.T) {
	rep := jsonReport{Scope: "machine", BytesChecked: map[string]uint64{}, Findings: []jsonFinding{}}
	got, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"scope":"machine","bytes_checked":{},"findings":[]}`; string(got) != want {
		t.Errorf("empty report = %s, want %s", got, want)
	}
}

// TestBuiltinsMachineClean runs the machine-scope path over every
// built-in target and expects a clean report with nonzero bytes-checked
// totals for each check family that reports them.
func TestBuiltinsMachineClean(t *testing.T) {
	targets, err := collect()
	if err != nil {
		t.Fatal(err)
	}
	bytes := map[string]uint64{}
	for _, tg := range targets {
		r, err := lint.Analyze(tg.prog, tg.cfg, lint.Opts{})
		if err != nil {
			t.Errorf("%s/%s: %v", tg.suite, tg.name, err)
			continue
		}
		for _, f := range r.Findings {
			t.Errorf("%s/%v", tg.suite, f)
		}
		addBytes(bytes, r.Bytes)
	}
	for _, check := range []string{lint.CheckRace, lint.CheckOOB, lint.CheckBalance} {
		if bytes[check] == 0 {
			t.Errorf("bytes_checked[%s] = 0 across all built-ins; the accounting is broken", check)
		}
	}
}

// TestBuiltinsClusterClean is the `sdlint -cluster` CI gate as a test:
// every shipped program set — the single-unit workloads, the 8-unit dnn
// layers, and the phased pipeline example with its declared region —
// passes the cluster analysis with zero findings.
func TestBuiltinsClusterClean(t *testing.T) {
	cts, err := collectClusters()
	if err != nil {
		t.Fatal(err)
	}
	var sawMultiUnit, sawPhased bool
	bytes := map[string]uint64{}
	for _, ct := range cts {
		if len(ct.phases[0]) > 1 {
			sawMultiUnit = true
		}
		if len(ct.phases) > 1 {
			sawPhased = true
		}
		r, err := lint.CheckPipeline(ct.phases, ct.cfg, lint.ClusterOpts{Regions: ct.regions})
		if err != nil {
			t.Errorf("%s/%s: %v", ct.suite, ct.name, err)
			continue
		}
		for _, f := range r.Findings {
			t.Errorf("%s/%s: %v", ct.suite, ct.name, f)
		}
		addBytes(bytes, r.Bytes)
	}
	if !sawMultiUnit || !sawPhased {
		t.Errorf("cluster targets miss a shape: multi-unit=%v phased=%v", sawMultiUnit, sawPhased)
	}
	if bytes[lint.CheckInterUnit] == 0 {
		t.Error("bytes_checked[inter-unit-race] = 0 across all built-ins; the accounting is broken")
	}
}

// TestFilterClusters checks the name filter applies to cluster targets.
func TestFilterClusters(t *testing.T) {
	cts, err := collectClusters()
	if err != nil {
		t.Fatal(err)
	}
	got := filterClusters(cts, []string{"pipeline"})
	if len(got) != 1 || got[0].name != "pipeline" {
		names := make([]string, 0, len(got))
		for _, ct := range got {
			names = append(names, ct.suite+"/"+ct.name)
		}
		t.Fatalf("filterClusters(pipeline) = %v, want exactly examples/pipeline", strings.Join(names, ", "))
	}
}

// TestFixJSONSchemaGolden locks the -fix -json schema the same way
// TestJSONSchemaGolden locks -json: edits carry {pos, kind, action,
// reason}, keep/hoist rows add {interval: [earliest, latest], chosen,
// profile_drain_cycles}, and insert/remove rows omit the placement
// fields entirely.
func TestFixJSONSchemaGolden(t *testing.T) {
	chosen := 4
	rep := jsonFixReport{
		Scope: "fix",
		Programs: []jsonFixProg{
			{
				Suite: "machsuite", Prog: "spmv-crs",
				BarriersBefore: 2, BarriersAfter: 2, Changed: true,
				Edits: []jsonFixEdit{
					{Pos: 9, Kind: "SD_Barrier_Scratch_Wr", Action: "insert",
						Reason: "orders the scratchpad write at trace[7]"},
					{Pos: 12, Kind: "SD_Barrier_All", Action: "remove",
						Reason: "no unordered pair crosses it"},
					{Pos: 4, Kind: "SD_Barrier_All", Action: "hoist",
						Reason:   "hoisted from trace[11]: profiled drain of 8 cycle(s) overlaps streams issued behind it",
						Interval: []int{2, 11}, Chosen: &chosen, ProfileDrainCycles: 8},
				},
			},
			{
				Suite: "ext", Prog: "lut",
				BarriersBefore: 1, BarriersAfter: 1, Changed: false,
				Edits: []jsonFixEdit{},
			},
		},
	}
	got, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	const want = `{
  "scope": "fix",
  "programs": [
    {
      "suite": "machsuite",
      "prog": "spmv-crs",
      "barriers_before": 2,
      "barriers_after": 2,
      "changed": true,
      "edits": [
        {
          "pos": 9,
          "kind": "SD_Barrier_Scratch_Wr",
          "action": "insert",
          "reason": "orders the scratchpad write at trace[7]"
        },
        {
          "pos": 12,
          "kind": "SD_Barrier_All",
          "action": "remove",
          "reason": "no unordered pair crosses it"
        },
        {
          "pos": 4,
          "kind": "SD_Barrier_All",
          "action": "hoist",
          "reason": "hoisted from trace[11]: profiled drain of 8 cycle(s) overlaps streams issued behind it",
          "interval": [
            2,
            11
          ],
          "chosen": 4,
          "profile_drain_cycles": 8
        }
      ]
    },
    {
      "suite": "ext",
      "prog": "lut",
      "barriers_before": 1,
      "barriers_after": 1,
      "changed": false,
      "edits": []
    }
  ]
}`
	if string(got) != want {
		t.Errorf("-fix -json schema drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestBuiltinsFixKeepRows checks the real -fix -json path over the
// built-ins: every program is unchanged (the minimality gate), every
// edit row is therefore a keep, and every keep carries a well-formed
// interval containing its chosen slot.
func TestBuiltinsFixKeepRows(t *testing.T) {
	targets, err := collect()
	if err != nil {
		t.Fatal(err)
	}
	keeps := 0
	for _, tg := range targets {
		_, r, err := fix.FixWithOpts(tg.prog, tg.cfg, fix.HoistOpts{})
		if err != nil {
			t.Errorf("%s/%s: %v", tg.suite, tg.name, err)
			continue
		}
		jp := toFixJSON(tg, r)
		if jp.Changed {
			t.Errorf("%s/%s: shipped program not at the fix point", tg.suite, tg.name)
		}
		for _, e := range jp.Edits {
			if e.Action != "keep" {
				t.Errorf("%s/%s: unexpected %q edit on an unchanged program", tg.suite, tg.name, e.Action)
				continue
			}
			keeps++
			if len(e.Interval) != 2 || e.Chosen == nil ||
				*e.Chosen < e.Interval[0] || *e.Chosen > e.Interval[1] || *e.Chosen != e.Pos {
				t.Errorf("%s/%s: malformed keep row %+v", tg.suite, tg.name, e)
			}
		}
	}
	if keeps == 0 {
		t.Error("no keep rows across all built-ins; placement reporting is broken")
	}
}
