// Command sdlint statically checks stream-dataflow programs for the
// hazards the architecture does not police at runtime: stream races
// that need a barrier, vector-port conflicts, instance-count imbalance
// (static deadlock/starvation), and out-of-bounds affine footprints.
// See internal/lint and docs/LINT.md for the check families.
//
// With no arguments it lints every built-in workload and example
// program; arguments restrict the run to programs whose suite or
// program name contains one of them as a substring. Findings print in
// go vet style, one per line.
//
//	usage: sdlint [-v] [-cluster] [-json] [-fix [-fix-profile dump.json]] [name ...]
//
// -cluster switches from machine scope (each program checked in
// isolation) to cluster scope: every multi-unit instance is checked as
// a whole for inter-unit DRAM hazards and shared-region rule
// violations (disjoint partitioning verified, declared regions
// single-writer and phase-ordered; see docs/LINT.md).
//
// -json emits a report object instead of the human-readable lines:
//
//	{
//	  "scope": "machine" | "cluster",
//	  "bytes_checked": {"<check>": <bytes>, ...},
//	  "findings": [ {suite, prog, index, check, code, severity,
//	                 other, unit, other_unit, phase, barrier?, msg}, ... ]
//	}
//
// Check IDs, diagnostic codes, and field names are stable; unit,
// other_unit and phase are -1 for machine-scope findings.
//
// -fix runs the barrier-synthesis / redundant-barrier-elimination pass
// (internal/fix, docs/LINT.md) over each program and reports the edits
// it would make. It rewrites nothing on disk: shipped programs are
// expected to already be at the barrier-minimal fixed point, and the
// exit status enforces exactly that, so `sdlint -fix` is a CI gate
// against redundant or missing barriers creeping into the tree.
//
// -fix -fix-profile <dump.json> feeds the pass a metrics dump (the
// sdsim -metrics format) and enables profile-guided cost-aware barrier
// placement: barriers with measured drain cycles are hoisted within
// their legal placement intervals (docs/LINT.md). The dump's unit k
// section profiles the selected targets' unit-k programs, so restrict
// the run to the workload the dump was taken from.
//
// -fix -json emits a fix report instead of the edit lines:
//
//	{
//	  "scope": "fix",
//	  "programs": [ {suite, prog, barriers_before, barriers_after,
//	                 changed, edits: [ {pos, kind, action, reason,
//	                 interval?: [earliest, latest], chosen?,
//	                 profile_drain_cycles?}, ... ]}, ... ]
//	}
//
// where action is "insert", "remove", "hoist", or "keep"; keep/hoist
// rows describe the final program's barriers with their legal placement
// intervals, and insert/remove rows omit the placement fields.
//
// Exit status: 0 when every selected program is clean (no
// error-severity findings; under -fix, no edits); 1 when any
// error-severity finding occurs, any program would be rewritten by
// -fix, or a program cannot be built or analyzed at all. Warnings alone
// leave the exit status 0.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"softbrain/examples/programs"
	"softbrain/internal/core"
	"softbrain/internal/fix"
	"softbrain/internal/lint"
	"softbrain/internal/obs"
	"softbrain/internal/workloads/dnn"
	"softbrain/internal/workloads/ext"
	"softbrain/internal/workloads/machsuite"
)

// target is one program to lint, paired with the machine configuration
// its suite runs it under.
type target struct {
	suite string
	name  string
	unit  int // unit index within the program's instance
	prog  *core.Program
	cfg   core.Config
}

// clusterTarget is one whole program set to check at cluster scope:
// phases[k][u] is the program unit u runs in phase k, with the
// instance's declared shared regions.
type clusterTarget struct {
	suite   string
	name    string
	phases  [][]*core.Program
	cfg     core.Config
	regions []lint.Region
}

// jsonFinding is the stable machine-readable rendering of one finding.
type jsonFinding struct {
	Suite     string `json:"suite"`
	Prog      string `json:"prog"`
	Index     int    `json:"index"`
	Check     string `json:"check"`
	Code      string `json:"code"`
	Severity  string `json:"severity"`
	Other     int    `json:"other"`             // paired trace index, or -1
	Unit      int    `json:"unit"`              // cluster scope, or -1
	OtherUnit int    `json:"other_unit"`        // cluster scope, or -1
	Phase     int    `json:"phase"`             // cluster scope, or -1
	Barrier   string `json:"barrier,omitempty"` // weakest repairing barrier
	Msg       string `json:"msg"`
}

// jsonReport is the -json output: the analysis scope, the per-check
// bytes-checked totals across every selected target, and the findings.
type jsonReport struct {
	Scope        string            `json:"scope"`
	BytesChecked map[string]uint64 `json:"bytes_checked"`
	Findings     []jsonFinding     `json:"findings"`
}

// toJSON renders one finding under its suite.
func toJSON(suite string, f lint.Finding) jsonFinding {
	return jsonFinding{
		Suite: suite, Prog: f.Prog, Index: f.Index, Check: f.Check, Code: f.Code,
		Severity: f.Sev.String(), Other: f.Other, Unit: f.Unit, OtherUnit: f.OtherUnit,
		Phase: f.Phase, Barrier: f.BarrierName(), Msg: f.Msg,
	}
}

// addBytes merges per-check bytes-checked totals, saturating.
func addBytes(into map[string]uint64, from map[string]uint64) {
	for k, v := range from {
		if s := into[k] + v; s < into[k] {
			into[k] = ^uint64(0)
		} else {
			into[k] = s
		}
	}
}

func main() {
	verbose := flag.Bool("v", false, "print every program checked, not just findings")
	jsonOut := flag.Bool("json", false, "emit a JSON report object")
	clusterMode := flag.Bool("cluster", false, "check whole program sets for inter-unit hazards instead of single programs")
	fixMode := flag.Bool("fix", false, "report the barrier edits the fix pass would make; exit 1 if any")
	fixProfile := flag.String("fix-profile", "", "with -fix: metrics dump enabling profile-guided cost-aware barrier placement")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sdlint [-v] [-cluster] [-json] [-fix [-fix-profile dump.json]] [name ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *clusterMode && *fixMode {
		fmt.Fprintf(os.Stderr, "sdlint: -cluster and -fix are mutually exclusive\n")
		os.Exit(1)
	}
	if *fixProfile != "" && !*fixMode {
		fmt.Fprintf(os.Stderr, "sdlint: -fix-profile requires -fix\n")
		os.Exit(1)
	}

	var fail bool
	switch {
	case *clusterMode:
		cts, err := collectClusters()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdlint: %v\n", err)
			os.Exit(1)
		}
		cts = filterClusters(cts, flag.Args())
		if len(cts) == 0 {
			fmt.Fprintf(os.Stderr, "sdlint: no program sets match %v\n", flag.Args())
			os.Exit(1)
		}
		fail = runCluster(cts, *verbose, *jsonOut)
	case *fixMode:
		targets, err := collect()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdlint: %v\n", err)
			os.Exit(1)
		}
		targets = filter(targets, flag.Args())
		if len(targets) == 0 {
			fmt.Fprintf(os.Stderr, "sdlint: no programs match %v\n", flag.Args())
			os.Exit(1)
		}
		profiles, err := loadProfiles(*fixProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdlint: %v\n", err)
			os.Exit(1)
		}
		fail = runFix(targets, *verbose, *jsonOut, profiles)
	default:
		targets, err := collect()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdlint: %v\n", err)
			os.Exit(1)
		}
		targets = filter(targets, flag.Args())
		if len(targets) == 0 {
			fmt.Fprintf(os.Stderr, "sdlint: no programs match %v\n", flag.Args())
			os.Exit(1)
		}
		fail = runLint(targets, *verbose, *jsonOut)
	}
	if fail {
		os.Exit(1)
	}
}

func emitJSON(rep jsonReport) bool {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "sdlint: %v\n", err)
		return true
	}
	return false
}

func runLint(targets []target, verbose, jsonOut bool) bool {
	fail := false
	rep := jsonReport{Scope: "machine", BytesChecked: map[string]uint64{}, Findings: []jsonFinding{}}
	for _, t := range targets {
		r, err := lint.Analyze(t.prog, t.cfg, lint.Opts{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdlint: %s/%s: %v\n", t.suite, t.name, err)
			fail = true
			continue
		}
		addBytes(rep.BytesChecked, r.Bytes)
		for _, f := range r.Findings {
			if jsonOut {
				rep.Findings = append(rep.Findings, toJSON(t.suite, f))
			} else {
				fmt.Printf("%s/%v\n", t.suite, f)
			}
			if f.Sev == lint.SevError {
				fail = true
			}
		}
		if verbose && !jsonOut && len(r.Findings) == 0 {
			fmt.Printf("%s/%s: ok (%d commands)\n", t.suite, t.name, len(t.prog.Trace))
		}
	}
	if jsonOut && emitJSON(rep) {
		return true
	}
	return fail
}

func runCluster(cts []clusterTarget, verbose, jsonOut bool) bool {
	fail := false
	rep := jsonReport{Scope: "cluster", BytesChecked: map[string]uint64{}, Findings: []jsonFinding{}}
	for _, t := range cts {
		r, err := lint.CheckPipeline(t.phases, t.cfg, lint.ClusterOpts{Regions: t.regions})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdlint: %s/%s: %v\n", t.suite, t.name, err)
			fail = true
			continue
		}
		addBytes(rep.BytesChecked, r.Bytes)
		for _, f := range r.Findings {
			if jsonOut {
				rep.Findings = append(rep.Findings, toJSON(t.suite, f))
			} else {
				fmt.Printf("%s/%v\n", t.suite, f)
			}
			if f.Sev == lint.SevError {
				fail = true
			}
		}
		if verbose && !jsonOut && len(r.Findings) == 0 {
			units := len(t.phases[0])
			fmt.Printf("%s/%s: ok (%d units, %d phases)\n", t.suite, t.name, units, len(t.phases))
		}
	}
	if jsonOut && emitJSON(rep) {
		return true
	}
	return fail
}

// jsonFixEdit is one edit or final-barrier placement in the -fix -json
// report. Action is "insert", "remove", "hoist", or "keep"; the
// placement fields (interval, chosen, profile_drain_cycles) describe
// keep/hoist rows — barriers of the final program — and are absent on
// insert/remove rows.
type jsonFixEdit struct {
	Pos                int    `json:"pos"`
	Kind               string `json:"kind"`
	Action             string `json:"action"`
	Reason             string `json:"reason"`
	Interval           []int  `json:"interval,omitempty"` // [earliest, latest] legal slots
	Chosen             *int   `json:"chosen,omitempty"`   // slot the pass settled on
	ProfileDrainCycles uint64 `json:"profile_drain_cycles,omitempty"`
}

// jsonFixProg is one program's section of the -fix -json report.
type jsonFixProg struct {
	Suite          string        `json:"suite"`
	Prog           string        `json:"prog"`
	BarriersBefore int           `json:"barriers_before"`
	BarriersAfter  int           `json:"barriers_after"`
	Changed        bool          `json:"changed"`
	Edits          []jsonFixEdit `json:"edits"`
}

// jsonFixReport is the -fix -json output.
type jsonFixReport struct {
	Scope    string        `json:"scope"`
	Programs []jsonFixProg `json:"programs"`
}

// toFixJSON renders one program's fix report: edits first (inserts,
// then removes, trace order), then every barrier of the final program
// with its legal placement interval.
func toFixJSON(t target, rep *fix.Report) jsonFixProg {
	p := jsonFixProg{
		Suite: t.suite, Prog: t.name,
		BarriersBefore: rep.BarriersBefore, BarriersAfter: rep.BarriersAfter,
		Changed: rep.Changed(), Edits: []jsonFixEdit{},
	}
	for _, e := range rep.Inserted {
		p.Edits = append(p.Edits, jsonFixEdit{Pos: e.Pos, Kind: e.Kind.String(), Action: "insert", Reason: e.Reason})
	}
	for _, e := range rep.Removed {
		p.Edits = append(p.Edits, jsonFixEdit{Pos: e.Pos, Kind: e.Kind.String(), Action: "remove", Reason: e.Reason})
	}
	for _, pl := range rep.Placements {
		action := "keep"
		if pl.Hoisted {
			action = "hoist"
		}
		chosen := pl.Chosen
		p.Edits = append(p.Edits, jsonFixEdit{
			Pos: pl.Pos, Kind: pl.Kind.String(), Action: action, Reason: pl.Reason,
			Interval: []int{pl.Earliest, pl.Latest}, Chosen: &chosen,
			ProfileDrainCycles: pl.Drain,
		})
	}
	return p
}

// loadProfiles reads a metrics dump and extracts each unit's
// barrier-drain profile, keyed by unit index.
func loadProfiles(path string) (map[int]fix.Profile, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d obs.Dump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[int]fix.Profile{}
	for _, u := range d.Units {
		if pr := fix.ProfileFromUnit(u); pr != nil {
			out[u.Unit] = pr
		}
	}
	return out, nil
}

func runFix(targets []target, verbose, jsonOut bool, profiles map[int]fix.Profile) bool {
	fail := false
	rep := jsonFixReport{Scope: "fix", Programs: []jsonFixProg{}}
	for _, t := range targets {
		_, r, err := fix.FixWithOpts(t.prog, t.cfg, fix.HoistOpts{Profile: profiles[t.unit]})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdlint: %s/%s: %v\n", t.suite, t.name, err)
			fail = true
			continue
		}
		if jsonOut {
			rep.Programs = append(rep.Programs, toFixJSON(t, r))
		} else if r.Changed() {
			fmt.Printf("%s/%v\n", t.suite, r)
			for _, e := range r.Inserted {
				fmt.Printf("  + trace[%d] %v: %s\n", e.Pos, e.Kind, e.Reason)
			}
			for _, e := range r.Removed {
				fmt.Printf("  - trace[%d] %v: %s\n", e.Pos, e.Kind, e.Reason)
			}
			for _, h := range r.Hoisted {
				fmt.Printf("  ~ trace[%d] -> trace[%d] %v: profiled drain %d cycle(s)\n", h.From, h.To, h.Kind, h.Drain)
			}
		} else if verbose {
			fmt.Printf("%s/%s: ok (%d barriers minimal)\n", t.suite, t.name, r.BarriersAfter)
		}
		if r.Changed() {
			fail = true
		}
	}
	if jsonOut && emitFixJSON(rep) {
		return true
	}
	return fail
}

func emitFixJSON(rep jsonFixReport) bool {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "sdlint: %v\n", err)
		return true
	}
	return false
}

// collect builds every built-in program under the configuration its
// suite uses: MachSuite and the extended workloads at test scale under
// the default machine, the DNN layers partitioned across the standard
// eight units under the DNN machine, and the examples under their own
// configurations.
func collect() ([]target, error) {
	var out []target

	cfg := core.DefaultConfig()
	for _, e := range machsuite.All() {
		inst, err := e.Build(cfg, 1)
		if err != nil {
			return nil, fmt.Errorf("building machsuite/%s: %w", e.Name, err)
		}
		out = append(out, instanceTargets("machsuite", e.Name, inst.Progs, cfg)...)
	}
	for _, e := range ext.All() {
		inst, err := e.Build(cfg, 1)
		if err != nil {
			return nil, fmt.Errorf("building ext/%s: %w", e.Name, err)
		}
		out = append(out, instanceTargets("ext", e.Name, inst.Progs, cfg)...)
	}

	dnnCfg := dnn.Config()
	for _, l := range dnn.Layers() {
		inst, err := l.Build(dnnCfg, dnn.Units)
		if err != nil {
			return nil, fmt.Errorf("building dnn/%s: %w", l.Name, err)
		}
		out = append(out, instanceTargets("dnn", l.Name, inst.Progs, dnnCfg)...)
	}

	exs, err := programs.All()
	if err != nil {
		return nil, fmt.Errorf("building examples: %w", err)
	}
	for _, ex := range exs {
		out = append(out, target{suite: "examples", name: ex.Name, prog: ex.Prog, cfg: ex.Cfg})
	}
	pl, err := programs.Pipeline()
	if err != nil {
		return nil, fmt.Errorf("building examples/pipeline: %w", err)
	}
	for pi, ph := range pl.Phases {
		for u, p := range ph {
			out = append(out, target{
				suite: "examples",
				name:  fmt.Sprintf("%s.phase%d#%d", pl.Name, pi, u),
				prog:  p, cfg: pl.Cfg,
			})
		}
	}
	return out, nil
}

// collectClusters builds every built-in program set as one cluster
// target: each workload instance runs its programs concurrently in a
// single phase, and the pipeline example contributes its phased set
// with its declared shared regions.
func collectClusters() ([]clusterTarget, error) {
	var out []clusterTarget

	cfg := core.DefaultConfig()
	for _, e := range machsuite.All() {
		inst, err := e.Build(cfg, 1)
		if err != nil {
			return nil, fmt.Errorf("building machsuite/%s: %w", e.Name, err)
		}
		out = append(out, clusterTarget{suite: "machsuite", name: e.Name, phases: [][]*core.Program{inst.Progs}, cfg: cfg})
	}
	for _, e := range ext.All() {
		inst, err := e.Build(cfg, 1)
		if err != nil {
			return nil, fmt.Errorf("building ext/%s: %w", e.Name, err)
		}
		out = append(out, clusterTarget{suite: "ext", name: e.Name, phases: [][]*core.Program{inst.Progs}, cfg: cfg})
	}

	dnnCfg := dnn.Config()
	for _, l := range dnn.Layers() {
		inst, err := l.Build(dnnCfg, dnn.Units)
		if err != nil {
			return nil, fmt.Errorf("building dnn/%s: %w", l.Name, err)
		}
		out = append(out, clusterTarget{suite: "dnn", name: l.Name, phases: [][]*core.Program{inst.Progs}, cfg: dnnCfg})
	}

	pl, err := programs.Pipeline()
	if err != nil {
		return nil, fmt.Errorf("building examples/pipeline: %w", err)
	}
	out = append(out, clusterTarget{suite: "examples", name: pl.Name, phases: pl.Phases, cfg: pl.Cfg, regions: pl.Regions})
	return out, nil
}

// instanceTargets names one target per Softbrain unit of the instance.
func instanceTargets(suite, name string, progs []*core.Program, cfg core.Config) []target {
	var out []target
	for i, p := range progs {
		n := name
		if len(progs) > 1 {
			n = fmt.Sprintf("%s#%d", name, i)
		}
		out = append(out, target{suite: suite, name: n, unit: i, prog: p, cfg: cfg})
	}
	return out
}

func filter(ts []target, args []string) []target {
	if len(args) == 0 {
		return ts
	}
	var out []target
	for _, t := range ts {
		for _, a := range args {
			if strings.Contains(t.suite, a) || strings.Contains(t.name, a) {
				out = append(out, t)
				break
			}
		}
	}
	return out
}

func filterClusters(ts []clusterTarget, args []string) []clusterTarget {
	if len(args) == 0 {
		return ts
	}
	var out []clusterTarget
	for _, t := range ts {
		for _, a := range args {
			if strings.Contains(t.suite, a) || strings.Contains(t.name, a) {
				out = append(out, t)
				break
			}
		}
	}
	return out
}
