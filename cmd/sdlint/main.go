// Command sdlint statically checks stream-dataflow programs for the
// hazards the architecture does not police at runtime: stream races
// that need a barrier, vector-port conflicts, instance-count imbalance
// (static deadlock/starvation), and out-of-bounds affine footprints.
// See internal/lint and docs/LINT.md for the check families.
//
// With no arguments it lints every built-in workload and example
// program; arguments restrict the run to programs whose suite or
// program name contains one of them as a substring. Findings print in
// go vet style, one per line; the exit status is 1 when any
// error-severity finding (or build failure) occurs.
//
//	usage: sdlint [-v] [name ...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"softbrain/examples/programs"
	"softbrain/internal/core"
	"softbrain/internal/lint"
	"softbrain/internal/workloads/dnn"
	"softbrain/internal/workloads/ext"
	"softbrain/internal/workloads/machsuite"
)

// target is one program to lint, paired with the machine configuration
// its suite runs it under.
type target struct {
	suite string
	name  string
	prog  *core.Program
	cfg   core.Config
}

func main() {
	verbose := flag.Bool("v", false, "print every program checked, not just findings")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sdlint [-v] [name ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	targets, err := collect()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdlint: %v\n", err)
		os.Exit(1)
	}
	targets = filter(targets, flag.Args())
	if len(targets) == 0 {
		fmt.Fprintf(os.Stderr, "sdlint: no programs match %v\n", flag.Args())
		os.Exit(1)
	}

	fail := false
	for _, t := range targets {
		fs, err := lint.Check(t.prog, t.cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdlint: %s/%s: %v\n", t.suite, t.name, err)
			fail = true
			continue
		}
		for _, f := range fs {
			fmt.Printf("%s/%v\n", t.suite, f)
			if f.Sev == lint.SevError {
				fail = true
			}
		}
		if *verbose && len(fs) == 0 {
			fmt.Printf("%s/%s: ok (%d commands)\n", t.suite, t.name, len(t.prog.Trace))
		}
	}
	if fail {
		os.Exit(1)
	}
}

// collect builds every built-in program under the configuration its
// suite uses: MachSuite and the extended workloads at test scale under
// the default machine, the DNN layers partitioned across the standard
// eight units under the DNN machine, and the examples under their own
// configurations.
func collect() ([]target, error) {
	var out []target

	cfg := core.DefaultConfig()
	for _, e := range machsuite.All() {
		inst, err := e.Build(cfg, 1)
		if err != nil {
			return nil, fmt.Errorf("building machsuite/%s: %w", e.Name, err)
		}
		out = append(out, instanceTargets("machsuite", e.Name, inst.Progs, cfg)...)
	}
	for _, e := range ext.All() {
		inst, err := e.Build(cfg, 1)
		if err != nil {
			return nil, fmt.Errorf("building ext/%s: %w", e.Name, err)
		}
		out = append(out, instanceTargets("ext", e.Name, inst.Progs, cfg)...)
	}

	dnnCfg := dnn.Config()
	for _, l := range dnn.Layers() {
		inst, err := l.Build(dnnCfg, dnn.Units)
		if err != nil {
			return nil, fmt.Errorf("building dnn/%s: %w", l.Name, err)
		}
		out = append(out, instanceTargets("dnn", l.Name, inst.Progs, dnnCfg)...)
	}

	exs, err := programs.All()
	if err != nil {
		return nil, fmt.Errorf("building examples: %w", err)
	}
	for _, ex := range exs {
		out = append(out, target{suite: "examples", name: ex.Name, prog: ex.Prog, cfg: ex.Cfg})
	}
	return out, nil
}

// instanceTargets names one target per Softbrain unit of the instance.
func instanceTargets(suite, name string, progs []*core.Program, cfg core.Config) []target {
	var out []target
	for i, p := range progs {
		n := name
		if len(progs) > 1 {
			n = fmt.Sprintf("%s#%d", name, i)
		}
		out = append(out, target{suite: suite, name: n, prog: p, cfg: cfg})
	}
	return out
}

func filter(ts []target, args []string) []target {
	if len(args) == 0 {
		return ts
	}
	var out []target
	for _, t := range ts {
		for _, a := range args {
			if strings.Contains(t.suite, a) || strings.Contains(t.name, a) {
				out = append(out, t)
				break
			}
		}
	}
	return out
}
