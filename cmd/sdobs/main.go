// Command sdobs inspects the observability artifacts sdsim produces:
// it validates Chrome/Perfetto trace-event files against the format
// contract, checks the stall-attribution conservation invariant on
// metrics dumps, and renders the bandwidth table from a dump offline.
//
// Usage:
//
//	sdobs -validate-trace out.trace.json
//	sdobs -check out.json
//	sdobs -bw out.json [-peak 16]
//	sdobs -prom out.json        # Prometheus text exposition to stdout
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"softbrain/internal/obs"
)

func main() {
	validate := flag.String("validate-trace", "", "validate a Chrome/Perfetto trace-event JSON file")
	check := flag.String("check", "", "check the conservation invariant on a metrics dump")
	bw := flag.String("bw", "", "render the bandwidth table from a metrics dump")
	peak := flag.Float64("peak", 16, "peak memory bandwidth in bytes/cycle for the -bw table")
	prom := flag.String("prom", "", "render a metrics dump as Prometheus text exposition")
	flag.Parse()

	ran := false
	if *validate != "" {
		ran = true
		data, err := os.ReadFile(*validate)
		if err != nil {
			log.Fatal(err)
		}
		if err := obs.ValidateTrace(data); err != nil {
			log.Fatalf("sdobs: %s: %v", *validate, err)
		}
		fmt.Printf("%s: valid trace\n", *validate)
	}
	if *check != "" {
		ran = true
		d := readDump(*check)
		if err := obs.CheckConservation(d); err != nil {
			log.Fatalf("sdobs: %s: conservation violated: %v", *check, err)
		}
		fmt.Printf("%s: conservation holds (%d unit(s), %d cycles)\n", *check, len(d.Units), d.Total.Cycles)
	}
	if *bw != "" {
		ran = true
		fmt.Print(obs.BandwidthTable(readDump(*bw), *peak))
	}
	if *prom != "" {
		ran = true
		var buf bytes.Buffer
		if err := obs.WritePrometheus(&buf, readDump(*prom)); err != nil {
			log.Fatalf("sdobs: %s: %v", *prom, err)
		}
		// The exporter's output must pass its own scrape lint before it
		// reaches stdout — same gate the sdserve /metrics endpoint uses.
		if err := obs.CheckExposition(buf.Bytes()); err != nil {
			log.Fatalf("sdobs: %s: exposition lint: %v", *prom, err)
		}
		os.Stdout.Write(buf.Bytes())
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func readDump(path string) obs.Dump {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var d obs.Dump
	if err := json.Unmarshal(data, &d); err != nil {
		log.Fatalf("sdobs: parsing %s: %v", path, err)
	}
	return d
}
