module softbrain

go 1.22
