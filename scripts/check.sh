#!/bin/sh
# check.sh runs the full static + dynamic gate (the tier-1+ verify):
#
#   1. gofmt         every tracked .go file is formatted
#   2. go vet        standard static analysis
#   3. go build      everything compiles, including the example binaries
#   4. go test -race full test suite under the race detector
#   5. golangci-lint supplementary static analysis with the pinned
#                    .golangci.yml config — runs only when the binary
#                    is installed; the gate needs nothing beyond the
#                    Go toolchain
#   6. sdlint        every built-in workload and example program is free
#                    of stream races, port conflicts, balance errors and
#                    out-of-bounds footprints (see docs/LINT.md)
#   7. sdlint -cluster
#                    every shipped program *set* passes the cluster
#                    checks: cross-unit footprints disjoint over the
#                    whole pipeline, shared regions single-writer and
#                    phase-ordered (docs/LINT.md)
#   8. sdlint -fix   the barrier synthesis/elimination pass is a no-op
#                    on every built-in program: nothing ships with a
#                    missing or provably redundant barrier
#   9. fault soak    a short deterministic slice of the fault-injection
#                    soak (see docs/ROBUSTNESS.md); `make soak` runs
#                    the full breadth
#  10. bench smoke   sdbench -json on a small workload slice; fails if
#                    simulated cycle counts drift from the committed
#                    goldens, or if the geomean host ns/cycle regresses
#                    past the tolerance against the committed
#                    BENCH_sim.json ratchet — retried once, since the
#                    ratchet measures wall time and transient host load
#                    is not a regression (see docs/SIMKERNEL.md)
#  11. obs           observability end-to-end (docs/OBSERVABILITY.md):
#                    traced metrics runs of gemm and stencil2d, the
#                    Perfetto trace validated against the format
#                    contract, the stall attribution against the
#                    conservation invariant, and the dump rendered as
#                    Prometheus exposition through the scrape lint
#  12. fuzz smoke    a short slice of `make fuzz-smoke`: the footprint-
#                    algebra fuzz targets, the three-mode scheduling
#                    equivalence fuzz (docs/SIMKERNEL.md), plus the
#                    barrier-interval slide verification (docs/LINT.md);
#                    `make fuzz-smoke` runs the full budget
#  13. serve smoke   sdserve's in-process self-test (docs/SERVE.md):
#                    start the server on a loopback port, submit gemm,
#                    assert the resubmission is a cache hit, stream a
#                    run over SSE (progress frames precede a terminal
#                    result byte-identical to the unary response),
#                    scrape /metrics through the exposition lint and
#                    check it agrees with /statusz, reject a malformed
#                    submission with a typed error, and drain cleanly
#                    with a request in flight
#
# Run it from the repository root (or via `make check`). Exits non-zero
# on the first failing stage.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== golangci-lint (optional)"
if command -v golangci-lint >/dev/null 2>&1; then
	golangci-lint run ./...
else
	echo "golangci-lint not installed; skipping (config: .golangci.yml)"
fi

echo "== sdlint"
go run ./cmd/sdlint

echo "== sdlint -cluster (inter-unit disjointness + shared regions)"
go run ./cmd/sdlint -cluster

echo "== sdlint -fix (barrier minimality)"
go run ./cmd/sdlint -fix

echo "== fault soak (short slice; make soak for full breadth)"
SOAK_SEEDS=8 go test -race -run TestSoakFaultInjection -count=1 ./internal/core

echo "== bench smoke (cycle goldens + host-perf ratchet)"
go run ./cmd/sdbench -json -smoke -out /tmp/BENCH_sim_smoke.json -ratchet BENCH_sim.json || {
	echo "bench smoke: retrying once (transient host load?)"
	sleep 2
	go run ./cmd/sdbench -json -smoke -out /tmp/BENCH_sim_smoke.json -ratchet BENCH_sim.json
}

echo "== obs (trace validity + stall conservation)"
for w in gemm stencil2d; do
	go run ./cmd/sdsim -w "$w" -scale 2 \
		-metrics "/tmp/obs_$w.json" -trace-out "/tmp/obs_$w.trace.json" >/dev/null
	go run ./cmd/sdobs -validate-trace "/tmp/obs_$w.trace.json" -check "/tmp/obs_$w.json"
	go run ./cmd/sdobs -prom "/tmp/obs_$w.json" >/dev/null
done

echo "== fuzz smoke (short slice; make fuzz-smoke for full budget)"
FUZZTIME=5s make fuzz-smoke

echo "== serve smoke (submit, cache hit, stream, metrics, typed reject, graceful drain)"
go run ./cmd/sdserve -smoke

echo "== all checks passed"
