#!/bin/sh
# check.sh runs the full static + dynamic gate (the tier-1+ verify):
#
#   1. gofmt         every tracked .go file is formatted
#   2. go vet        standard static analysis
#   3. go build      everything compiles, including the example binaries
#   4. go test -race full test suite under the race detector
#   5. sdlint        every built-in workload and example program is free
#                    of stream races, port conflicts, balance errors and
#                    out-of-bounds footprints (see docs/LINT.md)
#   6. sdlint -fix   the barrier synthesis/elimination pass is a no-op
#                    on every built-in program: nothing ships with a
#                    missing or provably redundant barrier
#   7. fault soak    a short deterministic slice of the fault-injection
#                    soak (see docs/ROBUSTNESS.md); `make soak` runs
#                    the full breadth
#   8. bench smoke   sdbench -json on a small workload slice; fails if
#                    simulated cycle counts drift from the committed
#                    goldens (see docs/SIMKERNEL.md)
#   9. obs           observability end-to-end (docs/OBSERVABILITY.md):
#                    traced metrics runs of gemm and stencil2d, the
#                    Perfetto trace validated against the format
#                    contract and the stall attribution against the
#                    conservation invariant
#
# Run it from the repository root (or via `make check`). Exits non-zero
# on the first failing stage.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== sdlint"
go run ./cmd/sdlint

echo "== sdlint -fix (barrier minimality)"
go run ./cmd/sdlint -fix

echo "== fault soak (short slice; make soak for full breadth)"
SOAK_SEEDS=8 go test -race -run TestSoakFaultInjection -count=1 ./internal/core

echo "== bench smoke (cycle goldens)"
go run ./cmd/sdbench -json -smoke -out /tmp/BENCH_sim_smoke.json

echo "== obs (trace validity + stall conservation)"
for w in gemm stencil2d; do
	go run ./cmd/sdsim -w "$w" -scale 2 \
		-metrics "/tmp/obs_$w.json" -trace-out "/tmp/obs_$w.trace.json" >/dev/null
	go run ./cmd/sdobs -validate-trace "/tmp/obs_$w.trace.json" -check "/tmp/obs_$w.json"
done

echo "== all checks passed"
