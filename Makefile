# Tier-1 verify: build + tests, the bar every change must clear.
.PHONY: test
test:
	go build ./...
	go test ./...

# Tier-1+ verify: formatting, vet, build, race-mode tests, and the
# sdlint static hazard gate over every built-in program (docs/LINT.md).
.PHONY: check
check:
	sh scripts/check.sh

# Lint the built-in workload and example programs only: machine scope
# per program, then cluster scope per program set (docs/LINT.md).
.PHONY: lint
lint:
	go run ./cmd/sdlint
	go run ./cmd/sdlint -cluster

# Verify every built-in program is at the barrier-minimal fixed point:
# the fix pass (docs/LINT.md) would neither insert nor remove a barrier.
.PHONY: fix-check
fix-check:
	go run ./cmd/sdlint -fix

# Randomized fault-injection soak (docs/ROBUSTNESS.md): 50 seeded
# programs, each under every fault profile plus a maimed variant, plus
# the parallel-vs-sequential cluster determinism sweep, under the race
# detector. Override the breadth with SOAK_SEEDS=n.
.PHONY: soak
soak:
	SOAK_SEEDS=$${SOAK_SEEDS:-50} go test -race -run 'TestSoakFaultInjection|TestClusterDeterminism' -count=1 ./internal/core

# Simulator host-performance smoke benchmark (docs/SIMKERNEL.md): runs
# sdbench -json on a small workload slice, fails if simulated cycle
# counts drift from scripts/bench_goldens.json, and ratchets host
# performance against the committed BENCH_sim.json — geomean ns/cycle
# regression past bench.PerfTolerance fails the run. One retry absorbs
# transient host load (the ratchet measures wall time; a co-tenant
# spike is not a regression). Full suite: go run ./cmd/sdbench -json.
.PHONY: bench-smoke
bench-smoke:
	go run ./cmd/sdbench -json -smoke -out /tmp/BENCH_sim_smoke.json -ratchet BENCH_sim.json || \
		{ echo "bench-smoke: retrying once (transient host load?)"; sleep 2; \
		  go run ./cmd/sdbench -json -smoke -out /tmp/BENCH_sim_smoke.json -ratchet BENCH_sim.json; }

.PHONY: bench
bench:
	go test -bench=. -run=^$$ .

# Short randomized fuzz of the footprint algebra (internal/isa) and the
# scheduling-mode equivalence property (internal/core): the isa targets
# cross-check Extent/Overlaps/IndexFootprint against brute-force byte
# enumeration; FuzzSpanEquivalence runs a seeded generated program —
# optionally under a fault profile — in per-cycle, wake-set, and
# span-retirement modes and demands identical statistics and memory
# (docs/SIMKERNEL.md). Go runs one -fuzz pattern per invocation, so the
# targets run sequentially. Override the budget with FUZZTIME=30s.
# Ends with the barrier-interval slide check (docs/LINT.md): every
# computed legal placement interval brute-force verified — analysis
# verdict unchanged at every slot inside, changed one slot outside —
# over all workloads, examples, and generated barrier-heavy programs.
.PHONY: fuzz-smoke
fuzz-smoke:
	go test ./internal/isa -run '^$$' -fuzz '^FuzzAffineExtent$$' -fuzztime $${FUZZTIME:-10s}
	go test ./internal/isa -run '^$$' -fuzz '^FuzzAffineOverlaps$$' -fuzztime $${FUZZTIME:-10s}
	go test ./internal/isa -run '^$$' -fuzz '^FuzzIndexFootprint$$' -fuzztime $${FUZZTIME:-10s}
	go test ./internal/core -run '^$$' -fuzz '^FuzzSpanEquivalence$$' -fuzztime $${FUZZTIME:-10s}
	go test ./internal/fix -run '^TestIntervalSlide' -count=1 -v

# Observability end-to-end check (docs/OBSERVABILITY.md): metrics +
# Perfetto trace runs of two workloads, the trace validated against the
# format contract and the stall attribution against the conservation
# invariant (causes sum exactly to elapsed cycles per component).
.PHONY: obs-check
obs-check:
	go run ./cmd/sdsim -w gemm -scale 2 -metrics /tmp/obs_gemm.json -trace-out /tmp/obs_gemm.trace.json >/dev/null
	go run ./cmd/sdobs -validate-trace /tmp/obs_gemm.trace.json -check /tmp/obs_gemm.json
	go run ./cmd/sdsim -w stencil2d -scale 2 -metrics /tmp/obs_stencil2d.json -trace-out /tmp/obs_stencil2d.trace.json >/dev/null
	go run ./cmd/sdobs -validate-trace /tmp/obs_stencil2d.trace.json -check /tmp/obs_stencil2d.json

# sdserve self-test (docs/SERVE.md): start the service on a loopback
# port, submit a workload, verify the cache hit on resubmission, the
# typed rejection of a bad submission, and a clean drain with a request
# in flight. check.sh runs this as stage 13.
.PHONY: serve-smoke
serve-smoke:
	go run ./cmd/sdserve -smoke

# sdserve load generator (docs/SERVE.md): an in-process server soaked
# by concurrent clients with chaos cancellations; writes the
# throughput/latency table to BENCH_serve.json and fails if any panic
# escaped a request. Override the shape with LOADGEN_ARGS.
.PHONY: serve-loadgen
serve-loadgen:
	go run ./cmd/sdserve -loadgen $${LOADGEN_ARGS:-}
