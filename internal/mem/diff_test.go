package mem

import "testing"

func TestFirstDiff(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	if !a.Equal(b) {
		t.Fatal("fresh memories differ")
	}
	if _, ok := a.FirstDiff(b); ok {
		t.Fatal("FirstDiff reported a diff between fresh memories")
	}

	// A write of zero allocates a page but stays equal to the implicit
	// zero page of the other memory.
	a.WriteU64(0x1000, 0)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("zero write broke equality")
	}

	a.WriteU64(0x2008, 7)
	if a.Equal(b) {
		t.Fatal("memories equal after divergent write")
	}
	if addr, ok := a.FirstDiff(b); !ok || addr != 0x2008 {
		t.Fatalf("FirstDiff = %#x, %v; want 0x2008, true", addr, ok)
	}
	if addr, ok := b.FirstDiff(a); !ok || addr != 0x2008 {
		t.Fatalf("FirstDiff (reversed) = %#x, %v; want 0x2008, true", addr, ok)
	}

	// Matching the write restores equality; a single-byte divergence on
	// another page is then found at its exact address.
	b.WriteU64(0x2008, 7)
	if !a.Equal(b) {
		t.Fatal("memories differ after matching writes")
	}
	a.Write(0x10003, []byte{1})
	if addr, ok := b.FirstDiff(a); !ok || addr != 0x10003 {
		t.Fatalf("FirstDiff = %#x, %v; want 0x10003, true", addr, ok)
	}
}
