// Package mem provides the memory substrate under the memory stream
// engine: a functional byte-addressable backing store, a set-associative
// cache timing model (the L2-like cache Softbrain's wide interface
// accesses directly), and a System that combines them with DRAM latency
// and bandwidth limits.
package mem

import (
	"encoding/binary"
	"sort"
	"sync"
)

const pageShift = 12
const pageSize = 1 << pageShift

// Memory is a sparse, byte-addressable functional memory. The zero value
// is ready to use; unwritten bytes read as zero.
//
// The page map is guarded so several cluster units may access a shared
// backing store from their own goroutines. Byte ranges themselves are
// not locked: concurrent accessors must touch disjoint write footprints
// (the cluster's partitioning contract, see docs/SIMKERNEL.md), which
// the race detector enforces in the determinism tests.
type Memory struct {
	mu    sync.RWMutex
	pages map[uint64]*[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Memory) page(addr uint64, create bool) *[pageSize]byte {
	pn := addr >> pageShift
	m.mu.RLock()
	p := m.pages[pn]
	m.mu.RUnlock()
	if p == nil && create {
		m.mu.Lock()
		if p = m.pages[pn]; p == nil {
			p = new([pageSize]byte)
			m.pages[pn] = p
		}
		m.mu.Unlock()
	}
	return p
}

// Read fills buf with the bytes starting at addr.
func (m *Memory) Read(addr uint64, buf []byte) {
	for len(buf) > 0 {
		off := addr & (pageSize - 1)
		n := copy(buf, emptyPage[:pageSize-off])
		if p := m.page(addr, false); p != nil {
			copy(buf[:n], p[off:])
		} else {
			for i := 0; i < n; i++ {
				buf[i] = 0
			}
		}
		addr += uint64(n)
		buf = buf[n:]
	}
}

var emptyPage [pageSize]byte

// Write stores data starting at addr.
func (m *Memory) Write(addr uint64, data []byte) {
	for len(data) > 0 {
		p := m.page(addr, true)
		off := addr & (pageSize - 1)
		n := copy(p[off:], data)
		addr += uint64(n)
		data = data[n:]
	}
}

// LoadByte returns the byte at addr.
func (m *Memory) LoadByte(addr uint64) byte {
	if p := m.page(addr, false); p != nil {
		return p[addr&(pageSize-1)]
	}
	return 0
}

// StoreByte stores one byte at addr.
func (m *Memory) StoreByte(addr uint64, b byte) {
	m.page(addr, true)[addr&(pageSize-1)] = b
}

// ReadU64 reads a little-endian 64-bit word at addr.
func (m *Memory) ReadU64(addr uint64) uint64 {
	var buf [8]byte
	m.Read(addr, buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

// WriteU64 stores a little-endian 64-bit word at addr.
func (m *Memory) WriteU64(addr uint64, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	m.Write(addr, buf[:])
}

// ReadUint reads a little-endian unsigned integer of size bytes (1,2,4,8).
func (m *Memory) ReadUint(addr uint64, size int) uint64 {
	var buf [8]byte
	m.Read(addr, buf[:size])
	return binary.LittleEndian.Uint64(buf[:])
}

// WriteUint stores the low size bytes of v little-endian at addr.
func (m *Memory) WriteUint(addr uint64, size int, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	m.Write(addr, buf[:size])
}

// FootprintBytes returns the number of bytes of allocated pages, a debug
// aid for workload builders.
func (m *Memory) FootprintBytes() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return uint64(len(m.pages)) * pageSize
}

// FirstDiff returns the lowest address at which m and o differ, with
// ok false when the two memories hold identical contents. Unwritten
// bytes compare as zero, so allocation layout does not matter.
func (m *Memory) FirstDiff(o *Memory) (addr uint64, ok bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if o != m {
		o.mu.RLock()
		defer o.mu.RUnlock()
	}
	seen := map[uint64]bool{}
	var pns []uint64
	for pn := range m.pages {
		seen[pn] = true
		pns = append(pns, pn)
	}
	for pn := range o.pages {
		if !seen[pn] {
			pns = append(pns, pn)
		}
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	for _, pn := range pns {
		a, b := m.pages[pn], o.pages[pn]
		if a == nil {
			a = &emptyPage
		}
		if b == nil {
			b = &emptyPage
		}
		if *a == *b {
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				return pn<<pageShift + uint64(i), true
			}
		}
	}
	return 0, false
}

// Equal reports whether m and o hold identical contents.
func (m *Memory) Equal(o *Memory) bool {
	_, diff := m.FirstDiff(o)
	return !diff
}
