package mem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMemoryZeroFill(t *testing.T) {
	m := NewMemory()
	buf := make([]byte, 16)
	for i := range buf {
		buf[i] = 0xff
	}
	m.Read(0x1234, buf)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("unwritten byte %d reads %d", i, b)
		}
	}
}

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory()
	data := []byte{1, 2, 3, 4, 5}
	m.Write(100, data)
	got := make([]byte, 5)
	m.Read(100, got)
	if !bytes.Equal(got, data) {
		t.Errorf("Read = %v, want %v", got, data)
	}
}

func TestMemoryCrossPage(t *testing.T) {
	m := NewMemory()
	addr := uint64(pageSize - 3)
	data := []byte{10, 20, 30, 40, 50, 60}
	m.Write(addr, data)
	got := make([]byte, 6)
	m.Read(addr, got)
	if !bytes.Equal(got, data) {
		t.Errorf("cross-page Read = %v, want %v", got, data)
	}
}

func TestMemoryScalars(t *testing.T) {
	m := NewMemory()
	m.WriteU64(8, 0xdeadbeefcafef00d)
	if got := m.ReadU64(8); got != 0xdeadbeefcafef00d {
		t.Errorf("ReadU64 = %#x", got)
	}
	m.WriteUint(100, 2, 0xabcd)
	if got := m.ReadUint(100, 2); got != 0xabcd {
		t.Errorf("ReadUint16 = %#x", got)
	}
	if got := m.ReadUint(100, 4); got != 0xabcd {
		t.Errorf("ReadUint32 over 16-bit write = %#x", got)
	}
	m.StoreByte(7, 0x5a)
	if m.LoadByte(7) != 0x5a || m.LoadByte(6) != 0 {
		t.Error("byte accessors wrong")
	}
}

// Property: Memory behaves as a flat array under random writes/reads.
func TestMemoryOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewMemory()
		oracle := make([]byte, 3*pageSize)
		for op := 0; op < 300; op++ {
			addr := uint64(r.Intn(len(oracle) - 70))
			n := 1 + r.Intn(64)
			if r.Intn(2) == 0 {
				data := make([]byte, n)
				r.Read(data)
				m.Write(addr, data)
				copy(oracle[addr:], data)
			} else {
				got := make([]byte, n)
				m.Read(addr, got)
				if !bytes.Equal(got, oracle[addr:int(addr)+n]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCacheGeometryErrors(t *testing.T) {
	cases := [][3]int{
		{0, 64, 8},       // zero size
		{1024, 0, 8},     // zero line
		{1024, 64, 0},    // zero ways
		{1024, 48, 2},    // non power-of-two line
		{96 * 64, 64, 2}, // 48 sets: not a power of two
		{1000, 64, 4},    // does not divide
	}
	for _, c := range cases {
		if _, err := NewCache(c[0], c[1], c[2]); err == nil {
			t.Errorf("NewCache(%v) should fail", c)
		}
	}
}

func TestCacheHitMiss(t *testing.T) {
	c, err := NewCache(8*64, 64, 2) // 4 sets, 2 ways
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(0) {
		t.Error("cold access should miss")
	}
	if !c.Access(0) || !c.Access(63) {
		t.Error("second access to same line should hit")
	}
	if c.Access(64) {
		t.Error("different line should miss")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Errorf("hits=%d misses=%d, want 2, 2", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(2*64, 64, 2) // 1 set, 2 ways
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0 * 64)
	c.Access(1 * 64)
	c.Access(0 * 64) // line 0 now MRU
	c.Access(2 * 64) // evicts line 1
	if !c.Contains(0 * 64) {
		t.Error("MRU line evicted")
	}
	if c.Contains(1 * 64) {
		t.Error("LRU line not evicted")
	}
	if !c.Contains(2 * 64) {
		t.Error("new line not resident")
	}
}

func TestSystemHitVsMissLatency(t *testing.T) {
	cfg := DefaultSysConfig()
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, ok := s.Request(0, 0, false, 64)
	if !ok {
		t.Fatal("first request rejected")
	}
	if r1 != cfg.HitLatency+cfg.MissLatency {
		t.Errorf("cold read ready at %d, want %d", r1, cfg.HitLatency+cfg.MissLatency)
	}
	r2, ok := s.Request(1, 0, false, 64)
	if !ok {
		t.Fatal("second request rejected")
	}
	if r2 != 1+cfg.HitLatency {
		t.Errorf("warm read ready at %d, want %d", r2, 1+cfg.HitLatency)
	}
}

func TestSystemAcceptBandwidth(t *testing.T) {
	cfg := DefaultSysConfig()
	cfg.AcceptPerCyc = 1
	s, _ := NewSystem(cfg)
	if _, ok := s.Request(5, 0, false, 64); !ok {
		t.Fatal("request rejected")
	}
	if _, ok := s.Request(5, 64, false, 64); ok {
		t.Error("second request in one cycle should be rejected")
	}
	if _, ok := s.Request(6, 64, false, 64); !ok {
		t.Error("request next cycle should be accepted")
	}
}

func TestSystemMissBandwidthSerializes(t *testing.T) {
	cfg := DefaultSysConfig()
	cfg.CacheBytes = 0 // every access is DRAM
	cfg.MissInterval = 10
	s, _ := NewSystem(cfg)
	r1, _ := s.Request(0, 0, false, 64)
	r2, _ := s.Request(1, 4096, false, 64)
	if r2 < r1+cfg.MissInterval-1 {
		t.Errorf("misses not serialized: %d then %d", r1, r2)
	}
}

func TestSystemMSHRLimit(t *testing.T) {
	cfg := DefaultSysConfig()
	cfg.CacheBytes = 0
	cfg.MaxInflight = 2
	cfg.MissInterval = 1
	s, _ := NewSystem(cfg)
	if _, ok := s.Request(0, 0, false, 64); !ok {
		t.Fatal("first rejected")
	}
	if _, ok := s.Request(1, 4096, false, 64); !ok {
		t.Fatal("second rejected")
	}
	if _, ok := s.Request(2, 8192, false, 64); ok {
		t.Error("third concurrent miss should be rejected by MSHR limit")
	}
	// After the first completes, a new miss is accepted.
	late := cfg.HitLatency + cfg.MissLatency + 10
	if _, ok := s.Request(late, 8192, false, 64); !ok {
		t.Error("miss after retirement should be accepted")
	}
}

func TestSystemWriteCounts(t *testing.T) {
	s, _ := NewSystem(DefaultSysConfig())
	s.Request(0, 0, true, 32)
	s.Request(1, 64, false, 64)
	if s.Writes != 1 || s.Reads != 1 || s.BytesWritten != 32 || s.BytesRead != 64 {
		t.Errorf("stats: %d/%d reads/writes, %d/%d bytes",
			s.Reads, s.Writes, s.BytesRead, s.BytesWritten)
	}
}

func TestSystemConfigValidation(t *testing.T) {
	bad := DefaultSysConfig()
	bad.LineBytes = 0
	if _, err := NewSystem(bad); err == nil {
		t.Error("invalid config accepted")
	}
	bad = DefaultSysConfig()
	bad.CacheBytes = 1000 // indivisible geometry
	if _, err := NewSystem(bad); err == nil {
		t.Error("invalid cache geometry accepted")
	}
}
