package mem

import "fmt"

// SysConfig parameterizes the timing model of the memory system behind
// the 512-bit engine bus.
type SysConfig struct {
	LineBytes    int // request granularity (64)
	CacheBytes   int // total cache capacity; 0 disables the cache
	CacheWays    int
	HitLatency   uint64 // cycles from accept to data for a cache hit
	MissLatency  uint64 // additional cycles for a DRAM access
	MissInterval uint64 // min cycles between DRAM accesses (bandwidth)
	AcceptPerCyc int    // line requests accepted per cycle (bus width)
	MaxInflight  int    // outstanding misses (MSHRs)
	WriteLatency uint64 // cycles until a write is globally visible
}

// DefaultSysConfig is the configuration in DESIGN.md §6: 256 KB 8-way L2,
// 8-cycle hits, 200-cycle DRAM at one miss per 4 cycles (16 B/cycle DRAM
// bandwidth), one 64 B request accepted per cycle.
func DefaultSysConfig() SysConfig {
	return SysConfig{
		LineBytes:    64,
		CacheBytes:   256 << 10,
		CacheWays:    8,
		HitLatency:   8,
		MissLatency:  200,
		MissInterval: 4,
		AcceptPerCyc: 1,
		MaxInflight:  16,
		WriteLatency: 8,
	}
}

// DRAM is the shared main-memory channel: a bandwidth token bucket.
// Several Systems (one per Softbrain unit, each with a private cache)
// may share one DRAM, contending for its access slots.
type DRAM struct {
	interval uint64 // min cycles between accesses
	nextFree uint64
}

// NewDRAM builds a channel granting one access per interval cycles.
func NewDRAM(interval uint64) *DRAM { return &DRAM{interval: interval} }

// grant reserves the next access slot at or after now and returns its
// start cycle.
func (d *DRAM) grant(now uint64) uint64 {
	start := max64(now, d.nextFree)
	d.nextFree = start + d.interval
	return start
}

// System is the timing front-end the memory stream engine talks to. Data
// moves functionally through Mem; Request answers "when will this line
// arrive" under cache, DRAM-latency, DRAM-bandwidth, and MSHR limits.
type System struct {
	Mem   *Memory
	Cache *Cache
	dram  *DRAM
	cfg   SysConfig

	acceptCycle uint64   // cycle the accept counter refers to
	accepted    int      // requests accepted in acceptCycle
	inflight    []uint64 // completion times of outstanding misses

	// Deferred-grant mode (parallel cluster execution): misses record
	// their request parameters instead of taking a DRAM slot, and the
	// cluster's epoch barrier calls ResolveGrants in unit order so the
	// shared channel is granted in exactly the sequential schedule.
	deferGrants  bool
	deferredReqs []deferredReq

	Reads        uint64
	Writes       uint64
	BytesRead    uint64
	BytesWritten uint64
}

// deferredReq is one miss awaiting its DRAM grant at the epoch barrier.
type deferredReq struct {
	at    uint64 // request cycle
	write bool
}

// Provisional completion times stand in for unresolved deferred grants.
// They live in a range no real cycle count reaches, carry the request
// index in the high bits, and keep room in the low bits for additive
// latency adjustments (fault-injected response delays) applied before
// resolution.
const (
	provisionalBase    = uint64(1) << 62
	provisionalIDShift = 32
)

// IsProvisional reports whether t is an unresolved deferred-grant
// completion time rather than a real cycle.
func IsProvisional(t uint64) bool { return t >= provisionalBase }

// DeferGrants switches deferred-grant mode on or off. Turning it off
// with unresolved grants outstanding would corrupt the MSHR list, so
// the caller must ResolveGrants at every cycle boundary while the mode
// is on.
func (s *System) DeferGrants(on bool) { s.deferGrants = on }

// ResolveGrants grants this cycle's deferred misses against the DRAM
// channel, in request order, and patches the MSHR completion times. It
// returns a resolver mapping any provisional completion time (plus
// additive adjustment) to its real cycle — identity for real times —
// for the engines to patch their own records; nil when nothing was
// deferred this cycle.
func (s *System) ResolveGrants() func(uint64) uint64 {
	if len(s.deferredReqs) == 0 {
		return nil
	}
	real := make([]uint64, len(s.deferredReqs))
	for id, r := range s.deferredReqs {
		start := s.dram.grant(r.at)
		t := start + s.cfg.HitLatency + s.cfg.MissLatency
		if r.write {
			t = max64(t, r.at+s.cfg.WriteLatency)
		}
		real[id] = t
	}
	s.deferredReqs = s.deferredReqs[:0]
	resolve := func(v uint64) uint64 {
		if !IsProvisional(v) {
			return v
		}
		v -= provisionalBase
		id := v >> provisionalIDShift
		delta := v & (1<<provisionalIDShift - 1)
		return real[id] + delta
	}
	for i, t := range s.inflight {
		s.inflight[i] = resolve(t)
	}
	return resolve
}

// NewSystem builds a memory system over a fresh Memory and a private
// DRAM channel.
func NewSystem(cfg SysConfig) (*System, error) {
	return NewSystemShared(cfg, NewMemory(), NewDRAM(cfg.MissInterval))
}

// NewSystemShared builds a memory system (private cache and accept
// port) over a shared backing store and DRAM channel.
func NewSystemShared(cfg SysConfig, backing *Memory, dram *DRAM) (*System, error) {
	if cfg.LineBytes <= 0 || cfg.AcceptPerCyc <= 0 || cfg.MaxInflight <= 0 {
		return nil, fmt.Errorf("mem: invalid system config %+v", cfg)
	}
	s := &System{Mem: backing, dram: dram, cfg: cfg}
	if cfg.CacheBytes > 0 {
		c, err := NewCache(cfg.CacheBytes, cfg.LineBytes, cfg.CacheWays)
		if err != nil {
			return nil, err
		}
		s.Cache = c
	}
	return s, nil
}

// Config returns the system's timing configuration.
func (s *System) Config() SysConfig { return s.cfg }

// Request models one line-granular access issued at cycle now. It returns
// the cycle at which the data is available (reads) or durable (writes),
// and whether the request was accepted this cycle; a rejected request
// must be retried (backpressure). bytes is the useful payload size, for
// bandwidth statistics.
func (s *System) Request(now uint64, lineAddr uint64, write bool, bytes int) (ready uint64, accepted bool) {
	if now != s.acceptCycle {
		s.acceptCycle = now
		s.accepted = 0
	}
	if s.accepted >= s.cfg.AcceptPerCyc {
		return 0, false
	}

	hit := false // with no cache configured, every access goes to DRAM
	if s.Cache != nil {
		hit = s.Cache.Contains(lineAddr)
	}
	deferred := false
	if !hit {
		// A miss needs an MSHR and a DRAM bandwidth slot.
		s.retire(now)
		if len(s.inflight) >= s.cfg.MaxInflight {
			return 0, false
		}
		if s.deferGrants {
			// Acceptance (MSHR + accept port) is unit-local and decided
			// now; the shared DRAM slot is granted at the epoch barrier.
			ready = provisionalBase + uint64(len(s.deferredReqs))<<provisionalIDShift
			s.deferredReqs = append(s.deferredReqs, deferredReq{at: now, write: write})
			deferred = true
		} else {
			start := s.dram.grant(now)
			ready = start + s.cfg.HitLatency + s.cfg.MissLatency
		}
		s.inflight = append(s.inflight, ready)
		if s.Cache != nil {
			s.Cache.Access(lineAddr) // allocate
		}
	} else {
		if s.Cache != nil {
			s.Cache.Access(lineAddr) // update LRU, count hit
		}
		ready = now + s.cfg.HitLatency
	}
	if write {
		if !deferred { // deferred writes take the write-latency max at resolve
			ready = max64(ready, now+s.cfg.WriteLatency)
		}
		s.Writes++
		s.BytesWritten += uint64(bytes)
	} else {
		s.Reads++
		s.BytesRead += uint64(bytes)
	}
	s.accepted++
	return ready, true
}

// NextMissAccept returns the earliest cycle at which a new miss could
// claim an MSHR: now when one is free, otherwise the earliest
// outstanding-miss completion. Unresolved provisional grants (deferred
// mode) have unknown completion times, so they answer now — the
// conservative direction for a wake hint.
func (s *System) NextMissAccept(now uint64) uint64 {
	live, earliest := 0, uint64(0)
	for _, t := range s.inflight {
		if t <= now {
			continue
		}
		if IsProvisional(t) {
			return now
		}
		live++
		if earliest == 0 || t < earliest {
			earliest = t
		}
	}
	if live < s.cfg.MaxInflight {
		return now
	}
	return earliest
}

// PendingTimed reports whether any outstanding miss completes after
// now. While one exists, an engine rejected for a full MSHR list will
// be accepted at a known future cycle — the machine is stalled, not
// deadlocked.
func (s *System) PendingTimed(now uint64) bool {
	for _, t := range s.inflight {
		if t > now {
			return true
		}
	}
	return false
}

// retire drops completed misses from the MSHR list.
func (s *System) retire(now uint64) {
	live := s.inflight[:0]
	for _, t := range s.inflight {
		if t > now {
			live = append(live, t)
		}
	}
	s.inflight = live
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
