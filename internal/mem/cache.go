package mem

import "fmt"

// Cache is a set-associative, write-allocate, LRU tag store. Data is kept
// functionally in Memory (the simulator has a single writer per line at a
// time, so tags alone determine timing).
type Cache struct {
	lineShift uint
	sets      int
	ways      int
	tags      []uint64 // sets*ways entries; tag 0 means empty
	lru       []uint64 // per-entry last-use stamp
	stamp     uint64

	Hits   uint64
	Misses uint64
}

// NewCache builds a cache of size totalBytes with the given line size and
// associativity. Sizes must be powers of two and consistent.
func NewCache(totalBytes, lineBytes, ways int) (*Cache, error) {
	if totalBytes <= 0 || lineBytes <= 0 || ways <= 0 {
		return nil, fmt.Errorf("mem: non-positive cache geometry %d/%d/%d", totalBytes, lineBytes, ways)
	}
	if lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("mem: line size %d not a power of two", lineBytes)
	}
	lines := totalBytes / lineBytes
	if lines*lineBytes != totalBytes || lines%ways != 0 {
		return nil, fmt.Errorf("mem: cache %dB/%dB lines/%d ways does not divide evenly", totalBytes, lineBytes, ways)
	}
	sets := lines / ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("mem: set count %d not a power of two", sets)
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	return &Cache{
		lineShift: shift,
		sets:      sets,
		ways:      ways,
		tags:      make([]uint64, sets*ways),
		lru:       make([]uint64, sets*ways),
	}, nil
}

// Access looks up the line containing addr, allocating it on miss, and
// reports whether it hit. The address is truncated to its line.
func (c *Cache) Access(addr uint64) (hit bool) {
	line := addr>>c.lineShift + 1 // +1 so tag 0 means empty
	set := int(line) & (c.sets - 1)
	base := set * c.ways
	c.stamp++
	victim, oldest := base, c.lru[base]
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.tags[i] == line {
			c.lru[i] = c.stamp
			c.Hits++
			return true
		}
		if c.lru[i] < oldest {
			victim, oldest = i, c.lru[i]
		}
	}
	c.tags[victim] = line
	c.lru[victim] = c.stamp
	c.Misses++
	return false
}

// Contains reports whether the line holding addr is resident, without
// updating LRU or statistics.
func (c *Cache) Contains(addr uint64) bool {
	line := addr>>c.lineShift + 1
	base := (int(line) & (c.sets - 1)) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line {
			return true
		}
	}
	return false
}
