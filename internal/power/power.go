// Package power models Softbrain's area and power. The component
// breakdown reproduces Table 3 of the paper (55 nm, 1 GHz, numbers from
// the synthesized Chisel design): peak power corresponds to the maximum
// activity factors the paper uses, and average power scales each
// component's dynamic share by the activity the simulator observed.
package power

import (
	"softbrain/internal/core"
	"softbrain/internal/dfg"
)

// FreqGHz is the design's clock; energy = power x cycles / frequency.
const FreqGHz = 1.0

// Component is one row of the Table 3 breakdown.
type Component struct {
	Name    string
	AreaMM2 float64
	PeakMW  float64
	// StaticFrac is the fraction of peak power that burns regardless of
	// activity (leakage + clock tree).
	StaticFrac float64
}

// Table 3 component constants (55 nm).
var (
	ControlCore = Component{"Control Core + 16kB I&D$", 0.16, 39.1, 0.40}
	CGRANetwork = Component{"CGRA Network", 0.12, 31.2, 0.25}
	CGRAFUs     = Component{"FUs (4x5)", 0.04, 24.4, 0.15}
	StreamEngs  = Component{"5x Stream Engines", 0.02, 18.3, 0.25}
	Scratchpad  = Component{"Scratchpad (4KB)", 0.10, 2.6, 0.30}
	VectorPorts = Component{"Vector Ports (In & Out)", 0.03, 3.6, 0.25}
)

// Model computes power and energy for one Softbrain unit configuration.
type Model struct {
	Components []Component
	fuLanes    int // peak sub-word ops per cycle across the fabric
}

// NewModel builds the model for the given machine configuration; areas
// and peak powers scale linearly with fabric size and scratchpad
// capacity relative to the paper's 5x4 / 4 KB baseline.
func NewModel(cfg core.Config) *Model {
	f := cfg.Fabric
	fuScale := float64(f.NumPEs()) / 20.0
	padScale := float64(cfg.ScratchBytes) / 4096.0
	scale := func(c Component, s float64) Component {
		c.AreaMM2 *= s
		c.PeakMW *= s
		return c
	}
	// Peak FU throughput: every PE doing 4-way 16-bit subword ops.
	return &Model{
		Components: []Component{
			ControlCore,
			scale(CGRANetwork, fuScale),
			scale(CGRAFUs, fuScale),
			StreamEngs,
			scale(Scratchpad, padScale),
			VectorPorts,
		},
		fuLanes: f.NumPEs() * 4,
	}
}

// UnitArea is the area of one Softbrain unit in mm^2.
func (m *Model) UnitArea() float64 {
	a := 0.0
	for _, c := range m.Components {
		a += c.AreaMM2
	}
	return a
}

// UnitPeakPower is one unit's peak power in mW.
func (m *Model) UnitPeakPower() float64 {
	p := 0.0
	for _, c := range m.Components {
		p += c.PeakMW
	}
	return p
}

// Activity summarizes per-component utilization in [0,1], derived from
// run statistics.
type Activity struct {
	Core    float64
	Network float64
	FUs     float64
	Engines float64
	Pad     float64
	Ports   float64
}

// ActivityOf derives activity factors from a run. units is the number of
// Softbrain units the stats aggregate over.
func (m *Model) ActivityOf(s *core.Stats, units int) Activity {
	if s.Cycles == 0 || units == 0 {
		return Activity{}
	}
	cyc := float64(s.Cycles) * float64(units)
	clamp := func(x float64) float64 {
		if x > 1 {
			return 1
		}
		return x
	}
	// Port traffic: every byte through a vector port, both directions.
	portBytes := float64(s.MemBytesRead + s.MemBytesWritten + s.ScratchBytesRead +
		s.ScratchBytesWrit + 2*s.RecurrenceBytes)
	return Activity{
		Core:    clamp(float64(s.CoreInstrs) / cyc),
		Network: clamp(float64(s.Instances) / float64(s.Cycles) / float64(units)),
		FUs:     clamp(float64(s.FUOps) / (cyc * float64(m.fuLanes))),
		Engines: clamp(float64(s.MSEBusy+s.SSEBusy+s.RSEBusy) / (3 * cyc)),
		Pad:     clamp(float64(s.ScratchBytesRead+s.ScratchBytesWrit) / (cyc * 128)),
		Ports:   clamp(portBytes / (cyc * 128)),
	}
}

// AveragePower is the mean power of `units` Softbrain units running the
// given workload, in mW.
func (m *Model) AveragePower(s *core.Stats, units int) float64 {
	act := m.ActivityOf(s, units)
	factors := []float64{act.Core, act.Network, act.FUs, act.Engines, act.Pad, act.Ports}
	total := 0.0
	for i, c := range m.Components {
		total += c.PeakMW * (c.StaticFrac + (1-c.StaticFrac)*factors[i])
	}
	return total * float64(units)
}

// EnergyNJ is the energy of the run in nanojoules: mW x cycles at 1 GHz
// = picojoules per cycle-milliwatt.
func (m *Model) EnergyNJ(s *core.Stats, units int) float64 {
	return m.AveragePower(s, units) * float64(s.Cycles) / FreqGHz / 1e3
}

// FUClassCosts gives per-operation energy (pJ) by FU class at 55 nm;
// the Aladdin-like ASIC model shares these constants so the comparison
// is apples-to-apples.
var FUClassCosts = map[dfg.FUClass]struct {
	AreaMM2  float64
	EnergyPJ float64
}{
	dfg.FUAlu: {0.0008, 0.9},
	dfg.FUMul: {0.0030, 3.1},
	dfg.FUDiv: {0.0060, 7.5},
	dfg.FUSig: {0.0040, 3.5},
}

// SRAMArea returns mm^2 for an SRAM of the given bytes (CACTI-flavored
// sqrt-ish scaling anchored at 4 KB = 0.10 mm^2).
func SRAMArea(bytes int) float64 {
	return 0.10 * float64(bytes) / 4096.0
}

// SRAMEnergyPJ is the energy of one 64-bit SRAM access.
const SRAMEnergyPJ = 1.2
