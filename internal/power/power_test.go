package power

import (
	"math"
	"testing"

	"softbrain/internal/core"
)

func TestTable3UnitTotals(t *testing.T) {
	m := NewModel(core.DNNConfig())
	// Table 3: one Softbrain unit is 0.47 mm^2 and 119.3 mW peak.
	if got := m.UnitArea(); math.Abs(got-0.47) > 0.02 {
		t.Errorf("unit area %.3f mm^2, Table 3 says 0.47", got)
	}
	if got := m.UnitPeakPower(); math.Abs(got-119.3) > 2 {
		t.Errorf("unit peak power %.1f mW, Table 3 says 119.3", got)
	}
}

func TestEightUnitsVsDianNao(t *testing.T) {
	m := NewModel(core.DNNConfig())
	area8 := 8 * m.UnitArea()
	power8 := 8 * m.UnitPeakPower()
	// Table 3: 3.76 mm^2 and 954.4 mW for 8 units; overheads vs DianNao
	// of 1.74x area and 2.28x power.
	if math.Abs(area8-3.76) > 0.1 {
		t.Errorf("8-unit area %.2f, want ~3.76", area8)
	}
	if math.Abs(power8-954.4) > 10 {
		t.Errorf("8-unit power %.1f, want ~954.4", power8)
	}
	if r := area8 / 2.16; r < 1.5 || r > 2.1 {
		t.Errorf("area overhead vs DianNao %.2fx, paper says 1.74x", r)
	}
	if r := power8 / 418.3; r < 2.0 || r > 2.6 {
		t.Errorf("power overhead vs DianNao %.2fx, paper says 2.28x", r)
	}
}

func TestAveragePowerScalesWithActivity(t *testing.T) {
	m := NewModel(core.DefaultConfig())
	idle := &core.Stats{Cycles: 1000}
	busy := &core.Stats{
		Cycles: 1000, CoreInstrs: 900, Instances: 1000,
		FUOps: 80000, MSEBusy: 1000, SSEBusy: 1000, RSEBusy: 1000,
		ScratchBytesRead: 64000, ScratchBytesWrit: 64000,
		MemBytesRead: 64000, MemBytesWritten: 64000,
	}
	pi := m.AveragePower(idle, 1)
	pb := m.AveragePower(busy, 1)
	if pi <= 0 || pb <= pi {
		t.Errorf("power: idle %.1f, busy %.1f", pi, pb)
	}
	if pb > m.UnitPeakPower()*1.01 {
		t.Errorf("busy power %.1f exceeds peak %.1f", pb, m.UnitPeakPower())
	}
	// Static floor: an idle unit still burns leakage and clocks.
	if pi < 0.15*m.UnitPeakPower() {
		t.Errorf("idle power %.1f suspiciously low", pi)
	}
}

func TestActivityClamped(t *testing.T) {
	m := NewModel(core.DefaultConfig())
	crazy := &core.Stats{Cycles: 1, CoreInstrs: 1 << 40, FUOps: 1 << 50, Instances: 1 << 40}
	a := m.ActivityOf(crazy, 1)
	for _, v := range []float64{a.Core, a.Network, a.FUs, a.Engines, a.Pad, a.Ports} {
		if v < 0 || v > 1 {
			t.Errorf("activity %v out of [0,1]", v)
		}
	}
	if z := m.ActivityOf(&core.Stats{}, 1); z != (Activity{}) {
		t.Error("zero-cycle stats should give zero activity")
	}
}

func TestEnergyConsistency(t *testing.T) {
	m := NewModel(core.DefaultConfig())
	s := &core.Stats{Cycles: 2000, FUOps: 10000, CoreInstrs: 500}
	e := m.EnergyNJ(s, 1)
	want := m.AveragePower(s, 1) * 2000 / 1e3
	if math.Abs(e-want) > 1e-9 {
		t.Errorf("energy %.3f, want %.3f", e, want)
	}
}

func TestMultiUnitPower(t *testing.T) {
	m := NewModel(core.DNNConfig())
	s := &core.Stats{Cycles: 1000, FUOps: 1000}
	p1 := m.AveragePower(s, 1)
	p8 := m.AveragePower(s, 8)
	if p8 < 7.9*p1*0.5 || p8 > 8.1*p1 {
		t.Errorf("8-unit power %.1f not ~8x single %.1f", p8, p1)
	}
}

func TestSRAMScaling(t *testing.T) {
	if SRAMArea(4096) != 0.10 {
		t.Error("4KB anchor wrong")
	}
	if SRAMArea(8192) <= SRAMArea(4096) {
		t.Error("bigger SRAM should be bigger")
	}
}
