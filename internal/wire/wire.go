// Package wire is the hardened JSON wire format for stream-dataflow
// program and machine-config submissions — the format sdserve accepts
// from untrusted clients (docs/SERVE.md). Decoding is strict by
// design: unknown fields, fields inapplicable to a command, oversized
// traces or configuration blobs, and unencodable commands are all
// rejected with a typed *Error naming the offending path, never with a
// panic or a silently defaulted value. Every accepted program is one
// the binary ISA can express: each command is built from named fields
// and then proven encodable via isa.EncodeCommand, so the server-side
// machine executes exactly what a well-formed client sent.
//
// The encoder (FromProgram/FromConfig) is the exact inverse of the
// decoder; the fuzz harness in wire_test.go round-trips generated
// programs both ways.
package wire

import (
	"bytes"
	"encoding/json"
	"fmt"

	"softbrain/internal/core"
	"softbrain/internal/faults"
	"softbrain/internal/isa"
)

// Hard decode limits. They bound the resources one submission can
// claim before any simulation starts; the server layers its own HTTP
// body limit on top.
const (
	MaxNameBytes   = 128     // program name length
	MaxTraceOps    = 65536   // trace entries (commands + delays)
	MaxConfigBlobs = 64      // configuration bitstreams per program
	MaxDelayCycles = 1 << 32 // one host-delay span
)

// ErrCode classifies a wire rejection.
type ErrCode string

const (
	ErrSyntax       ErrCode = "syntax"        // malformed JSON
	ErrUnknownField ErrCode = "unknown-field" // field not in the schema, or not applicable to the op
	ErrMissingField ErrCode = "missing-field" // required field absent
	ErrBadValue     ErrCode = "bad-value"     // value outside the architected range
	ErrTooLarge     ErrCode = "too-large"     // a decode limit exceeded
	ErrUnknownOp    ErrCode = "unknown-op"    // command mnemonic not in Table 2
	ErrUnencodable  ErrCode = "unencodable"   // command rejected by the binary ISA encoder
)

// Error is a typed wire rejection: what rule was broken, where.
type Error struct {
	Code ErrCode
	Path string // JSON path, e.g. "trace[12].cmd"
	Msg  string
}

func (e *Error) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("wire: %s: %s", e.Code, e.Msg)
	}
	return fmt.Sprintf("wire: %s at %s: %s", e.Code, e.Path, e.Msg)
}

func reject(code ErrCode, path, format string, args ...any) *Error {
	return &Error{Code: code, Path: path, Msg: fmt.Sprintf(format, args...)}
}

// Pattern is the JSON form of the two-dimensional affine access
// pattern (isa.Affine, Figure 5).
type Pattern struct {
	Start      uint64 `json:"start"`
	AccessSize uint64 `json:"access_size"`
	Stride     uint64 `json:"stride,omitempty"`
	Strides    uint64 `json:"strides,omitempty"`
}

func (p Pattern) affine() isa.Affine {
	return isa.Affine{Start: p.Start, AccessSize: p.AccessSize, Stride: p.Stride, Strides: p.Strides}
}

func fromAffine(a isa.Affine) *Pattern {
	return &Pattern{Start: a.Start, AccessSize: a.AccessSize, Stride: a.Stride, Strides: a.Strides}
}

// Cmd is the JSON form of one stream-dataflow command: the Table 2
// mnemonic plus exactly the named fields that command takes. Fields
// set on a command that does not take them are rejected, not ignored.
type Cmd struct {
	Op string `json:"op"`

	Addr        uint64   `json:"addr,omitempty"`         // SD_Config
	Size        uint64   `json:"size,omitempty"`         // SD_Config
	Src         *Pattern `json:"src,omitempty"`          // memory/scratch source pattern
	DstPattern  *Pattern `json:"dst_pattern,omitempty"`  // SD_Port_Mem destination
	ScratchAddr uint64   `json:"scratch_addr,omitempty"` // scratchpad destination
	Value       uint64   `json:"value,omitempty"`        // SD_Const_Port
	Elem        uint8    `json:"elem,omitempty"`         // element bytes (1/2/4/8)
	Count       uint64   `json:"count,omitempty"`        // element count
	Dst         uint8    `json:"dst,omitempty"`          // input vector port
	SrcPort     uint8    `json:"src_port,omitempty"`     // output vector port
	Idx         uint8    `json:"idx,omitempty"`          // indirect index port
	IdxElem     uint8    `json:"idx_elem,omitempty"`     // index element bytes
	Offset      uint64   `json:"offset,omitempty"`       // indirect base address
	Scale       uint8    `json:"scale,omitempty"`        // indirect index scale
	DataElem    uint8    `json:"data_elem,omitempty"`    // indirect data element bytes
}

// cmdFields maps each mnemonic to the exact JSON field set it takes.
var cmdFields = map[string][]string{
	"SD_Config":             {"addr", "size"},
	"SD_Mem_Scratch":        {"src", "scratch_addr"},
	"SD_Scratch_Port":       {"src", "dst"},
	"SD_Mem_Port":           {"src", "dst"},
	"SD_Const_Port":         {"value", "elem", "count", "dst"},
	"SD_Clean_Port":         {"src_port", "elem", "count"},
	"SD_Port_Port":          {"src_port", "elem", "count", "dst"},
	"SD_Port_Scratch":       {"src_port", "elem", "count", "scratch_addr"},
	"SD_Port_Mem":           {"src_port", "dst_pattern"},
	"SD_IndPort_Port":       {"idx", "idx_elem", "offset", "scale", "data_elem", "count", "dst"},
	"SD_IndPort_Mem":        {"idx", "idx_elem", "offset", "scale", "data_elem", "count", "src_port"},
	"SD_Barrier_Scratch_Rd": {},
	"SD_Barrier_Scratch_Wr": {},
	"SD_Barrier_All":        {},
}

// Op is one trace step: exactly one of a host-delay span or a command.
type Op struct {
	Delay uint64 `json:"delay,omitempty"`
	Cmd   *Cmd   `json:"cmd,omitempty"`
}

// ConfigBlob is one CGRA configuration bitstream at its memory address.
// Data is base64 in the JSON encoding (encoding/json []byte rules).
type ConfigBlob struct {
	Addr uint64 `json:"addr"`
	Data []byte `json:"data"`
}

// Program is the JSON form of a stream-dataflow program.
type Program struct {
	Name    string       `json:"name"`
	Configs []ConfigBlob `json:"configs,omitempty"`
	Trace   []Op         `json:"trace"`
}

// FaultSpec names a seeded fault profile (see internal/faults).
type FaultSpec struct {
	Profile string `json:"profile"`
	Seed    int64  `json:"seed,omitempty"`
}

// Config is the JSON form of a machine configuration: a named fabric
// preset plus the scalar knobs a remote client may turn. Arbitrary
// fabrics are deliberately not accepted over the wire — the preset
// bounds the resources one submission can claim.
type Config struct {
	Preset         string     `json:"preset,omitempty"` // "default" (the zero value) or "dnn"
	WatchdogCycles uint64     `json:"watchdog_cycles,omitempty"`
	NoSkipAhead    bool       `json:"no_skip_ahead,omitempty"`
	Faults         *FaultSpec `json:"faults,omitempty"`
}

// Build validates the wire config and produces the core.Config it
// names. Unknown presets and fault profiles reject with a typed error.
func (c Config) Build() (core.Config, error) {
	var cfg core.Config
	switch c.Preset {
	case "", "default":
		cfg = core.DefaultConfig()
	case "dnn":
		cfg = core.DNNConfig()
	default:
		return core.Config{}, reject(ErrBadValue, "config.preset", "unknown preset %q (default, dnn)", c.Preset)
	}
	cfg.WatchdogCycles = c.WatchdogCycles
	cfg.NoSkipAhead = c.NoSkipAhead
	if c.Faults != nil {
		fc, err := faults.Profile(c.Faults.Profile, c.Faults.Seed)
		if err != nil {
			return core.Config{}, reject(ErrBadValue, "config.faults.profile", "%v", err)
		}
		cfg.Faults = &fc
	}
	if err := cfg.Validate(); err != nil {
		return core.Config{}, reject(ErrBadValue, "config", "%v", err)
	}
	return cfg, nil
}

// FromConfig renders the wire form of the scalar knobs of cfg. The
// fabric itself is not serialized (preset is the caller's to set), and
// neither is a fault profile — faults.Config does not carry its
// profile name, so fault injection is requested wire-side by name.
func FromConfig(cfg core.Config, preset string) Config {
	return Config{Preset: preset, WatchdogCycles: cfg.WatchdogCycles, NoSkipAhead: cfg.NoSkipAhead}
}

// UnmarshalProgram strictly decodes data: unknown fields anywhere are
// rejected, as is anything over the package's decode limits. The
// result still needs Build to become a runnable core.Program.
func UnmarshalProgram(data []byte) (Program, error) {
	var wp Program
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wp); err != nil {
		return Program{}, reject(ErrSyntax, "", "%v", err)
	}
	// A second value after the program object is a smuggling attempt.
	if dec.More() {
		return Program{}, reject(ErrSyntax, "", "trailing data after program object")
	}
	return wp, nil
}

// Build validates the wire program and produces the core.Program it
// describes. Every command is checked against its field set, its
// architected value ranges, and the binary ISA encoder.
func (wp Program) Build() (*core.Program, error) {
	if len(wp.Name) > MaxNameBytes {
		return nil, reject(ErrTooLarge, "name", "%d bytes, limit %d", len(wp.Name), MaxNameBytes)
	}
	if len(wp.Trace) > MaxTraceOps {
		return nil, reject(ErrTooLarge, "trace", "%d ops, limit %d", len(wp.Trace), MaxTraceOps)
	}
	if len(wp.Configs) > MaxConfigBlobs {
		return nil, reject(ErrTooLarge, "configs", "%d blobs, limit %d", len(wp.Configs), MaxConfigBlobs)
	}
	p := core.NewProgram(wp.Name)
	for i, cb := range wp.Configs {
		path := fmt.Sprintf("configs[%d]", i)
		if len(cb.Data) == 0 {
			return nil, reject(ErrMissingField, path, "empty configuration bitstream")
		}
		if len(cb.Data) > core.ConfigSlotBytes {
			return nil, reject(ErrTooLarge, path, "%d bytes, slot is %d", len(cb.Data), core.ConfigSlotBytes)
		}
		if cb.Addr < core.ConfigSpace {
			return nil, reject(ErrBadValue, path, "address %#x below the configuration space %#x", cb.Addr, core.ConfigSpace)
		}
		if _, dup := p.Configs[cb.Addr]; dup {
			return nil, reject(ErrBadValue, path, "duplicate configuration address %#x", cb.Addr)
		}
		p.Configs[cb.Addr] = append([]byte(nil), cb.Data...)
	}
	for i, op := range wp.Trace {
		path := fmt.Sprintf("trace[%d]", i)
		switch {
		case op.Cmd == nil && op.Delay == 0:
			return nil, reject(ErrMissingField, path, "op needs a cmd or a non-zero delay")
		case op.Cmd != nil && op.Delay != 0:
			return nil, reject(ErrBadValue, path, "op has both a cmd and a delay")
		case op.Cmd == nil:
			if op.Delay > MaxDelayCycles {
				return nil, reject(ErrTooLarge, path+".delay", "%d cycles, limit %d", op.Delay, uint64(MaxDelayCycles))
			}
			p.Delay(op.Delay)
		default:
			cmd, err := op.Cmd.build(path + ".cmd")
			if err != nil {
				return nil, err
			}
			if _, err := isa.EncodeCommand(cmd); err != nil {
				return nil, reject(ErrUnencodable, path+".cmd", "%v", err)
			}
			p.Trace = append(p.Trace, core.TraceOp{Cmd: cmd})
		}
	}
	if err := p.Err(); err != nil {
		return nil, reject(ErrBadValue, "trace", "%v", err)
	}
	return p, nil
}

// build converts one wire command to its isa.Command, enforcing the
// per-op field set: a field set on a command that does not take it is
// an unknown field, not noise.
func (c *Cmd) build(path string) (isa.Command, error) {
	fields, ok := cmdFields[c.Op]
	if !ok {
		return nil, reject(ErrUnknownOp, path+".op", "%q is not a Table 2 command", c.Op)
	}
	if err := c.checkFieldSet(path, fields); err != nil {
		return nil, err
	}
	elem := func(field string, v uint8) (isa.ElemSize, error) {
		e := isa.ElemSize(v)
		if v == 0 {
			e = isa.Elem64 // elem defaults to the full word, like the emitter API
		}
		if !e.Valid() {
			return 0, reject(ErrBadValue, path+"."+field, "element size %d (1, 2, 4, 8)", v)
		}
		return e, nil
	}
	switch c.Op {
	case "SD_Config":
		return isa.Config{Addr: c.Addr, Size: c.Size}, nil
	case "SD_Mem_Scratch":
		if c.Src == nil {
			return nil, reject(ErrMissingField, path+".src", "source pattern required")
		}
		return isa.MemScratch{Src: c.Src.affine(), ScratchAddr: c.ScratchAddr}, nil
	case "SD_Scratch_Port":
		if c.Src == nil {
			return nil, reject(ErrMissingField, path+".src", "source pattern required")
		}
		return isa.ScratchPort{Src: c.Src.affine(), Dst: isa.InPortID(c.Dst)}, nil
	case "SD_Mem_Port":
		if c.Src == nil {
			return nil, reject(ErrMissingField, path+".src", "source pattern required")
		}
		return isa.MemPort{Src: c.Src.affine(), Dst: isa.InPortID(c.Dst)}, nil
	case "SD_Const_Port":
		e, err := elem("elem", c.Elem)
		if err != nil {
			return nil, err
		}
		return isa.ConstPort{Value: c.Value, Elem: e, Count: c.Count, Dst: isa.InPortID(c.Dst)}, nil
	case "SD_Clean_Port":
		e, err := elem("elem", c.Elem)
		if err != nil {
			return nil, err
		}
		return isa.CleanPort{Src: isa.OutPortID(c.SrcPort), Elem: e, Count: c.Count}, nil
	case "SD_Port_Port":
		e, err := elem("elem", c.Elem)
		if err != nil {
			return nil, err
		}
		return isa.PortPort{Src: isa.OutPortID(c.SrcPort), Elem: e, Count: c.Count, Dst: isa.InPortID(c.Dst)}, nil
	case "SD_Port_Scratch":
		e, err := elem("elem", c.Elem)
		if err != nil {
			return nil, err
		}
		return isa.PortScratch{Src: isa.OutPortID(c.SrcPort), Elem: e, Count: c.Count, ScratchAddr: c.ScratchAddr}, nil
	case "SD_Port_Mem":
		if c.DstPattern == nil {
			return nil, reject(ErrMissingField, path+".dst_pattern", "destination pattern required")
		}
		return isa.PortMem{Src: isa.OutPortID(c.SrcPort), Dst: c.DstPattern.affine()}, nil
	case "SD_IndPort_Port":
		ie, err := elem("idx_elem", c.IdxElem)
		if err != nil {
			return nil, err
		}
		de, err := elem("data_elem", c.DataElem)
		if err != nil {
			return nil, err
		}
		return isa.IndPortPort{Idx: isa.InPortID(c.Idx), IdxElem: ie, Offset: c.Offset,
			Scale: c.Scale, DataElem: de, Count: c.Count, Dst: isa.InPortID(c.Dst)}, nil
	case "SD_IndPort_Mem":
		ie, err := elem("idx_elem", c.IdxElem)
		if err != nil {
			return nil, err
		}
		de, err := elem("data_elem", c.DataElem)
		if err != nil {
			return nil, err
		}
		return isa.IndPortMem{Idx: isa.InPortID(c.Idx), IdxElem: ie, Offset: c.Offset,
			Scale: c.Scale, DataElem: de, Count: c.Count, Src: isa.OutPortID(c.SrcPort)}, nil
	case "SD_Barrier_Scratch_Rd":
		return isa.BarrierScratchRd{}, nil
	case "SD_Barrier_Scratch_Wr":
		return isa.BarrierScratchWr{}, nil
	case "SD_Barrier_All":
		return isa.BarrierAll{}, nil
	}
	return nil, reject(ErrUnknownOp, path+".op", "%q is not a Table 2 command", c.Op)
}

// checkFieldSet rejects any populated field outside the op's set.
func (c *Cmd) checkFieldSet(path string, allowed []string) error {
	in := func(f string) bool {
		for _, a := range allowed {
			if a == f {
				return true
			}
		}
		return false
	}
	set := map[string]bool{
		"addr":         c.Addr != 0,
		"size":         c.Size != 0,
		"src":          c.Src != nil,
		"dst_pattern":  c.DstPattern != nil,
		"scratch_addr": c.ScratchAddr != 0,
		"value":        c.Value != 0,
		"elem":         c.Elem != 0,
		"count":        c.Count != 0,
		"dst":          c.Dst != 0,
		"src_port":     c.SrcPort != 0,
		"idx":          c.Idx != 0,
		"idx_elem":     c.IdxElem != 0,
		"offset":       c.Offset != 0,
		"scale":        c.Scale != 0,
		"data_elem":    c.DataElem != 0,
	}
	for f, isSet := range set {
		if isSet && !in(f) {
			return reject(ErrUnknownField, path+"."+f, "field %s does not apply to %s", f, c.Op)
		}
	}
	return nil
}

// DecodeProgram is UnmarshalProgram followed by Build: raw JSON in,
// runnable program out, every rejection typed.
func DecodeProgram(data []byte) (*core.Program, error) {
	wp, err := UnmarshalProgram(data)
	if err != nil {
		return nil, err
	}
	return wp.Build()
}

// FromProgram renders p in the wire form. It is the exact inverse of
// Build for every encodable program (see the round-trip fuzz test).
func FromProgram(p *core.Program) (Program, error) {
	wp := Program{Name: p.Name}
	for _, addr := range sortedAddrs(p.Configs) {
		wp.Configs = append(wp.Configs, ConfigBlob{Addr: addr, Data: p.Configs[addr]})
	}
	for i, op := range p.Trace {
		if op.Cmd == nil {
			wp.Trace = append(wp.Trace, Op{Delay: op.Delay})
			continue
		}
		wc, err := fromCommand(op.Cmd)
		if err != nil {
			return Program{}, fmt.Errorf("wire: trace[%d]: %w", i, err)
		}
		wp.Trace = append(wp.Trace, Op{Cmd: wc})
	}
	return wp, nil
}

// EncodeProgram is FromProgram rendered to JSON bytes.
func EncodeProgram(p *core.Program) ([]byte, error) {
	wp, err := FromProgram(p)
	if err != nil {
		return nil, err
	}
	return json.Marshal(wp)
}

func sortedAddrs(m map[uint64][]byte) []uint64 {
	addrs := make([]uint64, 0, len(m))
	for a := range m {
		addrs = append(addrs, a)
	}
	for i := 1; i < len(addrs); i++ { // insertion sort; len <= MaxConfigBlobs
		for j := i; j > 0 && addrs[j-1] > addrs[j]; j-- {
			addrs[j-1], addrs[j] = addrs[j], addrs[j-1]
		}
	}
	return addrs
}

func fromCommand(cmd isa.Command) (*Cmd, error) {
	switch c := cmd.(type) {
	case isa.Config:
		return &Cmd{Op: "SD_Config", Addr: c.Addr, Size: c.Size}, nil
	case isa.MemScratch:
		return &Cmd{Op: "SD_Mem_Scratch", Src: fromAffine(c.Src), ScratchAddr: c.ScratchAddr}, nil
	case isa.ScratchPort:
		return &Cmd{Op: "SD_Scratch_Port", Src: fromAffine(c.Src), Dst: uint8(c.Dst)}, nil
	case isa.MemPort:
		return &Cmd{Op: "SD_Mem_Port", Src: fromAffine(c.Src), Dst: uint8(c.Dst)}, nil
	case isa.ConstPort:
		return &Cmd{Op: "SD_Const_Port", Value: c.Value, Elem: uint8(c.Elem), Count: c.Count, Dst: uint8(c.Dst)}, nil
	case isa.CleanPort:
		return &Cmd{Op: "SD_Clean_Port", SrcPort: uint8(c.Src), Elem: uint8(c.Elem), Count: c.Count}, nil
	case isa.PortPort:
		return &Cmd{Op: "SD_Port_Port", SrcPort: uint8(c.Src), Elem: uint8(c.Elem), Count: c.Count, Dst: uint8(c.Dst)}, nil
	case isa.PortScratch:
		return &Cmd{Op: "SD_Port_Scratch", SrcPort: uint8(c.Src), Elem: uint8(c.Elem), Count: c.Count, ScratchAddr: c.ScratchAddr}, nil
	case isa.PortMem:
		return &Cmd{Op: "SD_Port_Mem", SrcPort: uint8(c.Src), DstPattern: fromAffine(c.Dst)}, nil
	case isa.IndPortPort:
		return &Cmd{Op: "SD_IndPort_Port", Idx: uint8(c.Idx), IdxElem: uint8(c.IdxElem), Offset: c.Offset,
			Scale: c.Scale, DataElem: uint8(c.DataElem), Count: c.Count, Dst: uint8(c.Dst)}, nil
	case isa.IndPortMem:
		return &Cmd{Op: "SD_IndPort_Mem", Idx: uint8(c.Idx), IdxElem: uint8(c.IdxElem), Offset: c.Offset,
			Scale: c.Scale, DataElem: uint8(c.DataElem), Count: c.Count, SrcPort: uint8(c.Src)}, nil
	case isa.BarrierScratchRd:
		return &Cmd{Op: "SD_Barrier_Scratch_Rd"}, nil
	case isa.BarrierScratchWr:
		return &Cmd{Op: "SD_Barrier_Scratch_Wr"}, nil
	case isa.BarrierAll:
		return &Cmd{Op: "SD_Barrier_All"}, nil
	}
	return nil, fmt.Errorf("wire: cannot serialize %T", cmd)
}
