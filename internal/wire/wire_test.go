package wire

import (
	"encoding/json"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"softbrain/internal/core"
	"softbrain/internal/isa"
	"softbrain/internal/progen"
)

// genProgram builds a random but well-formed program from a progen
// seed: the addpair configuration plus a generated command sequence,
// with a couple of host delays interleaved.
func genProgram(t testing.TB, seed int64) *core.Program {
	t.Helper()
	cfg := core.DefaultConfig()
	p, ports, err := progen.Addpair(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i, c := range progen.Commands(rng, ports) {
		if i%3 == 0 {
			p.Delay(uint64(1 + rng.Intn(40)))
		}
		p.Emit(c)
	}
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	return p
}

// sameProgram compares two programs structurally: name, configuration
// blobs, and the full trace.
func sameProgram(a, b *core.Program) error {
	if a.Name != b.Name {
		return errors.New("name differs")
	}
	if !reflect.DeepEqual(a.Configs, b.Configs) {
		return errors.New("configs differ")
	}
	if !reflect.DeepEqual(a.Trace, b.Trace) {
		return errors.New("trace differs")
	}
	return nil
}

func TestRoundTripGenerated(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		p := genProgram(t, seed)
		data, err := EncodeProgram(p)
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		q, err := DecodeProgram(data)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if err := sameProgram(p, q); err != nil {
			t.Fatalf("seed %d: round trip: %v", seed, err)
		}
		// The decoded program must be loadable: the binary ISA round
		// trip at Load time is the final arbiter of encodability.
		m, err := core.NewMachine(core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Load(q); err != nil {
			t.Fatalf("seed %d: loading decoded program: %v", seed, err)
		}
	}
}

// FuzzProgramRoundTrip is the serializer round-trip fuzz the server
// boundary relies on: for any generated program, encode(decode(x))
// must reproduce x exactly.
func FuzzProgramRoundTrip(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		p := genProgram(t, seed)
		data, err := EncodeProgram(p)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		q, err := DecodeProgram(data)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if err := sameProgram(p, q); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzDecodeProgram throws raw bytes at the strict decoder: it must
// never panic, and anything it accepts must re-encode and re-decode to
// the same program (decode is idempotent over its own output).
func FuzzDecodeProgram(f *testing.F) {
	p := genProgram(f, 1)
	good, err := EncodeProgram(p)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(`{"name":"x","trace":[{"cmd":{"op":"SD_Barrier_All"}}]}`))
	f.Add([]byte(`{"name":"x","trace":[{"delay":3}]}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := DecodeProgram(data)
		if err != nil {
			var we *Error
			if !errors.As(err, &we) {
				t.Fatalf("untyped rejection: %v", err)
			}
			return
		}
		re, err := EncodeProgram(q)
		if err != nil {
			t.Fatalf("accepted program failed to re-encode: %v", err)
		}
		r, err := DecodeProgram(re)
		if err != nil {
			t.Fatalf("re-encoded program rejected: %v", err)
		}
		if err := sameProgram(q, r); err != nil {
			t.Fatalf("decode not idempotent: %v", err)
		}
	})
}

func TestStrictRejections(t *testing.T) {
	cases := []struct {
		name string
		body string
		code ErrCode
	}{
		{"unknown top-level field", `{"name":"x","trace":[],"extra":1}`, ErrSyntax},
		{"unknown cmd field", `{"name":"x","trace":[{"cmd":{"op":"SD_Barrier_All","bogus":1}}]}`, ErrSyntax},
		{"inapplicable field", `{"name":"x","trace":[{"cmd":{"op":"SD_Barrier_All","count":4}}]}`, ErrUnknownField},
		{"unknown op", `{"name":"x","trace":[{"cmd":{"op":"SD_Nope"}}]}`, ErrUnknownOp},
		{"both cmd and delay", `{"name":"x","trace":[{"delay":3,"cmd":{"op":"SD_Barrier_All"}}]}`, ErrBadValue},
		{"empty op", `{"name":"x","trace":[{}]}`, ErrMissingField},
		{"missing pattern", `{"name":"x","trace":[{"cmd":{"op":"SD_Mem_Port","dst":1}}]}`, ErrMissingField},
		{"bad elem", `{"name":"x","trace":[{"cmd":{"op":"SD_Const_Port","value":1,"elem":3,"count":1,"dst":1}}]}`, ErrBadValue},
		{"config below config space", `{"name":"x","configs":[{"addr":64,"data":"aGk="}],"trace":[]}`, ErrBadValue},
		{"trailing data", `{"name":"x","trace":[]} {"again":true}`, ErrSyntax},
	}
	for _, tc := range cases {
		_, err := DecodeProgram([]byte(tc.body))
		var we *Error
		if !errors.As(err, &we) {
			t.Errorf("%s: err = %v, want a typed *wire.Error", tc.name, err)
			continue
		}
		if we.Code != tc.code {
			t.Errorf("%s: code = %s, want %s (%v)", tc.name, we.Code, tc.code, we)
		}
	}
}

func TestDecodeLimits(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`{"name":"big","trace":[`)
	for i := 0; i <= MaxTraceOps; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(`{"delay":1}`)
	}
	sb.WriteString(`]}`)
	_, err := DecodeProgram([]byte(sb.String()))
	var we *Error
	if !errors.As(err, &we) || we.Code != ErrTooLarge {
		t.Fatalf("oversized trace: err = %v, want too-large", err)
	}

	long := strings.Repeat("n", MaxNameBytes+1)
	_, err = DecodeProgram([]byte(`{"name":"` + long + `","trace":[]}`))
	if !errors.As(err, &we) || we.Code != ErrTooLarge {
		t.Fatalf("oversized name: err = %v, want too-large", err)
	}
}

func TestConfigBuild(t *testing.T) {
	for _, preset := range []string{"", "default", "dnn"} {
		cfg, err := Config{Preset: preset}.Build()
		if err != nil {
			t.Fatalf("preset %q: %v", preset, err)
		}
		if cfg.Fabric == nil {
			t.Fatalf("preset %q: no fabric", preset)
		}
	}
	if _, err := (Config{Preset: "exotic"}).Build(); err == nil {
		t.Fatal("unknown preset accepted")
	}
	var we *Error
	_, err := Config{Faults: &FaultSpec{Profile: "nope"}}.Build()
	if !errors.As(err, &we) || we.Code != ErrBadValue {
		t.Fatalf("unknown fault profile: err = %v, want bad-value", err)
	}
	cfg, err := Config{Preset: "default", WatchdogCycles: 5000, Faults: &FaultSpec{Profile: "delay", Seed: 7}}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.WatchdogCycles != 5000 || cfg.Faults == nil {
		t.Fatalf("knobs not applied: %+v", cfg)
	}
	// The wire config survives its own JSON round trip.
	wc := FromConfig(cfg, "default")
	wc.Faults = &FaultSpec{Profile: "delay", Seed: 7}
	data, err := json.Marshal(wc)
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.WatchdogCycles != 5000 || back.Faults == nil || back.Faults.Seed != 7 {
		t.Fatalf("config round trip lost knobs: %+v", back)
	}
}

// TestBarrierEncodable pins the one-command corner: a trace of only
// barriers has no patterns, ports or sizes, and must still round-trip.
func TestBarrierEncodable(t *testing.T) {
	p := core.NewProgram("bars")
	p.Emit(isa.BarrierScratchRd{})
	p.Emit(isa.BarrierScratchWr{})
	p.Emit(isa.BarrierAll{})
	data, err := EncodeProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := DecodeProgram(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameProgram(p, q); err != nil {
		t.Fatal(err)
	}
}
