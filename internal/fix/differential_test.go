package fix_test

import (
	"fmt"
	"testing"

	"softbrain/examples/programs"
	"softbrain/internal/core"
	"softbrain/internal/fix"
	"softbrain/internal/lint"
	"softbrain/internal/mem"
	"softbrain/internal/workloads"
	"softbrain/internal/workloads/dnn"
	"softbrain/internal/workloads/ext"
	"softbrain/internal/workloads/machsuite"
)

// fixProgs runs the fix pass over each program and asserts the shipped
// invariants: the fixed program lints clean, and fixing never adds
// barriers to a program that already lints clean.
func fixProgs(t *testing.T, progs []*core.Program, cfg core.Config) []*core.Program {
	t.Helper()
	fixed := make([]*core.Program, len(progs))
	for i, p := range progs {
		q, rep, err := fix.Fix(p, cfg)
		if err != nil {
			t.Fatalf("fixing unit %d: %v", i, err)
		}
		if rep.BarriersAfter > rep.BarriersBefore {
			t.Fatalf("unit %d: fix grew the barrier count: %v", i, rep)
		}
		fs, err := lint.Check(q, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range fs {
			if f.Sev == lint.SevError {
				t.Fatalf("unit %d: fixed program has finding: %v", i, f)
			}
		}
		fixed[i] = q
	}
	return fixed
}

// runCluster executes one program set the way Instance.run does and
// returns the final memory image.
func runCluster(t *testing.T, inst *workloads.Instance, cfg core.Config, progs []*core.Program) *mem.Memory {
	t.Helper()
	cl, err := core.NewCluster(cfg, len(progs))
	if err != nil {
		t.Fatal(err)
	}
	if inst.Init != nil {
		inst.Init(cl.Mem)
	}
	if _, err := cl.Run(progs); err != nil {
		t.Fatalf("running: %v", err)
	}
	return cl.Mem
}

// TestFixPreservesWorkloads is the differential regression over every
// shipped workload: the fix pass must be semantics-preserving (the
// fixed programs produce a byte-identical memory image and still pass
// the golden check) and must never add a barrier.
func TestFixPreservesWorkloads(t *testing.T) {
	type entry struct {
		name string
		inst *workloads.Instance
		cfg  core.Config
	}
	var entries []entry

	cfg := core.DefaultConfig()
	for _, e := range machsuite.All() {
		inst, err := e.Build(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, entry{"machsuite/" + e.Name, inst, cfg})
	}
	for _, e := range ext.All() {
		inst, err := e.Build(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, entry{"ext/" + e.Name, inst, cfg})
	}
	dnnCfg := dnn.Config()
	for _, l := range dnn.Layers() {
		inst, err := l.Build(dnnCfg, dnn.Units)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, entry{"dnn/" + l.Name, inst, dnnCfg})
	}

	for _, e := range entries {
		e := e
		t.Run(e.name, func(t *testing.T) {
			t.Parallel()
			fixed := fixProgs(t, e.inst.Progs, e.cfg)
			want := runCluster(t, e.inst, e.cfg, e.inst.Progs)
			got := runCluster(t, e.inst, e.cfg, fixed)
			if addr, diff := got.FirstDiff(want); diff {
				t.Fatalf("memory diverges at %#x after fix", addr)
			}
			if e.inst.Check != nil {
				if err := e.inst.Check(got); err != nil {
					t.Fatalf("golden check on fixed run: %v", err)
				}
			}
		})
	}
}

// TestFixPreservesExamples is the same differential over the example
// programs, which run on their own machine configurations.
func TestFixPreservesExamples(t *testing.T) {
	exs, err := programs.All()
	if err != nil {
		t.Fatal(err)
	}
	run := func(e programs.Example, p *core.Program) (*mem.Memory, error) {
		m, err := core.NewMachine(e.Cfg)
		if err != nil {
			return nil, err
		}
		e.Init(m.Sys.Mem)
		if _, err := m.Run(p); err != nil {
			return nil, fmt.Errorf("running: %w", err)
		}
		return m.Sys.Mem, nil
	}
	for _, e := range exs {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			fixed := fixProgs(t, []*core.Program{e.Prog}, e.Cfg)[0]
			want, err := run(e, e.Prog)
			if err != nil {
				t.Fatal(err)
			}
			got, err := run(e, fixed)
			if err != nil {
				t.Fatal(err)
			}
			if addr, diff := got.FirstDiff(want); diff {
				t.Fatalf("memory diverges at %#x after fix", addr)
			}
			if err := e.Check(got); err != nil {
				t.Fatalf("golden check on fixed run: %v", err)
			}
		})
	}
}
