package fix

import (
	"sort"

	"softbrain/internal/core"
	"softbrain/internal/isa"
	"softbrain/internal/lint"
	"softbrain/internal/obs"
)

// Cost-aware barrier placement: the closed loop between the stall
// attribution (internal/obs) and the static analysis. A profiled run
// reports how many cycles each barrier spent draining (holding the
// dispatch queue head); the chooser hoists expensive barriers within
// their legal interval so the drain overlaps unrelated in-flight
// streams instead of serializing behind them. Placement never changes
// the analysis verdict — every candidate slot comes from the barrier's
// interval — so the chooser is free to pick purely by cost.

// Profile carries measured per-barrier drain cycles keyed by trace
// position — the barrier_drains section of an obs metrics dump. The
// positions must index the same trace the profile is applied to:
// profile the program you intend to hoist (for shipped programs, which
// are already at the fix pass's fixpoint, any sdsim -metrics run
// qualifies).
type Profile map[int]uint64

// ProfileFromUnit extracts one unit's barrier-drain profile from a
// metrics dump, or nil when the dump has none.
func ProfileFromUnit(u obs.UnitDump) Profile {
	if len(u.BarrierDrains) == 0 {
		return nil
	}
	pr := make(Profile, len(u.BarrierDrains))
	for _, b := range u.BarrierDrains {
		pr[b.Pos] = b.Cycles
	}
	return pr
}

// HoistOpts configures the cost-aware chooser.
type HoistOpts struct {
	// Profile is the measured per-barrier drain. Without one the
	// chooser does nothing: latest-legal (the synthesis placement) is
	// the no-profile fallback.
	Profile Profile

	// MinDrain is the profiled drain below which a barrier is left
	// where it is (hoisting a free barrier cannot win). Zero means 1.
	MinDrain uint64

	// Evaluate, when set, prices a candidate program (total simulated
	// cycles); the chooser tries every slot in each barrier's interval
	// and commits only strict improvements, so the result is never
	// slower than the input. When nil the chooser uses the static
	// heuristic instead: hoist to the earliest legal slot, which
	// minimizes the stream set the barrier waits on and lets everything
	// between the old and new slot issue after the barrier, overlapping
	// its drain.
	Evaluate func(*core.Program) (uint64, error)
}

// Hoist is one committed move of the chooser.
type Hoist struct {
	From, To     int // trace index at move time -> final trace index
	Kind         isa.Kind
	Drain        uint64 // profiled drain that motivated the move
	CyclesBefore uint64 // Evaluate cost before/after; 0/0 when heuristic
	CyclesAfter  uint64
}

// barState tracks one barrier's identity through the hoist phase.
type barState struct {
	orig, cur int
	drain     uint64
	moved     bool
}

// HoistBarriers applies the cost-aware chooser to every barrier of p,
// most expensive first, and returns the rewritten program plus the
// committed moves (with To in final-trace coordinates). p is never
// modified.
func HoistBarriers(p *core.Program, cfg core.Config, o HoistOpts) (*core.Program, []Hoist, error) {
	q, _, moves, err := hoist(p, cfg, o)
	return q, moves, err
}

func hoist(p *core.Program, cfg core.Config, o HoistOpts) (*core.Program, []barState, []Hoist, error) {
	q := clone(p)
	var bars []barState
	for i, op := range q.Trace {
		if op.Cmd != nil && isa.IsBarrier(op.Cmd) {
			bars = append(bars, barState{orig: i, cur: i, drain: o.Profile[i]})
		}
	}
	if len(o.Profile) == 0 {
		return q, bars, nil, nil
	}
	minDrain := o.MinDrain
	if minDrain == 0 {
		minDrain = 1
	}
	// Most expensive barrier first; position breaks ties for
	// determinism.
	order := make([]int, len(bars))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := bars[order[i]], bars[order[j]]
		if a.drain != b.drain {
			return a.drain > b.drain
		}
		return a.orig < b.orig
	})
	var moves []Hoist
	for _, bi := range order {
		b := &bars[bi]
		if b.drain < minDrain {
			continue
		}
		g, err := lint.Dependences(q, cfg)
		if err != nil {
			return nil, nil, nil, err
		}
		iv := intervalFor(q, g, b.cur, q.Trace[b.cur].Cmd.Kind())
		if iv.Width() == 0 {
			continue
		}
		shift := q.Trace[b.cur].Delay == 0
		chosen := b.cur
		var best *core.Program
		var cyBefore, cyAfter uint64
		if o.Evaluate == nil {
			if iv.Earliest < b.cur {
				chosen = iv.Earliest
				if best, err = MoveBarrier(q, b.cur, chosen); err != nil {
					return nil, nil, nil, err
				}
			}
		} else {
			if cyBefore, err = o.Evaluate(q); err != nil {
				return nil, nil, nil, err
			}
			cyAfter = cyBefore
			for s := iv.Earliest; s <= iv.Latest; s++ {
				if s == b.cur {
					continue
				}
				cand, err := MoveBarrier(q, b.cur, s)
				if err != nil {
					return nil, nil, nil, err
				}
				cy, err := o.Evaluate(cand)
				if err != nil {
					return nil, nil, nil, err
				}
				if cy < cyAfter {
					cyAfter, chosen, best = cy, s, cand
				}
			}
		}
		if best == nil {
			continue
		}
		from := b.cur
		q = best
		moves = append(moves, Hoist{From: from, To: chosen, Kind: iv.Kind,
			Drain: b.drain, CyclesBefore: cyBefore, CyclesAfter: cyAfter})
		b.moved = true
		// Remap every tracked position past the splice.
		b.cur = chosen
		for j := range bars {
			if j != bi {
				bars[j].cur = shiftAfterMove(bars[j].cur, from, chosen, shift)
			}
		}
		for k := range moves[:len(moves)-1] {
			moves[k].To = shiftAfterMove(moves[k].To, from, chosen, shift)
		}
	}
	return q, bars, moves, nil
}

// PlaceLatest returns a copy of p with every barrier pushed to the
// latest slot of its legal interval — the canonical placement the
// synthesis pass produces for missing barriers, and the baseline the
// cost-aware chooser is scored against — plus how many barriers moved.
// One right-to-left pass: moving a barrier right never disturbs the
// positions left of it.
func PlaceLatest(p *core.Program, cfg core.Config) (*core.Program, int, error) {
	q := clone(p)
	moved := 0
	for i := len(q.Trace) - 1; i >= 0; i-- {
		op := q.Trace[i]
		if op.Cmd == nil || !isa.IsBarrier(op.Cmd) {
			continue
		}
		g, err := lint.Dependences(q, cfg)
		if err != nil {
			return nil, 0, err
		}
		iv := intervalFor(q, g, i, op.Cmd.Kind())
		if iv.Latest == i {
			continue
		}
		nq, err := MoveBarrier(q, i, iv.Latest)
		if err != nil {
			return nil, 0, err
		}
		q = nq
		moved++
	}
	return q, moved, nil
}
