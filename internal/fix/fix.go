// Package fix rewrites stream-dataflow programs toward the weakest
// sufficient barrier set, using the footprint analysis of internal/lint
// as its oracle. It is the inverse of the linter: where lint proves a
// barrier is missing, fix inserts one; where the analysis proves a
// barrier orders nothing, fix deletes it.
//
// The pass runs two phases over a copy of the trace:
//
//  1. Barrier synthesis. Every error-severity race finding names the
//     weakest barrier kind that orders its pair (Finding.Barrier — the
//     lattice of §3.3: scratchpad hazards need only SD_Barrier_Scratch_
//     Rd/Wr, memory hazards need SD_Barrier_All). Fix inserts that
//     barrier immediately before the command completing the pair — the
//     latest legal position, preserving maximal concurrency — and
//     iterates to a fixpoint. A trailing unordered-write warning is
//     repaired by appending SD_Barrier_All.
//
//  2. Redundant-barrier elimination. Each remaining barrier is removed
//     tentatively; the removal commits only if it provably creates no
//     new hazard, i.e. the exhaustive race-pair count does not grow
//     under either the default analysis or Opts.StrictIndirect, which
//     treats every data-dependent indirect footprint as conflicting
//     with everything. The strict check is what keeps barriers that
//     protect indirect streams the value pre-pass cannot bound (a BFS
//     level barrier ordering scatters against the next level's
//     gathers) while still deleting genuinely dead barriers. Window
//     widening is monotone — removing a barrier never removes a
//     conflicting pair — so "count does not grow" is exactly "no new
//     hazard".
//
// Synthesis repairs race hazards only: balance, port-conflict and oob
// findings describe the program's stream arithmetic, which no barrier
// placement can change, and survive the pass untouched.
package fix

import (
	"fmt"
	"sort"

	"softbrain/internal/core"
	"softbrain/internal/isa"
	"softbrain/internal/lint"
)

// maxSynthRounds bounds the synthesis fixpoint loop. Inserting a
// barrier never creates a race, so two rounds normally suffice (one to
// insert, one to verify); the cap guards against analysis bugs.
const maxSynthRounds = 10

// Edit is one barrier inserted into or removed from the trace. Pos is
// the trace index at the time of the edit (later edits shift positions).
type Edit struct {
	Pos    int
	Kind   isa.Kind
	Reason string
}

// Placement describes one barrier of the fixed program: the slot it
// occupies, its full legal interval (see Intervals), and what the
// cost-aware chooser did with it. Pos and Chosen are equal — both name
// the slot the barrier ended at — and are reported separately to keep
// the JSON schema explicit about original-versus-chosen when a hoist
// moved the barrier (then Pos still reads as the final slot and the
// move itself is in Report.Hoisted).
type Placement struct {
	Pos              int
	Kind             isa.Kind
	Earliest, Latest int
	Chosen           int
	Drain            uint64 // profiled drain cycles; 0 without a profile
	Hoisted          bool
	Reason           string
}

// Report summarizes what Fix did to one program.
type Report struct {
	Prog           string
	Inserted       []Edit
	Removed        []Edit
	Hoisted        []Hoist     // cost-aware moves, in commit order
	Placements     []Placement // every barrier of the final program, in trace order
	BarriersBefore int
	BarriersAfter  int
}

// Changed reports whether Fix rewrote the trace at all.
func (r *Report) Changed() bool {
	return len(r.Inserted)+len(r.Removed)+len(r.Hoisted) > 0
}

func (r *Report) String() string {
	s := fmt.Sprintf("%s: inserted %d, removed %d barrier(s) (%d -> %d)",
		r.Prog, len(r.Inserted), len(r.Removed), r.BarriersBefore, r.BarriersAfter)
	if len(r.Hoisted) > 0 {
		s += fmt.Sprintf(", hoisted %d", len(r.Hoisted))
	}
	return s
}

// CountBarriers counts the barrier commands in the trace.
func CountBarriers(p *core.Program) int {
	n := 0
	for _, op := range p.Trace {
		if op.Cmd != nil && isa.IsBarrier(op.Cmd) {
			n++
		}
	}
	return n
}

// Fix returns a rewritten copy of p with the weakest sufficient barrier
// set, plus a report of the edits. p itself is never modified. The
// error return mirrors lint.Check: programs that cannot be analyzed at
// all (construction errors, invalid configuration).
func Fix(p *core.Program, cfg core.Config) (*core.Program, *Report, error) {
	return FixWithOpts(p, cfg, HoistOpts{})
}

// FixWithOpts is Fix with the cost-aware chooser enabled: after
// synthesis and elimination, barriers are hoisted within their legal
// intervals according to o (a no-op without o.Profile). The report's
// Placements cover every barrier of the final program. Profile
// positions must index the fixed trace, so a profile is only
// meaningful for programs the structural phases leave unchanged —
// shipped programs are pinned at that fixpoint by the sdlint -fix
// gate; for anything else, fix first, profile the result, then hoist.
func FixWithOpts(p *core.Program, cfg core.Config, o HoistOpts) (*core.Program, *Report, error) {
	q := clone(p)
	rep := &Report{Prog: p.Name, BarriersBefore: CountBarriers(p)}
	if err := synthesize(q, cfg, rep); err != nil {
		return nil, nil, err
	}
	if err := eliminate(q, cfg, rep); err != nil {
		return nil, nil, err
	}
	q, bars, moves, err := hoist(q, cfg, o)
	if err != nil {
		return nil, nil, err
	}
	rep.Hoisted = moves
	if err := placements(q, cfg, bars, rep); err != nil {
		return nil, nil, err
	}
	rep.BarriersAfter = CountBarriers(q)
	return q, rep, nil
}

// placements fills the report's per-barrier placement rows from the
// final program's intervals and the hoist phase's barrier tracking.
func placements(q *core.Program, cfg core.Config, bars []barState, rep *Report) error {
	ivs, err := Intervals(q, cfg)
	if err != nil {
		return err
	}
	state := map[int]barState{} // final trace index -> tracked identity
	for _, b := range bars {
		state[b.cur] = b
	}
	for _, iv := range ivs {
		pl := Placement{Pos: iv.Pos, Kind: iv.Kind,
			Earliest: iv.Earliest, Latest: iv.Latest, Chosen: iv.Pos}
		b, tracked := state[iv.Pos]
		if tracked {
			pl.Drain, pl.Hoisted = b.drain, b.moved
		}
		switch {
		case pl.Hoisted:
			pl.Reason = fmt.Sprintf("hoisted from trace[%d]: profiled drain of %d cycle(s) overlaps streams issued behind it", b.orig, b.drain)
		case iv.Width() == 0:
			pl.Reason = "pinned: every slot but this one changes a race pair's orderedness"
		case tracked && b.drain > 0:
			pl.Reason = fmt.Sprintf("kept: profiled drain of %d cycle(s), no cheaper slot in interval", b.drain)
		default:
			pl.Reason = "kept: no profiled drain to recover"
		}
		rep.Placements = append(rep.Placements, pl)
	}
	return nil
}

// clone copies the program's architectural content (name, configuration
// bitstreams, trace). Bitstream slices are shared: they are immutable
// by convention.
func clone(p *core.Program) *core.Program {
	q := core.NewProgram(p.Name)
	for addr, blob := range p.Configs {
		q.Configs[addr] = blob
	}
	q.Trace = append([]core.TraceOp(nil), p.Trace...)
	return q
}

// synthesize inserts barriers until the program has no race-error
// findings, editing q in place.
func synthesize(q *core.Program, cfg core.Config, rep *Report) error {
	for round := 0; ; round++ {
		fs, err := lint.CheckWith(q, cfg, lint.Opts{Exhaustive: true})
		if err != nil {
			return err
		}
		// Weakest barrier kinds needed per trace index, with one sample
		// diagnosis each for the report.
		needs := map[int]map[isa.Kind]string{}
		trailing := ""
		for _, f := range fs {
			if f.Check != lint.CheckRace || f.Barrier == isa.KindInvalid {
				continue
			}
			if f.Sev == lint.SevWarning {
				trailing = f.Msg // the trailing unordered-write warning
				continue
			}
			if needs[f.Index] == nil {
				needs[f.Index] = map[isa.Kind]string{}
			}
			if _, ok := needs[f.Index][f.Barrier]; !ok {
				needs[f.Index][f.Barrier] = f.Msg
			}
		}
		if len(needs) == 0 && trailing == "" {
			return nil
		}
		if round == maxSynthRounds {
			return fmt.Errorf("fix: %s: barrier synthesis did not converge after %d rounds", q.Name, round)
		}
		var idxs []int
		for i := range needs {
			idxs = append(idxs, i)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(idxs)))
		for _, i := range idxs {
			for _, k := range reduceKinds(needs[i]) {
				insertBarrier(q, i, k)
				rep.Inserted = append(rep.Inserted, Edit{Pos: i, Kind: k, Reason: needs[i][k]})
			}
		}
		if trailing != "" {
			insertBarrier(q, len(q.Trace), isa.KindBarrierAll)
			rep.Inserted = append(rep.Inserted, Edit{Pos: len(q.Trace) - 1, Kind: isa.KindBarrierAll, Reason: trailing})
		}
	}
}

// reduceKinds collapses the barrier kinds needed at one position:
// SD_Barrier_All closes every window, subsuming the scratch barriers.
func reduceKinds(kinds map[isa.Kind]string) []isa.Kind {
	if _, all := kinds[isa.KindBarrierAll]; all {
		return []isa.Kind{isa.KindBarrierAll}
	}
	var out []isa.Kind
	for _, k := range []isa.Kind{isa.KindBarrierScratchWr, isa.KindBarrierScratchRd} {
		if _, ok := kinds[k]; ok {
			out = append(out, k)
		}
	}
	return out
}

func barrierCmd(k isa.Kind) isa.Command {
	switch k {
	case isa.KindBarrierScratchRd:
		return isa.BarrierScratchRd{}
	case isa.KindBarrierScratchWr:
		return isa.BarrierScratchWr{}
	default:
		return isa.BarrierAll{}
	}
}

// insertBarrier splices a barrier command in before trace index i.
func insertBarrier(q *core.Program, i int, k isa.Kind) {
	q.Trace = append(q.Trace, core.TraceOp{})
	copy(q.Trace[i+1:], q.Trace[i:])
	q.Trace[i] = core.TraceOp{Cmd: barrierCmd(k)}
}

// removeOp deletes the command at trace index i, preserving any delay
// the op carried (host-side timing is not the fix pass's business).
func removeOp(q *core.Program, i int) {
	if q.Trace[i].Delay > 0 {
		q.Trace[i].Cmd = nil
		return
	}
	q.Trace = append(q.Trace[:i], q.Trace[i+1:]...)
}

// raceCounts is the exhaustive race-family finding count under the
// default and strict-indirect analyses. Warnings count too: removing a
// trailing barrier must register as a new hazard.
type raceCounts struct {
	normal, strict int
}

func countRaces(q *core.Program, cfg core.Config, strict bool) (int, error) {
	fs, err := lint.CheckWith(q, cfg, lint.Opts{Exhaustive: true, StrictIndirect: strict})
	if err != nil {
		return 0, err
	}
	n := 0
	for _, f := range fs {
		if f.Check == lint.CheckRace {
			n++
		}
	}
	return n, nil
}

func measure(q *core.Program, cfg core.Config) (raceCounts, error) {
	var c raceCounts
	var err error
	if c.normal, err = countRaces(q, cfg, false); err != nil {
		return c, err
	}
	c.strict, err = countRaces(q, cfg, true)
	return c, err
}

// eliminate greedily removes barriers whose removal creates no new
// hazard under either analysis, editing q in place. It loops until no
// barrier is removable; a barrier only becomes less removable as its
// neighbors disappear, so the loop terminates after one extra pass.
func eliminate(q *core.Program, cfg core.Config, rep *Report) error {
	base, err := measure(q, cfg)
	if err != nil {
		return err
	}
	for changed := true; changed; {
		changed = false
		for i := len(q.Trace) - 1; i >= 0; i-- {
			op := q.Trace[i]
			if op.Cmd == nil || !isa.IsBarrier(op.Cmd) {
				continue
			}
			cand := clone(q)
			removeOp(cand, i)
			got, err := measure(cand, cfg)
			if err != nil {
				return err
			}
			if got.normal > base.normal || got.strict > base.strict {
				continue // something relies on this barrier
			}
			removeOp(q, i)
			base = got
			changed = true
			rep.Removed = append(rep.Removed, Edit{Pos: i, Kind: op.Cmd.Kind(),
				Reason: "orders no overlapping footprints under strict indirect analysis"})
		}
	}
	return nil
}
