package fix_test

import (
	"testing"

	"softbrain/internal/core"
	"softbrain/internal/dfg"
	"softbrain/internal/fix"
	"softbrain/internal/isa"
	"softbrain/internal/lint"
	"softbrain/internal/workloads/ext"
)

// newProg builds a program configured with the two-input adder graph
// (A + B -> C, one word each), mirroring the lint test helper.
func newProg(t *testing.T) (*core.Program, core.Config) {
	t.Helper()
	cfg := core.DefaultConfig()
	b := dfg.NewBuilder("addpair")
	a := b.Input("A", 1)
	v := b.Input("B", 1)
	b.Output("C", b.N(dfg.Add(64), a.W(0), v.W(0)))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := core.NewProgram("addpair")
	p.CompileAndConfigure(cfg.Fabric, g)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	return p, cfg
}

func emit(t *testing.T, p *core.Program, cmd isa.Command) {
	t.Helper()
	p.Emit(cmd)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
}

// mustClean asserts a program lints with zero findings.
func mustClean(t *testing.T, p *core.Program, cfg core.Config) {
	t.Helper()
	fs, err := lint.Check(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("fixed program still has findings: %v", fs)
	}
}

// TestSynthesizeWeakestScratch: a scratch read-after-write hazard gets
// the weakest sufficient barrier — SD_Barrier_Scratch_Wr, not
// SD_Barrier_All.
func TestSynthesizeWeakestScratch(t *testing.T) {
	p, cfg := newProg(t)
	emit(t, p, isa.MemScratch{Src: isa.Linear(0x1000, 8), ScratchAddr: 0})
	emit(t, p, isa.ScratchPort{Src: isa.Linear(0, 8), Dst: p.In("A")})
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 8), Dst: p.In("B")})
	emit(t, p, isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x3000, 8)})
	emit(t, p, isa.BarrierAll{})

	q, rep, err := fix.Fix(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Inserted) != 1 || len(rep.Removed) != 0 {
		t.Fatalf("report = %v, want exactly one insertion", rep)
	}
	e := rep.Inserted[0]
	if e.Kind != isa.KindBarrierScratchWr {
		t.Fatalf("inserted %v, want the weaker SD_Barrier_Scratch_Wr", e.Kind)
	}
	// Trace[0] is the SD_Config; the scratch read is trace[2], and the
	// barrier lands at its latest legal position, just before it.
	if e.Pos != 2 {
		t.Fatalf("inserted at trace[%d], want the latest legal position 2 (just before the read)", e.Pos)
	}
	mustClean(t, q, cfg)
	if len(p.Trace) != 6 {
		t.Fatal("Fix mutated its input program")
	}
}

// TestSynthesizeTrailing: a program whose last write is unordered gets
// the drain SD_Barrier_All appended.
func TestSynthesizeTrailing(t *testing.T) {
	p, cfg := newProg(t)
	emit(t, p, isa.MemPort{Src: isa.Linear(0x1000, 8), Dst: p.In("A")})
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 8), Dst: p.In("B")})
	emit(t, p, isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x3000, 8)})

	q, rep, err := fix.Fix(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Inserted) != 1 || rep.Inserted[0].Kind != isa.KindBarrierAll {
		t.Fatalf("report = %v, want one appended SD_Barrier_All", rep)
	}
	if got := q.Trace[len(q.Trace)-1].Cmd.Kind(); got != isa.KindBarrierAll {
		t.Fatalf("trace ends with %v, want SD_Barrier_All", got)
	}
	mustClean(t, q, cfg)
}

// TestEliminateRedundant: a barrier between disjoint streams is removed;
// the trailing drain barrier stays.
func TestEliminateRedundant(t *testing.T) {
	p, cfg := newProg(t)
	emit(t, p, isa.MemPort{Src: isa.Linear(0x1000, 8), Dst: p.In("A")})
	emit(t, p, isa.BarrierAll{}) // orders nothing: the streams are disjoint
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 8), Dst: p.In("B")})
	emit(t, p, isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x3000, 8)})
	emit(t, p, isa.BarrierAll{})

	q, rep, err := fix.Fix(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Removed) != 1 || rep.Removed[0].Pos != 2 || len(rep.Inserted) != 0 {
		t.Fatalf("report = %+v, want exactly the trace[2] barrier removed", rep)
	}
	if rep.BarriersAfter != 1 {
		t.Fatalf("BarriersAfter = %d, want 1 (the trailing drain)", rep.BarriersAfter)
	}
	mustClean(t, q, cfg)
}

// TestEliminateKeepsNeeded: barriers that order actual conflicts — a
// memory write re-read through the scratchpad loader (not RMW-exempt),
// a scratch RAW, and the trailing drain — all survive elimination.
func TestEliminateKeepsNeeded(t *testing.T) {
	p, cfg := newProg(t)
	emit(t, p, isa.MemPort{Src: isa.Linear(0x1800, 8), Dst: p.In("A")})
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 8), Dst: p.In("B")})
	emit(t, p, isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x1000, 8)})
	emit(t, p, isa.BarrierAll{}) // orders the write before the scratch load re-reads it
	emit(t, p, isa.MemScratch{Src: isa.Linear(0x1000, 8), ScratchAddr: 0})
	emit(t, p, isa.BarrierScratchWr{}) // orders the scratch write before its read
	emit(t, p, isa.ScratchPort{Src: isa.Linear(0, 8), Dst: p.In("A")})
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2800, 8), Dst: p.In("B")})
	emit(t, p, isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x3000, 8)})
	emit(t, p, isa.BarrierAll{}) // drains the trailing write

	q, rep, err := fix.Fix(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Changed() {
		t.Fatalf("report = %+v, want no change: every barrier is needed", rep)
	}
	mustClean(t, q, cfg)
}

// TestEliminateKeepsStrictIndirect: a barrier protecting a mem-staged
// (unboundable) gather is invisible to the normal analysis but must
// survive elimination via the strict-indirect race count.
func TestEliminateKeepsStrictIndirect(t *testing.T) {
	p, cfg := newProg(t)
	ind := p.IndirectIn(cfg.Fabric, 0)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 8), Dst: p.In("B")})
	emit(t, p, isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x3000, 8)})
	emit(t, p, isa.MemPort{Src: isa.Linear(0x4000, 8), Dst: ind})
	emit(t, p, isa.BarrierAll{}) // orders the write before the data-dependent gather
	emit(t, p, isa.IndPortPort{
		Idx: ind, IdxElem: isa.Elem32,
		Offset: 0x3000, Scale: 4, DataElem: isa.Elem32, Count: 2,
		Dst: p.In("A"),
	})
	emit(t, p, isa.BarrierAll{})

	q, rep, err := fix.Fix(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The trailing barrier may go (the program ends with a read), but
	// the barrier at trace[4] between the write and the gather must stay.
	for _, e := range rep.Removed {
		if e.Pos == 4 {
			t.Fatalf("removed the gather-protecting barrier: %+v", rep)
		}
	}
	var protected bool
	for _, op := range q.Trace {
		if op.Cmd == nil {
			continue
		}
		if op.Cmd.Kind() == isa.KindBarrierAll {
			protected = true
		}
		if op.Cmd.Kind() == isa.KindIndPortPort && !protected {
			t.Fatal("fixed trace has no barrier before the data-dependent gather")
		}
	}
}

// TestFixIdempotent: fixing a fixed program changes nothing.
func TestFixIdempotent(t *testing.T) {
	p, cfg := newProg(t)
	emit(t, p, isa.MemScratch{Src: isa.Linear(0x1000, 8), ScratchAddr: 0})
	emit(t, p, isa.ScratchPort{Src: isa.Linear(0, 8), Dst: p.In("A")})
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 8), Dst: p.In("B")})
	emit(t, p, isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x3000, 8)})

	q, rep, err := fix.Fix(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Changed() {
		t.Fatal("first pass made no edits")
	}
	r, rep2, err := fix.Fix(q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Changed() {
		t.Fatalf("second pass still edits: %v", rep2)
	}
	if len(r.Trace) != len(q.Trace) {
		t.Fatal("second pass changed the trace length")
	}
}

// serializeAll rebuilds p with an SD_Barrier_All after every
// non-barrier command — the over-serialized program of the fix study.
func serializeAll(p *core.Program) *core.Program {
	q := core.NewProgram(p.Name)
	for addr, blob := range p.Configs {
		q.Configs[addr] = blob
	}
	for _, op := range p.Trace {
		q.Trace = append(q.Trace, op)
		if op.Cmd != nil && !isa.IsBarrier(op.Cmd) {
			q.Trace = append(q.Trace, core.TraceOp{Cmd: isa.BarrierAll{}})
		}
	}
	return q
}

// TestEliminateScratchRoundTrip: the lut workload computes its gather
// indices on the fabric, parks them in the scratchpad, and reloads
// them across an SD_Config. Serializing it and fixing it must come
// back to the shipped single trailing barrier: every fence around the
// reload and the gather is removable precisely because the value
// tracking follows the indices through the scratch round trip and
// bounds the gather's footprint. Without that tracking the gather is
// opaque, strict indirect analysis pairs it with the result store, and
// the fences would have to stay. The fixed program must also still
// compute the right bytes, strictly cheaper than the serialized one.
func TestEliminateScratchRoundTrip(t *testing.T) {
	cfg := core.DefaultConfig()
	e, err := ext.Find("lut")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := e.Build(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	shipped := inst.Progs[0]
	shippedBarriers := fix.CountBarriers(shipped)

	serialized := serializeAll(shipped)
	fixed, rep, err := fix.Fix(serialized, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Inserted) != 0 {
		t.Fatalf("fix inserted barriers into the serialized lut: %+v", rep.Inserted)
	}
	if rep.BarriersAfter != shippedBarriers {
		t.Fatalf("fixed lut has %d barriers, shipped has %d: the scratch round-trip fences were not all proven removable\nreport: %v",
			rep.BarriersAfter, shippedBarriers, rep)
	}
	mustClean(t, fixed, cfg)

	run := func(progs []*core.Program) uint64 {
		t.Helper()
		cl, err := core.NewCluster(cfg, len(progs))
		if err != nil {
			t.Fatal(err)
		}
		inst.Init(cl.Mem)
		stats, err := cl.Run(progs)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Check(cl.Mem); err != nil {
			t.Fatal(err)
		}
		return stats.Cycles
	}
	serializedCy := run([]*core.Program{serialized})
	fixedCy := run([]*core.Program{fixed})
	if fixedCy >= serializedCy {
		t.Fatalf("eliminating the round-trip fences won no cycles: serialized %d, fixed %d", serializedCy, fixedCy)
	}
}
