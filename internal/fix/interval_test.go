package fix_test

import (
	"fmt"
	"math/rand"
	"testing"

	"softbrain/examples/programs"
	"softbrain/internal/core"
	"softbrain/internal/fix"
	"softbrain/internal/lint"
	"softbrain/internal/progen"
	"softbrain/internal/workloads/dnn"
	"softbrain/internal/workloads/ext"
	"softbrain/internal/workloads/machsuite"
)

// Brute-force verification of the legal placement intervals: for every
// barrier of every shipped program (and a pile of generated
// barrier-heavy ones), slide the barrier across its computed interval
// and re-run the full exhaustive strict analysis at each slot. Inside
// the interval the race signature must be identical to the original
// placement (same pairs, same counts, same trailing-warning bit); one
// slot outside either endpoint it must differ — the interval is both
// sound and maximal.

// pairKey identifies one race pair in skeleton coordinates (the trace
// with the slid barrier removed), so positions compare across
// placements.
type pairKey struct {
	code           string
	older, younger int
}

// slideSig is the placement-equivalence signature of one analysis run.
type slideSig struct {
	pairs map[pairKey]int
	errs  int  // total error-severity findings (races and everything else)
	warn  bool // trailing-unordered-write present
}

// signature runs the exhaustive strict analysis on p and normalizes
// race-pair positions to the skeleton of the barrier at trace index
// bpos. shift tells whether removing that barrier splices the trace
// (no host delay on its op) — it must describe the *original* barrier
// op so every placement maps to the same skeleton.
func signature(t *testing.T, p *core.Program, cfg core.Config, bpos int, shift bool) slideSig {
	t.Helper()
	fs, err := lint.CheckWith(p, cfg, lint.Opts{Exhaustive: true, StrictIndirect: true})
	if err != nil {
		t.Fatalf("%s: %v", p.Name, err)
	}
	sk := func(x int) int {
		if shift && x > bpos {
			return x - 1
		}
		return x
	}
	s := slideSig{pairs: map[pairKey]int{}}
	for _, f := range fs {
		if f.Code == "trailing-unordered-write" {
			// The warning's message aggregates however many writes are
			// uncovered, which may legally vary within an interval; only
			// the bit is placement-signature.
			s.warn = true
			continue
		}
		if f.Sev != lint.SevError {
			continue
		}
		s.errs++
		if f.Check == lint.CheckRace && f.Other >= 0 {
			s.pairs[pairKey{f.Code, sk(f.Other), sk(f.Index)}]++
		}
	}
	return s
}

func sigEqual(a, b slideSig) bool {
	if a.warn != b.warn || a.errs != b.errs || len(a.pairs) != len(b.pairs) {
		return false
	}
	for k, n := range a.pairs {
		if b.pairs[k] != n {
			return false
		}
	}
	return true
}

// checkSlide brute-forces every barrier interval of one program.
func checkSlide(t *testing.T, name string, p *core.Program, cfg core.Config) {
	t.Helper()
	ivs, err := fix.Intervals(p, cfg)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	for _, iv := range ivs {
		shift := p.Trace[iv.Pos].Delay == 0
		skLen := len(p.Trace)
		if shift {
			skLen--
		}
		base := signature(t, p, cfg, iv.Pos, shift)
		for q := iv.Earliest; q <= iv.Latest; q++ {
			moved, err := fix.MoveBarrier(p, iv.Pos, q)
			if err != nil {
				t.Fatalf("%s: moving trace[%d] to slot %d: %v", name, iv.Pos, q, err)
			}
			if got := signature(t, moved, cfg, q, shift); !sigEqual(base, got) {
				t.Errorf("%s: %v at trace[%d] slid to slot %d inside [%d, %d]: race signature changed (%d pairs %d errs warn=%v, want %d pairs %d errs warn=%v)",
					name, iv.Kind, iv.Pos, q, iv.Earliest, iv.Latest,
					got.errs, len(got.pairs), got.warn, base.errs, len(base.pairs), base.warn)
			}
		}
		for _, q := range []int{iv.Earliest - 1, iv.Latest + 1} {
			if q < 0 || q > skLen {
				continue // interval already touches the trace boundary
			}
			moved, err := fix.MoveBarrier(p, iv.Pos, q)
			if err != nil {
				t.Fatalf("%s: moving trace[%d] to slot %d: %v", name, iv.Pos, q, err)
			}
			if got := signature(t, moved, cfg, q, shift); sigEqual(base, got) {
				t.Errorf("%s: %v at trace[%d] slid to slot %d, one outside [%d, %d]: signature unchanged — interval is not maximal",
					name, iv.Kind, iv.Pos, q, iv.Earliest, iv.Latest)
			}
		}
	}
}

// TestIntervalSlideWorkloads covers every barrier of every shipped
// workload and example program.
func TestIntervalSlideWorkloads(t *testing.T) {
	type target struct {
		name string
		prog *core.Program
		cfg  core.Config
	}
	var targets []target
	cfg := core.DefaultConfig()
	for _, e := range machsuite.All() {
		inst, err := e.Build(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range inst.Progs {
			targets = append(targets, target{fmt.Sprintf("machsuite/%s#%d", e.Name, i), p, cfg})
		}
	}
	for _, e := range ext.All() {
		inst, err := e.Build(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range inst.Progs {
			targets = append(targets, target{fmt.Sprintf("ext/%s#%d", e.Name, i), p, cfg})
		}
	}
	dnnCfg := dnn.Config()
	for _, l := range dnn.Layers() {
		inst, err := l.Build(dnnCfg, dnn.Units)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range inst.Progs {
			targets = append(targets, target{fmt.Sprintf("dnn/%s#%d", l.Name, i), p, dnnCfg})
		}
	}
	exs, err := programs.All()
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range exs {
		targets = append(targets, target{"examples/" + ex.Name, ex.Prog, ex.Cfg})
	}
	pl, err := programs.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	for pi, ph := range pl.Phases {
		for u, p := range ph {
			targets = append(targets, target{fmt.Sprintf("examples/%s.phase%d#%d", pl.Name, pi, u), p, pl.Cfg})
		}
	}
	for _, tg := range targets {
		checkSlide(t, tg.name, tg.prog, tg.cfg)
	}
}

// TestIntervalSlideProgen covers generated barrier-heavy programs: the
// generator's barriers sit between a region write and its read-back
// with unrelated fillers around, so intervals are wide, and the fix
// pass's repairs of the cross-block hazards add synthesized barriers of
// every kind on top.
func TestIntervalSlideProgen(t *testing.T) {
	const seeds = 24
	cfg := core.DefaultConfig()
	wide := 0
	for seed := int64(0); seed < seeds; seed++ {
		p, ports, err := progen.Addpair(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		for _, c := range progen.BarrierCommands(rng, ports) {
			emit(t, p, c)
		}
		q, _, err := fix.Fix(p, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		name := fmt.Sprintf("progen/barrier-heavy#%d", seed)
		mustClean(t, q, cfg)
		checkSlide(t, name, q, cfg)
		ivs, err := fix.Intervals(q, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, iv := range ivs {
			if iv.Width() > 0 {
				wide++
			}
		}
	}
	// The generator exists to exercise nontrivial placement; if the
	// intervals collapse to points the corpus is not doing its job.
	if wide < seeds {
		t.Fatalf("only %d movable barriers across %d seeds — generator no longer produces nontrivial intervals", wide, seeds)
	}
}
