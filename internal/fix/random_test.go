package fix_test

import (
	"math/rand"
	"testing"

	"softbrain/internal/core"
	"softbrain/internal/fix"
	"softbrain/internal/isa"
	"softbrain/internal/lint"
	"softbrain/internal/mem"
	"softbrain/internal/progen"
)

// TestFixMatchesSerialized: for random programs, the fixed program must
// compute exactly what the fully serialized reference (an SD_Barrier_All
// after every command) computes — barriers the fix pass leaves out are
// provably unnecessary, barriers it adds restore program order where it
// matters.
func TestFixMatchesSerialized(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p, cfg := newProg(t)
		ind := p.IndirectIn(cfg.Fabric, 0)
		if err := p.Err(); err != nil {
			t.Fatal(err)
		}
		cmds := progen.Commands(rng, progen.Ports{A: p.In("A"), B: p.In("B"), Ind: ind, C: p.Out("C")})
		for _, c := range cmds {
			emit(t, p, c)
		}

		ser, _ := newProg(t)
		for _, c := range cmds {
			emit(t, ser, c)
			emit(t, ser, isa.BarrierAll{})
		}

		q, _, err := fix.Fix(p, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fs, err := lint.Check(q, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range fs {
			if f.Sev == lint.SevError {
				t.Fatalf("seed %d: fixed program has finding: %v", seed, f)
			}
		}

		init := make([]byte, 64)
		irng := rand.New(rand.NewSource(seed + 1000))
		run := func(prog *core.Program) *mem.Memory {
			m, err := core.NewMachine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, base := range progen.MemPools {
				irng.Read(init)
				m.Sys.Mem.Write(base, init)
			}
			if _, err := m.Run(prog); err != nil {
				t.Fatalf("seed %d: running %s: %v", seed, prog.Name, err)
			}
			return m.Sys.Mem
		}
		irng.Seed(seed + 1000)
		want := run(ser)
		irng.Seed(seed + 1000)
		got := run(q)
		// FirstDiff scans ascending, so any data divergence surfaces
		// before the configuration space, where the two programs'
		// bitstreams legitimately occupy different slots.
		if addr, diff := got.FirstDiff(want); diff && addr < core.ConfigSpace {
			t.Fatalf("seed %d: fixed program diverges from serialized reference at %#x", seed, addr)
		}
	}
}
