package fix_test

import (
	"math/rand"
	"testing"

	"softbrain/internal/core"
	"softbrain/internal/fix"
	"softbrain/internal/isa"
	"softbrain/internal/lint"
	"softbrain/internal/mem"
)

// genCmds produces a random but individually well-formed command
// sequence for the addpair graph: each step stages both inputs and
// consumes the output, so the program is always balanced, but steps
// freely collide in memory and scratch space, and barriers appear only
// occasionally. Indirect indices are staged from constants only, so the
// fixed program and the serialized reference gather the same addresses.
func genCmds(rng *rand.Rand, a, b, ind isa.InPortID, c isa.OutPortID) []isa.Command {
	pools := []uint64{0x1_0000, 0x1_0040, 0x1_0080, 0x2_0000}
	pads := []uint64{0, 64, 128}
	pool := func() uint64 { return pools[rng.Intn(len(pools))] }
	pad := func() uint64 { return pads[rng.Intn(len(pads))] }

	var cmds []isa.Command
	steps := 3 + rng.Intn(8)
	for s := 0; s < steps; s++ {
		n := uint64(1 + rng.Intn(8))
		bytes := 8 * n
		switch rng.Intn(4) {
		case 0:
			cmds = append(cmds, isa.MemPort{Src: isa.Linear(pool(), bytes), Dst: a})
		case 1:
			cmds = append(cmds, isa.ScratchPort{Src: isa.Linear(pad(), bytes), Dst: a})
		case 2:
			cmds = append(cmds, isa.ConstPort{Value: rng.Uint64(), Elem: isa.Elem64, Count: n, Dst: a})
		case 3:
			idx := uint64(rng.Intn(16))
			cmds = append(cmds,
				isa.ConstPort{Value: idx, Elem: isa.Elem32, Count: 2 * n, Dst: ind},
				isa.IndPortPort{
					Idx: ind, IdxElem: isa.Elem32,
					Offset: pool(), Scale: 4, DataElem: isa.Elem32, Count: 2 * n,
					Dst: a,
				})
		}
		if rng.Intn(2) == 0 {
			cmds = append(cmds, isa.MemPort{Src: isa.Linear(pool(), bytes), Dst: b})
		} else {
			cmds = append(cmds, isa.ConstPort{Value: uint64(rng.Intn(1 << 16)), Elem: isa.Elem64, Count: n, Dst: b})
		}
		switch rng.Intn(4) {
		case 0, 1:
			cmds = append(cmds, isa.PortMem{Src: c, Dst: isa.Linear(pool(), bytes)})
		case 2:
			cmds = append(cmds, isa.PortScratch{Src: c, Elem: isa.Elem64, Count: n, ScratchAddr: pad()})
		case 3:
			cmds = append(cmds, isa.CleanPort{Src: c, Elem: isa.Elem64, Count: n})
		}
		switch rng.Intn(4) {
		case 0:
			cmds = append(cmds, isa.BarrierAll{})
		case 1:
			cmds = append(cmds, isa.BarrierScratchWr{})
		}
	}
	return cmds
}

// TestFixMatchesSerialized: for random programs, the fixed program must
// compute exactly what the fully serialized reference (an SD_Barrier_All
// after every command) computes — barriers the fix pass leaves out are
// provably unnecessary, barriers it adds restore program order where it
// matters.
func TestFixMatchesSerialized(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p, cfg := newProg(t)
		ind := p.IndirectIn(cfg.Fabric, 0)
		if err := p.Err(); err != nil {
			t.Fatal(err)
		}
		cmds := genCmds(rng, p.In("A"), p.In("B"), ind, p.Out("C"))
		for _, c := range cmds {
			emit(t, p, c)
		}

		ser, _ := newProg(t)
		for _, c := range cmds {
			emit(t, ser, c)
			emit(t, ser, isa.BarrierAll{})
		}

		q, _, err := fix.Fix(p, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fs, err := lint.Check(q, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range fs {
			if f.Sev == lint.SevError {
				t.Fatalf("seed %d: fixed program has finding: %v", seed, f)
			}
		}

		init := make([]byte, 64)
		irng := rand.New(rand.NewSource(seed + 1000))
		run := func(prog *core.Program) *mem.Memory {
			m, err := core.NewMachine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, base := range []uint64{0x1_0000, 0x1_0040, 0x1_0080, 0x2_0000} {
				irng.Read(init)
				m.Sys.Mem.Write(base, init)
			}
			if _, err := m.Run(prog); err != nil {
				t.Fatalf("seed %d: running %s: %v", seed, prog.Name, err)
			}
			return m.Sys.Mem
		}
		irng.Seed(seed + 1000)
		want := run(ser)
		irng.Seed(seed + 1000)
		got := run(q)
		// FirstDiff scans ascending, so any data divergence surfaces
		// before the configuration space, where the two programs'
		// bitstreams legitimately occupy different slots.
		if addr, diff := got.FirstDiff(want); diff && addr < core.ConfigSpace {
			t.Fatalf("seed %d: fixed program diverges from serialized reference at %#x", seed, addr)
		}
	}
}
