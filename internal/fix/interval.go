package fix

import (
	"fmt"

	"softbrain/internal/core"
	"softbrain/internal/isa"
	"softbrain/internal/lint"
)

// This file turns the point answer of the synthesis pass ("the latest
// legal position") into an interval answer: for every barrier, the
// full contiguous range of placements that leaves the program's
// analysis verdict unchanged — every race pair it orders stays
// ordered, no pair it leaves unordered becomes spuriously ordered (the
// eliminate pass's minimality argument depends on that), and the
// end-of-trace visibility warning keeps its value. Legality is decided
// against the placement-independent dependence set of
// lint.Dependences, so sliding a barrier costs index arithmetic, not a
// re-analysis.
//
// Coordinates: an interval's endpoints are *insertion slots* of the
// trace with that barrier removed (its skeleton). A barrier at trace
// index i occupies skeleton slot i, so Earliest <= Pos <= Latest reads
// naturally as trace positions; re-inserting at slot i reproduces the
// original program, and MoveBarrier(p, i, s) realizes any other slot.

// Interval is one barrier's legal placement range.
type Interval struct {
	Pos              int      // the barrier's trace index in p
	Kind             isa.Kind // its barrier kind
	Earliest, Latest int      // legal insertion slots, skeleton coordinates
}

// Width is the number of alternative placements (0 means pinned).
func (iv Interval) Width() int { return iv.Latest - iv.Earliest }

// Intervals computes the legal placement interval of every barrier in
// p, in trace order. Each barrier is analyzed against the others held
// fixed.
func Intervals(p *core.Program, cfg core.Config) ([]Interval, error) {
	g, err := lint.Dependences(p, cfg)
	if err != nil {
		return nil, err
	}
	var out []Interval
	for i, op := range p.Trace {
		if op.Cmd != nil && isa.IsBarrier(op.Cmd) {
			out = append(out, intervalFor(p, g, i, op.Cmd.Kind()))
		}
	}
	return out, nil
}

// intervalFor computes one barrier's interval from the dependence set.
//
// The rules (see lint.Dep): a barrier inserted before skeleton slot q
// orders pair (o, y) iff o < q <= y in skeleton coordinates, and
// covers a trailing write w iff q > w. A slot is legal iff every
// pair's orderedness equals its orderedness at the original position
// and the trailing-warning bit is unchanged; the interval is the
// maximal contiguous legal range containing the original slot.
func intervalFor(p *core.Program, g *lint.DepGraph, bpos int, bk isa.Kind) Interval {
	// The skeleton drops the barrier command; a host delay on its op
	// stays in place (removeOp's rule), in which case indices do not
	// shift.
	shift := p.Trace[bpos].Delay == 0
	skLen := len(p.Trace)
	if shift {
		skLen--
	}
	sk := func(x int) int {
		if shift && x > bpos {
			return x - 1
		}
		return x
	}

	legal := make([]bool, skLen+1)
	for q := range legal {
		legal[q] = true
	}
	requireIn := func(lo, hi int) {
		for q := 0; q <= skLen; q++ {
			if q < lo || q > hi {
				legal[q] = false
			}
		}
	}
	requireOut := func(lo, hi int) {
		for q := max(lo, 0); q <= hi && q <= skLen; q++ {
			legal[q] = false
		}
	}

	var trailing []lint.Dep // trailing deps no other fence covers
	for _, d := range g.Deps {
		if d.Trailing {
			if !g.OrderedByFences(d, bpos) {
				trailing = append(trailing, d)
			}
			continue
		}
		covers := lint.FenceOrders(bk, d.Need)
		base := g.OrderedByFences(d, bpos)
		orig := base || (covers && d.Older < bpos && bpos < d.Younger)
		switch {
		case base || !covers:
			// Ordered (or unorderable by this barrier) at every slot.
		case orig:
			requireIn(sk(d.Older)+1, sk(d.Younger))
		default:
			requireOut(sk(d.Older)+1, sk(d.Younger))
		}
	}

	// Trailing-warning bit: the checker warns iff some trailing write
	// has no covering fence behind it. Of the writes only this barrier
	// could cover, the warning clears exactly when the barrier covers
	// all of them — q past the youngest — and they are all coverable
	// by its kind.
	if len(trailing) > 0 {
		allCover, maxOlder := true, -1
		for _, d := range trailing {
			if !lint.FenceOrders(bk, d.Need) {
				allCover = false
			}
			if s := sk(d.Older); s > maxOlder {
				maxOlder = s
			}
		}
		if allCover {
			if bpos <= maxOlder { // warning set at the original slot
				requireIn(0, maxOlder)
			} else {
				requireIn(maxOlder+1, skLen)
			}
		}
		// !allCover: the warning is set at every slot; no constraint.
	}

	iv := Interval{Pos: bpos, Kind: bk, Earliest: bpos, Latest: bpos}
	if !legal[bpos] {
		// The original slot satisfies every constraint by construction;
		// reaching this is an analysis bug, but a pinned interval is
		// always a safe answer.
		return iv
	}
	for iv.Earliest > 0 && legal[iv.Earliest-1] {
		iv.Earliest--
	}
	for iv.Latest < skLen && legal[iv.Latest+1] {
		iv.Latest++
	}
	return iv
}

// MoveBarrier returns a copy of p with the barrier at trace index pos
// re-inserted at the given skeleton slot (the coordinates Intervals
// reports). A host delay attached to the barrier's op stays at the
// original position, mirroring removeOp.
func MoveBarrier(p *core.Program, pos, slot int) (*core.Program, error) {
	if pos < 0 || pos >= len(p.Trace) || p.Trace[pos].Cmd == nil || !isa.IsBarrier(p.Trace[pos].Cmd) {
		return nil, fmt.Errorf("fix: %s: trace[%d] is not a barrier", p.Name, pos)
	}
	kind := p.Trace[pos].Cmd.Kind()
	q := clone(p)
	removeOp(q, pos)
	if slot < 0 || slot > len(q.Trace) {
		return nil, fmt.Errorf("fix: %s: slot %d outside [0, %d]", p.Name, slot, len(q.Trace))
	}
	insertBarrier(q, slot, kind)
	return q, nil
}

// shiftAfterMove maps a trace index x of the pre-move program (x !=
// pos, e.g. another barrier) to its index after MoveBarrier(p, pos,
// slot). shift tells whether the removal spliced the trace (no host
// delay on the moved op).
func shiftAfterMove(x, pos, slot int, shift bool) int {
	if shift && x > pos {
		x--
	}
	if x >= slot {
		x++
	}
	return x
}
