package engine

import (
	"fmt"

	"softbrain/internal/isa"
	"softbrain/internal/port"
	"softbrain/internal/sim"
)

// Invariant is the panic value raised when engine-internal bookkeeping
// (reservations, buffer slots) contradicts itself. Like port.Invariant,
// these states are unreachable through the architectural protocol; one
// firing means the simulator's own state is corrupt, and the machine's
// Run boundary recovers it into a typed MachineError.
type Invariant struct {
	Comp string // engine component, e.g. "ports", "padbuf"
	Msg  string
}

func (i Invariant) Error() string { return fmt.Sprintf("engine: %s: %s", i.Comp, i.Msg) }

// Component names the machine component for MachineError attribution.
func (i Invariant) Component() string { return i.Comp }

// Wait classifies why a stream cannot make progress this cycle, for the
// core's structured hang diagnosis. WaitNone and WaitTimed streams are
// not stuck: they can progress now or at a known future cycle.
type Wait uint8

const (
	WaitNone    Wait = iota // can progress (or only transiently blocked)
	WaitTimed               // a response or write completion is in flight
	WaitInSpace             // destination input port has no free credit
	WaitOutData             // source output port is empty
	WaitIndex               // indirect stream has no staged indices
	WaitPadBuf              // MSE-to-SSE write buffer has no free slot
)

func (w Wait) String() string {
	switch w {
	case WaitNone:
		return "none"
	case WaitTimed:
		return "timed"
	case WaitInSpace:
		return "in-space"
	case WaitOutData:
		return "out-data"
	case WaitIndex:
		return "index"
	case WaitPadBuf:
		return "padbuf"
	}
	return fmt.Sprintf("Wait(%d)", uint8(w))
}

// StreamInfo is one active stream's identity and blocking state, the
// unit of the core's wait-for graph. Port fields are machine port
// indices, -1 when the stream has no port in that role.
type StreamInfo struct {
	ID   int      // dispatcher stream id
	Kind isa.Kind // originating command kind
	Eng  string   // "MSE", "SSE" or "RSE"

	DstIn  int // input port the stream writes
	SrcOut int // output port the stream reads
	IdxIn  int // input port supplying indirect indices

	Wait Wait
}

// Name renders the stream for diagnostics, e.g. "SD_Port_Port#3".
func (s StreamInfo) Name() string { return fmt.Sprintf("%v#%d", s.Kind, s.ID) }

// Ports bundles the machine's vector ports with the in-flight space
// reservations engines hold against input ports. A read stream reserves
// destination space when it issues a request so that a response can
// never arrive to a full FIFO (the backpressure credit scheme of
// Section 4.3); the reservation converts to real occupancy on delivery.
type Ports struct {
	In  []*port.Queue
	Out []*port.Queue

	resIn []int // reserved bytes per input port
}

// NewPorts wraps the given port sets.
func NewPorts(in, out []*port.Queue) *Ports {
	return &Ports{In: in, Out: out, resIn: make([]int, len(in))}
}

// InAvail is the unreserved free space of input port i, in bytes.
func (p *Ports) InAvail(i int) int { return p.In[i].Space() - p.resIn[i] }

// Reserve holds n bytes of input port i for an in-flight response. Over-
// reservation violates the credit protocol and raises an Invariant panic
// (recovered at the machine's Run boundary).
func (p *Ports) Reserve(i, n int) {
	if n > p.InAvail(i) {
		panic(Invariant{Comp: "ports",
			Msg: fmt.Sprintf("reserving %d bytes on port %d with %d available", n, i, p.InAvail(i))})
	}
	p.resIn[i] += n
}

// Deliver converts a reservation on input port i into real occupancy.
// Delivering more than was reserved raises an Invariant panic (recovered
// at the machine's Run boundary).
func (p *Ports) Deliver(i int, data []byte) {
	if p.resIn[i] < len(data) {
		panic(Invariant{Comp: "ports",
			Msg: fmt.Sprintf("delivering %d bytes on port %d with %d reserved", len(data), i, p.resIn[i])})
	}
	p.resIn[i] -= len(data)
	p.In[i].Push(data)
}

// Reserved is the number of in-flight bytes reserved on input port i,
// the signal the balance unit watches.
func (p *Ports) Reserved(i int) int { return p.resIn[i] }

// readPending is one issued read request awaiting its data-ready time.
// Responses are buffered per stream and delivered strictly in issue
// order, preserving stream order into the destination port.
type readPending struct {
	ready   uint64
	data    []byte
	padAddr uint64 // destination for scratch-bound streams
}

// PadWrite is one line-sized write traveling from the memory stream
// engine to the scratchpad stream engine.
type PadWrite struct {
	Addr   uint64
	Data   []byte
	notify *int // outstanding-write counter of the producing stream
}

// PadWriteBuf is the bounded buffer between the MSE and the SSE
// ("a buffer sits between the MSE and SSE... allocated on a request to
// memory to ensure space exists").
type PadWriteBuf struct {
	entries  []PadWrite
	capacity int
	reserved int // slots promised to issued-but-undelivered requests

	// free recycles drained Data buffers back to the producing MSE
	// (the SSE copies bytes into the pad before PopHead).
	free [][]byte

	// The buffer's state changes split into three wake signals so each
	// watcher subscribes only to the transitions that can unblock it
	// (see sim.Watcher). A reservation raises nothing: taking capacity
	// cannot unblock anyone, and the reserving MSE's own snapshot is
	// refreshed after its tick.
	fillVer    sim.Signal // Fill: a queued write the SSE can drain
	drainVer   sim.Signal // PopHead: a slot the MSE can re-reserve
	emptiedVer sim.Signal // entries hit zero: a scratch-write barrier can clear
}

// FillVer counts entry arrivals — the consumer-side (SSE) wake signal.
func (b *PadWriteBuf) FillVer() uint64 { return b.fillVer.Value() }

// DrainVer counts entry departures — the producer-side (MSE) wake
// signal: a pop both frees a slot and decrements the producing
// stream's outstanding-write counter.
func (b *PadWriteBuf) DrainVer() uint64 { return b.drainVer.Value() }

// EmptiedVer counts transitions to fully drained. The dispatcher
// watches this one: a scratch-write barrier clears only when every
// outstanding pad write has landed, and the last landing is always the
// pop that empties the buffer.
func (b *PadWriteBuf) EmptiedVer() uint64 { return b.emptiedVer.Value() }

// NewPadWriteBuf returns a buffer of the given entry capacity.
func NewPadWriteBuf(capacity int) *PadWriteBuf {
	return &PadWriteBuf{capacity: capacity}
}

// CanReserve reports whether a slot can be promised to a new request.
func (b *PadWriteBuf) CanReserve() bool {
	return len(b.entries)+b.reserved < b.capacity
}

// ReserveSlot promises one slot to an in-flight memory request.
// Reserving past capacity raises an Invariant panic (recovered at the
// machine's Run boundary): the MSE must check CanReserve first.
func (b *PadWriteBuf) ReserveSlot() {
	if !b.CanReserve() {
		panic(Invariant{Comp: "padbuf", Msg: "pad write buffer over-reserved"})
	}
	b.reserved++
}

// Fill converts a reserved slot into a queued write. Filling without a
// reservation raises an Invariant panic (recovered at the machine's Run
// boundary).
func (b *PadWriteBuf) Fill(w PadWrite) {
	if b.reserved == 0 {
		panic(Invariant{Comp: "padbuf", Msg: "pad write buffer fill without reservation"})
	}
	b.reserved--
	b.entries = append(b.entries, w)
	b.fillVer.Raise()
}

// Head returns the oldest queued write, if any.
func (b *PadWriteBuf) Head() (PadWrite, bool) {
	if len(b.entries) == 0 {
		return PadWrite{}, false
	}
	return b.entries[0], true
}

// PopHead removes the oldest queued write and decrements its producer's
// outstanding counter. The drained Data buffer moves to the freelist.
func (b *PadWriteBuf) PopHead() {
	w := b.entries[0]
	b.entries = b.entries[1:]
	if w.notify != nil {
		*w.notify--
	}
	b.free = append(b.free, w.Data[:0])
	b.drainVer.Raise()
	if len(b.entries) == 0 {
		b.emptiedVer.Raise()
	}
}

// TakeFree hands back one recycled Data buffer, or nil when none is
// available.
func (b *PadWriteBuf) TakeFree() []byte {
	if n := len(b.free); n > 0 {
		var d []byte
		d, b.free = b.free[n-1], b.free[:n-1]
		return d
	}
	return nil
}

// Len is the number of queued (filled) writes.
func (b *PadWriteBuf) Len() int { return len(b.entries) }
