package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"softbrain/internal/isa"
)

// Property: the affine AGU's request sequence reproduces the pattern's
// byte stream exactly, one line per request, within the byte budget.
func TestAffineAGUCoversPatternExactly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pat := isa.Affine{
			Start:      uint64(rng.Intn(1 << 12)),
			AccessSize: uint64(rng.Intn(150)),
			Stride:     uint64(rng.Intn(200)),
			Strides:    uint64(rng.Intn(30)),
		}
		var want []uint64
		pat.EachByte(func(a uint64) { want = append(want, a) })

		cur := isa.NewAffineCursor(pat)
		var got []uint64
		for {
			max := 1 + rng.Intn(LineBytes) // vary the budget per request
			req, ok := nextAffineLine(cur, max, nil)
			if !ok {
				break
			}
			if len(req.Offsets) == 0 || len(req.Offsets) > max {
				t.Logf("request size %d with budget %d", len(req.Offsets), max)
				return false
			}
			if req.Line%LineBytes != 0 {
				t.Logf("unaligned line %#x", req.Line)
				return false
			}
			for _, off := range req.Offsets {
				if off >= LineBytes {
					t.Logf("offset %d out of line", off)
					return false
				}
				got = append(got, req.Line+uint64(off))
			}
		}
		if len(got) != len(want) {
			t.Logf("%d bytes generated, want %d (%v)", len(got), len(want), pat)
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				t.Logf("byte %d: %#x, want %#x", i, got[i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: with a full budget, the AGU is minimal — consecutive
// requests never share a line (it would have merged them).
func TestAffineAGUMinimalRequests(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pat := isa.Strided2D(
			uint64(rng.Intn(1<<12)),
			uint64(1+rng.Intn(63)),
			uint64(1+rng.Intn(128)),
			uint64(1+rng.Intn(20)),
		)
		cur := isa.NewAffineCursor(pat)
		prevLine := ^uint64(0)
		prevFull := true
		for {
			req, ok := nextAffineLine(cur, LineBytes, nil)
			if !ok {
				break
			}
			if req.Line == prevLine && prevFull {
				// Same line twice in a row with budget to spare: only
				// legal if the previous request was cut by the budget.
				t.Logf("unmerged same-line requests at %#x (%v)", req.Line, pat)
				return false
			}
			prevLine = req.Line
			prevFull = len(req.Offsets) < LineBytes
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLineReqMask(t *testing.T) {
	r := LineReq{Line: 0, Offsets: []uint8{0, 1, 1, 63}}
	if r.Bytes() != 4 {
		t.Errorf("Bytes = %d", r.Bytes())
	}
	want := uint64(1)<<0 | 1<<1 | 1<<63
	if r.Mask() != want {
		t.Errorf("Mask = %#x, want %#x", r.Mask(), want)
	}
}

// Property: the indirect AGU preserves element order and line locality.
func TestIndirectAGUOrderAndCoalescing(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var g indirectAGU
		var want []uint64
		for i := 0; i < 20; i++ {
			addr := uint64(rng.Intn(1 << 10))
			size := []int{1, 2, 4, 8}[rng.Intn(4)]
			g.pushElem(addr, size)
			for b := 0; b < size; b++ {
				want = append(want, addr+uint64(b))
			}
		}
		var got []uint64
		for {
			req, ok := g.next(LineBytes, nil)
			if !ok {
				break
			}
			if req.Line%LineBytes != 0 {
				return false
			}
			for _, off := range req.Offsets {
				got = append(got, req.Line+uint64(off))
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Same-line consecutive elements coalesce into one request.
func TestIndirectAGUCoalescesSameLine(t *testing.T) {
	var g indirectAGU
	g.pushElem(128, 8)
	g.pushElem(136, 8)
	g.pushElem(144, 8)
	req, ok := g.next(LineBytes, nil)
	if !ok || req.Bytes() != 24 || req.Line != 128 {
		t.Errorf("coalesced request = %+v, ok=%v", req, ok)
	}
	if g.pending() != 0 {
		t.Errorf("%d bytes left", g.pending())
	}
}

// Cross-line elements split at the boundary.
func TestIndirectAGUSplitsAtLineBoundary(t *testing.T) {
	var g indirectAGU
	g.pushElem(60, 8) // bytes 60..67: spans two lines
	r1, _ := g.next(LineBytes, nil)
	r2, _ := g.next(LineBytes, nil)
	if r1.Line != 0 || r1.Bytes() != 4 {
		t.Errorf("first half = %+v", r1)
	}
	if r2.Line != 64 || r2.Bytes() != 4 {
		t.Errorf("second half = %+v", r2)
	}
}
