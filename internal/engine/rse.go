package engine

import (
	"encoding/binary"
	"fmt"

	"softbrain/internal/faults"
	"softbrain/internal/isa"
	"softbrain/internal/obs"
	"softbrain/internal/sim"
)

// RSE is the reduction/recurrence stream engine: it forwards data from
// output ports back to input ports (SD_Port_Port), generates constant
// streams from the core (SD_Const_Port), and discards unneeded output
// elements (SD_Clean_Port). It has no AGU; its bus moves up to 64 bytes
// per cycle.
type RSE struct {
	ports *Ports
	table int

	streams []*rseStream
	done    []int
	doneFb  []int // spare done buffer (Done double-buffers)
	rr      int
	joined  int // streams appended since the last Tick (see OnSkip)

	// Hot-path scratch for constant generation (Queue.Push copies).
	constScratch [LineBytes]byte

	// Faults, when non-nil, perturbs the bus bandwidth.
	Faults *faults.Injector

	// Retired, when non-nil, reports each stream's total data movement
	// as it leaves the table (see internal/obs).
	Retired func(id int, kind isa.Kind, bytes uint64)

	// Wake signals (see sim.Signal and MSE's counterparts).
	Kicks     sim.Signal
	Lifecycle sim.Signal

	// Statistics.
	BytesMoved uint64
	BusyCycles uint64
}

// NewRSE builds a recurrence stream engine.
func NewRSE(ports *Ports, table int) *RSE {
	return &RSE{ports: ports, table: table}
}

type rseStream struct {
	id        int
	kind      isa.Kind
	srcPort   int // output port (PortPort, CleanPort)
	dstPort   int // input port (PortPort, ConstPort)
	remaining uint64
	bytes     uint64 // data moved so far, for the bandwidth report

	// Constant generation state.
	pattern []byte // one element of the constant, little-endian
	phase   int    // next byte of the pattern to emit
}

// CanAccept reports whether a stream-table entry is free.
func (e *RSE) CanAccept() bool { return len(e.streams) < e.table }

// Start installs a recurrence, constant, or clean stream.
func (e *RSE) Start(id int, cmd isa.Command) error {
	if !e.CanAccept() {
		return fmt.Errorf("engine: RSE table full")
	}
	s := &rseStream{id: id, kind: cmd.Kind()}
	switch c := cmd.(type) {
	case isa.PortPort:
		s.srcPort = int(c.Src)
		s.dstPort = int(c.Dst)
		s.remaining = c.Count * uint64(c.Elem)
	case isa.ConstPort:
		s.dstPort = int(c.Dst)
		s.remaining = c.Count * uint64(c.Elem)
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], c.Value)
		s.pattern = buf[:c.Elem]
	case isa.CleanPort:
		s.srcPort = int(c.Src)
		s.remaining = c.Count * uint64(c.Elem)
	default:
		return fmt.Errorf("engine: RSE cannot execute %v", cmd)
	}
	e.streams = append(e.streams, s)
	e.joined++
	e.Kicks.Raise()
	return nil
}

// Done drains completed stream IDs. The returned slice is valid until
// the next call (double-buffered).
func (e *RSE) Done() []int {
	d := e.done
	e.done, e.doneFb = e.doneFb[:0], d
	return d
}

// Active is the number of live streams.
func (e *RSE) Active() int { return len(e.streams) }

// Tick moves data for the active streams under the shared bus budget.
func (e *RSE) Tick(now uint64) error {
	e.joined = 0
	budget := LineBytes
	if e.Faults != nil {
		budget = e.Faults.BusBudget(faults.EngRSE, budget)
	}
	n := len(e.streams)
	for i := 0; i < n && budget > 0; i++ {
		s := e.streams[(e.rr+i)%n]
		moved := e.step(s, budget)
		budget -= moved
		e.BytesMoved += uint64(moved)
		s.bytes += uint64(moved)
	}
	if n > 0 {
		e.rr = (e.rr + 1) % n
	}
	if budget < LineBytes {
		e.BusyCycles++
	}
	e.retire()
	return nil
}

// step moves up to budget bytes for one stream and returns how many.
func (e *RSE) step(s *rseStream, budget int) int {
	n := budget
	if uint64(n) > s.remaining {
		n = int(s.remaining)
	}
	if n == 0 {
		return 0
	}
	switch s.kind {
	case isa.KindPortPort:
		if avail := e.ports.Out[s.srcPort].Len(); avail < n {
			n = avail
		}
		if space := e.ports.InAvail(s.dstPort); space < n {
			n = space
		}
		if n <= 0 {
			return 0
		}
		data := e.ports.Out[s.srcPort].Pop(n)
		e.ports.In[s.dstPort].Push(data)
	case isa.KindConstPort:
		if space := e.ports.InAvail(s.dstPort); space < n {
			n = space
		}
		if n <= 0 {
			return 0
		}
		data := e.constScratch[:n]
		for i := range data {
			data[i] = s.pattern[s.phase]
			s.phase = (s.phase + 1) % len(s.pattern)
		}
		e.ports.In[s.dstPort].Push(data)
	case isa.KindCleanPort:
		if avail := e.ports.Out[s.srcPort].Len(); avail < n {
			n = avail
		}
		if n <= 0 {
			return 0
		}
		e.ports.Out[s.srcPort].Discard(n)
	}
	s.remaining -= uint64(n)
	return n
}

// Streams reports every active stream with its blocking state, for the
// core's structured hang diagnosis. The RSE has no timed state: a stuck
// stream always waits on a port.
func (e *RSE) Streams(now uint64) []StreamInfo {
	var out []StreamInfo
	for _, s := range e.streams {
		si := StreamInfo{ID: s.id, Kind: s.kind, Eng: "RSE", DstIn: -1, SrcOut: -1, IdxIn: -1}
		switch s.kind {
		case isa.KindPortPort:
			si.SrcOut, si.DstIn = s.srcPort, s.dstPort
			switch {
			case e.ports.Out[s.srcPort].Len() == 0:
				si.Wait = WaitOutData
			case e.ports.InAvail(s.dstPort) <= 0:
				si.Wait = WaitInSpace
			}
		case isa.KindConstPort:
			si.DstIn = s.dstPort
			if e.ports.InAvail(s.dstPort) <= 0 {
				si.Wait = WaitInSpace
			}
		case isa.KindCleanPort:
			si.SrcOut = s.srcPort
			if e.ports.Out[s.srcPort].Len() == 0 {
				si.Wait = WaitOutData
			}
		}
		out = append(out, si)
	}
	return out
}

// StallCause classifies the engine's state on a cycle it moved no data
// (see MSE.StallCause for the contract). The RSE has no timed state: a
// stalled stream waits on a full destination or an empty source.
func (e *RSE) StallCause(uint64) obs.Cause {
	worst := obs.CauseIdle
	for _, s := range e.streams {
		c := obs.CauseIdle
		switch s.kind {
		case isa.KindPortPort:
			switch {
			case e.ports.Out[s.srcPort].Len() == 0:
				c = obs.PortEmpty
			case e.ports.InAvail(s.dstPort) <= 0:
				c = obs.PortFull
			}
		case isa.KindConstPort:
			if e.ports.InAvail(s.dstPort) <= 0 {
				c = obs.PortFull
			}
		case isa.KindCleanPort:
			if e.ports.Out[s.srcPort].Len() == 0 {
				c = obs.PortEmpty
			}
		}
		worst = obs.Worse(worst, c)
	}
	return worst
}

// OnSkip replays the per-tick arbitration round-robin rotation over an
// elided idle span, excluding streams that joined at the span's final
// cycle (see MSE.OnSkip).
func (e *RSE) OnSkip(from, to uint64) {
	if n := len(e.streams) - e.joined; n > 0 {
		e.rr = (e.rr + int((to-from)%uint64(n))) % n
	}
}

// WatchSig sums the external signals the engine's wake hint depends on
// (see sim.Watcher and MSE.WatchSig).
func (e *RSE) WatchSig() uint64 {
	sig := e.Kicks.Value()
	for _, s := range e.streams {
		switch s.kind {
		case isa.KindPortPort:
			qo, qi := e.ports.Out[s.srcPort], e.ports.In[s.dstPort]
			sig += qo.TotalIn() + qo.TotalOut() + qi.TotalIn() + qi.TotalOut()
		case isa.KindConstPort:
			q := e.ports.In[s.dstPort]
			sig += q.TotalIn() + q.TotalOut()
		case isa.KindCleanPort:
			q := e.ports.Out[s.srcPort]
			sig += q.TotalIn() + q.TotalOut()
		}
	}
	return sig
}

// NextWake implements the sim.Component wake-hint contract (see
// docs/SIMKERNEL.md). The RSE has no timed state: it is Ready when any
// stream has both data and space, Idle otherwise.
func (e *RSE) NextWake(now uint64) sim.Hint {
	for _, s := range e.streams {
		switch s.kind {
		case isa.KindPortPort:
			if e.ports.Out[s.srcPort].Len() > 0 && e.ports.InAvail(s.dstPort) > 0 {
				return sim.ReadyNow()
			}
		case isa.KindConstPort:
			if e.ports.InAvail(s.dstPort) > 0 {
				return sim.ReadyNow()
			}
		case isa.KindCleanPort:
			if e.ports.Out[s.srcPort].Len() > 0 {
				return sim.ReadyNow()
			}
		}
	}
	return sim.Idle()
}

func (e *RSE) retire() {
	live := e.streams[:0]
	for _, s := range e.streams {
		if s.remaining == 0 {
			if e.Retired != nil {
				e.Retired(s.id, s.kind, s.bytes)
			}
			e.done = append(e.done, s.id)
			e.Lifecycle.Raise()
		} else {
			live = append(live, s)
		}
	}
	e.streams = live
}
