// Package engine implements the three stream engines of Section 4.3 —
// memory (MSE), scratchpad (SSE) and recurrence (RSE) — together with
// their stream request pipelines: stream tables, ready logic, affine and
// indirect address generation units (AGUs), line coalescing, and the
// balance arbitration unit of Section 4.5.
//
// Engines move real bytes between the memory system, the scratchpad and
// the vector ports, and model timing: each engine owns a 512-bit bus
// (64 bytes/cycle) and issues at most one address-generation operation
// per cycle.
package engine

import (
	"softbrain/internal/isa"
)

// LineBytes is the memory interface width (one request per cycle covers
// one aligned 64-byte line).
const LineBytes = isa.LineBytes

// LineReq is one coalesced, line-aligned request produced by an AGU.
// Offsets lists the byte offsets within the line in stream order; offsets
// may repeat (overlapped and repeating patterns re-read bytes). Contig
// marks the common fast case — Offsets is one consecutive increasing
// run — letting data movement use a single copy instead of a byte loop.
type LineReq struct {
	Line    uint64 // line-aligned base address
	Offsets []uint8
	Contig  bool
}

// Bytes is the payload size of the request.
func (r LineReq) Bytes() int { return len(r.Offsets) }

// Mask returns the 64-bit byte mask of the touched offsets, the view a
// memory interface sees (repeats collapse).
func (r LineReq) Mask() uint64 {
	var m uint64
	for _, o := range r.Offsets {
		m |= 1 << o
	}
	return m
}

// nextAffineLine pulls the longest same-line run of bytes (up to max)
// from the cursor, forming the minimal next request for the stream. It
// returns a zero request when the cursor is exhausted. Offsets are
// appended into scratch (reset to length 0) — the caller owns the
// request only until its next call with the same scratch.
func nextAffineLine(c *isa.AffineCursor, max int, scratch []uint8) (LineReq, bool) {
	if c.Done() {
		return LineReq{}, false
	}
	first := c.Peek()
	req := LineReq{Line: first &^ (LineBytes - 1), Offsets: scratch[:0], Contig: true}
	prev := -1
	for !c.Done() && len(req.Offsets) < max {
		a := c.Peek()
		if a&^(LineBytes-1) != req.Line {
			break
		}
		off := a & (LineBytes - 1)
		if prev >= 0 && int(off) != prev {
			req.Contig = false
		}
		room := uint64(max - len(req.Offsets))
		if lineRoom := LineBytes - off; lineRoom < room {
			room = lineRoom
		}
		_, n := c.Take(room)
		for i := uint64(0); i < n; i++ {
			req.Offsets = append(req.Offsets, uint8(off+i))
		}
		prev = int(off + n)
	}
	return req, true
}

// indirectAGU turns a stream of element addresses (derived from indices
// popped off an indirect vector port) into line requests. It coalesces
// up to CoalesceDegree elements into one request when they share a line.
type indirectAGU struct {
	queue []uint64 // pending byte addresses, stream order
}

// CoalesceDegree is how many indirect elements the AGU examines per
// cycle ("this unit will attempt to coalesce up to four increasing
// addresses in the current 64-byte line").
const CoalesceDegree = 4

// pushElem appends the byte addresses of one element at addr.
func (g *indirectAGU) pushElem(addr uint64, size int) {
	for i := 0; i < size; i++ {
		g.queue = append(g.queue, addr+uint64(i))
	}
}

// pending is the number of buffered element bytes.
func (g *indirectAGU) pending() int { return len(g.queue) }

// peekAddr returns the byte address the next line request starts at;
// only valid when pending() > 0.
func (g *indirectAGU) peekAddr() uint64 { return g.queue[0] }

// next forms one line request from the head of the queue: the longest
// same-line prefix, capped at max bytes. Offsets append into scratch
// (reset to length 0), like nextAffineLine.
func (g *indirectAGU) next(max int, scratch []uint8) (LineReq, bool) {
	if len(g.queue) == 0 {
		return LineReq{}, false
	}
	req := LineReq{Line: g.queue[0] &^ (LineBytes - 1), Offsets: scratch[:0], Contig: true}
	n := 0
	for n < len(g.queue) && n < max {
		a := g.queue[n]
		if a&^(LineBytes-1) != req.Line {
			break
		}
		off := uint8(a & (LineBytes - 1))
		if n > 0 && off != req.Offsets[n-1]+1 {
			req.Contig = false
		}
		req.Offsets = append(req.Offsets, off)
		n++
	}
	g.queue = g.queue[n:]
	return req, true
}
