package engine

import (
	"encoding/binary"
	"fmt"

	"softbrain/internal/faults"
	"softbrain/internal/isa"
	"softbrain/internal/mem"
	"softbrain/internal/obs"
	"softbrain/internal/sim"
)

// MSE is the memory stream engine: it walks memory-side streams
// (SD_Mem_Port, SD_Mem_Scratch, SD_Config, SD_IndPort_Port on the read
// side; SD_Port_Mem, SD_IndPort_Mem on the write side), generating one
// coalesced line request per cycle per direction and moving up to 64
// bytes per cycle over its response bus.
type MSE struct {
	sys    *mem.System
	ports  *Ports
	padBuf *PadWriteBuf
	table  int

	reads  []*memRead
	writes []*memWrite
	done   []int
	doneFb []int // spare done buffer (Done double-buffers)
	rr     int   // round-robin pointer for response delivery
	joined int   // reads appended since the last Tick (see OnSkip)

	// Hot-path scratch: line-offset buffer for the AGUs (one request is
	// in flight at a time inside a tick) and a freelist of delivered
	// response buffers (Queue.Push copies, so they recycle; buffers
	// handed to the pad write buffer do not — the SSE holds them).
	offScratch [LineBytes]uint8
	freeData   [][]byte

	onConfig func(addr uint64)

	// Ablation switches (normally false; see core.Config).
	DisableBalance bool // issue reads first-come instead of least-outstanding
	DisableDrain   bool // never report all-requests-in-flight

	// Faults, when non-nil, perturbs response timing, bus bandwidth and
	// line contents (see internal/faults). Nil costs one comparison per
	// hook site.
	Faults *faults.Injector

	// Retired, when non-nil, reports each stream's total data movement
	// as it leaves the table (see internal/obs).
	Retired func(id int, kind isa.Kind, bytes uint64)

	// Wake signals (see sim.Signal). Kicks counts streams entering the
	// table (and deferred-grant resolutions); Lifecycle counts streams
	// completing or reaching all-requests-in-flight — the events the
	// dispatcher's scoreboards care about.
	Kicks     sim.Signal
	Lifecycle sim.Signal

	// Statistics.
	LinesRead      uint64
	LinesWritten   uint64
	BytesDelivered uint64
	BytesStored    uint64
	BusyCycles     uint64
}

// NewMSE builds a memory stream engine with the given stream-table size
// per direction. onConfig is called when an SD_Config stream finishes
// loading its bitstream.
func NewMSE(sys *mem.System, ports *Ports, padBuf *PadWriteBuf, table int, onConfig func(addr uint64)) *MSE {
	return &MSE{sys: sys, ports: ports, padBuf: padBuf, table: table, onConfig: onConfig}
}

const (
	dstScratch = -1
	dstDiscard = -2
)

// aguStageCap bounds the bytes of generated-but-unissued indirect
// addresses each stream's AGU stages ahead of the request port.
const aguStageCap = 4 * LineBytes

// memRead is one read-stream table entry.
type memRead struct {
	id   int
	kind isa.Kind

	cur *isa.AffineCursor // affine source (nil for indirect)

	// Indirect source state (SD_IndPort_Port).
	idxPort      int
	idxElem      int
	idxRemaining uint64
	offset       uint64
	scale        uint64
	dataElem     int
	agu          indirectAGU

	dstPort        int // >= 0: input vector port; dstScratch; dstDiscard
	padCur         uint64
	padOutstanding int
	cfgAddr        uint64

	announced bool // all-requests-in-flight reported to the dispatcher
	pending   []readPending
	bytes     uint64 // data moved so far, for the bandwidth report
}

func (s *memRead) issuedAll() bool {
	if s.cur != nil {
		return s.cur.Done()
	}
	return s.idxRemaining == 0 && s.agu.pending() == 0
}

func (s *memRead) finished() bool {
	return s.issuedAll() && len(s.pending) == 0 && s.padOutstanding == 0
}

// memWrite is one write-stream table entry.
type memWrite struct {
	id   int
	kind isa.Kind

	cur *isa.AffineCursor // affine destination (nil for indirect)

	idxPort      int
	idxElem      int
	idxRemaining uint64
	offset       uint64
	scale        uint64
	dataElem     int
	agu          indirectAGU

	srcPort   int
	lastReady uint64
	bytes     uint64 // data moved so far, for the bandwidth report

	// deferredReady parks a provisional completion time from a write
	// issued under deferred DRAM grants (parallel cluster mode). It is
	// folded into lastReady — which keeps max semantics — once the
	// epoch barrier resolves the grant. While set, the stream cannot
	// retire.
	deferredReady uint64
}

func (s *memWrite) issuedAll() bool {
	if s.cur != nil {
		return s.cur.Done()
	}
	return s.idxRemaining == 0 && s.agu.pending() == 0
}

// CanAcceptRead reports whether a read-stream table entry is free.
func (e *MSE) CanAcceptRead() bool { return len(e.reads) < e.table }

// CanAcceptWrite reports whether a write-stream table entry is free.
func (e *MSE) CanAcceptWrite() bool { return len(e.writes) < e.table }

// StartRead installs a read-side stream. id identifies the stream in
// Done() completions.
func (e *MSE) StartRead(id int, cmd isa.Command) error {
	if !e.CanAcceptRead() {
		return fmt.Errorf("engine: MSE read table full")
	}
	s := &memRead{id: id, kind: cmd.Kind()}
	switch c := cmd.(type) {
	case isa.MemPort:
		s.cur = isa.NewAffineCursor(c.Src)
		s.dstPort = int(c.Dst)
	case isa.MemScratch:
		s.cur = isa.NewAffineCursor(c.Src)
		s.dstPort = dstScratch
		s.padCur = c.ScratchAddr
	case isa.Config:
		s.cur = isa.NewAffineCursor(isa.Linear(c.Addr, c.Size))
		s.dstPort = dstDiscard
		s.cfgAddr = c.Addr
	case isa.IndPortPort:
		s.idxPort = int(c.Idx)
		s.idxElem = int(c.IdxElem)
		s.idxRemaining = c.Count
		s.offset = c.Offset
		s.scale = uint64(c.Scale)
		s.dataElem = int(c.DataElem)
		s.dstPort = int(c.Dst)
	default:
		return fmt.Errorf("engine: MSE cannot read for %v", cmd)
	}
	e.reads = append(e.reads, s)
	e.joined++
	e.Kicks.Raise()
	return nil
}

// StartWrite installs a write-side stream.
func (e *MSE) StartWrite(id int, cmd isa.Command) error {
	if !e.CanAcceptWrite() {
		return fmt.Errorf("engine: MSE write table full")
	}
	s := &memWrite{id: id, kind: cmd.Kind()}
	switch c := cmd.(type) {
	case isa.PortMem:
		s.cur = isa.NewAffineCursor(c.Dst)
		s.srcPort = int(c.Src)
	case isa.IndPortMem:
		s.idxPort = int(c.Idx)
		s.idxElem = int(c.IdxElem)
		s.idxRemaining = c.Count
		s.offset = c.Offset
		s.scale = uint64(c.Scale)
		s.dataElem = int(c.DataElem)
		s.srcPort = int(c.Src)
	default:
		return fmt.Errorf("engine: MSE cannot write for %v", cmd)
	}
	e.writes = append(e.writes, s)
	e.Kicks.Raise()
	return nil
}

// Done drains the list of streams completed since the last call. The
// returned slice is valid until the next call (double-buffered).
func (e *MSE) Done() []int {
	d := e.done
	e.done, e.doneFb = e.doneFb[:0], d
	return d
}

// Drained reports read streams that have just issued their last memory
// request: the "all-requests-in-flight" state of Section 4.2, which
// lets the dispatcher release their destination port to a successor
// stream early. Each stream is reported once.
func (e *MSE) Drained() []int {
	if e.DisableDrain {
		return nil
	}
	var out []int
	for _, s := range e.reads {
		if !s.announced && s.issuedAll() {
			s.announced = true
			out = append(out, s.id)
		}
	}
	return out
}

// Active is the number of live streams (both directions).
func (e *MSE) Active() int { return len(e.reads) + len(e.writes) }

// ActiveScratchWrites counts live streams that still owe scratchpad
// writes, for SD_Barrier_Scratch_Wr.
func (e *MSE) ActiveScratchWrites() int {
	n := 0
	for _, s := range e.reads {
		if s.kind == isa.KindMemScratch {
			n++
		}
	}
	return n
}

// Tick advances the engine one cycle.
func (e *MSE) Tick(now uint64) error {
	e.joined = 0
	busy := false
	if e.deliver(now) {
		busy = true
	}
	e.refillIndirect()
	if e.issueRead(now) {
		busy = true
	}
	if err := e.issueWrite(now, &busy); err != nil {
		return err
	}
	e.retire(now)
	if busy {
		e.BusyCycles++
	}
	return nil
}

// deliver moves ready read responses, in per-stream issue order, to
// their destinations under the 64-byte bus budget. When several streams
// target the same port (the all-requests-in-flight overlap), only the
// oldest may deliver, preserving stream order into the port.
func (e *MSE) deliver(now uint64) bool {
	budget := LineBytes
	if e.Faults != nil {
		budget = e.Faults.BusBudget(faults.EngMSE, budget)
	}
	moved := false
	n := len(e.reads)
	for i := 0; i < n && budget > 0; i++ {
		s := e.reads[(e.rr+i)%n]
		if s.dstPort >= 0 && !e.oldestFor(s) {
			continue
		}
		for len(s.pending) > 0 && budget > 0 {
			head := s.pending[0]
			if head.ready > now || len(head.data) > budget {
				break
			}
			switch {
			case s.dstPort >= 0:
				e.ports.Deliver(s.dstPort, head.data)
				e.freeData = append(e.freeData, head.data[:0]) // Deliver copied
			case s.dstPort == dstScratch:
				e.padBuf.Fill(PadWrite{Addr: head.padAddr, Data: head.data, notify: &s.padOutstanding})
				s.padOutstanding++
			}
			budget -= len(head.data)
			e.BytesDelivered += uint64(len(head.data))
			s.bytes += uint64(len(head.data))
			k := copy(s.pending, s.pending[1:]) // pop-front in place: keeps capacity
			s.pending = s.pending[:k]
			moved = true
		}
	}
	if n > 0 {
		e.rr = (e.rr + 1) % n
	}
	return moved
}

// oldestFor reports whether s is the oldest (smallest-id) active stream
// targeting its destination port; only the oldest may deliver, so
// overlapped successors stay in stream order. The table is tiny, so a
// scan beats building a port map each cycle.
func (e *MSE) oldestFor(s *memRead) bool {
	for _, o := range e.reads {
		if o.dstPort == s.dstPort && o.id < s.id {
			return false
		}
	}
	return true
}

// refillIndirect models the indirect AGU path: each indirect stream pops
// up to CoalesceDegree indices per cycle from its indirect vector port.
func (e *MSE) refillIndirect() {
	refill := func(idxPort, idxElem int, remaining *uint64, agu *indirectAGU, offset, scale uint64, dataElem int) {
		q := e.ports.In[idxPort]
		for k := 0; k < CoalesceDegree && *remaining > 0 && agu.pending() < aguStageCap; k++ {
			if q.Len() < idxElem {
				break
			}
			raw := q.Pop(idxElem)
			var buf [8]byte
			copy(buf[:], raw)
			idx := binary.LittleEndian.Uint64(buf[:])
			agu.pushElem(offset+idx*scale, dataElem)
			*remaining--
		}
	}
	// With overlapped streams, only the oldest consumer of each indirect
	// port that still needs indices may pop, preserving index order. The
	// tables are tiny, so a per-stream scan beats a per-cycle port map.
	oldestIdx := func(port, id int) bool {
		for _, o := range e.reads {
			if o.kind == isa.KindIndPortPort && o.idxRemaining > 0 && o.idxPort == port && o.id < id {
				return false
			}
		}
		for _, o := range e.writes {
			if o.kind == isa.KindIndPortMem && o.idxRemaining > 0 && o.idxPort == port && o.id < id {
				return false
			}
		}
		return true
	}
	for _, s := range e.reads {
		if s.kind == isa.KindIndPortPort && s.idxRemaining > 0 && oldestIdx(s.idxPort, s.id) {
			refill(s.idxPort, s.idxElem, &s.idxRemaining, &s.agu, s.offset, s.scale, s.dataElem)
		}
	}
	for _, s := range e.writes {
		if s.kind == isa.KindIndPortMem && s.idxRemaining > 0 && oldestIdx(s.idxPort, s.id) {
			refill(s.idxPort, s.idxElem, &s.idxRemaining, &s.agu, s.offset, s.scale, s.dataElem)
		}
	}
}

// issueRead selects one ready read stream — the balance unit: least
// outstanding bytes toward its destination first — and issues its next
// line request.
func (e *MSE) issueRead(now uint64) bool {
	var best *memRead
	bestScore := 0
	for _, s := range e.reads {
		if s.issuedAll() {
			continue
		}
		var score int
		switch {
		case s.dstPort >= 0:
			if e.ports.InAvail(s.dstPort) <= 0 {
				continue // backpressure: no credit for a response
			}
			score = e.ports.Reserved(s.dstPort)
		case s.dstPort == dstScratch:
			if !e.padBuf.CanReserve() {
				continue
			}
			score = e.padBuf.Len()
		default:
			score = len(s.pending)
		}
		if s.cur == nil && s.agu.pending() == 0 {
			continue // indirect stream waiting for indices
		}
		if e.DisableBalance {
			if best == nil {
				best = s
			}
			continue
		}
		if best == nil || score < bestScore {
			best, bestScore = s, score
		}
	}
	if best == nil {
		return false
	}

	maxBytes := LineBytes
	if best.dstPort >= 0 {
		if avail := e.ports.InAvail(best.dstPort); avail < maxBytes {
			maxBytes = avail
		}
	}
	// Generate tentatively; roll back if the memory system rejects.
	var req LineReq
	var ok bool
	if best.cur != nil {
		saved := *best.cur
		req, ok = nextAffineLine(best.cur, maxBytes, e.offScratch[:])
		if ok {
			if ready, accepted := e.sys.Request(now, req.Line, false, req.Bytes()); accepted {
				e.commitRead(best, req, ready)
				return true
			}
		}
		*best.cur = saved
		return false
	}
	saved := best.agu.queue
	req, ok = best.agu.next(maxBytes, e.offScratch[:])
	if ok {
		if ready, accepted := e.sys.Request(now, req.Line, false, req.Bytes()); accepted {
			e.commitRead(best, req, ready)
			return true
		}
	}
	best.agu.queue = saved
	return false
}

// commitRead reads the data functionally and queues the response.
func (e *MSE) commitRead(s *memRead, req LineReq, ready uint64) {
	var line [LineBytes]byte
	e.sys.Mem.Read(req.Line, line[:])
	var data []byte
	if n := len(e.freeData); n > 0 {
		data, e.freeData = e.freeData[n-1][:0], e.freeData[:n-1]
	} else if d := e.padBuf.TakeFree(); d != nil {
		data = d[:0]
	}
	if req.Contig {
		o := int(req.Offsets[0])
		data = append(data, line[o:o+len(req.Offsets)]...)
	} else {
		for _, off := range req.Offsets {
			data = append(data, line[off])
		}
	}
	if e.Faults != nil {
		ready += e.Faults.MemDelay()
		e.Faults.CorruptLine(data)
	}
	p := readPending{ready: ready, data: data}
	if s.dstPort >= 0 {
		e.ports.Reserve(s.dstPort, len(data))
	} else if s.dstPort == dstScratch {
		e.padBuf.ReserveSlot()
		p.padAddr = s.padCur
		s.padCur += uint64(len(data))
	}
	s.pending = append(s.pending, p)
	e.LinesRead++
	if s.issuedAll() {
		// The stream just reached all-requests-in-flight: Drained() will
		// announce it, which can unblock a sleeping dispatcher.
		e.Lifecycle.Raise()
	}
}

// issueWrite selects the write stream with the most data available (the
// paper's data-available priority) and issues one line write.
func (e *MSE) issueWrite(now uint64, busy *bool) error {
	var best *memWrite
	bestAvail := 0
	for _, s := range e.writes {
		if s.issuedAll() {
			continue
		}
		avail := e.ports.Out[s.srcPort].Len()
		if avail == 0 {
			continue
		}
		if s.cur == nil && s.agu.pending() == 0 {
			continue
		}
		if best == nil || avail > bestAvail {
			best, bestAvail = s, avail
		}
	}
	if best == nil {
		return nil
	}
	maxBytes := LineBytes
	if bestAvail < maxBytes {
		maxBytes = bestAvail
	}
	var req LineReq
	var ok bool
	if best.cur != nil {
		saved := *best.cur
		req, ok = nextAffineLine(best.cur, maxBytes, e.offScratch[:])
		if !ok {
			return nil
		}
		ready, accepted := e.sys.Request(now, req.Line, true, req.Bytes())
		if !accepted {
			*best.cur = saved
			return nil
		}
		e.commitWrite(best, req, ready)
		*busy = true
		return nil
	}
	saved := best.agu.queue
	req, ok = best.agu.next(maxBytes, e.offScratch[:])
	if !ok {
		return nil
	}
	ready, accepted := e.sys.Request(now, req.Line, true, req.Bytes())
	if !accepted {
		best.agu.queue = saved
		return nil
	}
	e.commitWrite(best, req, ready)
	*busy = true
	return nil
}

// commitWrite pops the stream's bytes from its output port and stores
// them functionally.
func (e *MSE) commitWrite(s *memWrite, req LineReq, ready uint64) {
	if e.Faults != nil {
		ready += e.Faults.MemDelay()
	}
	data := e.ports.Out[s.srcPort].Pop(req.Bytes())
	if req.Contig {
		e.sys.Mem.Write(req.Line+uint64(req.Offsets[0]), data)
	} else {
		for i, off := range req.Offsets {
			e.sys.Mem.StoreByte(req.Line+uint64(off), data[i])
		}
	}
	if mem.IsProvisional(ready) {
		// The real completion time is unknown until the epoch barrier;
		// a provisional value must not clobber lastReady's max.
		s.deferredReady = ready
	} else if ready > s.lastReady {
		s.lastReady = ready
	}
	e.LinesWritten++
	e.BytesStored += uint64(req.Bytes())
	s.bytes += uint64(req.Bytes())
}

// ResolveDeferred patches every provisional completion time recorded
// under deferred DRAM grants with its resolved cycle. The cluster calls
// it at the epoch barrier, after mem.System.ResolveGrants.
func (e *MSE) ResolveDeferred(resolve func(uint64) uint64) {
	e.Kicks.Raise() // ready times change outside a tick: re-validate hints
	for _, s := range e.reads {
		for i := range s.pending {
			s.pending[i].ready = resolve(s.pending[i].ready)
		}
	}
	for _, s := range e.writes {
		if s.deferredReady != 0 {
			if t := resolve(s.deferredReady); t > s.lastReady {
				s.lastReady = t
			}
			s.deferredReady = 0
		}
	}
}

// retire removes finished streams and reports their IDs.
func (e *MSE) retire(now uint64) {
	reads := e.reads[:0]
	for _, s := range e.reads {
		if s.finished() {
			if s.kind == isa.KindConfig && e.onConfig != nil {
				e.onConfig(s.cfgAddr)
			}
			if e.Retired != nil {
				e.Retired(s.id, s.kind, s.bytes)
			}
			e.done = append(e.done, s.id)
			e.Lifecycle.Raise()
		} else {
			reads = append(reads, s)
		}
	}
	e.reads = reads
	writes := e.writes[:0]
	for _, s := range e.writes {
		if s.issuedAll() && s.deferredReady == 0 && now >= s.lastReady {
			if e.Retired != nil {
				e.Retired(s.id, s.kind, s.bytes)
			}
			e.done = append(e.done, s.id)
			e.Lifecycle.Raise()
		} else {
			writes = append(writes, s)
		}
	}
	e.writes = writes
}

// Streams reports every active stream with its blocking state at cycle
// now, for the core's structured hang diagnosis.
func (e *MSE) Streams(now uint64) []StreamInfo {
	var out []StreamInfo
	for _, s := range e.reads {
		si := StreamInfo{ID: s.id, Kind: s.kind, Eng: "MSE", DstIn: -1, SrcOut: -1, IdxIn: -1}
		if s.dstPort >= 0 {
			si.DstIn = s.dstPort
		}
		if s.kind == isa.KindIndPortPort {
			si.IdxIn = s.idxPort
		}
		switch {
		case len(s.pending) > 0 && s.pending[0].ready > now:
			si.Wait = WaitTimed
		case len(s.pending) > 0:
			si.Wait = WaitNone // head deliverable: space was reserved at issue
		case !s.issuedAll():
			switch {
			case s.cur == nil && s.agu.pending() == 0 && s.idxRemaining > 0:
				si.Wait = WaitIndex
			case s.dstPort >= 0 && e.ports.InAvail(s.dstPort) <= 0:
				si.Wait = WaitInSpace
			case s.dstPort == dstScratch && !e.padBuf.CanReserve():
				si.Wait = WaitPadBuf
			default:
				si.Wait = WaitNone // can issue; memory rejection is transient
			}
		case s.padOutstanding > 0:
			si.Wait = WaitPadBuf // SSE drains the buffer unconditionally
		default:
			si.Wait = WaitNone
		}
		out = append(out, si)
	}
	for _, s := range e.writes {
		si := StreamInfo{ID: s.id, Kind: s.kind, Eng: "MSE", DstIn: -1, SrcOut: s.srcPort, IdxIn: -1}
		if s.kind == isa.KindIndPortMem {
			si.IdxIn = s.idxPort
		}
		switch {
		case s.issuedAll() && now < s.lastReady:
			si.Wait = WaitTimed
		case s.issuedAll():
			si.Wait = WaitNone
		case s.cur == nil && s.agu.pending() == 0 && s.idxRemaining > 0:
			si.Wait = WaitIndex
		case e.ports.Out[s.srcPort].Len() == 0:
			si.Wait = WaitOutData
		default:
			si.Wait = WaitNone
		}
		out = append(out, si)
	}
	return out
}

// StallCause classifies the engine's state on a cycle it did no work
// (the machine attributes Busy from work-counter deltas and consults
// this only otherwise). The classification is purely state-based so it
// evaluates identically on a ticked cycle and across a frozen skip
// span, and it reads only unit-local state plus comparisons the tick
// path itself makes (`ready > now`, `deferredReady != 0`) — so it is
// deterministic across sequential and parallel cluster runs. Across
// streams, the most actionable blocker wins (obs.Worse).
func (e *MSE) StallCause(now uint64) obs.Cause {
	worst := obs.CauseIdle
	for _, s := range e.reads {
		c := obs.CauseIdle
		switch {
		case len(s.pending) > 0 && s.pending[0].ready > now:
			c = obs.DRAMBW // response in flight
		case !s.issuedAll():
			switch {
			case s.cur == nil && s.agu.pending() == 0:
				c = obs.PortEmpty // indirect stream starved of indices
			case s.dstPort >= 0 && e.ports.InAvail(s.dstPort) <= 0:
				c = obs.PortFull // no credit for a response
			case s.dstPort == dstScratch && !e.padBuf.CanReserve():
				c = obs.PortFull
			default:
				// A line address is staged and the destination has
				// credit, yet nothing issued this cycle: the memory
				// system refused the request, and on a workless cycle
				// (the accept budget resets per cycle, and spending it
				// implies work) that means every MSHR is occupied.
				c = obs.MSHRFull
			}
		case s.padOutstanding > 0:
			c = obs.PortFull // scratch write buffer still draining
		}
		worst = obs.Worse(worst, c)
	}
	for _, s := range e.writes {
		c := obs.CauseIdle
		switch {
		case !s.issuedAll():
			switch {
			case s.cur == nil && s.agu.pending() == 0:
				c = obs.PortEmpty
			case e.ports.Out[s.srcPort].Len() == 0:
				c = obs.PortEmpty // waiting for CGRA output data
			default:
				c = obs.MSHRFull
			}
		case s.deferredReady != 0 || s.lastReady > now:
			c = obs.DRAMBW // write completion in flight
		}
		worst = obs.Worse(worst, c)
	}
	return worst
}

// PendingTimed reports whether the engine holds state that resolves at a
// known future cycle: an undelivered read response or an in-flight write
// completion with a ready time past now. While any exists the machine is
// not quiescent — progress will resume without external input.
func (e *MSE) PendingTimed(now uint64) bool {
	for _, s := range e.reads {
		for _, p := range s.pending {
			if p.ready > now {
				return true
			}
		}
	}
	for _, s := range e.writes {
		if s.lastReady > now {
			return true
		}
	}
	return false
}

// OnSkip replays the per-tick state an elided idle span would have
// accumulated: the delivery round-robin pointer rotates once per tick
// whenever any read stream is active, even when nothing moves. The
// dispatcher ticks after this engine, so a stream it started during
// the span's final cycle (forcing the wake that ends the span) was
// never part of the elided arbitration set — the rotation replays
// modulo the set as it stood during the span, excluding joiners.
func (e *MSE) OnSkip(from, to uint64) {
	if n := len(e.reads) - e.joined; n > 0 {
		e.rr = (e.rr + int((to-from)%uint64(n))) % n
	}
}

// nextLineAccept returns the earliest cycle at which the stream's next
// line request (starting at byte address addr) could be accepted: now
// unless the request would miss while every MSHR is occupied, in which
// case the earliest outstanding completion. The per-cycle accept-port
// budget resets every cycle and so never defers the wake (that
// over-reports Ready, which is sound).
func (e *MSE) nextLineAccept(now, addr uint64) uint64 {
	at := e.sys.NextMissAccept(now)
	if at <= now {
		return now
	}
	if c := e.sys.Cache; c != nil && c.Contains(addr&^uint64(LineBytes-1)) {
		return now // a hit needs no MSHR
	}
	return at
}

// WatchSig sums the external signals the engine's wake hint depends on
// (see sim.Watcher): the ports its active streams read or write, the
// pad write buffer, and the stream-kick counter. The stream set itself
// changes only inside the engine's own tick or under a Kicks raise, so
// between two snapshots every term is monotone.
func (e *MSE) WatchSig() uint64 {
	sig := e.Kicks.Value() + e.padBuf.DrainVer()
	for _, s := range e.reads {
		if s.dstPort >= 0 {
			q := e.ports.In[s.dstPort]
			sig += q.TotalIn() + q.TotalOut()
		}
		if s.kind == isa.KindIndPortPort {
			q := e.ports.In[s.idxPort]
			sig += q.TotalIn() + q.TotalOut()
		}
	}
	for _, s := range e.writes {
		q := e.ports.Out[s.srcPort]
		sig += q.TotalIn() + q.TotalOut()
		if s.kind == isa.KindIndPortMem {
			qi := e.ports.In[s.idxPort]
			sig += qi.TotalIn() + qi.TotalOut()
		}
	}
	return sig
}

// NextWake implements the sim.Component wake-hint contract (see
// docs/SIMKERNEL.md): Ready when any stream can act this cycle or the
// next, the earliest timed event when every stream waits on one, Idle
// when only another component's action can unblock the engine. The
// hint may over-report Ready (a request rejected on a shared accept
// port, say) — that is sound, it only forfeits a skip.
func (e *MSE) NextWake(now uint64) sim.Hint {
	h := sim.Idle()
	for _, s := range e.reads {
		if len(s.pending) > 0 {
			r := s.pending[0].ready
			if r <= now || mem.IsProvisional(r) {
				return sim.ReadyNow() // deliverable (or unresolved grant)
			}
			h = h.Earliest(sim.WakeAt(r))
		}
		if s.finished() {
			return sim.ReadyNow() // retires next tick
		}
		if s.issuedAll() {
			continue
		}
		if s.cur != nil || s.agu.pending() > 0 {
			switch {
			case s.dstPort == dstDiscard,
				s.dstPort >= 0 && e.ports.InAvail(s.dstPort) > 0,
				s.dstPort == dstScratch && e.padBuf.CanReserve():
				var addr uint64
				if s.cur != nil {
					addr = s.cur.Peek()
				} else {
					addr = s.agu.peekAddr()
				}
				if at := e.nextLineAccept(now, addr); at <= now {
					return sim.ReadyNow() // can issue the next line request
				} else {
					h = h.Earliest(sim.WakeAt(at)) // miss waiting on an MSHR
				}
			}
		}
		if s.idxRemaining > 0 && s.agu.pending() < aguStageCap && e.ports.In[s.idxPort].Len() >= s.idxElem {
			return sim.ReadyNow() // can stage more indirect addresses
		}
	}
	for _, s := range e.writes {
		if !s.issuedAll() {
			if (s.cur != nil || s.agu.pending() > 0) && e.ports.Out[s.srcPort].Len() > 0 {
				var addr uint64
				if s.cur != nil {
					addr = s.cur.Peek()
				} else {
					addr = s.agu.peekAddr()
				}
				at := e.nextLineAccept(now, addr)
				if at <= now {
					return sim.ReadyNow()
				}
				h = h.Earliest(sim.WakeAt(at))
			}
			if s.idxRemaining > 0 && s.agu.pending() < aguStageCap && e.ports.In[s.idxPort].Len() >= s.idxElem {
				return sim.ReadyNow()
			}
			continue
		}
		switch {
		case s.deferredReady != 0:
			return sim.ReadyNow() // unresolved grant: never skip over it
		case s.lastReady > now:
			h = h.Earliest(sim.WakeAt(s.lastReady))
		default:
			return sim.ReadyNow() // retires next tick
		}
	}
	return h
}

// DebugStreams renders the read-stream table state (debug aid).
func (e *MSE) DebugStreams(now uint64) string {
	s := ""
	for _, r := range e.reads {
		head := "-"
		if len(r.pending) > 0 {
			head = fmt.Sprintf("%d@+%d", len(r.pending[0].data), int64(r.pending[0].ready)-int64(now))
		}
		s += fmt.Sprintf("[id%d %v dst%d pend%d head%s all%v idxRem%d aguPend%d] ",
			r.id, r.kind, r.dstPort, len(r.pending), head, r.issuedAll(), r.idxRemaining, r.agu.pending())
	}
	for _, w := range e.writes {
		s += fmt.Sprintf("[id%d %v src%d all%v idxRem%d] ", w.id, w.kind, w.srcPort, w.issuedAll(), w.idxRemaining)
	}
	return s
}
