package engine

import (
	"bytes"
	"testing"

	"softbrain/internal/isa"
	"softbrain/internal/mem"
	"softbrain/internal/port"
	"softbrain/internal/scratch"
)

// rig is a small test bench: a memory system, scratchpad, ports and all
// three engines.
type rig struct {
	sys     *mem.System
	pad     *scratch.Pad
	ports   *Ports
	padBuf  *PadWriteBuf
	mse     *MSE
	sse     *SSE
	rse     *RSE
	configs []uint64
	now     uint64
}

func mustPort(t *testing.T, name string, width, depth int) *port.Queue {
	t.Helper()
	q, err := port.New(name, width, depth)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func newRig(t *testing.T) *rig {
	t.Helper()
	cfg := mem.DefaultSysConfig()
	sys, err := mem.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var in, out []*port.Queue
	for i := 0; i < 4; i++ {
		in = append(in, mustPort(t, "in", 8, 64))
		out = append(out, mustPort(t, "out", 8, 64))
	}
	r := &rig{
		sys:    sys,
		pad:    scratch.New(4096),
		ports:  NewPorts(in, out),
		padBuf: NewPadWriteBuf(8),
	}
	r.mse = NewMSE(sys, r.ports, r.padBuf, 8, func(addr uint64) { r.configs = append(r.configs, addr) })
	r.sse = NewSSE(r.pad, r.ports, r.padBuf, 8)
	r.rse = NewRSE(r.ports, 8)
	return r
}

// run ticks all engines until cond holds or the cycle limit hits.
func (r *rig) run(t *testing.T, limit int, cond func() bool) {
	t.Helper()
	for i := 0; i < limit; i++ {
		if cond() {
			return
		}
		if err := r.mse.Tick(r.now); err != nil {
			t.Fatalf("MSE: %v", err)
		}
		if err := r.sse.Tick(r.now); err != nil {
			t.Fatalf("SSE: %v", err)
		}
		if err := r.rse.Tick(r.now); err != nil {
			t.Fatalf("RSE: %v", err)
		}
		r.now++
	}
	if !cond() {
		t.Fatalf("condition not reached in %d cycles", limit)
	}
}

func drain(done ...[]int) int {
	n := 0
	for _, d := range done {
		n += len(d)
	}
	return n
}

func TestMemPortLinear(t *testing.T) {
	r := newRig(t)
	want := make([]byte, 200)
	for i := range want {
		want[i] = byte(i * 7)
	}
	r.sys.Mem.Write(0x1000, want)
	if err := r.mse.StartRead(1, isa.MemPort{Src: isa.Linear(0x1000, 200), Dst: 0}); err != nil {
		t.Fatal(err)
	}
	var got []byte
	r.run(t, 2000, func() bool {
		if n := r.ports.In[0].Len(); n > 0 {
			got = append(got, r.ports.In[0].Pop(n)...)
		}
		return len(got) == len(want) && r.mse.Active() == 0
	})
	if !bytes.Equal(got, want) {
		t.Error("delivered data mismatch")
	}
	if drain(r.mse.Done()) != 1 {
		t.Error("completion not reported")
	}
}

func TestMemPortStrided(t *testing.T) {
	r := newRig(t)
	// Memory holds row-major 8x16; stream reads column 0 (8 bytes per
	// row start, stride 16, 8 rows).
	backing := make([]byte, 128)
	for i := range backing {
		backing[i] = byte(i)
	}
	r.sys.Mem.Write(0, backing)
	pat := isa.Strided2D(0, 8, 16, 8)
	if err := r.mse.StartRead(1, isa.MemPort{Src: pat, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	var got []byte
	r.run(t, 2000, func() bool {
		if n := r.ports.In[1].Len(); n > 0 {
			got = append(got, r.ports.In[1].Pop(n)...)
		}
		return r.mse.Active() == 0 && len(got) == 64
	})
	var want []byte
	pat.EachByte(func(a uint64) { want = append(want, backing[a]) })
	if !bytes.Equal(got, want) {
		t.Errorf("strided read mismatch:\n got %v\nwant %v", got, want)
	}
}

func TestMemScratchThenScratchPort(t *testing.T) {
	r := newRig(t)
	src := make([]byte, 96)
	for i := range src {
		src[i] = byte(200 - i)
	}
	r.sys.Mem.Write(0x2000, src)
	if err := r.mse.StartRead(1, isa.MemScratch{Src: isa.Linear(0x2000, 96), ScratchAddr: 16}); err != nil {
		t.Fatal(err)
	}
	r.run(t, 2000, func() bool { return r.mse.Active() == 0 && r.padBuf.Len() == 0 })
	padGot := make([]byte, 96)
	if err := r.pad.Read(16, padGot); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(padGot, src) {
		t.Fatal("scratchpad contents mismatch after SD_Mem_Scratch")
	}

	if err := r.sse.StartRead(2, isa.ScratchPort{Src: isa.Linear(16, 96), Dst: 2}); err != nil {
		t.Fatal(err)
	}
	var got []byte
	r.run(t, 2000, func() bool {
		if n := r.ports.In[2].Len(); n > 0 {
			got = append(got, r.ports.In[2].Pop(n)...)
		}
		return r.sse.Active() == 0 && len(got) == 96
	})
	if !bytes.Equal(got, src) {
		t.Error("scratch->port data mismatch")
	}
}

func TestIndirectGather(t *testing.T) {
	r := newRig(t)
	// Table of 64-bit values at base; indices pick a permutation.
	base := uint64(0x4000)
	for i := uint64(0); i < 16; i++ {
		r.sys.Mem.WriteU64(base+8*i, 1000+i)
	}
	indices := []uint64{5, 3, 3, 15, 0, 7}
	// Feed indices directly into indirect port 3 as 32-bit elements.
	for _, ix := range indices {
		r.ports.In[3].Push([]byte{byte(ix), byte(ix >> 8), byte(ix >> 16), byte(ix >> 24)})
	}
	err := r.mse.StartRead(1, isa.IndPortPort{
		Idx: 3, IdxElem: isa.Elem32, Offset: base, Scale: 8,
		DataElem: isa.Elem64, Count: uint64(len(indices)), Dst: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.run(t, 2000, func() bool { return r.mse.Active() == 0 })
	for _, ix := range indices {
		words := r.ports.In[0].PopWords(1)
		if words[0] != 1000+ix {
			t.Errorf("gather got %d, want %d", words[0], 1000+ix)
		}
	}
}

func TestPortMemWrite(t *testing.T) {
	r := newRig(t)
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i + 1)
	}
	r.ports.Out[0].Push(data)
	// Scatter into two 32-byte rows 64 bytes apart.
	pat := isa.Strided2D(0x3000, 32, 64, 2)
	if err := r.mse.StartWrite(1, isa.PortMem{Src: 0, Dst: pat}); err != nil {
		t.Fatal(err)
	}
	r.run(t, 2000, func() bool { return r.mse.Active() == 0 })
	got := make([]byte, 32)
	r.sys.Mem.Read(0x3000, got)
	if !bytes.Equal(got, data[:32]) {
		t.Error("first row mismatch")
	}
	r.sys.Mem.Read(0x3040, got)
	if !bytes.Equal(got, data[32:]) {
		t.Error("second row mismatch")
	}
}

func TestIndirectScatter(t *testing.T) {
	r := newRig(t)
	indices := []uint64{9, 2, 4}
	for _, ix := range indices {
		r.ports.In[3].Push([]byte{byte(ix), 0})
	}
	vals := []uint64{111, 222, 333}
	for _, v := range vals {
		r.ports.Out[1].PushWords([]uint64{v})
	}
	err := r.mse.StartWrite(1, isa.IndPortMem{
		Idx: 3, IdxElem: isa.Elem16, Offset: 0x5000, Scale: 8,
		DataElem: isa.Elem64, Count: 3, Src: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.run(t, 2000, func() bool { return r.mse.Active() == 0 })
	for i, ix := range indices {
		if got := r.sys.Mem.ReadU64(0x5000 + 8*ix); got != vals[i] {
			t.Errorf("scatter [%d] = %d, want %d", ix, got, vals[i])
		}
	}
}

func TestConfigStreamCallback(t *testing.T) {
	r := newRig(t)
	if err := r.mse.StartRead(7, isa.Config{Addr: 0x7000, Size: 200}); err != nil {
		t.Fatal(err)
	}
	r.run(t, 2000, func() bool { return r.mse.Active() == 0 })
	if len(r.configs) != 1 || r.configs[0] != 0x7000 {
		t.Errorf("config callback got %v", r.configs)
	}
}

func TestRSEConstCleanRecurrence(t *testing.T) {
	r := newRig(t)
	// Const: 5 16-bit elements of value 0xBEEF into port 0.
	if err := r.rse.Start(1, isa.ConstPort{Value: 0xBEEF, Elem: isa.Elem16, Count: 5, Dst: 0}); err != nil {
		t.Fatal(err)
	}
	r.run(t, 100, func() bool { return r.rse.Active() == 0 })
	raw := r.ports.In[0].Pop(10)
	for i := 0; i < 5; i++ {
		if raw[2*i] != 0xEF || raw[2*i+1] != 0xBE {
			t.Fatalf("const element %d wrong: % x", i, raw)
		}
	}

	// Recurrence: move 3 words out port 2 -> in port 1; then clean 1 word.
	r.ports.Out[2].PushWords([]uint64{10, 20, 30, 99})
	if err := r.rse.Start(2, isa.PortPort{Src: 2, Elem: isa.Elem64, Count: 3, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	r.run(t, 100, func() bool { return r.rse.Active() == 0 })
	got := r.ports.In[1].PopWords(3)
	if got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Errorf("recurrence moved %v", got)
	}
	if err := r.rse.Start(3, isa.CleanPort{Src: 2, Elem: isa.Elem64, Count: 1}); err != nil {
		t.Fatal(err)
	}
	r.run(t, 100, func() bool { return r.rse.Active() == 0 })
	if r.ports.Out[2].Len() != 0 {
		t.Error("clean did not discard")
	}
	if drain(r.rse.Done()) != 3 {
		t.Error("RSE completions missing")
	}
}

func TestPortScratchWrite(t *testing.T) {
	r := newRig(t)
	r.ports.Out[0].PushWords([]uint64{0xAABB, 0xCCDD})
	if err := r.sse.StartWrite(1, isa.PortScratch{Src: 0, Elem: isa.Elem64, Count: 2, ScratchAddr: 100}); err != nil {
		t.Fatal(err)
	}
	r.run(t, 100, func() bool { return r.sse.Active() == 0 })
	v, err := r.pad.ReadU64(100)
	if err != nil || v != 0xAABB {
		t.Errorf("pad word 0 = %#x, %v", v, err)
	}
	v, _ = r.pad.ReadU64(108)
	if v != 0xCCDD {
		t.Errorf("pad word 1 = %#x", v)
	}
}

// Backpressure: a long stream into a tiny port must not overflow or
// reorder; popping slowly drains it completely.
func TestBackpressureNeverOverflows(t *testing.T) {
	r := newRig(t)
	small := mustPort(t, "small", 1, 2) // 16 bytes
	r.ports.In[0] = small
	total := 400
	src := make([]byte, total)
	for i := range src {
		src[i] = byte(i)
	}
	r.sys.Mem.Write(0, src)
	if err := r.mse.StartRead(1, isa.MemPort{Src: isa.Linear(0, uint64(total)), Dst: 0}); err != nil {
		t.Fatal(err)
	}
	var got []byte
	r.run(t, 20000, func() bool {
		// Pop at most 3 bytes per cycle: slower than the stream.
		n := small.Len()
		if n > 3 {
			n = 3
		}
		if n > 0 {
			got = append(got, small.Pop(n)...)
		}
		return len(got) == total && r.mse.Active() == 0
	})
	if !bytes.Equal(got, src) {
		t.Error("backpressured stream reordered or corrupted data")
	}
}

// The balance unit must keep a backpressured stream from starving its
// sibling: port 0 is never drained, port 1 is; the port-1 stream must
// finish long before the port-0 stream could.
func TestBalanceUnitPrioritizesStarvedPort(t *testing.T) {
	r := newRig(t)
	blocked := mustPort(t, "blocked", 1, 2)
	r.ports.In[0] = blocked
	r.sys.Mem.Write(0, make([]byte, 4096))
	if err := r.mse.StartRead(1, isa.MemPort{Src: isa.Linear(0, 4096), Dst: 0}); err != nil {
		t.Fatal(err)
	}
	if err := r.mse.StartRead(2, isa.MemPort{Src: isa.Linear(0, 512), Dst: 1}); err != nil {
		t.Fatal(err)
	}
	finished := false
	r.run(t, 5000, func() bool {
		if n := r.ports.In[1].Len(); n > 0 {
			r.ports.In[1].Pop(n)
		}
		for _, id := range r.mse.Done() {
			if id == 2 {
				finished = true
			}
		}
		return finished
	})
}

func TestEngineTableLimits(t *testing.T) {
	r := newRig(t)
	for i := 0; i < 8; i++ {
		if err := r.rse.Start(i, isa.ConstPort{Value: 1, Elem: isa.Elem64, Count: 1, Dst: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if r.rse.CanAccept() {
		t.Error("RSE table should be full")
	}
	if err := r.rse.Start(99, isa.ConstPort{Value: 1, Elem: isa.Elem64, Count: 1, Dst: 0}); err == nil {
		t.Error("RSE overfill accepted")
	}
	if err := r.mse.StartRead(1, isa.PortMem{}); err == nil {
		t.Error("MSE read accepted a write command")
	}
	if err := r.mse.StartWrite(1, isa.MemPort{}); err == nil {
		t.Error("MSE write accepted a read command")
	}
	if err := r.rse.Start(1, isa.MemPort{}); err == nil {
		t.Error("RSE accepted a memory command")
	}
}
