package engine

import (
	"fmt"

	"softbrain/internal/faults"
	"softbrain/internal/isa"
	"softbrain/internal/obs"
	"softbrain/internal/scratch"
	"softbrain/internal/sim"
)

// ReadLatency is the scratchpad SRAM read latency in cycles.
const ReadLatency = 2

// SSE is the scratchpad stream engine: it walks SD_Scratch_Port reads
// and SD_Port_Scratch writes, and drains the MSE-to-scratchpad write
// buffer. The scratchpad has one read and one write port, each 64 bytes
// wide per cycle.
type SSE struct {
	pad    *scratch.Pad
	ports  *Ports
	padBuf *PadWriteBuf
	table  int

	reads  []*sseRead
	writes []*sseWrite
	done   []int
	doneFb []int // spare done buffer (Done double-buffers)
	rr     int
	joined int // reads appended since the last Tick (see OnSkip)

	// Hot-path scratch: line-offset buffer for the AGU and a freelist of
	// delivered response buffers (Queue.Push copies, so they recycle).
	offScratch [LineBytes]uint8
	freeData   [][]byte

	// Faults, when non-nil, perturbs bus bandwidth and read line
	// contents (see internal/faults).
	Faults *faults.Injector

	// Retired, when non-nil, reports each stream's total data movement
	// as it leaves the table (see internal/obs).
	Retired func(id int, kind isa.Kind, bytes uint64)

	// Wake signals (see sim.Signal and MSE's counterparts).
	Kicks     sim.Signal
	Lifecycle sim.Signal

	// Statistics.
	ReadGrants  uint64
	WriteGrants uint64
	BytesOut    uint64
	BytesIn     uint64
	BusyCycles  uint64
}

// NewSSE builds a scratchpad stream engine.
func NewSSE(pad *scratch.Pad, ports *Ports, padBuf *PadWriteBuf, table int) *SSE {
	return &SSE{pad: pad, ports: ports, padBuf: padBuf, table: table}
}

type sseRead struct {
	id      int
	cur     *isa.AffineCursor
	dstPort int
	pending []readPending
	bytes   uint64 // data moved so far, for the bandwidth report
}

type sseWrite struct {
	id        int
	srcPort   int
	addr      uint64
	remaining uint64
	bytes     uint64 // data moved so far, for the bandwidth report
}

// CanAcceptRead reports whether a read-stream table entry is free.
func (e *SSE) CanAcceptRead() bool { return len(e.reads) < e.table }

// CanAcceptWrite reports whether a write-stream table entry is free.
func (e *SSE) CanAcceptWrite() bool { return len(e.writes) < e.table }

// StartRead installs an SD_Scratch_Port stream.
func (e *SSE) StartRead(id int, c isa.ScratchPort) error {
	if !e.CanAcceptRead() {
		return fmt.Errorf("engine: SSE read table full")
	}
	e.reads = append(e.reads, &sseRead{id: id, cur: isa.NewAffineCursor(c.Src), dstPort: int(c.Dst)})
	e.joined++
	e.Kicks.Raise()
	return nil
}

// StartWrite installs an SD_Port_Scratch stream.
func (e *SSE) StartWrite(id int, c isa.PortScratch) error {
	if !e.CanAcceptWrite() {
		return fmt.Errorf("engine: SSE write table full")
	}
	e.writes = append(e.writes, &sseWrite{
		id: id, srcPort: int(c.Src), addr: c.ScratchAddr,
		remaining: c.Count * uint64(c.Elem),
	})
	e.Kicks.Raise()
	return nil
}

// Done drains completed stream IDs. The returned slice is valid until
// the next call (double-buffered).
func (e *SSE) Done() []int {
	d := e.done
	e.done, e.doneFb = e.doneFb[:0], d
	return d
}

// Active is the number of live streams.
func (e *SSE) Active() int { return len(e.reads) + len(e.writes) }

// ActiveScratchReads counts live scratchpad read streams, for
// SD_Barrier_Scratch_Rd.
func (e *SSE) ActiveScratchReads() int { return len(e.reads) }

// ActiveScratchWrites counts live scratchpad write streams plus buffered
// memory-to-scratch writes, for SD_Barrier_Scratch_Wr.
func (e *SSE) ActiveScratchWrites() int {
	n := len(e.writes)
	if e.padBuf.Len() > 0 {
		n++
	}
	return n
}

// Tick advances the engine one cycle: deliver ready read data, grant the
// read port to one stream, grant the write port to the MSE buffer or a
// port-to-scratch stream.
func (e *SSE) Tick(now uint64) error {
	e.joined = 0
	busy := false
	if e.deliver(now) {
		busy = true
	}
	if err := e.issueRead(now); err != nil {
		return err
	}
	if err := e.issueWrite(); err != nil {
		return err
	}
	e.retire()
	if busy {
		e.BusyCycles++
	}
	return nil
}

func (e *SSE) deliver(now uint64) bool {
	budget := LineBytes
	if e.Faults != nil {
		budget = e.Faults.BusBudget(faults.EngSSE, budget)
	}
	moved := false
	n := len(e.reads)
	for i := 0; i < n && budget > 0; i++ {
		s := e.reads[(e.rr+i)%n]
		for len(s.pending) > 0 && budget > 0 {
			head := s.pending[0]
			if head.ready > now || len(head.data) > budget {
				break
			}
			e.ports.Deliver(s.dstPort, head.data)
			e.freeData = append(e.freeData, head.data[:0]) // Deliver copied
			budget -= len(head.data)
			e.BytesOut += uint64(len(head.data))
			s.bytes += uint64(len(head.data))
			k := copy(s.pending, s.pending[1:]) // pop-front in place: keeps capacity
			s.pending = s.pending[:k]
			moved = true
		}
	}
	if n > 0 {
		e.rr = (e.rr + 1) % n
	}
	return moved
}

// issueRead grants the single SRAM read port to the stream with the
// least outstanding data toward its destination.
func (e *SSE) issueRead(now uint64) error {
	var best *sseRead
	bestScore := 0
	for _, s := range e.reads {
		if s.cur.Done() {
			continue
		}
		if e.ports.InAvail(s.dstPort) <= 0 {
			continue
		}
		score := e.ports.Reserved(s.dstPort)
		if best == nil || score < bestScore {
			best, bestScore = s, score
		}
	}
	if best == nil {
		return nil
	}
	maxBytes := LineBytes
	if avail := e.ports.InAvail(best.dstPort); avail < maxBytes {
		maxBytes = avail
	}
	req, ok := nextAffineLine(best.cur, maxBytes, e.offScratch[:])
	if !ok {
		return nil
	}
	var line [LineBytes]byte
	if err := e.pad.Read(req.Line, line[:]); err != nil {
		// Reads at the very end of the pad may cover a partial row.
		if err2 := e.padReadTail(req, line[:]); err2 != nil {
			return err2
		}
	}
	var data []byte
	if n := len(e.freeData); n > 0 {
		data, e.freeData = e.freeData[n-1][:0], e.freeData[:n-1]
	}
	if req.Contig {
		o := int(req.Offsets[0])
		data = append(data, line[o:o+len(req.Offsets)]...)
	} else {
		for _, off := range req.Offsets {
			data = append(data, line[off])
		}
	}
	if e.Faults != nil {
		e.Faults.CorruptLine(data)
	}
	e.ports.Reserve(best.dstPort, len(data))
	best.pending = append(best.pending, readPending{ready: now + ReadLatency, data: data})
	e.ReadGrants++
	return nil
}

// padReadTail re-reads a row that extends past the end of the pad by
// fetching only the bytes the request actually touches.
func (e *SSE) padReadTail(req LineReq, line []byte) error {
	for _, off := range req.Offsets {
		var b [1]byte
		if err := e.pad.Read(req.Line+uint64(off), b[:]); err != nil {
			return err
		}
		line[off] = b[0]
	}
	return nil
}

// issueWrite grants the single SRAM write port: the MSE buffer and the
// port-to-scratch streams alternate fairly via round-robin preference.
func (e *SSE) issueWrite() error {
	if w, ok := e.padBuf.Head(); ok {
		if err := e.pad.Write(w.Addr, w.Data); err != nil {
			return err
		}
		e.padBuf.PopHead()
		e.WriteGrants++
		e.BytesIn += uint64(len(w.Data))
		return nil
	}
	var best *sseWrite
	bestAvail := 0
	for _, s := range e.writes {
		if s.remaining == 0 {
			continue
		}
		avail := e.ports.Out[s.srcPort].Len()
		if avail == 0 {
			continue
		}
		if best == nil || avail > bestAvail {
			best, bestAvail = s, avail
		}
	}
	if best == nil {
		return nil
	}
	n := LineBytes
	if bestAvail < n {
		n = bestAvail
	}
	if uint64(n) > best.remaining {
		n = int(best.remaining)
	}
	data := e.ports.Out[best.srcPort].Pop(n)
	if err := e.pad.Write(best.addr, data); err != nil {
		return err
	}
	best.addr += uint64(n)
	best.remaining -= uint64(n)
	best.bytes += uint64(n)
	e.WriteGrants++
	e.BytesIn += uint64(n)
	return nil
}

// Streams reports every active stream with its blocking state at cycle
// now, for the core's structured hang diagnosis.
func (e *SSE) Streams(now uint64) []StreamInfo {
	var out []StreamInfo
	for _, s := range e.reads {
		si := StreamInfo{ID: s.id, Kind: isa.KindScratchPort, Eng: "SSE", DstIn: s.dstPort, SrcOut: -1, IdxIn: -1}
		switch {
		case len(s.pending) > 0 && s.pending[0].ready > now:
			si.Wait = WaitTimed
		case len(s.pending) > 0:
			si.Wait = WaitNone
		case !s.cur.Done() && e.ports.InAvail(s.dstPort) <= 0:
			si.Wait = WaitInSpace
		default:
			si.Wait = WaitNone
		}
		out = append(out, si)
	}
	for _, s := range e.writes {
		si := StreamInfo{ID: s.id, Kind: isa.KindPortScratch, Eng: "SSE", DstIn: -1, SrcOut: s.srcPort, IdxIn: -1}
		if s.remaining > 0 && e.ports.Out[s.srcPort].Len() == 0 {
			si.Wait = WaitOutData
		}
		out = append(out, si)
	}
	return out
}

// StallCause classifies the engine's state on a cycle it did no work
// (see MSE.StallCause for the contract: purely state-based, unit-local,
// skip-stable). A pending SRAM read inside its fixed latency counts as
// Busy — the SRAM is working and needs no external input.
func (e *SSE) StallCause(now uint64) obs.Cause {
	worst := obs.CauseIdle
	for _, s := range e.reads {
		c := obs.CauseIdle
		switch {
		case len(s.pending) > 0 && s.pending[0].ready > now:
			c = obs.Busy // inside the SRAM read latency
		case !s.cur.Done() && e.ports.InAvail(s.dstPort) <= 0:
			c = obs.PortFull
		}
		worst = obs.Worse(worst, c)
	}
	for _, s := range e.writes {
		if s.remaining > 0 && e.ports.Out[s.srcPort].Len() == 0 {
			worst = obs.Worse(worst, obs.PortEmpty)
		}
	}
	return worst
}

// OnSkip replays the per-tick delivery round-robin rotation over an
// elided idle span, excluding streams that joined at the span's final
// cycle (see MSE.OnSkip).
func (e *SSE) OnSkip(from, to uint64) {
	if n := len(e.reads) - e.joined; n > 0 {
		e.rr = (e.rr + int((to-from)%uint64(n))) % n
	}
}

// WatchSig sums the external signals the engine's wake hint depends on
// (see sim.Watcher and MSE.WatchSig).
func (e *SSE) WatchSig() uint64 {
	sig := e.Kicks.Value() + e.padBuf.FillVer()
	for _, s := range e.reads {
		q := e.ports.In[s.dstPort]
		sig += q.TotalIn() + q.TotalOut()
	}
	for _, s := range e.writes {
		q := e.ports.Out[s.srcPort]
		sig += q.TotalIn() + q.TotalOut()
	}
	return sig
}

// NextWake implements the sim.Component wake-hint contract (see
// docs/SIMKERNEL.md): Ready while the pad write buffer has entries to
// drain or any stream can move data, the earliest SRAM response time
// when every stream waits on one, Idle otherwise.
func (e *SSE) NextWake(now uint64) sim.Hint {
	if e.padBuf.Len() > 0 {
		return sim.ReadyNow() // the write port drains the buffer first
	}
	h := sim.Idle()
	for _, s := range e.reads {
		if len(s.pending) > 0 {
			r := s.pending[0].ready
			if r <= now {
				return sim.ReadyNow()
			}
			h = h.Earliest(sim.WakeAt(r))
		}
		if !s.cur.Done() && e.ports.InAvail(s.dstPort) > 0 {
			return sim.ReadyNow() // can issue the next SRAM read
		}
	}
	for _, s := range e.writes {
		if s.remaining > 0 && e.ports.Out[s.srcPort].Len() > 0 {
			return sim.ReadyNow()
		}
	}
	return h
}

// PendingTimed reports whether any read response is still inside the
// SRAM read latency at cycle now.
func (e *SSE) PendingTimed(now uint64) bool {
	for _, s := range e.reads {
		for _, p := range s.pending {
			if p.ready > now {
				return true
			}
		}
	}
	return false
}

func (e *SSE) retire() {
	reads := e.reads[:0]
	for _, s := range e.reads {
		if s.cur.Done() && len(s.pending) == 0 {
			if e.Retired != nil {
				e.Retired(s.id, isa.KindScratchPort, s.bytes)
			}
			e.done = append(e.done, s.id)
			e.Lifecycle.Raise()
		} else {
			reads = append(reads, s)
		}
	}
	e.reads = reads
	writes := e.writes[:0]
	for _, s := range e.writes {
		if s.remaining == 0 {
			if e.Retired != nil {
				e.Retired(s.id, isa.KindPortScratch, s.bytes)
			}
			e.done = append(e.done, s.id)
			e.Lifecycle.Raise()
		} else {
			writes = append(writes, s)
		}
	}
	e.writes = writes
}
