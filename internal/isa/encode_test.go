package isa

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func elemSizes() []ElemSize { return []ElemSize{Elem8, Elem16, Elem32, Elem64} }

func randElem(r *rand.Rand) ElemSize { return elemSizes()[r.Intn(4)] }

func encodableAffine(r *rand.Rand) Affine {
	return Affine{
		Start:      r.Uint64(),
		AccessSize: uint64(r.Intn(maxAccessSize + 1)),
		Stride:     uint64(r.Intn(maxStride + 1)),
		Strides:    uint64(r.Intn(maxStrides + 1)),
	}
}

// randCommand builds a random valid command of each kind in rotation.
func randCommand(r *rand.Rand) Command {
	switch Kind(1 + r.Intn(int(numKinds)-1)) {
	case KindConfig:
		return Config{Addr: r.Uint64(), Size: uint64(r.Intn(maxImm24 + 1))}
	case KindMemScratch:
		return MemScratch{Src: encodableAffine(r), ScratchAddr: uint64(r.Intn(maxImm24 + 1))}
	case KindScratchPort:
		return ScratchPort{Src: encodableAffine(r), Dst: InPortID(r.Intn(256))}
	case KindMemPort:
		return MemPort{Src: encodableAffine(r), Dst: InPortID(r.Intn(256))}
	case KindConstPort:
		return ConstPort{Value: r.Uint64(), Elem: randElem(r), Count: uint64(r.Intn(maxImm24 + 1)), Dst: InPortID(r.Intn(256))}
	case KindCleanPort:
		return CleanPort{Src: OutPortID(r.Intn(256)), Elem: randElem(r), Count: uint64(r.Intn(maxImm24 + 1))}
	case KindPortPort:
		return PortPort{Src: OutPortID(r.Intn(256)), Elem: randElem(r), Count: r.Uint64(), Dst: InPortID(r.Intn(256))}
	case KindPortScratch:
		return PortScratch{Src: OutPortID(r.Intn(256)), Elem: randElem(r), Count: uint64(r.Uint32()), ScratchAddr: uint64(r.Uint32())}
	case KindPortMem:
		return PortMem{Src: OutPortID(r.Intn(256)), Dst: encodableAffine(r)}
	case KindIndPortPort:
		return IndPortPort{
			Idx: InPortID(r.Intn(256)), IdxElem: randElem(r), Offset: r.Uint64(),
			Scale: uint8(r.Intn(256)), DataElem: randElem(r), Count: r.Uint64(), Dst: InPortID(r.Intn(256)),
		}
	case KindIndPortMem:
		return IndPortMem{
			Idx: InPortID(r.Intn(256)), IdxElem: randElem(r), Offset: r.Uint64(),
			Scale: uint8(r.Intn(256)), DataElem: randElem(r), Count: r.Uint64(), Src: OutPortID(r.Intn(256)),
		}
	case KindBarrierScratchRd:
		return BarrierScratchRd{}
	case KindBarrierScratchWr:
		return BarrierScratchWr{}
	default:
		return BarrierAll{}
	}
}

// Property: encode/decode round-trips every valid command exactly, and the
// encoded length equals Command.Words().
func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randCommand(r)
		words, err := EncodeCommand(c)
		if err != nil {
			t.Logf("encode %v: %v", c, err)
			return false
		}
		if len(words) != c.Words() {
			t.Logf("%v: encoded %d words, Words() = %d", c, len(words), c.Words())
			return false
		}
		got, n, err := DecodeCommand(words)
		if err != nil {
			t.Logf("decode %v: %v", c, err)
			return false
		}
		if n != len(words) {
			t.Logf("%v: decode consumed %d of %d words", c, n, len(words))
			return false
		}
		if !reflect.DeepEqual(got, c) {
			t.Logf("round trip: got %#v, want %#v", got, c)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEncodeProgramRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	var cmds []Command
	for i := 0; i < 100; i++ {
		cmds = append(cmds, randCommand(r))
	}
	words, err := EncodeProgram(cmds)
	if err != nil {
		t.Fatalf("EncodeProgram: %v", err)
	}
	got, err := DecodeProgram(words)
	if err != nil {
		t.Fatalf("DecodeProgram: %v", err)
	}
	if !reflect.DeepEqual(got, cmds) {
		t.Error("program round trip mismatch")
	}
}

func TestEncodeRejectsOversizedFields(t *testing.T) {
	tests := []struct {
		name string
		cmd  Command
	}{
		{"huge access size", MemPort{Src: Affine{AccessSize: maxAccessSize + 1, Stride: 1, Strides: 1}}},
		{"huge stride", MemPort{Src: Affine{AccessSize: 1, Stride: maxStride + 1, Strides: 1}}},
		{"huge strides", MemPort{Src: Affine{AccessSize: 1, Stride: 1, Strides: maxStrides + 1}}},
		{"huge const count", ConstPort{Elem: Elem64, Count: maxImm24 + 1}},
		{"huge config size", Config{Size: maxImm24 + 1}},
		{"bad elem size", ConstPort{Elem: 3, Count: 1}},
		{"huge scratch addr", MemScratch{Src: Linear(0, 8), ScratchAddr: maxImm24 + 1}},
	}
	for _, tt := range tests {
		if _, err := EncodeCommand(tt.cmd); !errors.Is(err, ErrUnencodable) {
			t.Errorf("%s: err = %v, want ErrUnencodable", tt.name, err)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeCommand(nil); err == nil {
		t.Error("decode of empty stream should fail")
	}
	if _, _, err := DecodeCommand([]uint64{uint64(KindInvalid)}); err == nil {
		t.Error("decode of invalid opcode should fail")
	}
	if _, _, err := DecodeCommand([]uint64{uint64(numKinds) + 7}); err == nil {
		t.Error("decode of out-of-range opcode should fail")
	}
	// A 3-word command truncated to 1 word.
	words, err := EncodeCommand(MemPort{Src: Linear(0, 64), Dst: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeCommand(words[:1]); err == nil {
		t.Error("decode of truncated command should fail")
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindConfig; k < numKinds; k++ {
		if s := k.String(); s == "" || s == "SD_Invalid" {
			t.Errorf("Kind(%d) has no name", k)
		}
	}
	if Kind(200).String() != "Kind(200)" {
		t.Error("out-of-range kind should format numerically")
	}
}

func TestCommandStringsAndWords(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	seen := map[Kind]bool{}
	for i := 0; i < 200; i++ {
		c := randCommand(r)
		if c.String() == "" {
			t.Errorf("%v: empty String()", c.Kind())
		}
		if w := c.Words(); w < 1 || w > 3 {
			t.Errorf("%v: Words() = %d, want 1..3", c.Kind(), w)
		}
		seen[c.Kind()] = true
	}
	if len(seen) < 10 {
		t.Errorf("random commands covered only %d kinds", len(seen))
	}
}

func TestIsBarrier(t *testing.T) {
	if !IsBarrier(BarrierAll{}) || !IsBarrier(BarrierScratchRd{}) || !IsBarrier(BarrierScratchWr{}) {
		t.Error("barrier commands should report IsBarrier")
	}
	if IsBarrier(Config{}) || IsBarrier(MemPort{}) {
		t.Error("non-barrier commands should not report IsBarrier")
	}
}

func TestElemSizeValid(t *testing.T) {
	for _, e := range elemSizes() {
		if !e.Valid() {
			t.Errorf("ElemSize %d should be valid", e)
		}
	}
	for _, e := range []ElemSize{0, 3, 5, 16} {
		if e.Valid() {
			t.Errorf("ElemSize %d should be invalid", e)
		}
	}
}

// Property: arbitrary word streams never panic the decoder — they
// decode or error.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		words := make([]uint64, r.Intn(12))
		for i := range words {
			if r.Intn(2) == 0 {
				// Bias toward plausible opcodes to reach deep paths.
				words[i] = uint64(r.Intn(int(numKinds)+3)) | r.Uint64()<<8
			} else {
				words[i] = r.Uint64()
			}
		}
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("decoder panicked on %#x: %v", words, p)
			}
		}()
		cmds, err := DecodeProgram(words)
		// On success, everything decoded must re-encode.
		if err == nil {
			for _, c := range cmds {
				if _, eerr := EncodeCommand(c); eerr != nil {
					// Decoded commands may carry fields wider than the
					// encodable immediates only if decode was lossy;
					// the header fields are masked, so this must hold.
					t.Logf("decoded %v does not re-encode: %v", c, eerr)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
