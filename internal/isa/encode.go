package isa

import (
	"errors"
	"fmt"
	"math/bits"
)

// The binary encoding packs each command into 1-3 little-endian 64-bit
// instruction words, matching the paper's "1-3 instructions in a
// fixed-width RISC ISA". Word 0 is a header:
//
//	[7:0]   opcode (Kind)
//	[11:8]  element-size code (log2 bytes)
//	[15:12] data-element-size code (indirect commands)
//	[23:16] port A
//	[31:24] port B
//	[39:32] scale (indirect commands)
//	[63:40] imm24 (small immediate: count, config size or scratch address)
//
// Subsequent words carry 64-bit operands (addresses, values, counts) and,
// for affine commands, a packed pattern immediate:
//
//	[19:0]  access size   (< 2^20)
//	[41:20] stride        (< 2^22)
//	[63:42] number of strides (< 2^22)
//
// These field widths are architectural limits; EncodeCommand reports an
// error for streams that exceed them (software must split such streams).

const (
	maxImm24      = 1<<24 - 1
	maxAccessSize = 1<<20 - 1
	maxStride     = 1<<22 - 1
	maxStrides    = 1<<22 - 1
)

// ErrUnencodable reports a command whose fields exceed the architectural
// immediate widths.
var ErrUnencodable = errors.New("isa: command exceeds encodable field width")

func elemCode(e ElemSize) (uint64, error) {
	if !e.Valid() {
		return 0, fmt.Errorf("%w: element size %d", ErrUnencodable, e)
	}
	return uint64(bits.TrailingZeros8(uint8(e))), nil
}

func elemFromCode(c uint64) ElemSize { return ElemSize(1 << (c & 3)) }

func packAffine(a Affine) (uint64, error) {
	if a.AccessSize > maxAccessSize || a.Stride > maxStride || a.Strides > maxStrides {
		return 0, fmt.Errorf("%w: %v", ErrUnencodable, a)
	}
	return a.AccessSize | a.Stride<<20 | a.Strides<<42, nil
}

func unpackAffine(start, w uint64) Affine {
	return Affine{
		Start:      start,
		AccessSize: w & maxAccessSize,
		Stride:     w >> 20 & maxStride,
		Strides:    w >> 42 & maxStrides,
	}
}

type header struct {
	kind     Kind
	elem     ElemSize
	dataElem ElemSize
	portA    uint8
	portB    uint8
	scale    uint8
	imm24    uint64
}

func (h header) pack() (uint64, error) {
	ec, err := elemCode(h.elem)
	if err != nil {
		return 0, err
	}
	dc, err := elemCode(h.dataElem)
	if err != nil {
		return 0, err
	}
	if h.imm24 > maxImm24 {
		return 0, fmt.Errorf("%w: immediate %d", ErrUnencodable, h.imm24)
	}
	return uint64(h.kind) | ec<<8 | dc<<12 |
		uint64(h.portA)<<16 | uint64(h.portB)<<24 |
		uint64(h.scale)<<32 | h.imm24<<40, nil
}

func unpackHeader(w uint64) header {
	return header{
		kind:     Kind(w & 0xff),
		elem:     elemFromCode(w >> 8),
		dataElem: elemFromCode(w >> 12),
		portA:    uint8(w >> 16),
		portB:    uint8(w >> 24),
		scale:    uint8(w >> 32),
		imm24:    w >> 40,
	}
}

// EncodeCommand encodes c into its instruction words.
func EncodeCommand(c Command) ([]uint64, error) {
	h := header{kind: c.Kind(), elem: Elem64, dataElem: Elem64}
	switch c := c.(type) {
	case Config:
		h.imm24 = c.Size
		return seal(h, c.Addr)
	case MemScratch:
		h.imm24 = c.ScratchAddr
		aff, err := packAffine(c.Src)
		if err != nil {
			return nil, err
		}
		return seal(h, c.Src.Start, aff)
	case ScratchPort:
		h.portA = uint8(c.Dst)
		aff, err := packAffine(c.Src)
		if err != nil {
			return nil, err
		}
		return seal(h, c.Src.Start, aff)
	case MemPort:
		h.portA = uint8(c.Dst)
		aff, err := packAffine(c.Src)
		if err != nil {
			return nil, err
		}
		return seal(h, c.Src.Start, aff)
	case ConstPort:
		h.portA = uint8(c.Dst)
		h.elem = c.Elem
		h.imm24 = c.Count
		return seal(h, c.Value)
	case CleanPort:
		h.portA = uint8(c.Src)
		h.elem = c.Elem
		h.imm24 = c.Count
		return seal(h)
	case PortPort:
		h.portA = uint8(c.Src)
		h.portB = uint8(c.Dst)
		h.elem = c.Elem
		return seal(h, c.Count)
	case PortScratch:
		h.portA = uint8(c.Src)
		h.elem = c.Elem
		if c.Count > 1<<32-1 || c.ScratchAddr > 1<<32-1 {
			return nil, fmt.Errorf("%w: %v", ErrUnencodable, c)
		}
		return seal(h, c.Count|c.ScratchAddr<<32)
	case PortMem:
		h.portA = uint8(c.Src)
		aff, err := packAffine(c.Dst)
		if err != nil {
			return nil, err
		}
		return seal(h, c.Dst.Start, aff)
	case IndPortPort:
		h.portA = uint8(c.Idx)
		h.portB = uint8(c.Dst)
		h.elem = c.IdxElem
		h.dataElem = c.DataElem
		h.scale = c.Scale
		return seal(h, c.Offset, c.Count)
	case IndPortMem:
		h.portA = uint8(c.Idx)
		h.portB = uint8(c.Src)
		h.elem = c.IdxElem
		h.dataElem = c.DataElem
		h.scale = c.Scale
		return seal(h, c.Offset, c.Count)
	case BarrierScratchRd, BarrierScratchWr, BarrierAll:
		return seal(h)
	default:
		return nil, fmt.Errorf("isa: unknown command type %T", c)
	}
}

func seal(h header, operands ...uint64) ([]uint64, error) {
	w0, err := h.pack()
	if err != nil {
		return nil, err
	}
	return append([]uint64{w0}, operands...), nil
}

// wordsFor is the instruction-word count per kind, used by DecodeCommand.
var wordsFor = [numKinds]int{
	KindConfig:           2,
	KindMemScratch:       3,
	KindScratchPort:      3,
	KindMemPort:          3,
	KindConstPort:        2,
	KindCleanPort:        1,
	KindPortPort:         2,
	KindPortScratch:      2,
	KindPortMem:          3,
	KindIndPortPort:      3,
	KindIndPortMem:       3,
	KindBarrierScratchRd: 1,
	KindBarrierScratchWr: 1,
	KindBarrierAll:       1,
}

// DecodeCommand decodes the command at the start of words, returning the
// command and the number of instruction words consumed.
func DecodeCommand(words []uint64) (Command, int, error) {
	if len(words) == 0 {
		return nil, 0, errors.New("isa: empty instruction stream")
	}
	h := unpackHeader(words[0])
	if h.kind == KindInvalid || int(h.kind) >= int(numKinds) {
		return nil, 0, fmt.Errorf("isa: invalid opcode %d", h.kind)
	}
	n := wordsFor[h.kind]
	if len(words) < n {
		return nil, 0, fmt.Errorf("isa: truncated %v: have %d of %d words", h.kind, len(words), n)
	}
	op := func(i int) uint64 { return words[i] }
	var c Command
	switch h.kind {
	case KindConfig:
		c = Config{Addr: op(1), Size: h.imm24}
	case KindMemScratch:
		c = MemScratch{Src: unpackAffine(op(1), op(2)), ScratchAddr: h.imm24}
	case KindScratchPort:
		c = ScratchPort{Src: unpackAffine(op(1), op(2)), Dst: InPortID(h.portA)}
	case KindMemPort:
		c = MemPort{Src: unpackAffine(op(1), op(2)), Dst: InPortID(h.portA)}
	case KindConstPort:
		c = ConstPort{Value: op(1), Elem: h.elem, Count: h.imm24, Dst: InPortID(h.portA)}
	case KindCleanPort:
		c = CleanPort{Src: OutPortID(h.portA), Elem: h.elem, Count: h.imm24}
	case KindPortPort:
		c = PortPort{Src: OutPortID(h.portA), Elem: h.elem, Count: op(1), Dst: InPortID(h.portB)}
	case KindPortScratch:
		c = PortScratch{Src: OutPortID(h.portA), Elem: h.elem, Count: op(1) & 0xffffffff, ScratchAddr: op(1) >> 32}
	case KindPortMem:
		c = PortMem{Src: OutPortID(h.portA), Dst: unpackAffine(op(1), op(2))}
	case KindIndPortPort:
		c = IndPortPort{
			Idx: InPortID(h.portA), IdxElem: h.elem, Offset: op(1), Scale: h.scale,
			DataElem: h.dataElem, Count: op(2), Dst: InPortID(h.portB),
		}
	case KindIndPortMem:
		c = IndPortMem{
			Idx: InPortID(h.portA), IdxElem: h.elem, Offset: op(1), Scale: h.scale,
			DataElem: h.dataElem, Count: op(2), Src: OutPortID(h.portB),
		}
	case KindBarrierScratchRd:
		c = BarrierScratchRd{}
	case KindBarrierScratchWr:
		c = BarrierScratchWr{}
	case KindBarrierAll:
		c = BarrierAll{}
	}
	return c, n, nil
}

// EncodeProgram encodes a command sequence into one instruction stream.
func EncodeProgram(cmds []Command) ([]uint64, error) {
	var out []uint64
	for _, c := range cmds {
		w, err := EncodeCommand(c)
		if err != nil {
			return nil, fmt.Errorf("encoding %v: %w", c, err)
		}
		out = append(out, w...)
	}
	return out, nil
}

// DecodeProgram decodes an instruction stream produced by EncodeProgram.
func DecodeProgram(words []uint64) ([]Command, error) {
	var out []Command
	for len(words) > 0 {
		c, n, err := DecodeCommand(words)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
		words = words[n:]
	}
	return out, nil
}
