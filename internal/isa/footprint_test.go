package isa

import (
	"math"
	"testing"
)

func TestExtent(t *testing.T) {
	cases := []struct {
		name   string
		pat    Affine
		lo, hi uint64
		ok     bool
	}{
		{"linear", Linear(0x100, 64), 0x100, 0x140, true},
		{"empty-size", Affine{Start: 8, AccessSize: 0, Stride: 8, Strides: 4}, 8, 8, true},
		{"empty-strides", Affine{Start: 8, AccessSize: 8, Stride: 8, Strides: 0}, 8, 8, true},
		{"strided", Strided2D(0, 8, 64, 4), 0, 3*64 + 8, true},
		{"repeating", Repeat(0x40, 16, 100), 0x40, 0x50, true},
		{"overlapped", Affine{Start: 0, AccessSize: 16, Stride: 8, Strides: 3}, 0, 2*8 + 16, true},
		{"last-byte-of-space", Affine{Start: math.MaxUint64 - 7, AccessSize: 8, Stride: 8, Strides: 1}, math.MaxUint64 - 7, 0, false},
		{"end-at-max", Affine{Start: math.MaxUint64 - 8, AccessSize: 8, Stride: 8, Strides: 1}, math.MaxUint64 - 8, math.MaxUint64, true},
		{"stride-mul-overflow", Affine{Start: 0, AccessSize: 8, Stride: 1 << 40, Strides: 1 << 40}, 0, 0, false},
		{"start-add-overflow", Affine{Start: math.MaxUint64 - 64, AccessSize: 8, Stride: 64, Strides: 4}, math.MaxUint64 - 64, 0, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			lo, hi, ok := c.pat.Extent()
			if ok != c.ok {
				t.Fatalf("Extent(%v) ok = %v, want %v", c.pat, ok, c.ok)
			}
			if !ok {
				return
			}
			if lo != c.lo || hi != c.hi {
				t.Fatalf("Extent(%v) = [%#x, %#x), want [%#x, %#x)", c.pat, lo, hi, c.lo, c.hi)
			}
		})
	}
}

func TestTotalBytesChecked(t *testing.T) {
	if n, ok := Linear(0, 64).TotalBytesChecked(); !ok || n != 64 {
		t.Fatalf("TotalBytesChecked(linear 64) = %d, %v", n, ok)
	}
	big := Affine{AccessSize: 1 << 40, Stride: 1 << 40, Strides: 1 << 40}
	if _, ok := big.TotalBytesChecked(); ok {
		t.Fatalf("TotalBytesChecked did not flag %v as overflowing", big)
	}
}

// refOverlaps is the brute-force reference: enumerate both byte sets.
func refOverlaps(a, b Affine) bool {
	seen := map[uint64]bool{}
	a.EachByte(func(addr uint64) { seen[addr] = true })
	hit := false
	b.EachByte(func(addr uint64) {
		if seen[addr] {
			hit = true
		}
	})
	return hit
}

func TestOverlaps(t *testing.T) {
	cases := []struct {
		name string
		a, b Affine
		want bool
	}{
		{"identical", Linear(0x100, 64), Linear(0x100, 64), true},
		{"adjacent", Linear(0, 64), Linear(64, 64), false},
		{"one-byte-overlap", Linear(0, 65), Linear(64, 64), true},
		{"disjoint", Linear(0, 64), Linear(0x1000, 64), false},
		{"empty-vs-anything", Affine{}, Linear(0, 1<<20), false},
		{"repeat-inside-linear", Repeat(0x20, 8, 1000), Linear(0, 64), true},
		{"repeat-outside-linear", Repeat(0x100, 8, 1000), Linear(0, 64), false},
		{"overlapped-vs-linear", Affine{Start: 0, AccessSize: 16, Stride: 8, Strides: 8}, Linear(70, 8), true},
		// Interleaved strided patterns: extents overlap, bytes never do.
		{"interleaved-disjoint", Strided2D(0, 8, 16, 8), Strided2D(8, 8, 16, 8), false},
		{"interleaved-colliding", Strided2D(0, 8, 16, 8), Strided2D(8, 8, 24, 8), true},
		// A sparse pattern whose holes swallow a dense one.
		{"linear-in-stride-hole", Strided2D(0, 8, 64, 8), Linear(16, 32), false},
		{"linear-on-stride-row", Strided2D(0, 8, 64, 8), Linear(128, 4), true},
		// Overflowing patterns are conservatively overlapping.
		{"overflow-conservative", Affine{Start: math.MaxUint64 - 8, AccessSize: 64, Stride: 64, Strides: 4}, Linear(0, 8), true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.a.Overlaps(c.b); got != c.want {
				t.Fatalf("Overlaps(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
			}
			if got := c.b.Overlaps(c.a); got != c.want {
				t.Fatalf("Overlaps(%v, %v) = %v, want %v (asymmetric!)", c.b, c.a, got, c.want)
			}
		})
	}
}

// TestOverlapsAgainstReference cross-checks Overlaps with the byte-set
// reference over a grid of small patterns, including Stride == 0 and
// Stride < AccessSize shapes.
func TestOverlapsAgainstReference(t *testing.T) {
	var pats []Affine
	for _, start := range []uint64{0, 3, 8, 17} {
		for _, acc := range []uint64{1, 4, 8} {
			for _, stride := range []uint64{0, 2, 4, 8, 12, 32} {
				for _, n := range []uint64{1, 3, 5} {
					pats = append(pats, Affine{Start: start, AccessSize: acc, Stride: stride, Strides: n})
				}
			}
		}
	}
	for _, a := range pats {
		for _, b := range pats {
			want := refOverlaps(a, b)
			if got := a.Overlaps(b); got != want {
				t.Fatalf("Overlaps(%v, %v) = %v, reference says %v", a, b, got, want)
			}
		}
	}
}
