package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAffineShapes(t *testing.T) {
	tests := []struct {
		name string
		pat  Affine
		want string
	}{
		{"linear single", Linear(0x100, 64), "linear"},
		{"linear multi", Affine{Start: 0, AccessSize: 8, Stride: 8, Strides: 4}, "linear"},
		{"strided", Strided2D(0, 8, 32, 4), "strided"},
		{"overlapped", Affine{Start: 0, AccessSize: 16, Stride: 8, Strides: 4}, "overlapped"},
		{"repeating", Repeat(0x40, 8, 10), "repeating"},
		{"empty size", Affine{Start: 0, AccessSize: 0, Stride: 8, Strides: 4}, "empty"},
		{"empty strides", Affine{Start: 0, AccessSize: 8, Stride: 8, Strides: 0}, "empty"},
	}
	for _, tt := range tests {
		if got := tt.pat.Shape(); got != tt.want {
			t.Errorf("%s: Shape() = %q, want %q", tt.name, got, tt.want)
		}
	}
}

func TestAffineTotalBytes(t *testing.T) {
	p := Strided2D(0x1000, 16, 64, 8)
	if got, want := p.TotalBytes(), uint64(128); got != want {
		t.Errorf("TotalBytes() = %d, want %d", got, want)
	}
	if Linear(0, 0).TotalBytes() != 0 {
		t.Error("empty linear pattern should have 0 bytes")
	}
}

func TestAffineEachByteLinear(t *testing.T) {
	p := Linear(100, 5)
	var got []uint64
	p.EachByte(func(a uint64) { got = append(got, a) })
	want := []uint64{100, 101, 102, 103, 104}
	if len(got) != len(want) {
		t.Fatalf("got %d addresses, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("addr[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestAffineEachByteOverlapped(t *testing.T) {
	// Overlapped pattern revisits bytes: access size 4, stride 2.
	p := Affine{Start: 0, AccessSize: 4, Stride: 2, Strides: 3}
	var got []uint64
	p.EachByte(func(a uint64) { got = append(got, a) })
	want := []uint64{0, 1, 2, 3, 2, 3, 4, 5, 4, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("got %d addresses, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("addr[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestAffineEachByteRepeating(t *testing.T) {
	p := Repeat(10, 2, 3)
	var got []uint64
	p.EachByte(func(a uint64) { got = append(got, a) })
	want := []uint64{10, 11, 10, 11, 10, 11}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("addr[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// randomAffine generates a small random pattern for property tests.
func randomAffine(r *rand.Rand) Affine {
	return Affine{
		Start:      uint64(r.Intn(1 << 16)),
		AccessSize: uint64(r.Intn(100)),
		Stride:     uint64(r.Intn(200)),
		Strides:    uint64(r.Intn(50)),
	}
}

// Property: the incremental cursor produces exactly the sequence of the
// reference enumeration.
func TestAffineCursorMatchesEachByte(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomAffine(r)
		var want []uint64
		p.EachByte(func(a uint64) { want = append(want, a) })

		c := NewAffineCursor(p)
		if c.Remaining() != uint64(len(want)) {
			t.Logf("Remaining() = %d, want %d", c.Remaining(), len(want))
			return false
		}
		for i, w := range want {
			if c.Done() {
				t.Logf("cursor done early at %d of %d", i, len(want))
				return false
			}
			if pk := c.Peek(); pk != w {
				t.Logf("Peek[%d] = %d, want %d", i, pk, w)
				return false
			}
			if got := c.Next(); got != w {
				t.Logf("Next[%d] = %d, want %d", i, got, w)
				return false
			}
		}
		return c.Done() && c.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAffineCursorRemainingDecreases(t *testing.T) {
	p := Strided2D(0, 7, 13, 5)
	c := NewAffineCursor(p)
	prev := c.Remaining()
	for !c.Done() {
		c.Next()
		if r := c.Remaining(); r != prev-1 {
			t.Fatalf("Remaining() = %d after Next, want %d", r, prev-1)
		}
		prev--
	}
}
