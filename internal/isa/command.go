package isa

import "fmt"

// InPortID names an input vector port: a FIFO through which data enters
// the CGRA (or, for indirect-capable ports, through which stream indices
// are buffered). Input and output ports have independent ID spaces.
type InPortID uint8

// OutPortID names an output vector port: a FIFO through which DFG results
// leave the CGRA.
type OutPortID uint8

// ElemSize is the size of one stream element in bytes.
type ElemSize uint8

// Element sizes supported by the 64-bit datapath and its sub-word modes.
const (
	Elem8  ElemSize = 1
	Elem16 ElemSize = 2
	Elem32 ElemSize = 4
	Elem64 ElemSize = 8
)

// Valid reports whether e is one of the architected element sizes.
func (e ElemSize) Valid() bool {
	switch e {
	case Elem8, Elem16, Elem32, Elem64:
		return true
	}
	return false
}

// Kind discriminates stream-dataflow commands (Table 2).
type Kind uint8

const (
	KindInvalid Kind = iota
	KindConfig
	KindMemScratch
	KindScratchPort
	KindMemPort
	KindConstPort
	KindCleanPort
	KindPortPort
	KindPortScratch
	KindPortMem
	KindIndPortPort
	KindIndPortMem
	KindBarrierScratchRd
	KindBarrierScratchWr
	KindBarrierAll
	numKinds
)

var kindNames = [...]string{
	KindInvalid:          "SD_Invalid",
	KindConfig:           "SD_Config",
	KindMemScratch:       "SD_Mem_Scratch",
	KindScratchPort:      "SD_Scratch_Port",
	KindMemPort:          "SD_Mem_Port",
	KindConstPort:        "SD_Const_Port",
	KindCleanPort:        "SD_Clean_Port",
	KindPortPort:         "SD_Port_Port",
	KindPortScratch:      "SD_Port_Scratch",
	KindPortMem:          "SD_Port_Mem",
	KindIndPortPort:      "SD_IndPort_Port",
	KindIndPortMem:       "SD_IndPort_Mem",
	KindBarrierScratchRd: "SD_Barrier_Scratch_Rd",
	KindBarrierScratchWr: "SD_Barrier_Scratch_Wr",
	KindBarrierAll:       "SD_Barrier_All",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Command is one stream-dataflow command as issued by the control core.
// Commands are architectural values: immutable once built.
type Command interface {
	Kind() Kind
	// Words is the number of fixed-width instruction words the command
	// occupies when embedded in the control core's RISC ISA (1-3).
	Words() int
	String() string
}

// Config loads a CGRA + vector-port configuration bitstream of Size bytes
// from memory address Addr (SD_Config).
type Config struct {
	Addr uint64
	Size uint64
}

func (Config) Kind() Kind { return KindConfig }
func (Config) Words() int { return 2 }
func (c Config) String() string {
	return fmt.Sprintf("SD_Config(addr=%#x, size=%d)", c.Addr, c.Size)
}

// MemScratch reads the affine pattern Src from memory and writes it
// linearly into the scratchpad at ScratchAddr (SD_Mem_Scratch).
type MemScratch struct {
	Src         Affine
	ScratchAddr uint64
}

func (MemScratch) Kind() Kind { return KindMemScratch }
func (MemScratch) Words() int { return 3 }
func (c MemScratch) String() string {
	return fmt.Sprintf("SD_Mem_Scratch(%v -> scratch[%#x])", c.Src, c.ScratchAddr)
}

// ScratchPort reads the affine pattern Src from the scratchpad into input
// vector port Dst (SD_Scratch_Port).
type ScratchPort struct {
	Src Affine
	Dst InPortID
}

func (ScratchPort) Kind() Kind { return KindScratchPort }
func (ScratchPort) Words() int { return 3 }
func (c ScratchPort) String() string {
	return fmt.Sprintf("SD_Scratch_Port(%v -> P%d)", c.Src, c.Dst)
}

// MemPort reads the affine pattern Src from memory into input vector
// port Dst (SD_Mem_Port). Dst may be an indirect-capable port, in which
// case the loaded values serve as indices for a later indirect stream.
type MemPort struct {
	Src Affine
	Dst InPortID
}

func (MemPort) Kind() Kind { return KindMemPort }
func (MemPort) Words() int { return 3 }
func (c MemPort) String() string {
	return fmt.Sprintf("SD_Mem_Port(%v -> P%d)", c.Src, c.Dst)
}

// ConstPort sends Count copies of the low Elem bytes of Value to input
// vector port Dst (SD_Const_Port). Used for reset/control streams and
// software pipelining (Figure 6).
type ConstPort struct {
	Value uint64
	Elem  ElemSize
	Count uint64
	Dst   InPortID
}

func (ConstPort) Kind() Kind { return KindConstPort }
func (ConstPort) Words() int { return 2 }
func (c ConstPort) String() string {
	return fmt.Sprintf("SD_Const_Port(%#x x%d -> P%d)", c.Value, c.Count, c.Dst)
}

// CleanPort discards Count elements of Elem bytes from output vector port
// Src (SD_Clean_Port). Used to drop unneeded values, e.g. the partial
// sums an accumulator emits before its final value.
type CleanPort struct {
	Src   OutPortID
	Elem  ElemSize
	Count uint64
}

func (CleanPort) Kind() Kind { return KindCleanPort }
func (CleanPort) Words() int { return 1 }
func (c CleanPort) String() string {
	return fmt.Sprintf("SD_Clean_Port(P%d x%d)", c.Src, c.Count)
}

// PortPort forwards Count elements of Elem bytes from output port Src to
// input port Dst (SD_Port_Port): the recurrence stream, used for
// inter-iteration dependences and reductions without a memory round trip.
type PortPort struct {
	Src   OutPortID
	Elem  ElemSize
	Count uint64
	Dst   InPortID
}

func (PortPort) Kind() Kind { return KindPortPort }
func (PortPort) Words() int { return 2 }
func (c PortPort) String() string {
	return fmt.Sprintf("SD_Port_Port(P%d -> P%d x%d)", c.Src, c.Dst, c.Count)
}

// PortScratch writes Count elements of Elem bytes from output port Src
// linearly into the scratchpad at ScratchAddr (SD_Port_Scratch).
type PortScratch struct {
	Src         OutPortID
	Elem        ElemSize
	Count       uint64
	ScratchAddr uint64
}

func (PortScratch) Kind() Kind { return KindPortScratch }
func (PortScratch) Words() int { return 2 }
func (c PortScratch) String() string {
	return fmt.Sprintf("SD_Port_Scratch(P%d x%d -> scratch[%#x])", c.Src, c.Count, c.ScratchAddr)
}

// PortMem writes data from output port Src to memory following the affine
// pattern Dst (SD_Port_Mem).
type PortMem struct {
	Src OutPortID
	Dst Affine
}

func (PortMem) Kind() Kind { return KindPortMem }
func (PortMem) Words() int { return 3 }
func (c PortMem) String() string {
	return fmt.Sprintf("SD_Port_Mem(P%d -> %v)", c.Src, c.Dst)
}

// IndPortPort performs an indirect load (SD_IndPort_Port): it consumes
// Count indices of IdxElem bytes from indirect port Idx, forms addresses
//
//	addr = Offset + index*uint64(Scale)
//
// and loads DataElem bytes from each address into input port Dst.
// Pointer-valued indices use Offset == 0, Scale == 1.
// Chaining IndPortPort commands yields multi-level indirection a[b[c[i]]].
type IndPortPort struct {
	Idx      InPortID
	IdxElem  ElemSize
	Offset   uint64
	Scale    uint8
	DataElem ElemSize
	Count    uint64
	Dst      InPortID
}

func (IndPortPort) Kind() Kind { return KindIndPortPort }
func (IndPortPort) Words() int { return 3 }
func (c IndPortPort) String() string {
	return fmt.Sprintf("SD_IndPort_Port(P%d idx, base=%#x -> P%d x%d)", c.Idx, c.Offset, c.Dst, c.Count)
}

// IndPortMem performs an indirect store (SD_IndPort_Mem): it consumes
// Count indices from indirect port Idx and, for each, stores DataElem
// bytes taken from output port Src to Offset + index*uint64(Scale).
type IndPortMem struct {
	Idx      InPortID
	IdxElem  ElemSize
	Offset   uint64
	Scale    uint8
	DataElem ElemSize
	Count    uint64
	Src      OutPortID
}

func (IndPortMem) Kind() Kind { return KindIndPortMem }
func (IndPortMem) Words() int { return 3 }
func (c IndPortMem) String() string {
	return fmt.Sprintf("SD_IndPort_Mem(P%d idx, P%d data -> base=%#x x%d)", c.Idx, c.Src, c.Offset, c.Count)
}

// BarrierScratchRd orders younger commands after all outstanding
// scratchpad reads (SD_Barrier_Scratch_Rd).
type BarrierScratchRd struct{}

func (BarrierScratchRd) Kind() Kind     { return KindBarrierScratchRd }
func (BarrierScratchRd) Words() int     { return 1 }
func (BarrierScratchRd) String() string { return "SD_Barrier_Scratch_Rd()" }

// BarrierScratchWr orders younger commands after all outstanding
// scratchpad writes (SD_Barrier_Scratch_Wr).
type BarrierScratchWr struct{}

func (BarrierScratchWr) Kind() Kind     { return KindBarrierScratchWr }
func (BarrierScratchWr) Words() int     { return 1 }
func (BarrierScratchWr) String() string { return "SD_Barrier_Scratch_Wr()" }

// BarrierAll waits for every outstanding command to complete and
// synchronizes the control core (SD_Barrier_All): the end of a phase,
// after which results are visible in the memory system.
type BarrierAll struct{}

func (BarrierAll) Kind() Kind     { return KindBarrierAll }
func (BarrierAll) Words() int     { return 1 }
func (BarrierAll) String() string { return "SD_Barrier_All()" }

// IsBarrier reports whether c is one of the three barrier commands.
func IsBarrier(c Command) bool {
	switch c.Kind() {
	case KindBarrierScratchRd, KindBarrierScratchWr, KindBarrierAll:
		return true
	}
	return false
}
