// Package isa defines the stream-dataflow instruction-set architecture:
// the access patterns, stream commands and barriers of Table 2 of the
// paper, plus a compact binary encoding suitable for embedding in a
// fixed-width RISC ISA (1-3 instruction words per command).
//
// The ISA is the hardware/software contract. Everything here is purely
// architectural: no microarchitectural state appears in this package.
package isa

import (
	"fmt"
	"math/bits"
)

// LineBytes is the width of the memory interface in bytes. Stream engines
// move data in aligned lines of this size (the paper's 512-bit buses).
const LineBytes = 64

// Affine describes a two-dimensional affine access pattern (Figure 5):
// accesses of the form a[C*i+j] where i counts strides and j counts bytes
// within one access. The four classic shapes fall out of the parameters:
//
//	Linear:     Stride == AccessSize
//	Strided:    Stride > AccessSize
//	Overlapped: 0 < Stride < AccessSize
//	Repeating:  Stride == 0
type Affine struct {
	Start      uint64 // byte address of the first access
	AccessSize uint64 // bytes per contiguous access (the "access size")
	Stride     uint64 // bytes between consecutive access starts
	Strides    uint64 // number of accesses ("number of strides")
}

// Linear returns the pattern for a contiguous region of n bytes at start.
func Linear(start, n uint64) Affine {
	return Affine{Start: start, AccessSize: n, Stride: n, Strides: 1}
}

// Strided2D returns the pattern reading rows of rowBytes bytes separated
// by pitch bytes, rows times.
func Strided2D(start, rowBytes, pitch, rows uint64) Affine {
	return Affine{Start: start, AccessSize: rowBytes, Stride: pitch, Strides: rows}
}

// Repeat returns the pattern that re-reads the same n bytes times times.
func Repeat(start, n, times uint64) Affine {
	return Affine{Start: start, AccessSize: n, Stride: 0, Strides: times}
}

// TotalBytes is the number of bytes the pattern touches in stream order
// (bytes revisited by overlapped or repeating patterns count every visit).
func (a Affine) TotalBytes() uint64 { return a.AccessSize * a.Strides }

// Empty reports whether the pattern generates no bytes.
func (a Affine) Empty() bool { return a.AccessSize == 0 || a.Strides == 0 }

// Shape classifies the pattern per Figure 5. Purely informational.
func (a Affine) Shape() string {
	switch {
	case a.Empty():
		return "empty"
	case a.Strides == 1 || a.Stride == a.AccessSize:
		return "linear"
	case a.Stride == 0:
		return "repeating"
	case a.Stride < a.AccessSize:
		return "overlapped"
	default:
		return "strided"
	}
}

// TotalBytesChecked is TotalBytes with overflow detection: ok is false
// when AccessSize*Strides does not fit in uint64.
func (a Affine) TotalBytesChecked() (n uint64, ok bool) {
	hi, lo := bits.Mul64(a.AccessSize, a.Strides)
	return lo, hi == 0
}

// Extent returns the half-open byte range [lo, hi) the pattern touches.
// ok is false when the last byte address overflows uint64 — the pattern
// wraps the address space and hi is meaningless. Empty patterns return
// an empty range at Start.
func (a Affine) Extent() (lo, hi uint64, ok bool) {
	if a.Empty() {
		return a.Start, a.Start, true
	}
	// Last byte offset from Start: (Strides-1)*Stride + AccessSize - 1.
	h, span := bits.Mul64(a.Strides-1, a.Stride)
	if h != 0 {
		return a.Start, 0, false
	}
	span, carry := bits.Add64(span, a.AccessSize, 0)
	if carry != 0 {
		return a.Start, 0, false
	}
	end, carry := bits.Add64(a.Start, span, 0)
	if carry != 0 || end < a.Start { // end == 0 after exact wrap
		return a.Start, 0, false
	}
	return a.Start, end, true
}

// dense reports whether the pattern touches every byte of its extent:
// linear, overlapped, and repeating shapes have no holes.
func (a Affine) dense() bool {
	return a.Strides <= 1 || a.Stride <= a.AccessSize
}

// touchesInterval reports whether any access of the pattern intersects
// the half-open byte interval [lo, hi). Patterns whose extent overflows
// are conservatively reported as touching.
func (a Affine) touchesInterval(lo, hi uint64) bool {
	if hi <= lo || a.Empty() {
		return false
	}
	alo, ahi, ok := a.Extent()
	if !ok {
		return true
	}
	if ahi <= lo || alo >= hi {
		return false
	}
	if a.dense() {
		return true
	}
	// Sparse strided pattern: access s covers [alo+s*Stride, +AccessSize).
	// It ends after lo when s > (lo - alo - AccessSize)/Stride, and starts
	// before hi when s <= (hi-1-alo)/Stride.
	var smin uint64
	if lo >= alo+a.AccessSize { // no underflow: alo+AccessSize <= ahi fits
		smin = (lo-alo-a.AccessSize)/a.Stride + 1
	}
	smax := (hi - 1 - alo) / a.Stride // alo < hi, so no underflow
	if last := a.Strides - 1; smax > last {
		smax = last
	}
	return smin <= smax
}

// overlapEnumCap bounds the per-access enumeration Overlaps falls back
// to for two sparse strided patterns; beyond it the check is
// conservatively true.
const overlapEnumCap = 1 << 16

// Overlaps reports whether the byte footprints of a and b intersect.
// The check is exact except for two cases reported conservatively as
// overlapping: patterns whose extent overflows uint64, and pairs of
// sparse strided patterns with more than overlapEnumCap accesses each.
func (a Affine) Overlaps(b Affine) bool {
	if a.Empty() || b.Empty() {
		return false
	}
	alo, ahi, aok := a.Extent()
	blo, bhi, bok := b.Extent()
	if !aok || !bok {
		return true
	}
	if ahi <= blo || bhi <= alo {
		return false
	}
	// Extents intersect. Dense patterns cover their extent completely.
	if a.dense() || b.dense() {
		if a.dense() && b.dense() {
			return true
		}
		// One dense: restrict to the sparse side's access grid.
		sparse, dense := a, b
		if a.dense() {
			sparse, dense = b, a
		}
		dlo, dhi, _ := dense.Extent()
		return sparse.touchesInterval(dlo, dhi)
	}
	// Both sparse: enumerate the pattern with fewer accesses.
	p, q := a, b
	if b.Strides < a.Strides {
		p, q = b, a
	}
	if p.Strides > overlapEnumCap {
		return true
	}
	plo, _, _ := p.Extent()
	for s := uint64(0); s < p.Strides; s++ {
		start := plo + s*p.Stride
		if q.touchesInterval(start, start+p.AccessSize) {
			return true
		}
	}
	return false
}

func (a Affine) String() string {
	return fmt.Sprintf("affine{start=%#x size=%d stride=%d n=%d}", a.Start, a.AccessSize, a.Stride, a.Strides)
}

// IndexFootprint over-approximates the footprint of an indirect stream
// (SD_IndPort_*) whose index values are statically bounded to [lo, hi]:
// each access touches elem bytes at offset + v*scale for some v in the
// range, so the footprint is contained in the strided pattern starting
// at offset + lo*scale with stride scale, hi-lo+1 strides. The
// approximation is exact when the index stream visits every value of
// the range, conservative (a superset) otherwise. ok is false when the
// address arithmetic overflows uint64 or the range covers the full
// index space; callers must then treat the footprint as unknown.
func IndexFootprint(offset uint64, scale uint8, elem ElemSize, lo, hi uint64) (Affine, bool) {
	if hi < lo || hi-lo == ^uint64(0) {
		return Affine{}, false
	}
	if scale == 0 {
		// Every index resolves to the same elem bytes at offset.
		return Linear(offset, uint64(elem)), true
	}
	h, base := bits.Mul64(lo, uint64(scale))
	if h != 0 {
		return Affine{}, false
	}
	start, carry := bits.Add64(offset, base, 0)
	if carry != 0 {
		return Affine{}, false
	}
	return Affine{Start: start, AccessSize: uint64(elem), Stride: uint64(scale), Strides: hi - lo + 1}, true
}

// EachByte calls fn with every byte address of the pattern in stream
// order. It is the reference enumeration the AGU hardware model is tested
// against; simulation uses the incremental AffineCursor instead.
func (a Affine) EachByte(fn func(addr uint64)) {
	for s := uint64(0); s < a.Strides; s++ {
		base := a.Start + s*a.Stride
		for b := uint64(0); b < a.AccessSize; b++ {
			fn(base + b)
		}
	}
}

// AffineCursor walks an Affine pattern incrementally, one byte at a time,
// mirroring the running state a hardware AGU keeps per stream-table entry.
// The zero cursor is invalid; use NewAffineCursor.
type AffineCursor struct {
	pat    Affine
	stride uint64 // current access index
	off    uint64 // byte offset within current access
}

// NewAffineCursor returns a cursor positioned at the first byte of p.
func NewAffineCursor(p Affine) *AffineCursor {
	c := &AffineCursor{pat: p}
	if p.AccessSize == 0 {
		c.stride = p.Strides // an empty access size exhausts the pattern
	}
	return c
}

// Done reports whether the pattern is exhausted.
func (c *AffineCursor) Done() bool { return c.stride >= c.pat.Strides }

// Peek returns the next byte address without advancing.
// It must not be called when Done.
func (c *AffineCursor) Peek() uint64 {
	return c.pat.Start + c.stride*c.pat.Stride + c.off
}

// Next returns the next byte address and advances the cursor.
// It must not be called when Done.
func (c *AffineCursor) Next() uint64 {
	addr := c.Peek()
	c.off++
	if c.off == c.pat.AccessSize {
		c.off = 0
		c.stride++
	}
	return addr
}

// Remaining is the number of bytes the cursor has yet to produce.
func (c *AffineCursor) Remaining() uint64 {
	if c.Done() {
		return 0
	}
	return (c.pat.Strides-c.stride)*c.pat.AccessSize - c.off
}

// Take returns the start address of the longest contiguous byte run at
// the cursor's position, capped at max, and advances past it. The run
// covers the rest of the current access — or the rest of the pattern
// when consecutive accesses abut (Stride == AccessSize). It must not be
// called when Done or with max == 0.
func (c *AffineCursor) Take(max uint64) (start, n uint64) {
	start = c.Peek()
	if c.pat.Stride == c.pat.AccessSize {
		n = c.Remaining()
		if n > max {
			n = max
		}
		// Contiguous across accesses: plain byte arithmetic advances.
		off := c.off + n
		c.stride += off / c.pat.AccessSize
		c.off = off % c.pat.AccessSize
		return start, n
	}
	n = c.pat.AccessSize - c.off
	if n > max {
		n = max
	}
	c.off += n
	if c.off == c.pat.AccessSize {
		c.off = 0
		c.stride++
	}
	return start, n
}
