package isa

import (
	"math/big"
	"math/bits"
	"testing"
)

// The fuzz targets below cross-check the closed-form footprint algebra
// (Extent, Overlaps, IndexFootprint) against brute-force enumeration
// via EachByte, the reference the AGU model is also tested against.
// Their seed corpora run under plain `go test`; `make fuzz-smoke` gives
// each target a short randomized budget.

// fuzzEnumCap bounds the byte count a fuzz iteration will enumerate;
// larger patterns are still checked for the properties that do not need
// enumeration.
const fuzzEnumCap = 1 << 14

// bigExtentEnd computes Start + (Strides-1)*Stride + AccessSize with
// unbounded integers: the exclusive end of a non-empty pattern's extent,
// independent of the bits.Mul64/Add64 chain in Extent.
func bigExtentEnd(a Affine) *big.Int {
	end := new(big.Int).SetUint64(a.Strides - 1)
	end.Mul(end, new(big.Int).SetUint64(a.Stride))
	end.Add(end, new(big.Int).SetUint64(a.Start))
	return end.Add(end, new(big.Int).SetUint64(a.AccessSize))
}

var bigU64Max = new(big.Int).SetUint64(^uint64(0))

// FuzzAffineExtent checks Extent against unbounded-integer arithmetic
// and, for small patterns, against byte enumeration: ok must be true
// exactly when the exclusive end fits in uint64, and the returned
// half-open range must tightly bound every enumerated byte.
func FuzzAffineExtent(f *testing.F) {
	f.Add(uint64(0x100), uint64(64), uint64(64), uint64(1)) // linear
	f.Add(uint64(0), uint64(8), uint64(32), uint64(4))      // strided
	f.Add(uint64(0), uint64(16), uint64(8), uint64(4))      // overlapped
	f.Add(uint64(0x40), uint64(8), uint64(0), uint64(10))   // repeating
	f.Add(uint64(0), uint64(0), uint64(8), uint64(4))       // empty
	f.Add(^uint64(0)-7, uint64(8), uint64(8), uint64(1))    // ends exactly at 2^64
	f.Add(^uint64(0), uint64(1), uint64(1), uint64(1))      // last byte overflows
	f.Add(uint64(0), uint64(1), ^uint64(0), uint64(2))      // stride product overflows
	f.Add(uint64(0), ^uint64(0), uint64(1), ^uint64(0))     // everything huge
	f.Fuzz(func(t *testing.T, start, size, stride, strides uint64) {
		a := Affine{Start: start, AccessSize: size, Stride: stride, Strides: strides}
		lo, hi, ok := a.Extent()
		if a.Empty() {
			if !ok || lo != start || hi != start {
				t.Fatalf("%v: empty pattern Extent() = [%#x, %#x) ok=%v, want empty range at Start", a, lo, hi, ok)
			}
			return
		}
		end := bigExtentEnd(a)
		if wantOK := end.Cmp(bigU64Max) <= 0; ok != wantOK {
			t.Fatalf("%v: Extent() ok=%v, want %v (true end %v)", a, ok, wantOK, end)
		}
		if !ok {
			return
		}
		if lo != start || !end.IsUint64() || hi != end.Uint64() {
			t.Fatalf("%v: Extent() = [%#x, %#x), want [%#x, %v)", a, lo, hi, start, end)
		}
		total, tok := a.TotalBytesChecked()
		if !tok || total > fuzzEnumCap {
			return
		}
		min, max := ^uint64(0), uint64(0)
		a.EachByte(func(addr uint64) {
			if addr < lo || addr >= hi {
				t.Fatalf("%v: byte %#x outside Extent [%#x, %#x)", a, addr, lo, hi)
			}
			if addr < min {
				min = addr
			}
			if addr > max {
				max = addr
			}
		})
		if min != lo || max != hi-1 {
			t.Fatalf("%v: enumerated bytes span [%#x, %#x], Extent [%#x, %#x) is not tight", a, min, max, lo, hi)
		}
	})
}

// byteSet enumerates the distinct byte addresses of a bounded pattern.
func byteSet(a Affine) map[uint64]bool {
	s := make(map[uint64]bool)
	a.EachByte(func(addr uint64) { s[addr] = true })
	return s
}

// FuzzAffineOverlaps bounds both patterns well below the overflow and
// enumeration-cap regimes, where Overlaps documents itself exact, and
// cross-checks it against byte-set intersection. Symmetry is checked on
// the raw (unbounded) inputs as well.
func FuzzAffineOverlaps(f *testing.F) {
	f.Add(uint64(0), uint64(8), uint64(8), uint64(4), uint64(16), uint64(8), uint64(8), uint64(4))
	f.Add(uint64(0), uint64(8), uint64(32), uint64(4), uint64(8), uint64(8), uint64(32), uint64(4)) // interleaved sparse
	f.Add(uint64(0), uint64(4), uint64(16), uint64(8), uint64(100), uint64(4), uint64(16), uint64(8))
	f.Add(uint64(10), uint64(2), uint64(0), uint64(3), uint64(11), uint64(1), uint64(1), uint64(1)) // repeating vs point
	f.Add(uint64(0), uint64(0), uint64(8), uint64(4), uint64(0), uint64(8), uint64(8), uint64(4))   // empty vs dense
	f.Fuzz(func(t *testing.T, aStart, aSize, aStride, aStrides, bStart, bSize, bStride, bStrides uint64) {
		bound := func(start, size, stride, strides uint64) Affine {
			return Affine{
				Start:      start % (1 << 12),
				AccessSize: size % 48,
				Stride:     stride % 96,
				Strides:    strides % 24,
			}
		}
		a := bound(aStart, aSize, aStride, aStrides)
		b := bound(bStart, bSize, bStride, bStrides)
		want := false
		bs := byteSet(b)
		for addr := range byteSet(a) {
			if bs[addr] {
				want = true
				break
			}
		}
		if got := a.Overlaps(b); got != want {
			t.Fatalf("%v.Overlaps(%v) = %v, brute force says %v", a, b, got, want)
		}
		if a.Overlaps(b) != b.Overlaps(a) {
			t.Fatalf("%v / %v: Overlaps is asymmetric", a, b)
		}
		// Symmetry must also hold in the conservative regimes.
		raw := Affine{Start: aStart, AccessSize: aSize, Stride: aStride, Strides: aStrides}
		rawB := Affine{Start: bStart, AccessSize: bSize, Stride: bStride, Strides: bStrides}
		if raw.Overlaps(rawB) != rawB.Overlaps(raw) {
			t.Fatalf("%v / %v: Overlaps is asymmetric on raw inputs", raw, rawB)
		}
	})
}

// FuzzIndexFootprint checks the indirect-stream footprint bound: when
// IndexFootprint reports ok, the returned pattern must cover the elem
// bytes at offset + v*scale for every index value v in [lo, hi] —
// verified by enumerating the footprint for bounded ranges — and ok
// must be false whenever the start arithmetic leaves uint64.
func FuzzIndexFootprint(f *testing.F) {
	f.Add(uint64(0x1000), uint8(8), uint8(3), uint64(1), uint64(64)) // the lut gather shape
	f.Add(uint64(0), uint8(0), uint8(2), uint64(5), uint64(900))     // scale 0 collapses to one element
	f.Add(uint64(0x80), uint8(1), uint8(0), uint64(0), uint64(0))    // single index
	f.Add(uint64(4), uint8(16), uint8(1), uint64(10), uint64(2))     // hi < lo: no bound
	f.Add(^uint64(0)-16, uint8(8), uint8(3), uint64(1), uint64(4))   // start overflow
	f.Add(uint64(0), uint8(8), uint8(3), uint64(0), ^uint64(0))      // full index space
	f.Fuzz(func(t *testing.T, offset uint64, scale, elemSel uint8, lo, hi uint64) {
		elem := []ElemSize{Elem8, Elem16, Elem32, Elem64}[elemSel%4]
		fp, ok := IndexFootprint(offset, scale, elem, lo, hi)
		if hi < lo || hi-lo == ^uint64(0) {
			if ok {
				t.Fatalf("IndexFootprint(%#x, %d, %d, %#x, %#x) ok with an unbounded index range", offset, scale, elem, lo, hi)
			}
			return
		}
		// Independent overflow oracle: the first access starts at
		// offset + lo*scale, which must fit for the bound to exist.
		start := new(big.Int).SetUint64(lo)
		start.Mul(start, big.NewInt(int64(scale)))
		start.Add(start, new(big.Int).SetUint64(offset))
		if wantOK := start.Cmp(bigU64Max) <= 0; ok != wantOK {
			t.Fatalf("IndexFootprint(%#x, %d, %d, %#x, %#x) ok=%v, want %v", offset, scale, elem, lo, hi, ok, wantOK)
		}
		if !ok {
			return
		}
		if fp.Empty() {
			t.Fatalf("IndexFootprint(%#x, %d, %d, %#x, %#x) returned an empty pattern with ok", offset, scale, elem, lo, hi)
		}
		total, tok := fp.TotalBytesChecked()
		if !tok || total > fuzzEnumCap {
			return
		}
		cover := byteSet(fp)
		check := func(v uint64) {
			base := offset + v*uint64(scale)
			for b := uint64(0); b < uint64(elem); b++ {
				if addr := base + b; !cover[addr] {
					t.Fatalf("IndexFootprint(%#x, %d, %d, %#x, %#x): index %#x touches %#x outside the footprint %v",
						offset, scale, elem, lo, hi, v, addr, fp)
				}
			}
		}
		if scale == 0 {
			// Every index resolves to the same bytes; the range can be
			// huge, so check its ends rather than walking it.
			check(lo)
			check(hi)
		} else {
			// scale > 0: the enumeration cap on fp.TotalBytes already
			// bounds hi-lo, so walking the range terminates quickly.
			for v := lo; ; v++ {
				check(v)
				if v == hi {
					break
				}
			}
		}
		// The bound must also be attained: the footprint may not extend
		// past the last possible access.
		_, fpHi, eok := fp.Extent()
		lastEnd, carry1 := bits.Mul64(hi, uint64(scale))
		last, carry2 := bits.Add64(offset, lastEnd, 0)
		if carry1 == 0 && carry2 == 0 {
			if end := last + uint64(elem); eok && end >= last && fpHi > end {
				t.Fatalf("IndexFootprint(%#x, %d, %d, %#x, %#x): footprint ends at %#x, last access ends at %#x",
					offset, scale, elem, lo, hi, fpHi, end)
			}
		}
	})
}
