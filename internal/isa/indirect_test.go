package isa

import "testing"

func TestIndexFootprint(t *testing.T) {
	cases := []struct {
		name   string
		offset uint64
		scale  uint8
		elem   ElemSize
		lo, hi uint64
		want   Affine
		ok     bool
	}{
		{"single", 0x1000, 8, Elem64, 3, 3, Affine{Start: 0x1018, AccessSize: 8, Stride: 8, Strides: 1}, true},
		{"range", 0x1000, 4, Elem32, 0, 9, Affine{Start: 0x1000, AccessSize: 4, Stride: 4, Strides: 10}, true},
		{"sparse", 0, 16, Elem32, 1, 3, Affine{Start: 16, AccessSize: 4, Stride: 16, Strides: 3}, true},
		{"scale0", 0x2000, 0, Elem16, 5, 900, Linear(0x2000, 2), true},
		{"inverted", 0, 8, Elem64, 4, 3, Affine{}, false},
		{"fullrange", 0, 1, Elem8, 0, ^uint64(0), Affine{}, false},
		{"muloverflow", 0, 255, Elem8, ^uint64(0) / 2, ^uint64(0) / 2, Affine{}, false},
		{"addoverflow", ^uint64(0) - 4, 8, Elem8, 1, 1, Affine{}, false},
	}
	for _, c := range cases {
		got, ok := IndexFootprint(c.offset, c.scale, c.elem, c.lo, c.hi)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("%s: IndexFootprint = %v, %v; want %v, %v", c.name, got, ok, c.want, c.ok)
		}
	}
}

// TestIndexFootprintCovers checks the over-approximation property: every
// address an index in [lo, hi] can touch lies inside the footprint.
func TestIndexFootprintCovers(t *testing.T) {
	const offset, scale, lo, hi = 0x100, 12, 2, 7
	elem := Elem32
	pat, ok := IndexFootprint(offset, scale, elem, lo, hi)
	if !ok {
		t.Fatal("IndexFootprint failed")
	}
	for v := uint64(lo); v <= hi; v++ {
		a := Linear(offset+v*scale, uint64(elem))
		if !pat.Overlaps(a) {
			t.Fatalf("index %d access %v escapes footprint %v", v, a, pat)
		}
		lo2, hi2, _ := a.Extent()
		plo, phi, _ := pat.Extent()
		if lo2 < plo || hi2 > phi {
			t.Fatalf("index %d access [%#x,%#x) outside extent [%#x,%#x)", v, lo2, hi2, plo, phi)
		}
	}
}
