// Skip-ahead equivalence: the idle skip-ahead in the simulation kernel
// (internal/sim, docs/SIMKERNEL.md) is a host-performance optimization
// with zero architectural effect. Every test here runs the same program
// with skipping off and on and demands identical results — statistics,
// memory images, execution traces, and fault-injected timing alike.
package core_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"softbrain/examples/programs"
	"softbrain/internal/core"
	"softbrain/internal/faults"
	"softbrain/internal/fix"
	"softbrain/internal/mem"
	"softbrain/internal/obs"
	"softbrain/internal/progen"
	"softbrain/internal/workloads"
	"softbrain/internal/workloads/dnn"
	"softbrain/internal/workloads/machsuite"
)

// TestSkipAheadWorkloads runs every MachSuite workload and a DNN layer
// slice with skipping off and on: the statistics must be identical in
// every field (Cycles above all).
func TestSkipAheadWorkloads(t *testing.T) {
	type build struct {
		name string
		inst func(cfg core.Config) (*workloads.Instance, error)
		cfg  core.Config
	}
	var builds []build
	mcfg := core.DefaultConfig()
	for _, e := range machsuite.All() {
		e := e
		builds = append(builds, build{e.Name, func(cfg core.Config) (*workloads.Instance, error) {
			return e.Build(cfg, 2)
		}, mcfg})
	}
	dcfg := dnn.Config()
	for _, l := range dnn.Layers()[:2] {
		l := l
		builds = append(builds, build{l.Name, func(cfg core.Config) (*workloads.Instance, error) {
			return l.Build(cfg, dnn.Units)
		}, dcfg})
	}
	for _, b := range builds {
		b := b
		t.Run(b.name, func(t *testing.T) {
			t.Parallel()
			run := func(noSkip bool) *core.Stats {
				cfg := b.cfg
				cfg.NoSkipAhead = noSkip
				inst, err := b.inst(cfg)
				if err != nil {
					t.Fatal(err)
				}
				stats, err := inst.Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return stats
			}
			off, on := run(true), run(false)
			if !reflect.DeepEqual(off, on) {
				t.Errorf("stats differ with skip-ahead:\n  off: %+v\n  on:  %+v", off, on)
			}
		})
	}
}

// TestSkipAheadExamples runs every example program (quickstart,
// stencil, spmv, classifier) with skipping off and on: identical
// statistics and byte-identical memory, on top of each example's own
// golden-model check.
func TestSkipAheadExamples(t *testing.T) {
	run := func(noSkip bool) map[string]struct {
		mem   *mem.Memory
		stats *core.Stats
	} {
		exs, err := programs.All()
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]struct {
			mem   *mem.Memory
			stats *core.Stats
		})
		for _, e := range exs {
			e.Cfg.NoSkipAhead = noSkip
			m, s, err := e.Run()
			if err != nil {
				t.Fatalf("%s (noSkip=%v): %v", e.Name, noSkip, err)
			}
			out[e.Name] = struct {
				mem   *mem.Memory
				stats *core.Stats
			}{m, s}
		}
		return out
	}
	off, on := run(true), run(false)
	for name, o := range off {
		n := on[name]
		if !reflect.DeepEqual(o.stats, n.stats) {
			t.Errorf("%s: stats differ with skip-ahead:\n  off: %+v\n  on:  %+v", name, o.stats, n.stats)
		}
		// Diffs at/above ConfigSpace are the per-process configuration
		// slots, which differ between the two builds by design.
		if addr, diff := n.mem.FirstDiff(o.mem); diff && addr < core.ConfigSpace {
			t.Errorf("%s: memory differs at %#x with skip-ahead", name, addr)
		}
	}
}

// runTraced runs p on a fresh machine with tracing and metrics
// enabled and the memory pools seeded deterministically, returning the
// machine and statistics.
func runTraced(t *testing.T, cfg core.Config, p *core.Program, seed int64) (*core.Machine, *core.Stats) {
	t.Helper()
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.EnableTrace(1 << 20)
	m.EnableMetrics(obs.New(0, obs.Options{}))
	line := make([]byte, 64)
	irng := rand.New(rand.NewSource(seed + 1000))
	for _, base := range progen.MemPools {
		irng.Read(line)
		m.Sys.Mem.Write(base, line)
	}
	stats, err := m.Run(p)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return m, stats
}

// metricsDump marshals the machine's metrics, failing on conservation
// violations first — the byte-for-byte diffs below compare only dumps
// that are individually sound.
func metricsDump(t *testing.T, m *core.Machine) []byte {
	t.Helper()
	d := m.MetricsDump()
	if err := obs.CheckConservation(d); err != nil {
		t.Error(err)
	}
	data, err := d.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSkipAheadTraces runs generated programs with skipping off and on
// and compares statistics, memory images, and the full execution trace
// (activity lanes and stream lifetime spans). At least one run must
// actually skip, or the optimization is vacuous.
func TestSkipAheadTraces(t *testing.T) {
	cfg := core.DefaultConfig()
	var skipped uint64
	for seed := int64(0); seed < 20; seed++ {
		p, ports, err := progen.Addpair(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		for _, c := range progen.Commands(rng, ports) {
			p.Emit(c)
		}
		if err := p.Err(); err != nil {
			t.Fatal(err)
		}
		fixed, _, err := fix.Fix(p, cfg)
		if err != nil {
			t.Fatal(err)
		}

		offCfg, onCfg := cfg, cfg
		offCfg.NoSkipAhead = true
		mOff, sOff := runTraced(t, offCfg, fixed, seed)
		mOn, sOn := runTraced(t, onCfg, fixed, seed)
		skipped += mOn.SkippedCycles()

		if !reflect.DeepEqual(sOff, sOn) {
			t.Errorf("seed %d: stats differ with skip-ahead:\n  off: %+v\n  on:  %+v", seed, sOff, sOn)
		}
		if addr, diff := mOn.Sys.Mem.FirstDiff(mOff.Sys.Mem); diff {
			t.Errorf("seed %d: memory differs at %#x with skip-ahead", seed, addr)
		}
		if !reflect.DeepEqual(mOff.Trace().Spans(), mOn.Trace().Spans()) {
			t.Errorf("seed %d: stream lifetime spans differ with skip-ahead", seed)
		}
		if off, on := mOff.Trace().Gantt(100), mOn.Trace().Gantt(100); off != on {
			t.Errorf("seed %d: activity lanes differ with skip-ahead:\noff:\n%son:\n%s", seed, off, on)
		}
		if off, on := metricsDump(t, mOff), metricsDump(t, mOn); !bytes.Equal(off, on) {
			t.Errorf("seed %d: metrics dump differs with skip-ahead:\noff:\n%son:\n%s", seed, off, on)
		}
	}
	if skipped == 0 {
		t.Error("no run skipped a single cycle; skip-ahead never engaged")
	}
}

// TestSkipAheadUnderFaults runs generated programs under the delay and
// stall fault profiles with skipping off and on. The delay profile
// draws randomness per accepted request, so skip-ahead stays active and
// must preserve the exact fault schedule; the stall profile draws per
// engine-cycle, so the machine must disable skipping itself (and still
// match trivially).
func TestSkipAheadUnderFaults(t *testing.T) {
	cfg := core.DefaultConfig()
	for _, profile := range []string{"delay", "stall"} {
		profile := profile
		t.Run(profile, func(t *testing.T) {
			for seed := int64(0); seed < 10; seed++ {
				p, ports, err := progen.Addpair(cfg)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(seed))
				for _, c := range progen.Commands(rng, ports) {
					p.Emit(c)
				}
				if err := p.Err(); err != nil {
					t.Fatal(err)
				}
				fixed, _, err := fix.Fix(p, cfg)
				if err != nil {
					t.Fatal(err)
				}
				fc, err := faults.Profile(profile, seed*17+3)
				if err != nil {
					t.Fatal(err)
				}

				run := func(noSkip bool) (*core.Machine, *core.Stats, faults.Stats) {
					c := cfg
					c.NoSkipAhead = noSkip
					c.Faults = &fc
					m, s := runTraced(t, c, fixed, seed)
					return m, s, m.FaultStats()
				}
				mOff, sOff, fOff := run(true)
				mOn, sOn, fOn := run(false)

				if !reflect.DeepEqual(sOff, sOn) {
					t.Errorf("seed %d: stats differ with skip-ahead under %s faults:\n  off: %+v\n  on:  %+v",
						seed, profile, sOff, sOn)
				}
				if fOff != fOn {
					t.Errorf("seed %d: fault schedule differs with skip-ahead under %s:\n  off: %+v\n  on:  %+v",
						seed, profile, fOff, fOn)
				}
				if addr, diff := mOn.Sys.Mem.FirstDiff(mOff.Sys.Mem); diff {
					t.Errorf("seed %d: memory differs at %#x under %s faults", seed, addr, profile)
				}
				if off, on := metricsDump(t, mOff), metricsDump(t, mOn); !bytes.Equal(off, on) {
					t.Errorf("seed %d: metrics dump differs with skip-ahead under %s faults", seed, profile)
				}
				if profile == "stall" && mOn.SkippedCycles() != 0 {
					t.Errorf("seed %d: skipped %d cycles under per-cycle stall draws; skip must self-disable",
						seed, mOn.SkippedCycles())
				}
			}
		})
	}
}
