package core

import (
	"fmt"
	"sync"
	"testing"

	"softbrain/internal/dfg"
	"softbrain/internal/isa"
)

// TestConcurrentMachines runs independent machines in parallel
// goroutines. The simulator itself is single-threaded (Cluster steps
// its units in lockstep), but users may simulate separate machines
// concurrently — sweeps do — and the only shared state allowed between
// machines is the package-global configuration-slot allocator. Under
// `go test -race` this smoke test keeps that property honest.
func TestConcurrentMachines(t *testing.T) {
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cfg := DefaultConfig()
			m, err := NewMachine(cfg)
			if err != nil {
				errs <- err
				return
			}

			b := dfg.NewBuilder(fmt.Sprintf("sum%d", w))
			a := b.Input("A", 1)
			v := b.Input("B", 1)
			b.Output("C", b.N(dfg.Add(64), a.W(0), v.W(0)))
			g, err := b.Build()
			if err != nil {
				errs <- err
				return
			}

			const n, aAddr, bAddr, rAddr = 32, 0x1000, 0x2000, 0x3000
			for i := uint64(0); i < n; i++ {
				m.Sys.Mem.WriteU64(aAddr+8*i, i)
				m.Sys.Mem.WriteU64(bAddr+8*i, 100*uint64(w)+i)
			}
			p := NewProgram(g.Name)
			p.CompileAndConfigure(cfg.Fabric, g)
			p.Emit(isa.MemPort{Src: isa.Linear(aAddr, n*8), Dst: p.In("A")})
			p.Emit(isa.MemPort{Src: isa.Linear(bAddr, n*8), Dst: p.In("B")})
			p.Emit(isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(rAddr, n*8)})
			p.Emit(isa.BarrierAll{})

			if _, err := m.Run(p); err != nil {
				errs <- fmt.Errorf("worker %d: %w", w, err)
				return
			}
			for i := uint64(0); i < n; i++ {
				want := i + 100*uint64(w) + i
				if got := m.Sys.Mem.ReadU64(rAddr + 8*i); got != want {
					errs <- fmt.Errorf("worker %d: r[%d] = %d, want %d", w, i, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
