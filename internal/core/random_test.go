package core

import (
	"fmt"
	"math/rand"
	"testing"

	"softbrain/internal/dfg"
	"softbrain/internal/isa"
)

// TestRandomProgramsMatchEvaluator is the end-to-end property test: for
// random schedulable DFGs and random input data, a generated stream-
// dataflow program (memory and constant streams in, memory stores out)
// must produce exactly what the functional evaluator produces. It
// covers the compiler, dispatcher, engines, ports and CGRA together.
func TestRandomProgramsMatchEvaluator(t *testing.T) {
	cfg := DefaultConfig()
	trials := 25
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		if err := runRandomProgram(cfg, rng); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func runRandomProgram(cfg Config, rng *rand.Rand) error {
	g, err := randomStreamableGraph(rng)
	if err != nil {
		return err
	}
	instances := uint64(8 + rng.Intn(120))

	m, err := NewMachine(cfg)
	if err != nil {
		return err
	}

	// Generate input data: one array per input port, or a constant.
	type inSrc struct {
		constVal uint64
		useConst bool
		addr     uint64
		data     []uint64
	}
	base := uint64(0x10000)
	alloc := func(words uint64) uint64 {
		a := base
		base += (words*8 + 63) &^ 63
		return a
	}
	srcs := make([]inSrc, len(g.Ins))
	for pi, in := range g.Ins {
		words := instances * uint64(in.Width)
		if in.Width == 1 && rng.Intn(3) == 0 {
			srcs[pi] = inSrc{useConst: true, constVal: uint64(rng.Intn(1000))}
			continue
		}
		s := inSrc{addr: alloc(words), data: make([]uint64, words)}
		for i := range s.data {
			s.data[i] = uint64(rng.Intn(10000))
		}
		for i, v := range s.data {
			m.Sys.Mem.WriteU64(s.addr+uint64(8*i), v)
		}
		srcs[pi] = s
	}
	outAddrs := make([]uint64, len(g.Outs))
	for po, out := range g.Outs {
		outAddrs[po] = alloc(instances * uint64(out.Width()))
	}

	p := NewProgram("random")
	p.CompileAndConfigure(cfg.Fabric, g)
	for pi, in := range g.Ins {
		if srcs[pi].useConst {
			p.Emit(isa.ConstPort{Value: srcs[pi].constVal, Elem: isa.Elem64, Count: instances, Dst: p.In(in.Name)})
		} else {
			p.Emit(isa.MemPort{
				Src: isa.Linear(srcs[pi].addr, instances*uint64(in.Width)*8),
				Dst: p.In(in.Name),
			})
		}
	}
	for po, out := range g.Outs {
		p.Emit(isa.PortMem{
			Src: p.Out(out.Name),
			Dst: isa.Linear(outAddrs[po], instances*uint64(out.Width())*8),
		})
	}
	p.Emit(isa.BarrierAll{})
	if err := p.Err(); err != nil {
		// Some random graphs legitimately exceed fabric resources.
		return nil
	}

	if _, err := m.Run(p); err != nil {
		return fmt.Errorf("run: %w\n%s", err, g.String())
	}

	// Golden: feed the evaluator the same streams.
	ev, err := dfg.NewEvaluator(g)
	if err != nil {
		return err
	}
	cursor := make([]int, len(g.Ins))
	for inst := uint64(0); inst < instances; inst++ {
		ins := make([][]uint64, len(g.Ins))
		for pi, in := range g.Ins {
			ins[pi] = make([]uint64, in.Width)
			for w := 0; w < in.Width; w++ {
				if srcs[pi].useConst {
					ins[pi][w] = srcs[pi].constVal
				} else {
					ins[pi][w] = srcs[pi].data[cursor[pi]]
					cursor[pi]++
				}
			}
		}
		outs, err := ev.Eval(ins)
		if err != nil {
			return err
		}
		for po, out := range g.Outs {
			for w := 0; w < out.Width(); w++ {
				addr := outAddrs[po] + (inst*uint64(out.Width())+uint64(w))*8
				if got := m.Sys.Mem.ReadU64(addr); got != outs[po][w] {
					return fmt.Errorf("out %s inst %d word %d = %d, want %d\n%s",
						out.Name, inst, w, got, outs[po][w], g.String())
				}
			}
		}
	}
	return nil
}

// randomStreamableGraph builds a random DAG whose every output is
// 64-bit full-word (so memory comparison is exact) and whose ports fit
// the default fabric.
func randomStreamableGraph(rng *rand.Rand) (*dfg.Graph, error) {
	b := dfg.NewBuilder("rnd")
	nIns := 1 + rng.Intn(3)
	var avail []dfg.Ref
	for i := 0; i < nIns; i++ {
		w := 1 + rng.Intn(3)
		in := b.Input(fmt.Sprintf("I%d", i), w)
		for j := 0; j < w; j++ {
			avail = append(avail, in.W(j))
		}
	}
	ops := []dfg.Op{
		dfg.Add(64), dfg.Sub(64), dfg.Mul(64), dfg.Min(64), dfg.Max(64),
		dfg.Abs(64), dfg.Xor(64), dfg.And(64), dfg.Or(64), dfg.Sel(64),
		dfg.Eq(64), dfg.Lt(64), dfg.Add(16), dfg.Mul(16), dfg.RedAdd(16),
		dfg.Ashr(64),
	}
	n := 1 + rng.Intn(10)
	for i := 0; i < n; i++ {
		op := ops[rng.Intn(len(ops))]
		args := make([]dfg.Ref, op.Arity())
		for j := range args {
			if rng.Intn(6) == 0 {
				args[j] = dfg.ImmRef(uint64(rng.Intn(50)))
			} else {
				args[j] = avail[rng.Intn(len(avail))]
			}
		}
		avail = append(avail, b.N(op, args...))
	}
	// 1-2 output ports of width 1-2 from the most recent values.
	nOuts := 1 + rng.Intn(2)
	for o := 0; o < nOuts; o++ {
		w := 1 + rng.Intn(2)
		var srcs []dfg.Ref
		for k := 0; k < w; k++ {
			srcs = append(srcs, avail[len(avail)-1-rng.Intn(min(4, len(avail)))])
		}
		b.Output(fmt.Sprintf("O%d", o), srcs...)
	}
	return b.Build()
}

// TestMultiLevelIndirection chains two SD_IndPort_Port streams to gather
// a[b[c[i]]], the pattern Section 3.3 describes for indirect chaining.
func TestMultiLevelIndirection(t *testing.T) {
	cfg := DefaultConfig()
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bld := dfg.NewBuilder("passthrough")
	x := bld.Input("X", 1)
	bld.Output("Y", bld.N(dfg.Abs(64), x.W(0)))
	g := mustBuild(t, bld)

	const n = 32
	const cAddr, bAddr, aAddr, rAddr = 0x1000, 0x2000, 0x3000, 0x4000
	rng := rand.New(rand.NewSource(9))
	cArr := make([]uint32, n)
	bArr := make([]uint32, n)
	aArr := make([]int64, n)
	for i := 0; i < n; i++ {
		cArr[i] = uint32(rng.Intn(n))
		bArr[i] = uint32(rng.Intn(n))
		aArr[i] = int64(rng.Intn(2000) - 1000)
		m.Sys.Mem.WriteUint(cAddr+uint64(4*i), 4, uint64(cArr[i]))
		m.Sys.Mem.WriteUint(bAddr+uint64(4*i), 4, uint64(bArr[i]))
		m.Sys.Mem.WriteU64(aAddr+uint64(8*i), uint64(aArr[i]))
	}

	p := NewProgram("chain")
	p.CompileAndConfigure(cfg.Fabric, g)
	ind0 := p.IndirectIn(cfg.Fabric, 0)
	ind1 := p.IndirectIn(cfg.Fabric, 1)
	// c[i] into ind0; gather b[c[i]] into ind1; gather a[b[c[i]]] into X.
	p.Emit(isa.MemPort{Src: isa.Linear(cAddr, n*4), Dst: ind0})
	p.Emit(isa.IndPortPort{
		Idx: ind0, IdxElem: isa.Elem32, Offset: bAddr, Scale: 4,
		DataElem: isa.Elem32, Count: n, Dst: ind1,
	})
	p.Emit(isa.IndPortPort{
		Idx: ind1, IdxElem: isa.Elem32, Offset: aAddr, Scale: 8,
		DataElem: isa.Elem64, Count: n, Dst: p.In("X"),
	})
	p.Emit(isa.PortMem{Src: p.Out("Y"), Dst: isa.Linear(rAddr, n*8)})
	p.Emit(isa.BarrierAll{})

	if _, err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := aArr[bArr[cArr[i]]]
		if want < 0 {
			want = -want
		}
		if got := int64(m.Sys.Mem.ReadU64(rAddr + uint64(8*i))); got != want {
			t.Errorf("r[%d] = %d, want %d (a[b[c[%d]]])", i, got, want, i)
		}
	}
}
