// Cancellation-semantics audit for the context-bounded run path
// (RunContext / Cluster.RunContext): a canceled run returns the typed
// *CanceledError, leaves no goroutines behind, and abandoning a
// machine mid-run has no effect on later runs — a fresh machine
// re-running the same program is byte-identical to one that was never
// interrupted.
package core_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"softbrain/internal/core"
	"softbrain/internal/mem"
	"softbrain/internal/workloads"
	"softbrain/internal/workloads/dnn"
	"softbrain/internal/workloads/machsuite"
)

// buildGemm returns the gemm instance at a scale large enough to span
// many heartbeat strides (the goldens pin scale 3 at ~45k cycles), so
// a mid-run cancellation has room to land.
func buildGemm(t *testing.T) (*workloads.Instance, core.Config) {
	t.Helper()
	e, err := machsuite.Find("gemm")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	inst, err := e.Build(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	return inst, cfg
}

// runMachine executes one program on a fresh machine and returns the
// stats and the machine's memory for byte comparison.
func runMachine(t *testing.T, ctx context.Context, inst *workloads.Instance, cfg core.Config) (*core.Stats, *mem.Memory, error) {
	t.Helper()
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Init != nil {
		inst.Init(m.Sys.Mem)
	}
	stats, err := m.RunContext(ctx, inst.Progs[0])
	return stats, m.Sys.Mem, err
}

// cancelMidRun builds a machine for inst and cancels its context from
// the heartbeat callback, which only fires once the run is genuinely
// underway — a deterministic mid-run cancellation with no sleeps.
func cancelMidRun(t *testing.T, inst *workloads.Instance, cfg core.Config, cause error) error {
	t.Helper()
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	m.SetHeartbeat(0, func(r core.ProgressReport) {
		if r.Cycle > 0 {
			cancel(cause)
		}
	})
	if inst.Init != nil {
		inst.Init(m.Sys.Mem)
	}
	_, err = m.RunContext(ctx, inst.Progs[0])
	return err
}

func TestRunContextCancelTyped(t *testing.T) {
	inst, cfg := buildGemm(t)
	cause := errors.New("test: wall-clock budget spent")
	err := cancelMidRun(t, inst, cfg, cause)
	if err == nil {
		t.Fatal("canceled run returned nil error")
	}
	var ce *core.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("canceled run returned %T (%v), want *core.CanceledError", err, err)
	}
	if ce.Cycle == 0 {
		t.Error("mid-run cancellation reported cycle 0")
	}
	// The cause installed at cancellation time must survive unwrapping:
	// CanceledError carries context.Cause, so callers match on the
	// specific cause (sdserve's deadline/drain sentinels), not just the
	// generic context.Canceled.
	if !errors.Is(err, cause) {
		t.Errorf("errors.Is(err, cause) = false for %v", err)
	}
}

func TestRunContextPreCanceled(t *testing.T) {
	inst, cfg := buildGemm(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := runMachine(t, ctx, inst, cfg)
	var ce *core.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("pre-canceled run returned %T (%v), want *core.CanceledError", err, err)
	}
	if ce.Cycle != 0 {
		t.Errorf("pre-canceled run reported cycle %d, want 0", ce.Cycle)
	}
}

func TestRunContextDeadline(t *testing.T) {
	inst, cfg := buildGemm(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	_, _, err := runMachine(t, ctx, inst, cfg)
	var ce *core.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("deadline run returned %T (%v), want *core.CanceledError", err, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("errors.Is(err, context.DeadlineExceeded) = false for %v", err)
	}
}

// TestCancelRerunByteIdentical is the abandonment contract: canceling
// one machine mid-run must not perturb a later run on a fresh machine.
// The re-run's cycle count, full memory image, and golden verification
// must match an uninterrupted baseline.
func TestCancelRerunByteIdentical(t *testing.T) {
	inst, cfg := buildGemm(t)

	baseStats, baseMem, err := runMachine(t, context.Background(), inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cancelMidRun(t, inst, cfg, errors.New("test: abandon")); err == nil {
		t.Fatal("mid-run cancellation did not cancel")
	}
	reStats, reMem, err := runMachine(t, context.Background(), inst, cfg)
	if err != nil {
		t.Fatalf("re-run after cancellation failed: %v", err)
	}

	if reStats.Cycles != baseStats.Cycles {
		t.Errorf("re-run took %d cycles, uninterrupted baseline %d", reStats.Cycles, baseStats.Cycles)
	}
	if *reStats != *baseStats {
		t.Errorf("re-run stats diverged from baseline:\n got %+v\nwant %+v", *reStats, *baseStats)
	}
	if addr, diff := reMem.FirstDiff(baseMem); diff {
		t.Errorf("re-run memory differs from baseline at 0x%x", addr)
	}
	if inst.Check != nil {
		if err := inst.Check(reMem); err != nil {
			t.Errorf("re-run failed golden verification: %v", err)
		}
	}
}

// TestClusterCancelNoGoroutineLeak cancels a parallel cluster run
// (worker goroutine per unit) and checks both the typed error and that
// every worker is released.
func TestClusterCancelNoGoroutineLeak(t *testing.T) {
	l := dnn.Layers()[0]
	cfg := dnn.Config()
	inst, err := l.Build(cfg, dnn.Units)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	cl, err := core.NewCluster(cfg, inst.Units())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	cl.SetHeartbeat(0, func(r core.ProgressReport) {
		if r.Cycle > 0 {
			cancel(errors.New("test: cluster abandon"))
		}
	})
	if inst.Init != nil {
		inst.Init(cl.Mem)
	}
	_, err = cl.RunContext(ctx, inst.Progs)
	var ce *core.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("canceled cluster run returned %T (%v), want *core.CanceledError", err, err)
	}

	waitGoroutines(t, before)
}

// waitGoroutines polls until the goroutine count returns to the
// baseline (scheduler teardown is asynchronous), failing with a full
// stack dump if it never does.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutines leaked: %d before, %d after\n%s",
		baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}
