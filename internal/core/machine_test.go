package core

import (
	"errors"
	"strings"
	"testing"

	"softbrain/internal/cgra"
	"softbrain/internal/dfg"
	"softbrain/internal/isa"
)

// mustBuild finalizes a graph that the test constructed to be valid.
func mustBuild(t testing.TB, b *dfg.Builder) *dfg.Graph {
	t.Helper()
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// dotProdGraph is the Figure 3a/4 dot-product DFG.
func dotProdGraph(t testing.TB) *dfg.Graph {
	t.Helper()
	b := dfg.NewBuilder("dotprod")
	a := b.Input("A", 3)
	bb := b.Input("B", 3)
	var prods []dfg.Ref
	for i := 0; i < 3; i++ {
		prods = append(prods, b.N(dfg.Mul(64), a.W(i), bb.W(i)))
	}
	b.Output("C", b.ReduceTree(dfg.Add(64), prods...))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestFigure4DotProduct runs the paper's first example program: load
// a[0:n] and b[0:n] to ports, store the per-instance dot products, and
// barrier. Output must match the golden computation exactly.
func TestFigure4DotProduct(t *testing.T) {
	m, err := NewMachine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const n = 48 // words per input; 16 instances of width 3
	const aAddr, bAddr, rAddr = 0x1000, 0x2000, 0x3000
	for i := uint64(0); i < n; i++ {
		m.Sys.Mem.WriteU64(aAddr+8*i, i+1)
		m.Sys.Mem.WriteU64(bAddr+8*i, 2*i+3)
	}

	p := NewProgram("dotprod")
	p.CompileAndConfigure(m.Config().Fabric, dotProdGraph(t))
	p.Emit(isa.MemPort{Src: isa.Linear(aAddr, n*8), Dst: p.In("A")})
	p.Emit(isa.MemPort{Src: isa.Linear(bAddr, n*8), Dst: p.In("B")})
	p.Emit(isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(rAddr, n/3*8)})
	p.Emit(isa.BarrierAll{})

	stats, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n/3; i++ {
		var want uint64
		for j := uint64(0); j < 3; j++ {
			k := 3*i + j
			want += (k + 1) * (2*k + 3)
		}
		if got := m.Sys.Mem.ReadU64(rAddr + 8*i); got != want {
			t.Errorf("r[%d] = %d, want %d", i, got, want)
		}
	}
	if stats.Instances != n/3 {
		t.Errorf("Instances = %d, want %d", stats.Instances, n/3)
	}
	if stats.Cycles == 0 || stats.Commands != 4 {
		t.Errorf("stats look wrong: %+v", stats)
	}
}

// classifierGraph is the Figure 6 DFG: four 4-way 16-bit multipliers,
// reduction, accumulator with reset stream, sigmoid, 16-bit output.
func classifierGraph(t testing.TB) *dfg.Graph {
	t.Helper()
	b := dfg.NewBuilder("classifier")
	s := b.Input("S", 4)
	n := b.Input("N", 4)
	r := b.Input("R", 1)
	var reds []dfg.Ref
	for i := 0; i < 4; i++ {
		m := b.N(dfg.Mul(16), s.W(i), n.W(i))
		reds = append(reds, b.N(dfg.RedAdd(16), m))
	}
	sum := b.ReduceTree(dfg.Add(64), reds...)
	acc := b.N(dfg.Acc(64), sum, r.W(0))
	b.OutputElem("C", 2, b.N(dfg.Sig(16), acc))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// sigmoid16 mirrors the hardware's Q8.8 piecewise sigmoid for goldens.
func sigmoid16(x int64) uint16 {
	switch {
	case x <= -1024:
		return 0
	case x >= 1024:
		return 256
	default:
		return uint16(128 + x/8)
	}
}

// TestFigure6Classifier runs the full neural classifier program: weights
// stream from memory, input neurons stage in the scratchpad behind a
// scratch-write barrier, the accumulator is driven by a constant reset
// stream, partial sums are cleaned, and 16-bit outputs stored.
func TestFigure6Classifier(t *testing.T) {
	m, err := NewMachine(DNNConfig())
	if err != nil {
		t.Fatal(err)
	}
	const (
		Ni = 64 // input neurons
		Nn = 4  // output neurons
	)
	const elemsPerInst = 16 // 4 words x 4 lanes of 16 bits
	instPerNeuron := Ni / elemsPerInst

	const synAddr, inAddr, outAddr = 0x10000, 0x20000, 0x30000
	synapse := make([][]int16, Nn)
	neuron := make([]int16, Ni)
	for i := range neuron {
		neuron[i] = int16(i%7 - 3)
		m.Sys.Mem.WriteUint(inAddr+2*uint64(i), 2, uint64(uint16(neuron[i])))
	}
	for o := range synapse {
		synapse[o] = make([]int16, Ni)
		for i := range synapse[o] {
			w := int16((o*31+i*13)%11 - 5)
			synapse[o][i] = w
			m.Sys.Mem.WriteUint(synAddr+uint64(o*Ni*2+i*2), 2, uint64(uint16(w)))
		}
	}

	p := NewProgram("classifier")
	p.CompileAndConfigure(m.Config().Fabric, classifierGraph(t))
	// Load all synapses to Port_S and input neurons to the scratchpad.
	p.Emit(isa.MemPort{Src: isa.Linear(synAddr, Nn*Ni*2), Dst: p.In("S")})
	p.Emit(isa.MemScratch{Src: isa.Linear(inAddr, Ni*2), ScratchAddr: 0})
	p.Emit(isa.BarrierScratchWr{})
	// Re-read the neurons from scratch once per output neuron.
	p.Emit(isa.ScratchPort{Src: isa.Repeat(0, Ni*2, Nn), Dst: p.In("N")})
	for n := 0; n < Nn; n++ {
		p.Emit(isa.ConstPort{Value: 0, Elem: isa.Elem64, Count: uint64(instPerNeuron - 1), Dst: p.In("R")})
		p.Emit(isa.ConstPort{Value: 1, Elem: isa.Elem64, Count: 1, Dst: p.In("R")})
		p.Emit(isa.CleanPort{Src: p.Out("C"), Elem: isa.Elem16, Count: uint64(instPerNeuron - 1)})
		p.Emit(isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(outAddr+2*uint64(n), 2)})
		p.Delay(4)
	}
	p.Emit(isa.BarrierAll{})

	stats, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	for o := 0; o < Nn; o++ {
		var sum int64
		for i := 0; i < Ni; i++ {
			sum += int64(synapse[o][i]) * int64(neuron[i])
		}
		want := sigmoid16(sum)
		got := uint16(m.Sys.Mem.ReadUint(outAddr+2*uint64(o), 2))
		if got != want {
			t.Errorf("neuron_n[%d] = %d, want %d (sum %d)", o, got, want, sum)
		}
	}
	if stats.Instances != uint64(Nn*instPerNeuron) {
		t.Errorf("Instances = %d, want %d", stats.Instances, Nn*instPerNeuron)
	}
	if stats.ScratchBytesWrit == 0 || stats.ScratchBytesRead == 0 {
		t.Error("scratchpad was not exercised")
	}
}

// TestRecurrenceReduction sums a long vector with SD_Port_Port feeding
// the accumulated value back per block.
func TestRecurrenceReduction(t *testing.T) {
	m, err := NewMachine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// DFG: acc += redadd of 4 words per instance; recurrence not needed
	// for direct accumulation, so use Port_Port for a two-phase sum:
	// phase 1 reduces blocks, phase 2 re-consumes block sums.
	b := dfg.NewBuilder("blocksum")
	v := b.Input("V", 4)
	r := b.Input("R", 1)
	sum := b.ReduceTree(dfg.Add(64), v.W(0), v.W(1), v.W(2), v.W(3))
	b.Output("S", b.N(dfg.Acc(64), sum, r.W(0)))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	const n = 64 // words
	const vAddr, rAddr = 0x1000, 0x8000
	var want uint64
	for i := uint64(0); i < n; i++ {
		m.Sys.Mem.WriteU64(vAddr+8*i, i*i+1)
		want += i*i + 1
	}
	blocks := uint64(n / 4)

	p := NewProgram("blocksum")
	p.CompileAndConfigure(m.Config().Fabric, g)
	p.Emit(isa.MemPort{Src: isa.Linear(vAddr, n*8), Dst: p.In("V")})
	// Never reset within phase 1; the final value is the total.
	p.Emit(isa.ConstPort{Value: 0, Elem: isa.Elem64, Count: blocks, Dst: p.In("R")})
	p.Emit(isa.CleanPort{Src: p.Out("S"), Elem: isa.Elem64, Count: blocks - 1})
	p.Emit(isa.PortMem{Src: p.Out("S"), Dst: isa.Linear(rAddr, 8)})
	p.Emit(isa.BarrierAll{})
	if _, err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	if got := m.Sys.Mem.ReadU64(rAddr); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
}

// TestPortPortRecurrence exercises the recurrence stream engine inside a
// full program: stream data out of one DFG port and back into another.
func TestPortPortRecurrence(t *testing.T) {
	m, err := NewMachine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// y = (a+b); second pass: z = y*2 via recurrence of Y into port A2.
	b := dfg.NewBuilder("twopass")
	a := b.Input("A", 1)
	bb := b.Input("B", 1)
	b.Output("Y", b.N(dfg.Add(64), a.W(0), bb.W(0)))
	g := mustBuild(t, b)

	const n = 16
	const aAddr, bAddr, zAddr = 0x1000, 0x2000, 0x3000
	for i := uint64(0); i < n; i++ {
		m.Sys.Mem.WriteU64(aAddr+8*i, 10+i)
		m.Sys.Mem.WriteU64(bAddr+8*i, 100*i)
	}
	p := NewProgram("twopass")
	p.CompileAndConfigure(m.Config().Fabric, g)
	// Pass 1: y = a + b -> recurrence back to port A; b gets a constant 5.
	p.Emit(isa.MemPort{Src: isa.Linear(aAddr, n*8), Dst: p.In("A")})
	p.Emit(isa.MemPort{Src: isa.Linear(bAddr, n*8), Dst: p.In("B")})
	p.Emit(isa.PortPort{Src: p.Out("Y"), Elem: isa.Elem64, Count: n, Dst: p.In("A")})
	p.Emit(isa.ConstPort{Value: 5, Elem: isa.Elem64, Count: n, Dst: p.In("B")})
	p.Emit(isa.PortMem{Src: p.Out("Y"), Dst: isa.Linear(zAddr, n*8)})
	p.Emit(isa.BarrierAll{})
	if _, err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		want := (10 + i) + 100*i + 5
		if got := m.Sys.Mem.ReadU64(zAddr + 8*i); got != want {
			t.Errorf("z[%d] = %d, want %d", i, got, want)
		}
	}
}

// TestDeadlockDetection reproduces footnote 1 of Section 3.3: a
// recurrence longer than the destination port's buffering deadlocks, and
// the machine reports it instead of hanging.
func TestDeadlockDetection(t *testing.T) {
	cfg := DefaultConfig()
	f := cgra.NewFabric(5, 4, dfg.FUAlu, dfg.FUMul)
	for i := range f.InPorts {
		if !f.InPorts[i].Indirect {
			f.InPorts[i].Depth = f.InPorts[i].Width // minimal buffering
		}
	}
	cfg.Fabric = f
	cfg.WatchdogCycles = 2000
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := dfg.NewBuilder("loop")
	a := b.Input("A", 1)
	bb := b.Input("B", 1)
	b.Output("Y", b.N(dfg.Add(64), a.W(0), bb.W(0)))
	g := mustBuild(t, b)

	const n = 64
	p := NewProgram("deadlock")
	p.CompileAndConfigure(cfg.Fabric, g)
	p.Emit(isa.MemPort{Src: isa.Linear(0, n*8), Dst: p.In("B")})
	// The recurrence must produce the first A, but A only arrives after
	// Y fires: a cyclic wait the tiny port cannot absorb.
	p.Emit(isa.PortPort{Src: p.Out("Y"), Elem: isa.Elem64, Count: n, Dst: p.In("A")})
	p.Emit(isa.PortMem{Src: p.Out("Y"), Dst: isa.Linear(0x9000, n*8)})
	p.Emit(isa.BarrierAll{})

	_, err = m.Run(p)
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
}

// TestProgramErrors checks construction-time validation.
func TestProgramErrors(t *testing.T) {
	p := NewProgram("bad")
	p.In("X") // before Configure
	if p.Err() == nil {
		t.Error("In before Configure not reported")
	}
	m, _ := NewMachine(DefaultConfig())
	if err := m.Load(p); err == nil {
		t.Error("Load accepted a broken program")
	}

	p2 := NewProgram("bad2")
	p2.CompileAndConfigure(DefaultConfig().Fabric, dotProdGraph(t))
	p2.In("NOPE")
	if p2.Err() == nil {
		t.Error("unknown port name not reported")
	}
	p3 := NewProgram("bad3")
	p3.Emit(isa.MemPort{Src: isa.Affine{AccessSize: 1 << 22, Stride: 1, Strides: 1}, Dst: 0})
	if p3.Err() == nil {
		t.Error("unencodable command not reported")
	}
}

// TestClusterSharesBandwidth: two units each streaming from memory take
// longer per unit than one unit alone, because the memory interface
// accepts one request per cycle in total.
func TestClusterSharesBandwidth(t *testing.T) {
	mkProg := func(f *cgra.Fabric, base uint64) *Program {
		b := dfg.NewBuilder("copy")
		a := b.Input("A", 8)
		var outs []dfg.Ref
		for i := 0; i < 8; i++ {
			outs = append(outs, b.N(dfg.Add(64), a.W(i), dfg.ImmRef(0)))
		}
		b.Output("Y", outs...)
		g := mustBuild(t, b)
		p := NewProgram("copy")
		p.CompileAndConfigure(f, g)
		const n = 4096
		p.Emit(isa.MemPort{Src: isa.Linear(base, n), Dst: p.In("A")})
		p.Emit(isa.PortMem{Src: p.Out("Y"), Dst: isa.Linear(base+0x100000, n)})
		p.Emit(isa.BarrierAll{})
		return p
	}
	cfg := DefaultConfig()
	// Make DRAM bandwidth the bottleneck so sharing is visible.
	cfg.Mem.MissInterval = 16
	single, err := NewCluster(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := single.Run([]*Program{mkProg(cfg.Fabric, 0x100000)})
	if err != nil {
		t.Fatal(err)
	}
	quad, err := NewCluster(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := quad.Run([]*Program{
		mkProg(cfg.Fabric, 0x1000000), mkProg(cfg.Fabric, 0x2000000),
		mkProg(cfg.Fabric, 0x3000000), mkProg(cfg.Fabric, 0x4000000),
	})
	if err != nil {
		t.Fatal(err)
	}
	if s4.Cycles <= s1.Cycles+s1.Cycles/2 {
		t.Errorf("4 units (%d cycles) should contend vs 1 unit (%d cycles)", s4.Cycles, s1.Cycles)
	}
	if s4.Instances != 4*s1.Instances {
		t.Errorf("instances: %d vs 4x%d", s4.Instances, s1.Instances)
	}
}

// TestStatsAdd checks aggregation rules.
func TestStatsAdd(t *testing.T) {
	a := &Stats{Cycles: 10, FUOps: 5, Commands: 2}
	b := &Stats{Cycles: 30, FUOps: 7, Commands: 1}
	a.Add(b)
	if a.Cycles != 30 || a.FUOps != 12 || a.Commands != 3 {
		t.Errorf("Add wrong: %+v", a)
	}
}

// TestExecutionTrace runs a traced program and checks the recorder saw
// lanes and stream lifetimes (the Figure 4(b) rendering path).
func TestExecutionTrace(t *testing.T) {
	m, err := NewMachine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.EnableTrace(1 << 16)
	const n = 24
	for i := uint64(0); i < n; i++ {
		m.Sys.Mem.WriteU64(0x1000+8*i, i)
		m.Sys.Mem.WriteU64(0x2000+8*i, i)
	}
	p := NewProgram("traced")
	p.CompileAndConfigure(m.Config().Fabric, dotProdGraph(t))
	p.Emit(isa.MemPort{Src: isa.Linear(0x1000, n*8), Dst: p.In("A")})
	p.Emit(isa.MemPort{Src: isa.Linear(0x2000, n*8), Dst: p.In("B")})
	p.Emit(isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x3000, n/3*8)})
	p.Emit(isa.BarrierAll{})
	if _, err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	spans := m.Trace().Spans()
	if len(spans) != 4 { // config + 2 loads + 1 store
		t.Fatalf("%d spans, want 4", len(spans))
	}
	for _, s := range spans {
		if !s.Done || s.Completed < s.Issued || s.Issued < s.Enqueued {
			t.Errorf("inconsistent span %+v", s)
		}
	}
	g := m.Trace().Gantt(80)
	for _, lane := range []string{"core", "MSE", "CGRA"} {
		if !strings.Contains(g, lane) {
			t.Errorf("Gantt missing lane %s:\n%s", lane, g)
		}
	}
}

// TestControlInstructionReduction checks the claim around Figure 6: the
// stream-dataflow version of the classifier executes roughly a factor
// of Ni fewer control instructions than the scalar loop (which runs
// ~Ni*Nn iterations of several instructions each).
func TestControlInstructionReduction(t *testing.T) {
	m, err := NewMachine(DNNConfig())
	if err != nil {
		t.Fatal(err)
	}
	const Ni, Nn = 256, 8
	p := NewProgram("classifier")
	p.CompileAndConfigure(m.Config().Fabric, classifierGraph(t))
	p.Emit(isa.MemPort{Src: isa.Linear(0x10000, Nn*Ni*2), Dst: p.In("S")})
	p.Emit(isa.MemScratch{Src: isa.Linear(0x20000, Ni*2), ScratchAddr: 0})
	p.Emit(isa.BarrierScratchWr{})
	p.Emit(isa.ScratchPort{Src: isa.Repeat(0, Ni*2, Nn), Dst: p.In("N")})
	inst := uint64(Ni / 16)
	for n := 0; n < Nn; n++ {
		p.Emit(isa.ConstPort{Value: 0, Elem: isa.Elem64, Count: inst - 1, Dst: p.In("R")})
		p.Emit(isa.ConstPort{Value: 1, Elem: isa.Elem64, Count: 1, Dst: p.In("R")})
		p.Emit(isa.CleanPort{Src: p.Out("C"), Elem: isa.Elem16, Count: inst - 1})
		p.Emit(isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x30000+2*uint64(n), 2)})
	}
	p.Emit(isa.BarrierAll{})
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	words := p.CommandWords()
	scalarInstrs := uint64(Ni) * Nn * 6 // mul, add, two index ops, compare, branch
	ratio := float64(scalarInstrs) / float64(words)
	t.Logf("control instructions: %d stream-command words vs ~%d scalar (%.0fx reduction)",
		words, scalarInstrs, ratio)
	if ratio < Ni/4 {
		t.Errorf("instruction reduction only %.0fx; paper claims roughly Ni=%d", ratio, Ni)
	}
}
