// Span-retirement equivalence: batched span retirement (Machine.retireSpan,
// sim.Kernel.RetireSpan, docs/SIMKERNEL.md) is a host-performance
// optimization with zero architectural effect, layered on top of the
// wake-set scheduler. Every test here runs the same program in three
// scheduling modes — per-cycle (NoSkipAhead), wake-set only
// (NoSpanRetire), and wake-set with span retirement — and demands
// identical results: statistics, memory images, fault schedules, and
// observability dumps alike. FuzzSpanEquivalence extends the seeds
// under `make fuzz-smoke`.
package core_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"softbrain/internal/core"
	"softbrain/internal/faults"
	"softbrain/internal/fix"
	"softbrain/internal/progen"
	"softbrain/internal/workloads"
	"softbrain/internal/workloads/dnn"
	"softbrain/internal/workloads/ext"
	"softbrain/internal/workloads/machsuite"
)

// schedModes are the three scheduling configurations under test, from
// reference semantics to fully event-driven.
var schedModes = []struct {
	name         string
	noSkip       bool
	noSpanRetire bool
}{
	{"per-cycle", true, true},
	{"wake-set", false, true},
	{"spans", false, false},
}

// applyMode returns cfg with the mode's scheduling switches set.
func applyMode(cfg core.Config, mode int) core.Config {
	cfg.NoSkipAhead = schedModes[mode].noSkip
	cfg.NoSpanRetire = schedModes[mode].noSpanRetire
	return cfg
}

// TestSpanEquivalenceWorkloads runs every MachSuite workload, the
// extension workloads, and a DNN layer slice in all three scheduling
// modes: statistics and final memory images must be identical, each
// workload's own golden-model check must pass, and span retirement
// must actually engage somewhere in the suite (or the mode is
// vacuous).
func TestSpanEquivalenceWorkloads(t *testing.T) {
	type build struct {
		name string
		inst func(cfg core.Config) (*workloads.Instance, error)
		cfg  core.Config
	}
	var builds []build
	mcfg := core.DefaultConfig()
	for _, e := range machsuite.All() {
		e := e
		builds = append(builds, build{e.Name, func(cfg core.Config) (*workloads.Instance, error) {
			return e.Build(cfg, 2)
		}, mcfg})
	}
	for _, e := range ext.All() {
		e := e
		builds = append(builds, build{e.Name, func(cfg core.Config) (*workloads.Instance, error) {
			return e.Build(cfg, 2)
		}, mcfg})
	}
	dcfg := dnn.Config()
	for _, l := range dnn.Layers()[:2] {
		l := l
		builds = append(builds, build{l.Name, func(cfg core.Config) (*workloads.Instance, error) {
			return l.Build(cfg, dnn.Units)
		}, dcfg})
	}
	var spansRetired atomic.Uint64
	t.Run("suite", func(t *testing.T) {
		for _, b := range builds {
			b := b
			t.Run(b.name, func(t *testing.T) {
				t.Parallel()
				type result struct {
					stats *core.Stats
					cl    *core.Cluster
				}
				runMode := func(mode int) result {
					cfg := applyMode(b.cfg, mode)
					inst, err := b.inst(cfg)
					if err != nil {
						t.Fatal(err)
					}
					cl, err := core.NewCluster(cfg, inst.Units())
					if err != nil {
						t.Fatal(err)
					}
					if inst.Init != nil {
						inst.Init(cl.Mem)
					}
					stats, err := cl.Run(inst.Progs)
					if err != nil {
						t.Fatalf("%s: %v", schedModes[mode].name, err)
					}
					if inst.Check != nil {
						if err := inst.Check(cl.Mem); err != nil {
							t.Fatalf("%s: %v", schedModes[mode].name, err)
						}
					}
					return result{stats, cl}
				}
				ref := runMode(0)
				for mode := 1; mode < len(schedModes); mode++ {
					got := runMode(mode)
					if !reflect.DeepEqual(ref.stats, got.stats) {
						t.Errorf("stats differ between %s and %s:\n  %s: %+v\n  %s: %+v",
							schedModes[0].name, schedModes[mode].name,
							schedModes[0].name, ref.stats, schedModes[mode].name, got.stats)
					}
					// Diffs at/above ConfigSpace are the per-process
					// configuration slots, which differ between the
					// per-mode builds by design.
					if addr, diff := got.cl.Mem.FirstDiff(ref.cl.Mem); diff && addr < core.ConfigSpace {
						t.Errorf("memory differs at %#x between %s and %s",
							addr, schedModes[0].name, schedModes[mode].name)
					}
					if mode == 2 {
						spansRetired.Add(got.cl.SchedStats().Spans)
					}
				}
			})
		}
	})
	if spansRetired.Load() == 0 {
		t.Error("no workload retired a single span; span retirement never engaged")
	}
}

// runPlain runs p on a fresh machine with the memory pools seeded
// deterministically and no observers attached — the configuration
// where span retirement is live.
func runPlain(t *testing.T, cfg core.Config, p *core.Program, seed int64) (*core.Machine, *core.Stats) {
	t.Helper()
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	line := make([]byte, 64)
	irng := rand.New(rand.NewSource(seed + 1000))
	for _, base := range progen.MemPools {
		irng.Read(line)
		m.Sys.Mem.Write(base, line)
	}
	stats, err := m.Run(p)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return m, stats
}

// genProgram builds the seeded generated program the skip-ahead tests
// use: the addpair dataflow under a random command stream, passed
// through sdfix for legal barriers.
func genProgram(t *testing.T, cfg core.Config, seed int64) *core.Program {
	t.Helper()
	p, ports, err := progen.Addpair(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for _, c := range progen.Commands(rng, ports) {
		p.Emit(c)
	}
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	fixed, _, err := fix.Fix(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fixed
}

// TestSpanEquivalenceSeeds runs generated programs across the three
// scheduling modes and compares statistics and memory images; then the
// same programs with the observability layer attached in each mode,
// demanding byte-identical metrics dumps (attaching metrics forces
// per-cycle attribution, which must itself be mode-independent). At
// least one plain run must retire a span.
func TestSpanEquivalenceSeeds(t *testing.T) {
	cfg := core.DefaultConfig()
	var spans uint64
	for seed := int64(0); seed < 20; seed++ {
		fixed := genProgram(t, cfg, seed)

		mRef, sRef := runPlain(t, applyMode(cfg, 0), fixed, seed)
		for mode := 1; mode < len(schedModes); mode++ {
			m, s := runPlain(t, applyMode(cfg, mode), fixed, seed)
			if !reflect.DeepEqual(sRef, s) {
				t.Errorf("seed %d: stats differ between %s and %s:\n  %+v\n  %+v",
					seed, schedModes[0].name, schedModes[mode].name, sRef, s)
			}
			if addr, diff := m.Sys.Mem.FirstDiff(mRef.Sys.Mem); diff {
				t.Errorf("seed %d: memory differs at %#x between %s and %s",
					seed, addr, schedModes[0].name, schedModes[mode].name)
			}
			if mode == 2 {
				spans += m.SchedStats().Spans
			}
		}

		var dumpRef []byte
		for mode := range schedModes {
			m, _ := runTraced(t, applyMode(cfg, mode), fixed, seed)
			dump := metricsDump(t, m)
			if mode == 0 {
				dumpRef = dump
				continue
			}
			if !bytes.Equal(dumpRef, dump) {
				t.Errorf("seed %d: metrics dump differs between %s and %s",
					seed, schedModes[0].name, schedModes[mode].name)
			}
		}
	}
	if spans == 0 {
		t.Error("no generated run retired a single span; span retirement never engaged")
	}
}

// TestSpanEquivalenceUnderFaults runs generated programs under the
// delay, stall, and bitflip fault profiles in all three scheduling
// modes: identical statistics, fault schedules, and memory images.
// The stall profile draws randomness per engine-cycle, so the machine
// must force per-cycle stepping itself (spans included); bitflips
// corrupt data, but deterministically, so the corruption must be
// identical across modes.
func TestSpanEquivalenceUnderFaults(t *testing.T) {
	cfg := core.DefaultConfig()
	for _, profile := range []string{"delay", "stall", "bitflip"} {
		profile := profile
		t.Run(profile, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 7; seed++ {
				fixed := genProgram(t, cfg, seed)
				fc, err := faults.Profile(profile, seed*17+3)
				if err != nil {
					t.Fatal(err)
				}
				run := func(mode int) (*core.Machine, *core.Stats, faults.Stats) {
					c := applyMode(cfg, mode)
					c.Faults = &fc
					m, s := runPlain(t, c, fixed, seed)
					return m, s, m.FaultStats()
				}
				mRef, sRef, fRef := run(0)
				for mode := 1; mode < len(schedModes); mode++ {
					m, s, f := run(mode)
					if !reflect.DeepEqual(sRef, s) {
						t.Errorf("seed %d: stats differ between %s and %s under %s:\n  %+v\n  %+v",
							seed, schedModes[0].name, schedModes[mode].name, profile, sRef, s)
					}
					if fRef != f {
						t.Errorf("seed %d: fault schedule differs between %s and %s under %s:\n  %+v\n  %+v",
							seed, schedModes[0].name, schedModes[mode].name, profile, fRef, f)
					}
					if addr, diff := m.Sys.Mem.FirstDiff(mRef.Sys.Mem); diff {
						t.Errorf("seed %d: memory differs at %#x between %s and %s under %s",
							seed, addr, schedModes[0].name, schedModes[mode].name, profile)
					}
					if profile == "stall" && mode == 2 && m.SchedStats().Spans != 0 {
						t.Errorf("seed %d: retired %d spans under per-cycle stall draws; spans must self-disable",
							seed, m.SchedStats().Spans)
					}
				}
			}
		})
	}
}

// FuzzSpanEquivalence is the randomized slice of the three-mode
// equivalence property for `make fuzz-smoke`: an arbitrary command
// seed, optionally under a fault profile, must produce identical
// statistics and memory in all three scheduling modes.
func FuzzSpanEquivalence(f *testing.F) {
	for seed := int64(0); seed < 4; seed++ {
		f.Add(seed, uint8(seed))
	}
	cfg := core.DefaultConfig()
	profiles := []string{"", "delay", "stall", "bitflip"}
	f.Fuzz(func(t *testing.T, seed int64, profileSel uint8) {
		fixed := genProgram(t, cfg, seed)
		c := cfg
		if name := profiles[int(profileSel)%len(profiles)]; name != "" {
			fc, err := faults.Profile(name, seed*31+7)
			if err != nil {
				t.Fatal(err)
			}
			c.Faults = &fc
		}
		mRef, sRef := runPlain(t, applyMode(c, 0), fixed, seed)
		for mode := 1; mode < len(schedModes); mode++ {
			m, s := runPlain(t, applyMode(c, mode), fixed, seed)
			if !reflect.DeepEqual(sRef, s) {
				t.Errorf("seed %d: stats differ between %s and %s:\n  %+v\n  %+v",
					seed, schedModes[0].name, schedModes[mode].name, sRef, s)
			}
			if addr, diff := m.Sys.Mem.FirstDiff(mRef.Sys.Mem); diff {
				t.Errorf("seed %d: memory differs at %#x between %s and %s",
					seed, addr, schedModes[0].name, schedModes[mode].name)
			}
		}
	})
}
