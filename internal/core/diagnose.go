package core

import (
	"errors"
	"fmt"
	"strings"

	"softbrain/internal/dispatch"
	"softbrain/internal/engine"
	"softbrain/internal/isa"
)

// DeadlockError reports a simulation that stopped making progress —
// the situation Section 4.5 discusses — with a structured diagnosis
// from the wait-for analysis: what class of hang, which stream and
// port are the culprits, and the chain of waits that leads there.
type DeadlockError struct {
	Cycle  uint64
	Class  HangClass
	Stream string   // culprit stream ("MemPort#3"), or the requester
	Port   string   // culprit port ("in2", "out0")
	Unit   int      // cluster unit index; 0 for a single machine
	Detail string   // one-sentence explanation
	Chain  []string // the wait chain from requester to root cause
	State  string   // machine snapshot at diagnosis
}

func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: deadlock at cycle %d: %s", e.Cycle, e.Class)
	if e.Stream != "" {
		fmt.Fprintf(&b, " (stream %s", e.Stream)
		if e.Port != "" {
			fmt.Fprintf(&b, ", port %s", e.Port)
		}
		b.WriteString(")")
	} else if e.Port != "" {
		fmt.Fprintf(&b, " (port %s)", e.Port)
	}
	fmt.Fprintf(&b, "\n  %s\n", e.Detail)
	b.WriteString(renderChain(e.Chain))
	b.WriteString(e.State)
	return b.String()
}

// quiesceGrace is how many progress-free cycles the machine waits
// before testing for quiescence. A machine with no timed state (no
// in-flight memory response, pipeline instance, core delay or fault
// stall) that has made no progress for this long is provably stuck:
// every remaining state transition is untimed and gated on another
// component, so the wait-for analysis runs and the run ends — tens of
// cycles after the hang instead of the watchdog's tens of thousands.
const quiesceGrace = 64

// HangClass classifies a diagnosed deadlock.
type HangClass uint8

const (
	// HangUnknown: the machine is stuck but the wait-for analysis could
	// not name a structural cause.
	HangUnknown HangClass = iota
	// HangWatchdog: the coarse no-progress watchdog fired without a
	// quiescent state (some timed event kept being scheduled); the
	// machine was live-locked or impossibly slow rather than quiescent.
	HangWatchdog
	// HangPortUndersupply: a consumer waits on a port no live, queued,
	// or future stream supplies (the unbalanced-counts hazard).
	HangPortUndersupply
	// HangPortOversupply: data sits in a port nothing consumes, wedging
	// its suppliers (unmapped port, or a partial instance filling it).
	HangPortOversupply
	// HangStarvedRecurrence: a recurrence (SD_Port_Port) cycle holds
	// fewer elements than the fabric needs to fire — Section 4.5's
	// deadlock example.
	HangStarvedRecurrence
	// HangDrainedUnread: a fabric output was produced but no stream
	// ever reads it, blocking the pipeline behind it.
	HangDrainedUnread
	// HangBarrierDeadlock: the supply a stuck stream needs sits behind
	// a barrier that cannot complete — mis-placed barrier ordering.
	HangBarrierDeadlock
)

func (c HangClass) String() string {
	switch c {
	case HangUnknown:
		return "unknown"
	case HangWatchdog:
		return "watchdog"
	case HangPortUndersupply:
		return "port-undersupply"
	case HangPortOversupply:
		return "port-oversupply"
	case HangStarvedRecurrence:
		return "starved-recurrence"
	case HangDrainedUnread:
		return "drained-unread-output"
	case HangBarrierDeadlock:
		return "barrier-deadlock"
	}
	return fmt.Sprintf("HangClass(%d)", uint8(c))
}

// MachineError is a run that died on an internal error: an invariant
// panic recovered at the Run boundary, or a component-level failure
// surfaced mid-step. It carries enough context (cycle, component,
// machine state) to diagnose without a host-process crash.
type MachineError struct {
	Cycle     uint64
	Component string // "port", "ports", "padbuf", "cgra", "mse", ...
	Unit      int    // cluster unit index; 0 for a single machine
	State     string // machine snapshot at failure
	Err       error  // underlying error, if the failure was an error
	Panic     any    // recovered panic value, if the failure was a panic
}

func (e *MachineError) Error() string {
	cause := e.Err
	if cause == nil && e.Panic != nil {
		cause = fmt.Errorf("panic: %v", e.Panic)
	}
	msg := fmt.Sprintf("core: %s failed at cycle %d (unit %d): %v", e.Component, e.Cycle, e.Unit, cause)
	if e.State != "" {
		msg += "\n" + e.State
	}
	return msg
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *MachineError) Unwrap() error { return e.Err }

// recoverPanic converts a recovered panic value into a MachineError.
// Typed invariants (port.Invariant, engine.Invariant) name their
// component; anything else is attributed to the machine.
func (m *Machine) recoverPanic(r any, now uint64) *MachineError {
	me := &MachineError{Cycle: now, Component: "machine", Panic: r}
	if c, ok := r.(interface{ Component() string }); ok {
		me.Component = c.Component()
	}
	if err, ok := r.(error); ok {
		me.Err = err
	}
	me.State = m.snapshot()
	return me
}

// stepError wraps a component Tick error with cycle and state context.
func (m *Machine) stepError(component string, now uint64, err error) error {
	var me *MachineError
	var de *DeadlockError
	if errors.As(err, &me) || errors.As(err, &de) {
		return err // already structured
	}
	return &MachineError{Cycle: now, Component: component, Err: err, State: m.snapshot()}
}

// quiescent reports whether no component holds timed state resolving
// after now: nothing will happen in this machine without new input.
func (m *Machine) quiescent(now uint64) bool {
	if now < m.busyUntil {
		return false
	}
	if m.Sys.PendingTimed(now) || m.mse.PendingTimed(now) ||
		m.sse.PendingTimed(now) || m.exec.PendingTimed(now) {
		return false
	}
	if m.faults != nil && m.faults.PendingTimed(now) {
		return false
	}
	return true
}

// finding is one classified root cause inside the wait-for analysis.
type finding struct {
	class  HangClass
	stream string
	port   string
	detail string
}

var unknownFinding = finding{class: HangUnknown}

// diagnoser walks the machine's wait-for graph: dispatcher scoreboard
// and queue → vector ports → streams → fabric firing condition. Each
// step follows the single most-specific blocker, accumulating the wait
// chain; leaves and cycles classify the hang.
type diagnoser struct {
	m       *Machine
	now     uint64
	streams []engine.StreamInfo

	chain     []string
	visited   map[string]bool
	requester string // who first demanded progress ("CGRA", a stream, "core")
	recStream string // recurrence stream seen on the path, if any
	recPort   string
	barrier   string // barrier kind seen on the path, if any
	lastPort  string // most recent port on the path
}

// diagnose runs the wait-for analysis and always returns a structured
// DeadlockError (class HangUnknown when no structural cause was found).
func (m *Machine) diagnose(now uint64) *DeadlockError {
	streams := append(m.mse.Streams(now), m.sse.Streams(now)...)
	streams = append(streams, m.rse.Streams(now)...)
	d := &diagnoser{m: m, now: now, streams: streams}
	f := d.root()
	de := &DeadlockError{
		Cycle:  now,
		Class:  f.class,
		Stream: f.stream,
		Port:   f.port,
		Detail: f.detail,
		Chain:  d.chain,
		State:  m.snapshot(),
	}
	if de.Detail == "" {
		de.Detail = "no structural cause identified"
	}
	return de
}

// root tries each entry point of the wait-for graph until one yields a
// classification: stuck streams first (most specific), then the
// dispatch queue, then the blocked control core.
func (d *diagnoser) root() finding {
	attempt := func(requester string, f func() finding) finding {
		d.chain = nil
		d.visited = map[string]bool{}
		d.requester = requester
		d.recStream, d.recPort, d.barrier, d.lastPort = "", "", "", ""
		return f()
	}
	for _, s := range d.streams {
		s := s
		if stuckWait(s.Wait) {
			if f := attempt(s.Name(), func() finding { return d.whyStream(s) }); f.class != HangUnknown {
				return f
			}
		}
	}
	if q := d.m.disp.Queue(); len(q) > 0 {
		if f := attempt(fmt.Sprintf("queued %v", q[0].Kind()), func() finding { return d.whyQueued(0) }); f.class != HangUnknown {
			return f
		}
	}
	if d.m.prog != nil && d.m.pc < len(d.m.prog.Trace) {
		if f := attempt("core", func() finding { return d.whyCoreBlocked() }); f.class != HangUnknown {
			return f
		}
	}
	d.chain = nil
	return unknownFinding
}

// stuckWait reports whether a wait state is structural (as opposed to
// progressing now or at a known future time).
func stuckWait(w engine.Wait) bool {
	switch w {
	case engine.WaitInSpace, engine.WaitOutData, engine.WaitIndex:
		return true
	}
	return false
}

func (d *diagnoser) push(step string) { d.chain = append(d.chain, step) }

// enter marks a node visited; a revisit means the wait-for graph has a
// cycle, which classifies immediately.
func (d *diagnoser) enter(key string) (finding, bool) {
	if d.visited[key] {
		return d.cycleFinding(), true
	}
	d.visited[key] = true
	return finding{}, false
}

// cycleFinding classifies a circular wait by what the path traversed:
// a recurrence stream makes it the Section 4.5 starved recurrence, a
// barrier makes it a barrier ordering deadlock, anything else is data
// wedged in a port (over-supply).
func (d *diagnoser) cycleFinding() finding {
	switch {
	case d.recStream != "":
		return finding{
			class:  HangStarvedRecurrence,
			stream: d.recStream,
			port:   d.recPort,
			detail: fmt.Sprintf("recurrence %s cycles through the fabric but holds fewer elements than an instance needs to fire", d.recStream),
		}
	case d.barrier != "":
		return finding{
			class:  HangBarrierDeadlock,
			stream: d.barrier,
			port:   d.lastPort,
			detail: fmt.Sprintf("the supply for %s sits behind a pending %s that cannot complete", d.lastPort, d.barrier),
		}
	default:
		return finding{
			class:  HangPortOversupply,
			stream: d.requester,
			port:   d.lastPort,
			detail: fmt.Sprintf("circular wait through %s: buffered data cannot drain and new data cannot arrive", d.lastPort),
		}
	}
}

// whyStream follows one stuck stream to its blocker.
func (d *diagnoser) whyStream(s engine.StreamInfo) finding {
	if f, cycled := d.enter(fmt.Sprintf("stream:%d", s.ID)); cycled {
		return f
	}
	if s.Kind == isa.KindPortPort && d.recStream == "" {
		d.recStream = s.Name()
		d.recPort = portName(true, s.DstIn)
	}
	switch s.Wait {
	case engine.WaitInSpace:
		d.push(fmt.Sprintf("%s waits for space in %s", s.Name(), portName(true, s.DstIn)))
		return d.whyInPortFull(s.DstIn)
	case engine.WaitOutData:
		d.push(fmt.Sprintf("%s waits for data on %s", s.Name(), portName(false, s.SrcOut)))
		return d.whyOutPortEmpty(s.SrcOut)
	case engine.WaitIndex:
		d.push(fmt.Sprintf("%s waits for indices on %s", s.Name(), portName(true, s.IdxIn)))
		return d.whyInPortEmpty(s.IdxIn)
	default:
		return unknownFinding
	}
}

func portName(in bool, i int) string {
	if in {
		return fmt.Sprintf("in%d", i)
	}
	return fmt.Sprintf("out%d", i)
}

// whyInPortEmpty explains a demand for data on input port p.
func (d *diagnoser) whyInPortEmpty(p int) finding {
	if f, cycled := d.enter(fmt.Sprintf("in-data:%d", p)); cycled {
		return f
	}
	d.lastPort = portName(true, p)
	for _, s := range d.streams {
		if s.DstIn == p {
			return d.whyStream(s)
		}
	}
	for i, cmd := range d.m.disp.Queue() {
		if writesInPort(cmd, p) {
			d.push(fmt.Sprintf("supply for in%d (%v) is queued, unissued", p, cmd.Kind()))
			return d.whyQueued(i)
		}
	}
	for i := d.m.pc; i < len(d.m.prog.Trace); i++ {
		cmd := d.m.prog.Trace[i].Cmd
		if cmd != nil && writesInPort(cmd, p) {
			d.push(fmt.Sprintf("supply for in%d (%v) is at trace[%d], not yet fetched", p, cmd.Kind(), i))
			return d.whyCoreBlocked()
		}
	}
	return finding{
		class:  HangPortUndersupply,
		stream: d.requester,
		port:   portName(true, p),
		detail: fmt.Sprintf("input port in%d is starved: no live, queued, or future stream supplies it", p),
	}
}

// whyInPortFull explains a demand for space on input port p.
func (d *diagnoser) whyInPortFull(p int) finding {
	if f, cycled := d.enter(fmt.Sprintf("in-space:%d", p)); cycled {
		return f
	}
	d.lastPort = portName(true, p)
	if d.m.exec.Configured() && d.m.exec.mappedIn(p) {
		d.push(fmt.Sprintf("in%d is full and the fabric is not consuming it", p))
		return d.whyCGRA()
	}
	for _, s := range d.streams {
		if s.IdxIn == p {
			return d.whyStream(s)
		}
	}
	detail := fmt.Sprintf("data delivered to in%d is never consumed: the port is not mapped by the active configuration and no indirect stream reads it", p)
	if !d.m.exec.Configured() {
		detail = fmt.Sprintf("data delivered to in%d is never consumed: no configuration is active", p)
	}
	return finding{
		class:  HangPortOversupply,
		stream: d.requester,
		port:   portName(true, p),
		detail: detail,
	}
}

// whyOutPortEmpty explains a demand for data on output port o.
func (d *diagnoser) whyOutPortEmpty(o int) finding {
	if f, cycled := d.enter(fmt.Sprintf("out-data:%d", o)); cycled {
		return f
	}
	d.lastPort = portName(false, o)
	if d.m.exec.Configured() && d.m.exec.mappedOut(o) {
		d.push(fmt.Sprintf("out%d awaits a fabric instance", o))
		return d.whyCGRA()
	}
	detail := fmt.Sprintf("output port out%d is never produced: the active configuration does not map it", o)
	if !d.m.exec.Configured() {
		detail = fmt.Sprintf("output port out%d is never produced: no configuration is active", o)
	}
	return finding{
		class:  HangPortUndersupply,
		stream: d.requester,
		port:   portName(false, o),
		detail: detail,
	}
}

// whyOutPortFull explains a demand for space on output port o.
func (d *diagnoser) whyOutPortFull(o int) finding {
	if f, cycled := d.enter(fmt.Sprintf("out-space:%d", o)); cycled {
		return f
	}
	d.lastPort = portName(false, o)
	for _, s := range d.streams {
		if s.SrcOut == o {
			return d.whyStream(s)
		}
	}
	for i, cmd := range d.m.disp.Queue() {
		if readsOutPort(cmd, o) {
			d.push(fmt.Sprintf("the reader of out%d (%v) is queued, unissued", o, cmd.Kind()))
			return d.whyQueued(i)
		}
	}
	for i := d.m.pc; i < len(d.m.prog.Trace); i++ {
		cmd := d.m.prog.Trace[i].Cmd
		if cmd != nil && readsOutPort(cmd, o) {
			d.push(fmt.Sprintf("the reader of out%d (%v) is at trace[%d], not yet fetched", o, cmd.Kind(), i))
			return d.whyCoreBlocked()
		}
	}
	return finding{
		class:  HangDrainedUnread,
		stream: d.requester,
		port:   portName(false, o),
		detail: fmt.Sprintf("out%d holds %d bytes no live, queued, or future stream will ever read", o, d.m.Ports.Out[o].Len()),
	}
}

// whyCGRA explains why the fabric is not firing.
func (d *diagnoser) whyCGRA() finding {
	if f, cycled := d.enter("cgra"); cycled {
		return f
	}
	starved, blocked := d.m.exec.blockers()
	if len(starved) > 0 {
		d.push(fmt.Sprintf("fabric cannot fire: in%d lacks a full instance", starved[0]))
		return d.whyInPortEmpty(starved[0])
	}
	if len(blocked) > 0 {
		d.push(fmt.Sprintf("fabric cannot fire: out%d has no space", blocked[0]))
		return d.whyOutPortFull(blocked[0])
	}
	return unknownFinding // fabric can fire: the stall is transient
}

// whyQueued explains why the dispatch-queue entry at index i has not
// issued: a barrier ahead of it, or a scoreboard held by a live stream.
func (d *diagnoser) whyQueued(i int) finding {
	if f, cycled := d.enter(fmt.Sprintf("queue:%d", i)); cycled {
		return f
	}
	q := d.m.disp.Queue()
	cmd := q[i]
	for j := 0; j < i; j++ {
		if isBarrier(q[j].Kind()) {
			d.push(fmt.Sprintf("%v is queued behind %v", cmd.Kind(), q[j].Kind()))
			return d.whyBarrier(q[j].Kind())
		}
	}
	if isBarrier(cmd.Kind()) {
		d.push(fmt.Sprintf("%v holds the queue head, unmet", cmd.Kind()))
		return d.whyBarrier(cmd.Kind())
	}
	inW, inR, outR, err := dispatch.CommandPorts(cmd)
	if err != nil {
		return unknownFinding
	}
	for _, p := range inW {
		if id := d.m.disp.Holder(p); id >= 0 {
			if s, ok := d.streamByID(id); ok {
				d.push(fmt.Sprintf("%v waits for %s to release in%d", cmd.Kind(), s.Name(), p))
				return d.whyStream(s)
			}
		}
	}
	for _, p := range inR {
		for _, s := range d.streams {
			if s.IdxIn == p {
				d.push(fmt.Sprintf("%v waits for %s to release indices on in%d", cmd.Kind(), s.Name(), p))
				return d.whyStream(s)
			}
		}
	}
	if outR >= 0 {
		for _, s := range d.streams {
			if s.SrcOut == outR {
				d.push(fmt.Sprintf("%v waits for %s to release out%d", cmd.Kind(), s.Name(), outR))
				return d.whyStream(s)
			}
		}
	}
	// Engine stream table full: follow any stuck stream of that engine.
	for _, s := range d.streams {
		if stuckWait(s.Wait) {
			d.push(fmt.Sprintf("%v waits for a stream-table slot held by %s", cmd.Kind(), s.Name()))
			return d.whyStream(s)
		}
	}
	return unknownFinding
}

// whyBarrier explains why a pending barrier has not completed: some
// stream it waits on is stuck.
func (d *diagnoser) whyBarrier(kind isa.Kind) finding {
	if f, cycled := d.enter("barrier:" + kind.String()); cycled {
		return f
	}
	if d.barrier == "" {
		d.barrier = kind.String()
	}
	for _, s := range d.streams {
		if !barrierWaitsOn(kind, s) || !stuckWait(s.Wait) {
			continue
		}
		d.push(fmt.Sprintf("%v waits for %s to complete", kind, s.Name()))
		return d.whyStream(s)
	}
	return unknownFinding // every blocking stream can progress: transient
}

// barrierWaitsOn reports whether barrier kind waits for stream s.
func barrierWaitsOn(kind isa.Kind, s engine.StreamInfo) bool {
	switch kind {
	case isa.KindBarrierAll:
		return true
	case isa.KindBarrierScratchRd:
		return s.Kind == isa.KindScratchPort
	case isa.KindBarrierScratchWr:
		return s.Kind == isa.KindPortScratch || s.Kind == isa.KindMemScratch
	}
	return false
}

// whyCoreBlocked explains why the control core cannot fetch the next
// trace command. Re-entering here means the demanded supply sits in the
// unfetched trace behind the very barrier the path traversed — the
// barrier ordering deadlock.
func (d *diagnoser) whyCoreBlocked() finding {
	if d.visited["core"] {
		return finding{
			class:  HangBarrierDeadlock,
			stream: d.barrier,
			port:   d.lastPort,
			detail: fmt.Sprintf("the supply for %s is in the unfetched trace behind a pending %s", d.lastPort, orUnknown(d.barrier)),
		}
	}
	d.visited["core"] = true
	q := d.m.disp.Queue()
	for i, cmd := range q {
		if isBarrier(cmd.Kind()) {
			d.push(fmt.Sprintf("core stalls behind %v in the dispatch queue", cmd.Kind()))
			return d.whyBarrier(cmd.Kind())
		}
		_ = i
	}
	if len(q) > 0 {
		d.push("core stalls on a full dispatch queue")
		return d.whyQueued(0)
	}
	return unknownFinding
}

func orUnknown(s string) string {
	if s == "" {
		return "barrier"
	}
	return s
}

func (d *diagnoser) streamByID(id int) (engine.StreamInfo, bool) {
	for _, s := range d.streams {
		if s.ID == id {
			return s, true
		}
	}
	return engine.StreamInfo{}, false
}

func isBarrier(k isa.Kind) bool {
	return k == isa.KindBarrierAll || k == isa.KindBarrierScratchRd || k == isa.KindBarrierScratchWr
}

func writesInPort(cmd isa.Command, p int) bool {
	inW, _, _, err := dispatch.CommandPorts(cmd)
	if err != nil {
		return false
	}
	for _, w := range inW {
		if w == p {
			return true
		}
	}
	return false
}

func readsOutPort(cmd isa.Command, o int) bool {
	_, _, outR, err := dispatch.CommandPorts(cmd)
	return err == nil && outR == o
}

// renderChain formats the wait chain for DeadlockError.Error.
func renderChain(chain []string) string {
	if len(chain) == 0 {
		return ""
	}
	return "  wait chain:\n    " + strings.Join(chain, "\n    -> ") + "\n"
}
