// Observability equivalence: the metrics layer (internal/obs) is
// strictly read-only — enabling it never changes the simulation, and
// its stall attribution must obey two hard properties. Conservation:
// every component's cause counts sum exactly to the elapsed cycles, on
// every workload and generated program. Invariance: the metrics dump
// is byte-identical with idle skip-ahead off and on, and byte-identical
// between the sequential and parallel cluster schedulers.
package core_test

import (
	"bytes"
	"math/rand"
	"testing"

	"softbrain/internal/core"
	"softbrain/internal/fix"
	"softbrain/internal/obs"
	"softbrain/internal/progen"
	"softbrain/internal/workloads"
	"softbrain/internal/workloads/dnn"
	"softbrain/internal/workloads/machsuite"
)

// obsBuilds is the workload matrix the metrics tests sweep: the full
// MachSuite set plus two DNN layers on the 8-unit cluster.
func obsBuilds() []struct {
	name string
	inst func(cfg core.Config) (*workloads.Instance, error)
	cfg  core.Config
} {
	type build = struct {
		name string
		inst func(cfg core.Config) (*workloads.Instance, error)
		cfg  core.Config
	}
	var builds []build
	mcfg := core.DefaultConfig()
	for _, e := range machsuite.All() {
		e := e
		builds = append(builds, build{e.Name, func(cfg core.Config) (*workloads.Instance, error) {
			return e.Build(cfg, 2)
		}, mcfg})
	}
	dcfg := dnn.Config()
	for _, l := range dnn.Layers()[:2] {
		l := l
		builds = append(builds, build{l.Name, func(cfg core.Config) (*workloads.Instance, error) {
			return l.Build(cfg, dnn.Units)
		}, dcfg})
	}
	return builds
}

// TestMetricsWorkloads runs every workload with metrics attached,
// twice — skipping off and on — and demands (a) the conservation
// invariant on both dumps, (b) byte-identical dump JSON between the
// two runs, and (c) unchanged cycle counts versus a plain run (metrics
// must not perturb the simulation).
func TestMetricsWorkloads(t *testing.T) {
	for _, b := range obsBuilds() {
		b := b
		t.Run(b.name, func(t *testing.T) {
			t.Parallel()
			run := func(noSkip bool) (*core.Stats, []byte) {
				cfg := b.cfg
				cfg.NoSkipAhead = noSkip
				inst, err := b.inst(cfg)
				if err != nil {
					t.Fatal(err)
				}
				stats, dump, err := inst.RunMetrics(cfg, obs.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if err := obs.CheckConservation(dump); err != nil {
					t.Fatalf("noSkip=%v: %v", noSkip, err)
				}
				data, err := dump.MarshalIndent()
				if err != nil {
					t.Fatal(err)
				}
				return stats, data
			}
			sOff, dOff := run(true)
			sOn, dOn := run(false)
			if !bytes.Equal(dOff, dOn) {
				t.Errorf("metrics dump differs with skip-ahead:\noff:\n%s\non:\n%s", dOff, dOn)
			}
			if sOff.Cycles != sOn.Cycles {
				t.Errorf("cycles differ with skip-ahead: %d vs %d", sOff.Cycles, sOn.Cycles)
			}
			inst, err := b.inst(b.cfg)
			if err != nil {
				t.Fatal(err)
			}
			plain, err := inst.Run(b.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if plain.Cycles != sOn.Cycles {
				t.Errorf("enabling metrics changed the simulation: %d cycles plain, %d with metrics",
					plain.Cycles, sOn.Cycles)
			}
		})
	}
}

// TestMetricsClusterParSeq runs the DNN layers on the 8-unit cluster
// under both schedulers with metrics attached: the dumps must be
// byte-identical, per unit and in total.
func TestMetricsClusterParSeq(t *testing.T) {
	cfg := dnn.Config()
	for _, l := range dnn.Layers()[:2] {
		l := l
		t.Run(l.Name, func(t *testing.T) {
			t.Parallel()
			inst, err := l.Build(cfg, dnn.Units)
			if err != nil {
				t.Fatal(err)
			}
			run := func(sequential bool) []byte {
				cl, err := core.NewCluster(cfg, len(inst.Progs))
				if err != nil {
					t.Fatal(err)
				}
				cl.Sequential = sequential
				cl.EnableMetrics(obs.Options{})
				if inst.Init != nil {
					inst.Init(cl.Mem)
				}
				if _, err := cl.Run(inst.Progs); err != nil {
					t.Fatalf("sequential=%v: %v", sequential, err)
				}
				dump := cl.MetricsDump()
				if err := obs.CheckConservation(dump); err != nil {
					t.Fatalf("sequential=%v: %v", sequential, err)
				}
				data, err := dump.MarshalIndent()
				if err != nil {
					t.Fatal(err)
				}
				return data
			}
			seq, par := run(true), run(false)
			if !bytes.Equal(seq, par) {
				t.Errorf("metrics dump differs between schedulers:\nseq:\n%s\npar:\n%s", seq, par)
			}
		})
	}
}

// TestMetricsProgen sweeps generated programs: conservation and
// skip-invariance must hold on arbitrary command mixes, not just the
// curated workloads. Slice recording is on, so the run-length encoder
// is exercised under every classification path.
func TestMetricsProgen(t *testing.T) {
	cfg := core.DefaultConfig()
	for seed := int64(0); seed < 10; seed++ {
		p, ports, err := progen.Addpair(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		for _, c := range progen.Commands(rng, ports) {
			p.Emit(c)
		}
		if err := p.Err(); err != nil {
			t.Fatal(err)
		}
		fixed, _, err := fix.Fix(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		run := func(noSkip bool) []byte {
			c := cfg
			c.NoSkipAhead = noSkip
			m, err := core.NewMachine(c)
			if err != nil {
				t.Fatal(err)
			}
			m.EnableMetrics(obs.New(0, obs.Options{Slices: obs.DefaultSlices}))
			line := make([]byte, 64)
			irng := rand.New(rand.NewSource(seed + 1000))
			for _, base := range progen.MemPools {
				irng.Read(line)
				m.Sys.Mem.Write(base, line)
			}
			if _, err := m.Run(fixed); err != nil {
				t.Fatalf("seed %d (noSkip=%v): %v", seed, noSkip, err)
			}
			dump := m.MetricsDump()
			if err := obs.CheckConservation(dump); err != nil {
				t.Fatalf("seed %d (noSkip=%v): %v", seed, noSkip, err)
			}
			data, err := dump.MarshalIndent()
			if err != nil {
				t.Fatal(err)
			}
			return data
		}
		off, on := run(true), run(false)
		if !bytes.Equal(off, on) {
			t.Errorf("seed %d: metrics dump differs with skip-ahead:\noff:\n%s\non:\n%s", seed, off, on)
		}
	}
}

// TestMetricsTraceExport runs a workload with spans and slices
// recorded and validates the Perfetto export against the trace-event
// contract.
func TestMetricsTraceExport(t *testing.T) {
	cfg := core.DefaultConfig()
	e, err := machsuite.Find("gemm")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := e.Build(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.EnableMetrics(obs.New(0, obs.Options{Slices: obs.DefaultSlices}))
	m.EnableTrace(4096)
	if inst.Init != nil {
		inst.Init(m.Sys.Mem)
	}
	stats, err := m.Run(inst.Progs[0])
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteTrace(&buf, []obs.TraceInput{m.TraceInput(stats.Cycles)}); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("export failed its own validator: %v", err)
	}
}

// TestHeartbeat: the run-loop heartbeat must fire for a long-enough
// run with a zero interval and report monotonically advancing cycles.
func TestHeartbeat(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.NoSkipAhead = true // every cycle ticked, so the stride check runs often
	e, err := machsuite.Find("gemm")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := e.Build(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := core.NewCluster(cfg, len(inst.Progs))
	if err != nil {
		t.Fatal(err)
	}
	cl.EnableMetrics(obs.Options{})
	var reports []core.ProgressReport
	cl.SetHeartbeat(0, func(r core.ProgressReport) { reports = append(reports, r) })
	if inst.Init != nil {
		inst.Init(cl.Mem)
	}
	if _, err := cl.Run(inst.Progs); err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("heartbeat never fired on a ticked multi-thousand-cycle run")
	}
	for i := 1; i < len(reports); i++ {
		if reports[i].Cycle <= reports[i-1].Cycle {
			t.Errorf("heartbeat cycles not advancing: %d then %d", reports[i-1].Cycle, reports[i].Cycle)
		}
	}
	if reports[len(reports)-1].StallMix == "" {
		t.Error("heartbeat with metrics enabled reported an empty stall mix")
	}
}
