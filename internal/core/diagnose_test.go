package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"softbrain/internal/cgra"
	"softbrain/internal/dfg"
	"softbrain/internal/isa"
	"softbrain/internal/port"
)

// addpairProg mirrors the linter's seeded-hazard rig: the two-input
// adder graph (A + B -> C, one word each), so one instance consumes 8
// bytes per input port and produces 8 on C.
func addpairProg(t *testing.T) (*Program, Config) {
	t.Helper()
	cfg := DefaultConfig()
	b := dfg.NewBuilder("addpair")
	a := b.Input("A", 1)
	v := b.Input("B", 1)
	b.Output("C", b.N(dfg.Add(64), a.W(0), v.W(0)))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := NewProgram("addpair")
	p.CompileAndConfigure(cfg.Fabric, g)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	return p, cfg
}

// tinyProg is the adder on minimally buffered ports (depth = width), so
// a single instance of residue wedges the fabric.
func tinyProg(t *testing.T) (*Program, Config) {
	t.Helper()
	cfg := DefaultConfig()
	f := cgra.NewFabric(5, 4, dfg.FUAlu, dfg.FUMul)
	for i := range f.InPorts {
		if !f.InPorts[i].Indirect {
			f.InPorts[i].Depth = f.InPorts[i].Width
		}
	}
	for i := range f.OutPorts {
		f.OutPorts[i].Depth = f.OutPorts[i].Width
	}
	cfg.Fabric = f
	b := dfg.NewBuilder("addpair")
	a := b.Input("A", 1)
	v := b.Input("B", 1)
	b.Output("C", b.N(dfg.Add(64), a.W(0), v.W(0)))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := NewProgram("addpair")
	p.CompileAndConfigure(cfg.Fabric, g)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	return p, cfg
}

// runHang runs p expecting a deadlock and returns the diagnosis.
func runHang(t *testing.T, p *Program, cfg Config) *DeadlockError {
	t.Helper()
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(p)
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("Run = %v, want a DeadlockError", err)
	}
	return de
}

// TestDiagnoseHangCorpus replays the linter's seeded-hazard corpus
// without repair and checks that each hang is classified with the
// culprit stream and port named.
func TestDiagnoseHangCorpus(t *testing.T) {
	t.Run("unequal-counts", func(t *testing.T) {
		// B receives one instance to A's two: the dataflow starves.
		p, cfg := addpairProg(t)
		p.Emit(isa.MemPort{Src: isa.Linear(0x1000, 16), Dst: p.In("A")})
		p.Emit(isa.MemPort{Src: isa.Linear(0x2000, 8), Dst: p.In("B")})
		p.Emit(isa.CleanPort{Src: p.Out("C"), Elem: isa.Elem64, Count: 2})
		de := runHang(t, p, cfg)
		if de.Class != HangPortUndersupply {
			t.Fatalf("class = %v, want %v\n%v", de.Class, HangPortUndersupply, de)
		}
		if want := fmt.Sprintf("in%d", p.In("B")); de.Port != want {
			t.Fatalf("port = %q, want %q\n%v", de.Port, want, de)
		}
		if !strings.Contains(de.Stream, "Clean_Port") {
			t.Fatalf("stream = %q, want the starving consumer\n%v", de.Stream, de)
		}
	})

	t.Run("overconsume", func(t *testing.T) {
		// One instance produces 8 bytes; consuming 16 deadlocks.
		p, cfg := addpairProg(t)
		p.Emit(isa.MemPort{Src: isa.Linear(0x1000, 8), Dst: p.In("A")})
		p.Emit(isa.MemPort{Src: isa.Linear(0x2000, 8), Dst: p.In("B")})
		p.Emit(isa.CleanPort{Src: p.Out("C"), Elem: isa.Elem64, Count: 2})
		de := runHang(t, p, cfg)
		if de.Class != HangPortUndersupply {
			t.Fatalf("class = %v, want %v\n%v", de.Class, HangPortUndersupply, de)
		}
	})

	t.Run("oversupply-unmapped", func(t *testing.T) {
		// A constant stream overfills a port no configuration maps.
		p, cfg := addpairProg(t)
		var free isa.InPortID
		found := false
		used := map[isa.InPortID]bool{p.In("A"): true, p.In("B"): true}
		for hw, spec := range cfg.Fabric.InPorts {
			if !spec.Indirect && !used[isa.InPortID(hw)] {
				free, found = isa.InPortID(hw), true
				break
			}
		}
		if !found {
			t.Fatal("fabric has no unmapped non-indirect input port")
		}
		depth := cfg.Fabric.InPorts[free].Depth
		p.Emit(isa.ConstPort{Value: 1, Elem: isa.Elem64, Count: uint64(depth + 1), Dst: free})
		de := runHang(t, p, cfg)
		if de.Class != HangPortOversupply {
			t.Fatalf("class = %v, want %v\n%v", de.Class, HangPortOversupply, de)
		}
		if want := fmt.Sprintf("in%d", free); de.Port != want {
			t.Fatalf("port = %q, want %q\n%v", de.Port, want, de)
		}
	})

	t.Run("starved-recurrence", func(t *testing.T) {
		// Footnote 1 of Section 3.3: the recurrence must produce the
		// first A, but A only arrives after Y fires.
		p, cfg := tinyProg(t)
		const n = 64
		p.Emit(isa.MemPort{Src: isa.Linear(0, n*8), Dst: p.In("B")})
		p.Emit(isa.PortPort{Src: p.Out("C"), Elem: isa.Elem64, Count: n, Dst: p.In("A")})
		p.Emit(isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x9000, n*8)})
		p.Emit(isa.BarrierAll{})
		de := runHang(t, p, cfg)
		if de.Class != HangStarvedRecurrence {
			t.Fatalf("class = %v, want %v\n%v", de.Class, HangStarvedRecurrence, de)
		}
		if !strings.Contains(de.Stream, "Port_Port") {
			t.Fatalf("stream = %q, want the recurrence\n%v", de.Stream, de)
		}
	})

	t.Run("drained-unread", func(t *testing.T) {
		// The fabric's output is produced but nothing ever reads it;
		// with minimal buffering the residue wedges the suppliers.
		p, cfg := tinyProg(t)
		p.Emit(isa.MemPort{Src: isa.Linear(0x1000, 64), Dst: p.In("A")})
		p.Emit(isa.MemPort{Src: isa.Linear(0x2000, 64), Dst: p.In("B")})
		p.Emit(isa.BarrierAll{})
		de := runHang(t, p, cfg)
		if de.Class != HangDrainedUnread {
			t.Fatalf("class = %v, want %v\n%v", de.Class, HangDrainedUnread, de)
		}
		if want := fmt.Sprintf("out%d", p.Out("C")); de.Port != want {
			t.Fatalf("port = %q, want %q\n%v", de.Port, want, de)
		}
	})

	t.Run("barrier-deadlock", func(t *testing.T) {
		// The supply for B sits in the trace behind a barrier that can
		// never complete, because the consumer it waits on needs B.
		p, cfg := addpairProg(t)
		p.Emit(isa.MemPort{Src: isa.Linear(0x1000, 64), Dst: p.In("A")})
		p.Emit(isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x3000, 64)})
		p.Emit(isa.BarrierAll{})
		p.Emit(isa.MemPort{Src: isa.Linear(0x2000, 64), Dst: p.In("B")})
		de := runHang(t, p, cfg)
		if de.Class != HangBarrierDeadlock {
			t.Fatalf("class = %v, want %v\n%v", de.Class, HangBarrierDeadlock, de)
		}
	})
}

// TestDiagnoseChainRendering checks the human-facing output carries the
// wait chain and the snapshot.
func TestDiagnoseChainRendering(t *testing.T) {
	p, cfg := addpairProg(t)
	p.Emit(isa.MemPort{Src: isa.Linear(0x1000, 16), Dst: p.In("A")})
	p.Emit(isa.MemPort{Src: isa.Linear(0x2000, 8), Dst: p.In("B")})
	p.Emit(isa.CleanPort{Src: p.Out("C"), Elem: isa.Elem64, Count: 2})
	de := runHang(t, p, cfg)
	if len(de.Chain) == 0 {
		t.Fatalf("diagnosis has no wait chain: %v", de)
	}
	msg := de.Error()
	for _, want := range []string{"port-undersupply", "wait chain", "pc="} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() lacks %q:\n%s", want, msg)
		}
	}
}

// TestQuiescenceBeatsWatchdog: a quiescent deadlock must be detected in
// well under 1% of the watchdog budget — the machine goes quiet a few
// hundred cycles in, and the diagnosis fires tens of cycles later
// instead of 50000.
func TestQuiescenceBeatsWatchdog(t *testing.T) {
	// Scratchpad supplies avoid DRAM latency, so the hang sets in after
	// a few tens of cycles and the whole run — including detection —
	// must finish inside 1% of the watchdog budget.
	p, cfg := addpairProg(t)
	p.Emit(isa.ScratchPort{Src: isa.Linear(0, 16), Dst: p.In("A")})
	p.Emit(isa.ScratchPort{Src: isa.Linear(64, 8), Dst: p.In("B")})
	p.Emit(isa.CleanPort{Src: p.Out("C"), Elem: isa.Elem64, Count: 2})
	de := runHang(t, p, cfg) // default watchdog: 50000 idle cycles
	if de.Class == HangWatchdog {
		t.Fatalf("quiescent hang fell through to the watchdog: %v", de)
	}
	if de.Cycle > defaultWatchdog/100 {
		t.Fatalf("diagnosed at cycle %d, want < %d (1%% of the watchdog)", de.Cycle, defaultWatchdog/100)
	}
}

// TestWatchdogValidation: a watchdog shorter than the quiescence grace
// period or one command's issue cost is rejected up front.
func TestWatchdogValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WatchdogCycles = 50
	if _, err := NewMachine(cfg); err == nil || !strings.Contains(err.Error(), "WatchdogCycles") {
		t.Fatalf("NewMachine(watchdog=50) = %v, want a WatchdogCycles error", err)
	}
	cfg.WatchdogCycles = 2000
	if _, err := NewMachine(cfg); err != nil {
		t.Fatalf("NewMachine(watchdog=2000) = %v", err)
	}
}

// TestRunRecoversPanic: an internal invariant violation mid-run must
// surface as a typed MachineError, never a host-process panic.
func TestRunRecoversPanic(t *testing.T) {
	p, cfg := addpairProg(t)
	p.Emit(isa.MemPort{Src: isa.Linear(0x1000, 16), Dst: p.In("A")})
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(p); err != nil {
		t.Fatal(err)
	}
	m.Ports.In = nil // corrupt the machine: the MSE will index a nil slice
	_, err = m.run(context.Background())
	var me *MachineError
	if !errors.As(err, &me) {
		t.Fatalf("run over corrupted state = %v, want a MachineError", err)
	}
	if me.Component == "" || me.Panic == nil {
		t.Fatalf("MachineError lacks attribution: %+v", me)
	}
}

// TestRecoverPanicAttribution: typed invariants name their component.
func TestRecoverPanicAttribution(t *testing.T) {
	m, err := NewMachine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	me := m.recoverPanic(port.Invariant{Port: "in0", Op: "push", Msg: "overflow"}, 42)
	if me.Component != "port" || me.Cycle != 42 {
		t.Fatalf("recoverPanic = %+v, want component port at cycle 42", me)
	}
	if me.Err == nil {
		t.Fatalf("recoverPanic dropped the underlying error: %+v", me)
	}
}
