package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"softbrain/internal/faults"
	"softbrain/internal/mem"
	"softbrain/internal/obs"
	"softbrain/internal/sim"
)

// Cluster is several Softbrain units sharing one backing memory and one
// DRAM channel — the 8-unit configuration of the DianNao comparison
// (Section 7.1). Each unit has a private cache and memory port; units
// contend only for DRAM bandwidth, and run in lockstep.
//
// Multi-unit clusters execute in parallel by default: one goroutine per
// unit with an epoch barrier every cycle at the shared-DRAM boundary
// (see docs/SIMKERNEL.md). The schedule is byte-identical to the
// sequential one — DRAM grants are deferred during the cycle and
// resolved in unit order at the barrier.
type Cluster struct {
	Units []*Machine
	Mem   *mem.Memory

	// Sequential forces the single-goroutine lockstep scheduler; the
	// determinism tests compare it against the parallel default.
	Sequential bool

	// Lint is the optional cluster-scope static-analysis hook consulted
	// by RunStrict and RunPipelineStrict before any unit loads: it sees
	// the whole phased program set (phases[k][u] = unit u's program in
	// phase k) because inter-unit hazards are a property of the set, not
	// of any one program. Install it with
	//
	//	cl.Lint = lint.ClusterHook(cfg, opts)
	//
	// (core cannot import the linter: lint analyzes core.Program).
	Lint func(phases [][]*Program) error

	cfg       Config
	haveCfg   bool
	unitStats []*Stats

	// Cluster-level heartbeat (see Machine.SetHeartbeat); the cluster
	// runs its own loop, so it owns the stride check.
	hbEvery time.Duration
	hbFn    func(ProgressReport)
	hbLast  time.Time
}

// EnableMetrics attaches one registry per unit (unit index = registry
// unit). Call before Run; MetricsDump merges the units afterwards.
func (c *Cluster) EnableMetrics(opts obs.Options) {
	for i, u := range c.Units {
		u.EnableMetrics(obs.New(i, opts))
	}
}

// MetricsDump merges the per-unit registries, in unit order, into one
// dump with a cluster-wide total. Valid after a completed Run.
func (c *Cluster) MetricsDump() obs.Dump {
	units := make([]obs.UnitDump, 0, len(c.Units))
	for _, u := range c.Units {
		units = append(units, u.reg.Dump())
	}
	return obs.Merge(units)
}

// SchedStats sums the wake-set scheduler counters across the units
// (see Machine.SchedStats). Valid after a completed Run.
func (c *Cluster) SchedStats() sim.SchedStats {
	var total sim.SchedStats
	for _, u := range c.Units {
		total.Add(u.SchedStats())
	}
	return total
}

// SchedTickBy sums the executed tick counts per component name across
// the units, the per-component view behind SchedStats().CompTicks.
func (c *Cluster) SchedTickBy() map[string]uint64 {
	total := map[string]uint64{}
	for _, u := range c.Units {
		for name, n := range u.SchedTickBy() {
			total[name] += n
		}
	}
	return total
}

// SetHeartbeat installs a progress callback on the cluster's run loop,
// reporting aggregate progress across the units.
func (c *Cluster) SetHeartbeat(every time.Duration, fn func(ProgressReport)) {
	c.hbEvery = every
	c.hbFn = fn
}

// report aggregates a point-in-time view across the units.
func (c *Cluster) report(now uint64) ProgressReport {
	r := ProgressReport{Cycle: now}
	var attrs []*obs.Attribution
	for _, u := range c.Units {
		r.Commands += u.disp.Issued
		r.Progress += u.kern.Progress()
		r.RetiredBytes += u.retiredBytes()
		attrs = append(attrs, u.reg.Attributions()...)
	}
	r.StallMix = stallMix(attrs)
	return r
}

// Progress is the point-in-time aggregate report at cycle now — what a
// heartbeat would deliver — exported so callers can snapshot final run
// telemetry (retired bytes, stall mix) after a completed Run.
func (c *Cluster) Progress(now uint64) ProgressReport { return c.report(now) }

// heartbeat fires the cluster callback when the interval elapsed.
func (c *Cluster) heartbeat(now uint64) {
	if c.hbFn == nil {
		return
	}
	if c.hbLast.IsZero() {
		c.hbLast = time.Now()
		return
	}
	if time.Since(c.hbLast) >= c.hbEvery {
		c.hbLast = time.Now()
		c.hbFn(c.report(now))
	}
}

// NewCluster builds n identical units over a shared backing store.
func NewCluster(cfg Config, n int) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: cluster of %d units", n)
	}
	backing := mem.NewMemory()
	dram := mem.NewDRAM(cfg.Mem.MissInterval)
	c := &Cluster{Mem: backing, cfg: cfg, haveCfg: true}
	for i := 0; i < n; i++ {
		sys, err := mem.NewSystemShared(cfg.Mem, backing, dram)
		if err != nil {
			return nil, err
		}
		u, err := NewMachineShared(cfg, sys)
		if err != nil {
			return nil, err
		}
		c.Units = append(c.Units, u)
	}
	return c, nil
}

// validateUnits checks that every unit runs the same configuration —
// the cluster-wide controls (watchdog, skip-ahead, fault profile) are
// taken from it, so a mismatched unit would silently run under another
// unit's policy. A cluster assembled literally (not via NewCluster)
// adopts the uniform config it finds.
func (c *Cluster) validateUnits() error {
	if len(c.Units) == 0 {
		return fmt.Errorf("core: cluster has no units")
	}
	if !c.haveCfg {
		c.cfg, c.haveCfg = c.Units[0].cfg, true
	}
	for i, u := range c.Units {
		if u.cfg != c.cfg {
			return fmt.Errorf("core: cluster unit %d config differs from the cluster's; all units must share one Config", i)
		}
	}
	return nil
}

// FaultStats sums the injected-fault counts across all units; zero when
// faults are disabled.
func (c *Cluster) FaultStats() faults.Stats {
	var total faults.Stats
	for _, u := range c.Units {
		s := u.FaultStats()
		total.MemDelays += s.MemDelays
		total.Stalls += s.Stalls
		total.StallCycles += s.StallCycles
		total.Throttles += s.Throttles
		total.BitFlips += s.BitFlips
	}
	return total
}

// UnitStats returns the per-unit statistics of the last successful Run,
// in unit order.
func (c *Cluster) UnitStats() []*Stats { return c.unitStats }

// Run executes one program per unit concurrently and returns aggregated
// statistics (Cycles is the wall-clock of the slowest unit). Like
// Machine.Run, it never lets an invariant panic escape: the recovered
// MachineError names the unit whose Step failed.
func (c *Cluster) Run(progs []*Program) (*Stats, error) {
	return c.RunContext(context.Background(), progs)
}

// RunContext is Run bounded by a context: cancellation or deadline
// expiry mid-run stops the coordinator within one heartbeat stride,
// releases the worker goroutines, and returns a *CanceledError
// wrapping the context cause. See Machine.RunContext.
func (c *Cluster) RunContext(ctx context.Context, progs []*Program) (stats *Stats, err error) {
	if err := c.validateUnits(); err != nil {
		return nil, err
	}
	if len(progs) != len(c.Units) {
		return nil, fmt.Errorf("core: %d programs for %d units", len(progs), len(c.Units))
	}
	for i, u := range c.Units {
		if err := u.Load(progs[i]); err != nil {
			return nil, err
		}
	}
	bases := make([]sysCounters, len(c.Units))
	for i, u := range c.Units {
		bases[i] = snapshotSys(u.Sys)
	}
	watchdog := c.cfg.WatchdogCycles
	if watchdog == 0 {
		watchdog = defaultWatchdog
	}
	var now uint64
	curUnit := 0
	defer func() {
		if r := recover(); r != nil {
			me := c.Units[curUnit].recoverPanic(r, now)
			me.Unit = curUnit
			stats, err = nil, me
		}
	}()
	// step advances every running unit one cycle: sequentially in unit
	// order, or on the worker goroutines with the epoch barrier.
	step := func(now uint64) error {
		for i, u := range c.Units {
			if u.Done() {
				continue
			}
			curUnit = i
			if err := u.Step(now); err != nil {
				if me, ok := err.(*MachineError); ok {
					me.Unit = i
				}
				return err
			}
		}
		return nil
	}
	if !c.Sequential && len(c.Units) > 1 {
		var stop func()
		step, stop = c.startWorkers()
		defer stop()
		for _, u := range c.Units {
			u.Sys.DeferGrants(true)
		}
		defer func() {
			for _, u := range c.Units {
				u.Sys.DeferGrants(false)
			}
		}()
	}
	// diagnose classifies the stuck cluster: the first unit with a
	// structural cause names the hang, Unknown otherwise.
	diagnose := func(now uint64) *DeadlockError {
		var first *DeadlockError
		for i, u := range c.Units {
			if u.Done() {
				continue
			}
			de := u.diagnose(now)
			de.Unit = i
			if first == nil {
				first = de
			}
			if de.Class != HangUnknown {
				return de
			}
		}
		return first
	}
	anyFaults := false
	for _, u := range c.Units {
		if u.faults != nil {
			anyFaults = true
		}
	}
	if ce := canceled(ctx, now); ce != nil {
		return nil, ce
	}
	var lastProgress, lastChange uint64
	var hbIter uint64
	diagnosed := false
	for {
		done := true
		for _, u := range c.Units {
			if !u.Done() {
				done = false
				break
			}
		}
		if done {
			break
		}
		if err := step(now); err != nil {
			return nil, err
		}
		if hbIter++; hbIter&(heartbeatStride-1) == 0 {
			if ce := canceled(ctx, now); ce != nil {
				return nil, ce
			}
			c.heartbeat(now)
		}
		var pr uint64
		for _, u := range c.Units {
			pr += u.progress()
		}
		stillRunning := false
		for _, u := range c.Units {
			if !u.Done() { // re-check: Step may have just finished the unit
				stillRunning = true
				break
			}
		}
		progressed := pr != lastProgress
		if progressed {
			lastProgress, lastChange = pr, now
			diagnosed = false
		} else if stillRunning {
			idle := now - lastChange
			if idle >= quiesceGrace && !diagnosed {
				quiet := true
				for _, u := range c.Units {
					if !u.Done() && !u.quiescent(now) {
						quiet = false
						break
					}
				}
				if quiet {
					de := diagnose(now)
					if de != nil && (de.Class != HangUnknown || !anyFaults) {
						return nil, de
					}
					diagnosed = true
				}
			}
			if idle > watchdog {
				de := diagnose(now)
				if de == nil {
					de = &DeadlockError{Cycle: now}
				}
				if de.Class == HangUnknown {
					de.Class = HangWatchdog
					de.Detail = "no progress within the watchdog window; no structural cause identified"
				}
				return nil, de
			}
		}
		next := now + 1
		if stillRunning {
			// Idle skip-ahead across the cluster: only when every running
			// unit is asleep until a known future cycle (a unit with wake
			// scheduling disabled reports Ready and vetoes). Capped at the
			// watchdog deadline, like Machine.run.
			h := sim.Idle()
			for _, u := range c.Units {
				if !u.Done() {
					h = h.Earliest(u.NextWake(now))
				}
			}
			if h.Kind == sim.WakeTimed && h.At > next {
				target := h.At
				if deadline := lastChange + watchdog + 1; target > deadline {
					target = deadline
				}
				if target > next {
					for _, u := range c.Units {
						if !u.Done() {
							u.onSkip(next, target)
						}
					}
					next = target
				}
			} else if len(c.Units) == 1 {
				// Span retirement (single-unit clusters only: peers would
				// share DRAM arbitration, which a batched unit could
				// reorder): when one component of the unit is due and the
				// rest sleep, its ticks batch in one call. See
				// Machine.retireSpan.
				n, err := c.Units[0].retireSpan(next, lastChange+watchdog+1)
				if err != nil {
					if me, ok := err.(*MachineError); ok {
						me.Unit = 0
					}
					return nil, err
				}
				next += n
			}
		}
		now = next
	}
	total := &Stats{}
	c.unitStats = c.unitStats[:0]
	for i, u := range c.Units {
		s := u.collect(now, bases[i])
		c.unitStats = append(c.unitStats, s)
		total.Add(s)
	}
	total.Cycles = now
	return total, nil
}

// lintPhases vets a phased program set through the Lint hook. Like
// Machine.LoadStrict, a cluster without a hook refuses every program
// set — strict mode is an explicit opt-in, not a silent fallback.
func (c *Cluster) lintPhases(phases [][]*Program) error {
	if c.Lint == nil {
		return fmt.Errorf("core: strict cluster execution requires a Lint hook (install internal/lint.ClusterHook)")
	}
	if err := c.Lint(phases); err != nil {
		return fmt.Errorf("core: refusing to run: %w", err)
	}
	return nil
}

// RunStrict is Run with the program set vetted by the Lint hook first:
// per-unit hazards and inter-unit races (overlapping DRAM footprints
// across units, unordered shared-region access) are refused before any
// unit loads.
func (c *Cluster) RunStrict(progs []*Program) (*Stats, error) {
	if err := c.lintPhases([][]*Program{progs}); err != nil {
		return nil, err
	}
	return c.Run(progs)
}

// RunPipeline executes a phased program set: phases[k] holds one
// program per unit, phase k+1 starts only after every unit of phase k
// fully completed (Run returns only when all units are done), so the
// phase boundary is a cluster-wide barrier — the ordering primitive the
// cluster linter's shared-region rules verify against. Statistics are
// aggregated across phases with Cycles summed: phases are sequential,
// so the pipeline's wall-clock is the sum of the phase wall-clocks.
// UnitStats aggregates the same way per unit.
func (c *Cluster) RunPipeline(phases [][]*Program) (*Stats, error) {
	return c.RunPipelineContext(context.Background(), phases)
}

// RunPipelineContext is RunPipeline bounded by a context; cancellation
// between or within phases returns a *CanceledError and runs no
// further phase.
func (c *Cluster) RunPipelineContext(ctx context.Context, phases [][]*Program) (*Stats, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("core: pipeline has no phases")
	}
	total := &Stats{}
	var cycles uint64
	var unitTotals []*Stats
	for pi, progs := range phases {
		s, err := c.RunContext(ctx, progs)
		if err != nil {
			return nil, fmt.Errorf("core: pipeline phase %d: %w", pi, err)
		}
		cycles += s.Cycles
		total.Add(s)
		if unitTotals == nil {
			unitTotals = make([]*Stats, len(c.unitStats))
			for i := range unitTotals {
				unitTotals[i] = &Stats{}
			}
		}
		for i, us := range c.unitStats {
			sum := unitTotals[i].Cycles + us.Cycles
			unitTotals[i].Add(us)
			unitTotals[i].Cycles = sum // Add takes the max; phases serialize
		}
	}
	total.Cycles = cycles
	c.unitStats = unitTotals
	return total, nil
}

// RunPipelineStrict is RunPipeline with the whole phase sequence vetted
// by the Lint hook first.
func (c *Cluster) RunPipelineStrict(phases [][]*Program) (*Stats, error) {
	if err := c.lintPhases(phases); err != nil {
		return nil, err
	}
	return c.RunPipeline(phases)
}

// startWorkers spawns one goroutine per unit and returns the parallel
// step function plus a stop function releasing the workers. Each cycle
// the coordinator broadcasts the cycle number, waits for every unit to
// tick (units only share the backing memory and the DRAM channel, and
// DRAM grants are deferred during the tick), then resolves the deferred
// grants in unit order — the epoch barrier that makes the parallel
// schedule identical to the sequential one.
func (c *Cluster) startWorkers() (step func(now uint64) error, stop func()) {
	n := len(c.Units)
	work := make([]chan uint64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		work[i] = make(chan uint64, 1)
		go func(i int) {
			u := c.Units[i]
			for now := range work[i] {
				func() {
					defer func() {
						if r := recover(); r != nil {
							me := u.recoverPanic(r, now)
							me.Unit = i
							errs[i] = me
						}
						wg.Done()
					}()
					if errs[i] != nil || u.Done() {
						return
					}
					if err := u.Step(now); err != nil {
						if me, ok := err.(*MachineError); ok {
							me.Unit = i
						}
						errs[i] = err
					}
				}()
			}
		}(i)
	}
	step = func(now uint64) error {
		wg.Add(n)
		for i := range work {
			work[i] <- now
		}
		wg.Wait()
		// Epoch barrier: grant this cycle's DRAM requests in unit order,
		// exactly as the sequential schedule would have.
		for _, u := range c.Units {
			u.ResolveGrants()
		}
		for _, err := range errs { // lowest unit wins, as in sequential order
			if err != nil {
				return err
			}
		}
		return nil
	}
	stop = func() {
		for i := range work {
			close(work[i])
		}
	}
	return step, stop
}
