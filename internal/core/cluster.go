package core

import (
	"fmt"

	"softbrain/internal/faults"
	"softbrain/internal/mem"
)

// Cluster is several Softbrain units sharing one backing memory and one
// DRAM channel — the 8-unit configuration of the DianNao comparison
// (Section 7.1). Each unit has a private cache and memory port; units
// contend only for DRAM bandwidth, and run in lockstep.
type Cluster struct {
	Units []*Machine
	Mem   *mem.Memory
}

// NewCluster builds n identical units over a shared backing store.
func NewCluster(cfg Config, n int) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: cluster of %d units", n)
	}
	backing := mem.NewMemory()
	dram := mem.NewDRAM(cfg.Mem.MissInterval)
	c := &Cluster{Mem: backing}
	for i := 0; i < n; i++ {
		sys, err := mem.NewSystemShared(cfg.Mem, backing, dram)
		if err != nil {
			return nil, err
		}
		u, err := NewMachineShared(cfg, sys)
		if err != nil {
			return nil, err
		}
		c.Units = append(c.Units, u)
	}
	return c, nil
}

// FaultStats sums the injected-fault counts across all units; zero when
// faults are disabled.
func (c *Cluster) FaultStats() faults.Stats {
	var total faults.Stats
	for _, u := range c.Units {
		s := u.FaultStats()
		total.MemDelays += s.MemDelays
		total.Stalls += s.Stalls
		total.StallCycles += s.StallCycles
		total.Throttles += s.Throttles
		total.BitFlips += s.BitFlips
	}
	return total
}

// Run executes one program per unit concurrently and returns aggregated
// statistics (Cycles is the wall-clock of the slowest unit). Like
// Machine.Run, it never lets an invariant panic escape: the recovered
// MachineError names the unit whose Step failed.
func (c *Cluster) Run(progs []*Program) (stats *Stats, err error) {
	if len(progs) != len(c.Units) {
		return nil, fmt.Errorf("core: %d programs for %d units", len(progs), len(c.Units))
	}
	for i, u := range c.Units {
		if err := u.Load(progs[i]); err != nil {
			return nil, err
		}
	}
	bases := make([]sysCounters, len(c.Units))
	for i, u := range c.Units {
		bases[i] = snapshotSys(u.Sys)
	}
	watchdog := c.Units[0].cfg.WatchdogCycles
	if watchdog == 0 {
		watchdog = defaultWatchdog
	}
	var now uint64
	curUnit := 0
	defer func() {
		if r := recover(); r != nil {
			me := c.Units[curUnit].recoverPanic(r, now)
			me.Unit = curUnit
			stats, err = nil, me
		}
	}()
	// diagnose classifies the stuck cluster: the first unit with a
	// structural cause names the hang, Unknown otherwise.
	diagnose := func(now uint64) *DeadlockError {
		var first *DeadlockError
		for i, u := range c.Units {
			if u.Done() {
				continue
			}
			de := u.diagnose(now)
			de.Unit = i
			if first == nil {
				first = de
			}
			if de.Class != HangUnknown {
				return de
			}
		}
		return first
	}
	anyFaults := false
	for _, u := range c.Units {
		if u.faults != nil {
			anyFaults = true
		}
	}
	var lastProgress, lastChange uint64
	diagnosed := false
	for {
		done := true
		for i, u := range c.Units {
			if u.Done() {
				continue
			}
			done = false
			curUnit = i
			if err := u.Step(now); err != nil {
				if me, ok := err.(*MachineError); ok {
					me.Unit = i
				}
				return nil, err
			}
		}
		if done {
			break
		}
		var pr uint64
		for _, u := range c.Units {
			pr += u.progress()
		}
		stillRunning := false
		for _, u := range c.Units {
			if !u.Done() { // re-check: Step may have just finished the unit
				stillRunning = true
				break
			}
		}
		if pr != lastProgress {
			lastProgress, lastChange = pr, now
			diagnosed = false
		} else if stillRunning {
			idle := now - lastChange
			if idle >= quiesceGrace && !diagnosed {
				quiet := true
				for _, u := range c.Units {
					if !u.Done() && !u.quiescent(now) {
						quiet = false
						break
					}
				}
				if quiet {
					de := diagnose(now)
					if de != nil && (de.Class != HangUnknown || !anyFaults) {
						return nil, de
					}
					diagnosed = true
				}
			}
			if idle > watchdog {
				de := diagnose(now)
				if de == nil {
					de = &DeadlockError{Cycle: now}
				}
				if de.Class == HangUnknown {
					de.Class = HangWatchdog
					de.Detail = "no progress within the watchdog window; no structural cause identified"
				}
				return nil, de
			}
		}
		now++
	}
	total := &Stats{}
	for i, u := range c.Units {
		total.Add(u.collect(now, bases[i]))
	}
	total.Cycles = now
	return total, nil
}
