package core

import (
	"fmt"

	"softbrain/internal/mem"
)

// Cluster is several Softbrain units sharing one backing memory and one
// DRAM channel — the 8-unit configuration of the DianNao comparison
// (Section 7.1). Each unit has a private cache and memory port; units
// contend only for DRAM bandwidth, and run in lockstep.
type Cluster struct {
	Units []*Machine
	Mem   *mem.Memory
}

// NewCluster builds n identical units over a shared backing store.
func NewCluster(cfg Config, n int) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: cluster of %d units", n)
	}
	backing := mem.NewMemory()
	dram := mem.NewDRAM(cfg.Mem.MissInterval)
	c := &Cluster{Mem: backing}
	for i := 0; i < n; i++ {
		sys, err := mem.NewSystemShared(cfg.Mem, backing, dram)
		if err != nil {
			return nil, err
		}
		u, err := NewMachineShared(cfg, sys)
		if err != nil {
			return nil, err
		}
		c.Units = append(c.Units, u)
	}
	return c, nil
}

// Run executes one program per unit concurrently and returns aggregated
// statistics (Cycles is the wall-clock of the slowest unit).
func (c *Cluster) Run(progs []*Program) (*Stats, error) {
	if len(progs) != len(c.Units) {
		return nil, fmt.Errorf("core: %d programs for %d units", len(progs), len(c.Units))
	}
	for i, u := range c.Units {
		if err := u.Load(progs[i]); err != nil {
			return nil, err
		}
	}
	bases := make([]sysCounters, len(c.Units))
	for i, u := range c.Units {
		bases[i] = snapshotSys(u.Sys)
	}
	watchdog := c.Units[0].cfg.WatchdogCycles
	if watchdog == 0 {
		watchdog = defaultWatchdog
	}
	var now, lastProgress, lastChange uint64
	for {
		done := true
		for _, u := range c.Units {
			if u.Done() {
				continue
			}
			done = false
			if err := u.Step(now); err != nil {
				return nil, err
			}
		}
		if done {
			break
		}
		var pr uint64
		for _, u := range c.Units {
			pr += u.progress()
		}
		if pr != lastProgress {
			lastProgress, lastChange = pr, now
		} else if now-lastChange > watchdog {
			state := ""
			for i, u := range c.Units {
				if !u.Done() {
					state += fmt.Sprintf(" unit %d:\n%s", i, u.snapshot())
				}
			}
			return nil, &DeadlockError{Cycle: now, State: state}
		}
		now++
	}
	total := &Stats{}
	for i, u := range c.Units {
		total.Add(u.collect(now, bases[i]))
	}
	total.Cycles = now
	return total, nil
}
