package core

import (
	"fmt"
	"sync/atomic"

	"softbrain/internal/cgra"
	"softbrain/internal/dfg"
	"softbrain/internal/isa"
	"softbrain/internal/sched"
)

// ConfigSpace is the memory region where configuration bitstreams live;
// workload data must stay below it. Every Configure call in the process
// claims a fresh 4 KB slot, so programs sharing one memory image (the
// multi-unit cluster) never collide.
const ConfigSpace uint64 = 0xC000_0000

// ConfigSlotBytes is the space reserved per configuration bitstream.
const ConfigSlotBytes = 0x1000

var configSlot atomic.Uint64

// TraceOp is one step of the control program: either a stream command or
// a span of host computation (address arithmetic, loop control) measured
// in core cycles.
type TraceOp struct {
	Cmd   isa.Command // nil for a pure delay
	Delay uint64
}

// Program is a stream-dataflow program: CGRA configurations plus the
// command trace the control core replays. Build one with the emitter
// methods, which resolve DFG port names against the active configuration
// exactly as the paper's wrapper API does; the first error sticks and is
// reported by Err or at load time.
type Program struct {
	Name string
	// Configs holds the encoded configuration bitstream per memory
	// address; Machine.Load writes them into the memory image, and the
	// machine decodes whatever SD_Config actually reads back.
	Configs map[uint64][]byte
	Trace   []TraceOp

	cur *cgra.Schedule
	err error
}

// NewProgram returns an empty program.
func NewProgram(name string) *Program {
	return &Program{Name: name, Configs: map[uint64][]byte{}}
}

// Err returns the first construction error.
func (p *Program) Err() error { return p.err }

func (p *Program) fail(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf("program %s: %s", p.Name, fmt.Sprintf(format, args...))
	}
}

// Emit appends a raw command, checking that it is encodable in the ISA.
func (p *Program) Emit(cmd isa.Command) {
	if _, err := isa.EncodeCommand(cmd); err != nil {
		p.fail("%v", err)
		return
	}
	p.Trace = append(p.Trace, TraceOp{Cmd: cmd})
}

// Delay models host-side computation between commands.
func (p *Program) Delay(cycles uint64) {
	if cycles > 0 {
		p.Trace = append(p.Trace, TraceOp{Delay: cycles})
	}
}

// Configure serializes the schedule into its configuration bitstream,
// registers it at a fresh address, emits the SD_Config command for it,
// and makes it the active configuration for port-name resolution.
func (p *Program) Configure(s *cgra.Schedule) {
	blob := cgra.EncodeConfig(s)
	if len(blob) > ConfigSlotBytes {
		p.fail("configuration bitstream of %s is %d bytes; slot is %d", s.Graph.Name, len(blob), ConfigSlotBytes)
		return
	}
	addr := ConfigSpace + configSlot.Add(1)*ConfigSlotBytes
	p.Configs[addr] = blob
	p.cur = s
	p.Emit(isa.Config{Addr: addr, Size: uint64(len(blob))})
}

// CompileAndConfigure schedules g onto the fabric and Configures the
// result, returning the schedule for inspection.
func (p *Program) CompileAndConfigure(f *cgra.Fabric, g *dfg.Graph) *cgra.Schedule {
	s, err := sched.Schedule(f, g)
	if err != nil {
		p.fail("%v", err)
		return nil
	}
	p.Configure(s)
	return s
}

// In resolves a DFG input port name to its hardware vector port under
// the active configuration.
func (p *Program) In(name string) isa.InPortID {
	if p.cur == nil {
		p.fail("In(%q) before Configure", name)
		return 0
	}
	i := p.cur.Graph.FindIn(name)
	if i < 0 {
		p.fail("no input port %q in DFG %s", name, p.cur.Graph.Name)
		return 0
	}
	return isa.InPortID(p.cur.InPortMap[i])
}

// Out resolves a DFG output port name to its hardware vector port.
func (p *Program) Out(name string) isa.OutPortID {
	if p.cur == nil {
		p.fail("Out(%q) before Configure", name)
		return 0
	}
	i := p.cur.Graph.FindOut(name)
	if i < 0 {
		p.fail("no output port %q in DFG %s", name, p.cur.Graph.Name)
		return 0
	}
	return isa.OutPortID(p.cur.OutPortMap[i])
}

// IndirectIn returns the i-th indirect-capable hardware input port of
// the fabric, for staging indirect address streams.
func (p *Program) IndirectIn(f *cgra.Fabric, i int) isa.InPortID {
	n := 0
	for hw, spec := range f.InPorts {
		if spec.Indirect {
			if n == i {
				return isa.InPortID(hw)
			}
			n++
		}
	}
	p.fail("no indirect input port %d (fabric has %d)", i, n)
	return 0
}

// Assemble encodes the program's command stream into the binary ISA
// representation (the fixed-width instruction words a RISC-V-embedded
// implementation would carry). Delays are not encoded; they interleave
// with the commands in trace order.
func (p *Program) Assemble() ([]uint64, error) {
	var cmds []isa.Command
	for _, op := range p.Trace {
		if op.Cmd != nil {
			cmds = append(cmds, op.Cmd)
		}
	}
	return isa.EncodeProgram(cmds)
}

// roundTrip re-encodes and decodes every command, so the machine
// executes exactly what the binary ISA can express — any drift between
// a command value and its encoding surfaces as a load-time error.
func (p *Program) roundTrip() error {
	words, err := p.Assemble()
	if err != nil {
		return err
	}
	decoded, err := isa.DecodeProgram(words)
	if err != nil {
		return err
	}
	i := 0
	for t := range p.Trace {
		if p.Trace[t].Cmd == nil {
			continue
		}
		if i >= len(decoded) {
			return fmt.Errorf("program %s: decode lost commands", p.Name)
		}
		p.Trace[t].Cmd = decoded[i]
		i++
	}
	if i != len(decoded) {
		return fmt.Errorf("program %s: decode gained commands", p.Name)
	}
	return nil
}

// CommandWords is the total instruction words of all commands in the
// trace: the control core's dynamic stream-command instruction count.
func (p *Program) CommandWords() uint64 {
	var n uint64
	for _, op := range p.Trace {
		if op.Cmd != nil {
			n += uint64(op.Cmd.Words())
		}
	}
	return n
}
