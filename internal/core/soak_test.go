// Randomized fault-injection soak: generated programs run to
// completion under every fault profile, or fail with a classified,
// typed error. This is the executable form of the panic-free execution
// contract — nothing in here recovers panics itself, so any invariant
// escape kills the test run.
package core_test

import (
	"errors"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"softbrain/internal/core"
	"softbrain/internal/faults"
	"softbrain/internal/fix"
	"softbrain/internal/mem"
	"softbrain/internal/progen"
)

// soakSeeds is the number of generated programs: SOAK_SEEDS when set
// (make soak uses 50), a short deterministic slice otherwise.
func soakSeeds(t *testing.T) int64 {
	if s := os.Getenv("SOAK_SEEDS"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil || n <= 0 {
			t.Fatalf("bad SOAK_SEEDS %q: %v", s, err)
		}
		return n
	}
	if testing.Short() {
		return 5
	}
	return 12
}

// runSoak builds a machine (optionally fault-injected), seeds the
// memory pools deterministically, and runs p.
func runSoak(t *testing.T, cfg core.Config, fc *faults.Config, p *core.Program, seed int64) (*mem.Memory, error) {
	t.Helper()
	cfg.Faults = fc
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	line := make([]byte, 64)
	irng := rand.New(rand.NewSource(seed + 1000))
	for _, base := range progen.MemPools {
		irng.Read(line)
		m.Sys.Mem.Write(base, line)
	}
	_, err = m.Run(p)
	return m.Sys.Mem, err
}

// typedFailure reports whether err is one of the two structured error
// types Run is allowed to return.
func typedFailure(err error) bool {
	var de *core.DeadlockError
	var me *core.MachineError
	return errors.As(err, &de) || errors.As(err, &me)
}

// TestSoakFaultInjection: for each generated program, the fault-free
// run and every non-corrupting fault profile must complete with
// byte-identical memory; corrupting profiles must complete or fail
// with a classified, typed error; and a maimed (unbalanced) variant
// must hang with a structured diagnosis, never a raw panic.
func TestSoakFaultInjection(t *testing.T) {
	seeds := soakSeeds(t)
	cfg := core.DefaultConfig()
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p, ports, err := progen.Addpair(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cmds := progen.Commands(rng, ports)
		for _, c := range cmds {
			p.Emit(c)
		}
		if err := p.Err(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fixed, _, err := fix.Fix(p, cfg)
		if err != nil {
			t.Fatalf("seed %d: fix: %v", seed, err)
		}

		want, err := runSoak(t, cfg, nil, fixed, seed)
		if err != nil {
			t.Fatalf("seed %d: fault-free run: %v", seed, err)
		}

		for i, name := range faults.Profiles() {
			fc, err := faults.Profile(name, seed*31+int64(i))
			if err != nil {
				t.Fatal(err)
			}
			got, err := runSoak(t, cfg, &fc, fixed, seed)
			if err != nil {
				if fc.Corrupting() && typedFailure(err) {
					continue // corruption may legitimately wreck the run
				}
				t.Fatalf("seed %d, profile %s: %v", seed, name, err)
			}
			if fc.Corrupting() {
				continue // completed, but results may differ: fine
			}
			if addr, diff := got.FirstDiff(want); diff && addr < core.ConfigSpace {
				t.Fatalf("seed %d, profile %s: timing-only faults changed memory at %#x",
					seed, name, addr)
			}
		}

		// Maimed variant: drop one non-barrier command and run without
		// repair. The unbalanced program may still complete; when it
		// hangs, the failure must be a structured diagnosis.
		maimed, mports, err := progen.Addpair(cfg)
		if err != nil {
			t.Fatal(err)
		}
		mrng := rand.New(rand.NewSource(seed))
		for _, c := range progen.Maim(progen.Commands(mrng, mports), int(seed)) {
			maimed.Emit(c)
		}
		if err := maimed.Err(); err != nil {
			t.Fatalf("seed %d: maimed program: %v", seed, err)
		}
		if _, err := runSoak(t, cfg, nil, maimed, seed); err != nil && !typedFailure(err) {
			t.Fatalf("seed %d: maimed run returned an untyped error: %v", seed, err)
		}
	}
}
