package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"softbrain/internal/isa"
	"softbrain/internal/obs"
)

// This file wires the observability layer (internal/obs) into the
// machine: per-cycle stall-cause attribution for every component, the
// per-stream bandwidth rows, and the heartbeat hook. Everything here is
// strictly observational — enabling metrics never changes a simulated
// cycle — and a machine without a registry pays one nil check per Step
// and allocates nothing.
//
// Busy is attributed machine-side from monotone work-counter deltas
// (the same counters the trace lanes and progress detection use);
// components are asked for a StallCause only on cycles they did no
// work. Skipped spans are classified once per span: a span is frozen
// by construction (the skip target is the earliest timed wake), so the
// state-based StallCause of the first elided cycle holds for all of
// them, which is what makes metrics byte-identical with skipping on
// and off.

// attrSet holds the machine's attributions plus the previous work-
// counter snapshots that detect Busy cycles.
type attrSet struct {
	cgra, mse, sse, rse, disp, core, ports *obs.Attribution

	prevCGRA, prevMSE, prevSSE, prevRSE, prevCore, prevPorts uint64
}

// EnableMetrics attaches a registry: attributions for every component,
// the dispatcher's issue-to-retire latency histogram, and per-stream
// data-movement rows reported by the engines as streams retire. Call
// before Run; the registry is finalized by the run's stats collection.
func (m *Machine) EnableMetrics(reg *obs.Registry) {
	m.reg = reg
	m.attr = &attrSet{
		cgra:  reg.Attribution("cgra"),
		mse:   reg.Attribution("mse"),
		sse:   reg.Attribution("sse"),
		rse:   reg.Attribution("rse"),
		disp:  reg.Attribution("dispatch"),
		core:  reg.Attribution("core"),
		ports: reg.Attribution("ports"),
	}
	m.disp.EnableLatency(reg.Histogram("dispatch-latency", 64, 65))
	retired := func(id int, kind isa.Kind, bytes uint64) {
		reg.Stream(id, kind.String(), bytes)
	}
	m.mse.Retired = retired
	m.sse.Retired = retired
	m.rse.Retired = retired
}

// Metrics returns the registry installed by EnableMetrics, or nil.
func (m *Machine) Metrics() *obs.Registry { return m.reg }

// MetricsDump finalizes and returns the machine's metrics as a
// single-unit dump. Valid after a completed run.
func (m *Machine) MetricsDump() obs.Dump {
	return obs.Merge([]obs.UnitDump{m.reg.Dump()})
}

// TraceInput assembles this unit's contribution to the Perfetto export
// (obs.WriteTrace): the trace recorder's stream lifetimes plus the
// registry's stall slices. endCycle closes still-open spans.
func (m *Machine) TraceInput(endCycle uint64) obs.TraceInput {
	in := obs.TraceInput{Unit: m.reg.Unit(), Attrs: m.reg.Attributions(), EndCycle: endCycle}
	if m.tracer != nil {
		for _, s := range m.tracer.Spans() {
			in.Spans = append(in.Spans, obs.SpanEvent{
				ID: s.ID, Label: s.Label,
				Enqueued: s.Enqueued, Issued: s.Issued, Completed: s.Completed, Done: s.Done,
			})
		}
	}
	return in
}

// TraceInputs assembles every unit's trace contribution, in unit order.
func (c *Cluster) TraceInputs(endCycle uint64) []obs.TraceInput {
	out := make([]obs.TraceInput, 0, len(c.Units))
	for _, u := range c.Units {
		out = append(out, u.TraceInput(endCycle))
	}
	return out
}

// portsWork sums data movement through every vector port.
func (m *Machine) portsWork() uint64 {
	var w uint64
	for _, q := range m.Ports.In {
		w += q.TotalIn() + q.TotalOut()
	}
	for _, q := range m.Ports.Out {
		w += q.TotalIn() + q.TotalOut()
	}
	return w
}

// portsStallCause classifies the vector ports on a cycle no data
// moved: a completely full port is hard backpressure (PortFull);
// otherwise buffered-but-unmoved data means the consumer's operand set
// is incomplete — the CGRA fires only when every mapped port has data,
// so data sits because a sibling port is empty (PortEmpty).
func (m *Machine) portsStallCause() obs.Cause {
	worst := obs.CauseIdle
	check := func(space, buffered int) {
		switch {
		case space == 0:
			worst = obs.Worse(worst, obs.PortFull)
		case buffered > 0:
			worst = obs.Worse(worst, obs.PortEmpty)
		}
	}
	for _, q := range m.Ports.In {
		check(q.Space(), q.Len())
	}
	for _, q := range m.Ports.Out {
		check(q.Space(), q.Len())
	}
	return worst
}

// coreStallCause classifies the control core on a cycle it issued
// nothing. Mirrors coreComp.NextWake's state analysis.
func (m *Machine) coreStallCause(now uint64) obs.Cause {
	switch {
	case m.prog == nil || m.pc >= len(m.prog.Trace):
		return obs.CauseIdle // trace fully replayed
	case now < m.busyUntil:
		return obs.Busy // mid-instruction (multi-word command or host op)
	case m.prog.Trace[m.pc].Cmd != nil && m.disp.BlocksCore():
		if !m.disp.CanEnqueue() {
			return obs.PortFull // command queue full
		}
		return obs.BarrierDrain // pending SD_Barrier_All
	}
	return obs.CauseIdle
}

// classifyCycle attributes cycle now for every component: Busy when
// its work counter moved since the last classification, its state-
// based StallCause otherwise. Called at the end of every Step when
// metrics are enabled.
func (m *Machine) classifyCycle(now uint64) {
	a := m.attr
	to := now + 1
	if w := m.exec.Instances + m.exec.Drained; w != a.prevCGRA {
		a.prevCGRA = w
		a.cgra.Account(obs.Busy, now, to)
	} else {
		a.cgra.Account(m.exec.StallCause(now), now, to)
	}
	if w := m.mse.BusyCycles; w != a.prevMSE {
		a.prevMSE = w
		a.mse.Account(obs.Busy, now, to)
	} else {
		a.mse.Account(m.mse.StallCause(now), now, to)
	}
	if w := m.sse.ReadGrants + m.sse.WriteGrants + m.sse.BytesOut + m.sse.BytesIn; w != a.prevSSE {
		a.prevSSE = w
		a.sse.Account(obs.Busy, now, to)
	} else {
		a.sse.Account(m.sse.StallCause(now), now, to)
	}
	if w := m.rse.BusyCycles; w != a.prevRSE {
		a.prevRSE = w
		a.rse.Account(obs.Busy, now, to)
	} else {
		a.rse.Account(m.rse.StallCause(now), now, to)
	}
	// The dispatcher self-reports Busy: retires and barrier pops move no
	// monotone counter.
	a.disp.Account(m.disp.StallCause(now), now, to)
	if w := m.coreInstr; w != a.prevCore {
		a.prevCore = w
		a.core.Account(obs.Busy, now, to)
	} else {
		a.core.Account(m.coreStallCause(now), now, to)
	}
	if w := m.portsWork(); w != a.prevPorts {
		a.prevPorts = w
		a.ports.Account(obs.Busy, now, to)
	} else {
		a.ports.Account(m.portsStallCause(), now, to)
	}
}

// classifySpan attributes an elided skip span [from, to). The machine
// was frozen for the whole span — the skip target is the earliest
// timed wake, so every state-based classification is constant across
// it — and frozen means workless, so no Busy deltas are possible
// (except the timed states the components report as Busy themselves).
func (m *Machine) classifySpan(from, to uint64) {
	a := m.attr
	a.cgra.Account(m.exec.StallCause(from), from, to)
	a.mse.Account(m.mse.StallCause(from), from, to)
	a.sse.Account(m.sse.StallCause(from), from, to)
	a.rse.Account(m.rse.StallCause(from), from, to)
	a.disp.Account(m.disp.StallCause(from), from, to)
	a.core.Account(m.coreStallCause(from), from, to)
	a.ports.Account(m.portsStallCause(), from, to)
}

// onSkip records an elided span [from, to) — the kernel only counts it
// (slept components replay their own bookkeeping lazily, see
// sim.Kernel) — and attributes its stall causes. Both run loops
// (Machine.run, Cluster.Run) call this for whole-machine jumps.
func (m *Machine) onSkip(from, to uint64) {
	m.kern.Jump(from, to)
	if m.attr != nil {
		m.classifySpan(from, to)
	}
}

// finishMetrics finalizes the registry at the end of a run: tops every
// attribution up to the final cycle (a unit that retired early idles
// until its cluster finishes), records the cycle count the
// conservation invariant checks against, and snapshots the machine's
// monotone counters.
func (m *Machine) finishMetrics(cycles uint64) {
	if m.reg == nil {
		return
	}
	for _, a := range m.reg.Attributions() {
		a.Finish(cycles)
	}
	m.reg.SetCycles(cycles)
	m.reg.Counter("commands").Set(m.disp.Issued)
	m.reg.Counter("core-instrs").Set(m.coreInstr)
	m.reg.Counter("cgra-instances").Set(m.exec.Instances)
	m.reg.Counter("cgra-fu-ops").Set(m.exec.FUOps)
	m.reg.Counter("mem-bytes").Set(m.mse.BytesDelivered + m.mse.BytesStored)
	m.reg.Counter("scratch-bytes").Set(m.sse.BytesIn + m.sse.BytesOut)
	m.reg.Counter("recurrence-bytes").Set(m.rse.BytesMoved)
	ds := m.disp.BarrierDrains()
	rows := make([]obs.BarrierDrainDump, len(ds))
	for i, bd := range ds {
		rows[i] = obs.BarrierDrainDump{Pos: bd.Pos, Kind: bd.Kind.String(), Cycles: bd.Cycles}
	}
	m.reg.SetBarrierDrains(rows)
}

// ProgressReport is a point-in-time view of a running machine for the
// heartbeat (sdsim -progress, sdbench -progress, sdserve streaming).
type ProgressReport struct {
	Cycle        uint64
	Commands     uint64 // stream commands issued so far
	Progress     uint64 // the machine's monotone progress counter
	RetiredBytes uint64 // bytes moved by the engines so far (mem + scratch + recurrence)
	StallMix     string // current attribution mix, "" when metrics are off
}

// Report snapshots the machine's progress at cycle now.
func (m *Machine) Report(now uint64) ProgressReport {
	r := ProgressReport{
		Cycle:        now,
		Commands:     m.disp.Issued,
		Progress:     m.kern.Progress(),
		RetiredBytes: m.retiredBytes(),
	}
	if m.reg != nil {
		r.StallMix = stallMix(m.reg.Attributions())
	}
	return r
}

// retiredBytes sums the engines' monotone data-movement counters: the
// "how much work has the machine actually completed" number behind the
// heartbeat's retired-bytes field.
func (m *Machine) retiredBytes() uint64 {
	return m.mse.BytesDelivered + m.mse.BytesStored +
		m.sse.BytesIn + m.sse.BytesOut + m.rse.BytesMoved
}

// Line renders the report as the one-line heartbeat shared by
// sdsim -progress and sdbench -progress (callers prefix their own
// context, e.g. the tool or workload name).
func (r ProgressReport) Line() string {
	s := fmt.Sprintf("cycle %d, %d commands issued, %d bytes retired", r.Cycle, r.Commands, r.RetiredBytes)
	if r.StallMix != "" {
		s += ", stall mix: " + r.StallMix
	}
	return s
}

// stallMix renders the aggregate cause distribution across the given
// attributions as the top shares, e.g. "busy 45% idle 31% dram-bw 12%".
func stallMix(attrs []*obs.Attribution) string {
	var causes [obs.NumCauses]uint64
	var total uint64
	for _, a := range attrs {
		for c, n := range a.Causes() {
			causes[c] += n
			total += n
		}
	}
	if total == 0 {
		return ""
	}
	type share struct {
		c obs.Cause
		n uint64
	}
	shares := make([]share, 0, obs.NumCauses)
	for c, n := range causes {
		if n > 0 {
			shares = append(shares, share{obs.Cause(c), n})
		}
	}
	sort.Slice(shares, func(i, j int) bool {
		if shares[i].n != shares[j].n {
			return shares[i].n > shares[j].n
		}
		return shares[i].c < shares[j].c
	})
	if len(shares) > 3 {
		shares = shares[:3]
	}
	parts := make([]string, len(shares))
	for i, s := range shares {
		parts[i] = fmt.Sprintf("%v %d%%", s.c, 100*s.n/total)
	}
	return strings.Join(parts, " ")
}

// SetHeartbeat installs a progress callback invoked from the run loop
// roughly every interval of host time (checked every heartbeatStride
// cycles, so a hot loop pays one counter increment). For long soaks
// and sdsim -progress; purely observational.
func (m *Machine) SetHeartbeat(every time.Duration, fn func(ProgressReport)) {
	m.hbEvery = every
	m.hbFn = fn
}

// heartbeatStride bounds how often the run loop consults the host
// clock: every 4096 simulated cycles.
const heartbeatStride = 1 << 12

// heartbeat fires the callback when the interval elapsed; called every
// heartbeatStride cycles by the run loops.
func (m *Machine) heartbeat(now uint64) {
	if m.hbFn == nil {
		return
	}
	if m.hbLast.IsZero() {
		m.hbLast = time.Now()
		return
	}
	if time.Since(m.hbLast) >= m.hbEvery {
		m.hbLast = time.Now()
		m.hbFn(m.Report(now))
	}
}
