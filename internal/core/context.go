package core

import (
	"context"
	"fmt"
)

// CanceledError reports a run ended early by its context: the caller
// canceled, or the wall-clock deadline expired. It is the third typed
// outcome of the execution contract next to DeadlockError (the machine
// stopped) and MachineError (the machine broke): here the machine was
// healthy and the host gave up. Cancellation is detected on the run
// loop's heartbeat stride, so Cycle is within a few thousand simulated
// cycles of the cancellation instant; the machine's partial state is
// abandoned, and a fresh machine re-running the same program is
// byte-identical to an uninterrupted run (see cancel_test.go).
type CanceledError struct {
	Cycle uint64
	Unit  int   // cluster unit count context; 0 for a single machine
	Err   error // context.Canceled, context.DeadlineExceeded, or the cancel cause
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("core: run canceled at cycle %d: %v", e.Cycle, e.Err)
}

// Unwrap exposes the context error, so errors.Is(err, context.Canceled)
// and errors.Is(err, context.DeadlineExceeded) work.
func (e *CanceledError) Unwrap() error { return e.Err }

// canceled returns the typed cancellation error for ctx at cycle now,
// or nil if ctx is still live. The run loops call it on the heartbeat
// stride — one ctx.Err() atomic load every few thousand cycles — so
// cancellation costs nothing on the hot path and reacts within host
// milliseconds.
func canceled(ctx context.Context, now uint64) *CanceledError {
	if ctx.Err() == nil {
		return nil
	}
	return &CanceledError{Cycle: now, Err: context.Cause(ctx)}
}
