// Package core assembles the Softbrain microarchitecture (Figure 7):
// control core, stream dispatcher, the three stream engines, vector
// ports, scratchpad, CGRA and memory interface, and runs stream-dataflow
// programs on it cycle by cycle. It is the primary deliverable of the
// reproduction: a functional, timing-accurate model of the paper's
// implementation.
package core

import (
	"fmt"

	"softbrain/internal/cgra"
	"softbrain/internal/faults"
	"softbrain/internal/mem"
)

// Config parameterizes one Softbrain unit.
type Config struct {
	Fabric *cgra.Fabric // CGRA geometry, FU mix, vector ports

	Mem          mem.SysConfig // memory-system timing
	ScratchBytes int           // programmable scratchpad capacity

	CmdQueueDepth int // stream-dispatcher command queue entries
	StreamTable   int // stream-table entries per engine direction
	PadBufEntries int // MSE-to-SSE write buffer entries

	// IssueCost is the control-core cycles consumed per instruction
	// word of a stream command (commands are 1-3 words).
	IssueCost int

	// WatchdogCycles ends a simulation that makes no progress for this
	// long, reporting a deadlock diagnosis. 0 uses the default. Most
	// deadlocks are caught far earlier by quiescence detection; the
	// watchdog is the backstop for live-locks and fault-perturbed runs.
	WatchdogCycles uint64

	// Faults, when non-nil and enabled, injects deterministic seeded
	// faults (memory delays, engine stalls, bus throttling, bit flips)
	// at the machine's timing boundaries. See internal/faults.
	Faults *faults.Config

	// Ablation switches, normally false. They disable, respectively:
	// the §4.5 balance arbitration unit, the §4.2 all-requests-in-flight
	// optimization, and the dispatch window (forcing strict head-of-queue
	// issue). See internal/bench's ablation study.
	NoBalanceUnit bool
	NoAllInFlight bool
	InOrderIssue  bool

	// NoSkipAhead disables the run loop's idle skip-ahead (see
	// internal/sim and docs/SIMKERNEL.md): every cycle is ticked, as
	// the pre-kernel simulator did. Results are cycle-identical either
	// way — this is a host-performance switch kept for the equivalence
	// tests and benchmarking, not a behavioral one. Skip-ahead also
	// turns itself off under fault profiles with per-cycle draws.
	NoSkipAhead bool

	// NoSpanRetire disables batched span retirement (see
	// Machine.retireSpan and sim.Kernel.RetireSpan) while keeping the
	// wake-set scheduler. Like NoSkipAhead it is a host-performance
	// switch, not a behavioral one: a retired span runs the same
	// component ticks at the same cycles as per-cycle stepping, so
	// results are cycle-identical either way. NoSkipAhead implies it
	// (spans ride on the wake-set machinery). Kept for the equivalence
	// tests and benchmarking.
	NoSpanRetire bool
}

// DefaultConfig is the broadly provisioned Softbrain of Section 7.2.
func DefaultConfig() Config {
	return Config{
		Fabric:        cgra.BroadFabric(),
		Mem:           mem.DefaultSysConfig(),
		ScratchBytes:  4 << 10,
		CmdQueueDepth: 8,
		StreamTable:   8,
		PadBufEntries: 8,
		IssueCost:     1,
	}
}

// DNNConfig is the Softbrain unit provisioned for the DianNao
// comparison (Section 7.1): 16-bit 4-way subword FUs and sigmoid units.
func DNNConfig() Config {
	c := DefaultConfig()
	c.Fabric = cgra.DNNFabric()
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Fabric == nil {
		return fmt.Errorf("core: config has no fabric")
	}
	if err := c.Fabric.Validate(); err != nil {
		return err
	}
	if c.ScratchBytes <= 0 || c.CmdQueueDepth <= 0 || c.StreamTable <= 0 ||
		c.PadBufEntries <= 0 || c.IssueCost <= 0 {
		return fmt.Errorf("core: non-positive config parameter: %+v", c)
	}
	if c.WatchdogCycles != 0 {
		if floor := minWatchdog(c.IssueCost); c.WatchdogCycles < floor {
			return fmt.Errorf("core: WatchdogCycles %d below the minimum %d (the watchdog must outlast the quiescence grace period and the issue of one %d-word command at IssueCost %d)",
				c.WatchdogCycles, floor, maxCommandWords, c.IssueCost)
		}
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// maxCommandWords is the longest encodable stream command (1-3 words).
const maxCommandWords = 3

// minWatchdog is the smallest WatchdogCycles that cannot fire spuriously:
// it must exceed the quiescence grace period (so structured diagnosis
// gets a chance first) and the core-busy window of the most expensive
// single command, during which zero progress is normal.
func minWatchdog(issueCost int) uint64 {
	floor := uint64(2 * quiesceGrace)
	if c := uint64(maxCommandWords * issueCost); c > floor {
		floor = c
	}
	return floor
}
