package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"softbrain/internal/cgra"
	"softbrain/internal/dispatch"
	"softbrain/internal/engine"
	"softbrain/internal/faults"
	"softbrain/internal/isa"
	"softbrain/internal/mem"
	"softbrain/internal/obs"
	"softbrain/internal/port"
	"softbrain/internal/scratch"
	"softbrain/internal/sim"
	"softbrain/internal/trace"
)

// Stats aggregates the observable behavior of one run; the power model
// converts its activity counts into energy.
type Stats struct {
	Cycles uint64

	// Control core.
	CoreInstrs      uint64 // dynamic instructions (command words + host ops)
	CoreStallCycles uint64

	// Dispatcher.
	Commands      uint64
	BarrierCycles uint64
	ResourceStall uint64

	// CGRA.
	Instances uint64
	FUOps     uint64

	// Data movement.
	MemBytesRead     uint64
	MemBytesWritten  uint64
	MemLines         uint64
	CacheHits        uint64
	CacheMisses      uint64
	ScratchBytesRead uint64
	ScratchBytesWrit uint64
	RecurrenceBytes  uint64

	// Engine occupancy.
	MSEBusy, SSEBusy, RSEBusy uint64
}

// Machine is one Softbrain unit.
type Machine struct {
	cfg Config

	// Lint, when set, vets programs before LoadStrict accepts them.
	// Install internal/lint's checker with
	//
	//	m.Lint = lint.Hook(m.Config())
	//
	// (core cannot import the linter: lint analyzes core.Program).
	Lint func(*Program) error

	Sys    *mem.System
	Pad    *scratch.Pad
	Ports  *engine.Ports
	mse    *engine.MSE
	sse    *engine.SSE
	rse    *engine.RSE
	disp   *dispatch.Dispatcher
	exec   *cgraExec
	padBuf *engine.PadWriteBuf
	faults *faults.Injector

	// kern sequences the unit's components (see internal/sim and
	// components.go); Step ticks only the components the kernel's wake
	// hints and watch signals say could act, and run() uses the combined
	// hint for idle skip-ahead.
	kern        sim.Kernel
	noSkip      bool  // wake scheduling disabled (config or per-cycle fault draws)
	spans       bool  // batched span retirement enabled
	lastStepped int64 // last cycle Step actually ran, -1 before the first
	coreStalled bool  // last core tick stalled on the dispatcher

	prog      *Program
	pc        int
	busyUntil uint64
	coreInstr uint64
	coreStall uint64

	configErr error // deferred error from the config-install callback

	tracer    *trace.Recorder
	prevBusy  [3]uint64 // MSE, SSE, RSE busy counters at last Step
	prevInst  uint64
	prevInstr uint64

	// Observability (see obs.go in this package). All nil/zero unless
	// EnableMetrics / SetHeartbeat are called; the tick path pays one
	// nil check and allocates nothing when disabled.
	reg     *obs.Registry
	attr    *attrSet
	hbEvery time.Duration
	hbFn    func(ProgressReport)
	hbLast  time.Time
}

// NewMachine builds a unit with a private memory system.
func NewMachine(cfg Config) (*Machine, error) {
	sys, err := mem.NewSystem(cfg.Mem)
	if err != nil {
		return nil, err
	}
	return NewMachineShared(cfg, sys)
}

// NewMachineShared builds a unit over an existing memory system, so
// several units can share cache and DRAM bandwidth (the 8-unit DNN
// configuration).
func NewMachineShared(cfg Config, sys *mem.System) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := cfg.Fabric
	in := make([]*port.Queue, len(f.InPorts))
	for i, spec := range f.InPorts {
		q, err := port.New(fmt.Sprintf("in%d", i), spec.Width, spec.Depth)
		if err != nil {
			return nil, err
		}
		in[i] = q
	}
	out := make([]*port.Queue, len(f.OutPorts))
	for i, spec := range f.OutPorts {
		q, err := port.New(fmt.Sprintf("out%d", i), spec.Width, spec.Depth)
		if err != nil {
			return nil, err
		}
		out[i] = q
	}
	m := &Machine{
		cfg:    cfg,
		Sys:    sys,
		Pad:    scratch.New(cfg.ScratchBytes),
		Ports:  engine.NewPorts(in, out),
		padBuf: engine.NewPadWriteBuf(cfg.PadBufEntries),
	}
	if cfg.Faults != nil {
		m.faults = faults.New(*cfg.Faults)
	}
	m.mse = engine.NewMSE(sys, m.Ports, m.padBuf, cfg.StreamTable, m.onConfig)
	m.mse.DisableBalance = cfg.NoBalanceUnit
	m.mse.DisableDrain = cfg.NoAllInFlight
	m.mse.Faults = m.faults
	m.sse = engine.NewSSE(m.Pad, m.Ports, m.padBuf, cfg.StreamTable)
	m.sse.Faults = m.faults
	m.rse = engine.NewRSE(m.Ports, cfg.StreamTable)
	m.rse.Faults = m.faults
	m.disp = dispatch.New(m.mse, m.sse, m.rse, len(in), len(out), cfg.CmdQueueDepth)
	m.disp.InOrderIssue = cfg.InOrderIssue
	m.exec = newCGRAExec(m.Ports)
	// Per-cycle fault draws (stall, throttle) consume randomness every
	// ticked cycle, so skipping would change the fault schedule.
	m.noSkip = cfg.NoSkipAhead || (m.faults != nil && m.faults.PerCycleDraws())
	m.spans = !m.noSkip && !cfg.NoSpanRetire
	m.lastStepped = -1
	m.kern.Register(cgraComp{m})
	m.kern.Register(mseComp{m})
	m.kern.Register(sseComp{m})
	m.kern.Register(rseComp{m})
	m.kern.Register(dispComp{m})
	m.kern.Register(coreComp{m})
	return m, nil
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// EnableTrace records an execution timeline (Figure 4b style) covering
// the first limit cycles; render it with Trace().Gantt.
func (m *Machine) EnableTrace(limit uint64) {
	m.tracer = trace.NewRecorder(limit)
	m.disp.Tracer = m.tracer
}

// Trace returns the recorder installed by EnableTrace, or nil.
func (m *Machine) Trace() *trace.Recorder { return m.tracer }

// onConfig decodes the configuration bitstream the SD_Config stream
// just finished loading — read back from the memory image, so the
// machine runs exactly what was stored there.
func (m *Machine) onConfig(addr uint64) {
	blob, ok := m.prog.Configs[addr]
	if !ok {
		m.configErr = fmt.Errorf("core: SD_Config loaded unknown address %#x", addr)
		return
	}
	data := make([]byte, len(blob))
	m.Sys.Mem.Read(addr, data)
	s, err := cgra.DecodeConfig(m.cfg.Fabric, data)
	if err != nil {
		m.configErr = fmt.Errorf("core: decoding configuration at %#x: %w", addr, err)
		return
	}
	if err := m.exec.Install(s); err != nil {
		m.configErr = err
	}
}

// Load prepares the machine to run p. The command stream is round-
// tripped through the binary ISA encoding, so the machine executes the
// architecturally encodable program, not arbitrary Go values.
func (m *Machine) Load(p *Program) error {
	if err := p.Err(); err != nil {
		return err
	}
	if err := p.roundTrip(); err != nil {
		return err
	}
	for addr, blob := range p.Configs {
		m.Sys.Mem.Write(addr, blob)
	}
	m.prog = p
	m.pc = 0
	m.busyUntil = 0
	// A reused machine restarts at cycle 0: rewind the wake-set state so
	// the previous run's cached "everything idle" hints cannot put the
	// new run to sleep before its first tick.
	m.kern.Reset()
	m.lastStepped = -1
	return nil
}

// LoadStrict is Load behind the Lint hook: the program is statically
// vetted first and refused when the hook reports a hazard. A machine
// without a hook refuses every program — strict mode is an explicit
// opt-in, not a silent fallback to Load.
func (m *Machine) LoadStrict(p *Program) error {
	if m.Lint == nil {
		return fmt.Errorf("core: LoadStrict requires a Lint hook (install internal/lint.Hook)")
	}
	if err := m.Lint(p); err != nil {
		return fmt.Errorf("core: refusing to load %s: %w", p.Name, err)
	}
	return m.Load(p)
}

// RunStrict is Run via LoadStrict.
func (m *Machine) RunStrict(p *Program) (*Stats, error) {
	if err := m.LoadStrict(p); err != nil {
		return nil, err
	}
	return m.run(context.Background())
}

// Done reports whether the program has fully completed.
func (m *Machine) Done() bool {
	return m.prog != nil && m.pc >= len(m.prog.Trace) && m.disp.Idle() && m.exec.InFlight() == 0
}

// Step advances one cycle. In the default wake-set mode it ticks only
// the components whose cached wake hint, timed deadline, or watch
// signal says they could act this cycle (see sim.Kernel); a skipped
// component's per-cycle bookkeeping is replayed lazily by BeforeTick
// just before its next real tick. With wake scheduling disabled
// (NoSkipAhead, or per-cycle fault draws) every component ticks every
// cycle. Component errors come back wrapped in a MachineError naming
// the component and cycle; a fault-injected stall freezes the affected
// stream engine for the cycle (see components.go).
func (m *Machine) Step(now uint64) error {
	if m.noSkip {
		return m.stepAll(now)
	}
	// A deferred program error set by the core (the last component) on
	// the previous cycle surfaces here — the same cycle the legacy
	// tick-everything loop would have surfaced it.
	if m.configErr != nil {
		return m.stepError("program", now, m.configErr)
	}
	comps := m.kern.Components()
	ticked := 0
	for i, c := range comps {
		if !m.kern.ShouldTick(i, now) {
			m.kern.Stats.CompSleeps++
			continue
		}
		m.kern.BeforeTick(i, now)
		if err := c.Tick(now); err != nil {
			return m.stepError(c.Name(), now, err)
		}
		m.kern.AfterTick(i, now)
		ticked++
		// A deferred program error (config decode, enqueue validation)
		// set by this cycle's MSE tick surfaces here; one set by the
		// core surfaces next Step.
		if i < len(comps)-1 && m.configErr != nil {
			return m.stepError("program", now, m.configErr)
		}
	}
	m.kern.Stats.Cycles++
	if ticked >= len(m.kern.Stats.TickHist) {
		ticked = len(m.kern.Stats.TickHist) - 1
	}
	m.kern.Stats.TickHist[ticked]++
	m.lastStepped = int64(now)
	m.mark(now)
	if m.attr != nil {
		m.classifyCycle(now)
	}
	return nil
}

// stepAll is the legacy per-cycle path: every component ticks, no wake
// bookkeeping. Used when wake scheduling is disabled and as the
// reference semantics the wake-set path must reproduce exactly (see
// TestSkipAheadWorkloads and the fuzz equivalence suite).
func (m *Machine) stepAll(now uint64) error {
	comps := m.kern.Components()
	for i, c := range comps {
		if err := c.Tick(now); err != nil {
			return m.stepError(c.Name(), now, err)
		}
		// A deferred program error (config decode, enqueue validation)
		// set by an earlier cycle or this one's MSE tick surfaces here;
		// one set by the core (the last component) surfaces next Step.
		if i < len(comps)-1 && m.configErr != nil {
			return m.stepError("program", now, m.configErr)
		}
	}
	m.kern.Stats.Cycles++
	m.kern.Stats.CompTicks += uint64(len(comps))
	b := len(comps)
	if b >= len(m.kern.Stats.TickHist) {
		b = len(m.kern.Stats.TickHist) - 1
	}
	m.kern.Stats.TickHist[b]++
	m.lastStepped = int64(now)
	m.mark(now)
	if m.attr != nil {
		m.classifyCycle(now)
	}
	return nil
}

// retireSpan attempts to retire a batched span of cycles starting at
// cycle now: when exactly one component is due and every peer sleeps,
// that component's ticks run in a tight loop — identical Tick calls at
// identical cycles, so the span is bit-exact with per-cycle stepping —
// until a peer's watch signature moves, the component goes quiet, a
// peer's timed wake arrives, or the exclusive deadline is reached (the
// cycle the caller's watchdog would fire, mirroring the idle-jump
// cap). The fast path skips the per-cycle run-loop and scheduler
// machinery: no Step dispatch, no ShouldTick scan, no progress or
// hang probes per cycle. It returns the number of cycles retired, 0
// when no span is eligible.
//
// Spans are skipped entirely under per-cycle obligations the batch
// loop does not replay: cycle attribution (m.attr) and the execution
// tracer's per-cycle marks.
func (m *Machine) retireSpan(now, deadline uint64) (uint64, error) {
	if !m.spans || m.attr != nil || m.tracer != nil || m.configErr != nil || m.prog == nil {
		return 0, nil
	}
	sole, limit := m.kern.SoloReady(now)
	if sole < 0 {
		return 0, nil
	}
	if limit > deadline {
		limit = deadline
	}
	if limit <= now+1 {
		return 0, nil // a span of one cycle is just a Step
	}
	comps := m.kern.Components()
	m.kern.BeforeTick(sole, now)
	n, err := m.kern.RetireSpan(sole, now, limit, func(i int, t uint64) error {
		// Mirror Step's deferred-error protocol exactly: an error set by
		// the last component (the core) surfaces at the next cycle's
		// top-of-step check — which for a span cycle is the moment just
		// before the sole component's tick; one set by an earlier
		// component surfaces the same cycle.
		if i == sole && m.configErr != nil {
			return m.stepError("program", t, m.configErr)
		}
		if err := comps[i].Tick(t); err != nil {
			return m.stepError(comps[i].Name(), t, err)
		}
		if i < len(comps)-1 && m.configErr != nil {
			return m.stepError("program", t, m.configErr)
		}
		return nil
	})
	if n > 0 {
		m.lastStepped = int64(now + n - 1)
	}
	return n, err
}

// NextWake combines the components' wake hints; a machine running with
// skip-ahead disabled always reports Ready.
func (m *Machine) NextWake(now uint64) sim.Hint {
	if m.noSkip {
		return sim.ReadyNow()
	}
	return m.kern.NextWake(now)
}

// SkippedCycles is the number of idle cycles the run loop elided.
func (m *Machine) SkippedCycles() uint64 { return m.kern.Skipped() }

// SchedStats reports the wake-set scheduler's counters for this unit:
// cycles simulated, components ticked and slept, signal-triggered
// wakes, whole-machine jumps, and retired-span shape.
func (m *Machine) SchedStats() sim.SchedStats { return m.kern.Stats }

// SchedTickBy reports the executed tick count per component name, the
// per-component view behind SchedStats().CompTicks.
func (m *Machine) SchedTickBy() map[string]uint64 {
	out := map[string]uint64{}
	for i, c := range m.kern.Components() {
		out[c.Name()] += m.kern.TickBy[i]
	}
	return out
}

// ResolveGrants resolves deferred DRAM grants at the cluster's epoch
// barrier and patches the provisional completion times held by the
// memory stream engine.
func (m *Machine) ResolveGrants() {
	if resolve := m.Sys.ResolveGrants(); resolve != nil {
		m.mse.ResolveDeferred(resolve)
	}
}

// stalled reports whether fault injection freezes engine e this cycle.
func (m *Machine) stalled(e faults.Engine, now uint64) bool {
	return m.faults != nil && m.faults.Stalled(e, now)
}

// FaultStats returns the injected-fault counts, zero when faults are
// disabled.
func (m *Machine) FaultStats() faults.Stats {
	if m.faults == nil {
		return faults.Stats{}
	}
	return m.faults.Stats()
}

// mark records per-lane activity for the execution trace.
func (m *Machine) mark(now uint64) {
	if m.tracer == nil {
		return
	}
	if b := m.mse.BusyCycles; b != m.prevBusy[0] {
		m.prevBusy[0] = b
		m.tracer.Mark("MSE", now)
	}
	if b := m.sse.BusyCycles; b != m.prevBusy[1] {
		m.prevBusy[1] = b
		m.tracer.Mark("SSE", now)
	}
	if b := m.rse.BusyCycles; b != m.prevBusy[2] {
		m.prevBusy[2] = b
		m.tracer.Mark("RSE", now)
	}
	if i := m.exec.Instances; i != m.prevInst {
		m.prevInst = i
		m.tracer.Mark("CGRA", now)
	}
	if c := m.coreInstr; c != m.prevInstr {
		m.prevInstr = c
		m.tracer.Mark("core", now)
	}
}

// stepCore replays the command trace: a single-issue inorder core that
// spends IssueCost cycles per instruction word and stalls on a full
// queue or a pending SD_Barrier_All.
func (m *Machine) stepCore(now uint64) {
	if m.prog == nil || m.pc >= len(m.prog.Trace) || now < m.busyUntil {
		return
	}
	op := m.prog.Trace[m.pc]
	if op.Cmd == nil {
		m.busyUntil = now + op.Delay
		m.coreInstr += op.Delay // host computation: ~1 op/cycle
		m.pc++
		return
	}
	if m.disp.BlocksCore() {
		m.coreStall++
		return
	}
	if err := m.disp.EnqueueAt(op.Cmd, m.pc, now); err != nil {
		// Enqueue validated at CanEnqueue time; a failure here is a
		// program error surfaced on the next Step.
		m.configErr = err
		return
	}
	words := uint64(op.Cmd.Words())
	m.busyUntil = now + words*uint64(m.cfg.IssueCost)
	m.coreInstr += words
	m.pc++
}

// progress is a monotone counter; if it stops changing, nothing is
// happening in the machine. It is the sum of the components' Progress
// counters (see components.go), so machine and cluster hang detection
// share one definition.
func (m *Machine) progress() uint64 { return m.kern.Progress() }

// snapshot renders the stuck state for deadlock diagnostics.
func (m *Machine) snapshot() string {
	traceLen := 0
	if m.prog != nil {
		traceLen = len(m.prog.Trace)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  pc=%d/%d queue=%d active-streams: mse=%d sse=%d rse=%d cgra-inflight=%d\n",
		m.pc, traceLen, m.disp.QueueLen(), m.mse.Active(), m.sse.Active(), m.rse.Active(), m.exec.InFlight())
	for i, q := range m.Ports.In {
		if q.Len() > 0 || m.Ports.Reserved(i) > 0 {
			fmt.Fprintf(&b, "  in%d: %dB buffered, %dB reserved, %dB space\n", i, q.Len(), m.Ports.Reserved(i), q.Space())
		}
	}
	for i, q := range m.Ports.Out {
		if q.Len() > 0 {
			fmt.Fprintf(&b, "  out%d: %dB buffered\n", i, q.Len())
		}
	}
	return b.String()
}

const defaultWatchdog = 50_000

// Run executes the program to completion and returns statistics.
func (m *Machine) Run(p *Program) (*Stats, error) {
	return m.RunContext(context.Background(), p)
}

// RunContext is Run bounded by a context: when ctx is canceled or its
// deadline expires mid-run, the loop stops within one heartbeat stride
// and returns a *CanceledError wrapping the context cause. The cycle
// watchdog bounds simulated time; the context bounds host wall-clock
// time — a hung simulation is caught by the former, a slow host by the
// latter. The machine's partial state is abandoned; load a fresh
// machine to re-run.
func (m *Machine) RunContext(ctx context.Context, p *Program) (*Stats, error) {
	if err := m.Load(p); err != nil {
		return nil, err
	}
	return m.run(ctx)
}

// run executes the loaded program to completion. Invariant panics from
// any component are recovered into a MachineError — the execution
// contract is that Run returns, it never takes the host process down.
func (m *Machine) run(ctx context.Context) (stats *Stats, err error) {
	base := snapshotSys(m.Sys)
	watchdog := m.cfg.WatchdogCycles
	if watchdog == 0 {
		watchdog = defaultWatchdog
	}
	var now uint64
	defer func() {
		if r := recover(); r != nil {
			stats, err = nil, m.recoverPanic(r, now)
		}
	}()
	if ce := canceled(ctx, now); ce != nil {
		return nil, ce
	}
	var lastProgress, lastChange uint64
	var hbIter uint64
	diagnosed := false
	for !m.Done() {
		if err := m.Step(now); err != nil {
			return nil, err
		}
		if hbIter++; hbIter&(heartbeatStride-1) == 0 {
			if ce := canceled(ctx, now); ce != nil {
				return nil, ce
			}
			m.heartbeat(now)
		}
		if pr := m.progress(); pr != lastProgress {
			lastProgress, lastChange = pr, now
			diagnosed = false
		} else if !m.Done() { // Step may have just finished the program
			idle := now - lastChange
			// Quiescence: no progress for the grace period and no timed
			// event pending anywhere — provably stuck, so diagnose now
			// rather than burning the full watchdog budget.
			if idle >= quiesceGrace && !diagnosed && m.quiescent(now) {
				de := m.diagnose(now)
				if de.Class != HangUnknown || m.faults == nil {
					return nil, de
				}
				// Unknown cause under fault injection: be conservative
				// and keep running until the watchdog.
				diagnosed = true
			}
			if idle > watchdog {
				de := m.diagnose(now)
				if de.Class == HangUnknown {
					de.Class = HangWatchdog
					de.Detail = "no progress within the watchdog window; no structural cause identified"
				}
				return nil, de
			}
		}
		next := now + 1
		if !m.noSkip && !m.Done() {
			// Idle skip-ahead: when every component is asleep and the
			// earliest wake is a known future cycle, jump there — the
			// machine is frozen (nothing Ready, no watch signal moved),
			// so the elided cycles are provably no-ops and the kernel
			// only records them; the slept components replay their
			// bookkeeping lazily before their next tick. The target is
			// capped at the cycle the watchdog would fire so a hung run
			// diagnoses at exactly the cycle the unskipped run would;
			// skipped spans contain no quiescent cycle (a timed event is
			// pending throughout), so no quiescence check is bypassed.
			if h := m.kern.NextWake(now); h.Kind == sim.WakeTimed && h.At > next {
				target := h.At
				if deadline := lastChange + watchdog + 1; target > deadline {
					target = deadline
				}
				if target > next {
					m.onSkip(next, target)
					next = target
				}
			} else {
				// Span retirement: the machine is not frozen, but if a
				// single component is due it can batch its solo ticks
				// (see retireSpan). Capped at the watchdog deadline like
				// the idle jump above.
				n, err := m.retireSpan(next, lastChange+watchdog+1)
				if err != nil {
					return nil, err
				}
				next += n
			}
		}
		now = next
	}
	return m.collect(now, base), nil
}

// sysCounters is the subset of memory-system statistics snapshotted to
// attribute shared-system activity to one run.
type sysCounters struct {
	reads, writes, bytesRead, bytesWritten, hits, misses uint64
}

func snapshotSys(s *mem.System) sysCounters {
	c := sysCounters{reads: s.Reads, writes: s.Writes, bytesRead: s.BytesRead, bytesWritten: s.BytesWritten}
	if s.Cache != nil {
		c.hits, c.misses = s.Cache.Hits, s.Cache.Misses
	}
	return c
}

func (m *Machine) collect(cycles uint64, base sysCounters) *Stats {
	if !m.noSkip {
		// Replay any still-outstanding slept spans so per-cycle stall
		// counters are complete through the unit's last stepped cycle.
		// (In per-cycle mode nothing slept; the kernel's replay cursors
		// were never advanced, so flushing would double-count.)
		m.kern.Flush(uint64(m.lastStepped + 1))
	}
	m.finishMetrics(cycles)
	cur := snapshotSys(m.Sys)
	s := m.localStats(cycles)
	s.MemBytesRead = cur.bytesRead - base.bytesRead
	s.MemBytesWritten = cur.bytesWritten - base.bytesWritten
	s.MemLines = cur.reads - base.reads + cur.writes - base.writes
	s.CacheHits = cur.hits - base.hits
	s.CacheMisses = cur.misses - base.misses
	return s
}

// localStats gathers the unit-private counters (everything except the
// possibly-shared memory system).
func (m *Machine) localStats(cycles uint64) *Stats {
	return &Stats{
		Cycles:           cycles,
		CoreInstrs:       m.coreInstr,
		CoreStallCycles:  m.coreStall,
		Commands:         m.disp.Issued,
		BarrierCycles:    m.disp.BarrierCycles,
		ResourceStall:    m.disp.ResourceStall,
		Instances:        m.exec.Instances,
		FUOps:            m.exec.FUOps,
		ScratchBytesRead: m.Pad.BytesRead,
		ScratchBytesWrit: m.Pad.BytesWritten,
		RecurrenceBytes:  m.rse.BytesMoved,
		MSEBusy:          m.mse.BusyCycles,
		SSEBusy:          m.sse.BusyCycles,
		RSEBusy:          m.rse.BusyCycles,
	}
}

// Add accumulates other into s (for multi-unit aggregation). Cycles
// takes the maximum: units run concurrently.
func (s *Stats) Add(other *Stats) {
	if other.Cycles > s.Cycles {
		s.Cycles = other.Cycles
	}
	s.CoreInstrs += other.CoreInstrs
	s.CoreStallCycles += other.CoreStallCycles
	s.Commands += other.Commands
	s.BarrierCycles += other.BarrierCycles
	s.ResourceStall += other.ResourceStall
	s.Instances += other.Instances
	s.FUOps += other.FUOps
	s.MemBytesRead += other.MemBytesRead
	s.MemBytesWritten += other.MemBytesWritten
	s.MemLines += other.MemLines
	s.CacheHits += other.CacheHits
	s.CacheMisses += other.CacheMisses
	s.ScratchBytesRead += other.ScratchBytesRead
	s.ScratchBytesWrit += other.ScratchBytesWrit
	s.RecurrenceBytes += other.RecurrenceBytes
	s.MSEBusy += other.MSEBusy
	s.SSEBusy += other.SSEBusy
	s.RSEBusy += other.RSEBusy
}

// StallBreakdown exposes the dispatcher's per-command stall counters for
// performance debugging.
func (m *Machine) StallBreakdown() map[isa.Kind]uint64 { return m.disp.StallByKind }

// BarrierDrains reports per-barrier drain cycles keyed by trace
// position, sorted by position — the profile the fix pass's cost-aware
// placement consumes (see internal/fix).
func (m *Machine) BarrierDrains() []dispatch.BarrierDrain { return m.disp.BarrierDrains() }

// DebugState renders a one-line snapshot of the dispatcher queue and
// port occupancy for performance debugging.
func (m *Machine) DebugState() string {
	return fmt.Sprintf("q=%d %v | %s | %s", m.disp.QueueLen(), m.disp.QueueKinds(),
		m.mse.DebugStreams(0), strings.ReplaceAll(m.snapshot(), "\n", " ; "))
}
