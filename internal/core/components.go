package core

import (
	"softbrain/internal/faults"
	"softbrain/internal/sim"
)

// This file adapts the machine's units to the sim.Component interface.
// NewMachineShared registers them with the machine's kernel in tick
// order — CGRA, MSE, SSE, RSE, dispatcher, control core — and
// Machine.Step is a thin loop over that registry. The adapters carry
// the machine-level concerns the raw units do not know about: the
// fault-injected engine stall gate, the deferred configuration error,
// and the control core's stall accounting. Progress methods partition
// the machine's monotone progress counter (hang detection) among the
// components that own each term.

// cgraComp adapts the CGRA executor.
type cgraComp struct{ m *Machine }

func (c cgraComp) Name() string                 { return "cgra" }
func (c cgraComp) Tick(now uint64) error        { return c.m.exec.Tick(now) }
func (c cgraComp) NextWake(now uint64) sim.Hint { return c.m.exec.NextWake(now) }
func (c cgraComp) WatchSig() uint64             { return c.m.exec.WatchSig() }
func (c cgraComp) Progress() uint64             { return c.m.exec.Instances }

// mseComp adapts the memory stream engine behind the fault-stall gate.
type mseComp struct{ m *Machine }

func (c mseComp) Name() string { return "mse" }
func (c mseComp) Tick(now uint64) error {
	if c.m.stalled(faults.EngMSE, now) {
		return nil
	}
	return c.m.mse.Tick(now)
}
func (c mseComp) NextWake(now uint64) sim.Hint { return c.m.mse.NextWake(now) }
func (c mseComp) WatchSig() uint64             { return c.m.mse.WatchSig() }
func (c mseComp) OnSkip(from, to uint64)       { c.m.mse.OnSkip(from, to) }
func (c mseComp) Progress() uint64 {
	return c.m.mse.BytesDelivered + c.m.mse.BytesStored + c.m.mse.LinesWritten
}

// sseComp adapts the scratchpad stream engine behind the fault-stall
// gate.
type sseComp struct{ m *Machine }

func (c sseComp) Name() string { return "sse" }
func (c sseComp) Tick(now uint64) error {
	if c.m.stalled(faults.EngSSE, now) {
		return nil
	}
	return c.m.sse.Tick(now)
}
func (c sseComp) NextWake(now uint64) sim.Hint { return c.m.sse.NextWake(now) }
func (c sseComp) WatchSig() uint64             { return c.m.sse.WatchSig() }
func (c sseComp) OnSkip(from, to uint64)       { c.m.sse.OnSkip(from, to) }
func (c sseComp) Progress() uint64             { return c.m.sse.BytesIn + c.m.sse.BytesOut }

// rseComp adapts the recurrence stream engine behind the fault-stall
// gate.
type rseComp struct{ m *Machine }

func (c rseComp) Name() string { return "rse" }
func (c rseComp) Tick(now uint64) error {
	if c.m.stalled(faults.EngRSE, now) {
		return nil
	}
	return c.m.rse.Tick(now)
}
func (c rseComp) NextWake(now uint64) sim.Hint { return c.m.rse.NextWake(now) }
func (c rseComp) WatchSig() uint64             { return c.m.rse.WatchSig() }
func (c rseComp) OnSkip(from, to uint64)       { c.m.rse.OnSkip(from, to) }
func (c rseComp) Progress() uint64             { return c.m.rse.BytesMoved }

// dispComp adapts the stream dispatcher; it forwards OnSkip so the
// dispatcher's per-cycle stall counters stay cycle-exact over skipped
// spans.
type dispComp struct{ m *Machine }

func (c dispComp) Name() string                 { return "dispatch" }
func (c dispComp) Tick(now uint64) error        { return c.m.disp.Tick(now) }
func (c dispComp) NextWake(now uint64) sim.Hint { return c.m.disp.NextWake(now) }
func (c dispComp) Progress() uint64             { return c.m.disp.Issued }
func (c dispComp) OnSkip(from, to uint64)       { c.m.disp.OnSkip(from, to) }

// WatchSig composes the dispatcher's wake sources: its own enqueue
// stream, each engine's lifecycle counter (completions and drained
// announcements unblock scoreboard entries), and the pad-write
// buffer's emptied signal (a scratch-write barrier clears only once
// every pad write has landed, and the last landing empties the
// buffer). Watching only the emptied transition — not every fill and
// pop — keeps steady-state MSE→SSE traffic from waking the
// dispatcher. The dispatcher itself has no padBuf pointer, so the
// composition lives here at the machine level.
func (c dispComp) WatchSig() uint64 {
	m := c.m
	return m.disp.EnqSeq.Value() +
		m.mse.Lifecycle.Value() +
		m.sse.Lifecycle.Value() +
		m.rse.Lifecycle.Value() +
		m.padBuf.EmptiedVer()
}

// coreComp adapts the control core's trace replay. Its Tick never
// fails: enqueue errors park in configErr and surface from Step.
type coreComp struct{ m *Machine }

func (c coreComp) Name() string { return "core" }
func (c coreComp) Tick(now uint64) error {
	before := c.m.coreStall
	c.m.stepCore(now)
	c.m.coreStalled = c.m.coreStall != before
	return nil
}
func (c coreComp) NextWake(now uint64) sim.Hint {
	m := c.m
	if m.prog == nil || m.pc >= len(m.prog.Trace) {
		return sim.Idle()
	}
	if now < m.busyUntil {
		return sim.WakeAt(m.busyUntil)
	}
	if m.prog.Trace[m.pc].Cmd != nil && m.disp.BlocksCore() {
		return sim.Idle() // unblocked only by dispatcher activity
	}
	return sim.ReadyNow()
}
func (c coreComp) Progress() uint64 { return uint64(c.m.pc) }

// WatchSig: a core blocked on the dispatcher (queue full or barrier
// pending) can only unblock when the dispatcher's state changes. Once
// the trace is exhausted the core can never act again, so the signal
// pins to a constant and dispatcher churn stops waking it.
func (c coreComp) WatchSig() uint64 {
	if c.m.prog == nil || c.m.pc >= len(c.m.prog.Trace) {
		return 0
	}
	return c.m.disp.StateVer.Value()
}

// OnSkip replays the core's stall counter: a skip happens only while
// the machine is frozen, so every elided cycle would have repeated the
// last Tick's blocked-core stall (or its no-op).
func (c coreComp) OnSkip(from, to uint64) {
	if c.m.coreStalled {
		c.m.coreStall += to - from
	}
}
