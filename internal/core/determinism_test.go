// Cluster determinism: the parallel cluster scheduler (one goroutine
// per unit, epoch barrier at the shared-DRAM boundary) must be
// indistinguishable from the sequential one — byte-identical memory
// images and identical per-unit statistics. make soak runs this under
// the race detector, which doubles as the check that units touch no
// shared mutable state outside the sanctioned boundary.
package core_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"softbrain/internal/core"
	"softbrain/internal/fix"
	"softbrain/internal/mem"
	"softbrain/internal/obs"
	"softbrain/internal/progen"
	"softbrain/internal/workloads/dnn"
)

// runClusterBoth runs the same programs on two fresh metrics-enabled
// clusters, one sequential and one parallel, and returns both
// (memory, per-unit stats, total, metrics dump) tuples.
func runClusterBoth(t *testing.T, cfg core.Config, progs []*core.Program, init func(*mem.Memory)) (seqMem, parMem *mem.Memory, seqUnits, parUnits []*core.Stats, seqTotal, parTotal *core.Stats, seqDump, parDump []byte) {
	t.Helper()
	run := func(sequential bool) (*mem.Memory, []*core.Stats, *core.Stats, []byte) {
		cl, err := core.NewCluster(cfg, len(progs))
		if err != nil {
			t.Fatal(err)
		}
		cl.Sequential = sequential
		cl.EnableMetrics(obs.Options{})
		if init != nil {
			init(cl.Mem)
		}
		total, err := cl.Run(progs)
		if err != nil {
			t.Fatalf("sequential=%v: %v", sequential, err)
		}
		d := cl.MetricsDump()
		if err := obs.CheckConservation(d); err != nil {
			t.Errorf("sequential=%v: %v", sequential, err)
		}
		dump, err := d.MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		return cl.Mem, cl.UnitStats(), total, dump
	}
	seqMem, seqUnits, seqTotal, seqDump = run(true)
	parMem, parUnits, parTotal, parDump = run(false)
	return
}

func compareClusterRuns(t *testing.T, label string, seqMem, parMem *mem.Memory, seqUnits, parUnits []*core.Stats, seqTotal, parTotal *core.Stats, seqDump, parDump []byte) {
	t.Helper()
	if !bytes.Equal(seqDump, parDump) {
		t.Errorf("%s: metrics dump differs between schedulers:\nseq:\n%s\npar:\n%s", label, seqDump, parDump)
	}
	if addr, diff := parMem.FirstDiff(seqMem); diff {
		t.Errorf("%s: parallel memory differs from sequential at %#x", label, addr)
	}
	if len(seqUnits) != len(parUnits) {
		t.Fatalf("%s: %d vs %d per-unit stats", label, len(seqUnits), len(parUnits))
	}
	for i := range seqUnits {
		if !reflect.DeepEqual(seqUnits[i], parUnits[i]) {
			t.Errorf("%s: unit %d stats differ:\n  seq: %+v\n  par: %+v", label, i, seqUnits[i], parUnits[i])
		}
	}
	if !reflect.DeepEqual(seqTotal, parTotal) {
		t.Errorf("%s: total stats differ:\n  seq: %+v\n  par: %+v", label, seqTotal, parTotal)
	}
}

// TestClusterDeterminismDNN runs DNN layers on the 8-unit cluster both
// ways and demands byte-identical memories and identical per-unit
// statistics; the golden-model check must also pass on the parallel
// image.
func TestClusterDeterminismDNN(t *testing.T) {
	cfg := dnn.Config()
	layers := dnn.Layers()
	if testing.Short() {
		layers = layers[:2]
	}
	for _, l := range layers {
		l := l
		t.Run(l.Name, func(t *testing.T) {
			t.Parallel()
			inst, err := l.Build(cfg, dnn.Units)
			if err != nil {
				t.Fatal(err)
			}
			seqMem, parMem, su, pu, st, pt, sd, pd := runClusterBoth(t, cfg, inst.Progs, inst.Init)
			compareClusterRuns(t, l.Name, seqMem, parMem, su, pu, st, pt, sd, pd)
			if inst.Check != nil {
				if err := inst.Check(parMem); err != nil {
					t.Errorf("parallel run failed the golden check: %v", err)
				}
			}
		})
	}
}

// TestClusterDeterminismProgen runs generated programs, rebased to a
// disjoint memory region per unit, on a 4-unit cluster both ways.
func TestClusterDeterminismProgen(t *testing.T) {
	cfg := core.DefaultConfig()
	const units = 4
	const stride = uint64(1) << 20 // disjoint 1 MiB region per unit
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var progs []*core.Program
		_, ports, err := progen.Addpair(cfg)
		if err != nil {
			t.Fatal(err)
		}
		generated := progen.Commands(rng, ports)
		for u := 0; u < units; u++ {
			p, _, err := progen.Addpair(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range progen.Rebase(generated, uint64(u)*stride) {
				p.Emit(c)
			}
			if err := p.Err(); err != nil {
				t.Fatal(err)
			}
			fixed, _, err := fix.Fix(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			progs = append(progs, fixed)
		}
		init := func(m *mem.Memory) {
			line := make([]byte, 64)
			irng := rand.New(rand.NewSource(seed + 1000))
			for u := 0; u < units; u++ {
				for _, pool := range progen.MemPools {
					irng.Read(line)
					m.Write(pool+uint64(u)*stride, line)
				}
			}
		}
		seqMem, parMem, su, pu, st, pt, sd, pd := runClusterBoth(t, cfg, progs, init)
		compareClusterRuns(t, "seed", seqMem, parMem, su, pu, st, pt, sd, pd)
	}
}

// TestClusterConfigMismatch: a cluster assembled from units with
// different configurations must be rejected up front, not silently run
// under unit 0's watchdog and fault policy.
func TestClusterConfigMismatch(t *testing.T) {
	cfgA := core.DefaultConfig()
	cfgB := cfgA
	cfgB.PadBufEntries++
	mA, err := core.NewMachine(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	mB, err := core.NewMachine(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	cl := &core.Cluster{Units: []*core.Machine{mA, mB}}
	pa, _, err := progen.Addpair(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	pb, _, err := progen.Addpair(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.Run([]*core.Program{pa, pb})
	if err == nil || !strings.Contains(err.Error(), "config differs") {
		t.Fatalf("mismatched cluster ran anyway: err=%v", err)
	}
}
