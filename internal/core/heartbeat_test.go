// Heartbeat lifecycle audit: SetHeartbeat callbacks fire only from
// inside the run loop — they start no goroutines, report monotone
// progress, and stop the moment Run returns. A long-lived server
// (sdserve) leans on this: a heartbeat left ticking after a request
// completes would be a per-request leak.
package core_test

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"softbrain/internal/core"
)

func TestHeartbeatStopsAfterRun(t *testing.T) {
	inst, cfg := buildGemm(t)
	before := runtime.NumGoroutine()

	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var fired atomic.Int64
	var lastCycle atomic.Uint64
	m.SetHeartbeat(0, func(r core.ProgressReport) {
		fired.Add(1)
		if prev := lastCycle.Load(); r.Cycle < prev {
			t.Errorf("heartbeat cycle went backwards: %d after %d", r.Cycle, prev)
		}
		lastCycle.Store(r.Cycle)
	})
	if inst.Init != nil {
		inst.Init(m.Sys.Mem)
	}
	stats, err := m.RunContext(context.Background(), inst.Progs[0])
	if err != nil {
		t.Fatal(err)
	}

	during := fired.Load()
	if during == 0 {
		t.Fatalf("heartbeat never fired over a %d-cycle run", stats.Cycles)
	}
	if last := lastCycle.Load(); last >= stats.Cycles {
		t.Errorf("heartbeat reported cycle %d at or past the final count %d", last, stats.Cycles)
	}

	// The callback must go quiet with the run loop: no timer, ticker,
	// or goroutine keeps it alive. Give any such machinery ample host
	// time to betray itself.
	time.Sleep(50 * time.Millisecond)
	if after := fired.Load(); after != during {
		t.Errorf("heartbeat fired %d more time(s) after Run returned", after-during)
	}
	waitGoroutines(t, before)
}

// TestHeartbeatStopsAfterCanceledRun is the same audit on the error
// path: a run torn down by cancellation must silence the heartbeat
// just as a completed one does.
func TestHeartbeatStopsAfterCanceledRun(t *testing.T) {
	inst, cfg := buildGemm(t)
	before := runtime.NumGoroutine()

	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired atomic.Int64
	m.SetHeartbeat(0, func(r core.ProgressReport) {
		fired.Add(1)
		cancel()
	})
	if inst.Init != nil {
		inst.Init(m.Sys.Mem)
	}
	if _, err := m.RunContext(ctx, inst.Progs[0]); err == nil {
		t.Fatal("canceled run returned nil error")
	}

	during := fired.Load()
	time.Sleep(50 * time.Millisecond)
	if after := fired.Load(); after != during {
		t.Errorf("heartbeat fired %d more time(s) after canceled Run returned", after-during)
	}
	waitGoroutines(t, before)
}

// TestClusterHeartbeatStopsAfterRun audits the cluster-level
// heartbeat, whose run loop also manages per-unit worker goroutines —
// both must be gone when RunContext returns.
func TestClusterHeartbeatStopsAfterRun(t *testing.T) {
	inst, cfg := buildGemm(t)
	before := runtime.NumGoroutine()

	cl, err := core.NewCluster(cfg, inst.Units())
	if err != nil {
		t.Fatal(err)
	}
	var fired atomic.Int64
	cl.SetHeartbeat(0, func(r core.ProgressReport) { fired.Add(1) })
	if inst.Init != nil {
		inst.Init(cl.Mem)
	}
	if _, err := cl.RunContext(context.Background(), inst.Progs); err != nil {
		t.Fatal(err)
	}

	during := fired.Load()
	if during == 0 {
		t.Fatal("cluster heartbeat never fired")
	}
	time.Sleep(50 * time.Millisecond)
	if after := fired.Load(); after != during {
		t.Errorf("cluster heartbeat fired %d more time(s) after Run returned", after-during)
	}
	waitGoroutines(t, before)
}
