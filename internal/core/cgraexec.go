package core

import (
	"encoding/binary"
	"fmt"

	"softbrain/internal/cgra"
	"softbrain/internal/dfg"
	"softbrain/internal/engine"
	"softbrain/internal/obs"
	"softbrain/internal/sim"
)

// pipeOut is one instance's output for one port, in flight through the
// CGRA pipeline. Data is already narrowed to the port's element size.
type pipeOut struct {
	ready uint64
	data  []byte
}

// cgraExec executes the configured DFG with dataflow firing: when every
// mapped input port holds one instance of data and every output port has
// room, the instance launches; results emerge after the schedule's
// per-port pipeline latency. Initiation interval is 1 — the fabric is
// fully pipelined (Section 4.4).
type cgraExec struct {
	ports *engine.Ports

	sched *cgra.Schedule
	eval  *dfg.Evaluator

	inHW, outHW []int       // DFG port index -> machine port index
	outRes      []int       // reserved bytes per machine output port
	pipe        [][]pipeOut // per DFG output port, in flight

	// Hot-path scratch: per-input-port word buffers reused across fires,
	// and a freelist of drained pipeOut data buffers (Queue.Push copies,
	// so a delivered buffer is immediately reusable).
	inBuf [][]uint64
	free  [][]byte

	// cfgGen counts configuration installs: the wake signal that lets a
	// sleeping unconfigured fabric notice an SD_Config completing.
	cfgGen sim.Signal

	// Statistics.
	Instances uint64
	FUOps     uint64
	Drained   uint64 // bytes pushed to output ports from the pipeline
}

func newCGRAExec(ports *engine.Ports) *cgraExec {
	return &cgraExec{ports: ports, outRes: make([]int, len(ports.Out))}
}

// Install switches to a new configuration. Accumulator state clears, as
// reconfiguration does on hardware.
func (x *cgraExec) Install(s *cgra.Schedule) error {
	ev, err := dfg.NewEvaluator(s.Graph)
	if err != nil {
		return err
	}
	for p := range x.pipe {
		if len(x.pipe[p]) > 0 {
			return fmt.Errorf("core: reconfiguring with %d instances in flight", len(x.pipe[p]))
		}
	}
	x.sched = s
	x.eval = ev
	x.inHW = append(x.inHW[:0], s.InPortMap...)
	x.outHW = append(x.outHW[:0], s.OutPortMap...)
	x.pipe = make([][]pipeOut, len(s.Graph.Outs))
	x.inBuf = make([][]uint64, len(s.Graph.Ins))
	x.cfgGen.Raise()
	return nil
}

// Configured reports whether a DFG is loaded.
func (x *cgraExec) Configured() bool { return x.sched != nil }

// InFlight is the number of buffered pipeline outputs not yet delivered.
func (x *cgraExec) InFlight() int {
	n := 0
	for _, q := range x.pipe {
		n += len(q)
	}
	return n
}

// PendingTimed reports whether any fired instance is still inside the
// pipeline latency at cycle now (its output will emerge without further
// input, so the machine is not quiescent).
func (x *cgraExec) PendingTimed(now uint64) bool {
	for _, q := range x.pipe {
		for _, o := range q {
			if o.ready > now {
				return true
			}
		}
	}
	return false
}

// WatchSig sums the external signals the fabric's wake hint depends on
// (see sim.Watcher): every mapped port's traffic counters plus the
// configuration generation. The port map changes only in Install, which
// raises cfgGen, so the sum stays monotone between snapshots.
func (x *cgraExec) WatchSig() uint64 {
	sig := x.cfgGen.Value()
	for _, hw := range x.inHW {
		q := x.ports.In[hw]
		sig += q.TotalIn() + q.TotalOut()
	}
	for _, hw := range x.outHW {
		q := x.ports.Out[hw]
		sig += q.TotalIn() + q.TotalOut()
	}
	return sig
}

// NextWake implements the sim.Component wake-hint contract (see
// docs/SIMKERNEL.md): Ready when an output can drain or an instance can
// fire, the earliest pipeline-emergence cycle when results are in
// flight, Idle when the fabric waits on port data or space.
func (x *cgraExec) NextWake(now uint64) sim.Hint {
	if x.sched == nil {
		return sim.Idle()
	}
	h := sim.Idle()
	for p := range x.pipe {
		if len(x.pipe[p]) > 0 {
			if r := x.pipe[p][0].ready; r > now {
				h = h.Earliest(sim.WakeAt(r))
			} else {
				return sim.ReadyNow() // drainable output
			}
		}
	}
	if x.canFire() {
		return sim.ReadyNow() // can fire an instance
	}
	return h
}

// canFire reports whether a full instance of input data and output
// space is available — blockers() without the diagnostic allocation.
func (x *cgraExec) canFire() bool {
	g := x.sched.Graph
	for p, in := range g.Ins {
		if !x.ports.In[x.inHW[p]].HasWords(in.Width) {
			return false
		}
	}
	for p := range g.Outs {
		hw := x.outHW[p]
		if x.ports.Out[hw].Space()-x.outRes[hw] < g.Outs[p].BytesPerInstance() {
			return false
		}
	}
	return true
}

// StallCause classifies the fabric's state on a cycle it neither fired
// nor drained (see engine.MSE.StallCause for the contract). Results in
// flight through the pipeline latency count as Busy; otherwise blocked
// outputs outrank starved inputs.
func (x *cgraExec) StallCause(uint64) obs.Cause {
	if x.sched == nil {
		return obs.CauseIdle
	}
	for _, q := range x.pipe {
		if len(q) > 0 {
			return obs.Busy // instance results inside the pipeline latency
		}
	}
	starved, blocked := x.blockers()
	switch {
	case len(blocked) > 0:
		return obs.PortFull
	case len(starved) > 0:
		return obs.PortEmpty
	}
	return obs.CauseIdle
}

// blockers reports why the fabric cannot fire: the machine input ports
// lacking a full instance of data and the machine output ports lacking
// space. Both empty means the fabric could fire (or is unconfigured).
func (x *cgraExec) blockers() (starvedIn, blockedOut []int) {
	if x.sched == nil {
		return nil, nil
	}
	g := x.sched.Graph
	for p, in := range g.Ins {
		if !x.ports.In[x.inHW[p]].HasWords(in.Width) {
			starvedIn = append(starvedIn, x.inHW[p])
		}
	}
	for p := range g.Outs {
		hw := x.outHW[p]
		if x.ports.Out[hw].Space()-x.outRes[hw] < g.Outs[p].BytesPerInstance() {
			blockedOut = append(blockedOut, hw)
		}
	}
	return starvedIn, blockedOut
}

// mappedIn / mappedOut report whether a machine port is bound to the
// active configuration.
func (x *cgraExec) mappedIn(hw int) bool {
	for _, m := range x.inHW {
		if m == hw {
			return true
		}
	}
	return false
}

func (x *cgraExec) mappedOut(hw int) bool {
	for _, m := range x.outHW {
		if m == hw {
			return true
		}
	}
	return false
}

// Tick delivers finished outputs and fires at most one new instance.
func (x *cgraExec) Tick(now uint64) error {
	if x.sched == nil {
		return nil
	}
	// Drain pipeline outputs whose latency has elapsed, in order.
	for p := range x.pipe {
		hw := x.outHW[p]
		for len(x.pipe[p]) > 0 && x.pipe[p][0].ready <= now {
			out := x.pipe[p][0]
			n := copy(x.pipe[p], x.pipe[p][1:]) // pop-front in place: keeps capacity
			x.pipe[p] = x.pipe[p][:n]
			x.ports.Out[hw].Push(out.data)
			x.outRes[hw] -= len(out.data)
			x.Drained += uint64(len(out.data))
			x.free = append(x.free, out.data[:0]) // Push copied; recycle
		}
	}

	// Dataflow firing: one instance worth of data on every input port,
	// and space (net of in-flight reservations) on every output port.
	if !x.canFire() {
		return nil
	}
	g := x.sched.Graph
	for p, in := range g.Ins {
		x.inBuf[p] = x.ports.In[x.inHW[p]].PopWordsInto(x.inBuf[p], in.Width)
	}
	outs, err := x.eval.Eval(x.inBuf)
	if err != nil {
		return err
	}
	for p := range g.Outs {
		hw := x.outHW[p]
		elem := g.Outs[p].ElemBytes
		var data []byte
		if n := len(x.free); n > 0 {
			data, x.free = x.free[n-1], x.free[:n-1]
		} else {
			data = make([]byte, 0, g.Outs[p].BytesPerInstance())
		}
		for _, w := range outs[p] {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], w)
			data = append(data, buf[:elem]...)
		}
		x.pipe[p] = append(x.pipe[p], pipeOut{
			ready: now + uint64(x.sched.OutArrive[p]),
			data:  data,
		})
		x.outRes[hw] += len(data)
	}
	x.Instances++
	x.FUOps += uint64(g.OpsPerInstance())
	return nil
}
