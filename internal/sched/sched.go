// Package sched compiles dataflow graphs onto the CGRA: instruction
// placement, circuit-switched routing, delay matching, and vector-port
// mapping. It plays the role of the constraint-based DFG scheduler the
// paper extends from prior work [22], implemented here as a randomized
// greedy placer/router with restarts — placements that cannot be routed
// or delay-matched are discarded and retried with a different seed, and
// the first schedule that passes cgra.(*Schedule).Validate is returned.
package sched

import (
	"fmt"
	"math/rand"
	"sort"

	"softbrain/internal/cgra"
	"softbrain/internal/dfg"
)

// Attempts is the number of randomized restarts before giving up.
const Attempts = 64

// Schedule compiles g onto f. The result validates against the hardware
// model; failure means the graph genuinely does not fit (too many nodes
// of an FU class, unroutable congestion, or unmatchable delays).
func Schedule(f *cgra.Fabric, g *dfg.Graph) (*cgra.Schedule, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := checkCapacity(f, g); err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt < Attempts; attempt++ {
		rng := rand.New(rand.NewSource(int64(attempt)*2654435761 + 1))
		s, err := try(f, g, rng)
		if err != nil {
			lastErr = err
			continue
		}
		if err := s.Validate(); err != nil {
			// A bug in the scheduler, not a capacity limit; surface loudly.
			return nil, fmt.Errorf("sched: internal error: produced invalid schedule: %w", err)
		}
		return s, nil
	}
	return nil, fmt.Errorf("sched: cannot map %s onto %dx%d fabric after %d attempts: %w",
		g.Name, f.Rows, f.Cols, Attempts, lastErr)
}

// checkCapacity rejects graphs that cannot fit for static reasons,
// giving clearer errors than route failures.
func checkCapacity(f *cgra.Fabric, g *dfg.Graph) error {
	if len(g.Nodes) > f.NumPEs() {
		return fmt.Errorf("sched: %s has %d instructions, fabric has %d PEs", g.Name, len(g.Nodes), f.NumPEs())
	}
	demand := g.FUDemand()
	supply := f.FUCounts()
	for c := dfg.FUClass(0); c < dfg.NumFUClasses; c++ {
		if demand[c] > supply[c] {
			return fmt.Errorf("sched: %s needs %d %v units, fabric has %d", g.Name, demand[c], c, supply[c])
		}
	}
	return nil
}

// state is the mutable routing state during one attempt.
type state struct {
	f         *cgra.Fabric
	linkUse   map[[2]int][]cgra.ValueID
	valSource map[cgra.ValueID]int // PE where the value enters the mesh
	inject    map[int]int          // injection channels used per PE
	eject     map[int]int          // ejection channels used per PE
	peUsed    map[int]bool
}

func newState(f *cgra.Fabric) *state {
	return &state{
		f:         f,
		linkUse:   map[[2]int][]cgra.ValueID{},
		valSource: map[cgra.ValueID]int{},
		inject:    map[int]int{},
		eject:     map[int]int{},
		peUsed:    map[int]bool{},
	}
}

func (st *state) clone() *state {
	c := newState(st.f)
	for k, v := range st.linkUse {
		c.linkUse[k] = append([]cgra.ValueID(nil), v...)
	}
	for k, v := range st.valSource {
		c.valSource[k] = v
	}
	for k, v := range st.inject {
		c.inject[k] = v
	}
	for k, v := range st.eject {
		c.eject[k] = v
	}
	for k, v := range st.peUsed {
		c.peUsed[k] = v
	}
	return c
}

// route finds a shortest path carrying val to one of the PEs for which
// accept returns true, riding links already assigned to val for free
// reuse. On success it commits the links and returns the path.
func (st *state) route(val cgra.ValueID, accept func(pe int) bool) ([]int, error) {
	f := st.f
	var starts []int
	if src, ok := st.valSource[val]; ok {
		starts = []int{src}
	} else if val.FromPort {
		// First use of a port word: pick any tap with a free injection
		// channel (vector ports spread their taps across the fabric).
		for pe := 0; pe < f.NumPEs(); pe++ {
			if st.inject[pe] < f.InjectPerPE {
				starts = append(starts, pe)
			}
		}
		if len(starts) == 0 {
			return nil, fmt.Errorf("sched: no free injection channel for %v", val)
		}
	} else {
		return nil, fmt.Errorf("sched: value %v has no source", val)
	}

	// BFS over the directed mesh. A link is traversable if free or
	// already carrying val.
	prev := make(map[int]int, f.NumPEs())
	seen := make(map[int]bool, f.NumPEs())
	queue := make([]int, 0, f.NumPEs())
	for _, s := range starts {
		seen[s] = true
		prev[s] = -1
		queue = append(queue, s)
	}
	goal := -1
	for i := 0; i < len(queue); i++ {
		pe := queue[i]
		if accept(pe) {
			goal = pe
			break
		}
		for _, nb := range f.Neighbors(pe) {
			if seen[nb] {
				continue
			}
			if !st.linkFree([2]int{pe, nb}, val) {
				continue
			}
			seen[nb] = true
			prev[nb] = pe
			queue = append(queue, nb)
		}
	}
	if goal == -1 {
		return nil, fmt.Errorf("sched: no route for %v", val)
	}
	var path []int
	for pe := goal; pe != -1; pe = prev[pe] {
		path = append(path, pe)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	// Commit: links and, on first use, the value's entry point.
	if _, ok := st.valSource[val]; !ok {
		st.valSource[val] = path[0]
		if val.FromPort {
			st.inject[path[0]]++
		}
	}
	for i := 1; i < len(path); i++ {
		st.claimLink([2]int{path[i-1], path[i]}, val)
	}
	return path, nil
}

// linkFree reports whether a channel of the link is available to val
// (links already carrying val are reusable fanout).
func (st *state) linkFree(key [2]int, val cgra.ValueID) bool {
	vals := st.linkUse[key]
	for _, v := range vals {
		if v == val {
			return true
		}
	}
	return len(vals) < st.f.LinkChannels
}

// claimLink records val on one channel of the link, idempotently.
func (st *state) claimLink(key [2]int, val cgra.ValueID) {
	for _, v := range st.linkUse[key] {
		if v == val {
			return
		}
	}
	st.linkUse[key] = append(st.linkUse[key], val)
}

func valueOf(r dfg.Ref) (cgra.ValueID, bool) {
	switch r.Kind {
	case dfg.RefPort:
		return cgra.PortVal(r.Port, r.Word), true
	case dfg.RefNode:
		return cgra.NodeVal(r.Node), true
	}
	return cgra.ValueID{}, false
}

// try runs one randomized placement/routing/delay-matching pass.
func try(f *cgra.Fabric, g *dfg.Graph, rng *rand.Rand) (*cgra.Schedule, error) {
	s := &cgra.Schedule{
		Fabric:   f,
		Graph:    g,
		Place:    make([]int, len(g.Nodes)),
		NodeFire: make([]int, len(g.Nodes)),
		Operand:  make([][]cgra.Conn, len(g.Nodes)),
	}
	if err := mapPorts(f, g, s, rng); err != nil {
		return nil, err
	}

	st := newState(f)
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}

	// Place and route each node in dataflow order.
	for _, id := range order {
		n := &g.Nodes[id]
		var candidates []int
		for pe := 0; pe < f.NumPEs(); pe++ {
			if !st.peUsed[pe] && f.PEs[pe].Supports(n.Op.Class()) {
				candidates = append(candidates, pe)
			}
		}
		if len(candidates) == 0 {
			return nil, fmt.Errorf("sched: no free PE for node %d (%v)", id, n.Op)
		}
		rng.Shuffle(len(candidates), func(i, j int) {
			candidates[i], candidates[j] = candidates[j], candidates[i]
		})
		if cap := 12; len(candidates) > cap {
			candidates = candidates[:cap]
		}

		type option struct {
			pe    int
			cost  int
			conns []cgra.Conn
			st    *state
		}
		var best *option
		for _, pe := range candidates {
			trial := st.clone()
			conns := make([]cgra.Conn, len(n.Args))
			cost := 0
			ok := true
			for i, a := range n.Args {
				val, routed := valueOf(a)
				if !routed {
					continue // immediate: lives in the PE configuration
				}
				path, err := trial.route(val, func(p int) bool { return p == pe })
				if err != nil {
					ok = false
					break
				}
				conns[i] = cgra.Conn{Val: val, Path: path}
				cost += len(path)
			}
			if !ok {
				continue
			}
			if best == nil || cost < best.cost {
				trial.peUsed[pe] = true
				best = &option{pe: pe, cost: cost, conns: conns, st: trial}
			}
		}
		if best == nil {
			return nil, fmt.Errorf("sched: cannot route operands of node %d (%v)", id, n.Op)
		}
		st = best.st
		st.valSource[cgra.NodeVal(id)] = best.pe
		s.Place[id] = best.pe
		s.Operand[id] = best.conns
	}

	// Route outputs to ejection taps.
	s.OutConn = make([][]cgra.Conn, len(g.Outs))
	s.OutArrive = make([]int, len(g.Outs))
	ejectOK := func(pe int) bool { return st.eject[pe] < f.EjectPerPE }
	for p := range g.Outs {
		s.OutConn[p] = make([]cgra.Conn, g.Outs[p].Width())
		for w, src := range g.Outs[p].Sources {
			val, routed := valueOf(src)
			if !routed {
				return nil, fmt.Errorf("sched: output %s word %d is an immediate", g.Outs[p].Name, w)
			}
			path, err := st.route(val, ejectOK)
			if err != nil {
				return nil, fmt.Errorf("sched: output %s word %d: %w", g.Outs[p].Name, w, err)
			}
			st.eject[path[len(path)-1]]++
			s.OutConn[p][w] = cgra.Conn{Val: val, Path: path}
		}
	}

	return s, matchDelays(f, g, s, order)
}

// matchDelays computes firing times in dataflow order and sets each
// connection's delay FIFO so that all operands of a node (and all words
// of an output port) arrive in the same cycle.
func matchDelays(f *cgra.Fabric, g *dfg.Graph, s *cgra.Schedule, order []dfg.NodeID) error {
	depart := func(v cgra.ValueID) int {
		if v.FromPort {
			return 0
		}
		return s.NodeFire[v.Node] + g.Nodes[v.Node].Op.Latency()
	}
	align := func(conns []cgra.Conn) (int, error) {
		arrive := 0
		for _, c := range conns {
			if c.Path == nil {
				continue
			}
			if t := depart(c.Val) + c.Latency(); t > arrive {
				arrive = t
			}
		}
		for i := range conns {
			if conns[i].Path == nil {
				continue
			}
			base := depart(conns[i].Val) + conns[i].Latency()
			conns[i].Delay = arrive - base
			if conns[i].Delay > f.MaxDelay {
				return 0, fmt.Errorf("sched: needed delay %d exceeds FIFO depth %d", conns[i].Delay, f.MaxDelay)
			}
		}
		return arrive, nil
	}
	for _, id := range order {
		fire, err := align(s.Operand[id])
		if err != nil {
			return err
		}
		s.NodeFire[id] = fire
	}
	for p := range g.Outs {
		arrive, err := align(s.OutConn[p])
		if err != nil {
			return err
		}
		s.OutArrive[p] = arrive
		if arrive > s.Depth {
			s.Depth = arrive
		}
	}
	return nil
}

// mapPorts assigns DFG ports to hardware vector ports, widest first
// (best fit), with a randomized tie-break so restarts explore different
// mappings.
func mapPorts(f *cgra.Fabric, g *dfg.Graph, s *cgra.Schedule, rng *rand.Rand) error {
	s.InPortMap = make([]int, len(g.Ins))
	s.OutPortMap = make([]int, len(g.Outs))

	type portReq struct{ idx, width int }
	assign := func(reqs []portReq, hw []cgra.PortSpec, out []int, dir string) error {
		sort.Slice(reqs, func(i, j int) bool { return reqs[i].width > reqs[j].width })
		used := make([]bool, len(hw))
		for _, rq := range reqs {
			best := -1
			for h := range hw {
				if used[h] || hw[h].Indirect || hw[h].Width < rq.width {
					continue
				}
				if best == -1 || hw[h].Width < hw[best].Width ||
					(hw[h].Width == hw[best].Width && rng.Intn(2) == 0) {
					best = h
				}
			}
			if best == -1 {
				return fmt.Errorf("sched: no free %s vector port of width >= %d for %s", dir, rq.width, g.Name)
			}
			used[best] = true
			out[rq.idx] = best
		}
		return nil
	}

	inReqs := make([]portReq, len(g.Ins))
	for i, p := range g.Ins {
		inReqs[i] = portReq{i, p.Width}
	}
	if err := assign(inReqs, f.InPorts, s.InPortMap, "input"); err != nil {
		return err
	}
	outReqs := make([]portReq, len(g.Outs))
	for i, p := range g.Outs {
		outReqs[i] = portReq{i, p.Width()}
	}
	return assign(outReqs, f.OutPorts, s.OutPortMap, "output")
}
