package sched

import (
	"math/rand"
	"strings"
	"testing"

	"softbrain/internal/cgra"
	"softbrain/internal/dfg"
)

// mustBuild finalizes a graph that the test constructed to be valid.
func mustBuild(t testing.TB, b *dfg.Builder) *dfg.Graph {
	t.Helper()
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func dotProduct(t testing.TB, width int) *dfg.Graph {
	t.Helper()
	b := dfg.NewBuilder("dotprod")
	a := b.Input("A", width)
	bb := b.Input("B", width)
	var prods []dfg.Ref
	for i := 0; i < width; i++ {
		prods = append(prods, b.N(dfg.Mul(64), a.W(i), bb.W(i)))
	}
	b.Output("C", b.ReduceTree(dfg.Add(64), prods...))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestScheduleDotProduct(t *testing.T) {
	f := cgra.NewFabric(5, 4, dfg.FUAlu, dfg.FUMul)
	g := dotProduct(t, 4)
	s, err := Schedule(f, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("schedule does not validate: %v", err)
	}
	if s.Depth < 3 {
		t.Errorf("pipeline depth %d suspiciously small", s.Depth)
	}
	if s.ConfigBytes() == 0 {
		t.Error("config bitstream is empty")
	}
}

func TestScheduleClassifierStyleGraph(t *testing.T) {
	// The Figure 6 classifier DFG: 4 multipliers, reduction, accumulate,
	// sigmoid — needs the DNN fabric's sigmoid units.
	b := dfg.NewBuilder("classifier")
	s := b.Input("S", 4)
	n := b.Input("N", 4)
	r := b.Input("R", 1)
	var reds []dfg.Ref
	for i := 0; i < 4; i++ {
		m := b.N(dfg.Mul(16), s.W(i), n.W(i))
		reds = append(reds, b.N(dfg.RedAdd(16), m))
	}
	sum := b.ReduceTree(dfg.Add(64), reds...)
	acc := b.N(dfg.Acc(64), sum, r.W(0))
	b.Output("C", b.N(dfg.Sig(16), acc))
	g := mustBuild(t, b)

	sch, err := Schedule(cgra.DNNFabric(), g)
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.Validate(); err != nil {
		t.Fatal(err)
	}
	// The sigmoid node must be on a sigmoid-capable PE (bottom row).
	for _, nd := range g.Nodes {
		if nd.Op.Base == dfg.OpSig {
			pe := sch.Place[nd.ID]
			if !sch.Fabric.PEs[pe].Supports(dfg.FUSig) {
				t.Errorf("sigmoid node on PE %d without sigmoid FU", pe)
			}
		}
	}
}

func TestScheduleTooManyNodes(t *testing.T) {
	f := cgra.NewFabric(2, 2, dfg.FUAlu)
	b := dfg.NewBuilder("big")
	a := b.Input("A", 1)
	v := a.W(0)
	for i := 0; i < 5; i++ {
		v = b.N(dfg.Add(64), v, dfg.ImmRef(1))
	}
	b.Output("O", v)
	g := mustBuild(t, b)
	if _, err := Schedule(f, g); err == nil || !strings.Contains(err.Error(), "instructions") {
		t.Errorf("capacity error not reported: %v", err)
	}
}

func TestScheduleMissingFUClass(t *testing.T) {
	f := cgra.NewFabric(5, 4, dfg.FUAlu) // no multipliers
	g := dotProduct(t, 2)
	if _, err := Schedule(f, g); err == nil || !strings.Contains(err.Error(), "units") {
		t.Errorf("FU class error not reported: %v", err)
	}
}

func TestSchedulePortTooWide(t *testing.T) {
	// Three 8-wide DFG input ports, but the default hardware has only
	// two 8-wide input vector ports.
	b := dfg.NewBuilder("wide")
	var sums []dfg.Ref
	for _, name := range []string{"A", "B", "C"} {
		in := b.Input(name, 8)
		sums = append(sums, b.N(dfg.Add(64), in.W(0), in.W(7)))
	}
	b.Output("O", b.ReduceTree(dfg.Add(64), sums...))
	g := mustBuild(t, b)
	if _, err := Schedule(cgra.NewFabric(5, 4, dfg.FUAlu), g); err == nil ||
		!strings.Contains(err.Error(), "vector port") {
		t.Errorf("port mapping error not reported: %v", err)
	}
}

func TestScheduleDelayOverflow(t *testing.T) {
	// A long dependence chain joined at the end with a fresh port input:
	// the port operand would need a delay FIFO deeper than MaxDelay.
	f := cgra.NewFabric(5, 4, dfg.FUAlu, dfg.FUMul)
	f.MaxDelay = 3
	b := dfg.NewBuilder("deep")
	a := b.Input("A", 1)
	late := b.Input("L", 1)
	v := a.W(0)
	for i := 0; i < 8; i++ {
		v = b.N(dfg.Mul(64), v, dfg.ImmRef(3))
	}
	b.Output("O", b.N(dfg.Add(64), v, late.W(0)))
	g := mustBuild(t, b)
	if _, err := Schedule(f, g); err == nil || !strings.Contains(err.Error(), "delay") {
		t.Errorf("delay overflow not reported: %v", err)
	}
}

// Property: random schedulable graphs produce schedules that validate,
// with consistent depths.
func TestScheduleRandomGraphs(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := cgra.BroadFabric()
	scheduled := 0
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(t, r)
		s, err := Schedule(f, g)
		if err != nil {
			// Some random graphs legitimately exceed fabric resources.
			continue
		}
		scheduled++
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: invalid schedule: %v\n%s", trial, err, g.String())
		}
		if s.Depth <= 0 {
			t.Errorf("trial %d: nonpositive depth %d", trial, s.Depth)
		}
	}
	if scheduled < 15 {
		t.Errorf("only %d of 30 random graphs scheduled; placer too weak", scheduled)
	}
}

func randomGraph(t testing.TB, r *rand.Rand) *dfg.Graph {
	t.Helper()
	b := dfg.NewBuilder("rnd")
	nIns := 1 + r.Intn(3)
	var avail []dfg.Ref
	for i := 0; i < nIns; i++ {
		w := 1 + r.Intn(4)
		in := b.Input(string(rune('A'+i)), w)
		for j := 0; j < w; j++ {
			avail = append(avail, in.W(j))
		}
	}
	ops := []dfg.Op{
		dfg.Add(64), dfg.Sub(32), dfg.Mul(16), dfg.Min(64),
		dfg.Sel(64), dfg.Acc(64), dfg.RedAdd(16), dfg.Xor(64), dfg.Abs(64),
	}
	n := 1 + r.Intn(12)
	for i := 0; i < n; i++ {
		op := ops[r.Intn(len(ops))]
		args := make([]dfg.Ref, op.Arity())
		for j := range args {
			if r.Intn(6) == 0 {
				args[j] = dfg.ImmRef(uint64(r.Intn(100)))
			} else {
				args[j] = avail[r.Intn(len(avail))]
			}
		}
		avail = append(avail, b.N(op, args...))
	}
	b.Output("O", avail[len(avail)-1])
	return mustBuild(t, b)
}

// Mutation tests: a valid schedule stops validating when corrupted.
func TestValidateCatchesCorruption(t *testing.T) {
	f := cgra.NewFabric(5, 4, dfg.FUAlu, dfg.FUMul)
	g := dotProduct(t, 3)
	fresh := func() *cgra.Schedule {
		s, err := Schedule(f, g)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := []struct {
		name   string
		mutate func(*cgra.Schedule)
	}{
		{"double placement", func(s *cgra.Schedule) { s.Place[1] = s.Place[0] }},
		{"out of range PE", func(s *cgra.Schedule) { s.Place[0] = 99 }},
		{"late fire", func(s *cgra.Schedule) { s.NodeFire[len(s.NodeFire)-1]++ }},
		{"bad depth", func(s *cgra.Schedule) { s.Depth += 3 }},
		{"negative delay", func(s *cgra.Schedule) {
			for n := range s.Operand {
				for i := range s.Operand[n] {
					if s.Operand[n][i].Path != nil {
						s.Operand[n][i].Delay = -1
						return
					}
				}
			}
		}},
		{"dup hw port", func(s *cgra.Schedule) { s.InPortMap[1] = s.InPortMap[0] }},
		{"truncated out conns", func(s *cgra.Schedule) { s.OutConn = nil }},
	}
	for _, tt := range cases {
		s := fresh()
		tt.mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: corruption not caught", tt.name)
		}
	}
}
