// Package scratch models the programmable scratchpad: the private
// address space stream-dataflow exposes for data reuse. It is a simple
// SRAM with one read and one write port, each 64 bytes wide per cycle;
// the per-cycle port arbitration lives in the scratchpad stream engine.
package scratch

import (
	"encoding/binary"
	"fmt"
)

// Pad is the scratchpad storage with access statistics.
type Pad struct {
	data []byte

	Reads        uint64 // read port grants
	Writes       uint64 // write port grants
	BytesRead    uint64
	BytesWritten uint64
}

// New returns a scratchpad of the given size in bytes.
func New(size int) *Pad {
	return &Pad{data: make([]byte, size)}
}

// Size is the scratchpad capacity in bytes.
func (p *Pad) Size() uint64 { return uint64(len(p.data)) }

// check validates an access range against the private address space.
func (p *Pad) check(op string, addr uint64, n int) error {
	if addr+uint64(n) > uint64(len(p.data)) || addr+uint64(n) < addr {
		return fmt.Errorf("scratch: %s of %d bytes at %#x exceeds size %d", op, n, addr, len(p.data))
	}
	return nil
}

// Read copies len(buf) bytes from addr into buf, counting one read-port
// grant.
func (p *Pad) Read(addr uint64, buf []byte) error {
	if err := p.check("read", addr, len(buf)); err != nil {
		return err
	}
	copy(buf, p.data[addr:])
	p.Reads++
	p.BytesRead += uint64(len(buf))
	return nil
}

// Write stores data at addr, counting one write-port grant.
func (p *Pad) Write(addr uint64, data []byte) error {
	if err := p.check("write", addr, len(data)); err != nil {
		return err
	}
	copy(p.data[addr:], data)
	p.Writes++
	p.BytesWritten += uint64(len(data))
	return nil
}

// ReadU64 reads a little-endian word for tests and debugging.
func (p *Pad) ReadU64(addr uint64) (uint64, error) {
	var buf [8]byte
	if err := p.Read(addr, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}
