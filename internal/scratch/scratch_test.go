package scratch

import (
	"bytes"
	"testing"
)

func TestReadWrite(t *testing.T) {
	p := New(128)
	if err := p.Write(10, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3)
	if err := p.Read(10, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Read = %v", got)
	}
}

func TestZeroInitialized(t *testing.T) {
	p := New(64)
	buf := []byte{0xff, 0xff}
	if err := p.Read(62, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 || buf[1] != 0 {
		t.Error("scratchpad not zero initialized")
	}
}

func TestBoundsChecking(t *testing.T) {
	p := New(64)
	if err := p.Write(60, make([]byte, 8)); err == nil {
		t.Error("overflowing write accepted")
	}
	if err := p.Read(64, make([]byte, 1)); err == nil {
		t.Error("out-of-range read accepted")
	}
	if err := p.Read(^uint64(0), make([]byte, 2)); err == nil {
		t.Error("wrapping read accepted")
	}
	if err := p.Write(0, make([]byte, 64)); err != nil {
		t.Errorf("full-size write rejected: %v", err)
	}
}

func TestStatsAndSize(t *testing.T) {
	p := New(256)
	if p.Size() != 256 {
		t.Errorf("Size = %d", p.Size())
	}
	p.Write(0, make([]byte, 64))
	p.Write(64, make([]byte, 32))
	p.Read(0, make([]byte, 16))
	if p.Writes != 2 || p.Reads != 1 || p.BytesWritten != 96 || p.BytesRead != 16 {
		t.Errorf("stats: %d/%d grants, %d/%d bytes", p.Reads, p.Writes, p.BytesRead, p.BytesWritten)
	}
}

func TestReadU64(t *testing.T) {
	p := New(64)
	p.Write(8, []byte{0x0d, 0xf0, 0xfe, 0xca, 0, 0, 0, 0})
	v, err := p.ReadU64(8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xcafef00d {
		t.Errorf("ReadU64 = %#x", v)
	}
	if _, err := p.ReadU64(60); err == nil {
		t.Error("out-of-range ReadU64 accepted")
	}
}
