package bench

import (
	"math"
	"testing"
)

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("GeoMean(2,8) = %v", g)
	}
	if g := GeoMean([]float64{0, -1}); g != 0 {
		t.Errorf("GeoMean of nothing = %v", g)
	}
	if g := GeoMean([]float64{5, 0}); math.Abs(g-5) > 1e-9 {
		t.Errorf("GeoMean skips non-positive: %v", g)
	}
}

// TestTable3MatchesPaper checks the headline Table 3 numbers.
func TestTable3MatchesPaper(t *testing.T) {
	r := Table3()
	if len(r.Rows) < 6 {
		t.Fatalf("only %d component rows", len(r.Rows))
	}
	if math.Abs(r.UnitArea-0.47) > 0.02 || math.Abs(r.UnitPower-119.3) > 2 {
		t.Errorf("unit totals %.2f mm^2 / %.1f mW, paper: 0.47 / 119.3", r.UnitArea, r.UnitPower)
	}
	if r.AreaOverhead < 1.5 || r.AreaOverhead > 2.1 {
		t.Errorf("area overhead %.2fx, paper: 1.74x", r.AreaOverhead)
	}
	if r.PowerOverhead < 2.0 || r.PowerOverhead > 2.6 {
		t.Errorf("power overhead %.2fx, paper: 2.28x", r.PowerOverhead)
	}
}

// TestTable4Complete checks the characterization covers 8 + 4 codes.
func TestTable4Complete(t *testing.T) {
	rows := Table4()
	impl, rej := 0, 0
	for _, r := range rows {
		if r.Unsuitable {
			rej++
			if r.Reason == "" {
				t.Errorf("%s: missing reason", r.Workload)
			}
		} else {
			impl++
			if r.Patterns == "" || r.Datapath == "" {
				t.Errorf("%s: incomplete characterization", r.Workload)
			}
		}
	}
	if impl != 8 || rej != 4 {
		t.Errorf("%d implemented + %d unsuitable, want 8 + 4", impl, rej)
	}
}

// TestFig11Shape runs the full DNN study and checks the paper's
// qualitative results: DianNao and Softbrain in the same performance
// class (tens-to-hundreds of x), GPU far behind both, and Softbrain at
// or above DianNao on the pooling workloads.
func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full DNN study")
	}
	rows, err := Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("%d rows, want 10 + GM", len(rows))
	}
	byName := map[string]Fig11Row{}
	for _, r := range rows {
		byName[r.Workload] = r
		t.Logf("%-8s GPU %6.1fx  DianNao %7.1fx  Softbrain %7.1fx", r.Workload, r.GPU, r.DianNao, r.Softbrain)
	}
	gm := byName["GM"]
	if gm.GPU < 2 || gm.GPU > 30 {
		t.Errorf("GM GPU speedup %.1fx outside the paper's <=20x regime", gm.GPU)
	}
	if gm.Softbrain < 20 {
		t.Errorf("GM Softbrain speedup %.1fx; paper reports ~100x", gm.Softbrain)
	}
	if gm.Softbrain < gm.GPU {
		t.Error("Softbrain should beat the GPU overall")
	}
	// Same performance class as DianNao: within ~3x either way overall.
	ratio := gm.Softbrain / gm.DianNao
	if ratio < 0.33 || ratio > 3 {
		t.Errorf("Softbrain/DianNao GM ratio %.2f; paper: comparable", ratio)
	}
	// The pooling advantage.
	for _, p := range []string{"pool1p", "pool3p", "pool5p"} {
		if byName[p].Softbrain < byName[p].DianNao*0.8 {
			t.Errorf("%s: Softbrain %.1fx well below DianNao %.1fx; paper shows an advantage",
				p, byName[p].Softbrain, byName[p].DianNao)
		}
	}
}

// TestMachSuiteStudyShape runs the full Figures 12-15 study and checks
// the paper's headline shapes.
func TestMachSuiteStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full MachSuite study")
	}
	rows, err := MachSuiteStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows, want 8 + GM", len(rows))
	}
	var gm MachRow
	for _, r := range rows {
		t.Logf("%-13s spd %5.2fx/%5.2fx  pow-eff %6.1fx/%6.1fx  en-eff %6.1fx/%6.1fx  area %6.3fx",
			r.Workload, r.SoftbrainSpeedup, r.ASICSpeedup,
			r.SoftbrainPowerEff, r.ASICPowerEff,
			r.SoftbrainEnergyEff, r.ASICEnergyEff, r.ASICAreaRel)
		if r.Workload == "GM" {
			gm = r
		}
	}
	// Figure 12: both achieve 1-7x over OOO4, and iso-performance holds.
	if gm.SoftbrainSpeedup < 0.8 || gm.SoftbrainSpeedup > 10 {
		t.Errorf("GM Softbrain speedup %.2fx outside the paper's 1-7x band", gm.SoftbrainSpeedup)
	}
	isoRatio := gm.ASICSpeedup / gm.SoftbrainSpeedup
	if isoRatio < 0.5 || isoRatio > 2.5 {
		t.Errorf("ASICs not iso-performance: ratio %.2f", isoRatio)
	}
	// Figure 13: both far more power-efficient than OOO4; ASIC leads
	// Softbrain by roughly 2x.
	if gm.SoftbrainPowerEff < 20 {
		t.Errorf("GM Softbrain power efficiency %.0fx; paper: order 100x", gm.SoftbrainPowerEff)
	}
	lead := gm.ASICPowerEff / gm.SoftbrainPowerEff
	if lead < 1 || lead > 6 {
		t.Errorf("ASIC power lead %.2fx; paper: ~2x", lead)
	}
	// Figure 14: energy within small factors.
	if elead := gm.ASICEnergyEff / gm.SoftbrainEnergyEff; elead < 0.8 || elead > 8 {
		t.Errorf("ASIC energy lead %.2fx; paper: ~2x", elead)
	}
	// Figure 15: ASICs are small fractions of Softbrain's area...
	if gm.ASICAreaRel > 0.5 {
		t.Errorf("GM ASIC relative area %.3f; paper: ~1/8", gm.ASICAreaRel)
	}
	// ...but eight of them together rival or exceed one Softbrain.
	total := TotalASICArea(rows)
	sb := Table3().UnitArea
	if total < sb*0.4 {
		t.Errorf("all ASICs together %.2f mm^2 vs Softbrain %.2f; paper: 2.54x", total, sb)
	}
}

// TestAblations verifies the microarchitectural features carry their
// weight: disabling each one must not speed anything up materially, and
// the pipelining features must show clear wins on the kernels that
// stress them.
func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation study")
	}
	rows, err := Ablations()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Workload] = r
		t.Logf("%-10s base %7d  -inflight %7d  -window %7d  -balance %7d  window=2 %7d  half-ports %7d",
			r.Workload, r.Baseline, r.NoAllInFlight, r.InOrderIssue, r.NoBalanceUnit, r.SmallWindow, r.ShallowPorts)
		for label, v := range map[string]uint64{
			"no-all-in-flight": r.NoAllInFlight,
			"in-order-issue":   r.InOrderIssue,
			"no-balance":       r.NoBalanceUnit,
			"small-window":     r.SmallWindow,
			"shallow-ports":    r.ShallowPorts,
		} {
			if float64(v) < 0.95*float64(r.Baseline) {
				t.Errorf("%s: removing %s sped things up (%d -> %d); feature is harmful",
					r.Workload, label, r.Baseline, v)
			}
		}
	}
	// The features exist for fine-grained stream pipelining: spmv must
	// lose meaningfully without them. All-requests-in-flight earns its
	// keep when DRAM latency sits between a stream's last request and
	// its completion, i.e. on cold runs.
	spmv := byName["spmv-crs"]
	t.Logf("spmv-crs cold: base %d  -inflight %d", spmv.ColdBaseline, spmv.ColdNoAllInFlight)
	if spmv.ColdNoAllInFlight < spmv.ColdBaseline*13/10 {
		t.Errorf("spmv-crs cold: all-requests-in-flight won only %d -> %d; expected a clear benefit",
			spmv.ColdNoAllInFlight, spmv.ColdBaseline)
	}
	if spmv.InOrderIssue < spmv.Baseline*11/10 {
		t.Errorf("spmv-crs: dispatch window won only %d -> %d; expected a clear benefit",
			spmv.InOrderIssue, spmv.Baseline)
	}
}

// TestFixStudyPlacement runs the full barrier study and checks the
// placement half: the cost-aware chooser must never lose to the
// latest-legal baseline (it commits only simulated strict
// improvements), and must actually win — fewer total cycles and fewer
// barrier-drain stall cycles — on at least two workloads.
func TestFixStudyPlacement(t *testing.T) {
	rows, err := FixStudy()
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	for _, r := range rows {
		if r.HoistedCy > r.LatestCy {
			t.Errorf("%s: hoisted placement is slower than latest-legal (%d > %d cycles)",
				r.Workload, r.HoistedCy, r.LatestCy)
		}
		if r.HoistedCy < r.LatestCy {
			wins++
			if r.HoistedDrain >= r.LatestDrain {
				t.Errorf("%s: cycles improved (%d < %d) but barrier drain did not (%d >= %d)",
					r.Workload, r.HoistedCy, r.LatestCy, r.HoistedDrain, r.LatestDrain)
			}
			if r.Hoists == 0 {
				t.Errorf("%s: cycles improved without any recorded hoist", r.Workload)
			}
		}
	}
	if wins < 2 {
		t.Errorf("cost-aware placement beats latest-legal on %d workloads, want >= 2", wins)
	}
}
