package bench

import (
	"context"
	"errors"
	"fmt"

	"softbrain/internal/cgra"
	"softbrain/internal/core"
	"softbrain/internal/workloads"
	"softbrain/internal/workloads/machsuite"
)

// AblationRow reports one workload's cycle counts with individual
// microarchitectural features disabled — the quantitative backing for
// the design decisions DESIGN.md §3 calls out.
type AblationRow struct {
	Workload string

	Baseline      uint64 // all features on
	NoAllInFlight uint64 // §4.2 all-requests-in-flight disabled
	InOrderIssue  uint64 // dispatch window disabled (head-of-queue only)
	NoBalanceUnit uint64 // §4.5 balance arbitration disabled
	SmallWindow   uint64 // command queue depth 2
	ShallowPorts  uint64 // vector-port depth halved

	// Cold-run columns: all-requests-in-flight earns its keep when
	// misses put hundreds of cycles between a stream's last request and
	// its completion.
	ColdBaseline      uint64
	ColdNoAllInFlight uint64
}

// ablationWorkloads are the kernels most sensitive to the studied
// features: fine-grained per-row streams (spmv), recurrence pipelines
// (stencil2d, gemm) and indirect traffic (md-knn).
var ablationWorkloads = []string{"spmv-crs", "stencil2d", "gemm", "md-knn"}

// Ablations measures each feature's contribution on the sensitive
// MachSuite kernels. Rows report warm-run cycles; higher than Baseline
// means the feature was load-bearing.
func Ablations() ([]AblationRow, error) {
	return AblationsContext(context.Background())
}

// AblationsContext is Ablations bounded by a context (sdbench -timeout).
func AblationsContext(ctx context.Context) ([]AblationRow, error) {
	var rows []AblationRow
	for _, name := range ablationWorkloads {
		e, err := machsuite.Find(name)
		if err != nil {
			return nil, err
		}
		row := AblationRow{Workload: name}
		measureMode := func(mutate func(*core.Config), warm bool) (uint64, error) {
			cfg := core.DefaultConfig()
			if mutate != nil {
				mutate(&cfg)
			}
			inst, err := e.Build(cfg, 2)
			if err != nil {
				return 0, fmt.Errorf("bench: ablation %s: %w", name, err)
			}
			stats, err := runAblation(ctx, inst, cfg, warm)
			if err != nil {
				return 0, fmt.Errorf("bench: ablation %s: %w", name, err)
			}
			return stats.Cycles, nil
		}
		measure := func(mutate func(*core.Config)) (uint64, error) {
			return measureMode(mutate, true)
		}
		if row.Baseline, err = measure(nil); err != nil {
			return nil, err
		}
		if row.NoAllInFlight, err = measure(func(c *core.Config) { c.NoAllInFlight = true }); err != nil {
			return nil, err
		}
		if row.InOrderIssue, err = measure(func(c *core.Config) { c.InOrderIssue = true }); err != nil {
			return nil, err
		}
		if row.NoBalanceUnit, err = measure(func(c *core.Config) { c.NoBalanceUnit = true }); err != nil {
			return nil, err
		}
		if row.SmallWindow, err = measure(func(c *core.Config) { c.CmdQueueDepth = 2 }); err != nil {
			return nil, err
		}
		if row.ShallowPorts, err = measure(func(c *core.Config) {
			c.Fabric = halfDepthFabric(c.Fabric)
		}); err != nil {
			return nil, err
		}
		if row.ColdBaseline, err = measureMode(nil, false); err != nil {
			return nil, err
		}
		if row.ColdNoAllInFlight, err = measureMode(func(c *core.Config) { c.NoAllInFlight = true }, false); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// halfDepthFabric clones the fabric with vector-port FIFO depths halved
// (never below the port width).
func halfDepthFabric(f *cgra.Fabric) *cgra.Fabric {
	g := *f
	g.InPorts = append([]cgra.PortSpec(nil), f.InPorts...)
	g.OutPorts = append([]cgra.PortSpec(nil), f.OutPorts...)
	for i := range g.InPorts {
		if d := g.InPorts[i].Depth / 2; d >= g.InPorts[i].Width {
			g.InPorts[i].Depth = d
		}
	}
	for i := range g.OutPorts {
		if d := g.OutPorts[i].Depth / 2; d >= g.OutPorts[i].Width {
			g.OutPorts[i].Depth = d
		}
	}
	return &g
}

// runAblation runs warm and tolerates deadlocks (an ablated machine may
// legitimately deadlock; report max cycles instead of failing).
func runAblation(ctx context.Context, inst *workloads.Instance, cfg core.Config, warm bool) (*core.Stats, error) {
	run := inst.RunContext
	if warm {
		run = inst.RunWarmContext
	}
	stats, err := run(ctx, cfg)
	if err != nil {
		var dl *core.DeadlockError
		if errors.As(err, &dl) {
			return &core.Stats{Cycles: ^uint64(0)}, nil
		}
		return nil, err
	}
	return stats, nil
}
