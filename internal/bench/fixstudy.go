package bench

import (
	"context"
	"fmt"

	"softbrain/internal/core"
	"softbrain/internal/fix"
	"softbrain/internal/isa"
	"softbrain/internal/lint"
	"softbrain/internal/obs"
	"softbrain/internal/workloads"
	"softbrain/internal/workloads/ext"
	"softbrain/internal/workloads/machsuite"
)

// FixRow reports one workload's barrier count and warm-run cycles in
// three forms: as shipped, fully serialized (an SD_Barrier_All after
// every command — the conservative program a cautious programmer or a
// naive compiler writes), and after the fix pass has eliminated the
// serialization it can prove redundant. Fixed should recover shipped.
//
// The placement fields extend the study to where the surviving barriers
// sit: the fixed programs normalized to the latest-legal placement (the
// no-profile baseline) versus the profile-guided cost-aware placement
// of fix.HoistBarriers, with the barrier-drain stall cycles of each —
// the component of the total the chooser actually optimizes.
type FixRow struct {
	Workload                         string
	Shipped, Serialized, Fixed       int    // barrier counts
	ShippedCy, SerializedCy, FixedCy uint64 // cycles

	Hoists                    int    // barriers the cost-aware chooser moved
	LatestCy, HoistedCy       uint64 // cycles at latest-legal vs cost-aware placement
	LatestDrain, HoistedDrain uint64 // barrier-drain stall cycles at each placement
}

// fixStudyWorkloads are the kernels of the study: stream-heavy kernels
// whose traces serialize badly, plus the indirect workloads where the
// fix pass must keep the load-bearing barriers.
var fixStudyWorkloads = []struct{ suite, name string }{
	{"machsuite", "spmv-crs"},
	{"machsuite", "stencil2d"},
	{"machsuite", "gemm"},
	{"machsuite", "bfs"},
	{"machsuite", "spmv-ellpack"},
	{"machsuite", "md-knn"},
	{"machsuite", "stencil3d"},
	{"machsuite", "viterbi"},
	{"ext", "nw"},
	{"ext", "backprop"},
	{"ext", "fft"},
	{"ext", "lut"}, // scratch round-trip: bounded only by value tracking
}

// FixStudy measures the cost of over-serialization and how much of it
// the barrier-elimination pass recovers.
func FixStudy() ([]FixRow, error) {
	return FixStudyContext(context.Background())
}

// FixStudyContext is FixStudy bounded by a context (sdbench -timeout).
func FixStudyContext(ctx context.Context) ([]FixRow, error) {
	var rows []FixRow
	for _, w := range fixStudyWorkloads {
		cfg := core.DefaultConfig()
		var (
			inst *workloads.Instance
			err  error
		)
		switch w.suite {
		case "machsuite":
			var e machsuite.Entry
			if e, err = machsuite.Find(w.name); err == nil {
				inst, err = e.Build(cfg, 1)
			}
		case "ext":
			var e ext.Entry
			if e, err = ext.Find(w.name); err == nil {
				inst, err = e.Build(cfg, 1)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("bench: fix study %s: %w", w.name, err)
		}

		serialized := make([]*core.Program, len(inst.Progs))
		fixed := make([]*core.Program, len(inst.Progs))
		row := FixRow{Workload: w.name}
		for i, p := range inst.Progs {
			serialized[i] = serialize(p)
			q, rep, err := fix.Fix(serialized[i], cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: fix study %s: %w", w.name, err)
			}
			fixed[i] = q
			row.Shipped += fix.CountBarriers(p)
			row.Serialized += rep.BarriersBefore
			row.Fixed += rep.BarriersAfter
		}
		for _, m := range []struct {
			progs []*core.Program
			out   *uint64
		}{
			{inst.Progs, &row.ShippedCy},
			{serialized, &row.SerializedCy},
			{fixed, &row.FixedCy},
		} {
			cy, err := runCycles(ctx, inst, cfg, m.progs)
			if err != nil {
				return nil, fmt.Errorf("bench: fix study %s: %w", w.name, err)
			}
			*m.out = cy
		}
		if err := placementStudy(ctx, inst, cfg, fixed, &row); err != nil {
			return nil, fmt.Errorf("bench: fix study %s: %w", w.name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// placementStudy measures the placement half of the study on one
// workload: normalize the fixed programs to the latest-legal placement,
// profile that run for per-barrier drain cycles, then let the
// cost-aware chooser hoist barriers within their legal intervals with a
// full simulation as the cost oracle (so committed moves are strict
// improvements by construction). Every candidate run still verifies the
// workload's golden check.
func placementStudy(ctx context.Context, inst *workloads.Instance, cfg core.Config, fixed []*core.Program, row *FixRow) error {
	latest := make([]*core.Program, len(fixed))
	for i, p := range fixed {
		q, _, err := fix.PlaceLatest(p, cfg)
		if err != nil {
			return err
		}
		latest[i] = q
	}
	lStats, dump, err := runMetrics(ctx, inst, cfg, latest)
	if err != nil {
		return err
	}
	row.LatestCy, row.LatestDrain = lStats.Cycles, lStats.BarrierCycles

	hoisted := make([]*core.Program, len(latest))
	copy(hoisted, latest)
	for i := range latest {
		pr := fix.ProfileFromUnit(dump.Units[i])
		if pr == nil {
			continue
		}
		idx := i
		evaluate := func(cand *core.Program) (uint64, error) {
			trial := make([]*core.Program, len(hoisted))
			copy(trial, hoisted)
			trial[idx] = cand
			return runCycles(ctx, inst, cfg, trial)
		}
		q, moves, err := fix.HoistBarriers(latest[i], cfg, fix.HoistOpts{Profile: pr, Evaluate: evaluate})
		if err != nil {
			return err
		}
		// A hoisted placement must keep the strictest analysis verdict.
		fs, err := lint.CheckWith(q, cfg, lint.Opts{Exhaustive: true, StrictIndirect: true})
		if err != nil {
			return err
		}
		for _, f := range fs {
			if f.Sev == lint.SevError {
				return fmt.Errorf("hoisted %s: %v", q.Name, f)
			}
		}
		hoisted[i] = q
		row.Hoists += len(moves)
	}
	hStats, _, err := runMetrics(ctx, inst, cfg, hoisted)
	if err != nil {
		return err
	}
	row.HoistedCy, row.HoistedDrain = hStats.Cycles, hStats.BarrierCycles
	return nil
}

// serialize rebuilds p with an SD_Barrier_All after every non-barrier
// command.
func serialize(p *core.Program) *core.Program {
	q := core.NewProgram(p.Name)
	for addr, blob := range p.Configs {
		q.Configs[addr] = blob
	}
	for _, op := range p.Trace {
		q.Trace = append(q.Trace, op)
		if op.Cmd != nil && !isa.IsBarrier(op.Cmd) {
			q.Trace = append(q.Trace, core.TraceOp{Cmd: isa.BarrierAll{}})
		}
	}
	return q
}

// runCycles runs the instance's data against the given program set on a
// fresh cluster, verifies the golden check still passes, and reports
// the run's cycles. Runs are cold: some study workloads (backprop)
// update their inputs in place, so a warm re-run would not verify.
func runCycles(ctx context.Context, inst *workloads.Instance, cfg core.Config, progs []*core.Program) (uint64, error) {
	cl, err := core.NewCluster(cfg, len(progs))
	if err != nil {
		return 0, err
	}
	if inst.Init != nil {
		inst.Init(cl.Mem)
	}
	stats, err := cl.RunContext(ctx, progs)
	if err != nil {
		return 0, err
	}
	if inst.Check != nil {
		if err := inst.Check(cl.Mem); err != nil {
			return 0, err
		}
	}
	return stats.Cycles, nil
}

// runMetrics is runCycles with per-unit metrics enabled, returning the
// full run stats and the merged dump (the barrier_drains sections feed
// the cost-aware chooser).
func runMetrics(ctx context.Context, inst *workloads.Instance, cfg core.Config, progs []*core.Program) (*core.Stats, obs.Dump, error) {
	cl, err := core.NewCluster(cfg, len(progs))
	if err != nil {
		return nil, obs.Dump{}, err
	}
	cl.EnableMetrics(obs.Options{})
	if inst.Init != nil {
		inst.Init(cl.Mem)
	}
	stats, err := cl.RunContext(ctx, progs)
	if err != nil {
		return nil, obs.Dump{}, err
	}
	if inst.Check != nil {
		if err := inst.Check(cl.Mem); err != nil {
			return nil, obs.Dump{}, err
		}
	}
	return stats, cl.MetricsDump(), nil
}
