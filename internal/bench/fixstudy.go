package bench

import (
	"fmt"

	"softbrain/internal/core"
	"softbrain/internal/fix"
	"softbrain/internal/isa"
	"softbrain/internal/workloads"
	"softbrain/internal/workloads/ext"
	"softbrain/internal/workloads/machsuite"
)

// FixRow reports one workload's barrier count and warm-run cycles in
// three forms: as shipped, fully serialized (an SD_Barrier_All after
// every command — the conservative program a cautious programmer or a
// naive compiler writes), and after the fix pass has eliminated the
// serialization it can prove redundant. Fixed should recover shipped.
type FixRow struct {
	Workload                         string
	Shipped, Serialized, Fixed       int    // barrier counts
	ShippedCy, SerializedCy, FixedCy uint64 // cycles
}

// fixStudyWorkloads are the kernels of the study: stream-heavy kernels
// whose traces serialize badly, plus the indirect workloads where the
// fix pass must keep the load-bearing barriers.
var fixStudyWorkloads = []struct{ suite, name string }{
	{"machsuite", "spmv-crs"},
	{"machsuite", "stencil2d"},
	{"machsuite", "gemm"},
	{"machsuite", "bfs"},
	{"ext", "backprop"},
	{"ext", "fft"},
	{"ext", "lut"}, // scratch round-trip: bounded only by value tracking
}

// FixStudy measures the cost of over-serialization and how much of it
// the barrier-elimination pass recovers.
func FixStudy() ([]FixRow, error) {
	var rows []FixRow
	for _, w := range fixStudyWorkloads {
		cfg := core.DefaultConfig()
		var (
			inst *workloads.Instance
			err  error
		)
		switch w.suite {
		case "machsuite":
			var e machsuite.Entry
			if e, err = machsuite.Find(w.name); err == nil {
				inst, err = e.Build(cfg, 1)
			}
		case "ext":
			var e ext.Entry
			if e, err = ext.Find(w.name); err == nil {
				inst, err = e.Build(cfg, 1)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("bench: fix study %s: %w", w.name, err)
		}

		serialized := make([]*core.Program, len(inst.Progs))
		fixed := make([]*core.Program, len(inst.Progs))
		row := FixRow{Workload: w.name}
		for i, p := range inst.Progs {
			serialized[i] = serialize(p)
			q, rep, err := fix.Fix(serialized[i], cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: fix study %s: %w", w.name, err)
			}
			fixed[i] = q
			row.Shipped += fix.CountBarriers(p)
			row.Serialized += rep.BarriersBefore
			row.Fixed += rep.BarriersAfter
		}
		for _, m := range []struct {
			progs []*core.Program
			out   *uint64
		}{
			{inst.Progs, &row.ShippedCy},
			{serialized, &row.SerializedCy},
			{fixed, &row.FixedCy},
		} {
			cy, err := runCycles(inst, cfg, m.progs)
			if err != nil {
				return nil, fmt.Errorf("bench: fix study %s: %w", w.name, err)
			}
			*m.out = cy
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// serialize rebuilds p with an SD_Barrier_All after every non-barrier
// command.
func serialize(p *core.Program) *core.Program {
	q := core.NewProgram(p.Name)
	for addr, blob := range p.Configs {
		q.Configs[addr] = blob
	}
	for _, op := range p.Trace {
		q.Trace = append(q.Trace, op)
		if op.Cmd != nil && !isa.IsBarrier(op.Cmd) {
			q.Trace = append(q.Trace, core.TraceOp{Cmd: isa.BarrierAll{}})
		}
	}
	return q
}

// runCycles runs the instance's data against the given program set on a
// fresh cluster, verifies the golden check still passes, and reports
// the run's cycles. Runs are cold: some study workloads (backprop)
// update their inputs in place, so a warm re-run would not verify.
func runCycles(inst *workloads.Instance, cfg core.Config, progs []*core.Program) (uint64, error) {
	cl, err := core.NewCluster(cfg, len(progs))
	if err != nil {
		return 0, err
	}
	if inst.Init != nil {
		inst.Init(cl.Mem)
	}
	stats, err := cl.Run(progs)
	if err != nil {
		return 0, err
	}
	if inst.Check != nil {
		if err := inst.Check(cl.Mem); err != nil {
			return 0, err
		}
	}
	return stats.Cycles, nil
}
