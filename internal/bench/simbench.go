package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"softbrain/internal/core"
	"softbrain/internal/obs"
	"softbrain/internal/sim"
	"softbrain/internal/workloads"
	"softbrain/internal/workloads/dnn"
	"softbrain/internal/workloads/ext"
	"softbrain/internal/workloads/machsuite"
)

// SimRow is one workload's simulator host-performance measurement: the
// simulated cycle count (identical with skipping off and on — the
// equivalence tests enforce it) and the host wall time both ways.
type SimRow struct {
	Workload string `json:"workload"`
	Units    int    `json:"units"`
	Cycles   uint64 `json:"cycles"`

	WallNsNoSkip int64 `json:"wall_ns_noskip"` // host ns, every cycle ticked
	WallNs       int64 `json:"wall_ns"`        // host ns, idle skip-ahead on

	NsPerCycleNoSkip float64 `json:"ns_per_cycle_noskip"`
	NsPerCycle       float64 `json:"ns_per_cycle"`
	Speedup          float64 `json:"speedup"` // wall_ns_noskip / wall_ns

	// Stall attribution and data movement from a metrics-enabled run
	// (internal/obs): per component, cause -> cycles summed across
	// units; total bytes moved by retired streams; and the memory
	// streams' bandwidth as a fraction of the DRAM peak.
	Stalls         map[string]map[string]uint64 `json:"stall_cycles,omitempty"`
	BytesMoved     uint64                       `json:"bytes_moved,omitempty"`
	MemBytesPerCyc float64                      `json:"mem_bytes_per_cycle,omitempty"`
	MemUtilization float64                      `json:"mem_utilization,omitempty"` // 0..1 of peak

	// Sched summarizes the wake-set scheduler's behavior on a full-
	// featured (skip-ahead and span retirement enabled) run: where the
	// host-time win comes from. Deliberately outside the obs dump —
	// dumps are byte-compared across scheduling modes, and these
	// counters exist to differ between modes.
	Sched *SchedSummary `json:"sched,omitempty"`
}

// SchedSummary is the JSON shape of sim.SchedStats aggregated across a
// run's units, plus derived ratios.
type SchedSummary struct {
	SteppedCycles uint64 `json:"stepped_cycles"` // cycles the run loop stepped
	SkippedCycles uint64 `json:"skipped_cycles"` // cycles elided by frozen jumps
	Jumps         uint64 `json:"jumps"`
	CompTicks     uint64 `json:"comp_ticks"`
	CompSleeps    uint64 `json:"comp_sleeps"`
	SigWakes      uint64 `json:"sig_wakes"` // wakes caused by a watch-signature change
	Spans         uint64 `json:"spans"`
	SpanCycles    uint64 `json:"span_cycles"`

	// TicksPerCycle is CompTicks over all simulated cycles (stepped +
	// skipped): the average number of components the scheduler actually
	// ran per cycle, against 6 per cycle for the tick-everything loop.
	TicksPerCycle float64 `json:"ticks_per_cycle"`

	// TickHist[k] counts stepped cycles with exactly k component ticks
	// (last bucket absorbs larger counts); SpanHist buckets retired span
	// lengths by floor(log2(n)).
	TickHist []uint64 `json:"tick_hist"`
	SpanHist []uint64 `json:"span_hist"`

	// TicksBy is the executed tick count per component name.
	TicksBy map[string]uint64 `json:"ticks_by"`
}

// newSchedSummary converts the kernel counters to the JSON shape,
// trimming trailing zero histogram buckets.
func newSchedSummary(s sim.SchedStats, by map[string]uint64) *SchedSummary {
	trim := func(h []uint64) []uint64 {
		n := len(h)
		for n > 0 && h[n-1] == 0 {
			n--
		}
		return append([]uint64(nil), h[:n]...)
	}
	sum := &SchedSummary{
		SteppedCycles: s.Cycles,
		SkippedCycles: s.Skipped,
		Jumps:         s.Jumps,
		CompTicks:     s.CompTicks,
		CompSleeps:    s.CompSleeps,
		SigWakes:      s.SigWakes,
		Spans:         s.Spans,
		SpanCycles:    s.SpanCycles,
		TickHist:      trim(s.TickHist[:]),
		SpanHist:      trim(s.SpanHist[:]),
		TicksBy:       by,
	}
	if total := s.Cycles + s.Skipped; total > 0 {
		sum.TicksPerCycle = float64(s.CompTicks) / float64(total)
	}
	return sum
}

// simEntry is one workload in the host-performance suite.
type simEntry struct {
	name  string
	build func() (*workloads.Instance, core.Config, error)
	smoke bool // part of the CI smoke slice
}

// simSuite lists the measured workloads: the full MachSuite set plus a
// DNN layer on the 8-unit cluster. The smoke slice is the small subset
// make bench-smoke pins against scripts/bench_goldens.json.
func simSuite() []simEntry {
	var entries []simEntry
	smoke := map[string]bool{"bfs": true, "spmv-crs": true, "gemm": true}
	for _, e := range machsuite.All() {
		e := e
		scale := machScale[e.Name]
		if scale == 0 {
			scale = 2
		}
		entries = append(entries, simEntry{
			name: e.Name,
			build: func() (*workloads.Instance, core.Config, error) {
				cfg := core.DefaultConfig()
				inst, err := e.Build(cfg, scale)
				return inst, cfg, err
			},
			smoke: smoke[e.Name],
		})
	}
	for _, l := range dnn.Layers()[:2] {
		l := l
		entries = append(entries, simEntry{
			name: l.Name,
			build: func() (*workloads.Instance, core.Config, error) {
				cfg := dnn.Config()
				inst, err := l.Build(cfg, dnn.Units)
				return inst, cfg, err
			},
		})
	}
	// A MachSuite kernel replicated over a four-unit cluster: the
	// multi-unit host-performance point outside the DNN configuration.
	// The units run identical programs against one shared image (the
	// writes are idempotent, so verification holds) and contend for the
	// shared DRAM channel, which exercises the parallel lockstep
	// scheduler and its deferred-grant barrier.
	for _, g := range machsuite.All() {
		if g.Name != "gemm" {
			continue
		}
		g := g
		entries = append(entries, simEntry{
			name: "gemm-x4",
			build: func() (*workloads.Instance, core.Config, error) {
				cfg := core.DefaultConfig()
				var first *workloads.Instance
				for k := 0; k < 4; k++ {
					inst, err := g.Build(cfg, machScale[g.Name])
					if err != nil {
						return nil, cfg, err
					}
					if first == nil {
						first = inst
					} else {
						first.Progs = append(first.Progs, inst.Progs...)
					}
				}
				first.Name = "gemm-x4"
				return first, cfg, nil
			},
		})
	}
	// The scratch round-trip gather rides in the smoke slice: its cycle
	// golden pins the barrier-minimal shipped program, which depends on
	// the linter's round-trip value tracking staying sound.
	lut, _ := ext.Find("lut")
	entries = append(entries, simEntry{
		name: lut.Name,
		build: func() (*workloads.Instance, core.Config, error) {
			cfg := core.DefaultConfig()
			inst, err := lut.Build(cfg, 2)
			return inst, cfg, err
		},
		smoke: true,
	})
	return entries
}

// SimBench measures simulator host performance over the suite (or just
// the smoke slice): each workload runs once with skip-ahead disabled
// and once enabled, wall-clocked. The simulated cycle counts must agree
// or the row is an error — this doubles as an end-to-end equivalence
// check on every benchmarked workload.
func SimBench(smokeOnly bool) ([]SimRow, error) {
	return SimBenchContext(context.Background(), smokeOnly)
}

// SimBenchContext is SimBench bounded by a context (sdbench -timeout).
func SimBenchContext(ctx context.Context, smokeOnly bool) ([]SimRow, error) {
	return SimBenchHeartbeatContext(ctx, smokeOnly, 0, nil)
}

// SimBenchHeartbeatContext is SimBenchContext with a progress heartbeat
// (sdbench -progress): when hb is non-nil it is attached to every timed
// simulation and fires from inside the run loop at most every `every`,
// carrying the workload's name. The callback executes on the
// simulator's critical path, so the measured host timings include its
// (small) cost; simulated cycle counts are unaffected by contract.
func SimBenchHeartbeatContext(ctx context.Context, smokeOnly bool, every time.Duration, hb func(workload string, r core.ProgressReport)) ([]SimRow, error) {
	var rows []SimRow
	for _, e := range simSuite() {
		if smokeOnly && !e.smoke {
			continue
		}
		var prep func(*core.Cluster)
		if hb != nil {
			name := e.name
			prep = func(cl *core.Cluster) {
				cl.SetHeartbeat(every, func(r core.ProgressReport) { hb(name, r) })
			}
		}
		// Best-of-N repetitions per mode with an adaptive N: single runs
		// are at the millisecond scale (some below it), where scheduler
		// and GC noise swamps the signal, so each mode keeps repeating
		// until it has accumulated enough measured wall time for the
		// minimum to be trustworthy. Cycle counts must agree across
		// every run.
		const (
			minReps    = 3
			maxReps    = 25
			minTotalNs = int64(50e6)
		)
		run := func(noSkip bool) (uint64, int64, error) {
			var cycles uint64
			var best, total int64
			for rep := 0; rep < maxReps; rep++ {
				if rep >= minReps && total >= minTotalNs {
					break
				}
				inst, cfg, err := e.build()
				if err != nil {
					return 0, 0, err
				}
				cfg.NoSkipAhead = noSkip
				start := time.Now()
				stats, err := inst.RunPreparedContext(ctx, cfg, prep)
				if err != nil {
					return 0, 0, err
				}
				ns := time.Since(start).Nanoseconds()
				total += ns
				if rep == 0 {
					cycles, best = stats.Cycles, ns
					continue
				}
				if stats.Cycles != cycles {
					return 0, 0, fmt.Errorf("bench: %s: nondeterministic cycle count (%d then %d)",
						e.name, cycles, stats.Cycles)
				}
				if ns < best {
					best = ns
				}
			}
			return cycles, best, nil
		}
		offCycles, offNs, err := run(true)
		if err != nil {
			return nil, fmt.Errorf("bench: %s (no skip): %w", e.name, err)
		}
		onCycles, onNs, err := run(false)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", e.name, err)
		}
		if offCycles != onCycles {
			return nil, fmt.Errorf("bench: %s: %d cycles without skip-ahead, %d with — skip-ahead changed the simulation",
				e.name, offCycles, onCycles)
		}
		inst, cfg, err := e.build()
		if err != nil {
			return nil, err
		}
		row := SimRow{
			Workload:     e.name,
			Units:        inst.Units(),
			Cycles:       onCycles,
			WallNsNoSkip: offNs,
			WallNs:       onNs,
		}
		// One extra, untimed run with the observability layer attached
		// fills the stall and bandwidth columns. Its cycle count must
		// agree — metrics are read-only by contract.
		mStats, dump, err := inst.RunMetricsContext(ctx, cfg, obs.Options{})
		if err != nil {
			return nil, fmt.Errorf("bench: %s (metrics): %w", e.name, err)
		}
		if mStats.Cycles != onCycles {
			return nil, fmt.Errorf("bench: %s: enabling metrics changed the cycle count (%d -> %d)",
				e.name, onCycles, mStats.Cycles)
		}
		if err := obs.CheckConservation(dump); err != nil {
			return nil, fmt.Errorf("bench: %s: %w", e.name, err)
		}
		row.Stalls = map[string]map[string]uint64{}
		for _, c := range dump.Total.Components {
			row.Stalls[c.Name] = c.Causes
		}
		peak := float64(cfg.Mem.LineBytes) / float64(cfg.Mem.MissInterval)
		var memBytes uint64
		for _, s := range dump.Total.Streams {
			row.BytesMoved += s.Bytes
			if obs.MemKind(s.Kind) {
				memBytes += s.Bytes
			}
		}
		if onCycles > 0 {
			row.MemBytesPerCyc = float64(memBytes) / float64(onCycles)
			if peak > 0 {
				row.MemUtilization = row.MemBytesPerCyc / peak
			}
		}
		if onCycles > 0 {
			row.NsPerCycleNoSkip = float64(offNs) / float64(onCycles)
			row.NsPerCycle = float64(onNs) / float64(onCycles)
		}
		if onNs > 0 {
			row.Speedup = float64(offNs) / float64(onNs)
		}
		// A final untimed run under the full event-driven configuration
		// harvests the scheduler counters behind the speedup column.
		// Its cycle count must agree like every other run's.
		sInst, sCfg, err := e.build()
		if err != nil {
			return nil, err
		}
		sStats, sched, tickBy, err := sInst.RunSchedContext(ctx, sCfg)
		if err != nil {
			return nil, fmt.Errorf("bench: %s (sched): %w", e.name, err)
		}
		if sStats.Cycles != onCycles {
			return nil, fmt.Errorf("bench: %s: sched-counter run changed the cycle count (%d -> %d)",
				e.name, onCycles, sStats.Cycles)
		}
		row.Sched = newSchedSummary(sched, tickBy)
		rows = append(rows, row)
	}
	if len(rows) > 0 {
		rows = append(rows, geomeanRow(rows))
	}
	return rows, nil
}

// GeomeanWorkload names the aggregate row SimBenchContext appends: the
// geometric mean of the per-workload host-performance figures. Its
// Cycles field is zero, which excludes it from the cycle goldens.
const GeomeanWorkload = "geomean"

// geomeanRow aggregates the host-performance columns of rows.
func geomeanRow(rows []SimRow) SimRow {
	gm := func(pick func(SimRow) float64) float64 {
		sum, n := 0.0, 0
		for _, r := range rows {
			if v := pick(r); v > 0 {
				sum += math.Log(v)
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return math.Exp(sum / float64(n))
	}
	return SimRow{
		Workload:         GeomeanWorkload,
		NsPerCycleNoSkip: gm(func(r SimRow) float64 { return r.NsPerCycleNoSkip }),
		NsPerCycle:       gm(func(r SimRow) float64 { return r.NsPerCycle }),
		Speedup:          gm(func(r SimRow) float64 { return r.Speedup }),
	}
}

// PerfTolerance is the default host-performance ratchet slack: the
// geomean of the per-workload ns_per_cycle ratios against the committed
// baseline may exceed 1 by this fraction before CheckSimPerf fails.
// Host timing on a shared machine is noisy — a single contention spike
// can inflate one workload's best-of-N by well over 50% — so the
// ratchet aggregates: one noisy workload contributes only its n-th
// root to the geomean, while a structural regression (say, the wake-set
// scheduler silently disabled) inflates every ratio at once and fails
// decisively. The tolerance is sized for that split: structural
// regressions show up as 1.5–2×+ across the board, while ambient load
// rarely moves the whole geomean past ~1.25; CI additionally retries
// the smoke gate once before failing.
const PerfTolerance = 0.35

// CheckSimPerf is the host-performance ratchet: it compares each
// measured row's ns_per_cycle (event-driven mode) against the committed
// baseline (BENCH_sim.json) and fails when the geomean of the ratios
// exceeds 1+tol (fractional, e.g. 0.35 for 35%). Workloads absent from
// either side are ignored, so the smoke slice ratchets against a full
// baseline; aggregate rows (no cycle count) are excluded since the
// baseline's geomean spans a different workload set than the smoke
// run's.
func CheckSimPerf(rows []SimRow, baselinePath string, tol float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base []SimRow
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench: parsing %s: %w", baselinePath, err)
	}
	committed := map[string]float64{}
	for _, r := range base {
		if r.Cycles > 0 {
			committed[r.Workload] = r.NsPerCycle
		}
	}
	var logSum float64
	var detail []string
	n := 0
	for _, r := range rows {
		want, ok := committed[r.Workload]
		if !ok || r.Cycles == 0 || want <= 0 || r.NsPerCycle <= 0 {
			continue
		}
		ratio := r.NsPerCycle / want
		logSum += math.Log(ratio)
		n++
		detail = append(detail, fmt.Sprintf("%s: %.1f ns/cycle, committed %.1f (%+.0f%%)",
			r.Workload, r.NsPerCycle, want, 100*(ratio-1)))
	}
	if n == 0 {
		return fmt.Errorf("bench: no workload in common with baseline %s", baselinePath)
	}
	gm := math.Exp(logSum / float64(n))
	if gm > 1+tol {
		return fmt.Errorf("bench: host performance regressed %.0f%% (geomean over %d workloads, tolerance %.0f%%) versus %s:\n  %s\n(intentional? regenerate the baseline with: go run ./cmd/sdbench -json)",
			100*(gm-1), n, 100*tol, baselinePath, strings.Join(detail, "\n  "))
	}
	return nil
}

// WriteSimJSON writes rows to path as indented JSON (BENCH_sim.json).
func WriteSimJSON(rows []SimRow, path string) error {
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CheckSimGoldens compares measured cycle counts against the committed
// goldens (scripts/bench_goldens.json, a workload -> cycles map) and
// reports every drift. Wall times are host-dependent and not checked.
// Workloads absent from the goldens are ignored, so the smoke slice can
// run against a full goldens file and vice versa.
func CheckSimGoldens(rows []SimRow, goldenPath string) error {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		return err
	}
	var want map[string]uint64
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("bench: parsing %s: %w", goldenPath, err)
	}
	var drift []string
	for _, r := range rows {
		if r.Cycles == 0 {
			continue // aggregate rows carry no cycle count
		}
		if w, ok := want[r.Workload]; ok && w != r.Cycles {
			drift = append(drift, fmt.Sprintf("%s: %d cycles, golden %d", r.Workload, r.Cycles, w))
		}
	}
	if len(drift) > 0 {
		return fmt.Errorf("bench: cycle counts drifted from %s:\n  %s\n(intentional? regenerate with: go run ./cmd/sdbench -json -update-goldens)",
			goldenPath, strings.Join(drift, "\n  "))
	}
	return nil
}

// UpdateSimGoldens rewrites the goldens file from the measured rows.
func UpdateSimGoldens(rows []SimRow, goldenPath string) error {
	want := map[string]uint64{}
	for _, r := range rows {
		if r.Cycles == 0 {
			continue // aggregate rows carry no cycle count
		}
		want[r.Workload] = r.Cycles
	}
	data, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(goldenPath, append(data, '\n'), 0o644)
}
