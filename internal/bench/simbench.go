package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"softbrain/internal/core"
	"softbrain/internal/obs"
	"softbrain/internal/workloads"
	"softbrain/internal/workloads/dnn"
	"softbrain/internal/workloads/ext"
	"softbrain/internal/workloads/machsuite"
)

// SimRow is one workload's simulator host-performance measurement: the
// simulated cycle count (identical with skipping off and on — the
// equivalence tests enforce it) and the host wall time both ways.
type SimRow struct {
	Workload string `json:"workload"`
	Units    int    `json:"units"`
	Cycles   uint64 `json:"cycles"`

	WallNsNoSkip int64 `json:"wall_ns_noskip"` // host ns, every cycle ticked
	WallNs       int64 `json:"wall_ns"`        // host ns, idle skip-ahead on

	NsPerCycleNoSkip float64 `json:"ns_per_cycle_noskip"`
	NsPerCycle       float64 `json:"ns_per_cycle"`
	Speedup          float64 `json:"speedup"` // wall_ns_noskip / wall_ns

	// Stall attribution and data movement from a metrics-enabled run
	// (internal/obs): per component, cause -> cycles summed across
	// units; total bytes moved by retired streams; and the memory
	// streams' bandwidth as a fraction of the DRAM peak.
	Stalls         map[string]map[string]uint64 `json:"stall_cycles,omitempty"`
	BytesMoved     uint64                       `json:"bytes_moved,omitempty"`
	MemBytesPerCyc float64                      `json:"mem_bytes_per_cycle,omitempty"`
	MemUtilization float64                      `json:"mem_utilization,omitempty"` // 0..1 of peak
}

// simEntry is one workload in the host-performance suite.
type simEntry struct {
	name  string
	build func() (*workloads.Instance, core.Config, error)
	smoke bool // part of the CI smoke slice
}

// simSuite lists the measured workloads: the full MachSuite set plus a
// DNN layer on the 8-unit cluster. The smoke slice is the small subset
// make bench-smoke pins against scripts/bench_goldens.json.
func simSuite() []simEntry {
	var entries []simEntry
	smoke := map[string]bool{"bfs": true, "spmv-crs": true, "gemm": true}
	for _, e := range machsuite.All() {
		e := e
		scale := machScale[e.Name]
		if scale == 0 {
			scale = 2
		}
		entries = append(entries, simEntry{
			name: e.Name,
			build: func() (*workloads.Instance, core.Config, error) {
				cfg := core.DefaultConfig()
				inst, err := e.Build(cfg, scale)
				return inst, cfg, err
			},
			smoke: smoke[e.Name],
		})
	}
	for _, l := range dnn.Layers()[:2] {
		l := l
		entries = append(entries, simEntry{
			name: l.Name,
			build: func() (*workloads.Instance, core.Config, error) {
				cfg := dnn.Config()
				inst, err := l.Build(cfg, dnn.Units)
				return inst, cfg, err
			},
		})
	}
	// The scratch round-trip gather rides in the smoke slice: its cycle
	// golden pins the barrier-minimal shipped program, which depends on
	// the linter's round-trip value tracking staying sound.
	lut, _ := ext.Find("lut")
	entries = append(entries, simEntry{
		name: lut.Name,
		build: func() (*workloads.Instance, core.Config, error) {
			cfg := core.DefaultConfig()
			inst, err := lut.Build(cfg, 2)
			return inst, cfg, err
		},
		smoke: true,
	})
	return entries
}

// SimBench measures simulator host performance over the suite (or just
// the smoke slice): each workload runs once with skip-ahead disabled
// and once enabled, wall-clocked. The simulated cycle counts must agree
// or the row is an error — this doubles as an end-to-end equivalence
// check on every benchmarked workload.
func SimBench(smokeOnly bool) ([]SimRow, error) {
	return SimBenchContext(context.Background(), smokeOnly)
}

// SimBenchContext is SimBench bounded by a context (sdbench -timeout).
func SimBenchContext(ctx context.Context, smokeOnly bool) ([]SimRow, error) {
	var rows []SimRow
	for _, e := range simSuite() {
		if smokeOnly && !e.smoke {
			continue
		}
		// Best of three repetitions per mode: single runs are at the
		// millisecond scale, where scheduler and GC noise swamps the
		// signal. Cycle counts must agree across every run.
		run := func(noSkip bool) (uint64, int64, error) {
			var cycles uint64
			var best int64
			for rep := 0; rep < 3; rep++ {
				inst, cfg, err := e.build()
				if err != nil {
					return 0, 0, err
				}
				cfg.NoSkipAhead = noSkip
				start := time.Now()
				stats, err := inst.RunContext(ctx, cfg)
				if err != nil {
					return 0, 0, err
				}
				ns := time.Since(start).Nanoseconds()
				if rep == 0 {
					cycles, best = stats.Cycles, ns
					continue
				}
				if stats.Cycles != cycles {
					return 0, 0, fmt.Errorf("bench: %s: nondeterministic cycle count (%d then %d)",
						e.name, cycles, stats.Cycles)
				}
				if ns < best {
					best = ns
				}
			}
			return cycles, best, nil
		}
		offCycles, offNs, err := run(true)
		if err != nil {
			return nil, fmt.Errorf("bench: %s (no skip): %w", e.name, err)
		}
		onCycles, onNs, err := run(false)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", e.name, err)
		}
		if offCycles != onCycles {
			return nil, fmt.Errorf("bench: %s: %d cycles without skip-ahead, %d with — skip-ahead changed the simulation",
				e.name, offCycles, onCycles)
		}
		inst, cfg, err := e.build()
		if err != nil {
			return nil, err
		}
		row := SimRow{
			Workload:     e.name,
			Units:        inst.Units(),
			Cycles:       onCycles,
			WallNsNoSkip: offNs,
			WallNs:       onNs,
		}
		// One extra, untimed run with the observability layer attached
		// fills the stall and bandwidth columns. Its cycle count must
		// agree — metrics are read-only by contract.
		mStats, dump, err := inst.RunMetricsContext(ctx, cfg, obs.Options{})
		if err != nil {
			return nil, fmt.Errorf("bench: %s (metrics): %w", e.name, err)
		}
		if mStats.Cycles != onCycles {
			return nil, fmt.Errorf("bench: %s: enabling metrics changed the cycle count (%d -> %d)",
				e.name, onCycles, mStats.Cycles)
		}
		if err := obs.CheckConservation(dump); err != nil {
			return nil, fmt.Errorf("bench: %s: %w", e.name, err)
		}
		row.Stalls = map[string]map[string]uint64{}
		for _, c := range dump.Total.Components {
			row.Stalls[c.Name] = c.Causes
		}
		peak := float64(cfg.Mem.LineBytes) / float64(cfg.Mem.MissInterval)
		var memBytes uint64
		for _, s := range dump.Total.Streams {
			row.BytesMoved += s.Bytes
			if obs.MemKind(s.Kind) {
				memBytes += s.Bytes
			}
		}
		if onCycles > 0 {
			row.MemBytesPerCyc = float64(memBytes) / float64(onCycles)
			if peak > 0 {
				row.MemUtilization = row.MemBytesPerCyc / peak
			}
		}
		if onCycles > 0 {
			row.NsPerCycleNoSkip = float64(offNs) / float64(onCycles)
			row.NsPerCycle = float64(onNs) / float64(onCycles)
		}
		if onNs > 0 {
			row.Speedup = float64(offNs) / float64(onNs)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteSimJSON writes rows to path as indented JSON (BENCH_sim.json).
func WriteSimJSON(rows []SimRow, path string) error {
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CheckSimGoldens compares measured cycle counts against the committed
// goldens (scripts/bench_goldens.json, a workload -> cycles map) and
// reports every drift. Wall times are host-dependent and not checked.
// Workloads absent from the goldens are ignored, so the smoke slice can
// run against a full goldens file and vice versa.
func CheckSimGoldens(rows []SimRow, goldenPath string) error {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		return err
	}
	var want map[string]uint64
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("bench: parsing %s: %w", goldenPath, err)
	}
	var drift []string
	for _, r := range rows {
		if w, ok := want[r.Workload]; ok && w != r.Cycles {
			drift = append(drift, fmt.Sprintf("%s: %d cycles, golden %d", r.Workload, r.Cycles, w))
		}
	}
	if len(drift) > 0 {
		return fmt.Errorf("bench: cycle counts drifted from %s:\n  %s\n(intentional? regenerate with: go run ./cmd/sdbench -json -update-goldens)",
			goldenPath, strings.Join(drift, "\n  "))
	}
	return nil
}

// UpdateSimGoldens rewrites the goldens file from the measured rows.
func UpdateSimGoldens(rows []SimRow, goldenPath string) error {
	want := map[string]uint64{}
	for _, r := range rows {
		want[r.Workload] = r.Cycles
	}
	data, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(goldenPath, append(data, '\n'), 0o644)
}
