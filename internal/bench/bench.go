// Package bench regenerates the paper's evaluation artifacts: Table 3
// (area/power breakdown), Figure 11 (DNN speedups vs CPU/GPU/DianNao),
// Table 4 (workload characterization), and Figures 12-15 (Softbrain vs
// iso-performance ASICs on MachSuite). Each function returns structured
// rows; cmd/sdbench and the repository benchmarks format them.
package bench

import (
	"context"
	"fmt"
	"math"

	"softbrain/internal/baseline"
	"softbrain/internal/baseline/asic"
	"softbrain/internal/core"
	"softbrain/internal/power"
	"softbrain/internal/workloads/dnn"
	"softbrain/internal/workloads/machsuite"
)

// GeoMean returns the geometric mean of xs, ignoring non-positive
// entries.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// ---------------------------------------------------------------------
// Table 3: area and power breakdown.

// Table3Row is one line of the breakdown.
type Table3Row struct {
	Component string
	AreaMM2   float64
	PowerMW   float64
}

// Table3Result is the full table with its comparison summary.
type Table3Result struct {
	Rows          []Table3Row
	UnitArea      float64
	UnitPower     float64
	TotalArea     float64 // 8 units
	TotalPower    float64
	DianNaoArea   float64
	DianNaoPower  float64
	AreaOverhead  float64
	PowerOverhead float64
}

// Table3 computes the breakdown for the DNN-provisioned unit.
func Table3() Table3Result {
	m := power.NewModel(core.DNNConfig())
	dn := baseline.DianNao()
	res := Table3Result{
		UnitArea:     m.UnitArea(),
		UnitPower:    m.UnitPeakPower(),
		DianNaoArea:  dn.AreaMM2,
		DianNaoPower: dn.PowerMW,
	}
	for _, c := range m.Components {
		res.Rows = append(res.Rows, Table3Row{c.Name, c.AreaMM2, c.PeakMW})
	}
	res.TotalArea = 8 * res.UnitArea
	res.TotalPower = 8 * res.UnitPower
	res.AreaOverhead = res.TotalArea / res.DianNaoArea
	res.PowerOverhead = res.TotalPower / res.DianNaoPower
	return res
}

// ---------------------------------------------------------------------
// Figure 11: DNN speedups over a single-threaded CPU.

// Fig11Row is one workload's speedups (wall-clock, higher is better).
type Fig11Row struct {
	Workload  string
	GPU       float64
	DianNao   float64
	Softbrain float64

	SoftbrainCycles  uint64
	SoftbrainPowerMW float64
}

// Fig11 runs all ten DNN layers on the 8-unit cluster and compares
// against the analytic CPU, GPU and DianNao models. The final row is the
// geometric mean.
func Fig11() ([]Fig11Row, error) {
	return Fig11Context(context.Background())
}

// Fig11Context is Fig11 bounded by a context (sdbench -timeout).
func Fig11Context(ctx context.Context) ([]Fig11Row, error) {
	cfg := dnn.Config()
	cpu := baseline.SingleThreadCPU()
	gpu := baseline.KeplerGPU()
	dn := baseline.DianNao()
	model := power.NewModel(cfg)

	var rows []Fig11Row
	var gms [3][]float64
	for _, l := range dnn.Layers() {
		inst, err := l.Build(cfg, dnn.Units)
		if err != nil {
			return nil, err
		}
		stats, err := inst.RunWarmContext(ctx, cfg)
		if err != nil {
			return nil, err
		}
		cpuNS := cpu.TimeNS(inst.Profile)
		sbNS := float64(stats.Cycles) / power.FreqGHz
		row := Fig11Row{
			Workload:         l.Name,
			GPU:              cpuNS / gpu.TimeNS(inst.Profile),
			DianNao:          cpuNS / dn.TimeNS(inst.Profile),
			Softbrain:        cpuNS / sbNS,
			SoftbrainCycles:  stats.Cycles,
			SoftbrainPowerMW: model.AveragePower(stats, dnn.Units),
		}
		rows = append(rows, row)
		gms[0] = append(gms[0], row.GPU)
		gms[1] = append(gms[1], row.DianNao)
		gms[2] = append(gms[2], row.Softbrain)
	}
	rows = append(rows, Fig11Row{
		Workload:  "GM",
		GPU:       GeoMean(gms[0]),
		DianNao:   GeoMean(gms[1]),
		Softbrain: GeoMean(gms[2]),
	})
	return rows, nil
}

// ---------------------------------------------------------------------
// Table 4: workload characterization.

// Table4Row characterizes one workload.
type Table4Row struct {
	Workload   string
	Patterns   string
	Datapath   string
	Unsuitable bool
	Reason     string
}

// Table4 lists the implemented codes and the rejected ones.
func Table4() []Table4Row {
	var rows []Table4Row
	for _, e := range machsuite.All() {
		rows = append(rows, Table4Row{Workload: e.Name, Patterns: e.Patterns, Datapath: e.Datapath})
	}
	for _, u := range machsuite.UnsuitableCodes() {
		rows = append(rows, Table4Row{Workload: u.Name, Unsuitable: true, Reason: u.Reason})
	}
	return rows
}

// ---------------------------------------------------------------------
// Figures 12-15: MachSuite vs iso-performance ASICs.

// MachRow carries everything Figures 12-15 plot for one workload.
type MachRow struct {
	Workload string

	// Figure 12: speedup over OOO4 (wall clock).
	SoftbrainSpeedup float64
	ASICSpeedup      float64

	// Figure 13: power efficiency relative to OOO4.
	SoftbrainPowerEff float64
	ASICPowerEff      float64

	// Figure 14: energy efficiency relative to OOO4.
	SoftbrainEnergyEff float64
	ASICEnergyEff      float64

	// Figure 15: ASIC area relative to Softbrain.
	ASICAreaRel float64

	// Raw numbers for EXPERIMENTS.md.
	SoftbrainCycles  uint64
	SoftbrainPowerMW float64
	ASICDesign       asic.Design
}

// machScale picks per-workload problem scales large enough to amortize
// command overheads while keeping simulation time modest.
var machScale = map[string]int{
	"bfs": 6, "gemm": 3, "md-knn": 4, "spmv-crs": 4,
	"spmv-ellpack": 4, "stencil2d": 3, "stencil3d": 3, "viterbi": 4,
}

// MachSuiteStudy runs every implemented workload on the broadly
// provisioned Softbrain, generates its iso-performance ASIC, and
// produces the rows behind Figures 12-15, ending with the GM row.
func MachSuiteStudy() ([]MachRow, error) {
	return MachSuiteStudyContext(context.Background())
}

// MachSuiteStudyContext is MachSuiteStudy bounded by a context
// (sdbench -timeout).
func MachSuiteStudyContext(ctx context.Context) ([]MachRow, error) {
	cfg := core.DefaultConfig()
	model := power.NewModel(cfg)
	ooo := baseline.OOO4()
	sbArea := model.UnitArea()

	var rows []MachRow
	var gm [7][]float64
	for _, e := range machsuite.All() {
		scale := machScale[e.Name]
		if scale == 0 {
			scale = 2
		}
		inst, err := e.Build(cfg, scale)
		if err != nil {
			return nil, fmt.Errorf("bench: building %s: %w", e.Name, err)
		}
		stats, err := inst.RunWarmContext(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: running %s: %w", e.Name, err)
		}
		sbNS := float64(stats.Cycles) / power.FreqGHz
		sbMW := model.AveragePower(stats, 1)

		design, err := asic.Generate(*inst.Kernel, stats.Cycles)
		if err != nil {
			return nil, fmt.Errorf("bench: ASIC for %s: %w", e.Name, err)
		}
		asicNS := float64(design.Cycles) / power.FreqGHz

		oooNS := ooo.TimeNS(inst.Profile)
		oooMJ := ooo.PowerMW * oooNS // energy in pJ (mW x ns)

		row := MachRow{
			Workload:           e.Name,
			SoftbrainSpeedup:   oooNS / sbNS,
			ASICSpeedup:        oooNS / asicNS,
			SoftbrainPowerEff:  ooo.PowerMW / sbMW,
			ASICPowerEff:       ooo.PowerMW / design.PowerMW,
			SoftbrainEnergyEff: oooMJ / (sbMW * sbNS),
			ASICEnergyEff:      oooMJ / (design.PowerMW * asicNS),
			ASICAreaRel:        design.AreaMM2 / sbArea,
			SoftbrainCycles:    stats.Cycles,
			SoftbrainPowerMW:   sbMW,
			ASICDesign:         design,
		}
		rows = append(rows, row)
		for i, v := range []float64{
			row.SoftbrainSpeedup, row.ASICSpeedup, row.SoftbrainPowerEff,
			row.ASICPowerEff, row.SoftbrainEnergyEff, row.ASICEnergyEff, row.ASICAreaRel,
		} {
			gm[i] = append(gm[i], v)
		}
	}
	rows = append(rows, MachRow{
		Workload:           "GM",
		SoftbrainSpeedup:   GeoMean(gm[0]),
		ASICSpeedup:        GeoMean(gm[1]),
		SoftbrainPowerEff:  GeoMean(gm[2]),
		ASICPowerEff:       GeoMean(gm[3]),
		SoftbrainEnergyEff: GeoMean(gm[4]),
		ASICEnergyEff:      GeoMean(gm[5]),
		ASICAreaRel:        GeoMean(gm[6]),
	})
	return rows, nil
}

// TotalASICArea sums the per-workload ASIC areas: the paper's
// observation that all eight accelerators together need 2.54x the area
// Softbrain does (Section 7.3) divides this by the Softbrain unit area.
func TotalASICArea(rows []MachRow) float64 {
	total := 0.0
	for _, r := range rows {
		if r.Workload != "GM" {
			total += r.ASICDesign.AreaMM2
		}
	}
	return total
}
