package port

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, name string, widthWords, depthWords int) *Queue {
	t.Helper()
	q, err := New(name, widthWords, depthWords)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestFIFOOrder(t *testing.T) {
	q := mustNew(t, "A", 4, 16)
	q.Push([]byte{1, 2, 3})
	q.Push([]byte{4, 5})
	if got := q.Pop(4); !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Errorf("Pop(4) = %v", got)
	}
	if got := q.Pop(1); !bytes.Equal(got, []byte{5}) {
		t.Errorf("Pop(1) = %v", got)
	}
	if !q.Empty() {
		t.Error("queue should be empty")
	}
}

func TestSpaceAccounting(t *testing.T) {
	q := mustNew(t, "A", 2, 4) // 32 bytes
	if q.Space() != 32 || q.CapacityBytes() != 32 {
		t.Fatalf("capacity wrong: space=%d", q.Space())
	}
	q.Push(make([]byte, 30))
	if q.Space() != 2 || q.Len() != 30 {
		t.Errorf("space=%d len=%d, want 2, 30", q.Space(), q.Len())
	}
	q.Pop(10)
	if q.Space() != 12 {
		t.Errorf("space=%d after pop, want 12", q.Space())
	}
}

func TestWords(t *testing.T) {
	q := mustNew(t, "W", 8, 8)
	q.PushWords([]uint64{0x1122334455667788, 42})
	if !q.HasWords(2) || q.HasWords(3) {
		t.Error("HasWords wrong")
	}
	ws := q.PopWords(2)
	if ws[0] != 0x1122334455667788 || ws[1] != 42 {
		t.Errorf("PopWords = %#x", ws)
	}
}

func TestPeekAndDiscard(t *testing.T) {
	q := mustNew(t, "P", 1, 8)
	q.Push([]byte{9, 8, 7})
	if got := q.Peek(2); !bytes.Equal(got, []byte{9, 8}) {
		t.Errorf("Peek = %v", got)
	}
	if q.Len() != 3 {
		t.Error("Peek should not consume")
	}
	q.Discard(2)
	if got := q.Pop(1); got[0] != 7 {
		t.Errorf("after Discard, Pop = %v", got)
	}
}

func TestStats(t *testing.T) {
	q := mustNew(t, "S", 1, 8)
	q.Push(make([]byte, 8))
	q.Pop(3)
	q.Push(make([]byte, 5))
	if q.TotalIn() != 13 || q.TotalOut() != 3 {
		t.Errorf("stats in=%d out=%d, want 13, 3", q.TotalIn(), q.TotalOut())
	}
}

// TestInvariantPanics checks that contract violations raise the typed
// Invariant value the machine's Run boundary recovers, carrying the
// port name and operation.
func TestInvariantPanics(t *testing.T) {
	expectInvariant := func(name, op string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s: expected panic", name)
				return
			}
			inv, ok := r.(Invariant)
			if !ok {
				t.Errorf("%s: panic value %T, want Invariant", name, r)
				return
			}
			if inv.Op != op || inv.Port == "" || inv.Component() != "port" {
				t.Errorf("%s: incomplete invariant %+v", name, inv)
			}
			var err error = inv
			if err.Error() == "" {
				t.Errorf("%s: invariant does not render", name)
			}
		}()
		f()
	}
	expectInvariant("overflow push", "push", func() {
		q := mustNew(t, "q", 1, 1)
		q.Push(make([]byte, 9))
	})
	expectInvariant("underflow pop", "pop", func() {
		q := mustNew(t, "q", 1, 4)
		q.Pop(1)
	})
	expectInvariant("underflow peek", "peek", func() {
		q := mustNew(t, "q", 1, 4)
		q.Push([]byte{1})
		q.Peek(2)
	})
}

// Construction-time misconfiguration is an error, not a panic.
func TestNewRejectsBadGeometry(t *testing.T) {
	for _, tc := range []struct {
		name         string
		width, depth int
	}{
		{"zero width", 0, 4},
		{"huge width", 9, 16},
		{"depth below width", 4, 2},
	} {
		if _, err := New("q", tc.width, tc.depth); err == nil {
			t.Errorf("%s: New accepted width=%d depth=%d", tc.name, tc.width, tc.depth)
		}
	}
}

// Property: any interleaving of pushes and pops preserves byte order and
// conservation (bytes out are exactly bytes in, in order).
func TestFIFOProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := mustNew(t, "prop", 8, 64) // 512 bytes
		var pushed, popped []byte
		next := byte(0)
		for step := 0; step < 200; step++ {
			if r.Intn(2) == 0 {
				n := r.Intn(q.Space() + 1)
				chunk := make([]byte, n)
				for i := range chunk {
					chunk[i] = next
					next++
				}
				q.Push(chunk)
				pushed = append(pushed, chunk...)
			} else {
				n := r.Intn(q.Len() + 1)
				popped = append(popped, q.Pop(n)...)
			}
			if q.Len()+len(popped) != len(pushed) {
				return false
			}
		}
		popped = append(popped, q.Pop(q.Len())...)
		return bytes.Equal(popped, pushed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCompactionKeepsData(t *testing.T) {
	q := mustNew(t, "c", 8, 1024) // 8 KiB
	want := byte(0)
	got := byte(0)
	for round := 0; round < 100; round++ {
		chunk := make([]byte, 100)
		for i := range chunk {
			chunk[i] = want
			want++
		}
		q.Push(chunk)
		for _, b := range q.Pop(100) {
			if b != got {
				t.Fatalf("round %d: byte %d, want %d", round, b, got)
			}
			got++
		}
	}
}
