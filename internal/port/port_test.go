package port

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFIFOOrder(t *testing.T) {
	q := New("A", 4, 16)
	q.Push([]byte{1, 2, 3})
	q.Push([]byte{4, 5})
	if got := q.Pop(4); !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Errorf("Pop(4) = %v", got)
	}
	if got := q.Pop(1); !bytes.Equal(got, []byte{5}) {
		t.Errorf("Pop(1) = %v", got)
	}
	if !q.Empty() {
		t.Error("queue should be empty")
	}
}

func TestSpaceAccounting(t *testing.T) {
	q := New("A", 2, 4) // 32 bytes
	if q.Space() != 32 || q.CapacityBytes() != 32 {
		t.Fatalf("capacity wrong: space=%d", q.Space())
	}
	q.Push(make([]byte, 30))
	if q.Space() != 2 || q.Len() != 30 {
		t.Errorf("space=%d len=%d, want 2, 30", q.Space(), q.Len())
	}
	q.Pop(10)
	if q.Space() != 12 {
		t.Errorf("space=%d after pop, want 12", q.Space())
	}
}

func TestWords(t *testing.T) {
	q := New("W", 8, 8)
	q.PushWords([]uint64{0x1122334455667788, 42})
	if !q.HasWords(2) || q.HasWords(3) {
		t.Error("HasWords wrong")
	}
	ws := q.PopWords(2)
	if ws[0] != 0x1122334455667788 || ws[1] != 42 {
		t.Errorf("PopWords = %#x", ws)
	}
}

func TestPeekAndDiscard(t *testing.T) {
	q := New("P", 1, 8)
	q.Push([]byte{9, 8, 7})
	if got := q.Peek(2); !bytes.Equal(got, []byte{9, 8}) {
		t.Errorf("Peek = %v", got)
	}
	if q.Len() != 3 {
		t.Error("Peek should not consume")
	}
	q.Discard(2)
	if got := q.Pop(1); got[0] != 7 {
		t.Errorf("after Discard, Pop = %v", got)
	}
}

func TestStats(t *testing.T) {
	q := New("S", 1, 8)
	q.Push(make([]byte, 8))
	q.Pop(3)
	q.Push(make([]byte, 5))
	if q.TotalIn() != 13 || q.TotalOut() != 3 {
		t.Errorf("stats in=%d out=%d, want 13, 3", q.TotalIn(), q.TotalOut())
	}
}

func TestPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("overflow push", func() {
		q := New("q", 1, 1)
		q.Push(make([]byte, 9))
	})
	expectPanic("underflow pop", func() {
		q := New("q", 1, 4)
		q.Pop(1)
	})
	expectPanic("underflow peek", func() {
		q := New("q", 1, 4)
		q.Push([]byte{1})
		q.Peek(2)
	})
	expectPanic("zero width", func() { New("q", 0, 4) })
	expectPanic("huge width", func() { New("q", 9, 16) })
	expectPanic("depth below width", func() { New("q", 4, 2) })
}

// Property: any interleaving of pushes and pops preserves byte order and
// conservation (bytes out are exactly bytes in, in order).
func TestFIFOProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := New("prop", 8, 64) // 512 bytes
		var pushed, popped []byte
		next := byte(0)
		for step := 0; step < 200; step++ {
			if r.Intn(2) == 0 {
				n := r.Intn(q.Space() + 1)
				chunk := make([]byte, n)
				for i := range chunk {
					chunk[i] = next
					next++
				}
				q.Push(chunk)
				pushed = append(pushed, chunk...)
			} else {
				n := r.Intn(q.Len() + 1)
				popped = append(popped, q.Pop(n)...)
			}
			if q.Len()+len(popped) != len(pushed) {
				return false
			}
		}
		popped = append(popped, q.Pop(q.Len())...)
		return bytes.Equal(popped, pushed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCompactionKeepsData(t *testing.T) {
	q := New("c", 8, 1024) // 8 KiB
	want := byte(0)
	got := byte(0)
	for round := 0; round < 100; round++ {
		chunk := make([]byte, 100)
		for i := range chunk {
			chunk[i] = want
			want++
		}
		q.Push(chunk)
		for _, b := range q.Pop(100) {
			if b != got {
				t.Fatalf("round %d: byte %d, want %d", round, b, got)
			}
			got++
		}
	}
}
