// Package port models vector ports: the wide FIFOs that sit between the
// stream engines and the CGRA (Figure 7). Input vector ports buffer data
// flowing toward the fabric, output vector ports buffer results flowing
// out, and indirect vector ports (not connected to the CGRA) buffer the
// address streams of indirect loads and stores.
package port

import (
	"encoding/binary"
	"fmt"
)

// WordBytes is the datapath word size in bytes (64-bit words).
const WordBytes = 8

// Queue is one vector port: a bounded byte FIFO. Capacity and transfer
// width are architectural parameters; the dispatcher's scoreboard state
// for the port lives in the dispatcher, not here.
type Queue struct {
	name     string
	width    int // max words transferable per cycle (1..8)
	capacity int // buffer size in bytes
	buf      []byte
	head     int // index of the oldest byte in buf

	// Statistics.
	totalIn  uint64
	totalOut uint64
}

// New returns a port named name with the given per-cycle width in words
// and depth in words. It panics on invalid parameters, which are
// construction-time configuration errors.
func New(name string, widthWords, depthWords int) *Queue {
	if widthWords < 1 || widthWords > 8 {
		panic(fmt.Sprintf("port %s: width %d words out of range 1..8", name, widthWords))
	}
	if depthWords < widthWords {
		panic(fmt.Sprintf("port %s: depth %d < width %d", name, depthWords, widthWords))
	}
	return &Queue{name: name, width: widthWords, capacity: depthWords * WordBytes}
}

// Name returns the port's name.
func (q *Queue) Name() string { return q.name }

// WidthWords is the port's per-cycle transfer width in words.
func (q *Queue) WidthWords() int { return q.width }

// CapacityBytes is the port's total buffer size in bytes.
func (q *Queue) CapacityBytes() int { return q.capacity }

// Len is the number of buffered bytes.
func (q *Queue) Len() int { return len(q.buf) - q.head }

// Space is the number of bytes that can be pushed without overflow.
func (q *Queue) Space() int { return q.capacity - q.Len() }

// Empty reports whether the port holds no data.
func (q *Queue) Empty() bool { return q.Len() == 0 }

// TotalIn is the cumulative number of bytes ever pushed.
func (q *Queue) TotalIn() uint64 { return q.totalIn }

// TotalOut is the cumulative number of bytes ever popped.
func (q *Queue) TotalOut() uint64 { return q.totalOut }

// Push appends data to the FIFO. It panics if data exceeds Space: callers
// (the stream engines) must check backpressure first, as hardware does
// with credit signals.
func (q *Queue) Push(data []byte) {
	if len(data) > q.Space() {
		panic(fmt.Sprintf("port %s: push of %d bytes with %d free", q.name, len(data), q.Space()))
	}
	q.compact()
	q.buf = append(q.buf, data...)
	q.totalIn += uint64(len(data))
}

// Pop removes and returns the oldest n bytes. It panics if fewer than n
// bytes are buffered. The returned slice is valid until the next Push.
func (q *Queue) Pop(n int) []byte {
	if n > q.Len() {
		panic(fmt.Sprintf("port %s: pop of %d bytes with %d buffered", q.name, n, q.Len()))
	}
	out := q.buf[q.head : q.head+n]
	q.head += n
	q.totalOut += uint64(n)
	return out
}

// Peek returns the oldest n bytes without removing them.
func (q *Queue) Peek(n int) []byte {
	if n > q.Len() {
		panic(fmt.Sprintf("port %s: peek of %d bytes with %d buffered", q.name, n, q.Len()))
	}
	return q.buf[q.head : q.head+n]
}

// Discard drops the oldest n bytes (SD_Clean_Port's engine-side action).
func (q *Queue) Discard(n int) { q.Pop(n) }

// PopWords removes and returns n 64-bit words (little-endian), the unit
// in which the CGRA consumes port data.
func (q *Queue) PopWords(n int) []uint64 {
	raw := q.Pop(n * WordBytes)
	words := make([]uint64, n)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(raw[i*WordBytes:])
	}
	return words
}

// PushWords appends n 64-bit words (little-endian).
func (q *Queue) PushWords(words []uint64) {
	data := make([]byte, len(words)*WordBytes)
	for i, w := range words {
		binary.LittleEndian.PutUint64(data[i*WordBytes:], w)
	}
	q.Push(data)
}

// HasWords reports whether at least n full words are buffered.
func (q *Queue) HasWords(n int) bool { return q.Len() >= n*WordBytes }

// compact reclaims consumed space when the dead prefix grows large.
func (q *Queue) compact() {
	if q.head > 0 && (q.head >= 4096 || q.head == len(q.buf)) {
		q.buf = append(q.buf[:0], q.buf[q.head:]...)
		q.head = 0
	}
}
