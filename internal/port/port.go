// Package port models vector ports: the wide FIFOs that sit between the
// stream engines and the CGRA (Figure 7). Input vector ports buffer data
// flowing toward the fabric, output vector ports buffer results flowing
// out, and indirect vector ports (not connected to the CGRA) buffer the
// address streams of indirect loads and stores.
package port

import (
	"encoding/binary"
	"fmt"
)

// WordBytes is the datapath word size in bytes (64-bit words).
const WordBytes = 8

// Queue is one vector port: a bounded byte FIFO. Capacity and transfer
// width are architectural parameters; the dispatcher's scoreboard state
// for the port lives in the dispatcher, not here.
type Queue struct {
	name     string
	width    int // max words transferable per cycle (1..8)
	capacity int // buffer size in bytes
	buf      []byte
	head     int // index of the oldest byte in buf

	// Statistics.
	totalIn  uint64
	totalOut uint64
}

// Invariant is the panic value raised when a FIFO operation violates
// the port's hardware contract (push past free space, pop past buffered
// data). These states are unreachable through the credit/reservation
// protocol the engines follow; raising one means simulator-internal
// state is corrupt, so the machine's Run boundary recovers it into a
// typed MachineError rather than letting it kill the host process.
type Invariant struct {
	Port string // port name
	Op   string // "push", "pop" or "peek"
	Msg  string
}

func (i Invariant) Error() string {
	return fmt.Sprintf("port %s: %s: %s", i.Port, i.Op, i.Msg)
}

// Component names the machine component for MachineError attribution.
func (i Invariant) Component() string { return "port" }

// New returns a port named name with the given per-cycle width in words
// and depth in words. Invalid parameters are construction-time
// configuration errors, returned rather than raised.
func New(name string, widthWords, depthWords int) (*Queue, error) {
	if widthWords < 1 || widthWords > 8 {
		return nil, fmt.Errorf("port %s: width %d words out of range 1..8", name, widthWords)
	}
	if depthWords < widthWords {
		return nil, fmt.Errorf("port %s: depth %d < width %d", name, depthWords, widthWords)
	}
	return &Queue{name: name, width: widthWords, capacity: depthWords * WordBytes}, nil
}

// Name returns the port's name.
func (q *Queue) Name() string { return q.name }

// WidthWords is the port's per-cycle transfer width in words.
func (q *Queue) WidthWords() int { return q.width }

// CapacityBytes is the port's total buffer size in bytes.
func (q *Queue) CapacityBytes() int { return q.capacity }

// Len is the number of buffered bytes.
func (q *Queue) Len() int { return len(q.buf) - q.head }

// Space is the number of bytes that can be pushed without overflow.
func (q *Queue) Space() int { return q.capacity - q.Len() }

// Empty reports whether the port holds no data.
func (q *Queue) Empty() bool { return q.Len() == 0 }

// TotalIn is the cumulative number of bytes ever pushed.
func (q *Queue) TotalIn() uint64 { return q.totalIn }

// TotalOut is the cumulative number of bytes ever popped.
func (q *Queue) TotalOut() uint64 { return q.totalOut }

// Push appends data to the FIFO. It raises an Invariant panic if data
// exceeds Space: callers (the stream engines) must check backpressure
// first, as hardware does with credit signals, so an overflow here is
// internal state corruption, recovered at the machine's Run boundary.
func (q *Queue) Push(data []byte) {
	if len(data) > q.Space() {
		panic(Invariant{Port: q.name, Op: "push",
			Msg: fmt.Sprintf("%d bytes with %d free", len(data), q.Space())})
	}
	q.compact()
	q.buf = append(q.buf, data...)
	q.totalIn += uint64(len(data))
}

// Pop removes and returns the oldest n bytes. It raises an Invariant
// panic (recovered at the machine's Run boundary) if fewer than n bytes
// are buffered. The returned slice is valid until the next Push.
func (q *Queue) Pop(n int) []byte {
	if n > q.Len() {
		panic(Invariant{Port: q.name, Op: "pop",
			Msg: fmt.Sprintf("%d bytes with %d buffered", n, q.Len())})
	}
	out := q.buf[q.head : q.head+n]
	q.head += n
	q.totalOut += uint64(n)
	return out
}

// Peek returns the oldest n bytes without removing them, raising an
// Invariant panic (recovered at the machine's Run boundary) when fewer
// are buffered.
func (q *Queue) Peek(n int) []byte {
	if n > q.Len() {
		panic(Invariant{Port: q.name, Op: "peek",
			Msg: fmt.Sprintf("%d bytes with %d buffered", n, q.Len())})
	}
	return q.buf[q.head : q.head+n]
}

// Discard drops the oldest n bytes (SD_Clean_Port's engine-side action).
func (q *Queue) Discard(n int) { q.Pop(n) }

// PopWords removes and returns n 64-bit words (little-endian), the unit
// in which the CGRA consumes port data.
func (q *Queue) PopWords(n int) []uint64 {
	return q.PopWordsInto(make([]uint64, 0, n), n)
}

// PopWordsInto is PopWords appending into dst (reset to length 0),
// letting a hot caller reuse one buffer across cycles.
func (q *Queue) PopWordsInto(dst []uint64, n int) []uint64 {
	raw := q.Pop(n * WordBytes)
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, binary.LittleEndian.Uint64(raw[i*WordBytes:]))
	}
	return dst
}

// PushWords appends n 64-bit words (little-endian).
func (q *Queue) PushWords(words []uint64) {
	data := make([]byte, len(words)*WordBytes)
	for i, w := range words {
		binary.LittleEndian.PutUint64(data[i*WordBytes:], w)
	}
	q.Push(data)
}

// HasWords reports whether at least n full words are buffered.
func (q *Queue) HasWords(n int) bool { return q.Len() >= n*WordBytes }

// compact reclaims consumed space when the dead prefix grows large.
func (q *Queue) compact() {
	if q.head > 0 && (q.head >= 4096 || q.head == len(q.buf)) {
		q.buf = append(q.buf[:0], q.buf[q.head:]...)
		q.head = 0
	}
}
