package dfg

import (
	"strings"
	"testing"
)

// mustBuild finalizes a graph that the test constructed to be valid.
func mustBuild(t testing.TB, b *Builder) *Graph {
	t.Helper()
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// dotProduct builds the Figure 3a graph: 3-wide dot product with a
// reduction tree.
func dotProduct(t testing.TB) *Graph {
	t.Helper()
	b := NewBuilder("dotprod")
	a := b.Input("A", 3)
	bb := b.Input("B", 3)
	var prods []Ref
	for i := 0; i < 3; i++ {
		prods = append(prods, b.N(Mul(64), a.W(i), bb.W(i)))
	}
	b.Output("C", b.ReduceTree(Add(64), prods...))
	g, err := b.Build()
	if err != nil {
		t.Fatalf("building dot product: %v", err)
	}
	return g
}

func TestBuilderDotProduct(t *testing.T) {
	g := dotProduct(t)
	if len(g.Nodes) != 5 {
		t.Errorf("dot product has %d nodes, want 5 (3 mul + 2 add)", len(g.Nodes))
	}
	if g.InWidthWords() != 6 || g.OutWidthWords() != 1 {
		t.Errorf("widths: in %d out %d, want 6 and 1", g.InWidthWords(), g.OutWidthWords())
	}
	d := g.FUDemand()
	if d[FUMul] != 3 || d[FUAlu] != 2 {
		t.Errorf("FU demand = %v, want 3 mul, 2 alu", d)
	}
	if g.OpsPerInstance() != 5 {
		t.Errorf("OpsPerInstance = %d, want 5", g.OpsPerInstance())
	}
}

func TestEvaluatorDotProduct(t *testing.T) {
	g := dotProduct(t)
	e, err := NewEvaluator(g)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := e.Eval([][]uint64{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if got := outs[0][0]; got != 32 {
		t.Errorf("dot([1,2,3],[4,5,6]) = %d, want 32", got)
	}
}

func TestEvaluatorAccumulatorStateAndReset(t *testing.T) {
	b := NewBuilder("acc")
	d := b.Input("D", 1)
	r := b.Input("R", 1)
	b.Output("S", b.N(Acc(64), d.W(0), r.W(0)))
	g := mustBuild(t, b)
	e, err := NewEvaluator(g)
	if err != nil {
		t.Fatal(err)
	}
	feed := func(v, reset uint64) uint64 {
		t.Helper()
		outs, err := e.Eval([][]uint64{{v}, {reset}})
		if err != nil {
			t.Fatal(err)
		}
		return outs[0][0]
	}
	feed(10, 0)
	if got := feed(5, 1); got != 15 {
		t.Errorf("acc = %d, want 15", got)
	}
	if got := feed(7, 0); got != 7 {
		t.Errorf("acc after reset = %d, want 7", got)
	}
	e.Reset()
	if got := feed(1, 0); got != 1 {
		t.Errorf("acc after Reset() = %d, want 1", got)
	}
}

func TestEvaluatorInputShapeErrors(t *testing.T) {
	g := dotProduct(t)
	e, _ := NewEvaluator(g)
	if _, err := e.Eval([][]uint64{{1, 2, 3}}); err == nil {
		t.Error("wrong port count should error")
	}
	if _, err := e.Eval([][]uint64{{1, 2}, {4, 5, 6}}); err == nil {
		t.Error("wrong port width should error")
	}
}

func TestValidateRejects(t *testing.T) {
	valid := func() Graph {
		b := NewBuilder("g")
		a := b.Input("A", 1)
		b.Output("O", b.N(Abs(64), a.W(0)))
		return *mustBuild(t, b)
	}
	tests := []struct {
		name   string
		mutate func(*Graph)
	}{
		{"empty name", func(g *Graph) { g.Name = "" }},
		{"no outputs", func(g *Graph) { g.Outs = nil }},
		{"zero width port", func(g *Graph) { g.Ins[0].Width = 0 }},
		{"too wide port", func(g *Graph) { g.Ins[0].Width = 9 }},
		{"dup port names", func(g *Graph) { g.Outs[0].Name = "A" }},
		{"empty in name", func(g *Graph) { g.Ins[0].Name = "" }},
		{"empty out name", func(g *Graph) { g.Outs[0].Name = "" }},
		{"bad node id", func(g *Graph) { g.Nodes[0].ID = 5 }},
		{"invalid op", func(g *Graph) { g.Nodes[0].Op = Op{} }},
		{"bad arity", func(g *Graph) { g.Nodes[0].Args = nil }},
		{"port ref out of range", func(g *Graph) { g.Nodes[0].Args[0] = PortRef(3, 0) }},
		{"word ref out of range", func(g *Graph) { g.Nodes[0].Args[0] = PortRef(0, 2) }},
		{"node ref out of range", func(g *Graph) { g.Nodes[0].Args[0] = NodeRef(9) }},
		{"invalid ref kind", func(g *Graph) { g.Nodes[0].Args[0] = Ref{} }},
		{"bad output ref", func(g *Graph) { g.Outs[0].Sources[0] = NodeRef(-1) }},
		{"self cycle", func(g *Graph) { g.Nodes[0].Args[0] = NodeRef(0) }},
	}
	for _, tt := range tests {
		g := valid()
		tt.mutate(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken graph", tt.name)
		}
	}
	g := valid()
	if err := g.Validate(); err != nil {
		t.Errorf("baseline graph invalid: %v", err)
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	g := dotProduct(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[NodeID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, n := range g.Nodes {
		for _, a := range n.Args {
			if a.Kind == RefNode && pos[a.Node] > pos[n.ID] {
				t.Errorf("node %d scheduled before its producer %d", n.ID, a.Node)
			}
		}
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	// Hand-build a 2-cycle (builders cannot produce one).
	g := Graph{
		Name: "cyclic",
		Ins:  []InPort{{Name: "A", Width: 1}},
		Nodes: []Node{
			{ID: 0, Op: Add(64), Args: []Ref{NodeRef(1), PortRef(0, 0)}},
			{ID: 1, Op: Add(64), Args: []Ref{NodeRef(0), PortRef(0, 0)}},
		},
		Outs: []OutPort{{Name: "O", Sources: []Ref{NodeRef(0)}}},
	}
	if _, err := g.TopoOrder(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not detected: %v", err)
	}
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted a cyclic graph")
	}
}

func TestBuilderErrorPropagation(t *testing.T) {
	b := NewBuilder("bad")
	a := b.Input("A", 1)
	b.N(Add(64), a.W(0)) // wrong arity
	b.Output("O", a.W(0))
	if _, err := b.Build(); err == nil {
		t.Error("builder should surface arity error")
	}
}

func TestReduceTreeEmpty(t *testing.T) {
	b := NewBuilder("bad")
	a := b.Input("A", 1)
	b.Output("O", b.ReduceTree(Add(64)), a.W(0))
	if _, err := b.Build(); err == nil {
		t.Error("empty ReduceTree should surface an error")
	}
}

func TestFindPorts(t *testing.T) {
	g := dotProduct(t)
	if g.FindIn("B") != 1 || g.FindIn("Z") != -1 {
		t.Error("FindIn misbehaves")
	}
	if g.FindOut("C") != 0 || g.FindOut("A") != -1 {
		t.Error("FindOut misbehaves")
	}
}
