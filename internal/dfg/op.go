// Package dfg models the dataflow-graph abstraction of the stream-dataflow
// architecture (Figure 3a): an acyclic graph of fixed-function operations
// whose inputs and outputs are named vector ports with explicit widths.
//
// Values on dataflow edges are 64-bit words. An operation interprets its
// word operands as packed lanes of 8, 16, 32 or 64 bits (the CGRA's
// sub-word SIMD modes), so a single node like Mul(16) is a 4-way 16-bit
// multiplier. Direct accumulation (an instruction feeding a later instance
// of itself) is expressed with the Acc operation, which holds state inside
// its processing element; all other inter-iteration dependences use
// recurrence streams through the ports.
package dfg

import (
	"fmt"
	"strconv"
	"strings"
)

// BaseOp is the operation family, independent of lane width.
type BaseOp uint8

const (
	OpInvalid BaseOp = iota
	OpAdd            // lane-wise addition (wrapping)
	OpSub            // lane-wise subtraction (wrapping)
	OpMul            // lane-wise multiplication (wrapping)
	OpDiv            // lane-wise signed division; x/0 = 0
	OpMin            // lane-wise signed minimum
	OpMax            // lane-wise signed maximum
	OpAbs            // lane-wise absolute value
	OpAnd            // bitwise and
	OpOr             // bitwise or
	OpXor            // bitwise xor
	OpShl            // lane-wise shift left by scalar amount (operand 1, low 6 bits)
	OpShr            // lane-wise logical shift right by scalar amount
	OpAshr           // lane-wise arithmetic shift right by scalar amount
	OpEq             // lane-wise compare: 1 if equal else 0
	OpLt             // lane-wise signed compare: 1 if a < b else 0
	OpSel            // lane-wise select: ctl != 0 ? a : b (predication support)
	OpAcc            // accumulate: out = state + a; state = reset != 0 ? init : out
	OpAccMin         // running minimum with reset control, lane-wise signed
	OpAccMax         // running maximum with reset control, lane-wise signed
	OpRedAdd         // reduce: sum of all lanes, result in a 64-bit scalar
	OpRedMin         // reduce: signed min of all lanes, result 64-bit scalar
	OpSig            // lane-wise sigmoid in fixed point Q(w/2).(w/2)
	numBaseOps
)

var baseOpInfo = [numBaseOps]struct {
	name    string
	arity   int
	latency int // pipeline latency in cycles
	class   FUClass
}{
	OpAdd:    {"add", 2, 1, FUAlu},
	OpSub:    {"sub", 2, 1, FUAlu},
	OpMul:    {"mul", 2, 2, FUMul},
	OpDiv:    {"div", 2, 8, FUDiv},
	OpMin:    {"min", 2, 1, FUAlu},
	OpMax:    {"max", 2, 1, FUAlu},
	OpAbs:    {"abs", 1, 1, FUAlu},
	OpAnd:    {"and", 2, 1, FUAlu},
	OpOr:     {"or", 2, 1, FUAlu},
	OpXor:    {"xor", 2, 1, FUAlu},
	OpShl:    {"shl", 2, 1, FUAlu},
	OpShr:    {"shr", 2, 1, FUAlu},
	OpAshr:   {"ashr", 2, 1, FUAlu},
	OpEq:     {"eq", 2, 1, FUAlu},
	OpLt:     {"lt", 2, 1, FUAlu},
	OpSel:    {"sel", 3, 1, FUAlu},
	OpAcc:    {"acc", 2, 1, FUAlu},
	OpAccMin: {"accmin", 2, 1, FUAlu},
	OpAccMax: {"accmax", 2, 1, FUAlu},
	OpRedAdd: {"redadd", 1, 1, FUAlu},
	OpRedMin: {"redmin", 1, 1, FUAlu},
	OpSig:    {"sig", 1, 2, FUSig},
}

// FUClass groups operations by the functional-unit type that executes
// them. The CGRA's per-PE FU mix is provisioned in these classes (the
// "hardware parameter model" of Section 5).
type FUClass uint8

const (
	FUAlu FUClass = iota // adders, logic, compares, select, accumulate
	FUMul                // multipliers
	FUDiv                // iterative divider
	FUSig                // sigmoid / transcendental unit
	NumFUClasses
)

func (c FUClass) String() string {
	switch c {
	case FUAlu:
		return "alu"
	case FUMul:
		return "mul"
	case FUDiv:
		return "div"
	case FUSig:
		return "sig"
	}
	return fmt.Sprintf("FUClass(%d)", uint8(c))
}

// Op is one concrete operation: a base operation at a lane width.
type Op struct {
	Base  BaseOp
	Width uint8 // lane width in bits: 8, 16, 32 or 64
}

// Convenience constructors.
func Add(w uint8) Op    { return Op{OpAdd, w} }
func Sub(w uint8) Op    { return Op{OpSub, w} }
func Mul(w uint8) Op    { return Op{OpMul, w} }
func Div(w uint8) Op    { return Op{OpDiv, w} }
func Min(w uint8) Op    { return Op{OpMin, w} }
func Max(w uint8) Op    { return Op{OpMax, w} }
func Abs(w uint8) Op    { return Op{OpAbs, w} }
func And(w uint8) Op    { return Op{OpAnd, w} }
func Or(w uint8) Op     { return Op{OpOr, w} }
func Xor(w uint8) Op    { return Op{OpXor, w} }
func Shl(w uint8) Op    { return Op{OpShl, w} }
func Shr(w uint8) Op    { return Op{OpShr, w} }
func Ashr(w uint8) Op   { return Op{OpAshr, w} }
func Eq(w uint8) Op     { return Op{OpEq, w} }
func Lt(w uint8) Op     { return Op{OpLt, w} }
func Sel(w uint8) Op    { return Op{OpSel, w} }
func Acc(w uint8) Op    { return Op{OpAcc, w} }
func AccMin(w uint8) Op { return Op{OpAccMin, w} }
func AccMax(w uint8) Op { return Op{OpAccMax, w} }
func RedAdd(w uint8) Op { return Op{OpRedAdd, w} }
func RedMin(w uint8) Op { return Op{OpRedMin, w} }
func Sig(w uint8) Op    { return Op{OpSig, w} }

// Valid reports whether the op names a known base at a legal lane width.
func (o Op) Valid() bool {
	if o.Base == OpInvalid || o.Base >= numBaseOps {
		return false
	}
	switch o.Width {
	case 8, 16, 32, 64:
		return true
	}
	return false
}

// Lanes is the number of sub-word lanes the op processes per word.
func (o Op) Lanes() int { return 64 / int(o.Width) }

// Arity is the number of operands the op consumes.
func (o Op) Arity() int { return baseOpInfo[o.Base].arity }

// Latency is the pipeline latency of the op in CGRA cycles.
func (o Op) Latency() int { return baseOpInfo[o.Base].latency }

// Class is the functional-unit class that executes the op.
func (o Op) Class() FUClass { return baseOpInfo[o.Base].class }

// String formats the op as name+width, e.g. "mul16"; this is also the
// spelling the .dfg text format uses.
func (o Op) String() string {
	if !o.Valid() {
		return fmt.Sprintf("op(%d,%d)", o.Base, o.Width)
	}
	return baseOpInfo[o.Base].name + strconv.Itoa(int(o.Width))
}

// ParseOp parses the textual form produced by Op.String.
func ParseOp(s string) (Op, error) {
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	name, digits := s[:i], s[i:]
	if digits == "" {
		return Op{}, fmt.Errorf("dfg: op %q missing lane width", s)
	}
	w, err := strconv.Atoi(digits)
	if err != nil || (w != 8 && w != 16 && w != 32 && w != 64) {
		return Op{}, fmt.Errorf("dfg: op %q has invalid lane width %q", s, digits)
	}
	name = strings.ToLower(name)
	for b := BaseOp(1); b < numBaseOps; b++ {
		if baseOpInfo[b].name == name {
			return Op{Base: b, Width: uint8(w)}, nil
		}
	}
	return Op{}, fmt.Errorf("dfg: unknown op %q", s)
}

// laneMask returns the mask of one lane of width w bits.
func laneMask(w uint8) uint64 {
	if w == 64 {
		return ^uint64(0)
	}
	return 1<<w - 1
}

// signExtend sign-extends the low w bits of v to 64 bits.
func signExtend(v uint64, w uint8) int64 {
	shift := 64 - uint(w)
	return int64(v<<shift) >> shift
}

// Eval computes the op over packed operands. For OpAcc, state is the
// running accumulator value and the returned state is its successor; all
// other ops ignore and pass through state.
func (o Op) Eval(args []uint64, state uint64) (result, newState uint64) {
	w := o.Width
	lanes := o.Lanes()
	mask := laneMask(w)

	lane := func(v uint64, i int) uint64 { return v >> (uint(i) * uint(w)) & mask }

	switch o.Base {
	case OpAnd:
		return args[0] & args[1], state
	case OpOr:
		return args[0] | args[1], state
	case OpXor:
		return args[0] ^ args[1], state
	case OpAcc, OpAccMin, OpAccMax:
		// args[0] is data, args[1] is the reset control stream.
		var out uint64
		switch o.Base {
		case OpAcc:
			out = addLanes(state, args[0], w)
		case OpAccMin:
			out, _ = Min(w).Eval([]uint64{state, args[0]}, 0)
		default:
			out, _ = Max(w).Eval([]uint64{state, args[0]}, 0)
		}
		if args[1] != 0 {
			return out, o.InitState()
		}
		return out, out
	case OpRedAdd:
		var sum int64
		for i := 0; i < lanes; i++ {
			sum += signExtend(lane(args[0], i), w)
		}
		return uint64(sum), state
	case OpRedMin:
		best := signExtend(lane(args[0], 0), w)
		for i := 1; i < lanes; i++ {
			if v := signExtend(lane(args[0], i), w); v < best {
				best = v
			}
		}
		return uint64(best), state
	}

	var out uint64
	for i := 0; i < lanes; i++ {
		a := lane(args[0], i)
		var b, c uint64
		if o.Arity() > 1 {
			b = lane(args[1], i)
		}
		if o.Arity() > 2 {
			c = lane(args[2], i)
		}
		var r uint64
		switch o.Base {
		case OpAdd:
			r = a + b
		case OpSub:
			r = a - b
		case OpMul:
			r = a * b
		case OpDiv:
			sb := signExtend(b, w)
			if sb == 0 {
				r = 0
			} else {
				r = uint64(signExtend(a, w) / sb)
			}
		case OpMin:
			if signExtend(a, w) < signExtend(b, w) {
				r = a
			} else {
				r = b
			}
		case OpMax:
			if signExtend(a, w) > signExtend(b, w) {
				r = a
			} else {
				r = b
			}
		case OpAbs:
			if s := signExtend(a, w); s < 0 {
				r = uint64(-s)
			} else {
				r = a
			}
		case OpShl:
			r = a << (args[1] & 63)
		case OpShr:
			r = a >> (args[1] & 63)
		case OpAshr:
			r = uint64(signExtend(a, w) >> (args[1] & 63))
		case OpEq:
			if a == b {
				r = 1
			}
		case OpLt:
			if signExtend(a, w) < signExtend(b, w) {
				r = 1
			}
		case OpSel:
			if a != 0 {
				r = b
			} else {
				r = c
			}
		case OpSig:
			r = sigmoidFixed(signExtend(a, w), w)
		}
		out |= (r & mask) << (uint(i) * uint(w))
	}
	return out, state
}

// InitState is the accumulator's identity value: zero for sums, the
// most positive (negative) lane value for running minima (maxima).
func (o Op) InitState() uint64 {
	switch o.Base {
	case OpAccMin:
		return repeatLane(laneMask(o.Width)>>1, o.Width) // lane max positive
	case OpAccMax:
		return repeatLane(laneMask(o.Width)>>1^laneMask(o.Width), o.Width) // lane min
	}
	return 0
}

// repeatLane tiles the low w bits of v across a 64-bit word.
func repeatLane(v uint64, w uint8) uint64 {
	if w == 64 {
		return v
	}
	var out uint64
	for i := 0; i < 64/int(w); i++ {
		out |= (v & laneMask(w)) << (uint(i) * uint(w))
	}
	return out
}

// addLanes adds two packed words lane-wise at width w.
func addLanes(a, b uint64, w uint8) uint64 {
	if w == 64 {
		return a + b
	}
	mask := laneMask(w)
	var out uint64
	for i := 0; i < 64/int(w); i++ {
		sh := uint(i) * uint(w)
		out |= (a>>sh + b>>sh) & mask << sh
	}
	return out
}

// sigmoidFixed is a piecewise-linear fixed-point logistic function in
// Q(w/2).(w/2) format: "one" is 1 << (w/2). It saturates to [0, one] and
// is the same function the golden DNN models use, so accelerator output
// is bit-exact against them.
func sigmoidFixed(x int64, w uint8) uint64 {
	frac := uint(w) / 2
	one := int64(1) << frac
	// Piecewise linear approximation of 1/(1+e^-x) on Q format:
	//   x <= -4: 0;  x >= 4: 1;  else 0.5 + x/8 (clamped).
	four := 4 * one
	switch {
	case x <= -four:
		return 0
	case x >= four:
		return uint64(one)
	default:
		return uint64(one/2 + x/8)
	}
}
