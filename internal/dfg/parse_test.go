package dfg

import (
	"math/rand"
	"testing"
)

const dotprodText = `
# Figure 3a: 3-wide dot product.
dfg dotprod
input A 3
input B 3
mul64 m0 A.0 B.0
mul64 m1 A.1 B.1
mul64 m2 A.2 B.2
add64 s0 m0 m1
add64 s1 s0 m2
output C s1
`

func TestParseDotProduct(t *testing.T) {
	g, err := ParseString(dotprodText)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "dotprod" || len(g.Ins) != 2 || len(g.Nodes) != 5 || len(g.Outs) != 1 {
		t.Fatalf("parsed shape wrong: %+v", g)
	}
	e, err := NewEvaluator(g)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := e.Eval([][]uint64{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0][0] != 32 {
		t.Errorf("parsed dot product = %d, want 32", outs[0][0])
	}
}

func TestParseShorthandAndImmediates(t *testing.T) {
	g, err := ParseString(`
dfg f
input X 1
add64 a X $10       # bare port name means word 0
shl64 b a $0x2
output O b
`)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := NewEvaluator(g)
	outs, err := e.Eval([][]uint64{{5}})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0][0] != 60 {
		t.Errorf("(5+10)<<2 = %d, want 60", outs[0][0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"no header", "input A 1\n"},
		{"double header", "dfg a\ndfg b\n"},
		{"header no name", "dfg\n"},
		{"bad width", "dfg f\ninput A x\n"},
		{"input arity", "dfg f\ninput A\n"},
		{"dup port", "dfg f\ninput A 1\ninput A 1\n"},
		{"unknown op", "dfg f\ninput A 1\nfrob64 x A.0\noutput O x\n"},
		{"unknown value", "dfg f\ninput A 1\nadd64 x A.0 Q\noutput O x\n"},
		{"unknown port in ref", "dfg f\ninput A 1\nadd64 x Z.0 A.0\noutput O x\n"},
		{"bad port word", "dfg f\ninput A 1\nadd64 x A.z A.0\noutput O x\n"},
		{"bad immediate", "dfg f\ninput A 1\nadd64 x A.0 $zz\noutput O x\n"},
		{"dup node", "dfg f\ninput A 1\nabs64 x A.0\nabs64 x A.0\noutput O x\n"},
		{"node shadows port", "dfg f\ninput A 1\nabs64 A A.0\noutput O A\n"},
		{"node missing name", "dfg f\ninput A 1\nabs64\n"},
		{"output missing value", "dfg f\ninput A 1\noutput O\n"},
		{"output unknown value", "dfg f\ninput A 1\noutput O zz\n"},
		{"node before header", "abs64 x A.0\n"},
		{"input after nothing", "input A 1\n"},
		{"empty", ""},
		{"only comments", "# hello\n\n"},
	}
	for _, tt := range cases {
		if _, err := ParseString(tt.text); err == nil {
			t.Errorf("%s: parse should fail", tt.name)
		}
	}
}

// randomGraph builds a random valid DAG for round-trip testing.
func randomGraph(t testing.TB, r *rand.Rand) *Graph {
	t.Helper()
	b := NewBuilder("rnd")
	nIns := 1 + r.Intn(3)
	var portRefs []Ref
	for i := 0; i < nIns; i++ {
		w := 1 + r.Intn(4)
		in := b.Input(string(rune('A'+i)), w)
		for j := 0; j < w; j++ {
			portRefs = append(portRefs, in.W(j))
		}
	}
	ops := []Op{Add(64), Sub(32), Mul(16), Min(64), Max(8), Abs(64), Sel(64), Acc(64), RedAdd(16), Xor(64)}
	avail := portRefs
	for i := 0; i < 1+r.Intn(12); i++ {
		op := ops[r.Intn(len(ops))]
		args := make([]Ref, op.Arity())
		for j := range args {
			if r.Intn(5) == 0 {
				args[j] = ImmRef(uint64(r.Intn(100)))
			} else {
				args[j] = avail[r.Intn(len(avail))]
			}
		}
		avail = append(avail, b.N(op, args...))
	}
	b.Output("O", avail[len(avail)-1])
	return mustBuild(t, b)
}

// Property: String() output re-parses to a graph that evaluates
// identically on random inputs.
func TestStringParseRoundTripEval(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		g := randomGraph(t, r)
		g2, err := ParseString(g.String())
		if err != nil {
			t.Fatalf("re-parse failed: %v\n%s", err, g.String())
		}
		e1, _ := NewEvaluator(g)
		e2, _ := NewEvaluator(g2)
		for inst := 0; inst < 5; inst++ {
			ins := make([][]uint64, len(g.Ins))
			for p := range ins {
				ins[p] = make([]uint64, g.Ins[p].Width)
				for w := range ins[p] {
					ins[p][w] = r.Uint64()
				}
			}
			o1, err1 := e1.Eval(ins)
			o2, err2 := e2.Eval(ins)
			if err1 != nil || err2 != nil {
				t.Fatalf("eval errors: %v, %v", err1, err2)
			}
			for p := range o1 {
				for w := range o1[p] {
					if o1[p][w] != o2[p][w] {
						t.Fatalf("trial %d: round-trip eval mismatch at out %d.%d:\n%s", trial, p, w, g.String())
					}
				}
			}
		}
	}
}

func TestDotExport(t *testing.T) {
	g, err := ParseString(dotprodText)
	if err != nil {
		t.Fatal(err)
	}
	dot := g.Dot()
	for _, want := range []string{"digraph", "mul64", "invhouse", "house", "->"} {
		if !containsStr(dot, want) {
			t.Errorf("Dot() missing %q:\n%s", want, dot)
		}
	}
	// Immediates render as plaintext constants.
	g2, _ := ParseString("dfg f\ninput A 1\nadd64 x A $7\noutput O x\n")
	if !containsStr(g2.Dot(), "$7") {
		t.Error("immediate missing from Dot output")
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && indexStr(s, sub) >= 0
}

func indexStr(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
