package dfg

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parse reads a graph in the .dfg text format, the "simple graph
// language" of Section 4.5:
//
//	# comment
//	dfg dotprod
//	input A 3
//	input B 3
//	mul64 m0 A.0 B.0
//	mul64 m1 A.1 B.1
//	mul64 m2 A.2 B.2
//	add64 s0 m0 m1
//	add64 s1 s0 m2
//	output C s1
//
// Each node line is: <op><width> <name> <operand>... where an operand is
// a port word ("A.0", or "A" as shorthand for "A.0"), a node name, or an
// immediate ("$42", decimal or 0x-hex).
func Parse(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	b := (*Builder)(nil)
	ports := map[string]In{}
	nodes := map[string]Ref{}
	lineno := 0

	parseRef := func(tok string) (Ref, error) {
		if strings.HasPrefix(tok, "$") {
			v, err := strconv.ParseUint(strings.TrimPrefix(tok, "$"), 0, 64)
			if err != nil {
				return Ref{}, fmt.Errorf("bad immediate %q", tok)
			}
			return ImmRef(v), nil
		}
		if name, word, ok := strings.Cut(tok, "."); ok {
			p, found := ports[name]
			if !found {
				return Ref{}, fmt.Errorf("unknown port %q", name)
			}
			w, err := strconv.Atoi(word)
			if err != nil {
				return Ref{}, fmt.Errorf("bad port word %q", tok)
			}
			return p.W(w), nil
		}
		if n, ok := nodes[tok]; ok {
			return n, nil
		}
		if p, ok := ports[tok]; ok {
			return p.W(0), nil
		}
		return Ref{}, fmt.Errorf("unknown value %q", tok)
	}

	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		fail := func(format string, args ...any) (*Graph, error) {
			return nil, fmt.Errorf("dfg: line %d: %s", lineno, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "dfg":
			if b != nil {
				return fail("duplicate dfg header")
			}
			if len(fields) != 2 {
				return fail("dfg header wants a name")
			}
			b = NewBuilder(fields[1])
		case "input":
			if b == nil {
				return fail("input before dfg header")
			}
			if len(fields) != 3 {
				return fail("input wants: input <name> <width>")
			}
			w, err := strconv.Atoi(fields[2])
			if err != nil {
				return fail("bad width %q", fields[2])
			}
			if _, dup := ports[fields[1]]; dup {
				return fail("duplicate port %q", fields[1])
			}
			ports[fields[1]] = b.Input(fields[1], w)
		case "output", "output8", "output16", "output32", "output64":
			if b == nil {
				return fail("output before dfg header")
			}
			if len(fields) < 3 {
				return fail("output wants: output <name> <value>...")
			}
			elem := 8
			switch fields[0] {
			case "output8":
				elem = 1
			case "output16":
				elem = 2
			case "output32":
				elem = 4
			}
			var srcs []Ref
			for _, tok := range fields[2:] {
				r, err := parseRef(tok)
				if err != nil {
					return fail("%v", err)
				}
				srcs = append(srcs, r)
			}
			b.OutputElem(fields[1], elem, srcs...)
		default:
			if b == nil {
				return fail("node before dfg header")
			}
			op, err := ParseOp(fields[0])
			if err != nil {
				return fail("%v", err)
			}
			if len(fields) < 2 {
				return fail("node wants: %v <name> <args>...", op)
			}
			name := fields[1]
			if _, dup := nodes[name]; dup {
				return fail("duplicate node %q", name)
			}
			if _, dup := ports[name]; dup {
				return fail("node %q shadows a port", name)
			}
			var args []Ref
			for _, tok := range fields[2:] {
				r, err := parseRef(tok)
				if err != nil {
					return fail("%v", err)
				}
				args = append(args, r)
			}
			nodes[name] = b.Named(name, op, args...)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dfg: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("dfg: no dfg header found")
	}
	return b.Build()
}

// ParseString is Parse over a string.
func ParseString(s string) (*Graph, error) { return Parse(strings.NewReader(s)) }
