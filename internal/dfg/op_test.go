package dfg

import (
	"testing"
	"testing/quick"
)

func evalOp(t *testing.T, op Op, args ...uint64) uint64 {
	t.Helper()
	r, _ := op.Eval(args, 0)
	return r
}

func TestScalarArith(t *testing.T) {
	tests := []struct {
		op   Op
		a, b uint64
		want uint64
	}{
		{Add(64), 3, 4, 7},
		{Sub(64), 3, 4, ^uint64(0)}, // wraps
		{Mul(64), 6, 7, 42},
		{Div(64), 42, 7, 6},
		{Div(64), negU64(42), 7, negU64(6)},
		{Div(64), 1, 0, 0},
		{Min(64), negU64(5), 3, negU64(5)},
		{Max(64), negU64(5), 3, 3},
		{And(64), 0xf0, 0x3c, 0x30},
		{Or(64), 0xf0, 0x0c, 0xfc},
		{Xor(64), 0xff, 0x0f, 0xf0},
		{Shl(64), 1, 5, 32},
		{Shr(64), 32, 5, 1},
		{Eq(64), 5, 5, 1},
		{Eq(64), 5, 6, 0},
		{Lt(64), negU64(1), 0, 1},
		{Lt(64), 1, 0, 0},
	}
	for _, tt := range tests {
		if got := evalOp(t, tt.op, tt.a, tt.b); got != tt.want {
			t.Errorf("%v(%d, %d) = %d, want %d", tt.op, int64(tt.a), int64(tt.b), int64(got), int64(tt.want))
		}
	}
}

func TestUnaryOps(t *testing.T) {
	if got := evalOp(t, Abs(64), negU64(9)); got != 9 {
		t.Errorf("abs64(-9) = %d", int64(got))
	}
	if got := evalOp(t, Abs(64), 9); got != 9 {
		t.Errorf("abs64(9) = %d", int64(got))
	}
}

func TestSelect(t *testing.T) {
	if got := evalOp(t, Sel(64), 1, 10, 20); got != 10 {
		t.Errorf("sel(1,10,20) = %d", got)
	}
	if got := evalOp(t, Sel(64), 0, 10, 20); got != 20 {
		t.Errorf("sel(0,10,20) = %d", got)
	}
}

// pack16 packs four 16-bit lanes into a word, lane 0 in the low bits.
func pack16(l0, l1, l2, l3 uint16) uint64 {
	return uint64(l0) | uint64(l1)<<16 | uint64(l2)<<32 | uint64(l3)<<48
}

func TestSubwordMul16(t *testing.T) {
	a := pack16(2, 3, 0xffff /* -1 */, 100)
	b := pack16(10, 10, 3, 100)
	got := evalOp(t, Mul(16), a, b)
	want := pack16(20, 30, 0xfffd /* -3 wraps */, 10000)
	if got != want {
		t.Errorf("mul16 = %#x, want %#x", got, want)
	}
}

func TestSubwordMinSigned(t *testing.T) {
	a := pack16(5, 0x8000 /* most negative */, 7, 0)
	b := pack16(6, 1, 3, 0xffff /* -1 */)
	got := evalOp(t, Min(16), a, b)
	want := pack16(5, 0x8000, 3, 0xffff)
	if got != want {
		t.Errorf("min16 = %#x, want %#x", got, want)
	}
}

func TestRedAdd16(t *testing.T) {
	// 1 + 2 + 3 + (-1) = 5, as a 64-bit scalar.
	in := pack16(1, 2, 3, 0xffff)
	if got := evalOp(t, RedAdd(16), in); got != 5 {
		t.Errorf("redadd16 = %d, want 5", int64(got))
	}
}

func TestRedMin32(t *testing.T) {
	in := uint64(7) | uint64(0xfffffffb)<<32 // lanes 7, -5
	if got := evalOp(t, RedMin(32), in); int64(got) != -5 {
		t.Errorf("redmin32 = %d, want -5", int64(got))
	}
}

func TestAccumulate(t *testing.T) {
	op := Acc(64)
	var state uint64
	var out uint64
	for i := uint64(1); i <= 4; i++ {
		out, state = op.Eval([]uint64{i, 0}, state)
	}
	if out != 10 {
		t.Errorf("acc after 1..4 = %d, want 10", out)
	}
	// Reset: output still includes this instance, then state clears.
	out, state = op.Eval([]uint64{5, 1}, state)
	if out != 15 {
		t.Errorf("acc with reset = %d, want 15", out)
	}
	if state != 0 {
		t.Errorf("state after reset = %d, want 0", state)
	}
	out, _ = op.Eval([]uint64{2, 0}, state)
	if out != 2 {
		t.Errorf("acc after reset = %d, want 2", out)
	}
}

func TestAccumulateSubword(t *testing.T) {
	op := Acc(16)
	var state, out uint64
	for i := 0; i < 3; i++ {
		out, state = op.Eval([]uint64{pack16(1, 2, 3, 4), 0}, state)
	}
	if want := pack16(3, 6, 9, 12); out != want {
		t.Errorf("acc16 = %#x, want %#x", out, want)
	}
}

func TestSigmoidShape(t *testing.T) {
	op := Sig(16) // Q8.8: one == 256
	one := uint64(256)
	lane0 := func(x int64) uint64 { return evalOp(t, op, uint64(x)&0xffff) & 0xffff }
	if got := lane0(-3000); got != 0 {
		t.Errorf("sig(-3000) = %d, want 0 (saturated)", got)
	}
	if got := lane0(3000); got != one {
		t.Errorf("sig(3000) = %d, want %d (saturated)", got, one)
	}
	if got := lane0(0); got != one/2 {
		t.Errorf("sig(0) = %d, want %d", got, one/2)
	}
	// Monotone non-decreasing over the central range.
	prev := uint64(0)
	for x := int64(-1024); x <= 1024; x += 16 {
		got := lane0(x)
		if got < prev {
			t.Fatalf("sigmoid not monotone at x=%d: %d < %d", x, got, prev)
		}
		prev = got
	}
}

func TestOpParseRoundTrip(t *testing.T) {
	for b := BaseOp(1); b < numBaseOps; b++ {
		for _, w := range []uint8{8, 16, 32, 64} {
			op := Op{Base: b, Width: w}
			got, err := ParseOp(op.String())
			if err != nil {
				t.Errorf("ParseOp(%q): %v", op.String(), err)
				continue
			}
			if got != op {
				t.Errorf("ParseOp(%q) = %v", op.String(), got)
			}
		}
	}
}

func TestParseOpErrors(t *testing.T) {
	for _, s := range []string{"", "add", "add7", "frob64", "64", "mul"} {
		if _, err := ParseOp(s); err == nil {
			t.Errorf("ParseOp(%q) should fail", s)
		}
	}
}

func TestOpMetadata(t *testing.T) {
	if Mul(16).Lanes() != 4 || Add(64).Lanes() != 1 || Add(8).Lanes() != 8 {
		t.Error("wrong lane counts")
	}
	if Sel(32).Arity() != 3 || Abs(64).Arity() != 1 || Add(64).Arity() != 2 {
		t.Error("wrong arities")
	}
	if Mul(16).Class() != FUMul || Add(64).Class() != FUAlu || Sig(16).Class() != FUSig || Div(64).Class() != FUDiv {
		t.Error("wrong FU classes")
	}
	if Mul(64).Latency() <= Add(64).Latency() {
		t.Error("multiply should be slower than add")
	}
	if (Op{}).Valid() || (Op{Base: OpAdd, Width: 7}).Valid() {
		t.Error("invalid ops reported valid")
	}
}

// Property: add and sub are lane-wise inverses at every width.
func TestAddSubInverse(t *testing.T) {
	for _, w := range []uint8{8, 16, 32, 64} {
		w := w
		f := func(a, b uint64) bool {
			sum := evalOp(t, Add(w), a, b)
			return evalOp(t, Sub(w), sum, b) == a
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("width %d: %v", w, err)
		}
	}
}

// Property: redadd16 of a word equals the sum of its sign-extended lanes.
func TestRedAddMatchesManualSum(t *testing.T) {
	f := func(v uint64) bool {
		var want int64
		for i := 0; i < 4; i++ {
			want += int64(int16(v >> (16 * i)))
		}
		return evalOp(t, RedAdd(16), v) == uint64(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// negU64 is -v as a uint64, avoiding untyped-constant overflow in tables.
func negU64(v int64) uint64 { return uint64(-v) }

func TestAccMinMax(t *testing.T) {
	op := AccMin(64)
	state := op.InitState()
	var out uint64
	for _, v := range []int64{5, -3, 9} {
		out, state = op.Eval([]uint64{uint64(v), 0}, state)
	}
	if int64(out) != -3 {
		t.Errorf("accmin = %d, want -3", int64(out))
	}
	out, state = op.Eval([]uint64{100, 1}, state) // reset after this
	if int64(out) != -3 {
		t.Errorf("accmin with reset = %d, want -3", int64(out))
	}
	out, _ = op.Eval([]uint64{7, 0}, state)
	if int64(out) != 7 {
		t.Errorf("accmin after reset = %d, want 7 (identity restored)", int64(out))
	}

	mx := AccMax(16)
	st := mx.InitState()
	if int16(st&0xffff) != -32768 {
		t.Errorf("accmax16 init lane = %d, want -32768", int16(st&0xffff))
	}
	var o uint64
	o, st = mx.Eval([]uint64{pack16(1, 0x8000, 30, 0xffff), 0}, st)
	o, st = mx.Eval([]uint64{pack16(4, 2, 10, 0xfff0), 0}, st)
	_ = st
	if want := pack16(4, 2, 30, 0xffff); o != want {
		t.Errorf("accmax16 = %#x, want %#x", o, want)
	}
}

func TestArithmeticShift(t *testing.T) {
	if got := evalOp(t, Ashr(64), negU64(256), 4); int64(got) != -16 {
		t.Errorf("ashr64(-256, 4) = %d, want -16", int64(got))
	}
	if got := evalOp(t, Ashr(64), 256, 4); got != 16 {
		t.Errorf("ashr64(256, 4) = %d, want 16", got)
	}
	// Lane-wise: each 16-bit lane shifts with its own sign.
	in := pack16(0x8000, 4, 0xfff0, 64)
	got := evalOp(t, Ashr(16), in, 2)
	want := pack16(0xe000, 1, 0xfffc, 16)
	if got != want {
		t.Errorf("ashr16 = %#x, want %#x", got, want)
	}
}
