package dfg

import (
	"fmt"
	"strings"
)

// NodeID identifies a node within one Graph. IDs are dense: 0..len(Nodes)-1.
type NodeID int

// RefKind discriminates the source of an operand value.
type RefKind uint8

const (
	RefInvalid RefKind = iota
	RefPort            // one word of an input port, per instance
	RefNode            // the result of another node
	RefImm             // a constant folded into the PE configuration
)

// Ref names the source of one dataflow operand.
type Ref struct {
	Kind RefKind
	Port int    // input port index (RefPort)
	Word int    // word lane within the port (RefPort)
	Node NodeID // producing node (RefNode)
	Imm  uint64 // immediate value (RefImm)
}

// PortRef references word w of input port p.
func PortRef(p, w int) Ref { return Ref{Kind: RefPort, Port: p, Word: w} }

// NodeRef references the output of node n.
func NodeRef(n NodeID) Ref { return Ref{Kind: RefNode, Node: n} }

// ImmRef references the constant v.
func ImmRef(v uint64) Ref { return Ref{Kind: RefImm, Imm: v} }

func (r Ref) String() string {
	switch r.Kind {
	case RefPort:
		return fmt.Sprintf("in%d.%d", r.Port, r.Word)
	case RefNode:
		return fmt.Sprintf("n%d", r.Node)
	case RefImm:
		return fmt.Sprintf("$%d", r.Imm)
	}
	return "?"
}

// Node is one dataflow instruction.
type Node struct {
	ID   NodeID
	Name string // optional label from the builder or parser
	Op   Op
	Args []Ref
}

// InPort declares a named DFG input port. Width is in 64-bit words per
// computation instance: the port consumes Width words from its stream for
// every firing.
type InPort struct {
	Name  string
	Width int
}

// OutPort declares a named DFG output port; Sources lists the value
// producing each of its Width words per instance. ElemBytes is the
// element size the port emits: for sub-word results (e.g. 16-bit neuron
// outputs), only the low ElemBytes of each source word enter the port's
// FIFO.
type OutPort struct {
	Name      string
	Sources   []Ref
	ElemBytes int
}

// BytesPerInstance is the number of bytes the port emits per firing.
func (p OutPort) BytesPerInstance() int { return len(p.Sources) * p.ElemBytes }

// Width is the number of words the port emits per instance.
func (p OutPort) Width() int { return len(p.Sources) }

// Graph is a complete dataflow graph. Build one with a Builder or Parse;
// a Graph whose Validate returns nil is immutable by convention.
type Graph struct {
	Name  string
	Ins   []InPort
	Outs  []OutPort
	Nodes []Node
}

// FindIn returns the index of the named input port, or -1.
func (g *Graph) FindIn(name string) int {
	for i := range g.Ins {
		if g.Ins[i].Name == name {
			return i
		}
	}
	return -1
}

// FindOut returns the index of the named output port, or -1.
func (g *Graph) FindOut(name string) int {
	for i := range g.Outs {
		if g.Outs[i].Name == name {
			return i
		}
	}
	return -1
}

// Validate checks structural well-formedness: port names unique and
// non-empty, widths in range (1..8 words), ops valid with correct arity,
// refs in range, and acyclicity (Acc state is internal, so the graph
// itself must be a DAG).
func (g *Graph) Validate() error {
	if g.Name == "" {
		return fmt.Errorf("dfg: graph has no name")
	}
	names := map[string]bool{}
	for _, p := range g.Ins {
		if p.Name == "" {
			return fmt.Errorf("dfg %s: input port with empty name", g.Name)
		}
		if names[p.Name] {
			return fmt.Errorf("dfg %s: duplicate port name %q", g.Name, p.Name)
		}
		names[p.Name] = true
		if p.Width < 1 || p.Width > 8 {
			return fmt.Errorf("dfg %s: port %s width %d out of range 1..8", g.Name, p.Name, p.Width)
		}
	}
	checkRef := func(r Ref, where string) error {
		switch r.Kind {
		case RefPort:
			if r.Port < 0 || r.Port >= len(g.Ins) {
				return fmt.Errorf("dfg %s: %s references input port %d of %d", g.Name, where, r.Port, len(g.Ins))
			}
			if r.Word < 0 || r.Word >= g.Ins[r.Port].Width {
				return fmt.Errorf("dfg %s: %s references word %d of port %s (width %d)",
					g.Name, where, r.Word, g.Ins[r.Port].Name, g.Ins[r.Port].Width)
			}
		case RefNode:
			if r.Node < 0 || int(r.Node) >= len(g.Nodes) {
				return fmt.Errorf("dfg %s: %s references node %d of %d", g.Name, where, r.Node, len(g.Nodes))
			}
		case RefImm:
		default:
			return fmt.Errorf("dfg %s: %s has invalid ref", g.Name, where)
		}
		return nil
	}
	for i, n := range g.Nodes {
		if n.ID != NodeID(i) {
			return fmt.Errorf("dfg %s: node %d has ID %d", g.Name, i, n.ID)
		}
		if !n.Op.Valid() {
			return fmt.Errorf("dfg %s: node %d has invalid op", g.Name, i)
		}
		if len(n.Args) != n.Op.Arity() {
			return fmt.Errorf("dfg %s: node %d (%v) has %d args, want %d", g.Name, i, n.Op, len(n.Args), n.Op.Arity())
		}
		for j, a := range n.Args {
			if err := checkRef(a, fmt.Sprintf("node %d arg %d", i, j)); err != nil {
				return err
			}
		}
	}
	if len(g.Outs) == 0 {
		return fmt.Errorf("dfg %s: no output ports", g.Name)
	}
	for _, p := range g.Outs {
		if p.Name == "" {
			return fmt.Errorf("dfg %s: output port with empty name", g.Name)
		}
		if names[p.Name] {
			return fmt.Errorf("dfg %s: duplicate port name %q", g.Name, p.Name)
		}
		names[p.Name] = true
		if p.Width() < 1 || p.Width() > 8 {
			return fmt.Errorf("dfg %s: port %s width %d out of range 1..8", g.Name, p.Name, p.Width())
		}
		switch p.ElemBytes {
		case 1, 2, 4, 8:
		default:
			return fmt.Errorf("dfg %s: port %s element size %d invalid", g.Name, p.Name, p.ElemBytes)
		}
		for w, r := range p.Sources {
			if err := checkRef(r, fmt.Sprintf("output %s word %d", p.Name, w)); err != nil {
				return err
			}
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns the nodes in a topological order of the dataflow
// edges, or an error if the graph contains a cycle.
func (g *Graph) TopoOrder() ([]NodeID, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, len(g.Nodes))
	order := make([]NodeID, 0, len(g.Nodes))
	var visit func(NodeID) error
	visit = func(id NodeID) error {
		switch color[id] {
		case gray:
			return fmt.Errorf("dfg %s: cycle through node %d", g.Name, id)
		case black:
			return nil
		}
		color[id] = gray
		for _, a := range g.Nodes[id].Args {
			if a.Kind == RefNode {
				if err := visit(a.Node); err != nil {
					return err
				}
			}
		}
		color[id] = black
		order = append(order, id)
		return nil
	}
	for id := range g.Nodes {
		if err := visit(NodeID(id)); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// FUDemand counts nodes per functional-unit class: the resources the
// graph needs from a CGRA configuration.
func (g *Graph) FUDemand() [NumFUClasses]int {
	var d [NumFUClasses]int
	for _, n := range g.Nodes {
		d[n.Op.Class()]++
	}
	return d
}

// OpsPerInstance is the number of scalar operations one computation
// instance performs, counting each sub-word lane (the activity measure
// the power model uses).
func (g *Graph) OpsPerInstance() int {
	total := 0
	for _, n := range g.Nodes {
		total += n.Op.Lanes()
	}
	return total
}

// InWidthWords is the total input words consumed per instance.
func (g *Graph) InWidthWords() int {
	t := 0
	for _, p := range g.Ins {
		t += p.Width
	}
	return t
}

// OutWidthWords is the total output words produced per instance.
func (g *Graph) OutWidthWords() int {
	t := 0
	for _, p := range g.Outs {
		t += p.Width()
	}
	return t
}

// String renders the graph in the .dfg text format accepted by Parse.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dfg %s\n", g.Name)
	for _, p := range g.Ins {
		fmt.Fprintf(&b, "input %s %d\n", p.Name, p.Width)
	}
	name := func(id NodeID) string {
		if n := g.Nodes[id].Name; n != "" {
			return n
		}
		return fmt.Sprintf("n%d", id)
	}
	ref := func(r Ref) string {
		switch r.Kind {
		case RefPort:
			return fmt.Sprintf("%s.%d", g.Ins[r.Port].Name, r.Word)
		case RefNode:
			return name(r.Node)
		case RefImm:
			return fmt.Sprintf("$%d", r.Imm)
		}
		return "?"
	}
	for _, n := range g.Nodes {
		fmt.Fprintf(&b, "%v %s", n.Op, name(n.ID))
		for _, a := range n.Args {
			fmt.Fprintf(&b, " %s", ref(a))
		}
		b.WriteByte('\n')
	}
	for _, p := range g.Outs {
		if p.ElemBytes == 8 {
			fmt.Fprintf(&b, "output %s", p.Name)
		} else {
			fmt.Fprintf(&b, "output%d %s", p.ElemBytes*8, p.Name)
		}
		for _, r := range p.Sources {
			fmt.Fprintf(&b, " %s", ref(r))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
