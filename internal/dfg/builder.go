package dfg

import "fmt"

// Builder constructs Graphs programmatically. Errors are deferred: every
// method can be chained freely and the first error is reported by Build.
//
//	b := dfg.NewBuilder("dotprod")
//	a, bp := b.Input("A", 3), b.Input("B", 3)
//	m0 := b.N(dfg.Mul(64), a.W(0), bp.W(0))
//	...
//	b.Output("C", sum)
//	g, err := b.Build()
type Builder struct {
	g   Graph
	err error
}

// NewBuilder returns a Builder for a graph with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{g: Graph{Name: name}}
}

// In names an input port created by Input; W selects one of its words.
type In struct {
	b     *Builder
	index int
}

// W references word w of the input port.
func (p In) W(w int) Ref { return PortRef(p.index, w) }

// Index is the port's position among the graph's input ports.
func (p In) Index() int { return p.index }

// Input declares an input port of the given width in words.
func (b *Builder) Input(name string, width int) In {
	b.g.Ins = append(b.g.Ins, InPort{Name: name, Width: width})
	return In{b: b, index: len(b.g.Ins) - 1}
}

// N adds a node computing op over args and returns a Ref to its result.
func (b *Builder) N(op Op, args ...Ref) Ref {
	return b.Named("", op, args...)
}

// Named adds a labeled node; labels appear in the text format and traces.
func (b *Builder) Named(name string, op Op, args ...Ref) Ref {
	if b.err == nil && len(args) != op.Arity() {
		b.err = fmt.Errorf("dfg %s: %v takes %d args, got %d", b.g.Name, op, op.Arity(), len(args))
	}
	id := NodeID(len(b.g.Nodes))
	b.g.Nodes = append(b.g.Nodes, Node{ID: id, Name: name, Op: op, Args: args})
	return NodeRef(id)
}

// Output declares an output port of full 64-bit elements.
func (b *Builder) Output(name string, sources ...Ref) {
	b.OutputElem(name, 8, sources...)
}

// OutputElem declares an output port emitting the low elemBytes of each
// source word (sub-word results, e.g. 16-bit neuron outputs).
func (b *Builder) OutputElem(name string, elemBytes int, sources ...Ref) {
	b.g.Outs = append(b.g.Outs, OutPort{Name: name, Sources: sources, ElemBytes: elemBytes})
}

// Build validates and returns the graph.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	g := b.g // shallow copy; the builder is discarded by convention
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

// ReduceTree builds a balanced binary reduction of vals with op,
// returning the root value. It is a convenience for the adder and
// min trees that dominate accelerator DFGs (e.g. stencil3d's "6-1 reduce
// and multiplier tree" in Table 4). vals must not be empty.
func (b *Builder) ReduceTree(op Op, vals ...Ref) Ref {
	if len(vals) == 0 {
		if b.err == nil {
			b.err = fmt.Errorf("dfg %s: ReduceTree of nothing", b.g.Name)
		}
		return Ref{}
	}
	for len(vals) > 1 {
		var next []Ref
		for i := 0; i+1 < len(vals); i += 2 {
			next = append(next, b.N(op, vals[i], vals[i+1]))
		}
		if len(vals)%2 == 1 {
			next = append(next, vals[len(vals)-1])
		}
		vals = next
	}
	return vals[0]
}
