package dfg

import "fmt"

// Evaluator executes a Graph functionally, one computation instance at a
// time, holding accumulator state between instances exactly as the
// processing elements do on hardware. It is used both by the CGRA timing
// model (which wraps it with pipeline latency) and directly by tests.
type Evaluator struct {
	g     *Graph
	order []NodeID
	state []uint64   // per-node accumulator state
	vals  []uint64   // per-node scratch for the current instance
	outs  [][]uint64 // per-port result buffers, reused across instances
}

// NewEvaluator returns an evaluator for g, which must be valid.
func NewEvaluator(g *Graph) (*Evaluator, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	e := &Evaluator{
		g:     g,
		order: order,
		state: make([]uint64, len(g.Nodes)),
		vals:  make([]uint64, len(g.Nodes)),
		outs:  make([][]uint64, len(g.Outs)),
	}
	for p := range g.Outs {
		e.outs[p] = make([]uint64, g.Outs[p].Width())
	}
	e.Reset()
	return e, nil
}

// Reset restores all accumulator state to its identity value, as a CGRA
// reconfiguration does.
func (e *Evaluator) Reset() {
	for i := range e.state {
		e.state[i] = e.g.Nodes[i].Op.InitState()
	}
}

// Eval runs one computation instance. inputs[p] holds the words for input
// port p (length = the port's width); the result is indexed the same way
// over output ports. The returned slices are valid until the next Eval.
func (e *Evaluator) Eval(inputs [][]uint64) ([][]uint64, error) {
	g := e.g
	if len(inputs) != len(g.Ins) {
		return nil, fmt.Errorf("dfg %s: %d input vectors for %d ports", g.Name, len(inputs), len(g.Ins))
	}
	for p, in := range inputs {
		if len(in) != g.Ins[p].Width {
			return nil, fmt.Errorf("dfg %s: port %s got %d words, want %d", g.Name, g.Ins[p].Name, len(in), g.Ins[p].Width)
		}
	}
	deref := func(r Ref) uint64 {
		switch r.Kind {
		case RefPort:
			return inputs[r.Port][r.Word]
		case RefNode:
			return e.vals[r.Node]
		default:
			return r.Imm
		}
	}
	var args [3]uint64
	for _, id := range e.order {
		n := &g.Nodes[id]
		for i, a := range n.Args {
			args[i] = deref(a)
		}
		e.vals[id], e.state[id] = n.Op.Eval(args[:len(n.Args)], e.state[id])
	}
	for p := range g.Outs {
		words := e.outs[p]
		for w, r := range g.Outs[p].Sources {
			words[w] = deref(r)
		}
	}
	return e.outs, nil
}
