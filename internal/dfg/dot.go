package dfg

import (
	"fmt"
	"strings"
)

// Dot renders the graph in Graphviz format: input ports on top, output
// ports at the bottom, one node per instruction — the conventional way
// to look at accelerator DFGs (Figure 3a).
func (g *Graph) Dot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	b.WriteString("  rankdir=TB;\n  node [fontname=\"monospace\"];\n")

	b.WriteString("  { rank=source; ")
	for i, p := range g.Ins {
		fmt.Fprintf(&b, "in%d [shape=invhouse, label=\"%s (%d)\"]; ", i, p.Name, p.Width)
	}
	b.WriteString("}\n  { rank=sink; ")
	for i, p := range g.Outs {
		fmt.Fprintf(&b, "out%d [shape=house, label=\"%s (%d)\"]; ", i, p.Name, p.Width())
	}
	b.WriteString("}\n")

	name := func(id NodeID) string { return fmt.Sprintf("n%d", id) }
	for _, n := range g.Nodes {
		label := n.Op.String()
		if n.Name != "" {
			label = n.Name + ": " + label
		}
		fmt.Fprintf(&b, "  %s [shape=box, label=%q];\n", name(n.ID), label)
	}
	edge := func(r Ref, dst string, port int) {
		switch r.Kind {
		case RefPort:
			fmt.Fprintf(&b, "  in%d -> %s [label=\".%d\"];\n", r.Port, dst, r.Word)
		case RefNode:
			fmt.Fprintf(&b, "  %s -> %s;\n", name(r.Node), dst)
		case RefImm:
			fmt.Fprintf(&b, "  imm_%s_%d [shape=plaintext, label=\"$%d\"];\n  imm_%s_%d -> %s;\n",
				dst, port, r.Imm, dst, port, dst)
		}
	}
	for _, n := range g.Nodes {
		for i, a := range n.Args {
			edge(a, name(n.ID), i)
		}
	}
	for pi, p := range g.Outs {
		for _, r := range p.Sources {
			edge(r, fmt.Sprintf("out%d", pi), 0)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
