package lint

import (
	"fmt"
	"math/bits"
	"sort"

	"softbrain/internal/cgra"
	"softbrain/internal/core"
	"softbrain/internal/dfg"
	"softbrain/internal/isa"
)

// wordBytes is the vector-port word size: input ports deliver 64-bit
// words to the CGRA regardless of the stream's element size.
const wordBytes = 8

// access is one stream's footprint in an ordering window. ordPort names
// the output vector port driving the access, or -1: the dispatcher
// scoreboard serializes streams reading the same output port, so two
// writes driven by one port are ordered even without a barrier. inPort
// names the input vector port a read feeds, or -1; it identifies the
// read half of a pipelined read-modify-write (see addMem). opaque marks
// an indirect access whose index range the value pre-pass could not
// bound: its footprint is unknown, so it overlaps nothing under the
// default analysis and everything under Opts.StrictIndirect.
type access struct {
	idx     int
	write   bool
	pat     isa.Affine
	ordPort int
	inPort  int
	opaque  bool
	what    string
}

type checker struct {
	p        *core.Program
	fabric   *cgra.Fabric
	scratch  uint64
	opts     Opts
	ranges   map[int]idxRange // trace index -> resolved index range
	findings []Finding
	bytes    map[string]uint64 // check family -> bytes analyzed

	// ignoreBarriers suppresses the window clearing of the barrier
	// commands (SD_Config still fences), so every conflicting pair is
	// enumerated regardless of placement — the dependence query behind
	// Dependences (deps.go). Never set by the public entry points.
	ignoreBarriers bool

	// Active configuration (nil before the first SD_Config).
	sched  *cgra.Schedule
	inMap  map[int]int // hardware input port -> DFG input port
	outMap map[int]int // hardware output port -> DFG output port

	// rmwDeps maps each hardware output port to the set of hardware
	// input ports the active graph routes into it — the dependence that
	// legitimizes pipelined read-modify-write over identical footprints.
	rmwDeps map[int]map[int]bool

	// Race windows. SD_Config is a full fence at dispatch (it issues
	// only on an idle fabric and nothing younger passes it), so all
	// three clear on reconfiguration as well as on their barriers.
	mem   []access // memory accesses since the last SD_Barrier_All
	padRd []access // scratchpad reads since the last Rd/All barrier
	padWr []access // scratchpad writes since the last Wr/All barrier

	// Balance accounting for the current configuration epoch.
	inBytes  map[int]uint64 // mapped input port -> bytes streamed in
	outBytes map[int]uint64 // mapped output port -> bytes consumed
	indIn    map[int]uint64 // indirect port -> index bytes staged
	indOut   map[int]uint64 // indirect port -> index bytes consumed
	lastIn   map[int]int    // input port -> last trace index touching it
	lastOut  map[int]int
}

func newChecker(p *core.Program, cfg core.Config, o Opts) *checker {
	c := &checker{
		p: p, fabric: cfg.Fabric, scratch: uint64(cfg.ScratchBytes),
		opts:   o,
		ranges: indexRanges(p, cfg),
		bytes:  map[string]uint64{},
	}
	c.resetEpoch()
	return c
}

func (c *checker) resetEpoch() {
	c.inBytes = map[int]uint64{}
	c.outBytes = map[int]uint64{}
	c.indIn = map[int]uint64{}
	c.indOut = map[int]uint64{}
	c.lastIn = map[int]int{}
	c.lastOut = map[int]int{}
}

func (c *checker) report(idx int, check, code string, sev Severity, format string, args ...any) {
	c.findings = append(c.findings, Finding{
		Prog: c.p.Name, Index: idx, Check: check, Code: code, Sev: sev,
		Other: -1, Unit: -1, OtherUnit: -1, Phase: -1,
		Msg: fmt.Sprintf(format, args...),
	})
}

// reportRace records a pairwise race finding carrying the older access
// and the weakest barrier kind that orders the pair when inserted
// immediately before idx.
func (c *checker) reportRace(idx, other int, code string, need isa.Kind, format string, args ...any) {
	c.findings = append(c.findings, Finding{
		Prog: c.p.Name, Index: idx, Check: CheckRace, Code: code, Sev: SevError,
		Other: other, Unit: -1, OtherUnit: -1, Phase: -1, Barrier: need,
		Msg: fmt.Sprintf(format, args...),
	})
}

// countBytes credits n analyzed bytes to a check family, saturating.
func (c *checker) countBytes(check string, n uint64) {
	c.bytes[check] = satAdd(c.bytes[check], n)
}

// satMul multiplies with saturation; byte accounting never wraps.
func satMul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	if hi != 0 {
		return ^uint64(0)
	}
	return lo
}

// satAdd adds with saturation.
func satAdd(a, b uint64) uint64 {
	s, carry := bits.Add64(a, b, 0)
	if carry != 0 {
		return ^uint64(0)
	}
	return s
}

// command dispatches one trace operation through every check family.
func (c *checker) command(idx int, cmd isa.Command) {
	switch k := cmd.(type) {
	case isa.Config:
		c.configure(idx, k)
	case isa.MemScratch:
		if c.memPatternOK(idx, k.Src, "SD_Mem_Scratch source") {
			c.addMem(access{idx: idx, pat: k.Src, ordPort: -1, inPort: -1, what: "SD_Mem_Scratch read"})
		}
		n, _ := k.Src.TotalBytesChecked()
		c.padWrite(idx, isa.Linear(k.ScratchAddr, n), -1, "SD_Mem_Scratch write")
	case isa.MemPort:
		if c.memPatternOK(idx, k.Src, "SD_Mem_Port source") {
			c.addMem(access{idx: idx, pat: k.Src, ordPort: -1, inPort: int(k.Dst), what: "SD_Mem_Port read"})
		}
		c.inPortWrite(idx, k.Dst, k.Src.TotalBytes())
	case isa.ScratchPort:
		c.padRead(idx, k.Src, "SD_Scratch_Port read")
		c.inPortWrite(idx, k.Dst, k.Src.TotalBytes())
	case isa.ConstPort:
		c.inPortWrite(idx, k.Dst, satMul(k.Count, uint64(k.Elem)))
	case isa.CleanPort:
		c.outPortRead(idx, k.Src, satMul(k.Count, uint64(k.Elem)))
	case isa.PortPort:
		n := satMul(k.Count, uint64(k.Elem))
		c.outPortRead(idx, k.Src, n)
		c.inPortWrite(idx, k.Dst, n)
	case isa.PortScratch:
		n := satMul(k.Count, uint64(k.Elem))
		c.outPortRead(idx, k.Src, n)
		c.padWrite(idx, isa.Linear(k.ScratchAddr, n), int(k.Src), "SD_Port_Scratch write")
	case isa.PortMem:
		c.outPortRead(idx, k.Src, k.Dst.TotalBytes())
		if c.memPatternOK(idx, k.Dst, "SD_Port_Mem destination") {
			c.addMem(access{idx: idx, write: true, pat: k.Dst, ordPort: int(k.Src), inPort: -1, what: "SD_Port_Mem write"})
		}
	case isa.IndPortPort:
		c.idxPortRead(idx, k.Idx, satMul(k.Count, uint64(k.IdxElem)))
		c.inPortWrite(idx, k.Dst, satMul(k.Count, uint64(k.DataElem)))
		c.indAccess(idx, false, -1, k.Offset, k.Scale, k.DataElem, k.Count, "SD_IndPort_Port gather")
	case isa.IndPortMem:
		c.idxPortRead(idx, k.Idx, satMul(k.Count, uint64(k.IdxElem)))
		c.outPortRead(idx, k.Src, satMul(k.Count, uint64(k.DataElem)))
		c.indAccess(idx, true, int(k.Src), k.Offset, k.Scale, k.DataElem, k.Count, "SD_IndPort_Mem scatter")
	case isa.BarrierScratchRd:
		if !c.ignoreBarriers {
			c.padRd = nil
		}
	case isa.BarrierScratchWr:
		if !c.ignoreBarriers {
			c.padWr = nil
		}
	case isa.BarrierAll:
		if !c.ignoreBarriers {
			c.mem, c.padRd, c.padWr = nil, nil, nil
		}
	}
}

// configure ends the current epoch and installs the new configuration.
func (c *checker) configure(idx int, k isa.Config) {
	c.flushEpoch(idx, true)
	c.mem, c.padRd, c.padWr = nil, nil, nil // SD_Config is a full fence
	c.sched = nil
	c.inMap, c.outMap = nil, nil
	c.rmwDeps = nil
	c.resetEpoch()

	blob, ok := c.p.Configs[k.Addr]
	if !ok {
		c.report(idx, CheckOOB, "config-missing", SevError,
			"SD_Config reads %#x, which holds no registered configuration bitstream", k.Addr)
		return
	}
	s, err := cgra.DecodeConfig(c.fabric, blob)
	if err != nil {
		c.report(idx, CheckPortConflict, "config-undecodable", SevError,
			"configuration at %#x does not decode for this fabric: %v", k.Addr, err)
		return
	}
	c.sched = s
	c.inMap = map[int]int{}
	c.outMap = map[int]int{}
	for dfgPort, hw := range s.InPortMap {
		c.inMap[hw] = dfgPort
	}
	for dfgPort, hw := range s.OutPortMap {
		c.outMap[hw] = dfgPort
	}
	c.rmwDeps = portDeps(s)
}

// portDeps computes, for each hardware output port of the schedule, the
// set of hardware input ports whose values the graph routes into it.
func portDeps(s *cgra.Schedule) map[int]map[int]bool {
	g := s.Graph
	memo := make([]map[int]bool, len(g.Nodes))
	var node func(id dfg.NodeID) map[int]bool
	var ref func(r dfg.Ref, into map[int]bool)
	ref = func(r dfg.Ref, into map[int]bool) {
		switch r.Kind {
		case dfg.RefPort:
			into[r.Port] = true
		case dfg.RefNode:
			for p := range node(r.Node) {
				into[p] = true
			}
		}
	}
	node = func(id dfg.NodeID) map[int]bool {
		if memo[id] != nil {
			return memo[id]
		}
		set := map[int]bool{}
		memo[id] = set // validated graphs are DAGs, so no cycles
		for _, a := range g.Nodes[id].Args {
			ref(a, set)
		}
		return set
	}
	deps := map[int]map[int]bool{}
	for oi, out := range g.Outs {
		set := map[int]bool{}
		for _, src := range out.Sources {
			ref(src, set)
		}
		hw := map[int]bool{}
		for dfgIn := range set {
			hw[s.InPortMap[dfgIn]] = true
		}
		deps[s.OutPortMap[oi]] = hw
	}
	return deps
}

// memPatternOK bounds-checks a memory footprint and reports oob
// findings; it returns false when the pattern is unusable for overlap
// analysis.
func (c *checker) memPatternOK(idx int, pat isa.Affine, what string) bool {
	if pat.Empty() {
		return false
	}
	n, _ := pat.TotalBytesChecked()
	c.countBytes(CheckOOB, n)
	lo, hi, ok := pat.Extent()
	if !ok {
		c.report(idx, CheckOOB, "address-wrap", SevError, "%s %v overflows the 64-bit address space", what, pat)
		return false
	}
	if hi > core.ConfigSpace {
		c.report(idx, CheckOOB, "config-space", SevError,
			"%s footprint [%#x, %#x) crosses into the configuration space at %#x", what, lo, hi, core.ConfigSpace)
		return false
	}
	return true
}

// padPatternOK bounds-checks a scratchpad footprint.
func (c *checker) padPatternOK(idx int, pat isa.Affine, what string) bool {
	if pat.Empty() {
		return false
	}
	n, _ := pat.TotalBytesChecked()
	c.countBytes(CheckOOB, n)
	lo, hi, ok := pat.Extent()
	if !ok {
		c.report(idx, CheckOOB, "address-wrap", SevError, "%s %v overflows the 64-bit address space", what, pat)
		return false
	}
	if hi > c.scratch {
		c.report(idx, CheckOOB, "scratch-capacity", SevError,
			"%s footprint [%#x, %#x) exceeds the %d-byte scratchpad", what, lo, hi, c.scratch)
		return false
	}
	return true
}

// indAccess enters an indirect stream's memory footprint into the race
// window. When the value pre-pass bounded the staged index stream, the
// footprint is the affine over-approximation covering every index in
// the range and participates in race and bounds checking like any
// direct stream; otherwise the access is opaque (see access). Indirect
// accesses never take the read-modify-write exemption: the footprint
// approximation says nothing about the order indices arrive in, so the
// element-wise dependence the exemption relies on cannot be established.
func (c *checker) indAccess(idx int, write bool, ordPort int, offset uint64, scale uint8, elem isa.ElemSize, count uint64, what string) {
	if count == 0 {
		return
	}
	a := access{idx: idx, write: write, ordPort: ordPort, inPort: -1, what: what}
	if r, ok := c.ranges[idx]; ok {
		pat, fits := isa.IndexFootprint(offset, scale, elem, r.lo, r.hi)
		switch {
		case !fits:
			c.report(idx, CheckOOB, "indirect-address-wrap", SevError,
				"%s address computation overflows the 64-bit address space (base %#x, scale %d, indices in [%d, %d])",
				what, offset, scale, r.lo, r.hi)
			a.opaque = true
		case c.memPatternOK(idx, pat, what):
			a.pat = pat
			a.what = fmt.Sprintf("%s (indices in [%d, %d])", what, r.lo, r.hi)
		default:
			a.opaque = true // out of bounds (reported); footprint unusable
		}
	} else {
		a.opaque = true
	}
	c.addMem(a)
}

// addMem races the access against the open memory window and records it.
// Only SD_Barrier_All orders memory streams (Section 3.3). One idiom is
// exempt: a port-driven write whose footprint is *identical* to an
// earlier read feeding an input port the active graph routes into the
// driving output port. There, written element j depends on read element
// j through the fabric, so the write can never overtake the read — the
// pipelined read-modify-write of in-place update kernels (backprop's
// weight rows). Revisiting patterns (Stride < AccessSize) stay flagged:
// a revisit reads bytes the write already replaced.
func (c *checker) addMem(a access) {
	if !a.opaque {
		n, _ := a.pat.TotalBytesChecked()
		c.countBytes(CheckRace, n)
	}
	for i := len(c.mem) - 1; i >= 0; i-- {
		o := c.mem[i]
		if !a.write && !o.write {
			continue
		}
		if a.ordPort >= 0 && a.ordPort == o.ordPort {
			continue // same output port: serialized by the scoreboard
		}
		if a.opaque || o.opaque {
			// One footprint is data-dependent. The default analysis
			// cannot prove overlap, so it stays silent; strict mode
			// assumes the worst.
			if c.opts.StrictIndirect {
				c.reportRace(a.idx, o.idx, "race-indirect-strict", isa.KindBarrierAll,
					"%s may overlap the %s at trace[%d]: a data-dependent indirect footprint is unordered without an SD_Barrier_All (strict indirect analysis)",
					a.what, o.what, o.idx)
				if !c.opts.Exhaustive {
					break
				}
			}
			continue
		}
		if a.write && !o.write && a.ordPort >= 0 && o.inPort >= 0 &&
			a.pat == o.pat && (a.pat.Strides <= 1 || a.pat.Stride >= a.pat.AccessSize) &&
			c.rmwDeps[a.ordPort][o.inPort] {
			continue // pipelined read-modify-write through the fabric
		}
		if a.pat.Overlaps(o.pat) {
			c.reportRace(a.idx, o.idx, "race-mem", isa.KindBarrierAll,
				"%s %v overlaps the %s at trace[%d] (%v) with no intervening SD_Barrier_All",
				a.what, a.pat, o.what, o.idx, o.pat)
			if !c.opts.Exhaustive {
				break
			}
		}
	}
	c.mem = append(c.mem, a)
}

// padRead races a scratchpad read against unordered scratchpad writes:
// a read of freshly written data needs SD_Barrier_Scratch_Wr first.
func (c *checker) padRead(idx int, pat isa.Affine, what string) {
	if !c.padPatternOK(idx, pat, what) {
		return
	}
	a := access{idx: idx, pat: pat, ordPort: -1, what: what}
	n, _ := pat.TotalBytesChecked()
	c.countBytes(CheckRace, n)
	for i := len(c.padWr) - 1; i >= 0; i-- {
		if o := c.padWr[i]; a.pat.Overlaps(o.pat) {
			c.reportRace(idx, o.idx, "race-scratch-read-after-write", isa.KindBarrierScratchWr,
				"%s %v overlaps the %s at trace[%d] (%v) with no intervening SD_Barrier_Scratch_Wr",
				what, pat, o.what, o.idx, o.pat)
			if !c.opts.Exhaustive {
				break
			}
		}
	}
	c.padRd = append(c.padRd, a)
}

// padWrite races a scratchpad write against unordered reads (needs
// SD_Barrier_Scratch_Rd) and writes (needs SD_Barrier_Scratch_Wr).
func (c *checker) padWrite(idx int, pat isa.Affine, ordPort int, what string) {
	if !c.padPatternOK(idx, pat, what) {
		return
	}
	a := access{idx: idx, write: true, pat: pat, ordPort: ordPort, what: what}
	n, _ := pat.TotalBytesChecked()
	c.countBytes(CheckRace, n)
	for i := len(c.padRd) - 1; i >= 0; i-- {
		if o := c.padRd[i]; a.pat.Overlaps(o.pat) {
			c.reportRace(idx, o.idx, "race-scratch-write-after-read", isa.KindBarrierScratchRd,
				"%s %v overlaps the %s at trace[%d] (%v) with no intervening SD_Barrier_Scratch_Rd",
				what, pat, o.what, o.idx, o.pat)
			if !c.opts.Exhaustive {
				break
			}
		}
	}
	for i := len(c.padWr) - 1; i >= 0; i-- {
		o := c.padWr[i]
		if a.ordPort >= 0 && a.ordPort == o.ordPort {
			continue
		}
		if a.pat.Overlaps(o.pat) {
			c.reportRace(idx, o.idx, "race-scratch-write-after-write", isa.KindBarrierScratchWr,
				"%s %v overlaps the %s at trace[%d] (%v) with no intervening SD_Barrier_Scratch_Wr",
				what, pat, o.what, o.idx, o.pat)
			if !c.opts.Exhaustive {
				break
			}
		}
	}
	c.padWr = append(c.padWr, a)
}

// inPortWrite validates and accounts a stream delivering bytes into an
// input vector port.
func (c *checker) inPortWrite(idx int, port isa.InPortID, n uint64) {
	p := int(port)
	if p >= len(c.fabric.InPorts) {
		c.report(idx, CheckPortConflict, "port-missing", SevError,
			"targets input port %d; the fabric has %d", p, len(c.fabric.InPorts))
		return
	}
	c.lastIn[p] = idx
	if c.fabric.InPorts[p].Indirect {
		c.indIn[p] = satAdd(c.indIn[p], n)
		c.countBytes(CheckBalance, n)
		return
	}
	if c.sched == nil {
		c.report(idx, CheckPortConflict, "port-unconfigured", SevError,
			"targets input port %d before any SD_Config defines the fabric's ports", p)
		return
	}
	if _, mapped := c.inMap[p]; !mapped {
		c.report(idx, CheckPortConflict, "port-unmapped", SevError,
			"targets input port %d, which configuration %s does not define", p, c.sched.Graph.Name)
		return
	}
	c.inBytes[p] = satAdd(c.inBytes[p], n)
	c.countBytes(CheckBalance, n)
}

// idxPortRead validates and accounts an indirect stream consuming index
// bytes from an indirect-capable port.
func (c *checker) idxPortRead(idx int, port isa.InPortID, n uint64) {
	p := int(port)
	if p >= len(c.fabric.InPorts) {
		c.report(idx, CheckPortConflict, "port-missing", SevError,
			"consumes indices from input port %d; the fabric has %d", p, len(c.fabric.InPorts))
		return
	}
	if !c.fabric.InPorts[p].Indirect {
		c.report(idx, CheckPortConflict, "port-not-indirect", SevError,
			"consumes indices from port %d, which is not indirect-capable", p)
		return
	}
	c.lastIn[p] = idx
	c.indOut[p] = satAdd(c.indOut[p], n)
	c.countBytes(CheckBalance, n)
}

// outPortRead validates and accounts a stream consuming bytes from an
// output vector port.
func (c *checker) outPortRead(idx int, port isa.OutPortID, n uint64) {
	p := int(port)
	if p >= len(c.fabric.OutPorts) {
		c.report(idx, CheckPortConflict, "port-missing", SevError,
			"reads output port %d; the fabric has %d", p, len(c.fabric.OutPorts))
		return
	}
	if c.sched == nil {
		c.report(idx, CheckPortConflict, "port-unconfigured", SevError,
			"reads output port %d before any SD_Config defines the fabric's ports", p)
		return
	}
	c.lastOut[p] = idx
	if _, mapped := c.outMap[p]; !mapped {
		c.report(idx, CheckPortConflict, "port-unmapped", SevError,
			"reads output port %d, which configuration %s does not define", p, c.sched.Graph.Name)
		return
	}
	c.outBytes[p] = satAdd(c.outBytes[p], n)
	c.countBytes(CheckBalance, n)
}

// finish closes the trailing epoch and warns when the program ends with
// writes no barrier has ordered (results may not be architecturally
// visible to the host). The tally is window-based, so a program whose
// final command is a barrier-equivalent drain (SD_Barrier_All, or the
// scratch barriers for scratch writes) is clean: the barrier emptied
// the windows. Indirect scatters count like any other write — opaque or
// not, an unordered SD_IndPort_Mem leaves results invisible to the host.
func (c *checker) finish() {
	c.flushEpoch(len(c.p.Trace)-1, false)
	unordered := len(c.padWr)
	for _, a := range c.mem {
		if a.write {
			unordered++
		}
	}
	if unordered > 0 {
		c.findings = append(c.findings, Finding{
			Prog: c.p.Name, Index: len(c.p.Trace) - 1, Check: CheckRace,
			Code: "trailing-unordered-write", Sev: SevWarning,
			Other: -1, Unit: -1, OtherUnit: -1, Phase: -1, Barrier: isa.KindBarrierAll,
			Msg: fmt.Sprintf("program ends with %d write stream(s) not ordered by a barrier; end the phase with SD_Barrier_All", unordered),
		})
	}
}

// flushEpoch runs the balance checks over the closing configuration
// epoch. At a reconfiguration, residue is a port-conflict — leftover
// bytes buffered in a vector port are consumed by the *next*
// configuration's dataflow graph; at the end of the trace it is a
// balance error.
func (c *checker) flushEpoch(idx int, reconfig bool) {
	residue := CheckBalance
	if reconfig {
		residue = CheckPortConflict
	}

	// Indirect ports: staged index bytes must match consumed exactly.
	for _, p := range sortedKeys(c.indIn, c.indOut) {
		in, out := c.indIn[p], c.indOut[p]
		at := c.lastIn[p]
		switch {
		case out > in:
			c.report(at, CheckBalance, "index-underrun", SevError,
				"indirect streams consume %d index bytes from port %d but only %d are staged: the consumer deadlocks", out, p, in)
		case in > out:
			c.report(at, residue, "index-residue", SevError,
				"indirect port %d is left holding %d unconsumed index bytes%s", p, in-out, residueNote(reconfig))
		}
	}

	if c.sched == nil {
		return
	}
	g := c.sched.Graph

	// Input ports: every mapped port must deliver a whole number of
	// instances, and the same number as every other port.
	type portCount struct {
		hw, dfg   int
		instances uint64
	}
	var counts []portCount
	partial := false
	for _, hw := range sortedKeys(c.inBytes) {
		dfgPort := c.inMap[hw]
		instBytes := uint64(g.Ins[dfgPort].Width) * wordBytes
		n := c.inBytes[hw]
		if n%instBytes != 0 {
			partial = true
			c.report(c.lastIn[hw], residue, "partial-instance", SevError,
				"input port %d (%s.%s) is fed %d bytes, not a multiple of its %d-byte instance (width %d words)",
				hw, g.Name, g.Ins[dfgPort].Name, n, instBytes, g.Ins[dfgPort].Width)
			continue
		}
		counts = append(counts, portCount{hw, dfgPort, n / instBytes})
	}
	// A mapped port never fed while its siblings stream starves the
	// dataflow: count it as zero instances.
	if len(counts) > 0 || partial {
		for dfgPort, hw := range c.sched.InPortMap {
			if _, fed := c.inBytes[hw]; !fed {
				counts = append(counts, portCount{hw, dfgPort, 0})
			}
		}
	}
	instances := uint64(0)
	consistent := !partial
	if len(counts) > 0 {
		instances = counts[0].instances
		for _, pc := range counts[1:] {
			if pc.instances != instances {
				consistent = false
			}
		}
	}
	if consistent && len(counts) > 0 {
		// All equal; nothing to report for inputs.
	} else if !partial && len(counts) > 0 {
		// Anchor at the last stream touching any counted port.
		var parts []string
		at := 0
		for _, pc := range counts {
			parts = append(parts, fmt.Sprintf("%s=%d", g.Ins[pc.dfg].Name, pc.instances))
			if t := c.lastTouchIn(pc.hw); t > at {
				at = t
			}
		}
		c.report(at, residue, "instance-mismatch", SevError,
			"input ports of %s receive unequal instance counts (%s): the dataflow starves on the short port%s",
			g.Name, join(parts), residueNote(reconfig))
		consistent = false
	}

	// Output ports: consumption must match production exactly. Skip when
	// the input side is already inconsistent — the instance count is
	// ill-defined and every output diagnostic would be noise.
	if !consistent {
		return
	}
	for dfgPort, hw := range c.sched.OutPortMap {
		produced := satMul(instances, uint64(g.Outs[dfgPort].BytesPerInstance()))
		consumed := c.outBytes[hw]
		if consumed == produced {
			continue
		}
		at, ok := c.lastOut[hw]
		if !ok {
			at = idx
		}
		switch {
		case consumed > produced:
			c.report(at, CheckBalance, "output-overconsumed", SevError,
				"streams consume %d bytes from output port %d (%s.%s) but %d instances produce only %d: the consumer deadlocks",
				consumed, hw, g.Name, g.Outs[dfgPort].Name, instances, produced)
		default:
			c.report(at, residue, "output-residue", SevError,
				"output port %d (%s.%s) produces %d bytes over %d instances but streams consume only %d%s",
				hw, g.Name, g.Outs[dfgPort].Name, produced, instances, consumed, residueNote(reconfig))
		}
	}
}

func (c *checker) lastTouchIn(hw int) int {
	if t, ok := c.lastIn[hw]; ok {
		return t
	}
	return 0
}

func residueNote(reconfig bool) string {
	if reconfig {
		return "; SD_Config retargets the fabric while the data is still buffered"
	}
	return ""
}

func join(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}

// sortedKeys merges and sorts the key sets of the given maps so
// findings come out in a deterministic order.
func sortedKeys(ms ...map[int]uint64) []int {
	seen := map[int]bool{}
	var keys []int
	for _, m := range ms {
		for k := range m {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	sort.Ints(keys)
	return keys
}
