package lint

import (
	"fmt"
	"sort"
	"strings"

	"softbrain/internal/core"
	"softbrain/internal/isa"
)

// This file is the cluster-scope analysis: the machine checker proves a
// single unit's streams ordered, but a core.Cluster runs several units
// over one backing memory with no inter-unit ordering primitive at all
// — units synchronize only when a Run returns, i.e. at pipeline phase
// boundaries. The parallel scheduler is byte-identical to the
// sequential one *only because* clustered workloads keep their DRAM
// footprints disjoint; nothing at runtime verifies that convention, so
// this pass does, symbolically:
//
//	inter-unit-race  two units touch overlapping DRAM bytes anywhere in
//	                 the pipeline and at least one writes: the verified
//	                 discipline is disjoint partitioning, so any
//	                 cross-unit sharing with a writer must go through a
//	                 declared region. Intra-program barriers are
//	                 irrelevant here — SD_Barrier_* orders one unit's
//	                 streams and says nothing about another unit's.
//	shared-region    the checked relaxation of all-disjoint: a declared
//	                 Region may be shared iff exactly one unit writes
//	                 it, every foreign reader runs in a phase strictly
//	                 after the writer's last write (the phase boundary
//	                 is the inter-unit barrier), and every footprint
//	                 touching the region lies entirely inside it.
//
// Read-read overlap outside declared regions stays legal without
// declaration — broadcast inputs (the dnn units sharing one activation
// image) are the common case and are schedule-independent.
//
// Indirect footprints resolve through the same value pre-pass as the
// machine checker (values.go), including scratch/DRAM round trips; an
// access the pass cannot bound is silently excluded by default and
// conflicts with every other unit's access under Opts.StrictIndirect —
// the same contract, lifted to cluster scope.

// Region declares one shared DRAM byte range [Lo, Hi) of a checked
// pipeline. Declared regions are the only bytes where inter-unit
// overlap involving a writer is legal.
type Region struct {
	Name string `json:"name"`
	Lo   uint64 `json:"lo"`
	Hi   uint64 `json:"hi"`
}

// ClusterOpts tunes a cluster-scope analysis run.
type ClusterOpts struct {
	// Opts applies to footprint resolution (strict-indirect handling,
	// exhaustive pair reporting) exactly as at machine scope.
	Opts

	// Regions are the declared shared regions of the pipeline.
	Regions []Region
}

// CheckCluster analyzes one single-phase program set (one program per
// unit, all running concurrently) for inter-unit hazards.
func CheckCluster(progs []*core.Program, cfg core.Config, o ClusterOpts) (Result, error) {
	return CheckPipeline([][]*core.Program{progs}, cfg, o)
}

// CheckPipeline analyzes a phased program set: phases[k][u] is the
// program unit u runs in phase k, phases execute sequentially (each
// phase starts only after every unit of the previous one completed),
// and units within a phase run concurrently. The error return is
// reserved for inputs that cannot be analyzed at all: invalid
// configuration, malformed phases, programs with construction errors,
// or malformed region declarations.
func CheckPipeline(phases [][]*core.Program, cfg core.Config, o ClusterOpts) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if len(phases) == 0 || len(phases[0]) == 0 {
		return Result{}, fmt.Errorf("lint: pipeline with no phases or no units")
	}
	units := len(phases[0])
	for pi, ph := range phases {
		if len(ph) != units {
			return Result{}, fmt.Errorf("lint: phase %d has %d programs, phase 0 has %d; every phase must program every unit", pi, len(ph), units)
		}
		for u, p := range ph {
			if p == nil {
				return Result{}, fmt.Errorf("lint: phase %d unit %d has no program", pi, u)
			}
			if err := p.Err(); err != nil {
				return Result{}, fmt.Errorf("lint: phase %d unit %d (%s): %w", pi, u, p.Name, err)
			}
		}
	}
	if err := validateRegions(o.Regions); err != nil {
		return Result{}, err
	}

	c := &clusterChecker{opts: o, bytes: map[string]uint64{}}
	for pi, ph := range phases {
		for u, p := range ph {
			for _, a := range collectDRAM(p, cfg) {
				ua := uAccess{access: a, prog: p.Name, unit: u, phase: pi, region: -1}
				if !ua.opaque {
					lo, hi, ok := ua.pat.Extent()
					if !ok {
						// Unbounded reach: the machine-scope oob check
						// flags it; here it conflicts like any other
						// data-dependent footprint.
						ua.opaque = true
					} else {
						ua.lo, ua.hi = lo, hi
						n, _ := ua.pat.TotalBytesChecked()
						c.bytes[CheckInterUnit] = satAdd(c.bytes[CheckInterUnit], n)
						c.classify(&ua)
					}
				}
				c.acc = append(c.acc, ua)
			}
		}
	}
	c.pairSweep()
	c.regionRules(len(phases))

	sort.SliceStable(c.findings, func(i, j int) bool {
		a, b := c.findings[i], c.findings[j]
		if a.Phase != b.Phase {
			return a.Phase < b.Phase
		}
		if a.Unit != b.Unit {
			return a.Unit < b.Unit
		}
		if a.Index != b.Index {
			return a.Index < b.Index
		}
		if a.OtherUnit != b.OtherUnit {
			return a.OtherUnit < b.OtherUnit
		}
		return a.Other < b.Other
	})
	return Result{Findings: c.findings, Bytes: c.bytes}, nil
}

// validateRegions rejects malformed declarations: empty or inverted
// ranges, ranges reaching into the configuration space, and mutually
// overlapping regions (ownership would be ambiguous).
func validateRegions(regions []Region) error {
	for i, r := range regions {
		if r.Lo >= r.Hi {
			return fmt.Errorf("lint: shared region %s has empty or inverted range [%#x, %#x)", regionName(r, i), r.Lo, r.Hi)
		}
		if r.Hi > core.ConfigSpace {
			return fmt.Errorf("lint: shared region %s [%#x, %#x) reaches into the configuration space at %#x", regionName(r, i), r.Lo, r.Hi, core.ConfigSpace)
		}
		for j := 0; j < i; j++ {
			o := regions[j]
			if r.Lo < o.Hi && o.Lo < r.Hi {
				return fmt.Errorf("lint: shared regions %s and %s overlap", regionName(o, j), regionName(r, i))
			}
		}
	}
	return nil
}

func regionName(r Region, i int) string {
	if r.Name != "" {
		return r.Name
	}
	return fmt.Sprintf("#%d", i)
}

// uAccess is one unit's DRAM access in the cluster analysis.
type uAccess struct {
	access
	prog        string
	unit, phase int
	lo, hi      uint64 // footprint extent, valid when !opaque
	region      int    // containing declared region, or -1
}

type clusterChecker struct {
	opts     ClusterOpts
	acc      []uAccess
	findings []Finding
	bytes    map[string]uint64
}

// classify binds a bounded access to the declared region containing it.
// An access overlapping a region without lying entirely inside it is a
// shared-region error: the region boundary is the unit of ordering, so
// a straddling footprint is neither policed by the region rules nor
// safely disjoint.
func (c *clusterChecker) classify(a *uAccess) {
	for ri, r := range c.opts.Regions {
		if a.hi <= r.Lo || a.lo >= r.Hi {
			continue
		}
		if a.lo >= r.Lo && a.hi <= r.Hi {
			a.region = ri
			return
		}
		c.findings = append(c.findings, Finding{
			Prog: a.prog, Index: a.idx, Check: CheckSharedRegion, Code: "region-straddle",
			Sev: SevError, Other: -1, Unit: a.unit, OtherUnit: -1, Phase: a.phase,
			Msg: fmt.Sprintf("%s footprint [%#x, %#x) straddles the boundary of shared region %s [%#x, %#x); shared-region footprints must lie entirely inside the region",
				a.what, a.lo, a.hi, regionName(r, ri), r.Lo, r.Hi),
		})
		return
	}
}

// pairSweep sweeps every bounded access of the whole pipeline by
// extent and reports every cross-unit overlapping pair with a writer
// that no shared region covers. Disjoint partitioning is verified over
// the entire phase sequence, not per phase: two units sharing bytes in
// different phases happen to be ordered by the phase boundary, but
// undeclared sharing is still a partition violation — the declared
// region is what states the intent and gets the ordering checked. The
// sweep keeps the candidate set to extent-overlapping accesses, so
// well-partitioned traces (the common case) cost O(n log n) regardless
// of how many same-unit or read-read extents coincide.
func (c *clusterChecker) pairSweep() {
	var bounded, opaque []*uAccess
	for i := range c.acc {
		a := &c.acc[i]
		if a.opaque {
			opaque = append(opaque, a)
		} else {
			bounded = append(bounded, a)
		}
	}

	// Data-dependent footprints: silent by default, conflicting with
	// every other unit's access under strict indirect analysis.
	if c.opts.StrictIndirect {
		for _, a := range opaque {
			for i := range c.acc {
				o := &c.acc[i]
				if o.unit == a.unit {
					continue
				}
				if !a.write && !o.write {
					continue
				}
				c.findings = append(c.findings, Finding{
					Prog: a.prog, Index: a.idx, Check: CheckInterUnit, Code: "inter-unit-indirect",
					Sev: SevError, Other: o.idx, Unit: a.unit, OtherUnit: o.unit, Phase: a.phase,
					Msg: fmt.Sprintf("unit %d %s has a data-dependent footprint that may overlap unit %d %s: units have no ordering primitive, so data-dependent sharing is never provably partitioned (strict indirect analysis)",
						a.unit, a.what, o.unit, o.what),
				})
				if !c.opts.Exhaustive {
					break
				}
			}
		}
	}

	// Interval sweep over extents; [lo, hi) is half-open, so end events
	// at an address precede start events at the same address.
	type ev struct {
		addr  uint64
		start bool
		a     *uAccess
	}
	evs := make([]ev, 0, 2*len(bounded))
	for _, a := range bounded {
		if a.lo == a.hi {
			continue
		}
		evs = append(evs, ev{a.lo, true, a}, ev{a.hi, false, a})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].addr != evs[j].addr {
			return evs[i].addr < evs[j].addr
		}
		if evs[i].start != evs[j].start {
			return !evs[i].start
		}
		if evs[i].a.unit != evs[j].a.unit {
			return evs[i].a.unit < evs[j].a.unit
		}
		return evs[i].a.idx < evs[j].a.idx
	})
	var active []*uAccess
	for _, e := range evs {
		if !e.start {
			for i, o := range active {
				if o == e.a {
					active[i] = active[len(active)-1]
					active = active[:len(active)-1]
					break
				}
			}
			continue
		}
		a := e.a
		for _, o := range active {
			if o.unit == a.unit {
				continue
			}
			if !a.write && !o.write {
				continue
			}
			if a.region >= 0 && a.region == o.region {
				continue // both inside one declared region: region rules police it
			}
			if !a.pat.Overlaps(o.pat) {
				continue
			}
			lo, hi := a.lo, a.hi
			if o.lo > lo {
				lo = o.lo
			}
			if o.hi < hi {
				hi = o.hi
			}
			why := "units synchronize only at phase boundaries, so concurrent access to shared bytes is schedule-dependent"
			if a.phase != o.phase {
				why = fmt.Sprintf("the accesses run in phases %d and %d, but undeclared cross-unit sharing violates the disjoint-partitioning discipline the cluster contract verifies", a.phase, o.phase)
			}
			c.findings = append(c.findings, Finding{
				Prog: a.prog, Index: a.idx, Check: CheckInterUnit, Code: "inter-unit-overlap",
				Sev: SevError, Other: o.idx, Unit: a.unit, OtherUnit: o.unit, Phase: a.phase,
				Msg: fmt.Sprintf("unit %d %s %v overlaps unit %d %s at trace[%d] (%v) on [%#x, %#x): %s; partition the footprints or declare a shared region and order the readers a phase after the writer",
					a.unit, a.what, a.pat, o.unit, o.what, o.idx, o.pat, lo, hi, why),
			})
			if !c.opts.Exhaustive {
				break
			}
		}
		active = append(active, a)
	}
}

// regionRules enforces the checked shared-region pipeline contract over
// the whole phase sequence: exactly one unit writes a region, and every
// foreign reader runs in a phase strictly after the writer's last write
// — the phase boundary (Cluster.Run returning) is the only inter-unit
// barrier, so same-phase or earlier reads observe a schedule-dependent
// mix of old and new bytes.
func (c *clusterChecker) regionRules(phases int) {
	for ri, r := range c.opts.Regions {
		firstWriter := -1
		lastWritePhase := -1
		var writes []*uAccess
		for i := range c.acc {
			a := &c.acc[i]
			if a.region != ri || !a.write {
				continue
			}
			writes = append(writes, a)
			if firstWriter < 0 {
				firstWriter = a.unit
			}
			if a.phase > lastWritePhase {
				lastWritePhase = a.phase
			}
		}
		for _, a := range writes {
			if a.unit == firstWriter {
				continue
			}
			c.findings = append(c.findings, Finding{
				Prog: a.prog, Index: a.idx, Check: CheckSharedRegion, Code: "region-multi-writer",
				Sev: SevError, Other: -1, Unit: a.unit, OtherUnit: firstWriter, Phase: a.phase,
				Msg: fmt.Sprintf("unit %d %s writes shared region %s, which unit %d already writes; a checked shared region has exactly one writer",
					a.unit, a.what, regionName(r, ri), firstWriter),
			})
		}
		if firstWriter < 0 {
			continue // read-only sharing needs no ordering
		}
		for i := range c.acc {
			a := &c.acc[i]
			if a.region != ri || a.write || a.unit == firstWriter {
				continue
			}
			if a.phase <= lastWritePhase {
				c.findings = append(c.findings, Finding{
					Prog: a.prog, Index: a.idx, Check: CheckSharedRegion, Code: "region-unordered-read",
					Sev: SevError, Other: -1, Unit: a.unit, OtherUnit: firstWriter, Phase: a.phase,
					Msg: fmt.Sprintf("unit %d %s reads shared region %s in phase %d, but writer unit %d still writes it in phase %d; readers must run in a phase strictly after the writer's last write (the phase boundary is the inter-unit barrier)",
						a.unit, a.what, regionName(r, ri), a.phase, firstWriter, lastWritePhase),
				})
			}
		}
	}
}

// collectDRAM walks one unit's trace and returns every DRAM access with
// its resolved footprint (or its opacity), *ignoring* intra-unit
// barriers: a barrier orders one unit's streams against each other and
// says nothing about another unit's, so the cluster analysis must see
// the program's entire footprint.
func collectDRAM(p *core.Program, cfg core.Config) []access {
	ranges := indexRanges(p, cfg)
	var out []access
	add := func(idx int, write bool, pat isa.Affine, what string) {
		if pat.Empty() {
			return
		}
		out = append(out, access{idx: idx, write: write, pat: pat, ordPort: -1, inPort: -1, what: what})
	}
	addInd := func(idx int, write bool, offset uint64, scale uint8, elem isa.ElemSize, count uint64, what string) {
		if count == 0 {
			return
		}
		a := access{idx: idx, write: write, ordPort: -1, inPort: -1, what: what, opaque: true}
		if r, ok := ranges[idx]; ok {
			if pat, fits := isa.IndexFootprint(offset, scale, elem, r.lo, r.hi); fits {
				a.pat, a.opaque = pat, false
				a.what = fmt.Sprintf("%s (indices in [%d, %d])", what, r.lo, r.hi)
			}
		}
		out = append(out, a)
	}
	for i, op := range p.Trace {
		switch k := op.Cmd.(type) {
		case isa.MemScratch:
			add(i, false, k.Src, "SD_Mem_Scratch read")
		case isa.MemPort:
			add(i, false, k.Src, "SD_Mem_Port read")
		case isa.PortMem:
			add(i, true, k.Dst, "SD_Port_Mem write")
		case isa.IndPortPort:
			addInd(i, false, k.Offset, k.Scale, k.DataElem, k.Count, "SD_IndPort_Port gather")
		case isa.IndPortMem:
			addInd(i, true, k.Offset, k.Scale, k.DataElem, k.Count, "SD_IndPort_Mem scatter")
		}
	}
	return out
}

// ClusterHook adapts the cluster analysis to the core.Cluster Lint
// hook: it refuses any phased program set with error-severity findings,
// machine-scope (each program analyzed individually) or cluster-scope.
// Install it with
//
//	cl.Lint = lint.ClusterHook(cfg, lint.ClusterOpts{Regions: ...})
//
// and run through Cluster.RunStrict or Cluster.RunPipelineStrict.
func ClusterHook(cfg core.Config, o ClusterOpts) func([][]*core.Program) error {
	return func(phases [][]*core.Program) error {
		var errs []Finding
		for _, ph := range phases {
			for _, p := range ph {
				fs, err := CheckWith(p, cfg, o.Opts)
				if err != nil {
					return err
				}
				errs = append(errs, Errors(fs)...)
			}
		}
		r, err := CheckPipeline(phases, cfg, o)
		if err != nil {
			return err
		}
		errs = append(errs, Errors(r.Findings)...)
		if len(errs) == 0 {
			return nil
		}
		var b strings.Builder
		fmt.Fprintf(&b, "lint: cluster program set has %d hazard(s):", len(errs))
		for _, f := range errs {
			fmt.Fprintf(&b, "\n  %v", f)
		}
		return fmt.Errorf("%s", b.String())
	}
}
