package lint_test

import (
	"math"
	"testing"

	"softbrain/internal/core"
	"softbrain/internal/dfg"
	"softbrain/internal/isa"
	"softbrain/internal/lint"
)

// probe is the (check ID, trace index) pair a seeded hazard must produce.
type probe struct {
	check string
	idx   int
}

// newProg builds a program configured with the two-input adder graph
// (A + B -> C, one word each): one instance consumes 8 bytes per input
// port and produces 8 bytes on C.
func newProg(t *testing.T) (*core.Program, core.Config) {
	t.Helper()
	cfg := core.DefaultConfig()
	b := dfg.NewBuilder("addpair")
	a := b.Input("A", 1)
	v := b.Input("B", 1)
	b.Output("C", b.N(dfg.Add(64), a.W(0), v.W(0)))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := core.NewProgram("addpair")
	p.CompileAndConfigure(cfg.Fabric, g)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	return p, cfg
}

// emit appends cmd and returns its trace index.
func emit(t *testing.T, p *core.Program, cmd isa.Command) int {
	t.Helper()
	p.Emit(cmd)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	return len(p.Trace) - 1
}

// freePort returns a non-indirect hardware input port the active
// configuration leaves unmapped.
func freePort(t *testing.T, p *core.Program, cfg core.Config) isa.InPortID {
	t.Helper()
	used := map[isa.InPortID]bool{p.In("A"): true, p.In("B"): true}
	for hw, spec := range cfg.Fabric.InPorts {
		if !spec.Indirect && !used[isa.InPortID(hw)] {
			return isa.InPortID(hw)
		}
	}
	t.Fatal("fabric has no unmapped non-indirect input port")
	return 0
}

// checkFindings lints p and compares the (check, index) pairs of all
// findings against want.
func checkFindings(t *testing.T, p *core.Program, cfg core.Config, want []probe) {
	t.Helper()
	fs, err := lint.Check(p, cfg)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	var got []probe
	for _, f := range fs {
		got = append(got, probe{f.Check, f.Index})
	}
	if len(got) != len(want) {
		t.Fatalf("findings = %v, want %v\nfull: %v", got, want, fs)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("finding %d = %v, want %v\nfull: %v", i, got[i], want[i], fs)
		}
	}
}

func TestRaceMemWriteRead(t *testing.T) {
	p, cfg := newProg(t)
	emit(t, p, isa.MemPort{Src: isa.Linear(0x1000, 64), Dst: p.In("A")})
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 64), Dst: p.In("B")})
	// The store overlaps the A load's footprint and is not its exact
	// read-modify-write counterpart: a race without SD_Barrier_All.
	at := emit(t, p, isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x1020, 64)})
	emit(t, p, isa.BarrierAll{})
	checkFindings(t, p, cfg, []probe{{lint.CheckRace, at}})
}

func TestRaceMemClean(t *testing.T) {
	p, cfg := newProg(t)
	emit(t, p, isa.MemPort{Src: isa.Linear(0x1000, 64), Dst: p.In("A")})
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 64), Dst: p.In("B")})
	emit(t, p, isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x3000, 64)})
	emit(t, p, isa.BarrierAll{})
	checkFindings(t, p, cfg, nil)
}

func TestRaceRMWExempt(t *testing.T) {
	// In-place update: C streams back over exactly the bytes A read, and
	// the graph routes A into C — the pipelined read-modify-write idiom
	// must not be flagged.
	p, cfg := newProg(t)
	emit(t, p, isa.MemPort{Src: isa.Linear(0x1000, 64), Dst: p.In("A")})
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 64), Dst: p.In("B")})
	emit(t, p, isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x1000, 64)})
	emit(t, p, isa.BarrierAll{})
	checkFindings(t, p, cfg, nil)
}

func TestRaceScratchReadAfterWrite(t *testing.T) {
	p, cfg := newProg(t)
	emit(t, p, isa.MemScratch{Src: isa.Linear(0x1000, 64), ScratchAddr: 0})
	// Reading the freshly written region without SD_Barrier_Scratch_Wr.
	at := emit(t, p, isa.ScratchPort{Src: isa.Linear(0, 64), Dst: p.In("A")})
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 64), Dst: p.In("B")})
	emit(t, p, isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x3000, 64)})
	emit(t, p, isa.BarrierAll{})
	checkFindings(t, p, cfg, []probe{{lint.CheckRace, at}})
}

func TestRaceScratchBarrierClean(t *testing.T) {
	p, cfg := newProg(t)
	emit(t, p, isa.MemScratch{Src: isa.Linear(0x1000, 64), ScratchAddr: 0})
	emit(t, p, isa.BarrierScratchWr{})
	emit(t, p, isa.ScratchPort{Src: isa.Linear(0, 64), Dst: p.In("A")})
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 64), Dst: p.In("B")})
	emit(t, p, isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x3000, 64)})
	emit(t, p, isa.BarrierAll{})
	checkFindings(t, p, cfg, nil)
}

func TestRaceScratchWriteAfterRead(t *testing.T) {
	p, cfg := newProg(t)
	emit(t, p, isa.ScratchPort{Src: isa.Linear(0, 64), Dst: p.In("A")})
	// Overwriting the region still being read needs SD_Barrier_Scratch_Rd.
	at := emit(t, p, isa.MemScratch{Src: isa.Linear(0x1000, 64), ScratchAddr: 0})
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 64), Dst: p.In("B")})
	emit(t, p, isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x3000, 64)})
	emit(t, p, isa.BarrierAll{})
	checkFindings(t, p, cfg, []probe{{lint.CheckRace, at}})
}

func TestPortConflictUnmapped(t *testing.T) {
	p, cfg := newProg(t)
	free := freePort(t, p, cfg)
	emit(t, p, isa.MemPort{Src: isa.Linear(0x1000, 64), Dst: p.In("A")})
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 64), Dst: p.In("B")})
	at := emit(t, p, isa.MemPort{Src: isa.Linear(0x4000, 64), Dst: free})
	emit(t, p, isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x3000, 64)})
	emit(t, p, isa.BarrierAll{})
	checkFindings(t, p, cfg, []probe{{lint.CheckPortConflict, at}})
}

func TestPortConflictBeforeConfig(t *testing.T) {
	cfg := core.DefaultConfig()
	var dst isa.InPortID
	for hw, spec := range cfg.Fabric.InPorts {
		if !spec.Indirect {
			dst = isa.InPortID(hw)
			break
		}
	}
	p := core.NewProgram("preconfig")
	at := emit(t, p, isa.MemPort{Src: isa.Linear(0x1000, 64), Dst: dst})
	checkFindings(t, p, cfg, []probe{{lint.CheckPortConflict, at}})
}

func TestPortConflictIndexThroughDataPort(t *testing.T) {
	p, cfg := newProg(t)
	free := freePort(t, p, cfg)
	// Indices must stage through an indirect-capable port.
	at := emit(t, p, isa.IndPortPort{
		Idx: free, IdxElem: isa.Elem32, Offset: 0x8000, Scale: 8,
		DataElem: isa.Elem64, Count: 8, Dst: p.In("A"),
	})
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 64), Dst: p.In("B")})
	emit(t, p, isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x3000, 64)})
	emit(t, p, isa.BarrierAll{})
	checkFindings(t, p, cfg, []probe{{lint.CheckPortConflict, at}})
}

func TestPortConflictResidueAtReconfig(t *testing.T) {
	p, cfg := newProg(t)
	// Half an instance is buffered in A when SD_Config retargets the
	// fabric: the leftover bytes would feed the next graph.
	at := emit(t, p, isa.MemPort{Src: isa.Linear(0x1000, 4), Dst: p.In("A")})
	b := dfg.NewBuilder("next")
	x := b.Input("X", 1)
	b.Output("Y", b.N(dfg.Add(64), x.W(0), dfg.ImmRef(1)))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p.CompileAndConfigure(cfg.Fabric, g)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	checkFindings(t, p, cfg, []probe{{lint.CheckPortConflict, at}})
}

func TestBalancePartialInstance(t *testing.T) {
	p, cfg := newProg(t)
	// 12 bytes is one and a half instances for a width-1 port.
	at := emit(t, p, isa.MemPort{Src: isa.Linear(0x1000, 12), Dst: p.In("A")})
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 8), Dst: p.In("B")})
	emit(t, p, isa.CleanPort{Src: p.Out("C"), Elem: isa.Elem64, Count: 1})
	checkFindings(t, p, cfg, []probe{{lint.CheckBalance, at}})
}

func TestBalanceUnequalCounts(t *testing.T) {
	p, cfg := newProg(t)
	emit(t, p, isa.MemPort{Src: isa.Linear(0x1000, 16), Dst: p.In("A")})
	// B receives one instance to A's two: the dataflow starves.
	at := emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 8), Dst: p.In("B")})
	emit(t, p, isa.CleanPort{Src: p.Out("C"), Elem: isa.Elem64, Count: 2})
	checkFindings(t, p, cfg, []probe{{lint.CheckBalance, at}})
}

func TestBalanceOverconsume(t *testing.T) {
	p, cfg := newProg(t)
	emit(t, p, isa.MemPort{Src: isa.Linear(0x1000, 8), Dst: p.In("A")})
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 8), Dst: p.In("B")})
	// One instance produces 8 bytes; consuming 16 deadlocks.
	at := emit(t, p, isa.CleanPort{Src: p.Out("C"), Elem: isa.Elem64, Count: 2})
	checkFindings(t, p, cfg, []probe{{lint.CheckBalance, at}})
}

func TestBalanceUnderconsume(t *testing.T) {
	p, cfg := newProg(t)
	emit(t, p, isa.MemPort{Src: isa.Linear(0x1000, 8), Dst: p.In("A")})
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 8), Dst: p.In("B")})
	at := emit(t, p, isa.BarrierAll{})
	// C's 8 produced bytes are never drained.
	checkFindings(t, p, cfg, []probe{{lint.CheckBalance, at}})
}

func TestBalanceIndirectResidue(t *testing.T) {
	p, cfg := newProg(t)
	ind := p.IndirectIn(cfg.Fabric, 0)
	emit(t, p, isa.MemPort{Src: isa.Linear(0x4000, 8), Dst: ind})
	// Only 4 of the 8 staged index bytes are consumed.
	at := emit(t, p, isa.IndPortPort{
		Idx: ind, IdxElem: isa.Elem32, Offset: 0x8000, Scale: 8,
		DataElem: isa.Elem64, Count: 1, Dst: p.In("A"),
	})
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 8), Dst: p.In("B")})
	emit(t, p, isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x3000, 8)})
	emit(t, p, isa.BarrierAll{})
	checkFindings(t, p, cfg, []probe{{lint.CheckBalance, at}})
}

func TestBalanceClean(t *testing.T) {
	p, cfg := newProg(t)
	emit(t, p, isa.MemPort{Src: isa.Linear(0x1000, 16), Dst: p.In("A")})
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 16), Dst: p.In("B")})
	emit(t, p, isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x3000, 16)})
	emit(t, p, isa.BarrierAll{})
	checkFindings(t, p, cfg, nil)
}

func TestOOBConfigSpace(t *testing.T) {
	p, cfg := newProg(t)
	// The load's last 32 bytes lie inside the configuration space.
	at := emit(t, p, isa.MemPort{Src: isa.Linear(core.ConfigSpace-32, 64), Dst: p.In("A")})
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 64), Dst: p.In("B")})
	emit(t, p, isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x3000, 64)})
	emit(t, p, isa.BarrierAll{})
	checkFindings(t, p, cfg, []probe{{lint.CheckOOB, at}})
}

func TestOOBAddressOverflow(t *testing.T) {
	p, cfg := newProg(t)
	// 64 bytes starting 32 below the top of the address space wrap.
	at := emit(t, p, isa.MemPort{Src: isa.Linear(math.MaxUint64-32, 64), Dst: p.In("A")})
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 64), Dst: p.In("B")})
	emit(t, p, isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x3000, 64)})
	emit(t, p, isa.BarrierAll{})
	checkFindings(t, p, cfg, []probe{{lint.CheckOOB, at}})
}

func TestOOBScratchCapacity(t *testing.T) {
	p, cfg := newProg(t)
	pad := uint64(cfg.ScratchBytes)
	at := emit(t, p, isa.ScratchPort{Src: isa.Linear(pad-32, 64), Dst: p.In("A")})
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 64), Dst: p.In("B")})
	emit(t, p, isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x3000, 64)})
	emit(t, p, isa.BarrierAll{})
	checkFindings(t, p, cfg, []probe{{lint.CheckOOB, at}})
}

func TestOOBUnregisteredConfig(t *testing.T) {
	p, cfg := newProg(t)
	emit(t, p, isa.MemPort{Src: isa.Linear(0x1000, 8), Dst: p.In("A")})
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 8), Dst: p.In("B")})
	emit(t, p, isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x3000, 8)})
	emit(t, p, isa.BarrierAll{})
	at := emit(t, p, isa.Config{Addr: core.ConfigSpace + 0x7f_0000, Size: 8})
	checkFindings(t, p, cfg, []probe{{lint.CheckOOB, at}})
}

func TestOOBScratchClean(t *testing.T) {
	p, cfg := newProg(t)
	pad := uint64(cfg.ScratchBytes)
	emit(t, p, isa.MemScratch{Src: isa.Linear(0x1000, pad), ScratchAddr: 0})
	emit(t, p, isa.BarrierScratchWr{})
	emit(t, p, isa.ScratchPort{Src: isa.Linear(pad-64, 64), Dst: p.In("A")})
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 64), Dst: p.In("B")})
	emit(t, p, isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x3000, 64)})
	emit(t, p, isa.BarrierAll{})
	checkFindings(t, p, cfg, nil)
}

func TestFinalUnorderedWriteWarning(t *testing.T) {
	p, cfg := newProg(t)
	emit(t, p, isa.MemPort{Src: isa.Linear(0x1000, 8), Dst: p.In("A")})
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 8), Dst: p.In("B")})
	emit(t, p, isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x3000, 8)})
	// No trailing SD_Barrier_All: the store is never ordered.
	fs, err := lint.Check(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Check != lint.CheckRace || fs[0].Sev != lint.SevWarning {
		t.Fatalf("findings = %v, want one race warning", fs)
	}
	if len(lint.Errors(fs)) != 0 {
		t.Fatalf("Errors(%v) should be empty: warnings are not errors", fs)
	}
}
