// Package lint statically analyzes stream-dataflow programs for the
// hazards the architecture does not police at runtime. Section 3.3 of
// the paper makes explicit barriers (SD_Barrier_Scratch_Rd/Wr/All) the
// *only* ordering guarantee between concurrent streams; a program whose
// streams touch overlapping memory or scratchpad regions without one is
// silently racy — the hardware (and the simulator) return whichever
// interleaving the engines happened to take. The linter symbolically
// computes every stream's byte footprint from its isa.Affine pattern and
// walks the command trace without executing anything.
//
// Four check families, each with a stable ID usable in filters:
//
//	race          overlapping memory/scratchpad footprints with no
//	              intervening barrier of the right kind
//	port-conflict streams addressing vector ports the active CGRA
//	              configuration never defines, indices through
//	              non-indirect ports, or data left buffered in a port
//	              when SD_Config retargets the fabric
//	balance       per-epoch element counts that cannot fire cleanly:
//	              input ports fed partial instances, instance counts
//	              that differ across ports (static deadlock/starvation),
//	              output ports over- or under-consumed, index streams
//	              staging more or fewer indices than are consumed
//	oob           affine footprints that overflow the 64-bit address
//	              space, cross into the configuration space, or exceed
//	              the scratchpad capacity
//
// One idiom is deliberately exempt from the race check: the pipelined
// read-modify-write, where a memory write driven by an output port has a
// footprint identical to an earlier read feeding an input port that the
// active dataflow graph routes into that output port. Element j of the
// write then depends on element j of the read through the fabric, so the
// write can never overtake the read (backprop updates weight rows in
// place this way).
//
// Known soundness gaps, both deliberate: indirect streams
// (SD_IndPort_*) have data-dependent footprints and are excluded from
// race and bounds analysis (value-range analysis over the staged index
// patterns is future work), and patterns reported as overlapping may be
// conservative when their extents overflow uint64.
package lint

import (
	"fmt"
	"strings"

	"softbrain/internal/core"
)

// Check family IDs, stable across releases.
const (
	CheckRace         = "race"
	CheckPortConflict = "port-conflict"
	CheckBalance      = "balance"
	CheckOOB          = "oob"
)

// Severity grades a finding. Errors are hazards that produce undefined
// results or deadlock; warnings are legal-but-suspect constructions.
type Severity uint8

const (
	SevWarning Severity = iota
	SevError
)

func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// Finding is one diagnosed hazard, anchored to the command-trace index
// of the operation that completes the hazardous pair (or, for balance
// findings, the last operation touching the unbalanced port).
type Finding struct {
	Prog  string
	Index int // index into Program.Trace
	Check string
	Sev   Severity
	Msg   string
}

// String renders the finding in go vet style.
func (f Finding) String() string {
	return fmt.Sprintf("%s: trace[%d]: %s: %s", f.Prog, f.Index, f.Check, f.Msg)
}

// Check lints the program against the machine configuration that would
// run it (the fabric defines the vector ports, the config the scratchpad
// capacity). It returns the findings in trace order. The error return is
// reserved for programs that cannot be analyzed at all: a construction
// error recorded by the Program emitter, or an invalid configuration.
func Check(p *core.Program, cfg core.Config) ([]Finding, error) {
	if err := p.Err(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := newChecker(p, cfg)
	for i, op := range p.Trace {
		if op.Cmd != nil {
			c.command(i, op.Cmd)
		}
	}
	c.finish()
	return c.findings, nil
}

// Errors filters fs to error-severity findings.
func Errors(fs []Finding) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Sev == SevError {
			out = append(out, f)
		}
	}
	return out
}

// Hook adapts the linter to the core.Machine Lint hook: it refuses any
// program with error-severity findings. Install it with
//
//	m.Lint = lint.Hook(m.Config())
//
// and load programs through Machine.LoadStrict.
func Hook(cfg core.Config) func(*core.Program) error {
	return func(p *core.Program) error {
		fs, err := Check(p, cfg)
		if err != nil {
			return err
		}
		errs := Errors(fs)
		if len(errs) == 0 {
			return nil
		}
		var b strings.Builder
		fmt.Fprintf(&b, "lint: program %s has %d hazard(s):", p.Name, len(errs))
		for _, f := range errs {
			fmt.Fprintf(&b, "\n  %v", f)
		}
		return fmt.Errorf("%s", b.String())
	}
}
