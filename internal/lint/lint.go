// Package lint statically analyzes stream-dataflow programs for the
// hazards the architecture does not police at runtime. Section 3.3 of
// the paper makes explicit barriers (SD_Barrier_Scratch_Rd/Wr/All) the
// *only* ordering guarantee between concurrent streams; a program whose
// streams touch overlapping memory or scratchpad regions without one is
// silently racy — the hardware (and the simulator) return whichever
// interleaving the engines happened to take. The linter symbolically
// computes every stream's byte footprint from its isa.Affine pattern and
// walks the command trace without executing anything.
//
// Four check families, each with a stable ID usable in filters:
//
//	race          overlapping memory/scratchpad footprints with no
//	              intervening barrier of the right kind
//	port-conflict streams addressing vector ports the active CGRA
//	              configuration never defines, indices through
//	              non-indirect ports, or data left buffered in a port
//	              when SD_Config retargets the fabric
//	balance       per-epoch element counts that cannot fire cleanly:
//	              input ports fed partial instances, instance counts
//	              that differ across ports (static deadlock/starvation),
//	              output ports over- or under-consumed, index streams
//	              staging more or fewer indices than are consumed
//	oob           affine footprints that overflow the 64-bit address
//	              space, cross into the configuration space, or exceed
//	              the scratchpad capacity
//
// One idiom is deliberately exempt from the race check: the pipelined
// read-modify-write, where a memory write driven by an output port has a
// footprint identical to an earlier read feeding an input port that the
// active dataflow graph routes into that output port. Element j of the
// write then depends on element j of the read through the fabric, so the
// write can never overtake the read (backprop updates weight rows in
// place this way).
//
// Indirect streams (SD_IndPort_*) are handled by a value-range
// pre-pass: when the staged index stream is statically known — constant
// streams (SD_Const_Port), or recurrence streams (SD_Port_Port) from an
// output port the active graph computes purely from known inputs — its
// value range bounds the gather/scatter footprint, which then
// participates in race and bounds analysis like any affine stream.
// Index streams loaded from memory or the scratchpad remain
// data-dependent: by default they are excluded from the race check (the
// historical soundness gap, now limited to truly unboundable streams),
// while Opts.StrictIndirect conservatively treats them as conflicting
// with every other access. Patterns reported as overlapping may also be
// conservative when their extents overflow uint64.
package lint

import (
	"fmt"
	"strings"

	"softbrain/internal/core"
	"softbrain/internal/isa"
)

// Check family IDs, stable across releases. The first four are
// machine-scope (one program, one unit); the last two are cluster-scope
// (see cluster.go and docs/LINT.md).
const (
	CheckRace         = "race"
	CheckPortConflict = "port-conflict"
	CheckBalance      = "balance"
	CheckOOB          = "oob"
	CheckInterUnit    = "inter-unit-race"
	CheckSharedRegion = "shared-region"
)

// Severity grades a finding. Errors are hazards that produce undefined
// results or deadlock; warnings are legal-but-suspect constructions.
type Severity uint8

const (
	SevWarning Severity = iota
	SevError
)

func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// MarshalJSON renders the severity as its stable string form.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// Finding is one diagnosed hazard, anchored to the command-trace index
// of the operation that completes the hazardous pair (or, for balance
// findings, the last operation touching the unbalanced port).
type Finding struct {
	Prog  string   `json:"prog"`
	Index int      `json:"index"` // index into Program.Trace
	Check string   `json:"check"`
	Sev   Severity `json:"severity"`
	Msg   string   `json:"msg"`

	// Code is the stable fine-grained diagnostic ID within the check
	// family (e.g. "race-mem", "oob-config-space"); consumers filtering
	// on specific diagnostics should key on it rather than parse Msg.
	Code string `json:"code"`

	// Other is the trace index of the older access completing a race
	// pair, or -1 when the finding is not pairwise.
	Other int `json:"other"`

	// Unit and OtherUnit are the cluster unit indices of the two
	// accesses for cluster-scope findings, or -1 for machine-scope
	// analysis (and for non-pairwise cluster findings' OtherUnit).
	Unit      int `json:"unit"`
	OtherUnit int `json:"other_unit"`

	// Phase is the pipeline phase of the offending access for
	// cluster-scope findings over a phased program set, or -1.
	Phase int `json:"phase"`

	// Barrier is the weakest barrier kind that would order a race pair
	// when inserted immediately before Index (the lattice of §3.3:
	// scratchpad hazards need only their Scratch_Rd/Wr barrier, memory
	// hazards need Barrier_All). KindInvalid for non-race findings.
	// The fix pass (internal/fix) synthesizes barriers from this field.
	Barrier isa.Kind `json:"-"`
}

// BarrierName is the Barrier kind's command name, or "" when no barrier
// repairs the finding; split from Barrier so JSON output stays stable
// across Kind renumbering.
func (f Finding) BarrierName() string {
	if f.Barrier == isa.KindInvalid {
		return ""
	}
	return f.Barrier.String()
}

// String renders the finding in go vet style.
func (f Finding) String() string {
	return fmt.Sprintf("%s: trace[%d]: %s: %s", f.Prog, f.Index, f.Check, f.Msg)
}

// Opts tunes a lint run; the zero value is the default analysis.
type Opts struct {
	// StrictIndirect treats every indirect access whose index range the
	// value pre-pass cannot bound (indices loaded from memory or the
	// scratchpad) as conflicting with every other unordered access. The
	// default analysis silently excludes such accesses from the race
	// check; strict mode is the sound over-approximation the fix pass
	// uses to prove a barrier removable even in the presence of
	// data-dependent footprints.
	StrictIndirect bool

	// Exhaustive reports every conflicting pair per access instead of
	// stopping at the first (the default keeps diagnostics concise).
	// The fix pass needs the full pair set: a masked second conflict is
	// exactly the hazard a removed barrier would silently reintroduce.
	Exhaustive bool
}

// Result is the full outcome of one analysis: the findings plus, per
// check family, the number of footprint bytes the analysis covered —
// the static analogue of a coverage counter (how much data movement the
// symbolic footprints accounted for), reported by sdlint -json.
type Result struct {
	Findings []Finding
	// Bytes maps a check family ID to the saturating total of bytes the
	// family analyzed: race and inter-unit-race count every byte entered
	// into an ordering window, oob every byte bounds-checked, balance
	// every byte accounted through a vector port. Families without a
	// byte-based measure (port-conflict) are absent.
	Bytes map[string]uint64
}

// Check lints the program against the machine configuration that would
// run it (the fabric defines the vector ports, the config the scratchpad
// capacity). It returns the findings in trace order. The error return is
// reserved for programs that cannot be analyzed at all: a construction
// error recorded by the Program emitter, or an invalid configuration.
func Check(p *core.Program, cfg core.Config) ([]Finding, error) {
	return CheckWith(p, cfg, Opts{})
}

// CheckWith is Check with explicit analysis options.
func CheckWith(p *core.Program, cfg core.Config, o Opts) ([]Finding, error) {
	r, err := Analyze(p, cfg, o)
	if err != nil {
		return nil, err
	}
	return r.Findings, nil
}

// Analyze is CheckWith returning the full Result (findings plus the
// per-check bytes-checked totals).
func Analyze(p *core.Program, cfg core.Config, o Opts) (Result, error) {
	if err := p.Err(); err != nil {
		return Result{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	c := newChecker(p, cfg, o)
	for i, op := range p.Trace {
		if op.Cmd != nil {
			c.command(i, op.Cmd)
		}
	}
	c.finish()
	return Result{Findings: c.findings, Bytes: c.bytes}, nil
}

// Errors filters fs to error-severity findings.
func Errors(fs []Finding) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Sev == SevError {
			out = append(out, f)
		}
	}
	return out
}

// Hook adapts the linter to the core.Machine Lint hook: it refuses any
// program with error-severity findings. Install it with
//
//	m.Lint = lint.Hook(m.Config())
//
// and load programs through Machine.LoadStrict.
func Hook(cfg core.Config) func(*core.Program) error {
	return func(p *core.Program) error {
		fs, err := Check(p, cfg)
		if err != nil {
			return err
		}
		errs := Errors(fs)
		if len(errs) == 0 {
			return nil
		}
		var b strings.Builder
		fmt.Fprintf(&b, "lint: program %s has %d hazard(s):", p.Name, len(errs))
		for _, f := range errs {
			fmt.Fprintf(&b, "\n  %v", f)
		}
		return fmt.Errorf("%s", b.String())
	}
}
