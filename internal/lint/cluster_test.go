package lint_test

import (
	"math/rand"
	"strings"
	"testing"

	"softbrain/internal/core"
	"softbrain/internal/dfg"
	"softbrain/internal/isa"
	"softbrain/internal/lint"
	"softbrain/internal/progen"
	"softbrain/internal/workloads/dnn"
	"softbrain/internal/workloads/ext"
	"softbrain/internal/workloads/machsuite"
)

// clusterProg builds one addpair unit program over a shared cfg.
func clusterProg(t *testing.T, cfg core.Config, name string) *core.Program {
	t.Helper()
	b := dfg.NewBuilder("addpair")
	a := b.Input("A", 1)
	v := b.Input("B", 1)
	b.Output("C", b.N(dfg.Add(64), a.W(0), v.W(0)))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := core.NewProgram(name)
	p.CompileAndConfigure(cfg.Fabric, g)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	return p
}

// stepRW emits one balanced, barrier-terminated step on p that reads
// 8*n bytes at src and writes 8*n bytes at dst, returning the trace
// indices of the read and the write.
func stepRW(t *testing.T, p *core.Program, src, dst uint64, n uint64) (rd, wr int) {
	t.Helper()
	rd = emit(t, p, isa.MemPort{Src: isa.Linear(src, 8*n), Dst: p.In("A")})
	emit(t, p, isa.ConstPort{Value: 1, Elem: isa.Elem64, Count: n, Dst: p.In("B")})
	wr = emit(t, p, isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(dst, 8*n)})
	emit(t, p, isa.BarrierAll{})
	return rd, wr
}

// idleProg builds a balanced program with no DRAM access at all, for
// phases where a unit has nothing to do.
func idleProg(t *testing.T, cfg core.Config, name string) *core.Program {
	t.Helper()
	p := clusterProg(t, cfg, name)
	emit(t, p, isa.ConstPort{Value: 1, Elem: isa.Elem64, Count: 1, Dst: p.In("A")})
	emit(t, p, isa.ConstPort{Value: 2, Elem: isa.Elem64, Count: 1, Dst: p.In("B")})
	emit(t, p, isa.CleanPort{Src: p.Out("C"), Elem: isa.Elem64, Count: 1})
	emit(t, p, isa.BarrierAll{})
	return p
}

// cprobe is the shape one cluster finding must have.
type cprobe struct {
	check, code            string
	unit, otherUnit, phase int
}

// checkCluster runs the pipeline analysis and compares finding shapes.
func checkCluster(t *testing.T, phases [][]*core.Program, cfg core.Config, o lint.ClusterOpts, want []cprobe) lint.Result {
	t.Helper()
	r, err := lint.CheckPipeline(phases, cfg, o)
	if err != nil {
		t.Fatalf("CheckPipeline: %v", err)
	}
	var got []cprobe
	for _, f := range r.Findings {
		got = append(got, cprobe{f.Check, f.Code, f.Unit, f.OtherUnit, f.Phase})
	}
	if len(got) != len(want) {
		t.Fatalf("findings = %v, want %v\nfull: %v", got, want, r.Findings)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("finding %d = %v, want %v\nfull: %v", i, got[i], want[i], r.Findings)
		}
	}
	return r
}

func TestClusterDisjointClean(t *testing.T) {
	cfg := core.DefaultConfig()
	p0 := clusterProg(t, cfg, "u0")
	stepRW(t, p0, 0x1_0000, 0x2_0000, 8)
	p1 := clusterProg(t, cfg, "u1")
	stepRW(t, p1, 0x3_0000, 0x4_0000, 8)
	r := checkCluster(t, [][]*core.Program{{p0, p1}}, cfg, lint.ClusterOpts{}, nil)
	if r.Bytes[lint.CheckInterUnit] != 4*64 {
		t.Fatalf("bytes[%s] = %d, want %d", lint.CheckInterUnit, r.Bytes[lint.CheckInterUnit], 4*64)
	}
}

func TestClusterWriteReadOverlap(t *testing.T) {
	cfg := core.DefaultConfig()
	p0 := clusterProg(t, cfg, "u0")
	_, wr := stepRW(t, p0, 0x3_0000, 0x1_0000, 8) // writes [0x1_0000, 0x1_0040)
	p1 := clusterProg(t, cfg, "u1")
	rd, _ := stepRW(t, p1, 0x1_0020, 0x4_0000, 8) // reads [0x1_0020, 0x1_0060)
	r := checkCluster(t, [][]*core.Program{{p0, p1}}, cfg, lint.ClusterOpts{},
		[]cprobe{{lint.CheckInterUnit, "inter-unit-overlap", 1, 0, 0}})
	f := r.Findings[0]
	if f.Index != rd || f.Other != wr {
		t.Fatalf("finding anchors = (%d, %d), want (%d, %d)", f.Index, f.Other, rd, wr)
	}
	if f.Prog != "u1" {
		t.Fatalf("finding prog = %q, want u1", f.Prog)
	}
	if !strings.Contains(f.Msg, "[0x10020, 0x10040)") {
		t.Fatalf("finding message lacks the overlap extent: %s", f.Msg)
	}
}

func TestClusterWriteWriteOverlap(t *testing.T) {
	cfg := core.DefaultConfig()
	p0 := clusterProg(t, cfg, "u0")
	stepRW(t, p0, 0x3_0000, 0x1_0000, 8)
	p1 := clusterProg(t, cfg, "u1")
	stepRW(t, p1, 0x4_0000, 0x1_0000, 8)
	checkCluster(t, [][]*core.Program{{p0, p1}}, cfg, lint.ClusterOpts{},
		[]cprobe{{lint.CheckInterUnit, "inter-unit-overlap", 1, 0, 0}})
}

func TestClusterReadReadClean(t *testing.T) {
	// Undeclared read-read sharing is legal: broadcast inputs are
	// schedule-independent (the dnn units share one activation image).
	cfg := core.DefaultConfig()
	p0 := clusterProg(t, cfg, "u0")
	stepRW(t, p0, 0x1_0000, 0x2_0000, 8)
	p1 := clusterProg(t, cfg, "u1")
	stepRW(t, p1, 0x1_0000, 0x3_0000, 8)
	checkCluster(t, [][]*core.Program{{p0, p1}}, cfg, lint.ClusterOpts{}, nil)
}

func TestClusterCrossPhaseOverlapUndeclared(t *testing.T) {
	// The same write/read overlap as TestClusterWriteReadOverlap with
	// the reader moved to the next phase. The phase boundary happens to
	// order the pair, but undeclared cross-unit sharing still violates
	// the disjoint-partitioning discipline — declaring the shared region
	// (TestClusterRegionPipelineClean) is what legalizes it.
	cfg := core.DefaultConfig()
	p0 := clusterProg(t, cfg, "u0")
	stepRW(t, p0, 0x3_0000, 0x1_0000, 8)
	p1 := clusterProg(t, cfg, "u1")
	stepRW(t, p1, 0x1_0020, 0x4_0000, 8)
	phases := [][]*core.Program{
		{p0, idleProg(t, cfg, "u1-idle")},
		{idleProg(t, cfg, "u0-idle"), p1},
	}
	checkCluster(t, phases, cfg, lint.ClusterOpts{},
		[]cprobe{{lint.CheckInterUnit, "inter-unit-overlap", 1, 0, 1}})
}

func TestClusterStrictIndirect(t *testing.T) {
	cfg := core.DefaultConfig()
	p0 := clusterProg(t, cfg, "u0")
	// Indices staged from DRAM the value pass cannot see: the gather
	// footprint is data-dependent.
	ind := p0.IndirectIn(cfg.Fabric, 0)
	gather := emit(t, p0, isa.MemPort{Src: isa.Linear(0x5_0000, 16), Dst: ind})
	emit(t, p0, isa.IndPortPort{
		Idx: ind, IdxElem: isa.Elem32,
		Offset: 0x1_0000, Scale: 4, DataElem: isa.Elem32, Count: 4,
		Dst: p0.In("A"),
	})
	emit(t, p0, isa.ConstPort{Value: 1, Elem: isa.Elem64, Count: 2, Dst: p0.In("B")})
	emit(t, p0, isa.CleanPort{Src: p0.Out("C"), Elem: isa.Elem64, Count: 2})
	emit(t, p0, isa.BarrierAll{})
	_ = gather

	p1 := clusterProg(t, cfg, "u1")
	stepRW(t, p1, 0x6_0000, 0x7_0000, 8)

	// Default: the unresolved footprint is silently excluded.
	checkCluster(t, [][]*core.Program{{p0, p1}}, cfg, lint.ClusterOpts{}, nil)

	// Strict: it conflicts with every other unit's write.
	r, err := lint.CheckCluster([]*core.Program{p0, p1}, cfg,
		lint.ClusterOpts{Opts: lint.Opts{StrictIndirect: true}})
	if err != nil {
		t.Fatal(err)
	}
	var hit bool
	for _, f := range r.Findings {
		if f.Code == "inter-unit-indirect" && f.Unit == 0 && f.OtherUnit == 1 {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("strict indirect analysis reported no inter-unit-indirect finding: %v", r.Findings)
	}
}

func TestClusterRegionPipelineClean(t *testing.T) {
	// The checked shared-region pipeline: unit 0 produces into a declared
	// region in phase 0, unit 1 consumes it in phase 1.
	cfg := core.DefaultConfig()
	region := lint.Region{Name: "stage", Lo: 0x1_0000, Hi: 0x1_0040}
	p0 := clusterProg(t, cfg, "producer")
	stepRW(t, p0, 0x3_0000, 0x1_0000, 8)
	p1 := clusterProg(t, cfg, "consumer")
	stepRW(t, p1, 0x1_0000, 0x4_0000, 8)
	phases := [][]*core.Program{
		{p0, idleProg(t, cfg, "idle0")},
		{idleProg(t, cfg, "idle1"), p1},
	}
	checkCluster(t, phases, cfg, lint.ClusterOpts{Regions: []lint.Region{region}}, nil)
}

func TestClusterRegionSamePhaseRead(t *testing.T) {
	cfg := core.DefaultConfig()
	region := lint.Region{Name: "stage", Lo: 0x1_0000, Hi: 0x1_0040}
	p0 := clusterProg(t, cfg, "producer")
	stepRW(t, p0, 0x3_0000, 0x1_0000, 8)
	p1 := clusterProg(t, cfg, "consumer")
	stepRW(t, p1, 0x1_0000, 0x4_0000, 8)
	checkCluster(t, [][]*core.Program{{p0, p1}}, cfg,
		lint.ClusterOpts{Regions: []lint.Region{region}},
		[]cprobe{{lint.CheckSharedRegion, "region-unordered-read", 1, 0, 0}})
}

func TestClusterRegionMultiWriter(t *testing.T) {
	cfg := core.DefaultConfig()
	region := lint.Region{Name: "stage", Lo: 0x1_0000, Hi: 0x1_0080}
	p0 := clusterProg(t, cfg, "w0")
	stepRW(t, p0, 0x3_0000, 0x1_0000, 8)
	p1 := clusterProg(t, cfg, "w1")
	stepRW(t, p1, 0x4_0000, 0x1_0040, 8)
	checkCluster(t, [][]*core.Program{{p0, p1}}, cfg,
		lint.ClusterOpts{Regions: []lint.Region{region}},
		[]cprobe{{lint.CheckSharedRegion, "region-multi-writer", 1, 0, 0}})
}

func TestClusterRegionStraddle(t *testing.T) {
	cfg := core.DefaultConfig()
	region := lint.Region{Name: "stage", Lo: 0x1_0000, Hi: 0x1_0040}
	p0 := clusterProg(t, cfg, "u0")
	// The write starts 16 bytes before the region and reaches into it.
	stepRW(t, p0, 0x3_0000, 0x1_0000-16, 8)
	p1 := idleProg(t, cfg, "u1")
	checkCluster(t, [][]*core.Program{{p0, p1}}, cfg,
		lint.ClusterOpts{Regions: []lint.Region{region}},
		[]cprobe{{lint.CheckSharedRegion, "region-straddle", 0, -1, 0}})
}

func TestClusterRegionValidation(t *testing.T) {
	cfg := core.DefaultConfig()
	p := idleProg(t, cfg, "u0")
	phases := [][]*core.Program{{p}}
	for _, bad := range [][]lint.Region{
		{{Name: "empty", Lo: 0x100, Hi: 0x100}},
		{{Name: "inverted", Lo: 0x200, Hi: 0x100}},
		{{Name: "config", Lo: core.ConfigSpace - 8, Hi: core.ConfigSpace + 8}},
		{{Name: "a", Lo: 0x100, Hi: 0x300}, {Name: "b", Lo: 0x200, Hi: 0x400}},
	} {
		if _, err := lint.CheckPipeline(phases, cfg, lint.ClusterOpts{Regions: bad}); err == nil {
			t.Errorf("regions %v: want error, got none", bad)
		}
	}
}

func TestClusterPhaseShapeErrors(t *testing.T) {
	cfg := core.DefaultConfig()
	p := idleProg(t, cfg, "u0")
	if _, err := lint.CheckPipeline(nil, cfg, lint.ClusterOpts{}); err == nil {
		t.Error("empty pipeline: want error, got none")
	}
	if _, err := lint.CheckPipeline([][]*core.Program{{p, p}, {p}}, cfg, lint.ClusterOpts{}); err == nil {
		t.Error("ragged phases: want error, got none")
	}
	if _, err := lint.CheckPipeline([][]*core.Program{{p, nil}}, cfg, lint.ClusterOpts{}); err == nil {
		t.Error("nil program: want error, got none")
	}
}

// TestClusterWorkloadsClean is the cluster-scope regression gate: every
// shipped workload instance — including the 8-unit dnn layers, whose
// units deliberately share a read-only input image — passes the cluster
// analysis with zero findings.
func TestClusterWorkloadsClean(t *testing.T) {
	assert := func(name string, progs []*core.Program, cfg core.Config) {
		r, err := lint.CheckCluster(progs, cfg, lint.ClusterOpts{})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			return
		}
		for _, f := range r.Findings {
			t.Errorf("%s: %v", name, f)
		}
	}
	cfg := core.DefaultConfig()
	for _, e := range machsuite.All() {
		inst, err := e.Build(cfg, 1)
		if err != nil {
			t.Fatalf("machsuite/%s: %v", e.Name, err)
		}
		assert("machsuite/"+e.Name, inst.Progs, cfg)
	}
	for _, e := range ext.All() {
		inst, err := e.Build(cfg, 1)
		if err != nil {
			t.Fatalf("ext/%s: %v", e.Name, err)
		}
		assert("ext/"+e.Name, inst.Progs, cfg)
	}
	dnnCfg := dnn.Config()
	for _, l := range dnn.Layers() {
		inst, err := l.Build(dnnCfg, dnn.Units)
		if err != nil {
			t.Fatalf("dnn/%s: %v", l.Name, err)
		}
		assert("dnn/"+l.Name, inst.Progs, dnnCfg)
	}
}

// TestClusterProgenSoak fuzzes the cluster analysis with generated unit
// sets: disjoint rebased sets must be clean, and every seeded hazard
// must be detected naming the offending unit pair.
func TestClusterProgenSoak(t *testing.T) {
	cfg := core.DefaultConfig()
	const units = 3
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		_, ports, err := progen.Addpair(cfg)
		if err != nil {
			t.Fatal(err)
		}

		clean := progen.ClusterCommands(rng, ports, units, -1)
		progs, err := progen.ClusterPrograms(cfg, clean)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r, err := lint.CheckCluster(progs, cfg, lint.ClusterOpts{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(r.Findings) != 0 {
			t.Fatalf("seed %d: disjoint set has findings: %v", seed, r.Findings)
		}

		hazardUnit := int(seed) % units
		victim := (hazardUnit + 1) % units
		seeded := progen.ClusterCommands(rand.New(rand.NewSource(seed)), ports, units, hazardUnit)
		progs, err = progen.ClusterPrograms(cfg, seeded)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r, err = lint.CheckCluster(progs, cfg, lint.ClusterOpts{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var hit bool
		for _, f := range r.Findings {
			if f.Check != lint.CheckInterUnit {
				t.Fatalf("seed %d: unexpected %s finding: %v", seed, f.Check, f)
			}
			pair := [2]int{f.Unit, f.OtherUnit}
			if pair == [2]int{hazardUnit, victim} || pair == [2]int{victim, hazardUnit} {
				hit = true
			} else {
				t.Fatalf("seed %d: finding names units %v, want {%d, %d}: %v", seed, pair, hazardUnit, victim, f)
			}
		}
		if !hit {
			t.Fatalf("seed %d: seeded hazard between units %d and %d not detected", seed, hazardUnit, victim)
		}
	}
}

// TestClusterHookRefuses wires the analysis into the core strict-run
// contract: the hook accepts a disjoint set and refuses a racy one.
func TestClusterHookRefuses(t *testing.T) {
	cfg := core.DefaultConfig()
	hook := lint.ClusterHook(cfg, lint.ClusterOpts{})

	p0 := clusterProg(t, cfg, "u0")
	stepRW(t, p0, 0x1_0000, 0x2_0000, 8)
	p1 := clusterProg(t, cfg, "u1")
	stepRW(t, p1, 0x3_0000, 0x4_0000, 8)
	if err := hook([][]*core.Program{{p0, p1}}); err != nil {
		t.Fatalf("disjoint set refused: %v", err)
	}

	p2 := clusterProg(t, cfg, "u2")
	stepRW(t, p2, 0x4_0000, 0x2_0020, 8) // write overlaps u0's write
	err := hook([][]*core.Program{{p0, p2}})
	if err == nil {
		t.Fatal("racy set accepted")
	}
	if !strings.Contains(err.Error(), "inter-unit") {
		t.Fatalf("refusal does not name the inter-unit hazard: %v", err)
	}
}
