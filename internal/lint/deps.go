package lint

import (
	"softbrain/internal/core"
	"softbrain/internal/isa"
)

// This file answers the interval question behind cost-aware barrier
// placement (internal/fix): not "is this pair ordered?" but "which
// placements of a barrier keep every pair's orderedness unchanged?".
// Dependences runs the race checker with barrier window-clearing
// suppressed, so it enumerates every conflicting access pair the
// program could ever race on, independent of where its barriers sit.
// A barrier placement is then scored against this fixed pair set with
// pure index arithmetic — no re-analysis per candidate position.

// Dep is one conflicting access pair: without an intervening fence of
// at least Need strength, the accesses at trace indices Older and
// Younger race. A fence at trace index f orders the pair iff
// Older < f < Younger; a barrier *inserted before* index p orders it
// iff Older < p <= Younger.
//
// Trailing deps model the end-of-trace visibility rule (the checker's
// trailing-unordered-write warning): Younger is len(trace), a
// pseudo-position one past the last command, and the dep is "ordered"
// when any covering fence follows the write.
type Dep struct {
	Older, Younger int
	Need           isa.Kind // weakest barrier kind ordering the pair
	StrictOnly     bool     // reported only under Opts.StrictIndirect
	Trailing       bool     // end-of-trace visibility pseudo-pair
	Msg            string   // sample diagnosis from the checker
}

// Fence is one ordering point fixed in the trace: a barrier command or
// an SD_Config (a full fence at dispatch).
type Fence struct {
	Pos  int
	Kind isa.Kind
}

// DepGraph is the program's placement-independent dependence set: all
// conflicting pairs (as if no barrier existed), plus where the actual
// fences sit.
type DepGraph struct {
	TraceLen int
	Deps     []Dep
	Fences   []Fence
}

// FenceOrders reports whether a fence of kind k closes a race window
// that needs a barrier of kind need: SD_Barrier_All and SD_Config
// close every window, the scratch barriers only their own.
func FenceOrders(k, need isa.Kind) bool {
	return k == isa.KindConfig || k == isa.KindBarrierAll || k == need
}

// Dependences enumerates every conflicting access pair of p with the
// barrier commands treated as no-ops, under the exhaustive
// strict-indirect analysis (the strictest the fix pass uses; pairs
// visible only to it carry StrictOnly). The index value pre-pass
// (values.go) never consults barrier placement — barriers move no
// data — so the pair set is valid for every placement of every
// barrier.
func Dependences(p *core.Program, cfg core.Config) (*DepGraph, error) {
	if err := p.Err(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := newChecker(p, cfg, Opts{Exhaustive: true, StrictIndirect: true})
	c.ignoreBarriers = true
	g := &DepGraph{TraceLen: len(p.Trace)}
	for i, op := range p.Trace {
		if op.Cmd == nil {
			continue
		}
		switch k := op.Cmd.Kind(); k {
		case isa.KindConfig, isa.KindBarrierScratchRd, isa.KindBarrierScratchWr, isa.KindBarrierAll:
			g.Fences = append(g.Fences, Fence{Pos: i, Kind: k})
		}
		c.command(i, op.Cmd)
	}
	for _, f := range c.findings {
		if f.Check != CheckRace || f.Sev != SevError || f.Other < 0 {
			continue
		}
		g.Deps = append(g.Deps, Dep{
			Older: f.Other, Younger: f.Index, Need: f.Barrier,
			StrictOnly: f.Code == "race-indirect-strict", Msg: f.Msg,
		})
	}
	// Trailing pseudo-pairs: every write still in a window at the end
	// of the walk (SD_Config cleared earlier regions; barriers were
	// ignored). The checker's finish() warning fires iff at least one
	// of these has no covering fence behind it.
	end := len(p.Trace)
	for _, a := range c.mem {
		if a.write {
			g.Deps = append(g.Deps, Dep{
				Older: a.idx, Younger: end, Need: isa.KindBarrierAll, Trailing: true,
				Msg: a.what + " is not ordered by a barrier before the program ends",
			})
		}
	}
	for _, a := range c.padWr {
		g.Deps = append(g.Deps, Dep{
			Older: a.idx, Younger: end, Need: isa.KindBarrierScratchWr, Trailing: true,
			Msg: a.what + " is not ordered by a barrier before the program ends",
		})
	}
	return g, nil
}

// OrderedByFences reports whether the program's fixed fences, with the
// fence at trace index skip removed (pass -1 to keep all), order dep d.
func (g *DepGraph) OrderedByFences(d Dep, skip int) bool {
	for _, f := range g.Fences {
		if f.Pos == skip || !FenceOrders(f.Kind, d.Need) {
			continue
		}
		if d.Older < f.Pos && f.Pos < d.Younger {
			return true
		}
	}
	return false
}
