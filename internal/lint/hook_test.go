package lint_test

import (
	"strings"
	"testing"

	"softbrain/internal/core"
	"softbrain/internal/isa"
	"softbrain/internal/lint"
)

// TestLoadStrict exercises the machine-side integration: a Lint-hooked
// machine refuses hazardous programs, accepts and runs clean ones, and
// an unhooked machine refuses LoadStrict outright.
func TestLoadStrict(t *testing.T) {
	racy, cfg := newProg(t)
	emit(t, racy, isa.MemPort{Src: isa.Linear(0x1000, 64), Dst: racy.In("A")})
	emit(t, racy, isa.MemPort{Src: isa.Linear(0x2000, 64), Dst: racy.In("B")})
	emit(t, racy, isa.PortMem{Src: racy.Out("C"), Dst: isa.Linear(0x1020, 64)})
	emit(t, racy, isa.BarrierAll{})

	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadStrict(racy); err == nil || !strings.Contains(err.Error(), "Lint hook") {
		t.Fatalf("LoadStrict without a hook = %v, want a hook-required error", err)
	}

	m.Lint = lint.Hook(m.Config())
	err = m.LoadStrict(racy)
	if err == nil {
		t.Fatal("LoadStrict accepted a racy program")
	}
	if !strings.Contains(err.Error(), lint.CheckRace) {
		t.Fatalf("LoadStrict error %q does not name the race check", err)
	}

	clean, _ := newProg(t)
	emit(t, clean, isa.MemPort{Src: isa.Linear(0x1000, 64), Dst: clean.In("A")})
	emit(t, clean, isa.MemPort{Src: isa.Linear(0x2000, 64), Dst: clean.In("B")})
	emit(t, clean, isa.PortMem{Src: clean.Out("C"), Dst: isa.Linear(0x3000, 64)})
	emit(t, clean, isa.BarrierAll{})
	for i := uint64(0); i < 8; i++ {
		m.Sys.Mem.WriteU64(0x1000+8*i, i)
		m.Sys.Mem.WriteU64(0x2000+8*i, 10*i)
	}
	stats, err := m.RunStrict(clean)
	if err != nil {
		t.Fatalf("RunStrict(clean) = %v", err)
	}
	if stats.Instances != 8 {
		t.Fatalf("instances = %d, want 8", stats.Instances)
	}
	for i := uint64(0); i < 8; i++ {
		if got := m.Sys.Mem.ReadU64(0x3000 + 8*i); got != 11*i {
			t.Fatalf("r[%d] = %d, want %d", i, got, 11*i)
		}
	}
}
