package lint_test

import (
	"fmt"
	"testing"

	"softbrain/examples/programs"
	"softbrain/internal/core"
	"softbrain/internal/lint"
	"softbrain/internal/workloads/dnn"
	"softbrain/internal/workloads/ext"
	"softbrain/internal/workloads/machsuite"
)

// assertClean lints p and fails the test on any finding at all —
// shipped programs must be warning-free too.
func assertClean(t *testing.T, name string, p *core.Program, cfg core.Config) {
	t.Helper()
	fs, err := lint.Check(p, cfg)
	if err != nil {
		t.Errorf("%s: Check: %v", name, err)
		return
	}
	for _, f := range fs {
		t.Errorf("%s: %v", name, f)
	}
}

// TestWorkloadsLintClean is the regression gate: every shipped workload
// program passes the linter with zero findings.
func TestWorkloadsLintClean(t *testing.T) {
	cfg := core.DefaultConfig()
	for _, e := range machsuite.All() {
		inst, err := e.Build(cfg, 1)
		if err != nil {
			t.Fatalf("machsuite/%s: %v", e.Name, err)
		}
		for i, p := range inst.Progs {
			assertClean(t, fmt.Sprintf("machsuite/%s#%d", e.Name, i), p, cfg)
		}
	}
	for _, e := range ext.All() {
		inst, err := e.Build(cfg, 1)
		if err != nil {
			t.Fatalf("ext/%s: %v", e.Name, err)
		}
		for i, p := range inst.Progs {
			assertClean(t, fmt.Sprintf("ext/%s#%d", e.Name, i), p, cfg)
		}
	}
	dnnCfg := dnn.Config()
	for _, l := range dnn.Layers() {
		inst, err := l.Build(dnnCfg, dnn.Units)
		if err != nil {
			t.Fatalf("dnn/%s: %v", l.Name, err)
		}
		for i, p := range inst.Progs {
			assertClean(t, fmt.Sprintf("dnn/%s#%d", l.Name, i), p, dnnCfg)
		}
	}
}

// TestExamplesLintClean asserts the example programs lint clean under
// their own configurations.
func TestExamplesLintClean(t *testing.T) {
	exs, err := programs.All()
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range exs {
		assertClean(t, "examples/"+ex.Name, ex.Prog, ex.Cfg)
	}
}
