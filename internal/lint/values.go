package lint

import (
	"encoding/binary"

	"softbrain/internal/cgra"
	"softbrain/internal/core"
	"softbrain/internal/dfg"
	"softbrain/internal/isa"
)

// This file is the value-range pre-pass over staged index streams: it
// resolves, for each SD_IndPort_* command, the range of the index
// values it will consume, whenever those values are statically visible
// in the trace. Two kinds of sources resolve:
//
//   - constant streams: SD_Const_Port stages Count literal copies of a
//     value — the bytes are known exactly;
//   - affine/computed streams: SD_Port_Port stages an output-port slice
//     into the indirect port, and when every mapped input port of the
//     active configuration is itself fed from known bytes, the dataflow
//     graph is evaluated functionally (internal/dfg.Evaluator) to
//     materialize the output stream — this covers index generators such
//     as an accumulator producing 0,1,2,... from a constant stream.
//
// Indices loaded from memory or the scratchpad are data-dependent and
// stay unresolved. Resolution is order-insensitive within a
// configuration epoch: stream values do not depend on dispatch timing,
// and the FIFO order of an indirect port equals the program order of
// the commands staging into it, so the pass collects stagings and
// consumptions per epoch and matches them at the epoch boundary.

const (
	// maxKnownBytes caps the literal bytes materialized per staged run
	// and per resolved index stream; longer streams stay unresolved
	// (conservative) rather than ballooning analysis memory.
	maxKnownBytes = 64 << 10

	// maxEvalInstances caps the dataflow instances evaluated per epoch
	// when materializing recurrence-staged index streams.
	maxEvalInstances = 4096
)

// idxRange is the closed value range of a resolved index stream.
type idxRange struct {
	lo, hi uint64
}

// stagedRun is one segment of bytes staged into an input-port FIFO.
type stagedRun struct {
	n       uint64 // length in bytes
	data    []byte // literal bytes when known (len == n), else nil
	fromOut int    // hardware output port of a recurrence source, else -1
	off     uint64 // byte offset into that output port's value stream
}

// indUse is one indirect command consuming index bytes from a port.
type indUse struct {
	trace int
	port  int
	elem  isa.ElemSize
	n     uint64 // index bytes consumed
}

type valuePass struct {
	fabric *cgra.Fabric
	ranges map[int]idxRange

	sched       *cgra.Schedule
	inRuns      map[int][]stagedRun
	outConsumed map[int]uint64
	uses        []indUse
}

// indexRanges resolves the index-value range of every SD_IndPort_*
// command in the trace whose staged index stream is statically known.
// The map is keyed by trace index; absent entries are unboundable.
func indexRanges(p *core.Program, fabric *cgra.Fabric) map[int]idxRange {
	v := &valuePass{fabric: fabric, ranges: map[int]idxRange{}}
	v.resetEpoch()
	for i, op := range p.Trace {
		if op.Cmd != nil {
			v.command(i, op.Cmd, p)
		}
	}
	v.flushEpoch()
	return v.ranges
}

func (v *valuePass) resetEpoch() {
	v.inRuns = map[int][]stagedRun{}
	v.outConsumed = map[int]uint64{}
	v.uses = nil
}

func (v *valuePass) addRun(port isa.InPortID, r stagedRun) {
	if int(port) >= len(v.fabric.InPorts) || r.n == 0 {
		return
	}
	v.inRuns[int(port)] = append(v.inRuns[int(port)], r)
}

func (v *valuePass) consumeOut(port isa.OutPortID, n uint64) (off uint64) {
	off = v.outConsumed[int(port)]
	v.outConsumed[int(port)] = satAdd(off, n)
	return off
}

func (v *valuePass) command(idx int, cmd isa.Command, p *core.Program) {
	switch k := cmd.(type) {
	case isa.Config:
		v.flushEpoch()
		v.resetEpoch()
		v.sched = nil
		if blob, ok := p.Configs[k.Addr]; ok {
			if s, err := cgra.DecodeConfig(v.fabric, blob); err == nil {
				v.sched = s
			}
		}
	case isa.MemPort:
		v.addRun(k.Dst, stagedRun{n: k.Src.TotalBytes(), fromOut: -1})
	case isa.ScratchPort:
		v.addRun(k.Dst, stagedRun{n: k.Src.TotalBytes(), fromOut: -1})
	case isa.ConstPort:
		v.addRun(k.Dst, constRun(k))
	case isa.CleanPort:
		v.consumeOut(k.Src, satMul(k.Count, uint64(k.Elem)))
	case isa.PortPort:
		n := satMul(k.Count, uint64(k.Elem))
		off := v.consumeOut(k.Src, n)
		v.addRun(k.Dst, stagedRun{n: n, fromOut: int(k.Src), off: off})
	case isa.PortScratch:
		v.consumeOut(k.Src, satMul(k.Count, uint64(k.Elem)))
	case isa.PortMem:
		v.consumeOut(k.Src, k.Dst.TotalBytes())
	case isa.IndPortPort:
		v.uses = append(v.uses, indUse{trace: idx, port: int(k.Idx), elem: k.IdxElem, n: satMul(k.Count, uint64(k.IdxElem))})
		// The gathered data is itself data-dependent (chained indirection).
		v.addRun(k.Dst, stagedRun{n: satMul(k.Count, uint64(k.DataElem)), fromOut: -1})
	case isa.IndPortMem:
		v.uses = append(v.uses, indUse{trace: idx, port: int(k.Idx), elem: k.IdxElem, n: satMul(k.Count, uint64(k.IdxElem))})
		v.consumeOut(k.Src, satMul(k.Count, uint64(k.DataElem)))
	}
}

// constRun materializes the literal bytes an SD_Const_Port stages.
func constRun(k isa.ConstPort) stagedRun {
	n := satMul(k.Count, uint64(k.Elem))
	r := stagedRun{n: n, fromOut: -1}
	if n == 0 || n > maxKnownBytes {
		return r
	}
	var word [8]byte
	binary.LittleEndian.PutUint64(word[:], k.Value)
	r.data = make([]byte, 0, n)
	for i := uint64(0); i < k.Count; i++ {
		r.data = append(r.data, word[:k.Elem]...)
	}
	return r
}

// flushEpoch resolves recurrence-staged runs through the dataflow graph
// and matches each indirect consumption against its port's FIFO.
func (v *valuePass) flushEpoch() {
	v.resolveRecurrences()

	type cursor struct {
		run int
		off uint64
	}
	cursors := map[int]*cursor{}
	for _, u := range v.uses {
		c := cursors[u.port]
		if c == nil {
			c = &cursor{}
			cursors[u.port] = c
		}
		runs := v.inRuns[u.port]
		need := u.n
		known := need > 0 && need <= maxKnownBytes && u.elem.Valid()
		buf := make([]byte, 0, min64(need, maxKnownBytes))
		for need > 0 && c.run < len(runs) {
			r := runs[c.run]
			take := min64(need, r.n-c.off)
			if r.data != nil && known {
				buf = append(buf, r.data[c.off:c.off+take]...)
			} else {
				known = false
			}
			need -= take
			c.off += take
			if c.off == r.n {
				c.run++
				c.off = 0
			}
		}
		if need > 0 || !known {
			continue // under-staged (a balance error) or data-dependent
		}
		v.ranges[u.trace] = byteRange(buf, u.elem)
	}
}

// byteRange parses buf as little-endian unsigned elem-sized values and
// returns their min/max.
func byteRange(buf []byte, elem isa.ElemSize) idxRange {
	r := idxRange{lo: ^uint64(0), hi: 0}
	for o := 0; o+int(elem) <= len(buf); o += int(elem) {
		var word [8]byte
		copy(word[:], buf[o:o+int(elem)])
		x := binary.LittleEndian.Uint64(word[:])
		if x < r.lo {
			r.lo = x
		}
		if x > r.hi {
			r.hi = x
		}
	}
	return r
}

// resolveRecurrences materializes, where possible, the output-port byte
// streams that SD_Port_Port commands staged into indirect ports, by
// functionally evaluating the active graph from known input streams.
func (v *valuePass) resolveRecurrences() {
	if v.sched == nil {
		return
	}
	g := v.sched.Graph

	// Instances needed per output port, driven only by recurrence runs
	// sitting in indirect ports (the only runs whose bytes this pass
	// consumes; recurrences into mapped data ports are loop-carried
	// dependences the functional evaluation cannot close over).
	needInst := uint64(0)
	needed := false
	for p, runs := range v.inRuns {
		if p >= len(v.fabric.InPorts) || !v.fabric.InPorts[p].Indirect {
			continue
		}
		for _, r := range runs {
			if r.fromOut < 0 || r.data != nil {
				continue
			}
			bpi := outBytesPerInstance(v.sched, r.fromOut)
			end := satAdd(r.off, r.n)
			if bpi == 0 || end > maxKnownBytes {
				continue
			}
			needed = true
			if inst := (end + bpi - 1) / bpi; inst > needInst {
				needInst = inst
			}
		}
	}
	if !needed || needInst == 0 || needInst > maxEvalInstances {
		return
	}

	// Known prefix of every mapped input port, in whole instances.
	inWords := make([][]uint64, len(g.Ins))
	avail := needInst
	for dfgPort, hw := range v.sched.InPortMap {
		prefix := knownPrefix(v.inRuns[hw])
		instBytes := uint64(g.Ins[dfgPort].Width) * wordBytes
		if n := uint64(len(prefix)) / instBytes; n < avail {
			avail = n
		}
		words := make([]uint64, 0, len(prefix)/8)
		for o := 0; o+8 <= len(prefix); o += 8 {
			words = append(words, binary.LittleEndian.Uint64(prefix[o:]))
		}
		inWords[dfgPort] = words
	}
	if avail == 0 {
		return
	}

	ev, err := dfg.NewEvaluator(g)
	if err != nil {
		return
	}
	outBytes := make([][]byte, len(g.Outs))
	ins := make([][]uint64, len(g.Ins))
	for inst := uint64(0); inst < avail; inst++ {
		for p := range g.Ins {
			w := uint64(g.Ins[p].Width)
			ins[p] = inWords[p][inst*w : (inst+1)*w]
		}
		outs, err := ev.Eval(ins)
		if err != nil {
			return
		}
		for p, words := range outs {
			eb := g.Outs[p].ElemBytes
			for _, w := range words {
				var b [8]byte
				binary.LittleEndian.PutUint64(b[:], w)
				outBytes[p] = append(outBytes[p], b[:eb]...)
			}
		}
	}

	// Patch resolved bytes back into the indirect-port runs.
	hwOut := map[int][]byte{}
	for dfgPort, hw := range v.sched.OutPortMap {
		hwOut[hw] = outBytes[dfgPort]
	}
	for p, runs := range v.inRuns {
		if p >= len(v.fabric.InPorts) || !v.fabric.InPorts[p].Indirect {
			continue
		}
		for i, r := range runs {
			if r.fromOut < 0 || r.data != nil {
				continue
			}
			stream, ok := hwOut[r.fromOut]
			end := satAdd(r.off, r.n)
			if !ok || end > uint64(len(stream)) {
				continue
			}
			runs[i].data = stream[r.off:end]
		}
	}
}

// knownPrefix concatenates the leading literal bytes of a run list,
// stopping at the first unknown or recurrence-staged run.
func knownPrefix(runs []stagedRun) []byte {
	var out []byte
	for _, r := range runs {
		if r.data == nil {
			break
		}
		if uint64(len(out))+r.n > maxKnownBytes {
			break
		}
		out = append(out, r.data...)
	}
	return out
}

// outBytesPerInstance is the bytes hardware output port hw produces per
// dataflow instance under the schedule, or 0 when unmapped.
func outBytesPerInstance(s *cgra.Schedule, hw int) uint64 {
	for dfgPort, h := range s.OutPortMap {
		if h == hw {
			return uint64(s.Graph.Outs[dfgPort].BytesPerInstance())
		}
	}
	return 0
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
