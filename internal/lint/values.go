package lint

import (
	"encoding/binary"
	"maps"

	"softbrain/internal/cgra"
	"softbrain/internal/core"
	"softbrain/internal/dfg"
	"softbrain/internal/isa"
)

// This file is the value-range pre-pass over staged index streams: it
// resolves, for each SD_IndPort_* command, the range of the index
// values it will consume, whenever those values are statically visible
// in the trace. Three kinds of sources resolve:
//
//   - constant streams: SD_Const_Port stages Count literal copies of a
//     value — the bytes are known exactly;
//   - affine/computed streams: SD_Port_Port stages an output-port slice
//     into the indirect port, and when every mapped input port of the
//     active configuration is itself fed from known bytes, the dataflow
//     graph is evaluated functionally (internal/dfg.Evaluator) to
//     materialize the output stream — this covers index generators such
//     as an accumulator producing 0,1,2,... from a constant stream;
//   - round-trip streams: known bytes the program itself stored — an
//     output port drained to the scratchpad (SD_Port_Scratch) or to
//     DRAM (SD_Port_Mem) and later reloaded (SD_Scratch_Port,
//     SD_Mem_Port, SD_Mem_Scratch) — keep their values across the
//     round trip. The pass maintains known-byte images of the
//     scratchpad and of program-written DRAM, persistent across
//     configuration epochs, and replays each epoch's transfers in
//     program order (resolveEpoch). The race checker independently
//     enforces that order with barriers — an unbarriered store/reload
//     pair is an error finding, and the fix pass rejects any barrier
//     removal that introduces one — so every program the analysis
//     chain accepts really executes the transfers in the order the
//     replay assumes.
//
// Indices loaded from memory or scratchpad bytes the program did not
// itself write (input data, gathered values) are data-dependent and
// stay unresolved. Resolution is order-insensitive within a
// configuration epoch: stream values do not depend on dispatch timing,
// and the FIFO order of an indirect port equals the program order of
// the commands staging into it, so the pass collects stagings and
// consumptions per epoch and matches them at the epoch boundary.

const (
	// maxKnownBytes caps the literal bytes materialized per staged run,
	// per resolved index stream, and per known-byte image; longer
	// streams stay unresolved (conservative) rather than ballooning
	// analysis memory.
	maxKnownBytes = 64 << 10

	// maxEvalInstances caps the dataflow instances evaluated per epoch
	// when materializing recurrence-staged index streams.
	maxEvalInstances = 4096

	// maxResolveRounds bounds the replay/evaluate fixpoint per epoch.
	// Each round either resolves something new or terminates, and a
	// resolution chain (reload completes an input prefix, whose outputs
	// a store deposits, which a later reload picks up) rarely needs more
	// than two rounds in practice.
	maxResolveRounds = 3
)

// idxRange is the closed value range of a resolved index stream.
type idxRange struct {
	lo, hi uint64
}

// stagedRun is one segment of bytes staged into an input-port FIFO.
type stagedRun struct {
	n       uint64 // length in bytes
	data    []byte // literal bytes when known (len == n), else nil
	fromOut int    // hardware output port of a recurrence source, else -1
	off     uint64 // byte offset into that output port's value stream
}

// indUse is one indirect command consuming index bytes from a port.
type indUse struct {
	trace int
	port  int
	elem  isa.ElemSize
	n     uint64 // index bytes consumed
}

// opKind classifies one memory/scratchpad transfer for the replay.
type opKind uint8

const (
	opMemToScratch  opKind = iota // SD_Mem_Scratch: DRAM pattern -> linear scratch
	opPortToScratch               // SD_Port_Scratch: output slice -> linear scratch
	opScratchToPort               // SD_Scratch_Port: scratch pattern -> staged run
	opMemToPort                   // SD_Mem_Port: DRAM pattern -> staged run
	opPortToMem                   // SD_Port_Mem: output slice -> DRAM pattern
	opClobberMem                  // SD_IndPort_Mem: data-dependent scatter
)

// memOp is one epoch transfer, replayed in program order against the
// known-byte images at the epoch boundary.
type memOp struct {
	kind    opKind
	pat     isa.Affine // DRAM/scratch footprint (source for loads, destination for opPortToMem)
	addr    uint64     // linear scratch destination for *ToScratch
	n       uint64     // transfer length in bytes
	fromOut int        // driving output port for port-driven stores
	off     uint64     // byte offset into that output port's value stream
	port    int        // destination input port for loads
	runIdx  int        // index of the staged run a load resolves
}

type valuePass struct {
	fabric     *cgra.Fabric
	scratchCap uint64
	ranges     map[int]idxRange

	sched       *cgra.Schedule
	inRuns      map[int][]stagedRun
	outConsumed map[int]uint64
	uses        []indUse

	// ops is the program-ordered list of the epoch's memory/scratchpad
	// transfers; outStreams caches the output-port byte streams
	// resolveRecurrences materialized for the epoch. Both reset per
	// epoch.
	ops        []memOp
	outStreams map[int][]byte

	// scratch and mem are the known-byte images: scratchpad bytes and
	// DRAM bytes whose values the program itself stored and the pass
	// resolved. They persist across configuration epochs — that is what
	// carries an index stream through a stage-to-scratch round trip that
	// straddles an SD_Config.
	scratch map[uint64]byte
	mem     map[uint64]byte
}

// indexRanges resolves the index-value range of every SD_IndPort_*
// command in the trace whose staged index stream is statically known.
// The map is keyed by trace index; absent entries are unboundable.
func indexRanges(p *core.Program, cfg core.Config) map[int]idxRange {
	v := &valuePass{
		fabric:     cfg.Fabric,
		scratchCap: uint64(cfg.ScratchBytes),
		ranges:     map[int]idxRange{},
		scratch:    map[uint64]byte{},
		mem:        map[uint64]byte{},
	}
	v.resetEpoch()
	for i, op := range p.Trace {
		if op.Cmd != nil {
			v.command(i, op.Cmd, p)
		}
	}
	v.flushEpoch()
	return v.ranges
}

func (v *valuePass) resetEpoch() {
	v.inRuns = map[int][]stagedRun{}
	v.outConsumed = map[int]uint64{}
	v.uses = nil
	v.ops = nil
	v.outStreams = map[int][]byte{}
}

// addRun stages a run into an input-port FIFO and returns its index in
// the port's run list, or -1 when the run is unusable.
func (v *valuePass) addRun(port isa.InPortID, r stagedRun) int {
	if int(port) >= len(v.fabric.InPorts) || r.n == 0 {
		return -1
	}
	v.inRuns[int(port)] = append(v.inRuns[int(port)], r)
	return len(v.inRuns[int(port)]) - 1
}

func (v *valuePass) consumeOut(port isa.OutPortID, n uint64) (off uint64) {
	off = v.outConsumed[int(port)]
	v.outConsumed[int(port)] = satAdd(off, n)
	return off
}

func (v *valuePass) command(idx int, cmd isa.Command, p *core.Program) {
	switch k := cmd.(type) {
	case isa.Config:
		v.flushEpoch()
		v.resetEpoch()
		v.sched = nil
		if blob, ok := p.Configs[k.Addr]; ok {
			if s, err := cgra.DecodeConfig(v.fabric, blob); err == nil {
				v.sched = s
			}
		}
	case isa.MemScratch:
		v.ops = append(v.ops, memOp{kind: opMemToScratch, pat: k.Src, addr: k.ScratchAddr, n: k.Src.TotalBytes()})
	case isa.MemPort:
		if ri := v.addRun(k.Dst, stagedRun{n: k.Src.TotalBytes(), fromOut: -1}); ri >= 0 {
			v.ops = append(v.ops, memOp{kind: opMemToPort, pat: k.Src, n: k.Src.TotalBytes(), port: int(k.Dst), runIdx: ri})
		}
	case isa.ScratchPort:
		if ri := v.addRun(k.Dst, stagedRun{n: k.Src.TotalBytes(), fromOut: -1}); ri >= 0 {
			v.ops = append(v.ops, memOp{kind: opScratchToPort, pat: k.Src, n: k.Src.TotalBytes(), port: int(k.Dst), runIdx: ri})
		}
	case isa.ConstPort:
		v.addRun(k.Dst, constRun(k))
	case isa.CleanPort:
		v.consumeOut(k.Src, satMul(k.Count, uint64(k.Elem)))
	case isa.PortPort:
		n := satMul(k.Count, uint64(k.Elem))
		off := v.consumeOut(k.Src, n)
		v.addRun(k.Dst, stagedRun{n: n, fromOut: int(k.Src), off: off})
	case isa.PortScratch:
		n := satMul(k.Count, uint64(k.Elem))
		off := v.consumeOut(k.Src, n)
		v.ops = append(v.ops, memOp{kind: opPortToScratch, addr: k.ScratchAddr, n: n, fromOut: int(k.Src), off: off})
	case isa.PortMem:
		n := k.Dst.TotalBytes()
		off := v.consumeOut(k.Src, n)
		v.ops = append(v.ops, memOp{kind: opPortToMem, pat: k.Dst, n: n, fromOut: int(k.Src), off: off})
	case isa.IndPortPort:
		v.uses = append(v.uses, indUse{trace: idx, port: int(k.Idx), elem: k.IdxElem, n: satMul(k.Count, uint64(k.IdxElem))})
		// The gathered data is itself data-dependent (chained indirection).
		v.addRun(k.Dst, stagedRun{n: satMul(k.Count, uint64(k.DataElem)), fromOut: -1})
	case isa.IndPortMem:
		v.uses = append(v.uses, indUse{trace: idx, port: int(k.Idx), elem: k.IdxElem, n: satMul(k.Count, uint64(k.IdxElem))})
		v.consumeOut(k.Src, satMul(k.Count, uint64(k.DataElem)))
		v.ops = append(v.ops, memOp{kind: opClobberMem})
	}
}

// constRun materializes the literal bytes an SD_Const_Port stages.
func constRun(k isa.ConstPort) stagedRun {
	n := satMul(k.Count, uint64(k.Elem))
	r := stagedRun{n: n, fromOut: -1}
	if n == 0 || n > maxKnownBytes {
		return r
	}
	var word [8]byte
	binary.LittleEndian.PutUint64(word[:], k.Value)
	r.data = make([]byte, 0, n)
	for i := uint64(0); i < k.Count; i++ {
		r.data = append(r.data, word[:k.Elem]...)
	}
	return r
}

// flushEpoch resolves the epoch's stream values (replay + functional
// evaluation, to a fixpoint) and matches each indirect consumption
// against its port's FIFO.
func (v *valuePass) flushEpoch() {
	v.resolveEpoch()

	type cursor struct {
		run int
		off uint64
	}
	cursors := map[int]*cursor{}
	for _, u := range v.uses {
		c := cursors[u.port]
		if c == nil {
			c = &cursor{}
			cursors[u.port] = c
		}
		runs := v.inRuns[u.port]
		need := u.n
		known := need > 0 && need <= maxKnownBytes && u.elem.Valid()
		buf := make([]byte, 0, min64(need, maxKnownBytes))
		for need > 0 && c.run < len(runs) {
			r := runs[c.run]
			take := min64(need, r.n-c.off)
			if r.data != nil && known {
				buf = append(buf, r.data[c.off:c.off+take]...)
			} else {
				known = false
			}
			need -= take
			c.off += take
			if c.off == r.n {
				c.run++
				c.off = 0
			}
		}
		if need > 0 || !known {
			continue // under-staged (a balance error) or data-dependent
		}
		v.ranges[u.trace] = byteRange(buf, u.elem)
	}
}

// resolveEpoch closes the epoch's value analysis: it replays the
// epoch's memory/scratchpad transfers against the known-byte images and
// functionally evaluates recurrence-staged streams, iterating because
// the two feed each other — a reload resolved by the replay may
// complete the known input prefix the evaluator needs, whose outputs a
// later store then deposits for the next reload. Every round restores
// the epoch-entry snapshot first so stores are never applied twice; the
// final replay leaves the images in their epoch-exit state for the next
// epoch to build on.
func (v *valuePass) resolveEpoch() {
	snapMem := maps.Clone(v.mem)
	snapScratch := maps.Clone(v.scratch)
	for round := 0; ; round++ {
		v.mem, v.scratch = maps.Clone(snapMem), maps.Clone(snapScratch)
		changed := v.replay()
		if v.resolveRecurrences() {
			changed = true
		}
		if !changed || round >= maxResolveRounds-1 {
			break
		}
	}
	// Final replay with the complete stream set, writing the images the
	// next epoch inherits.
	v.mem, v.scratch = snapMem, snapScratch
	v.replay()
}

// replay applies the epoch's transfers, in program order, to the
// known-byte images: port-driven stores deposit (or invalidate) bytes,
// loads resolve staged runs whose source bytes are fully known, and
// data-dependent scatters clobber the DRAM image. It reports whether
// any run newly resolved.
func (v *valuePass) replay() bool {
	changed := false
	for i := range v.ops {
		op := &v.ops[i]
		switch op.kind {
		case opMemToScratch:
			if end := satAdd(op.addr, op.n); end > v.scratchCap {
				invalidate(v.scratch, op.addr, end)
			} else {
				copyPattern(v.mem, op.pat, v.scratch, op.addr, op.n)
			}
		case opPortToScratch:
			data := v.outSlice(op.fromOut, op.off, op.n)
			if satAdd(op.addr, op.n) > v.scratchCap {
				data = nil // out of bounds (an oob finding); value untracked
			}
			storeLinear(v.scratch, op.addr, op.n, data)
		case opScratchToPort:
			if v.fillRun(op, v.scratch) {
				changed = true
			}
		case opMemToPort:
			if v.fillRun(op, v.mem) {
				changed = true
			}
		case opPortToMem:
			storePattern(v.mem, op.pat, op.n, v.outSlice(op.fromOut, op.off, op.n))
		case opClobberMem:
			clear(v.mem)
		}
	}
	return changed
}

// outSlice returns the materialized bytes an output port produced at
// [off, off+n), or nil when the stream is not (yet) resolved that far.
func (v *valuePass) outSlice(port int, off, n uint64) []byte {
	s := v.outStreams[port]
	end := satAdd(off, n)
	if end > uint64(len(s)) {
		return nil
	}
	return s[off:end]
}

// fillRun resolves a staged load run when every byte of its source
// footprint is known in the image.
func (v *valuePass) fillRun(op *memOp, img map[uint64]byte) bool {
	runs := v.inRuns[op.port]
	if op.runIdx < 0 || op.runIdx >= len(runs) || runs[op.runIdx].data != nil {
		return false
	}
	if op.n == 0 || op.n > maxKnownBytes {
		return false
	}
	if _, _, ok := op.pat.Extent(); !ok {
		return false
	}
	buf := make([]byte, 0, op.n)
	known := true
	op.pat.EachByte(func(a uint64) {
		b, ok := img[a]
		if !ok {
			known = false
		}
		buf = append(buf, b)
	})
	if !known || uint64(len(buf)) != op.n {
		return false
	}
	runs[op.runIdx].data = buf
	return true
}

// storeLinear writes n data bytes at [addr, addr+n) of an image, or
// just invalidates the range when the bytes are unknown or the image is
// at capacity (unknown is always sound; a dropped known byte only makes
// a downstream reload unresolvable).
func storeLinear(img map[uint64]byte, addr, n uint64, data []byte) {
	invalidate(img, addr, satAdd(addr, n))
	if data == nil || uint64(len(data)) != n || uint64(len(img))+n > maxKnownBytes {
		return
	}
	for i, b := range data {
		img[addr+uint64(i)] = b
	}
}

// storePattern writes data bytes through an affine footprint in stream
// order (revisiting patterns overwrite, matching execution), or
// invalidates the footprint's extent when the bytes are unknown. A
// pattern whose extent overflows clobbers the whole image: its reach is
// unbounded.
func storePattern(img map[uint64]byte, pat isa.Affine, n uint64, data []byte) {
	lo, hi, ok := pat.Extent()
	if !ok {
		clear(img)
		return
	}
	invalidate(img, lo, hi)
	if data == nil || uint64(len(data)) != n || uint64(len(img))+n > maxKnownBytes {
		return
	}
	i := 0
	pat.EachByte(func(a uint64) {
		if i < len(data) {
			img[a] = data[i]
		}
		i++
	})
}

// copyPattern copies bytes read through an affine footprint of src, in
// stream order, into a linear range of dst; each unknown source byte
// invalidates its destination byte.
func copyPattern(src map[uint64]byte, pat isa.Affine, dst map[uint64]byte, addr, n uint64) {
	invalidate(dst, addr, satAdd(addr, n))
	if n == 0 || n > maxKnownBytes {
		return
	}
	if _, _, ok := pat.Extent(); !ok {
		return
	}
	room := uint64(len(dst))+n <= maxKnownBytes
	i := uint64(0)
	pat.EachByte(func(a uint64) {
		if b, known := src[a]; known && room {
			dst[addr+i] = b
		}
		i++
	})
}

// invalidate forgets every known byte in [lo, hi).
func invalidate(img map[uint64]byte, lo, hi uint64) {
	for a := range img {
		if a >= lo && a < hi {
			delete(img, a)
		}
	}
}

// byteRange parses buf as little-endian unsigned elem-sized values and
// returns their min/max.
func byteRange(buf []byte, elem isa.ElemSize) idxRange {
	r := idxRange{lo: ^uint64(0), hi: 0}
	for o := 0; o+int(elem) <= len(buf); o += int(elem) {
		var word [8]byte
		copy(word[:], buf[o:o+int(elem)])
		x := binary.LittleEndian.Uint64(word[:])
		if x < r.lo {
			r.lo = x
		}
		if x > r.hi {
			r.hi = x
		}
	}
	return r
}

// resolveRecurrences materializes, where possible, the output-port byte
// streams that SD_Port_Port commands staged into indirect ports and
// that SD_Port_Scratch/SD_Port_Mem stores deposit into the byte images,
// by functionally evaluating the active graph from known input streams.
// It reports whether any stream or staged run newly resolved.
func (v *valuePass) resolveRecurrences() bool {
	if v.sched == nil {
		return false
	}
	g := v.sched.Graph

	// Instances needed per output port, driven by recurrence runs
	// sitting in indirect ports and by port-driven stores (the runs and
	// ops whose bytes this pass consumes; recurrences into mapped data
	// ports are loop-carried dependences the functional evaluation
	// cannot close over).
	needInst := uint64(0)
	needed := false
	consider := func(fromOut int, off, n uint64) {
		bpi := outBytesPerInstance(v.sched, fromOut)
		end := satAdd(off, n)
		if bpi == 0 || end > maxKnownBytes {
			return
		}
		if end <= uint64(len(v.outStreams[fromOut])) {
			return // already materialized that far
		}
		needed = true
		if inst := (end + bpi - 1) / bpi; inst > needInst {
			needInst = inst
		}
	}
	for p, runs := range v.inRuns {
		if p >= len(v.fabric.InPorts) || !v.fabric.InPorts[p].Indirect {
			continue
		}
		for _, r := range runs {
			if r.fromOut < 0 || r.data != nil {
				continue
			}
			consider(r.fromOut, r.off, r.n)
		}
	}
	for _, op := range v.ops {
		if op.kind == opPortToScratch || op.kind == opPortToMem {
			consider(op.fromOut, op.off, op.n)
		}
	}
	if !needed || needInst == 0 || needInst > maxEvalInstances {
		return false
	}

	// Known prefix of every mapped input port, in whole instances.
	inWords := make([][]uint64, len(g.Ins))
	avail := needInst
	for dfgPort, hw := range v.sched.InPortMap {
		prefix := knownPrefix(v.inRuns[hw])
		instBytes := uint64(g.Ins[dfgPort].Width) * wordBytes
		if n := uint64(len(prefix)) / instBytes; n < avail {
			avail = n
		}
		words := make([]uint64, 0, len(prefix)/8)
		for o := 0; o+8 <= len(prefix); o += 8 {
			words = append(words, binary.LittleEndian.Uint64(prefix[o:]))
		}
		inWords[dfgPort] = words
	}
	if avail == 0 {
		return false
	}

	ev, err := dfg.NewEvaluator(g)
	if err != nil {
		return false
	}
	outBytes := make([][]byte, len(g.Outs))
	ins := make([][]uint64, len(g.Ins))
	for inst := uint64(0); inst < avail; inst++ {
		for p := range g.Ins {
			w := uint64(g.Ins[p].Width)
			ins[p] = inWords[p][inst*w : (inst+1)*w]
		}
		outs, err := ev.Eval(ins)
		if err != nil {
			return false
		}
		for p, words := range outs {
			eb := g.Outs[p].ElemBytes
			for _, w := range words {
				var b [8]byte
				binary.LittleEndian.PutUint64(b[:], w)
				outBytes[p] = append(outBytes[p], b[:eb]...)
			}
		}
	}

	// Publish the materialized streams (they only ever grow within an
	// epoch: known prefixes are append-only, the evaluator is
	// deterministic) and patch resolved bytes back into the
	// indirect-port runs.
	changed := false
	for dfgPort, hw := range v.sched.OutPortMap {
		if s := outBytes[dfgPort]; uint64(len(s)) > uint64(len(v.outStreams[hw])) {
			v.outStreams[hw] = s
			changed = true
		}
	}
	for p, runs := range v.inRuns {
		if p >= len(v.fabric.InPorts) || !v.fabric.InPorts[p].Indirect {
			continue
		}
		for i, r := range runs {
			if r.fromOut < 0 || r.data != nil {
				continue
			}
			if data := v.outSlice(r.fromOut, r.off, r.n); data != nil {
				runs[i].data = data
				changed = true
			}
		}
	}
	return changed
}

// knownPrefix concatenates the leading literal bytes of a run list,
// stopping at the first unknown or recurrence-staged run.
func knownPrefix(runs []stagedRun) []byte {
	var out []byte
	for _, r := range runs {
		if r.data == nil {
			break
		}
		if uint64(len(out))+r.n > maxKnownBytes {
			break
		}
		out = append(out, r.data...)
	}
	return out
}

// outBytesPerInstance is the bytes hardware output port hw produces per
// dataflow instance under the schedule, or 0 when unmapped.
func outBytesPerInstance(s *cgra.Schedule, hw int) uint64 {
	for dfgPort, h := range s.OutPortMap {
		if h == hw {
			return uint64(s.Graph.Outs[dfgPort].BytesPerInstance())
		}
	}
	return 0
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
