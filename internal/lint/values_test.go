package lint_test

import (
	"strings"
	"testing"

	"softbrain/internal/core"
	"softbrain/internal/dfg"
	"softbrain/internal/isa"
	"softbrain/internal/lint"
)

// indPort returns the first indirect-capable input port of the fabric.
func indPort(t *testing.T, p *core.Program, cfg core.Config) isa.InPortID {
	t.Helper()
	port := p.IndirectIn(cfg.Fabric, 0)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	return port
}

// TestIndirectConstGatherRace: indices staged from SD_Const_Port are
// statically known, so the gather's footprint participates in the race
// check like a direct stream.
func TestIndirectConstGatherRace(t *testing.T) {
	p, cfg := newProg(t)
	ind := indPort(t, p, cfg)
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 8), Dst: p.In("B")})
	wr := emit(t, p, isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x3000, 8)})
	// Two known indices 0 and 1 -> gather touches [0x3000, 0x3008),
	// exactly the unordered write's footprint.
	emit(t, p, isa.ConstPort{Value: 0, Elem: isa.Elem32, Count: 1, Dst: ind})
	emit(t, p, isa.ConstPort{Value: 1, Elem: isa.Elem32, Count: 1, Dst: ind})
	g := emit(t, p, isa.IndPortPort{
		Idx: ind, IdxElem: isa.Elem32,
		Offset: 0x3000, Scale: 4, DataElem: isa.Elem32, Count: 2,
		Dst: p.In("A"),
	})
	emit(t, p, isa.BarrierAll{})

	fs, err := lint.Check(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want one race", fs)
	}
	f := fs[0]
	if f.Check != lint.CheckRace || f.Index != g || f.Other != wr || f.Barrier != isa.KindBarrierAll {
		t.Fatalf("finding = %+v, want race at %d paired with %d needing SD_Barrier_All", f, g, wr)
	}
	if !strings.Contains(f.Msg, "[0, 1]") {
		t.Fatalf("message %q does not show the resolved index range", f.Msg)
	}

	// The same program with an ordering barrier before the gather is clean.
	q, _ := newProg(t)
	emit(t, q, isa.MemPort{Src: isa.Linear(0x2000, 8), Dst: q.In("B")})
	emit(t, q, isa.PortMem{Src: q.Out("C"), Dst: isa.Linear(0x3000, 8)})
	emit(t, q, isa.ConstPort{Value: 0, Elem: isa.Elem32, Count: 1, Dst: ind})
	emit(t, q, isa.ConstPort{Value: 1, Elem: isa.Elem32, Count: 1, Dst: ind})
	emit(t, q, isa.BarrierAll{})
	emit(t, q, isa.IndPortPort{
		Idx: ind, IdxElem: isa.Elem32,
		Offset: 0x3000, Scale: 4, DataElem: isa.Elem32, Count: 2,
		Dst: q.In("A"),
	})
	checkFindings(t, q, cfg, nil)
}

// TestIndirectConstGatherDisjoint: a bounded gather whose footprint
// misses every open window stays silent — ranges make the check precise,
// not just conservative.
func TestIndirectConstGatherDisjoint(t *testing.T) {
	p, cfg := newProg(t)
	ind := indPort(t, p, cfg)
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 8), Dst: p.In("B")})
	emit(t, p, isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x3000, 8)})
	emit(t, p, isa.ConstPort{Value: 0x100, Elem: isa.Elem32, Count: 2, Dst: ind})
	emit(t, p, isa.IndPortPort{
		Idx: ind, IdxElem: isa.Elem32,
		Offset: 0x3000, Scale: 4, DataElem: isa.Elem32, Count: 2,
		Dst: p.In("A"),
	})
	emit(t, p, isa.BarrierAll{})
	checkFindings(t, p, cfg, nil)
}

// TestIndirectElemSplit: the byte-level model resolves ranges across
// element-size mismatches — one 64-bit constant staged, consumed as two
// 32-bit indices (its low and high words).
func TestIndirectElemSplit(t *testing.T) {
	p, cfg := newProg(t)
	ind := indPort(t, p, cfg)
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 8), Dst: p.In("B")})
	wr := emit(t, p, isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x3010, 8)})
	// Staged word 0x0000_0005_0000_0003 splits into indices {3, 5}.
	emit(t, p, isa.ConstPort{Value: 5<<32 | 3, Elem: isa.Elem64, Count: 1, Dst: ind})
	g := emit(t, p, isa.IndPortPort{
		Idx: ind, IdxElem: isa.Elem32,
		Offset: 0x3000, Scale: 4, DataElem: isa.Elem32, Count: 2,
		Dst: p.In("A"),
	})
	emit(t, p, isa.BarrierAll{})

	fs, err := lint.Check(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Index != g || fs[0].Other != wr {
		t.Fatalf("findings = %v, want one race at %d vs %d", fs, g, wr)
	}
	if !strings.Contains(fs[0].Msg, "[3, 5]") {
		t.Fatalf("message %q does not show the split index range", fs[0].Msg)
	}
}

// TestIndirectUnboundable: indices loaded from memory are data-dependent.
// The default analysis must stay silent (the documented gap for truly
// unboundable streams); strict mode must flag the possible conflict.
func TestIndirectUnboundable(t *testing.T) {
	build := func() (*core.Program, core.Config, int, int) {
		p, cfg := newProg(t)
		ind := indPort(t, p, cfg)
		emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 8), Dst: p.In("B")})
		wr := emit(t, p, isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x3000, 8)})
		emit(t, p, isa.MemPort{Src: isa.Linear(0x4000, 8), Dst: ind})
		g := emit(t, p, isa.IndPortPort{
			Idx: ind, IdxElem: isa.Elem32,
			Offset: 0x3000, Scale: 4, DataElem: isa.Elem32, Count: 2,
			Dst: p.In("A"),
		})
		emit(t, p, isa.BarrierAll{})
		return p, cfg, g, wr
	}

	p, cfg, _, _ := build()
	checkFindings(t, p, cfg, nil) // default: silent

	p, cfg, g, _ := build()
	fs, err := lint.CheckWith(p, cfg, lint.Opts{StrictIndirect: true})
	if err != nil {
		t.Fatal(err)
	}
	var raced bool
	for _, f := range fs {
		if f.Check == lint.CheckRace && f.Index == g && f.Sev == lint.SevError {
			raced = true
			if f.Barrier != isa.KindBarrierAll {
				t.Fatalf("strict finding barrier = %v, want SD_Barrier_All", f.Barrier)
			}
		}
	}
	if !raced {
		t.Fatalf("strict mode reported no race at the unboundable gather: %v", fs)
	}
}

// TestIndirectAffineRecurrence: an index stream generated by the fabric
// itself — an accumulator iota over constant inputs, staged through
// SD_Port_Port — resolves through functional evaluation of the graph.
func TestIndirectAffineRecurrence(t *testing.T) {
	cfg := core.DefaultConfig()
	b := dfg.NewBuilder("iota")
	x := b.Input("X", 1)
	r := b.Input("R", 1)
	b.Output("I", b.N(dfg.Acc(64), x.W(0), r.W(0))) // 1, 2, 3, ...
	b.Output("O", b.N(dfg.Add(64), x.W(0), x.W(0)))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := core.NewProgram("iota")
	p.CompileAndConfigure(cfg.Fabric, g)
	ind := indPort(t, p, cfg)

	const n = 4
	emit(t, p, isa.ConstPort{Value: 1, Elem: isa.Elem64, Count: n, Dst: p.In("X")})
	emit(t, p, isa.ConstPort{Value: 0, Elem: isa.Elem64, Count: n, Dst: p.In("R")})
	emit(t, p, isa.PortPort{Src: p.Out("I"), Elem: isa.Elem64, Count: n, Dst: ind})
	// The scatter lands on indices 1..4 -> [0x5008, 0x5028), which the
	// earlier template read overlaps.
	rd := emit(t, p, isa.MemScratch{Src: isa.Linear(0x5000, 64), ScratchAddr: 0})
	sc := emit(t, p, isa.IndPortMem{
		Idx: ind, IdxElem: isa.Elem64,
		Offset: 0x5000, Scale: 8, DataElem: isa.Elem64, Count: n,
		Src: p.Out("O"),
	})
	emit(t, p, isa.BarrierAll{})

	fs, err := lint.Check(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want exactly the evaluated-range race", fs)
	}
	f := fs[0]
	if f.Index != sc || f.Other != rd || f.Barrier != isa.KindBarrierAll {
		t.Fatalf("finding = %+v, want race at %d vs %d", f, sc, rd)
	}
	if !strings.Contains(f.Msg, "[1, 4]") {
		t.Fatalf("message %q does not show the accumulator-derived range", f.Msg)
	}
}

// TestIndirectConstOOB: a bounded indirect footprint is bounds-checked
// like any direct stream.
func TestIndirectConstOOB(t *testing.T) {
	p, cfg := newProg(t)
	ind := indPort(t, p, cfg)
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 8), Dst: p.In("B")})
	emit(t, p, isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x3000, 8)})
	emit(t, p, isa.ConstPort{Value: 2, Elem: isa.Elem32, Count: 2, Dst: ind})
	g := emit(t, p, isa.IndPortPort{
		Idx: ind, IdxElem: isa.Elem32,
		Offset: core.ConfigSpace - 8, Scale: 4, DataElem: isa.Elem32, Count: 2,
		Dst: p.In("A"),
	})
	emit(t, p, isa.BarrierAll{})
	checkFindings(t, p, cfg, []probe{{lint.CheckOOB, g}})
}

// TestTrailingIndirectScatter: an unordered trailing SD_IndPort_Mem
// must warn like any other write stream, and a final SD_Barrier_All —
// the barrier-equivalent drain — must silence the warning even though
// the scatter's footprint is data-dependent.
func TestTrailingIndirectScatter(t *testing.T) {
	build := func(drain bool) (*core.Program, core.Config, int) {
		p, cfg := newProg(t)
		ind := indPort(t, p, cfg)
		emit(t, p, isa.MemPort{Src: isa.Linear(0x1000, 8), Dst: p.In("A")})
		emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 8), Dst: p.In("B")})
		emit(t, p, isa.MemPort{Src: isa.Linear(0x4000, 8), Dst: ind})
		last := emit(t, p, isa.IndPortMem{
			Idx: ind, IdxElem: isa.Elem32,
			Offset: 0x3000, Scale: 4, DataElem: isa.Elem32, Count: 2,
			Src: p.Out("C"),
		})
		if drain {
			last = emit(t, p, isa.BarrierAll{})
		}
		return p, cfg, last
	}

	p, cfg, _ := build(true)
	checkFindings(t, p, cfg, nil)

	p, cfg, last := build(false)
	fs, err := lint.Check(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Check != lint.CheckRace || fs[0].Sev != lint.SevWarning || fs[0].Index != last {
		t.Fatalf("findings = %v, want one trailing-write warning at %d", fs, last)
	}
	if fs[0].Barrier != isa.KindBarrierAll {
		t.Fatalf("warning barrier = %v, want SD_Barrier_All", fs[0].Barrier)
	}
}

// TestExhaustivePairs: Opts.Exhaustive reports every conflicting pair
// where the default stops at the first.
func TestExhaustivePairs(t *testing.T) {
	p, cfg := newProg(t)
	// Two scratch-load reads of the write's target region; neither feeds
	// the write's output port, so the RMW exemption does not apply.
	emit(t, p, isa.MemScratch{Src: isa.Linear(0x1000, 64), ScratchAddr: 0})
	emit(t, p, isa.MemScratch{Src: isa.Linear(0x1000, 64), ScratchAddr: 64})
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2000, 64), Dst: p.In("A")})
	emit(t, p, isa.MemPort{Src: isa.Linear(0x2800, 64), Dst: p.In("B")})
	emit(t, p, isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(0x1000, 64)})
	emit(t, p, isa.BarrierAll{})

	count := func(o lint.Opts) int {
		fs, err := lint.CheckWith(p, cfg, o)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, f := range fs {
			if f.Check == lint.CheckRace {
				n++
			}
		}
		return n
	}
	if n := count(lint.Opts{}); n != 1 {
		t.Fatalf("default race count = %d, want 1 (first pair only)", n)
	}
	if n := count(lint.Opts{Exhaustive: true}); n != 2 {
		t.Fatalf("exhaustive race count = %d, want 2 (write vs both reads)", n)
	}
}

// iotaProg builds a program on the iota graph: an accumulator output I
// producing 1, 2, 3, ... from constant inputs, plus a second output O.
func iotaProg(t *testing.T) (*core.Program, core.Config, *dfg.Graph) {
	t.Helper()
	cfg := core.DefaultConfig()
	b := dfg.NewBuilder("iota")
	x := b.Input("X", 1)
	r := b.Input("R", 1)
	b.Output("I", b.N(dfg.Acc(64), x.W(0), r.W(0)))
	b.Output("O", b.N(dfg.Add(64), x.W(0), x.W(0)))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := core.NewProgram("iota")
	p.CompileAndConfigure(cfg.Fabric, g)
	return p, cfg, g
}

// expectBoundedRace asserts exactly one race finding pairing sc with rd
// whose message carries the resolved index range.
func expectBoundedRace(t *testing.T, p *core.Program, cfg core.Config, sc, rd int, rng string) {
	t.Helper()
	fs, err := lint.Check(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want exactly the bounded-range race", fs)
	}
	f := fs[0]
	if f.Check != lint.CheckRace || f.Index != sc || f.Other != rd {
		t.Fatalf("finding = %+v, want race at %d paired with %d", f, sc, rd)
	}
	if !strings.Contains(f.Msg, rng) {
		t.Fatalf("message %q does not show the resolved index range %s", f.Msg, rng)
	}
}

// TestScratchRoundTripResolves: indices the fabric computed, drained to
// the scratchpad with SD_Port_Scratch, and reloaded into the indirect
// port with SD_Scratch_Port keep their bound across the round trip, so
// the gather's footprint still participates in the race check
// (previously a documented soundness gap).
func TestScratchRoundTripResolves(t *testing.T) {
	p, cfg, _ := iotaProg(t)
	ind := indPort(t, p, cfg)

	const n = 4
	emit(t, p, isa.ConstPort{Value: 1, Elem: isa.Elem64, Count: n, Dst: p.In("X")})
	emit(t, p, isa.ConstPort{Value: 0, Elem: isa.Elem64, Count: n, Dst: p.In("R")})
	emit(t, p, isa.PortScratch{Src: p.Out("I"), Elem: isa.Elem64, Count: n, ScratchAddr: 0})
	emit(t, p, isa.BarrierScratchWr{})
	emit(t, p, isa.ScratchPort{Src: isa.Linear(0, n*8), Dst: ind})
	rd := emit(t, p, isa.MemScratch{Src: isa.Linear(0x5000, 64), ScratchAddr: 64})
	sc := emit(t, p, isa.IndPortMem{
		Idx: ind, IdxElem: isa.Elem64,
		Offset: 0x5000, Scale: 8, DataElem: isa.Elem64, Count: n,
		Src: p.Out("O"),
	})
	emit(t, p, isa.BarrierAll{})
	expectBoundedRace(t, p, cfg, sc, rd, "[1, 4]")
}

// TestScratchRoundTripAcrossConfig: the scratchpad image persists across
// SD_Config, so indices parked under one configuration and reloaded
// under the next stay bounded — the pattern of staged index-generator
// pipelines.
func TestScratchRoundTripAcrossConfig(t *testing.T) {
	p, cfg, g := iotaProg(t)
	ind := indPort(t, p, cfg)

	const n = 4
	// Epoch A: generate 1..n and park them in the scratchpad.
	emit(t, p, isa.ConstPort{Value: 1, Elem: isa.Elem64, Count: n, Dst: p.In("X")})
	emit(t, p, isa.ConstPort{Value: 0, Elem: isa.Elem64, Count: n, Dst: p.In("R")})
	emit(t, p, isa.PortScratch{Src: p.Out("I"), Elem: isa.Elem64, Count: n, ScratchAddr: 0})
	emit(t, p, isa.CleanPort{Src: p.Out("O"), Elem: isa.Elem64, Count: n})
	// Epoch B: reconfigure (a full fence), reload the parked indices,
	// and scatter through them.
	p.CompileAndConfigure(cfg.Fabric, g)
	emit(t, p, isa.ScratchPort{Src: isa.Linear(0, n*8), Dst: ind})
	emit(t, p, isa.ConstPort{Value: 1, Elem: isa.Elem64, Count: n, Dst: p.In("X")})
	emit(t, p, isa.ConstPort{Value: 0, Elem: isa.Elem64, Count: n, Dst: p.In("R")})
	emit(t, p, isa.CleanPort{Src: p.Out("I"), Elem: isa.Elem64, Count: n})
	rd := emit(t, p, isa.MemScratch{Src: isa.Linear(0x5000, 64), ScratchAddr: 64})
	sc := emit(t, p, isa.IndPortMem{
		Idx: ind, IdxElem: isa.Elem64,
		Offset: 0x5000, Scale: 8, DataElem: isa.Elem64, Count: n,
		Src: p.Out("O"),
	})
	emit(t, p, isa.BarrierAll{})
	expectBoundedRace(t, p, cfg, sc, rd, "[1, 4]")
}

// TestMemRoundTripResolves: DRAM round trips resolve too — values the
// program stored with SD_Port_Mem and reloaded with SD_Mem_Port keep
// their bound.
func TestMemRoundTripResolves(t *testing.T) {
	p, cfg, _ := iotaProg(t)
	ind := indPort(t, p, cfg)

	const n = 4
	emit(t, p, isa.ConstPort{Value: 1, Elem: isa.Elem64, Count: n, Dst: p.In("X")})
	emit(t, p, isa.ConstPort{Value: 0, Elem: isa.Elem64, Count: n, Dst: p.In("R")})
	emit(t, p, isa.PortMem{Src: p.Out("I"), Dst: isa.Linear(0x6000, n*8)})
	emit(t, p, isa.BarrierAll{})
	emit(t, p, isa.MemPort{Src: isa.Linear(0x6000, n*8), Dst: ind})
	rd := emit(t, p, isa.MemScratch{Src: isa.Linear(0x5000, 64), ScratchAddr: 0})
	sc := emit(t, p, isa.IndPortMem{
		Idx: ind, IdxElem: isa.Elem64,
		Offset: 0x5000, Scale: 8, DataElem: isa.Elem64, Count: n,
		Src: p.Out("O"),
	})
	emit(t, p, isa.BarrierAll{})
	expectBoundedRace(t, p, cfg, sc, rd, "[1, 4]")
}

// strictRaceAt asserts that the default analysis stays silent on the
// program while strict-indirect mode flags a race at trace index sc —
// the contract for every unboundable give-up path: never a wrong bound,
// only an honest "unknown".
func strictRaceAt(t *testing.T, build func() (*core.Program, core.Config, int)) {
	t.Helper()
	p, cfg, _ := build()
	checkFindings(t, p, cfg, nil) // default: silent

	p, cfg, sc := build()
	fs, err := lint.CheckWith(p, cfg, lint.Opts{StrictIndirect: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		if f.Check == lint.CheckRace && f.Index == sc && f.Sev == lint.SevError {
			return
		}
	}
	t.Fatalf("strict mode reported no race at the unboundable access %d: %v", sc, fs)
}

// TestUnboundedInductionUnresolved: a recurrence index stream needing
// more dataflow instances than the evaluator's cap must report
// unboundable (silent by default, flagged under strict) rather than a
// wrong bound.
func TestUnboundedInductionUnresolved(t *testing.T) {
	strictRaceAt(t, func() (*core.Program, core.Config, int) {
		p, cfg, _ := iotaProg(t)
		ind := indPort(t, p, cfg)
		const n = 5000 // > maxEvalInstances
		emit(t, p, isa.ConstPort{Value: 1, Elem: isa.Elem64, Count: n, Dst: p.In("X")})
		emit(t, p, isa.ConstPort{Value: 0, Elem: isa.Elem64, Count: n, Dst: p.In("R")})
		emit(t, p, isa.PortPort{Src: p.Out("I"), Elem: isa.Elem64, Count: n, Dst: ind})
		emit(t, p, isa.MemScratch{Src: isa.Linear(0x5000, 64), ScratchAddr: 0})
		sc := emit(t, p, isa.IndPortMem{
			Idx: ind, IdxElem: isa.Elem64,
			Offset: 0x5000, Scale: 8, DataElem: isa.Elem64, Count: n,
			Src: p.Out("O"),
		})
		emit(t, p, isa.BarrierAll{})
		return p, cfg, sc
	})
}

// TestPartialRoundTripUnresolved: a reload that reads past the bytes the
// program actually stored must stay unboundable — the known-byte image
// never invents values for the uncovered tail.
func TestPartialRoundTripUnresolved(t *testing.T) {
	strictRaceAt(t, func() (*core.Program, core.Config, int) {
		p, cfg, _ := iotaProg(t)
		ind := indPort(t, p, cfg)
		const n = 5
		emit(t, p, isa.ConstPort{Value: 1, Elem: isa.Elem64, Count: n, Dst: p.In("X")})
		emit(t, p, isa.ConstPort{Value: 0, Elem: isa.Elem64, Count: n, Dst: p.In("R")})
		// Store only the first n-1 indices; the reload reads n.
		emit(t, p, isa.PortMem{Src: p.Out("I"), Dst: isa.Linear(0x6000, (n-1)*8)})
		emit(t, p, isa.CleanPort{Src: p.Out("I"), Elem: isa.Elem64, Count: 1})
		emit(t, p, isa.BarrierAll{})
		emit(t, p, isa.MemPort{Src: isa.Linear(0x6000, n*8), Dst: ind})
		emit(t, p, isa.MemScratch{Src: isa.Linear(0x5000, 64), ScratchAddr: 0})
		sc := emit(t, p, isa.IndPortMem{
			Idx: ind, IdxElem: isa.Elem64,
			Offset: 0x5000, Scale: 8, DataElem: isa.Elem64, Count: n,
			Src: p.Out("O"),
		})
		emit(t, p, isa.BarrierAll{})
		return p, cfg, sc
	})
}
