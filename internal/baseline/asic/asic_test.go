package asic

import (
	"testing"

	"softbrain/internal/dfg"
)

func macKernel(t testing.TB, iters uint64) Kernel {
	t.Helper()
	b := dfg.NewBuilder("mac")
	v := b.Input("V", 1)
	x := b.Input("X", 1)
	r := b.Input("R", 1)
	b.Output("Y", b.N(dfg.Acc(64), b.N(dfg.Mul(64), v.W(0), x.W(0)), r.W(0)))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return Kernel{Name: "mac", Graph: g, Iters: iters, BytesPerIter: 16, LocalSRAM: 1024}
}

func TestExploreSpansTradeoffs(t *testing.T) {
	ds, err := Explore(macKernel(t, 100000))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) < 8 {
		t.Fatalf("only %d design points", len(ds))
	}
	var minCyc, maxCyc uint64 = ^uint64(0), 0
	var minArea, maxArea float64 = 1e9, 0
	for _, d := range ds {
		if d.Cycles == 0 || d.PowerMW <= 0 || d.AreaMM2 <= 0 {
			t.Fatalf("degenerate design %+v", d)
		}
		if d.Cycles < minCyc {
			minCyc = d.Cycles
		}
		if d.Cycles > maxCyc {
			maxCyc = d.Cycles
		}
		if d.AreaMM2 < minArea {
			minArea = d.AreaMM2
		}
		if d.AreaMM2 > maxArea {
			maxArea = d.AreaMM2
		}
	}
	if maxCyc < 4*minCyc {
		t.Error("unrolling should span a wide performance range")
	}
	if maxArea < 2*minArea {
		t.Error("unrolling should span a wide area range")
	}
}

func TestUnrollingHelpsUntilMemoryBound(t *testing.T) {
	k := macKernel(t, 1000000)
	k.BytesPerIter = 64 // 1 line per iteration: memory bound immediately
	ds, _ := Explore(k)
	for _, d := range ds {
		if d.Pipelined && d.Cycles < k.Iters {
			t.Errorf("memory-bound design faster than bandwidth allows: %+v", d)
		}
	}
}

func TestSelectIsoPrefersLowPower(t *testing.T) {
	designs := []Design{
		{Unroll: 8, Cycles: 1000, PowerMW: 50, AreaMM2: 0.2},
		{Unroll: 4, Cycles: 1050, PowerMW: 20, AreaMM2: 0.1},
		{Unroll: 16, Cycles: 600, PowerMW: 90, AreaMM2: 0.4},
	}
	d, err := SelectIso(designs, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if d.PowerMW != 20 {
		t.Errorf("selected %+v, want the low-power iso design", d)
	}
}

func TestSelectIsoFallsBackToFastest(t *testing.T) {
	designs := []Design{
		{Cycles: 5000, PowerMW: 10},
		{Cycles: 3000, PowerMW: 30},
	}
	d, err := SelectIso(designs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if d.Cycles != 3000 {
		t.Errorf("fallback picked %+v", d)
	}
}

func TestGenerateEndToEnd(t *testing.T) {
	k := macKernel(t, 500000)
	k.BytesPerIter = 8 // memory bound at 62500 cycles
	d, err := Generate(k, 70000)
	if err != nil {
		t.Fatal(err)
	}
	if float64(d.Cycles) > 1.1*70000 && d.Unroll != 32 {
		t.Errorf("iso selection missed: %+v", d)
	}
	if d.AreaMM2 > 1.0 {
		t.Errorf("a MAC accelerator should be tiny, got %.3f mm^2", d.AreaMM2)
	}
}

func TestExploreRejectsEmptyKernel(t *testing.T) {
	if _, err := Explore(Kernel{}); err == nil {
		t.Error("empty kernel accepted")
	}
	if _, err := SelectIso(nil, 10); err == nil {
		t.Error("empty design space accepted")
	}
}
