// Package asic is the Aladdin-like pre-RTL fixed-function accelerator
// model used for the MachSuite comparison (Figures 12-15). Following the
// paper's methodology, it enumerates a design space over the prescribed
// hardware transformations — loop unrolling, pipelining and memory/array
// partitioning — estimates cycles, power and area per point from the
// workload's datapath graph, and picks a Pareto-optimal design within an
// iso-performance band of the Softbrain result (power prioritized over
// area, Section 7.3).
package asic

import (
	"fmt"
	"math"
	"sort"

	"softbrain/internal/dfg"
	"softbrain/internal/power"
)

// Kernel describes one workload to the accelerator generator.
type Kernel struct {
	Name  string
	Graph *dfg.Graph // datapath of one loop iteration (one instance)
	Iters uint64     // loop iterations (computation instances)

	BytesPerIter float64 // average memory-interface traffic per iteration
	LocalSRAM    int     // bytes of local buffering the datapath needs
	SerialFrac   float64 // fraction of iterations that cannot overlap (0..1)
}

// Design is one evaluated accelerator configuration.
type Design struct {
	Unroll    int
	Partition int
	Pipelined bool

	Cycles  uint64
	PowerMW float64
	AreaMM2 float64
}

// ControlOverheadMW is the fixed power of an accelerator's clock tree,
// sequencing control and memory interface at 55 nm, which activity
// cannot gate away.
const ControlOverheadMW = 18

// unrollFactors is the explored transformation space.
var unrollFactors = []int{1, 2, 4, 8, 16, 32}

// Explore enumerates the design space for k.
func Explore(k Kernel) ([]Design, error) {
	if k.Graph == nil || k.Iters == 0 {
		return nil, fmt.Errorf("asic: kernel %s is empty", k.Name)
	}
	depth := pipelineDepth(k.Graph)
	iterEnergy := iterationEnergyPJ(k.Graph)
	iterArea := datapathArea(k.Graph)

	var out []Design
	for _, u := range unrollFactors {
		for _, pipelined := range []bool{true, false} {
			// Array partitioning scales local memory ports with the
			// unroll factor (Aladdin's partition factor).
			part := u
			ii := 1.0
			if !pipelined {
				ii = float64(depth)
			}
			perIterCycles := ii / float64(u)
			compute := float64(k.Iters)*perIterCycles + float64(depth)
			compute += k.SerialFrac * float64(k.Iters) * float64(depth)
			memory := float64(k.Iters) * k.BytesPerIter / 64.0
			cycles := compute
			if memory > cycles {
				cycles = memory
			}

			// Energy: datapath ops plus SRAM traffic. Power adds the
			// overheads Aladdin's designs carry — clock tree, control
			// FSM and memory interface, plus leakage over logic and the
			// partitioned local SRAM arrays (Section 7.3 notes these
			// memory structures are included and can dominate).
			sramAccesses := float64(k.Iters) * k.BytesPerIter / 8.0
			energyPJ := float64(k.Iters)*iterEnergy + sramAccesses*power.SRAMEnergyPJ
			area := iterArea*float64(u) + power.SRAMArea(k.LocalSRAM*part)
			leakMW := area * 30 // logic + SRAM leakage per mm^2 at 55 nm
			// pJ per cycle at 1 GHz is pJ/ns = mW.
			powerMW := energyPJ/cycles + leakMW + ControlOverheadMW

			out = append(out, Design{
				Unroll: u, Partition: part, Pipelined: pipelined,
				Cycles:  uint64(cycles),
				PowerMW: powerMW,
				AreaMM2: area,
			})
		}
	}
	return out, nil
}

// SelectIso picks the design matching the paper's selection rule: among
// designs within 10% of the target performance (where possible), the
// Pareto-optimal point with power prioritized over area. If no design is
// fast enough, the fastest is returned.
func SelectIso(designs []Design, targetCycles uint64) (Design, error) {
	if len(designs) == 0 {
		return Design{}, fmt.Errorf("asic: empty design space")
	}
	limit := float64(targetCycles) * 1.10
	var band []Design
	for _, d := range designs {
		if float64(d.Cycles) <= limit {
			band = append(band, d)
		}
	}
	if len(band) == 0 {
		// No point is iso-performance; fall back to the fastest.
		best := designs[0]
		for _, d := range designs[1:] {
			if d.Cycles < best.Cycles {
				best = d
			}
		}
		return best, nil
	}
	sort.Slice(band, func(i, j int) bool {
		if band[i].PowerMW != band[j].PowerMW {
			return band[i].PowerMW < band[j].PowerMW
		}
		if band[i].AreaMM2 != band[j].AreaMM2 {
			return band[i].AreaMM2 < band[j].AreaMM2
		}
		return band[i].Cycles < band[j].Cycles
	})
	return band[0], nil
}

// Generate explores and selects in one step.
func Generate(k Kernel, targetCycles uint64) (Design, error) {
	ds, err := Explore(k)
	if err != nil {
		return Design{}, err
	}
	return SelectIso(ds, targetCycles)
}

// pipelineDepth is the datapath's critical path in cycles.
func pipelineDepth(g *dfg.Graph) int {
	order, err := g.TopoOrder()
	if err != nil {
		return 1
	}
	depth := make(map[dfg.NodeID]int)
	maxDepth := 1
	for _, id := range order {
		d := 0
		for _, a := range g.Nodes[id].Args {
			if a.Kind == dfg.RefNode && depth[a.Node] > d {
				d = depth[a.Node]
			}
		}
		depth[id] = d + g.Nodes[id].Op.Latency()
		if depth[id] > maxDepth {
			maxDepth = depth[id]
		}
	}
	return maxDepth
}

// iterationEnergyPJ sums per-op energy over one iteration of the
// datapath, lane-weighted.
func iterationEnergyPJ(g *dfg.Graph) float64 {
	e := 0.0
	for _, n := range g.Nodes {
		c := power.FUClassCosts[n.Op.Class()]
		e += c.EnergyPJ * float64(n.Op.Lanes()) / 4.0
	}
	if e == 0 {
		e = 0.5
	}
	return e
}

// datapathArea sums FU area over one unrolled copy of the datapath.
func datapathArea(g *dfg.Graph) float64 {
	a := 0.0
	for _, n := range g.Nodes {
		a += power.FUClassCosts[n.Op.Class()].AreaMM2
	}
	return math.Max(a, 0.002)
}
