package baseline

import "testing"

func TestCPUComputeVsMemoryBound(t *testing.T) {
	m := OOO4()
	compute := Profile{KernelOps: 1_000_000, MemBytes: 100}
	memory := Profile{KernelOps: 100, MemBytes: 10_000_000}
	cc := m.Cycles(compute)
	mc := m.Cycles(memory)
	if cc <= uint64(float64(compute.KernelOps)/m.EffIPC)-1 {
		t.Errorf("compute-bound cycles %d below ideal", cc)
	}
	if mc != uint64(float64(memory.MemBytes)/m.BytesCyc) {
		t.Errorf("memory-bound cycles %d, want bandwidth bound", mc)
	}
}

func TestCPUBranchPenalty(t *testing.T) {
	m := SingleThreadCPU()
	smooth := Profile{KernelOps: 10000}
	branchy := Profile{KernelOps: 10000, BranchOps: 5000}
	if m.Cycles(branchy) <= m.Cycles(smooth) {
		t.Error("branches should cost cycles")
	}
}

func TestGPUFasterThanCPUOnBigParallelWork(t *testing.T) {
	p := Profile{KernelOps: 50_000_000, MemBytes: 10_000_000}
	speedup := SingleThreadCPU().TimeNS(p) / KeplerGPU().TimeNS(p)
	if speedup < 5 || speedup > 100 {
		t.Errorf("GPU speedup %.1f out of the plausible Figure 11 range", speedup)
	}
}

func TestGPULaunchOverheadDominatesSmallWork(t *testing.T) {
	p := Profile{KernelOps: 100, MemBytes: 100}
	g := KeplerGPU()
	if g.Cycles(p) < g.LaunchCyc {
		t.Error("launch overhead missing")
	}
}

func TestDianNaoComputeAndBandwidthBound(t *testing.T) {
	d := DianNao()
	// Classifier-like layer: MACs dominate when data is reused.
	p := Profile{MACs: 1 << 20, MemBytes: 1 << 10}
	if got, want := d.Cycles(p), uint64(1<<20)/256; got != want {
		t.Errorf("compute-bound DianNao cycles %d, want %d", got, want)
	}
	// Bandwidth-starved layer.
	p = Profile{MACs: 1024, MemBytes: 1 << 20}
	if got, want := d.Cycles(p), uint64(1<<20)/32; got != want {
		t.Errorf("memory-bound DianNao cycles %d, want %d", got, want)
	}
	if d.Cycles(Profile{MACs: 10}) == 0 {
		t.Error("tiny layer should still take a cycle")
	}
}

// The headline DNN shape of Figure 11: DianNao runs a reuse-heavy layer
// around 100x faster than a single CPU thread.
func TestDianNaoVsCPUShape(t *testing.T) {
	// A conv-like layer: each MAC is 2 ops; high reuse.
	p := Profile{KernelOps: 2 << 24, MACs: 1 << 24, MemBytes: 1 << 20}
	speedup := SingleThreadCPU().TimeNS(p) / DianNao().TimeNS(p)
	if speedup < 40 || speedup > 400 {
		t.Errorf("DianNao speedup %.0fx, want order of 100x", speedup)
	}
}
