// Package baseline provides the comparison models of Section 6: an
// analytic single-thread CPU and OOO4 core (the i7-2600K reference), a
// Kepler-class GPU, and the DianNao model the paper itself uses —
// "optimistic... perfect hardware pipelining and scratchpad reuse; bound
// only by parallelism in the neural network topology and by memory
// bandwidth". All power and area constants are normalized to 55 nm, as
// in the paper.
package baseline

// Profile characterizes one workload kernel for the analytic models.
// The simulator-side workload builders fill it from the same golden
// computation that verifies the accelerator's output, so the baselines
// run exactly the work the accelerator ran.
type Profile struct {
	Name      string
	KernelOps uint64 // useful scalar ALU/compare operations
	MACs      uint64 // multiply-accumulate count (DNN models)
	MemBytes  uint64 // compulsory memory traffic in bytes
	BranchOps uint64 // data-dependent control operations (CPU only)
}

// CPUModel is an analytic in-order/out-of-order processor model.
type CPUModel struct {
	Name     string
	FreqGHz  float64
	EffIPC   float64 // sustained useful ops per cycle on kernel code
	Overhead float64 // dynamic instruction expansion (address/loop/control)
	BytesCyc float64 // sustainable memory bytes per cycle
	PowerMW  float64
	AreaMM2  float64
}

// SingleThreadCPU is the Figure 11 baseline: one SandyBridge thread.
func SingleThreadCPU() CPUModel {
	return CPUModel{Name: "CPU-1T", FreqGHz: 3.4, EffIPC: 2.0, Overhead: 2.5, BytesCyc: 8, PowerMW: 6000, AreaMM2: 18}
}

// OOO4 is the Figures 12-14 baseline: a 4-wide out-of-order core.
func OOO4() CPUModel {
	return CPUModel{Name: "OOO4", FreqGHz: 3.4, EffIPC: 2.8, Overhead: 2.5, BytesCyc: 16, PowerMW: 6000, AreaMM2: 18}
}

// TimeNS is the kernel's wall-clock time in nanoseconds; accelerator
// comparisons are in time, since clocks differ.
func (m CPUModel) TimeNS(p Profile) float64 {
	return float64(m.Cycles(p)) / m.FreqGHz
}

// Cycles estimates the kernel's execution time on the CPU: instruction
// throughput bound or memory bound, whichever dominates. Branchy code
// pays a misprediction-flavored penalty per control op.
func (m CPUModel) Cycles(p Profile) uint64 {
	instr := float64(p.KernelOps) * m.Overhead / m.EffIPC
	instr += float64(p.BranchOps) * 3
	memory := float64(p.MemBytes) / m.BytesCyc
	if memory > instr {
		return uint64(memory)
	}
	return uint64(instr)
}

// GPUModel is the Kepler GTX 750 comparison of Figure 11: massive lanes
// at modest sustained utilization, plus kernel-launch overhead.
type GPUModel struct {
	Name      string
	FreqGHz   float64
	OpsCyc    float64 // sustained ops per cycle across all SMs
	BytesCyc  float64 // memory bandwidth in bytes per cycle
	LaunchCyc uint64  // per-phase offload overhead
}

// KeplerGPU returns the calibrated GTX 750 model.
func KeplerGPU() GPUModel {
	return GPUModel{Name: "GPU", FreqGHz: 1.1, OpsCyc: 96, BytesCyc: 80, LaunchCyc: 4000}
}

// TimeNS is the kernel's wall-clock time in nanoseconds.
func (m GPUModel) TimeNS(p Profile) float64 {
	return float64(m.Cycles(p)) / m.FreqGHz
}

// Cycles estimates GPU execution time.
func (m GPUModel) Cycles(p Profile) uint64 {
	compute := float64(p.KernelOps) / m.OpsCyc
	memory := float64(p.MemBytes) / m.BytesCyc
	t := compute
	if memory > t {
		t = memory
	}
	return m.LaunchCyc + uint64(t)
}

// DianNaoModel follows the paper's comparison methodology: 256 16-bit
// MACs per cycle (the NFU), perfect pipelining and scratchpad reuse,
// bound only by topology parallelism and memory bandwidth.
type DianNaoModel struct {
	MACsPerCycle float64
	BytesCyc     float64
	AreaMM2      float64 // Table 3, normalized to 55 nm
	PowerMW      float64
}

// DianNao returns the published configuration (1 GHz).
func DianNao() DianNaoModel {
	return DianNaoModel{MACsPerCycle: 256, BytesCyc: 32, AreaMM2: 2.16, PowerMW: 418.3}
}

// TimeNS is the layer's wall-clock time in nanoseconds at 1 GHz.
func (m DianNaoModel) TimeNS(p Profile) float64 { return float64(m.Cycles(p)) }

// Cycles estimates DianNao execution time for a DNN layer.
func (m DianNaoModel) Cycles(p Profile) uint64 {
	compute := float64(p.MACs) / m.MACsPerCycle
	memory := float64(p.MemBytes) / m.BytesCyc
	if memory > compute {
		return uint64(memory)
	}
	if compute < 1 {
		compute = 1
	}
	return uint64(compute)
}
