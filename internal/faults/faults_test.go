package faults

import "testing"

func TestDisabledProfileHasNilInjector(t *testing.T) {
	if New(Config{}) != nil {
		t.Fatal("zero config must yield a nil injector")
	}
	if (Config{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
}

func TestDeterministicSchedule(t *testing.T) {
	cfg, err := Profile("chaos", 42)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []uint64 {
		j := New(cfg)
		var log []uint64
		for now := uint64(0); now < 2000; now++ {
			log = append(log, j.MemDelay())
			for e := Engine(0); e < NumEngines; e++ {
				if j.Stalled(e, now) {
					log = append(log, uint64(e)+1000)
				}
			}
			log = append(log, uint64(j.BusBudget(EngMSE, 64)))
			line := make([]byte, 64)
			if j.CorruptLine(line) {
				log = append(log, 2000)
			}
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at event %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestStallIsTimedState(t *testing.T) {
	j := New(Config{StallProb: 1, StallMax: 10})
	if !j.Stalled(EngMSE, 5) {
		t.Fatal("StallProb 1 must stall")
	}
	if !j.PendingTimed(5) {
		t.Fatal("an active stall burst must register as a pending timed event")
	}
	if j.PendingTimed(5 + 10) {
		t.Fatal("stall burst outlived StallMax")
	}
}

func TestBusBudgetFloor(t *testing.T) {
	j := New(Config{ThrottleProb: 1})
	for i := 0; i < 100; i++ {
		if b := j.BusBudget(EngRSE, 64); b < 8 || b > 32 {
			t.Fatalf("throttled budget %d outside [8, 32]", b)
		}
	}
}

func TestCorruptLineFlipsExactlyOneBit(t *testing.T) {
	j := New(Config{BitFlipProb: 1})
	line := make([]byte, 64)
	if !j.CorruptLine(line) {
		t.Fatal("BitFlipProb 1 must corrupt")
	}
	ones := 0
	for _, b := range line {
		for ; b != 0; b &= b - 1 {
			ones++
		}
	}
	if ones != 1 {
		t.Fatalf("corruption flipped %d bits, want 1", ones)
	}
	if j.Stats().BitFlips != 1 {
		t.Fatalf("BitFlips stat %d, want 1", j.Stats().BitFlips)
	}
}

func TestProfileParsing(t *testing.T) {
	c, err := ParseProfile("delay:77")
	if err != nil {
		t.Fatal(err)
	}
	if c.Seed != 77 || c.MemDelayProb == 0 {
		t.Fatalf("parsed profile %+v lacks seed or delay settings", c)
	}
	if c.Corrupting() {
		t.Fatal("delay profile must not be corrupting")
	}
	if _, err := ParseProfile("nosuch"); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if _, err := ParseProfile("delay:x"); err == nil {
		t.Fatal("bad seed accepted")
	}
	for _, name := range Profiles() {
		p, err := Profile(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("profile %s invalid: %v", name, err)
		}
		if !p.Enabled() {
			t.Fatalf("profile %s injects nothing", name)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{MemDelayProb: 1.5, MemDelayMax: 10},
		{MemDelayProb: 0.5},
		{StallProb: 0.5},
		{BitFlipProb: -0.1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %+v validated", c)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatal(err)
	}
}
