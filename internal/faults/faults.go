// Package faults is a deterministic, seeded fault injector for the
// Softbrain simulator. It perturbs the machine at its two timing
// boundaries — the memory system and the stream engines — without ever
// violating the architectural contract the engines rely on (credit
// backpressure, per-stream delivery order, barrier semantics):
//
//	mem-delay  extra latency on individual memory responses, which
//	           reorders completion across streams (per-stream order is
//	           preserved by the engines' pending FIFOs)
//	stall      whole stream engines freeze for a bounded burst
//	throttle   the 64-byte engine buses shrink for a cycle
//	bitflip    single-bit corruption of lines read from memory or the
//	           scratchpad (the only corrupting fault)
//
// All randomness comes from one math/rand stream seeded by Config.Seed,
// and the simulator is single-threaded, so a given (program, config,
// fault config) triple replays the exact same fault schedule. A nil
// *Injector (faults disabled) costs one pointer comparison at each hook
// site; no injector code runs.
package faults

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// Engine identifies a stream engine at the injection boundary.
type Engine int

const (
	EngMSE Engine = iota // memory stream engine
	EngSSE               // scratchpad stream engine
	EngRSE               // recurrence stream engine
	NumEngines
)

func (e Engine) String() string {
	switch e {
	case EngMSE:
		return "MSE"
	case EngSSE:
		return "SSE"
	case EngRSE:
		return "RSE"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// Config describes a fault profile. The zero value injects nothing.
// Probabilities are per injection opportunity: per accepted memory
// request (MemDelayProb), per engine per cycle (StallProb,
// ThrottleProb), per line of data read (BitFlipProb).
type Config struct {
	Seed int64

	MemDelayProb float64 // chance an accepted memory request is delayed
	MemDelayMax  uint64  // delay drawn uniformly from [1, MemDelayMax]

	StallProb float64 // chance per engine-cycle a stall burst begins
	StallMax  uint64  // burst length drawn uniformly from [1, StallMax]

	ThrottleProb float64 // chance per engine-cycle the bus narrows

	BitFlipProb float64 // chance a read line has one bit flipped
}

// Enabled reports whether the profile injects any fault at all.
func (c Config) Enabled() bool {
	return c.MemDelayProb > 0 || c.StallProb > 0 || c.ThrottleProb > 0 || c.BitFlipProb > 0
}

// Corrupting reports whether the profile can alter data values (as
// opposed to timing only). Runs under a non-corrupting profile must
// produce byte-identical memory to a fault-free run.
func (c Config) Corrupting() bool { return c.BitFlipProb > 0 }

// Validate checks the profile.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"MemDelayProb", c.MemDelayProb},
		{"StallProb", c.StallProb},
		{"ThrottleProb", c.ThrottleProb},
		{"BitFlipProb", c.BitFlipProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: %s %v outside [0, 1]", p.name, p.v)
		}
	}
	if c.MemDelayProb > 0 && c.MemDelayMax == 0 {
		return fmt.Errorf("faults: MemDelayProb set with MemDelayMax 0")
	}
	if c.StallProb > 0 && c.StallMax == 0 {
		return fmt.Errorf("faults: StallProb set with StallMax 0")
	}
	return nil
}

// Stats counts the faults an Injector actually delivered.
type Stats struct {
	MemDelays   uint64 // delayed memory responses
	Stalls      uint64 // stall bursts begun
	StallCycles uint64 // engine-cycles spent frozen
	Throttles   uint64 // narrowed bus cycles
	BitFlips    uint64 // corrupted lines
}

// Total is the number of discrete fault events (stall cycles count as
// one event per burst, not per cycle).
func (s Stats) Total() uint64 {
	return s.MemDelays + s.Stalls + s.Throttles + s.BitFlips
}

func (s Stats) String() string {
	return fmt.Sprintf("mem-delays=%d stalls=%d (%d cycles) throttles=%d bitflips=%d",
		s.MemDelays, s.Stalls, s.StallCycles, s.Throttles, s.BitFlips)
}

// Injector draws the fault schedule for one machine. It is not safe for
// concurrent use; each Machine owns one.
type Injector struct {
	cfg        Config
	rng        *rand.Rand
	stallUntil [NumEngines]uint64

	stats Stats
}

// New builds an injector for the profile. A nil return for a disabled
// profile lets hook sites use a single pointer test.
func New(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats returns the running fault counts.
func (j *Injector) Stats() Stats { return j.stats }

// MemDelay returns extra cycles of latency for one accepted memory
// request (usually 0).
func (j *Injector) MemDelay() uint64 {
	if j.cfg.MemDelayProb == 0 || j.rng.Float64() >= j.cfg.MemDelayProb {
		return 0
	}
	j.stats.MemDelays++
	return 1 + uint64(j.rng.Int63n(int64(j.cfg.MemDelayMax)))
}

// Stalled reports whether engine e is frozen this cycle, beginning a
// new bounded burst with probability StallProb. Call it once per engine
// per cycle so the schedule is reproducible.
func (j *Injector) Stalled(e Engine, now uint64) bool {
	if now < j.stallUntil[e] {
		j.stats.StallCycles++
		return true
	}
	if j.cfg.StallProb == 0 || j.rng.Float64() >= j.cfg.StallProb {
		return false
	}
	j.stallUntil[e] = now + 1 + uint64(j.rng.Int63n(int64(j.cfg.StallMax)))
	j.stats.Stalls++
	j.stats.StallCycles++
	return true
}

// BusBudget returns the byte budget of engine e's bus this cycle, given
// its full width. A throttled bus still moves at least 8 bytes (one
// word), so throttling slows delivery but cannot wedge it.
func (j *Injector) BusBudget(e Engine, full int) int {
	if j.cfg.ThrottleProb == 0 || j.rng.Float64() >= j.cfg.ThrottleProb {
		return full
	}
	j.stats.Throttles++
	narrowed := full / (2 << j.rng.Intn(3)) // full/2, full/4 or full/8
	if narrowed < 8 {
		narrowed = 8
	}
	return narrowed
}

// CorruptLine flips one random bit of data with probability BitFlipProb
// and reports whether it did.
func (j *Injector) CorruptLine(data []byte) bool {
	if len(data) == 0 || j.cfg.BitFlipProb == 0 || j.rng.Float64() >= j.cfg.BitFlipProb {
		return false
	}
	bit := j.rng.Intn(len(data) * 8)
	data[bit/8] ^= 1 << (bit % 8)
	j.stats.BitFlips++
	return true
}

// PerCycleDraws reports whether the profile consumes randomness every
// simulated cycle (stall and throttle draw per engine-cycle). Such a
// profile's fault schedule depends on how many cycles are actually
// ticked, so the run loop must not skip idle cycles under it; the
// per-event profiles (mem-delay, bitflip) draw per request or per line
// and are skip-exact.
func (j *Injector) PerCycleDraws() bool {
	return j.cfg.StallProb > 0 || j.cfg.ThrottleProb > 0
}

// PendingTimed reports whether the injector holds timed state that will
// release after now — a stall burst still running. The deadlock
// detector must see these as pending events, not quiescence.
func (j *Injector) PendingTimed(now uint64) bool {
	for _, t := range j.stallUntil {
		if t > now {
			return true
		}
	}
	return false
}

// Named profiles for sdsim -faults and the soak harness.
var profiles = map[string]Config{
	"delay":    {MemDelayProb: 0.2, MemDelayMax: 300},
	"stall":    {StallProb: 0.02, StallMax: 40},
	"throttle": {ThrottleProb: 0.5},
	"bitflip":  {BitFlipProb: 0.05},
	"chaos": {
		MemDelayProb: 0.1, MemDelayMax: 200,
		StallProb: 0.01, StallMax: 30,
		ThrottleProb: 0.25,
		BitFlipProb:  0.02,
	},
}

// Profiles lists the named profiles in a stable order.
func Profiles() []string {
	return []string{"delay", "stall", "throttle", "bitflip", "chaos"}
}

// Profile returns the named profile with the given seed.
func Profile(name string, seed int64) (Config, error) {
	c, ok := profiles[name]
	if !ok {
		return Config{}, fmt.Errorf("faults: unknown profile %q (have %s)",
			name, strings.Join(Profiles(), ", "))
	}
	c.Seed = seed
	return c, nil
}

// ParseProfile parses a -faults flag value: "name" or "name:seed".
func ParseProfile(s string) (Config, error) {
	name, seedStr, hasSeed := strings.Cut(s, ":")
	var seed int64
	if hasSeed {
		var err error
		seed, err = strconv.ParseInt(seedStr, 10, 64)
		if err != nil {
			return Config{}, fmt.Errorf("faults: bad seed in %q: %v", s, err)
		}
	}
	return Profile(name, seed)
}
