// Package progen generates random but individually well-formed
// stream-dataflow programs over the two-input adder graph. The fix
// package's differential fuzzer and the core package's fault-injection
// soak harness both drive it: every generated step stages both adder
// inputs and consumes the output, so programs are always balanced, but
// steps freely collide in memory and scratch space and barriers appear
// only occasionally — exactly the programs whose hazards the linter,
// the fixer, and the hang diagnoser are built to handle.
package progen

import (
	"fmt"
	"math/rand"

	"softbrain/internal/core"
	"softbrain/internal/dfg"
	"softbrain/internal/isa"
)

// Ports names the vector ports of the addpair graph.
type Ports struct {
	A, B isa.InPortID  // adder operands
	Ind  isa.InPortID  // index staging port (indirect-capable, unmapped)
	C    isa.OutPortID // sums
}

// MemPools are the memory regions generated programs read and write;
// they overlap pairwise (0x1_0000..0x1_00c0 in 64-byte steps) so
// random programs produce real memory hazards. PadBases are the
// scratchpad lines they use.
var (
	MemPools = []uint64{0x1_0000, 0x1_0040, 0x1_0080, 0x2_0000}
	PadBases = []uint64{0, 64, 128}
)

// Addpair builds a program configured with the two-input adder graph
// (A + B -> C, one 64-bit word each) and returns the port bindings the
// generator needs.
func Addpair(cfg core.Config) (*core.Program, Ports, error) {
	b := dfg.NewBuilder("addpair")
	a := b.Input("A", 1)
	v := b.Input("B", 1)
	b.Output("C", b.N(dfg.Add(64), a.W(0), v.W(0)))
	g, err := b.Build()
	if err != nil {
		return nil, Ports{}, err
	}
	p := core.NewProgram("addpair")
	p.CompileAndConfigure(cfg.Fabric, g)
	ports := Ports{A: p.In("A"), B: p.In("B"), Ind: p.IndirectIn(cfg.Fabric, 0), C: p.Out("C")}
	if err := p.Err(); err != nil {
		return nil, Ports{}, err
	}
	return p, ports, nil
}

// Commands produces a random command sequence for the addpair graph:
// each step stages both inputs and consumes the output, so the program
// is always balanced. Indirect indices are staged from constants only,
// so a fixed program and its serialized reference gather the same
// addresses regardless of memory contents.
func Commands(rng *rand.Rand, p Ports) []isa.Command {
	pool := func() uint64 { return MemPools[rng.Intn(len(MemPools))] }
	pad := func() uint64 { return PadBases[rng.Intn(len(PadBases))] }

	var cmds []isa.Command
	steps := 3 + rng.Intn(8)
	for s := 0; s < steps; s++ {
		n := uint64(1 + rng.Intn(8))
		bytes := 8 * n
		switch rng.Intn(4) {
		case 0:
			cmds = append(cmds, isa.MemPort{Src: isa.Linear(pool(), bytes), Dst: p.A})
		case 1:
			cmds = append(cmds, isa.ScratchPort{Src: isa.Linear(pad(), bytes), Dst: p.A})
		case 2:
			cmds = append(cmds, isa.ConstPort{Value: rng.Uint64(), Elem: isa.Elem64, Count: n, Dst: p.A})
		case 3:
			idx := uint64(rng.Intn(16))
			cmds = append(cmds,
				isa.ConstPort{Value: idx, Elem: isa.Elem32, Count: 2 * n, Dst: p.Ind},
				isa.IndPortPort{
					Idx: p.Ind, IdxElem: isa.Elem32,
					Offset: pool(), Scale: 4, DataElem: isa.Elem32, Count: 2 * n,
					Dst: p.A,
				})
		}
		if rng.Intn(2) == 0 {
			cmds = append(cmds, isa.MemPort{Src: isa.Linear(pool(), bytes), Dst: p.B})
		} else {
			cmds = append(cmds, isa.ConstPort{Value: uint64(rng.Intn(1 << 16)), Elem: isa.Elem64, Count: n, Dst: p.B})
		}
		switch rng.Intn(4) {
		case 0, 1:
			cmds = append(cmds, isa.PortMem{Src: p.C, Dst: isa.Linear(pool(), bytes)})
		case 2:
			cmds = append(cmds, isa.PortScratch{Src: p.C, Elem: isa.Elem64, Count: n, ScratchAddr: pad()})
		case 3:
			cmds = append(cmds, isa.CleanPort{Src: p.C, Elem: isa.Elem64, Count: n})
		}
		switch rng.Intn(4) {
		case 0:
			cmds = append(cmds, isa.BarrierAll{})
		case 1:
			cmds = append(cmds, isa.BarrierScratchWr{})
		}
	}
	return cmds
}

// BarrierCommands generates a barrier-heavy balanced sequence with
// nontrivial placement intervals — the shipped workloads carry 0–2
// barriers each, too few to exercise the interval analysis of
// internal/fix. Each block writes a region (memory or scratchpad),
// issues unrelated const→clean filler steps, then the matching barrier,
// then reads the region back: the barrier is load-bearing (the
// write/read pair pins it) but movable across every filler. Blocks
// reuse pools and scratch lines, so cross-block hazards remain for the
// fix pass to repair with additional barriers — run the generated
// program through fix.Fix before asserting cleanliness.
func BarrierCommands(rng *rand.Rand, p Ports) []isa.Command {
	var cmds []isa.Command
	blocks := 3 + rng.Intn(4)
	for b := 0; b < blocks; b++ {
		n := uint64(1 + rng.Intn(4))
		bytes := 8 * n
		pool := MemPools[rng.Intn(len(MemPools))]
		pad := PadBases[rng.Intn(len(PadBases))]
		scratch := rng.Intn(2) == 0

		// Producer: compute n sums from constants into the region.
		cmds = append(cmds,
			isa.ConstPort{Value: rng.Uint64(), Elem: isa.Elem64, Count: n, Dst: p.A},
			isa.ConstPort{Value: uint64(rng.Intn(1 << 12)), Elem: isa.Elem64, Count: n, Dst: p.B},
		)
		if scratch {
			cmds = append(cmds, isa.PortScratch{Src: p.C, Elem: isa.Elem64, Count: n, ScratchAddr: pad})
		} else {
			cmds = append(cmds, isa.PortMem{Src: p.C, Dst: isa.Linear(pool, bytes)})
		}

		// Unrelated fillers the barrier can legally slide across.
		for f, fillers := 0, 1+rng.Intn(3); f < fillers; f++ {
			fn := uint64(1 + rng.Intn(4))
			cmds = append(cmds,
				isa.ConstPort{Value: rng.Uint64(), Elem: isa.Elem64, Count: fn, Dst: p.A},
				isa.ConstPort{Value: rng.Uint64(), Elem: isa.Elem64, Count: fn, Dst: p.B},
				isa.CleanPort{Src: p.C, Elem: isa.Elem64, Count: fn},
			)
		}

		// The barrier ordering producer against consumer, then the
		// consumer reading the region back.
		if scratch {
			cmds = append(cmds,
				isa.BarrierScratchWr{},
				isa.ScratchPort{Src: isa.Linear(pad, bytes), Dst: p.A},
			)
		} else {
			cmds = append(cmds,
				isa.BarrierAll{},
				isa.MemPort{Src: isa.Linear(pool, bytes), Dst: p.A},
			)
		}
		cmds = append(cmds,
			isa.ConstPort{Value: 1, Elem: isa.Elem64, Count: n, Dst: p.B},
			isa.CleanPort{Src: p.C, Elem: isa.Elem64, Count: n},
		)
	}
	return append(cmds, isa.BarrierAll{})
}

// Rebase returns a copy of cmds with every memory address shifted by
// delta bytes. Scratchpad addresses stay put (each unit owns its
// scratchpad). Running the same generated program rebased to disjoint
// regions on each unit of a cluster gives the units disjoint memory
// footprints — the parallel scheduler's requirement — while keeping
// their cycle-level behavior identical.
func Rebase(cmds []isa.Command, delta uint64) []isa.Command {
	out := make([]isa.Command, len(cmds))
	for i, c := range cmds {
		switch c := c.(type) {
		case isa.MemPort:
			c.Src.Start += delta
			out[i] = c
		case isa.PortMem:
			c.Dst.Start += delta
			out[i] = c
		case isa.IndPortPort:
			c.Offset += delta
			out[i] = c
		case isa.IndPortMem:
			c.Offset += delta
			out[i] = c
		default:
			out[i] = c
		}
	}
	return out
}

// UnitSpan is the rebase stride separating cluster units' memory
// regions: unit u's pools live at MemPools[k] + u*UnitSpan, far enough
// apart that generated footprints never cross spans by accident.
const UnitSpan uint64 = 0x10_0000

// ClusterCommands generates one balanced command sequence per unit from
// a single random base sequence, rebased into disjoint memory spans —
// the disjoint-partitioning convention the cluster linter verifies.
// With hazard >= 0, unit hazard%units gains one extra balanced step
// whose final write lands in the *next* unit's span, on a pool the base
// sequence provably touches: a seeded inter-unit race with a known unit
// pair and overlap extent for regression and soak coverage. A negative
// hazard seeds nothing.
func ClusterCommands(rng *rand.Rand, p Ports, units, hazard int) [][]isa.Command {
	base := Commands(rng, p)
	pool, ok := firstPool(base)
	if !ok {
		// The base sequence has no linear memory access; anchor every
		// unit on pool 0 with a balanced read step so a seeded hazard
		// always has a victim access to collide with.
		pool = MemPools[0]
		n := uint64(1 + rng.Intn(4))
		base = append(base,
			isa.MemPort{Src: isa.Linear(pool, 8*n), Dst: p.A},
			isa.ConstPort{Value: 1, Elem: isa.Elem64, Count: n, Dst: p.B},
			isa.CleanPort{Src: p.C, Elem: isa.Elem64, Count: n},
		)
	}
	out := make([][]isa.Command, units)
	for u := 0; u < units; u++ {
		out[u] = Rebase(base, uint64(u)*UnitSpan)
	}
	if hazard >= 0 && units > 1 {
		u := hazard % units
		victim := (u + 1) % units
		n := uint64(1 + rng.Intn(4))
		out[u] = append(out[u],
			isa.MemPort{Src: isa.Linear(MemPools[0]+uint64(u)*UnitSpan, 8*n), Dst: p.A},
			isa.ConstPort{Value: 1, Elem: isa.Elem64, Count: n, Dst: p.B},
			isa.PortMem{Src: p.C, Dst: isa.Linear(pool+uint64(victim)*UnitSpan, 8*n)},
			isa.BarrierAll{},
		)
	}
	return out
}

// firstPool returns the first linearly-accessed DRAM address in the
// sequence. Indirect accesses don't count: their footprint starts at
// Offset + index*Scale, so a write seeded at Offset itself might miss.
func firstPool(cmds []isa.Command) (uint64, bool) {
	for _, c := range cmds {
		switch c := c.(type) {
		case isa.MemPort:
			return c.Src.Start, true
		case isa.PortMem:
			return c.Dst.Start, true
		}
	}
	return 0, false
}

// ClusterPrograms materializes one program per unit over the addpair
// graph from per-unit command lists (see ClusterCommands).
func ClusterPrograms(cfg core.Config, sets [][]isa.Command) ([]*core.Program, error) {
	progs := make([]*core.Program, len(sets))
	for u, cmds := range sets {
		p, _, err := Addpair(cfg)
		if err != nil {
			return nil, err
		}
		p.Name = fmt.Sprintf("addpair#%d", u)
		for _, c := range cmds {
			p.Emit(c)
		}
		if err := p.Err(); err != nil {
			return nil, err
		}
		progs[u] = p
	}
	return progs, nil
}

// Maim removes the i-th (mod count) non-barrier command from cmds,
// returning a copy — the classic way to wreck a balanced program and
// provoke a hang for the diagnoser to classify. It returns cmds
// unchanged when there is nothing to remove.
func Maim(cmds []isa.Command, i int) []isa.Command {
	var idxs []int
	for j, c := range cmds {
		switch c.Kind() {
		case isa.KindBarrierAll, isa.KindBarrierScratchRd, isa.KindBarrierScratchWr:
		default:
			idxs = append(idxs, j)
		}
	}
	if len(idxs) == 0 {
		return cmds
	}
	drop := idxs[i%len(idxs)]
	out := make([]isa.Command, 0, len(cmds)-1)
	out = append(out, cmds[:drop]...)
	return append(out, cmds[drop+1:]...)
}
