// Package progen generates random but individually well-formed
// stream-dataflow programs over the two-input adder graph. The fix
// package's differential fuzzer and the core package's fault-injection
// soak harness both drive it: every generated step stages both adder
// inputs and consumes the output, so programs are always balanced, but
// steps freely collide in memory and scratch space and barriers appear
// only occasionally — exactly the programs whose hazards the linter,
// the fixer, and the hang diagnoser are built to handle.
package progen

import (
	"math/rand"

	"softbrain/internal/core"
	"softbrain/internal/dfg"
	"softbrain/internal/isa"
)

// Ports names the vector ports of the addpair graph.
type Ports struct {
	A, B isa.InPortID  // adder operands
	Ind  isa.InPortID  // index staging port (indirect-capable, unmapped)
	C    isa.OutPortID // sums
}

// MemPools are the memory regions generated programs read and write;
// they overlap pairwise (0x1_0000..0x1_00c0 in 64-byte steps) so
// random programs produce real memory hazards. PadBases are the
// scratchpad lines they use.
var (
	MemPools = []uint64{0x1_0000, 0x1_0040, 0x1_0080, 0x2_0000}
	PadBases = []uint64{0, 64, 128}
)

// Addpair builds a program configured with the two-input adder graph
// (A + B -> C, one 64-bit word each) and returns the port bindings the
// generator needs.
func Addpair(cfg core.Config) (*core.Program, Ports, error) {
	b := dfg.NewBuilder("addpair")
	a := b.Input("A", 1)
	v := b.Input("B", 1)
	b.Output("C", b.N(dfg.Add(64), a.W(0), v.W(0)))
	g, err := b.Build()
	if err != nil {
		return nil, Ports{}, err
	}
	p := core.NewProgram("addpair")
	p.CompileAndConfigure(cfg.Fabric, g)
	ports := Ports{A: p.In("A"), B: p.In("B"), Ind: p.IndirectIn(cfg.Fabric, 0), C: p.Out("C")}
	if err := p.Err(); err != nil {
		return nil, Ports{}, err
	}
	return p, ports, nil
}

// Commands produces a random command sequence for the addpair graph:
// each step stages both inputs and consumes the output, so the program
// is always balanced. Indirect indices are staged from constants only,
// so a fixed program and its serialized reference gather the same
// addresses regardless of memory contents.
func Commands(rng *rand.Rand, p Ports) []isa.Command {
	pool := func() uint64 { return MemPools[rng.Intn(len(MemPools))] }
	pad := func() uint64 { return PadBases[rng.Intn(len(PadBases))] }

	var cmds []isa.Command
	steps := 3 + rng.Intn(8)
	for s := 0; s < steps; s++ {
		n := uint64(1 + rng.Intn(8))
		bytes := 8 * n
		switch rng.Intn(4) {
		case 0:
			cmds = append(cmds, isa.MemPort{Src: isa.Linear(pool(), bytes), Dst: p.A})
		case 1:
			cmds = append(cmds, isa.ScratchPort{Src: isa.Linear(pad(), bytes), Dst: p.A})
		case 2:
			cmds = append(cmds, isa.ConstPort{Value: rng.Uint64(), Elem: isa.Elem64, Count: n, Dst: p.A})
		case 3:
			idx := uint64(rng.Intn(16))
			cmds = append(cmds,
				isa.ConstPort{Value: idx, Elem: isa.Elem32, Count: 2 * n, Dst: p.Ind},
				isa.IndPortPort{
					Idx: p.Ind, IdxElem: isa.Elem32,
					Offset: pool(), Scale: 4, DataElem: isa.Elem32, Count: 2 * n,
					Dst: p.A,
				})
		}
		if rng.Intn(2) == 0 {
			cmds = append(cmds, isa.MemPort{Src: isa.Linear(pool(), bytes), Dst: p.B})
		} else {
			cmds = append(cmds, isa.ConstPort{Value: uint64(rng.Intn(1 << 16)), Elem: isa.Elem64, Count: n, Dst: p.B})
		}
		switch rng.Intn(4) {
		case 0, 1:
			cmds = append(cmds, isa.PortMem{Src: p.C, Dst: isa.Linear(pool(), bytes)})
		case 2:
			cmds = append(cmds, isa.PortScratch{Src: p.C, Elem: isa.Elem64, Count: n, ScratchAddr: pad()})
		case 3:
			cmds = append(cmds, isa.CleanPort{Src: p.C, Elem: isa.Elem64, Count: n})
		}
		switch rng.Intn(4) {
		case 0:
			cmds = append(cmds, isa.BarrierAll{})
		case 1:
			cmds = append(cmds, isa.BarrierScratchWr{})
		}
	}
	return cmds
}

// Rebase returns a copy of cmds with every memory address shifted by
// delta bytes. Scratchpad addresses stay put (each unit owns its
// scratchpad). Running the same generated program rebased to disjoint
// regions on each unit of a cluster gives the units disjoint memory
// footprints — the parallel scheduler's requirement — while keeping
// their cycle-level behavior identical.
func Rebase(cmds []isa.Command, delta uint64) []isa.Command {
	out := make([]isa.Command, len(cmds))
	for i, c := range cmds {
		switch c := c.(type) {
		case isa.MemPort:
			c.Src.Start += delta
			out[i] = c
		case isa.PortMem:
			c.Dst.Start += delta
			out[i] = c
		case isa.IndPortPort:
			c.Offset += delta
			out[i] = c
		case isa.IndPortMem:
			c.Offset += delta
			out[i] = c
		default:
			out[i] = c
		}
	}
	return out
}

// Maim removes the i-th (mod count) non-barrier command from cmds,
// returning a copy — the classic way to wreck a balanced program and
// provoke a hang for the diagnoser to classify. It returns cmds
// unchanged when there is nothing to remove.
func Maim(cmds []isa.Command, i int) []isa.Command {
	var idxs []int
	for j, c := range cmds {
		switch c.Kind() {
		case isa.KindBarrierAll, isa.KindBarrierScratchRd, isa.KindBarrierScratchWr:
		default:
			idxs = append(idxs, j)
		}
	}
	if len(idxs) == 0 {
		return cmds
	}
	drop := idxs[i%len(idxs)]
	out := make([]isa.Command, 0, len(cmds)-1)
	out = append(out, cmds[:drop]...)
	return append(out, cmds[drop+1:]...)
}
