package dnn

import (
	"fmt"
	"math/rand"

	"softbrain/internal/core"
	"softbrain/internal/dfg"
	"softbrain/internal/isa"
	"softbrain/internal/mem"
	"softbrain/internal/workloads"
)

// classGraph is the Figure 6 classifier DFG: four 4-way 16-bit
// multipliers with reductions, a resettable accumulator, and a sigmoid.
func classGraph() (*dfg.Graph, error) {
	b := dfg.NewBuilder("classifier")
	s := b.Input("S", 4)
	n := b.Input("N", 4)
	r := b.Input("R", 1)
	var reds []dfg.Ref
	for i := 0; i < 4; i++ {
		m := b.N(dfg.Mul(16), s.W(i), n.W(i))
		reds = append(reds, b.N(dfg.RedAdd(16), m))
	}
	sum := b.ReduceTree(dfg.Add(64), reds...)
	acc := b.N(dfg.Acc(64), sum, r.W(0))
	b.OutputElem("C", 2, b.N(dfg.Sig(16), acc))
	return b.Build()
}

// buildClass builds a fully connected layer: synapses stream once from
// memory, input neurons stage in each unit's scratchpad and re-stream
// per output neuron, exactly as in the paper's example program.
func (l Layer) buildClass(cfg core.Config, units int) (*workloads.Instance, error) {
	if l.Ni%16 != 0 {
		return nil, fmt.Errorf("dnn: %s Ni=%d not a multiple of 16", l.Name, l.Ni)
	}
	g, err := classGraph()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(71))
	syn := make([]int16, l.Nn*l.Ni) // syn[n][i]
	neu := make([]int16, l.Ni)
	for i := range syn {
		syn[i] = int16(rng.Intn(11) - 5)
	}
	for i := range neu {
		neu[i] = int16(rng.Intn(7) - 3)
	}

	lay := workloads.NewLayout()
	synAddr := lay.Alloc(uint64(l.Nn*l.Ni) * 2)
	neuAddr := lay.Alloc(uint64(l.Ni) * 2)
	outAddr := lay.Alloc(uint64(l.Nn) * 2)
	if err := lay.Err(); err != nil {
		return nil, err
	}

	instPerNeuron := uint64(l.Ni / 16)
	var progs []*core.Program
	for _, rg := range ranges(l.Nn, units) {
		p := core.NewProgram(fmt.Sprintf("%s.u", l.Name))
		p.CompileAndConfigure(cfg.Fabric, g)
		n0, n1 := rg[0], rg[1]
		if n0 == n1 {
			progs = append(progs, p) // idle unit
			continue
		}
		p.Emit(isa.MemPort{
			Src: isa.Linear(synAddr+uint64(n0*l.Ni)*2, uint64((n1-n0)*l.Ni)*2),
			Dst: p.In("S"),
		})
		p.Emit(isa.MemScratch{Src: isa.Linear(neuAddr, uint64(l.Ni)*2), ScratchAddr: 0})
		p.Emit(isa.BarrierScratchWr{})
		p.Emit(isa.ScratchPort{Src: isa.Repeat(0, uint64(l.Ni)*2, uint64(n1-n0)), Dst: p.In("N")})
		for n := n0; n < n1; n++ {
			p.Emit(isa.ConstPort{Value: 0, Elem: isa.Elem64, Count: instPerNeuron - 1, Dst: p.In("R")})
			p.Emit(isa.ConstPort{Value: 1, Elem: isa.Elem64, Count: 1, Dst: p.In("R")})
			p.Emit(isa.CleanPort{Src: p.Out("C"), Elem: isa.Elem16, Count: instPerNeuron - 1})
			p.Emit(isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(outAddr+uint64(n)*2, 2)})
			p.Delay(2)
		}
		p.Emit(isa.BarrierAll{})
		if err := p.Err(); err != nil {
			return nil, err
		}
		progs = append(progs, p)
	}

	golden := make([]uint16, l.Nn)
	for n := 0; n < l.Nn; n++ {
		var sum int64
		for i := 0; i < l.Ni; i++ {
			sum += int64(syn[n*l.Ni+i]) * int64(neu[i])
		}
		golden[n] = sigmoid16(sum)
	}

	macs := uint64(l.Ni) * uint64(l.Nn)
	return &workloads.Instance{
		Name:  l.Name,
		Progs: progs,
		Init: func(m *mem.Memory) {
			for i, v := range syn {
				writeI16(m, synAddr+uint64(2*i), v)
			}
			for i, v := range neu {
				writeI16(m, neuAddr+uint64(2*i), v)
			}
		},
		Check: func(m *mem.Memory) error {
			for n := 0; n < l.Nn; n++ {
				got := uint16(m.ReadUint(outAddr+uint64(2*n), 2))
				if got != golden[n] {
					return fmt.Errorf("%s: neuron[%d] = %d, want %d", l.Name, n, got, golden[n])
				}
			}
			return nil
		},
		Profile:  l.profile(macs, 2*macs+2*uint64(l.Ni), 2*macs),
		Patterns: "Linear, Repeating",
		Datapath: "4x4-way 16-bit MAC + Sigmoid",
	}, nil
}
