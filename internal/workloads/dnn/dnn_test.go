package dnn

import (
	"testing"

	"softbrain/internal/baseline"
)

// TestAllLayersVerify runs every Figure 11 layer on the 8-unit DNN
// cluster and checks bit-exact output against the golden model.
func TestAllLayersVerify(t *testing.T) {
	cfg := Config()
	for _, l := range Layers() {
		l := l
		t.Run(l.Name, func(t *testing.T) {
			inst, err := l.Build(cfg, Units)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if inst.Units() != Units {
				t.Fatalf("%d unit programs, want %d", inst.Units(), Units)
			}
			stats, err := inst.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Instances == 0 {
				t.Error("no CGRA instances fired")
			}
			t.Logf("%-8s %8d cycles %9d instances %10d fu-ops",
				l.Name, stats.Cycles, stats.Instances, stats.FUOps)
		})
	}
}

func TestLayerProfilesReasonable(t *testing.T) {
	for _, l := range Layers() {
		inst, err := l.Build(Config(), Units)
		if err != nil {
			t.Fatal(err)
		}
		p := inst.Profile
		if p.KernelOps == 0 || p.MemBytes == 0 {
			t.Errorf("%s: empty profile %+v", l.Name, p)
		}
		if l.Kind != Pool && p.MACs == 0 {
			t.Errorf("%s: MAC count missing", l.Name)
		}
		// The analytic baselines must all produce nonzero times.
		if baseline.SingleThreadCPU().Cycles(p) == 0 || baseline.DianNao().Cycles(p) == 0 {
			t.Errorf("%s: degenerate baseline cycles", l.Name)
		}
	}
}

func TestFindLayer(t *testing.T) {
	if _, err := Find("conv3p"); err != nil {
		t.Error(err)
	}
	if _, err := Find("zzz"); err == nil {
		t.Error("unknown layer found")
	}
}

func TestRanges(t *testing.T) {
	r := ranges(10, 4)
	total := 0
	prev := 0
	for _, rg := range r {
		if rg[0] != prev {
			t.Fatalf("ranges not contiguous: %v", r)
		}
		total += rg[1] - rg[0]
		prev = rg[1]
	}
	if total != 10 {
		t.Fatalf("ranges cover %d of 10", total)
	}
	// More parts than items: some parts empty, still contiguous.
	r = ranges(3, 8)
	if r[7][1] != 3 {
		t.Fatalf("ranges(3,8) = %v", r)
	}
}
