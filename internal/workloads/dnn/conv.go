package dnn

import (
	"fmt"
	"math/rand"

	"softbrain/internal/core"
	"softbrain/internal/dfg"
	"softbrain/internal/isa"
	"softbrain/internal/mem"
	"softbrain/internal/workloads"
)

// convGraph processes one 3x3xNi convolution window as a sequence of
// instances: three row ports deliver 8 input elements each per instance,
// three scratch ports deliver the matching weights, and a resettable
// accumulator collects the window's dot product, finished by a sigmoid.
func convGraph() (*dfg.Graph, error) {
	b := dfg.NewBuilder("conv3x3")
	var reds []dfg.Ref
	var rows, wts [3]dfg.In
	for ky := 0; ky < 3; ky++ {
		rows[ky] = b.Input(fmt.Sprintf("N%d", ky), 2)
		wts[ky] = b.Input(fmt.Sprintf("S%d", ky), 2)
	}
	r := b.Input("R", 1)
	for ky := 0; ky < 3; ky++ {
		for w := 0; w < 2; w++ {
			m := b.N(dfg.Mul(16), rows[ky].W(w), wts[ky].W(w))
			reds = append(reds, b.N(dfg.RedAdd(16), m))
		}
	}
	sum := b.ReduceTree(dfg.Add(64), reds...)
	acc := b.N(dfg.Acc(64), sum, r.W(0))
	b.OutputElem("C", 2, b.N(dfg.Sig(16), acc))
	return b.Build()
}

// buildConv builds a 3x3 convolution layer over channel-last input
// in[y][x][ci]. Weights and the accumulator-reset template live in the
// scratchpad; input rows stream with the overlapped affine pattern of
// Figure 5, one stream per kernel row covering a whole output row.
// Output features are partitioned across units.
//
// The accelerator stores every instance's (partial) activation; the
// layer's output layout is therefore strided: the value of output pixel
// (f, oy, ox) is the last of its instPerPixel staged elements.
func (l Layer) buildConv(cfg core.Config, units int) (*workloads.Instance, error) {
	if l.K != 3 {
		return nil, fmt.Errorf("dnn: conv kernel %d unsupported (3x3 only)", l.K)
	}
	if (3*l.Ni)%8 != 0 {
		return nil, fmt.Errorf("dnn: %s 3*Ni=%d not a multiple of 8", l.Name, 3*l.Ni)
	}
	g, err := convGraph()
	if err != nil {
		return nil, err
	}
	outW, outH := l.Nx-2, l.Ny-2
	instPerPixel := 3 * l.Ni / 8
	rowElems := 3 * l.Ni // elements per kernel row of one window

	rng := rand.New(rand.NewSource(73))
	in := make([]int16, l.Ny*l.Nx*l.Ni) // in[y][x][ci]
	wt := make([]int16, l.No*3*3*l.Ni)  // wt[f][ky][kx][ci]
	for i := range in {
		in[i] = int16(rng.Intn(7) - 3)
	}
	for i := range wt {
		wt[i] = int16(rng.Intn(9) - 4)
	}

	lay := workloads.NewLayout()
	inAddr := lay.Alloc(uint64(len(in)) * 2)
	wtAddr := lay.Alloc(uint64(len(wt)) * 2)
	tmplAddr := lay.Alloc(uint64(outW*instPerPixel) * 8)
	outAddr := lay.Alloc(uint64(l.No*outH*outW*instPerPixel) * 2)
	if err := lay.Err(); err != nil {
		return nil, err
	}

	wBytes := uint64(3 * 3 * l.Ni * 2) // one feature's weights
	const padW = 0                     // weights at pad offset 0
	padT := uint64(2048)               // reset template offset

	stageBase := func(f, oy int) uint64 {
		return outAddr + uint64((f*outH+oy)*outW*instPerPixel)*2
	}

	var progs []*core.Program
	for _, rg := range ranges(l.No, units) {
		p := core.NewProgram(fmt.Sprintf("%s.u", l.Name))
		p.CompileAndConfigure(cfg.Fabric, g)
		f0, f1 := rg[0], rg[1]
		if f0 == f1 {
			progs = append(progs, p)
			continue
		}
		// The reset template is shared by every feature.
		p.Emit(isa.MemScratch{Src: isa.Linear(tmplAddr, uint64(outW*instPerPixel)*8), ScratchAddr: padT})
		for f := f0; f < f1; f++ {
			if f > f0 {
				p.Emit(isa.BarrierScratchRd{}) // previous feature's weight reads
			}
			p.Emit(isa.MemScratch{Src: isa.Linear(wtAddr+uint64(f)*wBytes, wBytes), ScratchAddr: padW})
			p.Emit(isa.BarrierScratchWr{})
			for oy := 0; oy < outH; oy++ {
				for ky := 0; ky < 3; ky++ {
					src := inAddr + uint64((oy+ky)*l.Nx*l.Ni)*2
					p.Emit(isa.MemPort{
						Src: isa.Strided2D(src, uint64(rowElems)*2, uint64(l.Ni)*2, uint64(outW)),
						Dst: p.In(fmt.Sprintf("N%d", ky)),
					})
					p.Emit(isa.ScratchPort{
						Src: isa.Repeat(padW+uint64(ky*rowElems)*2, uint64(rowElems)*2, uint64(outW)),
						Dst: p.In(fmt.Sprintf("S%d", ky)),
					})
				}
				p.Emit(isa.ScratchPort{Src: isa.Linear(padT, uint64(outW*instPerPixel)*8), Dst: p.In("R")})
				p.Emit(isa.PortMem{Src: p.Out("C"), Dst: isa.Linear(stageBase(f, oy), uint64(outW*instPerPixel)*2)})
				p.Delay(3)
			}
		}
		p.Emit(isa.BarrierAll{})
		if err := p.Err(); err != nil {
			return nil, err
		}
		progs = append(progs, p)
	}

	// Golden convolution + sigmoid.
	golden := make([]uint16, l.No*outH*outW)
	for f := 0; f < l.No; f++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				var sum int64
				for ky := 0; ky < 3; ky++ {
					for kx := 0; kx < 3; kx++ {
						for ci := 0; ci < l.Ni; ci++ {
							iv := in[((oy+ky)*l.Nx+ox+kx)*l.Ni+ci]
							wv := wt[((f*3+ky)*3+kx)*l.Ni+ci]
							sum += int64(iv) * int64(wv)
						}
					}
				}
				golden[(f*outH+oy)*outW+ox] = sigmoid16(sum)
			}
		}
	}

	macs := uint64(outW*outH) * uint64(9*l.Ni) * uint64(l.No)
	memBytes := uint64(len(in))*2 + uint64(len(wt))*2 + uint64(l.No*outH*outW)*2
	return &workloads.Instance{
		Name:  l.Name,
		Progs: progs,
		Init: func(m *mem.Memory) {
			for i, v := range in {
				writeI16(m, inAddr+uint64(2*i), v)
			}
			for i, v := range wt {
				writeI16(m, wtAddr+uint64(2*i), v)
			}
			// Reset template: one reset word at the end of each pixel.
			for ox := 0; ox < outW; ox++ {
				m.WriteU64(tmplAddr+uint64((ox*instPerPixel+instPerPixel-1))*8, 1)
			}
		},
		Check: func(m *mem.Memory) error {
			for f := 0; f < l.No; f++ {
				for oy := 0; oy < outH; oy++ {
					for ox := 0; ox < outW; ox++ {
						addr := stageBase(f, oy) + uint64(ox*instPerPixel+instPerPixel-1)*2
						got := uint16(m.ReadUint(addr, 2))
						want := golden[(f*outH+oy)*outW+ox]
						if got != want {
							return fmt.Errorf("%s: out[%d][%d][%d] = %d, want %d", l.Name, f, oy, ox, got, want)
						}
					}
				}
			}
			return nil
		},
		Profile:  l.profile(macs, memBytes, 2*macs),
		Patterns: "Overlapped Affine, Repeating",
		Datapath: "6x4-way 16-bit MAC tree + Sigmoid",
	}, nil
}
