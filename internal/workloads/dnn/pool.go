package dnn

import (
	"fmt"
	"math/rand"

	"softbrain/internal/core"
	"softbrain/internal/dfg"
	"softbrain/internal/isa"
	"softbrain/internal/mem"
	"softbrain/internal/workloads"
)

// poolGraph max-pools a KxNi window: K row ports each deliver one
// window column (all Ni=16 channels, 16-bit lanes) per instance; a
// lane-wise max tree combines the rows and a resettable running maximum
// combines the K columns of the window.
func poolGraph(k int) (*dfg.Graph, error) {
	b := dfg.NewBuilder(fmt.Sprintf("pool%dx%d", k, k))
	rows := make([]dfg.In, k)
	for ky := 0; ky < k; ky++ {
		rows[ky] = b.Input(fmt.Sprintf("P%d", ky), 4)
	}
	r := b.Input("R", 1)
	var outs []dfg.Ref
	for w := 0; w < 4; w++ {
		var vals []dfg.Ref
		for ky := 0; ky < k; ky++ {
			vals = append(vals, rows[ky].W(w))
		}
		tree := b.ReduceTree(dfg.Max(16), vals...)
		outs = append(outs, b.N(dfg.AccMax(16), tree, r.W(0)))
	}
	b.Output("O", outs...)
	return b.Build()
}

// buildPool builds a KxK stride-1 max-pooling layer over channel-last
// input in[y][x][ci] with Ni=16 channels. Output rows are partitioned
// across units. Like conv, every instance's running maximum is staged to
// memory; the window's true maximum is the last of each pixel's K staged
// 32-byte groups.
func (l Layer) buildPool(cfg core.Config, units int) (*workloads.Instance, error) {
	if l.Ni != 16 {
		return nil, fmt.Errorf("dnn: %s pooling requires Ni=16 channels", l.Name)
	}
	g, err := poolGraph(l.K)
	if err != nil {
		return nil, err
	}
	outW, outH := l.Nx-l.K+1, l.Ny-l.K+1
	rowBytes := uint64(outW*l.K) * 32 // staged bytes per output row

	rng := rand.New(rand.NewSource(79))
	in := make([]int16, l.Ny*l.Nx*l.Ni)
	for i := range in {
		in[i] = int16(rng.Intn(2001) - 1000)
	}

	lay := workloads.NewLayout()
	inAddr := lay.Alloc(uint64(len(in)) * 2)
	tmplAddr := lay.Alloc(uint64(outW*l.K) * 8)
	outAddr := lay.Alloc(uint64(outH) * rowBytes)
	if err := lay.Err(); err != nil {
		return nil, err
	}

	var progs []*core.Program
	for _, rg := range ranges(outH, units) {
		p := core.NewProgram(fmt.Sprintf("%s.u", l.Name))
		p.CompileAndConfigure(cfg.Fabric, g)
		r0, r1 := rg[0], rg[1]
		if r0 == r1 {
			progs = append(progs, p)
			continue
		}
		p.Emit(isa.MemScratch{Src: isa.Linear(tmplAddr, uint64(outW*l.K)*8), ScratchAddr: 0})
		p.Emit(isa.BarrierScratchWr{})
		for oy := r0; oy < r1; oy++ {
			for ky := 0; ky < l.K; ky++ {
				src := inAddr + uint64((oy+ky)*l.Nx*l.Ni)*2
				p.Emit(isa.MemPort{
					Src: isa.Strided2D(src, uint64(l.K*l.Ni)*2, uint64(l.Ni)*2, uint64(outW)),
					Dst: p.In(fmt.Sprintf("P%d", ky)),
				})
			}
			p.Emit(isa.ScratchPort{Src: isa.Linear(0, uint64(outW*l.K)*8), Dst: p.In("R")})
			p.Emit(isa.PortMem{Src: p.Out("O"), Dst: isa.Linear(outAddr+uint64(oy)*rowBytes, rowBytes)})
			p.Delay(3)
		}
		p.Emit(isa.BarrierAll{})
		if err := p.Err(); err != nil {
			return nil, err
		}
		progs = append(progs, p)
	}

	// Golden max pooling.
	golden := make([]int16, outH*outW*l.Ni)
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			for ci := 0; ci < l.Ni; ci++ {
				best := in[(oy*l.Nx+ox)*l.Ni+ci]
				for ky := 0; ky < l.K; ky++ {
					for kx := 0; kx < l.K; kx++ {
						if v := in[((oy+ky)*l.Nx+ox+kx)*l.Ni+ci]; v > best {
							best = v
						}
					}
				}
				golden[(oy*outW+ox)*l.Ni+ci] = best
			}
		}
	}

	pixels := uint64(outW * outH)
	ops := pixels * uint64(l.K*l.K*l.Ni)
	return &workloads.Instance{
		Name:  l.Name,
		Progs: progs,
		Init: func(m *mem.Memory) {
			for i, v := range in {
				writeI16(m, inAddr+uint64(2*i), v)
			}
			for ox := 0; ox < outW; ox++ {
				m.WriteU64(tmplAddr+uint64(ox*l.K+l.K-1)*8, 1)
			}
		},
		Check: func(m *mem.Memory) error {
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					base := outAddr + uint64(oy)*rowBytes + uint64((ox*l.K+l.K-1))*32
					for ci := 0; ci < l.Ni; ci++ {
						got := int16(uint16(m.ReadUint(base+uint64(2*ci), 2)))
						want := golden[(oy*outW+ox)*l.Ni+ci]
						if got != want {
							return fmt.Errorf("%s: out[%d][%d][%d] = %d, want %d", l.Name, oy, ox, ci, got, want)
						}
					}
				}
			}
			return nil
		},
		// DianNao re-fetches each overlapped window from memory; that
		// re-read traffic is its bandwidth bound (Section 7.1 discusses
		// Softbrain's pooling advantage).
		Profile:  l.profile(0, ops*2+pixels*uint64(l.Ni)*2, ops),
		Patterns: "Overlapped Affine",
		Datapath: fmt.Sprintf("%d-way 16-bit Max tree", l.K*4),
	}, nil
}
