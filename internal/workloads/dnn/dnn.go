// Package dnn implements the deep-neural-network workloads of the
// DianNao comparison (Section 7.1): fully-connected classifier layers,
// 3x3 convolution layers, and max-pooling layers, each expressed as
// stream-dataflow programs over 16-bit fixed-point data and partitioned
// across eight Softbrain units.
//
// Layer shapes are representative scaled-down versions of the DianNao
// benchmark layers (the original dimensions are impractically large for
// cycle-level simulation); each layer preserves the compute-versus-
// bandwidth character of its class: classifier layers stream their
// synapses once (bandwidth-bound), convolution layers reuse weights from
// the scratchpad (compute-bound), and pooling layers re-read overlapped
// windows (modest compute, high read traffic). See DESIGN.md §5.
package dnn

import (
	"fmt"

	"softbrain/internal/baseline"
	"softbrain/internal/core"
	"softbrain/internal/mem"
	"softbrain/internal/workloads"
)

// Kind discriminates layer types.
type Kind int

const (
	Class Kind = iota // fully connected + sigmoid
	Conv              // 3x3 convolution + sigmoid
	Pool              // KxK max pooling, stride 1
)

// Layer describes one DNN layer benchmark.
type Layer struct {
	Name string
	Kind Kind

	// Class parameters.
	Ni int // input neurons / input channels
	Nn int // output neurons

	// Conv and Pool parameters.
	Nx, Ny int // input width and height
	K      int // kernel/window size (always 3 for conv)
	No     int // output feature maps (conv)
}

// Layers returns the ten Figure 11 workloads.
func Layers() []Layer {
	return []Layer{
		{Name: "class1p", Kind: Class, Ni: 2048, Nn: 64},
		{Name: "class3p", Kind: Class, Ni: 960, Nn: 128},
		{Name: "pool1p", Kind: Pool, Nx: 21, Ny: 21, K: 2, Ni: 16},
		{Name: "pool3p", Kind: Pool, Nx: 20, Ny: 20, K: 3, Ni: 16},
		{Name: "pool5p", Kind: Pool, Nx: 19, Ny: 19, K: 4, Ni: 16},
		{Name: "conv1p", Kind: Conv, Nx: 18, Ny: 18, K: 3, Ni: 16, No: 16},
		{Name: "conv2p", Kind: Conv, Nx: 16, Ny: 16, K: 3, Ni: 16, No: 32},
		{Name: "conv3p", Kind: Conv, Nx: 14, Ny: 14, K: 3, Ni: 32, No: 16},
		{Name: "conv4p", Kind: Conv, Nx: 14, Ny: 14, K: 3, Ni: 16, No: 16},
		{Name: "conv5p", Kind: Conv, Nx: 12, Ny: 12, K: 3, Ni: 32, No: 8},
	}
}

// Find returns the named layer.
func Find(name string) (Layer, error) {
	for _, l := range Layers() {
		if l.Name == name {
			return l, nil
		}
	}
	return Layer{}, fmt.Errorf("dnn: unknown layer %q", name)
}

// Config is the Softbrain configuration for the DNN study: the
// DNN-provisioned fabric and a memory system matching the comparison's
// bandwidth assumptions (32 B/cycle DRAM, as the DianNao model uses).
func Config() core.Config {
	cfg := core.DNNConfig()
	cfg.Mem.MissInterval = 2
	return cfg
}

// Units is the number of Softbrain units in the comparison (Table 3).
const Units = 8

// Build constructs the layer's instance for the given unit count.
func (l Layer) Build(cfg core.Config, units int) (*workloads.Instance, error) {
	switch l.Kind {
	case Class:
		return l.buildClass(cfg, units)
	case Conv:
		return l.buildConv(cfg, units)
	case Pool:
		return l.buildPool(cfg, units)
	}
	return nil, fmt.Errorf("dnn: bad layer kind %d", l.Kind)
}

// sigmoid16 is the golden copy of the hardware's Q8.8 piecewise
// sigmoid (dfg.Sig at width 16).
func sigmoid16(x int64) uint16 {
	switch {
	case x <= -1024:
		return 0
	case x >= 1024:
		return 256
	default:
		return uint16(128 + x/8)
	}
}

// ranges splits n items into parts nearly equal chunks; empty chunks are
// legal for small n.
func ranges(n, parts int) [][2]int {
	out := make([][2]int, parts)
	base, rem := n/parts, n%parts
	start := 0
	for i := 0; i < parts; i++ {
		size := base
		if i < rem {
			size++
		}
		out[i] = [2]int{start, start + size}
		start += size
	}
	return out
}

// writeI16 writes a 16-bit value to the memory image.
func writeI16(m *mem.Memory, addr uint64, v int16) {
	m.WriteUint(addr, 2, uint64(uint16(v)))
}

// profile fills the shared fields of the layer's baseline profile.
func (l Layer) profile(macs, memBytes, ops uint64) baseline.Profile {
	return baseline.Profile{Name: l.Name, KernelOps: ops, MACs: macs, MemBytes: memBytes}
}
