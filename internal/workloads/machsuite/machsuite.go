// Package machsuite implements the MachSuite workloads of Section 7.2
// as stream-dataflow programs, together with the golden models that
// verify them and the characterization of Table 4. The four codes the
// paper found unsuitable for stream-dataflow are recorded with their
// reasons rather than implemented, as in the paper.
package machsuite

import (
	"fmt"

	"softbrain/internal/core"
	"softbrain/internal/workloads"
)

// Builder constructs a sized instance of one workload. scale >= 1
// multiplies the problem size; 1 is a small test size.
type Builder func(cfg core.Config, scale int) (*workloads.Instance, error)

// Entry is one implemented workload with its Table 4 characterization.
type Entry struct {
	Name     string
	Patterns string
	Datapath string
	Build    Builder
}

// All returns the eight implemented MachSuite workloads, in the paper's
// order.
func All() []Entry {
	return []Entry{
		{"bfs", "Indirect Loads/Stores, Recurrence", "Compare/Increment", BuildBFS},
		{"gemm", "Affine, Recurrence", "8-Way Multiply-Accumulate", BuildGEMM},
		{"md-knn", "Indirect Loads, Recurrence", "Large Irregular Datapath", BuildMDKNN},
		{"spmv-crs", "Indirect, Linear", "Single Multiply-Accumulate", BuildSpMVCRS},
		{"spmv-ellpack", "Indirect, Linear, Recurrence", "4-Way Multiply-Accumulate", BuildSpMVEllpack},
		{"stencil2d", "Affine, Recurrence", "8-Way Multiply-Accumulate", BuildStencil2D},
		{"stencil3d", "Affine", "6-1 Reduce and Multiplier Tree", BuildStencil3D},
		{"viterbi", "Recurrence, Linear", "4-Way Add-Minimize Tree", BuildViterbi},
	}
}

// Find returns the named workload entry.
func Find(name string) (Entry, error) {
	for _, e := range All() {
		if e.Name == name {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("machsuite: unknown workload %q", name)
}

// Unsuitable describes a MachSuite code the stream-dataflow abstractions
// cannot express efficiently (Table 4, bottom).
type Unsuitable struct {
	Name   string
	Reason string
}

// UnsuitableCodes lists the paper's four rejected workloads.
func UnsuitableCodes() []Unsuitable {
	return []Unsuitable{
		{"aes", "Byte-level data manipulation"},
		{"kmp", "Multi-level indirect pointer access"},
		{"merge-sort", "Fine-grain data-dependent loads/control"},
		{"radix-sort", "Concurrent reads/writes to same address"},
	}
}
