package machsuite

import (
	"fmt"
	"math/rand"

	"softbrain/internal/baseline"
	"softbrain/internal/baseline/asic"
	"softbrain/internal/core"
	"softbrain/internal/dfg"
	"softbrain/internal/isa"
	"softbrain/internal/mem"
	"softbrain/internal/workloads"
)

// gemmGraph is the 8-way multiply-accumulate row datapath:
// Cout[j] = Cin[j] + A * B[j] for 8 columns per instance.
func gemmGraph() (*dfg.Graph, error) {
	b := dfg.NewBuilder("gemm")
	bp := b.Input("B", 8)
	cin := b.Input("C", 8)
	a := b.Input("A", 1)
	var outs []dfg.Ref
	for j := 0; j < 8; j++ {
		outs = append(outs, b.N(dfg.Add(64), cin.W(j), b.N(dfg.Mul(64), a.W(0), bp.W(j))))
	}
	b.Output("O", outs...)
	return b.Build()
}

// BuildGEMM builds an n x n dense matrix multiply, n = 16*scale.
// The inner row of C recirculates through a recurrence stream across the
// k loop, B rows stream affinely, and the A scalar arrives as constants.
func BuildGEMM(cfg core.Config, scale int) (*workloads.Instance, error) {
	n := 16 * scale
	if n%8 != 0 {
		return nil, fmt.Errorf("gemm: n=%d not a multiple of 8", n)
	}
	g, err := gemmGraph()
	if err != nil {
		return nil, err
	}

	lay := workloads.NewLayout()
	nn := uint64(n)
	aAddr := lay.Alloc(nn * nn * 8)
	bAddr := lay.Alloc(nn * nn * 8)
	cAddr := lay.Alloc(nn * nn * 8)
	if err := lay.Err(); err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(11))
	a := make([]int64, n*n)
	bm := make([]int64, n*n)
	for i := range a {
		a[i] = int64(rng.Intn(201) - 100)
		bm[i] = int64(rng.Intn(201) - 100)
	}

	p := core.NewProgram("gemm")
	p.CompileAndConfigure(cfg.Fabric, g)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			p.Emit(isa.MemPort{Src: isa.Linear(bAddr+uint64(k*n*8), nn*8), Dst: p.In("B")})
			p.Emit(isa.ConstPort{Value: uint64(a[i*n+k]), Elem: isa.Elem64, Count: nn / 8, Dst: p.In("A")})
			if k == 0 {
				p.Emit(isa.ConstPort{Value: 0, Elem: isa.Elem64, Count: nn, Dst: p.In("C")})
			} else {
				p.Emit(isa.PortPort{Src: p.Out("O"), Elem: isa.Elem64, Count: nn, Dst: p.In("C")})
			}
			p.Delay(2) // host index arithmetic and a[i][k] load
		}
		p.Emit(isa.PortMem{Src: p.Out("O"), Dst: isa.Linear(cAddr+uint64(i*n*8), nn*8)})
	}
	p.Emit(isa.BarrierAll{})
	if err := p.Err(); err != nil {
		return nil, err
	}

	golden := make([]int64, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a[i*n+k]
			for j := 0; j < n; j++ {
				golden[i*n+j] += aik * bm[k*n+j]
			}
		}
	}

	return &workloads.Instance{
		Name:  "gemm",
		Progs: []*core.Program{p},
		Init: func(m *mem.Memory) {
			for i, v := range a {
				m.WriteU64(aAddr+uint64(8*i), uint64(v))
			}
			for i, v := range bm {
				m.WriteU64(bAddr+uint64(8*i), uint64(v))
			}
		},
		Check: func(m *mem.Memory) error {
			for i, want := range golden {
				if got := int64(m.ReadU64(cAddr + uint64(8*i))); got != want {
					return fmt.Errorf("gemm: c[%d] = %d, want %d", i, got, want)
				}
			}
			return nil
		},
		Profile: baseline.Profile{
			Name:      "gemm",
			KernelOps: 2 * uint64(n) * nn * nn,
			MACs:      uint64(n) * nn * nn,
			MemBytes:  3 * nn * nn * 8,
		},
		Kernel: &asic.Kernel{
			Name:         "gemm",
			Graph:        g,
			Iters:        nn * nn * nn / 8,
			BytesPerIter: 72, // one 64B row segment of B plus C traffic
			LocalSRAM:    n * 16,
		},
		Patterns: "Affine, Recurrence",
		Datapath: "8-Way Multiply-Accumulate",
	}, nil
}
