package machsuite

import (
	"fmt"
	"math/rand"

	"softbrain/internal/baseline"
	"softbrain/internal/baseline/asic"
	"softbrain/internal/core"
	"softbrain/internal/dfg"
	"softbrain/internal/isa"
	"softbrain/internal/mem"
	"softbrain/internal/workloads"
)

// stencil2dGraph multiplies 8 neighboring pixels by a broadcast filter
// coefficient and adds the running row of partial sums.
func stencil2dGraph() (*dfg.Graph, error) {
	b := dfg.NewBuilder("stencil2d")
	x := b.Input("X", 8)
	f := b.Input("F", 1)
	cin := b.Input("C", 8)
	var outs []dfg.Ref
	for j := 0; j < 8; j++ {
		outs = append(outs, b.N(dfg.Add(64), cin.W(j), b.N(dfg.Mul(64), f.W(0), x.W(j))))
	}
	b.Output("O", outs...)
	return b.Build()
}

// BuildStencil2D applies a 3x3 filter over a WxH grid. Each of the nine
// filter taps streams one shifted input row (the overlapped affine
// pattern of Figure 5) while the output row recirculates through a
// recurrence stream.
func BuildStencil2D(cfg core.Config, scale int) (*workloads.Instance, error) {
	w := 8*2*scale + 2 // output width W-2 is a multiple of 8
	h := 6*scale + 2
	ow, oh := w-2, h-2

	g, err := stencil2dGraph()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(5))
	in := make([]int64, w*h)
	for i := range in {
		in[i] = int64(rng.Intn(101) - 50)
	}
	filt := make([]int64, 9)
	for i := range filt {
		filt[i] = int64(rng.Intn(7) - 3)
	}

	lay := workloads.NewLayout()
	inAddr := lay.Alloc(uint64(w*h) * 8)
	outAddr := lay.Alloc(uint64(ow*oh) * 8)

	p := core.NewProgram("stencil2d")
	p.CompileAndConfigure(cfg.Fabric, g)
	for r := 0; r < oh; r++ {
		tap := 0
		for kr := 0; kr < 3; kr++ {
			for kc := 0; kc < 3; kc++ {
				src := inAddr + uint64(((r+kr)*w+kc)*8)
				p.Emit(isa.MemPort{Src: isa.Linear(src, uint64(ow)*8), Dst: p.In("X")})
				p.Emit(isa.ConstPort{Value: uint64(filt[3*kr+kc]), Elem: isa.Elem64, Count: uint64(ow / 8), Dst: p.In("F")})
				if tap == 0 {
					p.Emit(isa.ConstPort{Value: 0, Elem: isa.Elem64, Count: uint64(ow), Dst: p.In("C")})
				} else {
					p.Emit(isa.PortPort{Src: p.Out("O"), Elem: isa.Elem64, Count: uint64(ow), Dst: p.In("C")})
				}
				tap++
			}
		}
		p.Emit(isa.PortMem{Src: p.Out("O"), Dst: isa.Linear(outAddr+uint64(r*ow*8), uint64(ow)*8)})
		p.Delay(3)
	}
	p.Emit(isa.BarrierAll{})
	if err := p.Err(); err != nil {
		return nil, err
	}

	golden := make([]int64, ow*oh)
	for r := 0; r < oh; r++ {
		for c := 0; c < ow; c++ {
			var s int64
			for kr := 0; kr < 3; kr++ {
				for kc := 0; kc < 3; kc++ {
					s += filt[3*kr+kc] * in[(r+kr)*w+c+kc]
				}
			}
			golden[r*ow+c] = s
		}
	}

	pixels := uint64(ow * oh)
	return &workloads.Instance{
		Name:  "stencil2d",
		Progs: []*core.Program{p},
		Init: func(m *mem.Memory) {
			for i, v := range in {
				m.WriteU64(inAddr+uint64(8*i), uint64(v))
			}
		},
		Check: func(m *mem.Memory) error {
			for i, want := range golden {
				if got := int64(m.ReadU64(outAddr + uint64(8*i))); got != want {
					return fmt.Errorf("stencil2d: out[%d] = %d, want %d", i, got, want)
				}
			}
			return nil
		},
		Profile: baseline.Profile{
			Name:      "stencil2d",
			KernelOps: 18 * pixels,
			MACs:      9 * pixels,
			MemBytes:  uint64(w*h)*8 + pixels*8,
		},
		Kernel: &asic.Kernel{
			Name: "stencil2d", Graph: g, Iters: pixels * 9 / 8,
			BytesPerIter: 72, LocalSRAM: 3 * w * 8,
		},
		Patterns: "Affine, Recurrence",
		Datapath: "8-Way Multiply-Accumulate",
	}, nil
}

// stencil3dGraph is the 6-1 reduce and multiplier tree of Table 4:
// out = c0*center + c1*(sum of the six face neighbors).
func stencil3dGraph(c0, c1 int64) (*dfg.Graph, error) {
	b := dfg.NewBuilder("stencil3d")
	center := b.Input("C", 1)
	var sum []dfg.Ref
	for _, name := range []string{"XM", "XP", "YM", "YP", "ZM", "ZP"} {
		in := b.Input(name, 1)
		sum = append(sum, in.W(0))
	}
	tree := b.ReduceTree(dfg.Add(64), sum...)
	a := b.N(dfg.Mul(64), center.W(0), dfg.ImmRef(uint64(c0)))
	bb := b.N(dfg.Mul(64), tree, dfg.ImmRef(uint64(c1)))
	b.Output("O", b.N(dfg.Add(64), a, bb))
	return b.Build()
}

// BuildStencil3D applies a 7-point stencil over an N^3 volume; each of
// the seven taps is an affine stream over the interior.
func BuildStencil3D(cfg core.Config, scale int) (*workloads.Instance, error) {
	n := 6 + 4*scale
	const c0, c1 = 5, -2
	g, err := stencil3dGraph(c0, c1)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(17))
	in := make([]int64, n*n*n)
	for i := range in {
		in[i] = int64(rng.Intn(101) - 50)
	}
	lay := workloads.NewLayout()
	inAddr := lay.Alloc(uint64(n*n*n) * 8)
	outAddr := lay.Alloc(uint64(n*n*n) * 8)
	if err := lay.Err(); err != nil {
		return nil, err
	}
	at := func(i, j, k int) uint64 { return uint64(((i*n)+j)*n+k) * 8 }

	p := core.NewProgram("stencil3d")
	p.CompileAndConfigure(cfg.Fabric, g)
	inner := uint64(n - 2)
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			row := func(di, dj, dk int) isa.Affine {
				return isa.Linear(inAddr+at(i+di, j+dj, 1+dk), inner*8)
			}
			p.Emit(isa.MemPort{Src: row(0, 0, 0), Dst: p.In("C")})
			p.Emit(isa.MemPort{Src: row(-1, 0, 0), Dst: p.In("XM")})
			p.Emit(isa.MemPort{Src: row(1, 0, 0), Dst: p.In("XP")})
			p.Emit(isa.MemPort{Src: row(0, -1, 0), Dst: p.In("YM")})
			p.Emit(isa.MemPort{Src: row(0, 1, 0), Dst: p.In("YP")})
			p.Emit(isa.MemPort{Src: row(0, 0, -1), Dst: p.In("ZM")})
			p.Emit(isa.MemPort{Src: row(0, 0, 1), Dst: p.In("ZP")})
			p.Emit(isa.PortMem{Src: p.Out("O"), Dst: isa.Linear(outAddr+at(i, j, 1), inner*8)})
			p.Delay(3)
		}
	}
	p.Emit(isa.BarrierAll{})
	if err := p.Err(); err != nil {
		return nil, err
	}

	golden := make([]int64, n*n*n)
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			for k := 1; k < n-1; k++ {
				idx := (i*n+j)*n + k
				sum := in[idx-n*n] + in[idx+n*n] + in[idx-n] + in[idx+n] + in[idx-1] + in[idx+1]
				golden[idx] = c0*in[idx] + c1*sum
			}
		}
	}

	points := inner * inner * inner
	return &workloads.Instance{
		Name:  "stencil3d",
		Progs: []*core.Program{p},
		Init: func(m *mem.Memory) {
			for i, v := range in {
				m.WriteU64(inAddr+uint64(8*i), uint64(v))
			}
		},
		Check: func(m *mem.Memory) error {
			for i := 1; i < n-1; i++ {
				for j := 1; j < n-1; j++ {
					for k := 1; k < n-1; k++ {
						idx := (i*n+j)*n + k
						got := int64(m.ReadU64(outAddr + uint64(8*idx)))
						if got != golden[idx] {
							return fmt.Errorf("stencil3d: out[%d,%d,%d] = %d, want %d", i, j, k, got, golden[idx])
						}
					}
				}
			}
			return nil
		},
		Profile: baseline.Profile{
			Name:      "stencil3d",
			KernelOps: 9 * points,
			MACs:      2 * points,
			MemBytes:  uint64(n*n*n)*8 + points*8,
		},
		Kernel: &asic.Kernel{
			Name: "stencil3d", Graph: g, Iters: points,
			BytesPerIter: 64, LocalSRAM: 3 * n * n * 8,
		},
		Patterns: "Affine",
		Datapath: "6-1 Reduce and Multiplier Tree",
	}, nil
}
