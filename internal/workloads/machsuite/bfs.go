package machsuite

import (
	"fmt"
	"math/rand"

	"softbrain/internal/baseline"
	"softbrain/internal/baseline/asic"
	"softbrain/internal/core"
	"softbrain/internal/dfg"
	"softbrain/internal/isa"
	"softbrain/internal/mem"
	"softbrain/internal/workloads"
)

// bfsUnvisited marks an unreached node in the 32-bit level array.
const bfsUnvisited = 0xFFFF_FFFF

// bfsGraph is the compare/increment datapath: two edges per instance
// (32-bit lanes), newLevel = visited ? oldLevel : currentLevel+1.
func bfsGraph() (*dfg.Graph, error) {
	b := dfg.NewBuilder("bfs")
	lv := b.Input("LV", 1) // two gathered 32-bit levels per word
	nl := b.Input("NL", 1) // two copies of level+1
	unvis := b.N(dfg.Eq(32), lv.W(0), dfg.ImmRef(bfsUnvisited|uint64(bfsUnvisited)<<32))
	b.Output("O", b.N(dfg.Sel(32), unvis, nl.W(0), lv.W(0)))
	return b.Build()
}

// BuildBFS runs level-synchronous breadth-first search. Each level, the
// control core has the frontier's packed edge-target list prepared (the
// host-side work of bulk BFS); the accelerator gathers the targets'
// levels, computes the compare/increment update, and scatters the new
// levels back. A barrier separates levels. Duplicate targets within a
// level race benignly: all writers store the same value.
func BuildBFS(cfg core.Config, scale int) (*workloads.Instance, error) {
	n := 64 * scale
	avgDeg := 4
	rng := rand.New(rand.NewSource(53))

	// Random directed graph in CSR form.
	adj := make([][]uint32, n)
	edges := 0
	for u := 0; u < n; u++ {
		d := 1 + rng.Intn(2*avgDeg-1)
		for j := 0; j < d; j++ {
			adj[u] = append(adj[u], uint32(rng.Intn(n)))
		}
		edges += d
	}

	// Golden BFS from node 0, recording the per-level packed edge lists
	// exactly as the host prepares them.
	golden := make([]uint32, n+1) // +1: a scratch slot for padding
	for i := range golden {
		golden[i] = bfsUnvisited
	}
	golden[0] = 0
	frontier := []uint32{0}
	type level struct {
		targets []uint32
		depth   uint32
	}
	var levels []level
	for depth := uint32(1); len(frontier) > 0; depth++ {
		var targets []uint32
		var next []uint32
		for _, u := range frontier {
			for _, v := range adj[u] {
				targets = append(targets, v)
				if golden[v] == bfsUnvisited {
					golden[v] = depth
					next = append(next, v)
				}
			}
		}
		if len(targets) == 0 {
			break
		}
		if len(targets)%2 == 1 {
			targets = append(targets, uint32(n)) // pad to the scratch slot
		}
		levels = append(levels, level{targets: targets, depth: depth})
		frontier = next
	}
	golden[n] = bfsUnvisited // scratch slot's final value is irrelevant

	g, err := bfsGraph()
	if err != nil {
		return nil, err
	}
	lay := workloads.NewLayout()
	lvAddr := lay.Alloc(uint64(n+1) * 4)
	var edgeAddrs []uint64
	for _, l := range levels {
		edgeAddrs = append(edgeAddrs, lay.Alloc(uint64(len(l.targets))*4))
	}
	if err := lay.Err(); err != nil {
		return nil, err
	}

	p := core.NewProgram("bfs")
	p.CompileAndConfigure(cfg.Fabric, g)
	ind0 := p.IndirectIn(cfg.Fabric, 0)
	ind1 := p.IndirectIn(cfg.Fabric, 1)
	for li, l := range levels {
		cnt := uint64(len(l.targets))
		// Target indices feed both the gather and the scatter.
		p.Emit(isa.MemPort{Src: isa.Linear(edgeAddrs[li], cnt*4), Dst: ind0})
		p.Emit(isa.MemPort{Src: isa.Linear(edgeAddrs[li], cnt*4), Dst: ind1})
		p.Emit(isa.IndPortPort{
			Idx: ind0, IdxElem: isa.Elem32, Offset: lvAddr, Scale: 4,
			DataElem: isa.Elem32, Count: cnt, Dst: p.In("LV"),
		})
		nl := uint64(l.depth) | uint64(l.depth)<<32
		p.Emit(isa.ConstPort{Value: nl, Elem: isa.Elem64, Count: cnt / 2, Dst: p.In("NL")})
		p.Emit(isa.IndPortMem{
			Idx: ind1, IdxElem: isa.Elem32, Offset: lvAddr, Scale: 4,
			DataElem: isa.Elem32, Count: cnt, Src: p.Out("O"),
		})
		// The host assembles the next frontier while this level runs.
		p.Delay(uint64(len(l.targets)))
		p.Emit(isa.BarrierAll{})
	}
	if err := p.Err(); err != nil {
		return nil, err
	}

	return &workloads.Instance{
		Name:  "bfs",
		Progs: []*core.Program{p},
		Init: func(m *mem.Memory) {
			for i := 0; i <= n; i++ {
				v := uint64(bfsUnvisited)
				if i == 0 {
					v = 0
				}
				m.WriteUint(lvAddr+uint64(4*i), 4, v)
			}
			for li, l := range levels {
				for i, t := range l.targets {
					m.WriteUint(edgeAddrs[li]+uint64(4*i), 4, uint64(t))
				}
			}
		},
		Check: func(m *mem.Memory) error {
			for i := 0; i < n; i++ {
				got := uint32(m.ReadUint(lvAddr+uint64(4*i), 4))
				if got != golden[i] {
					return fmt.Errorf("bfs: level[%d] = %d, want %d", i, got, golden[i])
				}
			}
			return nil
		},
		Profile: baseline.Profile{
			Name:      "bfs",
			KernelOps: 3 * uint64(edges),
			MemBytes:  uint64(edges) * 12,
			BranchOps: uint64(edges), // visited test per edge
		},
		Kernel: &asic.Kernel{
			Name: "bfs", Graph: g, Iters: uint64(edges) / 2,
			BytesPerIter: 16, LocalSRAM: n,
			SerialFrac: 0.05, // level barriers
		},
		Patterns: "Indirect Loads/Stores, Recurrence",
		Datapath: "Compare/Increment",
	}, nil
}
