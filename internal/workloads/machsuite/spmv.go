package machsuite

import (
	"fmt"
	"math/rand"
	"sort"

	"softbrain/internal/baseline"
	"softbrain/internal/baseline/asic"
	"softbrain/internal/core"
	"softbrain/internal/dfg"
	"softbrain/internal/isa"
	"softbrain/internal/mem"
	"softbrain/internal/workloads"
)

// sparseMatrix is a random square matrix in CRS form with sorted column
// indices and at least one entry per row.
type sparseMatrix struct {
	n   int
	ptr []int // n+1 entries
	col []uint32
	val []int64
	x   []int64
	y   []int64 // golden result
}

func randomSparse(n, avgNNZ int, seed int64) *sparseMatrix {
	rng := rand.New(rand.NewSource(seed))
	m := &sparseMatrix{n: n, ptr: make([]int, n+1), x: make([]int64, n), y: make([]int64, n)}
	for i := range m.x {
		m.x[i] = int64(rng.Intn(41) - 20)
	}
	for r := 0; r < n; r++ {
		nnz := 1 + rng.Intn(2*avgNNZ-1)
		cols := map[uint32]bool{}
		for len(cols) < nnz {
			cols[uint32(rng.Intn(n))] = true
		}
		sorted := make([]uint32, 0, nnz)
		for c := range cols {
			sorted = append(sorted, c)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, c := range sorted {
			v := int64(rng.Intn(21) - 10)
			m.col = append(m.col, c)
			m.val = append(m.val, v)
			m.y[r] += v * m.x[c]
		}
		m.ptr[r+1] = len(m.col)
	}
	return m
}

// macGraph is the single multiply-accumulate datapath of spmv-crs.
func macGraph() (*dfg.Graph, error) {
	b := dfg.NewBuilder("spmv_crs")
	v := b.Input("V", 1)
	x := b.Input("X", 1)
	r := b.Input("R", 1)
	b.Output("Y", b.N(dfg.Acc(64), b.N(dfg.Mul(64), v.W(0), x.W(0)), r.W(0)))
	return b.Build()
}

// BuildSpMVCRS builds sparse matrix-vector multiply over CRS storage:
// column indices stream into an indirect port, gather x, and a single
// MAC accumulates each row.
func BuildSpMVCRS(cfg core.Config, scale int) (*workloads.Instance, error) {
	n := 32 * scale
	sm := randomSparse(n, 6, 23)
	g, err := macGraph()
	if err != nil {
		return nil, err
	}

	lay := workloads.NewLayout()
	nnz := uint64(len(sm.val))
	colAddr := lay.Alloc(nnz * 4)
	valAddr := lay.Alloc(nnz * 8)
	xAddr := lay.Alloc(uint64(n) * 8)
	yAddr := lay.Alloc(uint64(n) * 8)

	p := core.NewProgram("spmv-crs")
	p.CompileAndConfigure(cfg.Fabric, g)
	ind := p.IndirectIn(cfg.Fabric, 0)
	for r := 0; r < n; r++ {
		start, end := sm.ptr[r], sm.ptr[r+1]
		cnt := uint64(end - start)
		p.Emit(isa.MemPort{Src: isa.Linear(colAddr+uint64(start*4), cnt*4), Dst: ind})
		p.Emit(isa.IndPortPort{
			Idx: ind, IdxElem: isa.Elem32, Offset: xAddr, Scale: 8,
			DataElem: isa.Elem64, Count: cnt, Dst: p.In("X"),
		})
		p.Emit(isa.MemPort{Src: isa.Linear(valAddr+uint64(start*8), cnt*8), Dst: p.In("V")})
		if cnt > 1 {
			p.Emit(isa.ConstPort{Value: 0, Elem: isa.Elem64, Count: cnt - 1, Dst: p.In("R")})
			p.Emit(isa.CleanPort{Src: p.Out("Y"), Elem: isa.Elem64, Count: cnt - 1})
		}
		p.Emit(isa.ConstPort{Value: 1, Elem: isa.Elem64, Count: 1, Dst: p.In("R")})
		p.Emit(isa.PortMem{Src: p.Out("Y"), Dst: isa.Linear(yAddr+uint64(r*8), 8)})
		p.Delay(3) // host reads ptr[r+1] and advances
	}
	p.Emit(isa.BarrierAll{})
	if err := p.Err(); err != nil {
		return nil, err
	}

	inst := &workloads.Instance{
		Name:  "spmv-crs",
		Progs: []*core.Program{p},
		Init: func(m *mem.Memory) {
			for i, c := range sm.col {
				m.WriteUint(colAddr+uint64(4*i), 4, uint64(c))
			}
			for i, v := range sm.val {
				m.WriteU64(valAddr+uint64(8*i), uint64(v))
			}
			for i, v := range sm.x {
				m.WriteU64(xAddr+uint64(8*i), uint64(v))
			}
		},
		Check: func(m *mem.Memory) error {
			for i, want := range sm.y {
				if got := int64(m.ReadU64(yAddr + uint64(8*i))); got != want {
					return fmt.Errorf("spmv-crs: y[%d] = %d, want %d", i, got, want)
				}
			}
			return nil
		},
		Profile: baseline.Profile{
			Name:      "spmv-crs",
			KernelOps: 2 * nnz,
			MACs:      nnz,
			MemBytes:  nnz*20 + uint64(n)*16,
			BranchOps: nnz / 2, // dependent gather loads stall the core
		},
		Kernel: &asic.Kernel{
			Name: "spmv-crs", Graph: g, Iters: nnz,
			BytesPerIter: 20, LocalSRAM: n * 8,
			SerialFrac: 0.02, // row-boundary pipeline flushes
		},
		Patterns: "Indirect, Linear",
		Datapath: "Single Multiply-Accumulate",
	}
	return inst, nil
}

// ellpackGraph is the 4-way multiply-accumulate datapath.
func ellpackGraph() (*dfg.Graph, error) {
	b := dfg.NewBuilder("spmv_ellpack")
	v := b.Input("V", 4)
	x := b.Input("X", 4)
	r := b.Input("R", 1)
	var prods []dfg.Ref
	for i := 0; i < 4; i++ {
		prods = append(prods, b.N(dfg.Mul(64), v.W(i), x.W(i)))
	}
	sum := b.ReduceTree(dfg.Add(64), prods...)
	b.Output("Y", b.N(dfg.Acc(64), sum, r.W(0)))
	return b.Build()
}

// BuildSpMVEllpack builds SpMV over ELLPACK storage: every row holds
// exactly L entries, so rows vectorize 4-wide with a recurrence-free
// accumulator reset per row.
func BuildSpMVEllpack(cfg core.Config, scale int) (*workloads.Instance, error) {
	n := 32 * scale
	const L = 8 // entries per row, multiple of 4
	rng := rand.New(rand.NewSource(31))

	col := make([]uint32, n*L)
	val := make([]int64, n*L)
	x := make([]int64, n)
	y := make([]int64, n)
	for i := range x {
		x[i] = int64(rng.Intn(41) - 20)
	}
	for r := 0; r < n; r++ {
		for j := 0; j < L; j++ {
			c := uint32(rng.Intn(n))
			v := int64(rng.Intn(21) - 10)
			col[r*L+j] = c
			val[r*L+j] = v
			y[r] += v * x[c]
		}
	}

	g, err := ellpackGraph()
	if err != nil {
		return nil, err
	}
	lay := workloads.NewLayout()
	colAddr := lay.Alloc(uint64(n*L) * 4)
	valAddr := lay.Alloc(uint64(n*L) * 8)
	xAddr := lay.Alloc(uint64(n) * 8)
	yAddr := lay.Alloc(uint64(n) * 8)
	if err := lay.Err(); err != nil {
		return nil, err
	}

	p := core.NewProgram("spmv-ellpack")
	p.CompileAndConfigure(cfg.Fabric, g)
	ind := p.IndirectIn(cfg.Fabric, 0)
	instPerRow := uint64(L / 4)
	for r := 0; r < n; r++ {
		p.Emit(isa.MemPort{Src: isa.Linear(colAddr+uint64(r*L*4), L*4), Dst: ind})
		p.Emit(isa.IndPortPort{
			Idx: ind, IdxElem: isa.Elem32, Offset: xAddr, Scale: 8,
			DataElem: isa.Elem64, Count: L, Dst: p.In("X"),
		})
		p.Emit(isa.MemPort{Src: isa.Linear(valAddr+uint64(r*L*8), L*8), Dst: p.In("V")})
		p.Emit(isa.ConstPort{Value: 0, Elem: isa.Elem64, Count: instPerRow - 1, Dst: p.In("R")})
		p.Emit(isa.ConstPort{Value: 1, Elem: isa.Elem64, Count: 1, Dst: p.In("R")})
		p.Emit(isa.CleanPort{Src: p.Out("Y"), Elem: isa.Elem64, Count: instPerRow - 1})
		p.Emit(isa.PortMem{Src: p.Out("Y"), Dst: isa.Linear(yAddr+uint64(r*8), 8)})
		p.Delay(2)
	}
	p.Emit(isa.BarrierAll{})
	if err := p.Err(); err != nil {
		return nil, err
	}

	nnz := uint64(n * L)
	return &workloads.Instance{
		Name:  "spmv-ellpack",
		Progs: []*core.Program{p},
		Init: func(m *mem.Memory) {
			for i, c := range col {
				m.WriteUint(colAddr+uint64(4*i), 4, uint64(c))
			}
			for i, v := range val {
				m.WriteU64(valAddr+uint64(8*i), uint64(v))
			}
			for i, v := range x {
				m.WriteU64(xAddr+uint64(8*i), uint64(v))
			}
		},
		Check: func(m *mem.Memory) error {
			for i, want := range y {
				if got := int64(m.ReadU64(yAddr + uint64(8*i))); got != want {
					return fmt.Errorf("spmv-ellpack: y[%d] = %d, want %d", i, got, want)
				}
			}
			return nil
		},
		Profile: baseline.Profile{
			Name:      "spmv-ellpack",
			KernelOps: 2 * nnz,
			MACs:      nnz,
			MemBytes:  nnz*20 + uint64(n)*16,
			BranchOps: nnz / 4,
		},
		Kernel: &asic.Kernel{
			Name: "spmv-ellpack", Graph: g, Iters: nnz / 4,
			BytesPerIter: 80, LocalSRAM: n * 8,
			SerialFrac: 0.02,
		},
		Patterns: "Indirect, Linear, Recurrence",
		Datapath: "4-Way Multiply-Accumulate",
	}, nil
}
