package machsuite

import (
	"fmt"
	"math/rand"

	"softbrain/internal/baseline"
	"softbrain/internal/baseline/asic"
	"softbrain/internal/core"
	"softbrain/internal/dfg"
	"softbrain/internal/isa"
	"softbrain/internal/mem"
	"softbrain/internal/workloads"
)

// viterbiGraph is the 4-way add-minimize tree: four candidate path
// costs per instance, a running minimum with reset, plus the emission
// cost added to the surviving value.
func viterbiGraph() (*dfg.Graph, error) {
	b := dfg.NewBuilder("viterbi")
	pp := b.Input("P", 4) // prev-step path costs
	tr := b.Input("T", 4) // transition costs into the current state
	r := b.Input("R", 1)
	e := b.Input("E", 1) // emission cost (same value every instance)
	var cands []dfg.Ref
	for i := 0; i < 4; i++ {
		cands = append(cands, b.N(dfg.Add(64), pp.W(i), tr.W(i)))
	}
	m := b.ReduceTree(dfg.Min(64), cands...)
	best := b.N(dfg.AccMin(64), m, r.W(0))
	b.Output("O", b.N(dfg.Add(64), best, e.W(0)))
	return b.Build()
}

// BuildViterbi runs Viterbi decoding (min-plus dynamic programming)
// over S states and T steps: previous costs stream linearly, transition
// columns stream strided, and a barrier orders each timestep's writes
// before the next step reads them.
func BuildViterbi(cfg core.Config, scale int) (*workloads.Instance, error) {
	S := 16 * scale // states, multiple of 4
	T := 12         // timesteps
	const nObs = 8
	rng := rand.New(rand.NewSource(61))

	trans := make([]int64, S*S) // trans[p][s]
	emit := make([]int64, nObs*S)
	obs := make([]int, T)
	init := make([]int64, S)
	for i := range trans {
		trans[i] = int64(rng.Intn(90) + 1)
	}
	for i := range emit {
		emit[i] = int64(rng.Intn(50) + 1)
	}
	for i := range obs {
		obs[i] = rng.Intn(nObs)
	}
	for i := range init {
		init[i] = int64(rng.Intn(100))
	}

	g, err := viterbiGraph()
	if err != nil {
		return nil, err
	}
	lay := workloads.NewLayout()
	su := uint64(S)
	transAddr := lay.Alloc(su * su * 8)
	probAddr := lay.Alloc(uint64(T+1) * su * 8) // prob[t][s]
	if err := lay.Err(); err != nil {
		return nil, err
	}
	probAt := func(t, s int) uint64 { return probAddr + uint64(t*S+s)*8 }

	p := core.NewProgram("viterbi")
	p.CompileAndConfigure(cfg.Fabric, g)
	inst := su / 4
	for t := 1; t <= T; t++ {
		for s := 0; s < S; s++ {
			p.Emit(isa.MemPort{Src: isa.Linear(probAt(t-1, 0), su*8), Dst: p.In("P")})
			// Column s of the transition matrix: stride S words.
			p.Emit(isa.MemPort{Src: isa.Strided2D(transAddr+uint64(s*8), 8, su*8, su), Dst: p.In("T")})
			p.Emit(isa.ConstPort{Value: uint64(emit[obs[t-1]*S+s]), Elem: isa.Elem64, Count: inst, Dst: p.In("E")})
			p.Emit(isa.ConstPort{Value: 0, Elem: isa.Elem64, Count: inst - 1, Dst: p.In("R")})
			p.Emit(isa.ConstPort{Value: 1, Elem: isa.Elem64, Count: 1, Dst: p.In("R")})
			p.Emit(isa.CleanPort{Src: p.Out("O"), Elem: isa.Elem64, Count: inst - 1})
			p.Emit(isa.PortMem{Src: p.Out("O"), Dst: isa.Linear(probAt(t, s), 8)})
			p.Delay(2)
		}
		// prob[t] must be durable before step t+1 streams it.
		p.Emit(isa.BarrierAll{})
	}
	if err := p.Err(); err != nil {
		return nil, err
	}

	// Golden min-plus recurrence.
	prev := append([]int64(nil), init...)
	goldenFinal := make([]int64, S)
	for t := 1; t <= T; t++ {
		cur := make([]int64, S)
		for s := 0; s < S; s++ {
			best := prev[0] + trans[s]
			for q := 1; q < S; q++ {
				if c := prev[q] + trans[q*S+s]; c < best {
					best = c
				}
			}
			cur[s] = best + emit[obs[t-1]*S+s]
		}
		prev = cur
	}
	copy(goldenFinal, prev)

	work := uint64(T) * su * su
	return &workloads.Instance{
		Name:  "viterbi",
		Progs: []*core.Program{p},
		Init: func(m *mem.Memory) {
			for i, v := range trans {
				m.WriteU64(transAddr+uint64(8*i), uint64(v))
			}
			for s, v := range init {
				m.WriteU64(probAt(0, s), uint64(v))
			}
		},
		Check: func(m *mem.Memory) error {
			for s := 0; s < S; s++ {
				if got := int64(m.ReadU64(probAt(T, s))); got != goldenFinal[s] {
					return fmt.Errorf("viterbi: prob[%d][%d] = %d, want %d", T, s, got, goldenFinal[s])
				}
			}
			return nil
		},
		Profile: baseline.Profile{
			Name:      "viterbi",
			KernelOps: 3 * work, // add + compare + select per transition
			MemBytes:  work*8 + uint64(T)*su*8,
			BranchOps: work / 4,
		},
		Kernel: &asic.Kernel{
			Name: "viterbi", Graph: g, Iters: work / 4,
			BytesPerIter: 64, LocalSRAM: S * 16,
			SerialFrac: 0.02, // timestep dependence
		},
		Patterns: "Recurrence, Linear",
		Datapath: "4-Way Add-Minimize Tree",
	}, nil
}
