package machsuite

import (
	"testing"

	"softbrain/internal/core"
)

// TestAllWorkloadsVerify runs every implemented MachSuite workload on
// the broadly provisioned Softbrain and checks its output against the
// golden model.
func TestAllWorkloadsVerify(t *testing.T) {
	cfg := core.DefaultConfig()
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			inst, err := e.Build(cfg, 1)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			stats, err := inst.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Instances == 0 {
				t.Error("no CGRA instances fired")
			}
			if inst.Profile.KernelOps == 0 {
				t.Error("empty baseline profile")
			}
			if inst.Kernel == nil || inst.Kernel.Iters == 0 {
				t.Error("empty ASIC kernel")
			}
			if inst.Patterns == "" || inst.Datapath == "" {
				t.Error("missing Table 4 characterization")
			}
			t.Logf("%-14s %8d cycles %8d instances %6d commands",
				e.Name, stats.Cycles, stats.Instances, stats.Commands)
		})
	}
}

func TestUnsuitableCodesListed(t *testing.T) {
	u := UnsuitableCodes()
	if len(u) != 4 {
		t.Fatalf("%d unsuitable codes, want 4", len(u))
	}
	for _, c := range u {
		if c.Name == "" || c.Reason == "" {
			t.Errorf("incomplete entry %+v", c)
		}
	}
}

func TestFind(t *testing.T) {
	if _, err := Find("gemm"); err != nil {
		t.Error(err)
	}
	if _, err := Find("nope"); err == nil {
		t.Error("unknown workload found")
	}
}
