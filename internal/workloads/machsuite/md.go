package machsuite

import (
	"fmt"
	"math/rand"

	"softbrain/internal/baseline"
	"softbrain/internal/baseline/asic"
	"softbrain/internal/core"
	"softbrain/internal/dfg"
	"softbrain/internal/isa"
	"softbrain/internal/mem"
	"softbrain/internal/workloads"
)

// Fixed-point Lennard-Jones-flavored constants: the force magnitude is
// f = C/r2 - D, applied along each displacement component.
const (
	mdForceC = int64(1) << 20
	mdForceD = int64(8)
)

// mdGraph is the "large irregular datapath" of md-knn: displacement,
// squared distance, a division, force magnitude, and three accumulated
// force components.
func mdGraph() (*dfg.Graph, error) {
	b := dfg.NewBuilder("md_knn")
	xi, yi, zi := b.Input("XI", 1), b.Input("YI", 1), b.Input("ZI", 1)
	xj, yj, zj := b.Input("XJ", 1), b.Input("YJ", 1), b.Input("ZJ", 1)
	r := b.Input("R", 1)

	dx := b.Named("dx", dfg.Sub(64), xi.W(0), xj.W(0))
	dy := b.Named("dy", dfg.Sub(64), yi.W(0), yj.W(0))
	dz := b.Named("dz", dfg.Sub(64), zi.W(0), zj.W(0))
	r2 := b.ReduceTree(dfg.Add(64),
		b.N(dfg.Mul(64), dx, dx),
		b.N(dfg.Mul(64), dy, dy),
		b.N(dfg.Mul(64), dz, dz))
	q := b.Named("q", dfg.Div(64), dfg.ImmRef(uint64(mdForceC)), r2)
	f := b.Named("f", dfg.Sub(64), q, dfg.ImmRef(uint64(mdForceD)))
	fx := b.N(dfg.Acc(64), b.N(dfg.Mul(64), f, dx), r.W(0))
	fy := b.N(dfg.Acc(64), b.N(dfg.Mul(64), f, dy), r.W(0))
	fz := b.N(dfg.Acc(64), b.N(dfg.Mul(64), f, dz), r.W(0))
	b.Output("F", fx, fy, fz)
	return b.Build()
}

// BuildMDKNN computes per-atom forces over a K-nearest-neighbor list:
// neighbor indices stream through an indirect port three times to gather
// the x, y and z position components.
func BuildMDKNN(cfg core.Config, scale int) (*workloads.Instance, error) {
	atoms := 16 * scale
	const k = 16
	g, err := mdGraph()
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(41))
	px := make([]int64, atoms)
	py := make([]int64, atoms)
	pz := make([]int64, atoms)
	for i := 0; i < atoms; i++ {
		px[i] = int64(rng.Intn(201) - 100)
		py[i] = int64(rng.Intn(201) - 100)
		pz[i] = int64(rng.Intn(201) - 100)
	}
	nl := make([]uint32, atoms*k)
	for i := 0; i < atoms; i++ {
		for j := 0; j < k; j++ {
			// Any atom but self; duplicates are fine, as in MachSuite.
			t := rng.Intn(atoms - 1)
			if t >= i {
				t++
			}
			nl[i*k+j] = uint32(t)
		}
	}

	lay := workloads.NewLayout()
	au := uint64(atoms)
	pxAddr := lay.Alloc(au * 8)
	pyAddr := lay.Alloc(au * 8)
	pzAddr := lay.Alloc(au * 8)
	nlAddr := lay.Alloc(au * k * 4)
	fAddr := lay.Alloc(au * 24)
	if err := lay.Err(); err != nil {
		return nil, err
	}

	p := core.NewProgram("md-knn")
	p.CompileAndConfigure(cfg.Fabric, g)
	ind := p.IndirectIn(cfg.Fabric, 0)
	gather := func(row uint64, base uint64, dst isa.InPortID) {
		p.Emit(isa.MemPort{Src: isa.Linear(nlAddr+row*k*4, k*4), Dst: ind})
		p.Emit(isa.IndPortPort{
			Idx: ind, IdxElem: isa.Elem32, Offset: base, Scale: 8,
			DataElem: isa.Elem64, Count: k, Dst: dst,
		})
	}
	for i := 0; i < atoms; i++ {
		iu := uint64(i)
		gather(iu, pxAddr, p.In("XJ"))
		gather(iu, pyAddr, p.In("YJ"))
		gather(iu, pzAddr, p.In("ZJ"))
		p.Emit(isa.ConstPort{Value: uint64(px[i]), Elem: isa.Elem64, Count: k, Dst: p.In("XI")})
		p.Emit(isa.ConstPort{Value: uint64(py[i]), Elem: isa.Elem64, Count: k, Dst: p.In("YI")})
		p.Emit(isa.ConstPort{Value: uint64(pz[i]), Elem: isa.Elem64, Count: k, Dst: p.In("ZI")})
		p.Emit(isa.ConstPort{Value: 0, Elem: isa.Elem64, Count: k - 1, Dst: p.In("R")})
		p.Emit(isa.ConstPort{Value: 1, Elem: isa.Elem64, Count: 1, Dst: p.In("R")})
		p.Emit(isa.CleanPort{Src: p.Out("F"), Elem: isa.Elem64, Count: (k - 1) * 3})
		p.Emit(isa.PortMem{Src: p.Out("F"), Dst: isa.Linear(fAddr+iu*24, 24)})
		p.Delay(4)
	}
	p.Emit(isa.BarrierAll{})
	if err := p.Err(); err != nil {
		return nil, err
	}

	// Golden model: identical fixed-point arithmetic.
	gfx := make([]int64, atoms)
	gfy := make([]int64, atoms)
	gfz := make([]int64, atoms)
	for i := 0; i < atoms; i++ {
		for j := 0; j < k; j++ {
			t := nl[i*k+j]
			dx := px[i] - px[t]
			dy := py[i] - py[t]
			dz := pz[i] - pz[t]
			r2 := dx*dx + dy*dy + dz*dz
			var q int64
			if r2 != 0 {
				q = mdForceC / r2
			}
			f := q - mdForceD
			gfx[i] += f * dx
			gfy[i] += f * dy
			gfz[i] += f * dz
		}
	}

	pairs := au * k
	return &workloads.Instance{
		Name:  "md-knn",
		Progs: []*core.Program{p},
		Init: func(m *mem.Memory) {
			for i := 0; i < atoms; i++ {
				m.WriteU64(pxAddr+uint64(8*i), uint64(px[i]))
				m.WriteU64(pyAddr+uint64(8*i), uint64(py[i]))
				m.WriteU64(pzAddr+uint64(8*i), uint64(pz[i]))
			}
			for i, v := range nl {
				m.WriteUint(nlAddr+uint64(4*i), 4, uint64(v))
			}
		},
		Check: func(m *mem.Memory) error {
			for i := 0; i < atoms; i++ {
				fx := int64(m.ReadU64(fAddr + uint64(i*24)))
				fy := int64(m.ReadU64(fAddr + uint64(i*24+8)))
				fz := int64(m.ReadU64(fAddr + uint64(i*24+16)))
				if fx != gfx[i] || fy != gfy[i] || fz != gfz[i] {
					return fmt.Errorf("md-knn: force[%d] = (%d,%d,%d), want (%d,%d,%d)",
						i, fx, fy, fz, gfx[i], gfy[i], gfz[i])
				}
			}
			return nil
		},
		Profile: baseline.Profile{
			Name:      "md-knn",
			KernelOps: 16 * pairs, // sub/mul/add/div/mac chain per pair
			MACs:      6 * pairs,
			MemBytes:  pairs*(4+24) + au*24,
			BranchOps: pairs / 2, // gather-dependent loads
		},
		Kernel: &asic.Kernel{
			Name: "md-knn", Graph: g, Iters: pairs,
			BytesPerIter: 28, LocalSRAM: atoms * 24,
			SerialFrac: 0.01,
		},
		Patterns: "Indirect Loads, Recurrence",
		Datapath: "Large Irregular Datapath",
	}, nil
}
