// Package workloads defines the common shape of the benchmark
// workloads: a stream-dataflow program (or one per Softbrain unit), the
// memory image initializer, a golden-model checker, and the analytic
// profile the baseline models consume. Subpackages dnn and machsuite
// hold the actual workloads of Sections 7.1 and 7.2.
package workloads

import (
	"context"
	"fmt"

	"softbrain/internal/baseline"
	"softbrain/internal/baseline/asic"
	"softbrain/internal/core"
	"softbrain/internal/mem"
	"softbrain/internal/obs"
	"softbrain/internal/sim"
)

// Instance is one concrete, sized workload ready to run.
type Instance struct {
	Name string

	// Progs holds one program per Softbrain unit; single-unit workloads
	// have exactly one entry.
	Progs []*core.Program

	// Init writes the input data into the memory image.
	Init func(m *mem.Memory)

	// Check compares the memory image against the golden model after
	// the run.
	Check func(m *mem.Memory) error

	// Profile feeds the CPU/GPU/DianNao analytic models.
	Profile baseline.Profile

	// Kernel feeds the ASIC (Aladdin-like) model; nil for workloads
	// that are not part of the MachSuite comparison.
	Kernel *asic.Kernel

	// Table 4 characterization.
	Patterns string
	Datapath string
}

// Units is the number of Softbrain units the instance runs on.
func (i *Instance) Units() int { return len(i.Progs) }

// Run executes the instance on a fresh machine (or cluster) with the
// given per-unit configuration, verifies the result, and returns the
// statistics.
func (i *Instance) Run(cfg core.Config) (*core.Stats, error) {
	return i.run(context.Background(), cfg, false)
}

// RunContext is Run bounded by a context: cancellation or deadline
// expiry mid-run returns a *core.CanceledError (the cycle watchdog
// bounds simulated time; the context bounds host wall-clock time).
func (i *Instance) RunContext(ctx context.Context, cfg core.Config) (*core.Stats, error) {
	return i.run(ctx, cfg, false)
}

// RunWarm runs the instance twice on the same machine and reports the
// second, cache-warm run — the standard steady-state measurement, and
// the regime the paper's accelerator comparisons operate in. Workload
// programs are idempotent, so verification still holds.
func (i *Instance) RunWarm(cfg core.Config) (*core.Stats, error) {
	return i.run(context.Background(), cfg, true)
}

// RunWarmContext is RunWarm bounded by a context; the deadline covers
// both the cold and the measured warm run.
func (i *Instance) RunWarmContext(ctx context.Context, cfg core.Config) (*core.Stats, error) {
	return i.run(ctx, cfg, true)
}

// RunPreparedContext is RunContext with a caller hook that runs after
// the cluster is built and before the memory image is initialized — the
// seam for attaching instrumentation (heartbeats, metrics, tracing)
// without reimplementing the build/run/verify sequence. A nil prepare
// is identical to RunContext.
func (i *Instance) RunPreparedContext(ctx context.Context, cfg core.Config, prepare func(*core.Cluster)) (*core.Stats, error) {
	_, stats, err := i.runOn(ctx, cfg, false, prepare)
	return stats, err
}

// RunMetrics is Run with the observability layer attached: it returns
// the per-unit metrics dump (stall attribution, counters, per-stream
// bandwidth — see internal/obs) alongside the statistics. Enabling
// metrics never changes the simulated schedule, so Cycles matches Run.
func (i *Instance) RunMetrics(cfg core.Config, opts obs.Options) (*core.Stats, obs.Dump, error) {
	return i.RunMetricsContext(context.Background(), cfg, opts)
}

// RunMetricsContext is RunMetrics bounded by a context; see RunContext.
func (i *Instance) RunMetricsContext(ctx context.Context, cfg core.Config, opts obs.Options) (*core.Stats, obs.Dump, error) {
	cl, stats, err := i.runOn(ctx, cfg, false, func(cl *core.Cluster) { cl.EnableMetrics(opts) })
	if err != nil {
		return nil, obs.Dump{}, err
	}
	return stats, cl.MetricsDump(), nil
}

// RunSchedContext is RunContext returning the wake-set scheduler's
// aggregate counters and per-component tick totals alongside the
// statistics (see core.Cluster.SchedStats). The counters describe how
// the simulator ran, not what it simulated, so unlike the obs dump
// they legitimately differ across scheduling modes.
func (i *Instance) RunSchedContext(ctx context.Context, cfg core.Config) (*core.Stats, sim.SchedStats, map[string]uint64, error) {
	cl, stats, err := i.runOn(ctx, cfg, false, nil)
	if err != nil {
		return nil, sim.SchedStats{}, nil, err
	}
	return stats, cl.SchedStats(), cl.SchedTickBy(), nil
}

func (i *Instance) run(ctx context.Context, cfg core.Config, warm bool) (*core.Stats, error) {
	_, stats, err := i.runOn(ctx, cfg, warm, nil)
	return stats, err
}

// runOn builds the cluster, lets prepare instrument it, and executes
// (twice when warm, reporting the cache-warm second run).
func (i *Instance) runOn(ctx context.Context, cfg core.Config, warm bool, prepare func(*core.Cluster)) (*core.Cluster, *core.Stats, error) {
	if len(i.Progs) == 0 {
		return nil, nil, fmt.Errorf("workloads: %s has no programs", i.Name)
	}
	cl, err := core.NewCluster(cfg, len(i.Progs))
	if err != nil {
		return nil, nil, err
	}
	if prepare != nil {
		prepare(cl)
	}
	if i.Init != nil {
		i.Init(cl.Mem)
	}
	stats, err := cl.RunContext(ctx, i.Progs)
	if err != nil {
		return nil, nil, fmt.Errorf("workloads: running %s: %w", i.Name, err)
	}
	if warm {
		stats, err = cl.RunContext(ctx, i.Progs)
		if err != nil {
			return nil, nil, fmt.Errorf("workloads: warm-running %s: %w", i.Name, err)
		}
	}
	if i.Check != nil {
		if err := i.Check(cl.Mem); err != nil {
			return nil, nil, fmt.Errorf("workloads: verifying %s: %w", i.Name, err)
		}
	}
	return cl, stats, nil
}

// Layout is a bump allocator for laying out workload data in the memory
// image below the configuration space. Overflow is a sticky error, so a
// builder can chain Alloc calls and check Err once at the end.
type Layout struct {
	next uint64
	err  error
}

// NewLayout starts allocating at a small non-zero base.
func NewLayout() *Layout { return &Layout{next: 0x1_0000} }

// Alloc reserves n bytes, 64-byte aligned, and returns the base address.
// On overflow into the configuration space it records the error
// (observable via Err) and keeps allocating, so addresses stay distinct.
func (l *Layout) Alloc(n uint64) uint64 {
	addr := l.next
	l.next += (n + 63) &^ 63
	if l.err == nil && l.next >= core.ConfigSpace {
		l.err = fmt.Errorf("workloads: memory image (%#x bytes) overflows into configuration space at %#x",
			l.next, core.ConfigSpace)
	}
	return addr
}

// Err reports whether any allocation overflowed the data space.
func (l *Layout) Err() error { return l.err }
