package ext

import (
	"testing"

	"softbrain/internal/core"
)

// TestExtensionWorkloadsVerify runs each footnote-3 workload and checks
// its output bit-exactly against the golden model.
func TestExtensionWorkloadsVerify(t *testing.T) {
	cfg := core.DefaultConfig()
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			inst, err := e.Build(cfg, 1)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			stats, err := inst.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Instances == 0 {
				t.Error("no CGRA instances fired")
			}
			if inst.Kernel == nil || inst.Profile.KernelOps == 0 {
				t.Error("missing profile or ASIC kernel")
			}
			t.Logf("%-9s %8d cycles %7d instances %5d commands",
				e.Name, stats.Cycles, stats.Instances, stats.Commands)
		})
	}
}

// TestExtensionScalesUp exercises larger problem sizes, including the
// multi-configuration backprop program.
func TestExtensionScalesUp(t *testing.T) {
	cfg := core.DefaultConfig()
	for _, name := range []string{"fft", "backprop"} {
		e, err := Find(name)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := e.Build(cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inst.Run(cfg); err != nil {
			t.Errorf("%s scale 2: %v", name, err)
		}
	}
}

func TestFind(t *testing.T) {
	if _, err := Find("fft"); err != nil {
		t.Error(err)
	}
	if _, err := Find("md-gridding"); err == nil {
		t.Error("unimplemented workload found")
	}
}
