package ext

import (
	"fmt"

	"softbrain/internal/core"
	"softbrain/internal/workloads"
)

// Builder matches the machsuite builder signature.
type Builder func(cfg core.Config, scale int) (*workloads.Instance, error)

// Entry is one extension workload.
type Entry struct {
	Name     string
	Patterns string
	Datapath string
	Build    Builder
}

// All returns the implemented extension workloads — the codes the paper
// lists as fitting stream-dataflow but did not implement (md-gridding
// remains future work here too).
func All() []Entry {
	return []Entry{
		{"fft", "Log-Strided, Ping-Pong", "Complex Butterfly (4-mul rotate)", BuildFFT},
		{"nw", "Wavefront Linear, Shifted Reads", "Compare-Select + 3-Way Max", BuildNW},
		{"backprop", "Linear, Repeating, Two-Phase", "4-Way MAC + Derivative Scale", BuildBackprop},
		{"lut", "Indirect (Scratch Round-Trip), Linear", "Single Multiply", BuildLUT},
	}
}

// Find returns the named extension workload.
func Find(name string) (Entry, error) {
	for _, e := range All() {
		if e.Name == name {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("ext: unknown workload %q", name)
}
