package ext

import (
	"fmt"
	"math/rand"

	"softbrain/internal/baseline"
	"softbrain/internal/baseline/asic"
	"softbrain/internal/core"
	"softbrain/internal/dfg"
	"softbrain/internal/isa"
	"softbrain/internal/mem"
	"softbrain/internal/workloads"
)

// lutIotaGraph produces the gather indices on the fabric: an
// accumulator fed a constant 1 (never reset) emits 1, 2, 3, ...
func lutIotaGraph() (*dfg.Graph, error) {
	b := dfg.NewBuilder("lut_iota")
	x := b.Input("X", 1)
	r := b.Input("R", 1)
	b.Output("I", b.N(dfg.Acc(64), x.W(0), r.W(0)))
	return b.Build()
}

// lutScaleGraph scales each gathered table value by a constant factor.
func lutScaleGraph() (*dfg.Graph, error) {
	b := dfg.NewBuilder("lut_scale")
	g := b.Input("G", 1)
	v := b.Input("B", 1)
	b.Output("O", b.N(dfg.Mul(64), g.W(0), v.W(0)))
	return b.Build()
}

// lutScale is the constant factor applied to each gathered value.
const lutScale = 3

// BuildLUT builds the scratch round-trip gather: the fabric computes
// the index stream (iota via an accumulator), SD_Port_Scratch parks it
// in the scratchpad, SD_Config swaps in the scale datapath, and
// SD_Scratch_Port reloads the indices into the indirect port for an
// SD_IndPort_Port table gather whose products stream back to memory.
//
// The round trip is the point: the gather's footprint is only known if
// the analysis can follow the computed indices DRAM-ward through the
// scratchpad and across the reconfiguration (docs/LINT.md). With that
// tracking the shipped program is provably minimal at one barrier (the
// trailing write fence); without it the gather is an unbounded access
// that under strict indirect analysis conflicts with every stream
// around it, and the serialized variant of the fix study would have to
// keep its fences.
func BuildLUT(cfg core.Config, scale int) (*workloads.Instance, error) {
	n := 64 * scale // gather count; indices are 1..n
	if 8*n > cfg.ScratchBytes {
		return nil, fmt.Errorf("lut: %d indices exceed the %d-byte scratchpad", n, cfg.ScratchBytes)
	}
	gIota, err := lutIotaGraph()
	if err != nil {
		return nil, err
	}
	gScale, err := lutScaleGraph()
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(211))
	table := make([]int64, n+1) // indexed 1..n; entry 0 never gathered
	for i := range table {
		table[i] = int64(rng.Intn(1<<12) - 1<<11)
	}

	lay := workloads.NewLayout()
	tableAddr := lay.Alloc(uint64(n+1) * 8)
	outAddr := lay.Alloc(uint64(n) * 8)
	if err := lay.Err(); err != nil {
		return nil, err
	}

	p := core.NewProgram("lut")
	p.CompileAndConfigure(cfg.Fabric, gIota)
	p.Emit(isa.ConstPort{Value: 1, Elem: isa.Elem64, Count: uint64(n), Dst: p.In("X")})
	p.Emit(isa.ConstPort{Value: 0, Elem: isa.Elem64, Count: uint64(n), Dst: p.In("R")})
	p.Emit(isa.PortScratch{Src: p.Out("I"), Elem: isa.Elem64, Count: uint64(n), ScratchAddr: 0})

	// No scratch barrier before the reload: SD_Config issues only on an
	// idle machine, so the reconfiguration already orders the reload
	// after the park.
	p.CompileAndConfigure(cfg.Fabric, gScale)
	ind := p.IndirectIn(cfg.Fabric, 0)
	p.Emit(isa.ScratchPort{Src: isa.Linear(0, uint64(n)*8), Dst: ind})
	p.Emit(isa.IndPortPort{
		Idx: ind, IdxElem: isa.Elem64,
		Offset: tableAddr, Scale: 8, DataElem: isa.Elem64, Count: uint64(n),
		Dst: p.In("G"),
	})
	p.Emit(isa.ConstPort{Value: lutScale, Elem: isa.Elem64, Count: uint64(n), Dst: p.In("B")})
	p.Emit(isa.PortMem{Src: p.Out("O"), Dst: isa.Linear(outAddr, uint64(n)*8)})
	p.Emit(isa.BarrierAll{})
	if err := p.Err(); err != nil {
		return nil, err
	}

	return &workloads.Instance{
		Name:  "lut",
		Progs: []*core.Program{p},
		Init: func(m *mem.Memory) {
			for i, v := range table {
				m.WriteU64(tableAddr+uint64(8*i), uint64(v))
			}
		},
		Check: func(m *mem.Memory) error {
			for i := 0; i < n; i++ {
				want := lutScale * table[i+1]
				if got := int64(m.ReadU64(outAddr + uint64(8*i))); got != want {
					return fmt.Errorf("lut: out[%d] = %d, want %d", i, got, want)
				}
			}
			return nil
		},
		Profile: baseline.Profile{
			Name:      "lut",
			KernelOps: uint64(2 * n), // index increment + scale per element
			MemBytes:  uint64(2*n) * 8,
			BranchOps: uint64(n), // CPU follows a data-dependent address per element
		},
		Kernel: &asic.Kernel{
			Name: "lut", Graph: gScale, Iters: uint64(n),
			BytesPerIter: 16, LocalSRAM: 8 * n,
			SerialFrac: 0.02,
		},
		Patterns: "Indirect (Scratch Round-Trip), Linear",
		Datapath: "Single Multiply",
	}, nil
}
