package ext

import (
	"fmt"
	"math/rand"

	"softbrain/internal/baseline"
	"softbrain/internal/baseline/asic"
	"softbrain/internal/core"
	"softbrain/internal/dfg"
	"softbrain/internal/isa"
	"softbrain/internal/mem"
	"softbrain/internal/workloads"
)

// Fixed-point format of the backprop workload: Q.8.
const (
	bpFrac = 8
	bpOne  = int64(1) << bpFrac
)

// bpDeltaGraph computes one hidden neuron's delta: the dot product of
// its outgoing weights with the output deltas, scaled by the sigmoid
// derivative a*(1-a) of its activation (a arrives as a per-row constant
// stream).
func bpDeltaGraph() (*dfg.Graph, error) {
	b := dfg.NewBuilder("bp_delta")
	w := b.Input("W", 4)
	e := b.Input("E", 4)
	r := b.Input("R", 1)
	a := b.Input("A", 1)
	var prods []dfg.Ref
	for i := 0; i < 4; i++ {
		prods = append(prods, b.N(dfg.Mul(64), w.W(i), e.W(i)))
	}
	dot := b.N(dfg.Acc(64), b.ReduceTree(dfg.Add(64), prods...), r.W(0))
	deriv := b.N(dfg.Ashr(64),
		b.N(dfg.Mul(64), a.W(0), b.N(dfg.Sub(64), dfg.ImmRef(uint64(bpOne)), a.W(0))),
		dfg.ImmRef(bpFrac))
	b.Output("D", b.N(dfg.Ashr(64), b.N(dfg.Mul(64), deriv, dot), dfg.ImmRef(bpFrac)))
	return b.Build()
}

// bpUpdateGraph applies one row of the outer-product weight update:
// W'[j] = W[j] + (g * D[j]) >> frac, with g = lr*x[row] as a per-row
// constant.
func bpUpdateGraph() (*dfg.Graph, error) {
	b := dfg.NewBuilder("bp_update")
	w := b.Input("W", 4)
	d := b.Input("D", 4)
	g := b.Input("G", 1)
	var outs []dfg.Ref
	for i := 0; i < 4; i++ {
		scaled := b.N(dfg.Ashr(64), b.N(dfg.Mul(64), g.W(0), d.W(i)), dfg.ImmRef(bpFrac))
		outs = append(outs, b.N(dfg.Add(64), w.W(i), scaled))
	}
	b.Output("O", outs...)
	return b.Build()
}

// BuildBackprop builds one training step of an MLP hidden layer in
// fixed point: phase 1 back-propagates the output deltas through the
// second weight matrix to hidden deltas (dot products with a sigmoid-
// derivative scale); phase 2 applies the outer-product update to the
// first weight matrix. A barrier and a reconfiguration separate the
// phases — this is the multi-DFG workload of the set.
func BuildBackprop(cfg core.Config, scale int) (*workloads.Instance, error) {
	nh := 32 * scale // hidden neurons
	const nx, no = 32, 32
	g1, err := bpDeltaGraph()
	if err != nil {
		return nil, err
	}
	g2, err := bpUpdateGraph()
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(101))
	w2 := make([]int64, nh*no) // w2[i][j]: hidden i -> output j
	ed := make([]int64, no)    // output deltas
	act := make([]int64, nh)   // hidden activations, Q.8 in (0, 1)
	x := make([]int64, nx)     // inputs
	w1 := make([]int64, nx*nh) // w1[k][i]
	for i := range w2 {
		w2[i] = int64(rng.Intn(65) - 32)
	}
	for i := range ed {
		ed[i] = int64(rng.Intn(33) - 16)
	}
	for i := range act {
		act[i] = int64(rng.Intn(int(bpOne)-2) + 1)
	}
	for i := range x {
		x[i] = int64(rng.Intn(65) - 32)
	}
	for i := range w1 {
		w1[i] = int64(rng.Intn(513) - 256)
	}
	const lr = int64(16) // learning rate in Q.8

	lay := workloads.NewLayout()
	w2Addr := lay.Alloc(uint64(nh*no) * 8)
	edAddr := lay.Alloc(uint64(no) * 8)
	dhAddr := lay.Alloc(uint64(nh) * 8)
	w1Addr := lay.Alloc(uint64(nx*nh) * 8)
	if err := lay.Err(); err != nil {
		return nil, err
	}

	p := core.NewProgram("backprop")
	instPerRow := uint64(no / 4)

	// Phase 1: hidden deltas.
	p.CompileAndConfigure(cfg.Fabric, g1)
	for i := 0; i < nh; i++ {
		p.Emit(isa.MemPort{Src: isa.Linear(w2Addr+uint64(i*no)*8, uint64(no)*8), Dst: p.In("W")})
		p.Emit(isa.MemPort{Src: isa.Linear(edAddr, uint64(no)*8), Dst: p.In("E")})
		p.Emit(isa.ConstPort{Value: uint64(act[i]), Elem: isa.Elem64, Count: instPerRow, Dst: p.In("A")})
		p.Emit(isa.ConstPort{Value: 0, Elem: isa.Elem64, Count: instPerRow - 1, Dst: p.In("R")})
		p.Emit(isa.ConstPort{Value: 1, Elem: isa.Elem64, Count: 1, Dst: p.In("R")})
		p.Emit(isa.CleanPort{Src: p.Out("D"), Elem: isa.Elem64, Count: instPerRow - 1})
		p.Emit(isa.PortMem{Src: p.Out("D"), Dst: isa.Linear(dhAddr+uint64(i*8), 8)})
		p.Delay(2)
	}

	// Phase 2: reconfigure, then update W1 row by row using the deltas.
	// No barrier needed between the phases: SD_Config issues only on an
	// idle machine, so it already orders phase 2's delta reads after
	// phase 1's writes.
	p.CompileAndConfigure(cfg.Fabric, g2)
	for k := 0; k < nx; k++ {
		p.Emit(isa.MemPort{Src: isa.Linear(w1Addr+uint64(k*nh)*8, uint64(nh)*8), Dst: p.In("W")})
		p.Emit(isa.MemPort{Src: isa.Linear(dhAddr, uint64(nh)*8), Dst: p.In("D")})
		gain := (lr * x[k]) >> 0
		p.Emit(isa.ConstPort{Value: uint64(gain), Elem: isa.Elem64, Count: uint64(nh / 4), Dst: p.In("G")})
		p.Emit(isa.PortMem{Src: p.Out("O"), Dst: isa.Linear(w1Addr+uint64(k*nh)*8, uint64(nh)*8)})
		p.Delay(2)
	}
	p.Emit(isa.BarrierAll{})
	if err := p.Err(); err != nil {
		return nil, err
	}

	// Golden, mirroring the fixed-point ops exactly.
	dh := make([]int64, nh)
	for i := 0; i < nh; i++ {
		var dot int64
		for j := 0; j < no; j++ {
			dot += w2[i*no+j] * ed[j]
		}
		deriv := (act[i] * (bpOne - act[i])) >> bpFrac
		dh[i] = (deriv * dot) >> bpFrac
	}
	w1New := append([]int64(nil), w1...)
	for k := 0; k < nx; k++ {
		gain := lr * x[k]
		for i := 0; i < nh; i++ {
			w1New[k*nh+i] += (gain * dh[i]) >> bpFrac
		}
	}

	macs := uint64(nh*no + nx*nh)
	return &workloads.Instance{
		Name:  "backprop",
		Progs: []*core.Program{p},
		Init: func(m *mem.Memory) {
			for i, v := range w2 {
				m.WriteU64(w2Addr+uint64(8*i), uint64(v))
			}
			for i, v := range ed {
				m.WriteU64(edAddr+uint64(8*i), uint64(v))
			}
			for i, v := range w1 {
				m.WriteU64(w1Addr+uint64(8*i), uint64(v))
			}
		},
		Check: func(m *mem.Memory) error {
			for i, want := range dh {
				if got := int64(m.ReadU64(dhAddr + uint64(8*i))); got != want {
					return fmt.Errorf("backprop: dh[%d] = %d, want %d", i, got, want)
				}
			}
			for i, want := range w1New {
				if got := int64(m.ReadU64(w1Addr + uint64(8*i))); got != want {
					return fmt.Errorf("backprop: w1[%d] = %d, want %d", i, got, want)
				}
			}
			return nil
		},
		Profile: baseline.Profile{
			Name:      "backprop",
			KernelOps: 3 * macs,
			MACs:      macs,
			MemBytes:  uint64(nh*no+2*nx*nh+no+nh) * 8,
		},
		Kernel: &asic.Kernel{
			Name: "backprop", Graph: g1, Iters: macs / 4,
			BytesPerIter: 72, LocalSRAM: (no + nh) * 8,
			SerialFrac: 0.01,
		},
		Patterns: "Linear, Repeating, Two-Phase",
		Datapath: "4-Way MAC + Derivative Scale",
	}, nil
}
