// Package ext implements the workloads the paper identifies as fitting
// the stream-dataflow paradigm but left unimplemented (Section 7.2,
// footnote 3): fft, nw and backprop. They extend the Table 4 set and
// exercise pattern/datapath combinations the core eight do not —
// log-strided ping-pong passes (fft), wavefront dynamic programming
// (nw) and outer-product weight updates (backprop).
package ext

import (
	"fmt"
	"math"
	"math/rand"

	"softbrain/internal/baseline"
	"softbrain/internal/baseline/asic"
	"softbrain/internal/core"
	"softbrain/internal/dfg"
	"softbrain/internal/isa"
	"softbrain/internal/mem"
	"softbrain/internal/workloads"
)

// fftFrac is the fixed-point fraction bits of the FFT twiddle factors.
const fftFrac = 14

// fftGraph is the radix-2 decimation-in-frequency butterfly over
// interleaved complex values: port E carries (re, im) of the even
// element, O the odd, W the twiddle; S emits the sum, T the rotated
// difference.
func fftGraph() (*dfg.Graph, error) {
	b := dfg.NewBuilder("fft")
	e := b.Input("E", 2)
	o := b.Input("O", 2)
	w := b.Input("W", 2)

	sumR := b.N(dfg.Add(64), e.W(0), o.W(0))
	sumI := b.N(dfg.Add(64), e.W(1), o.W(1))
	difR := b.N(dfg.Sub(64), e.W(0), o.W(0))
	difI := b.N(dfg.Sub(64), e.W(1), o.W(1))
	// (difR + i difI) * (wr + i wi), rescaled by the twiddle fraction.
	tR := b.N(dfg.Ashr(64),
		b.N(dfg.Sub(64), b.N(dfg.Mul(64), difR, w.W(0)), b.N(dfg.Mul(64), difI, w.W(1))),
		dfg.ImmRef(fftFrac))
	tI := b.N(dfg.Ashr(64),
		b.N(dfg.Add(64), b.N(dfg.Mul(64), difR, w.W(1)), b.N(dfg.Mul(64), difI, w.W(0))),
		dfg.ImmRef(fftFrac))
	b.Output("S", sumR, sumI)
	b.Output("T", tR, tI)
	return b.Build()
}

// BuildFFT builds an N-point radix-2 decimation-in-frequency FFT over
// interleaved fixed-point complex data (N = 64*scale rounded up to a
// power of two). Each stage streams the even and odd halves of every
// group with strided patterns, rotates by a precomputed per-stage
// twiddle table, and ping-pongs between two buffers with a barrier per
// stage (producing the bit-reversed-order spectrum, as DIF does).
func BuildFFT(cfg core.Config, scale int) (*workloads.Instance, error) {
	n := 64
	for n < 64*scale {
		n *= 2
	}
	g, err := fftGraph()
	if err != nil {
		return nil, err
	}
	stages := 0
	for 1<<stages < n {
		stages++
	}

	rng := rand.New(rand.NewSource(97))
	re := make([]int64, n)
	im := make([]int64, n)
	for i := range re {
		re[i] = int64(rng.Intn(2001) - 1000)
		im[i] = int64(rng.Intn(2001) - 1000)
	}

	// Per-stage twiddle tables, interleaved (wr, wi), in butterfly
	// stream order (group-major, position-minor).
	tw := make([][]int64, stages)
	for s := 0; s < stages; s++ {
		span := n >> (s + 1)
		groups := n / (2 * span)
		for gi := 0; gi < groups; gi++ {
			for j := 0; j < span; j++ {
				ang := -2 * math.Pi * float64(j*groups) / float64(n)
				tw[s] = append(tw[s],
					int64(math.Round(math.Cos(ang)*(1<<fftFrac))),
					int64(math.Round(math.Sin(ang)*(1<<fftFrac))))
			}
		}
	}

	lay := workloads.NewLayout()
	nu := uint64(n)
	buf := [2]uint64{lay.Alloc(nu * 16), lay.Alloc(nu * 16)} // interleaved complex
	twAddr := make([]uint64, stages)
	for s := 0; s < stages; s++ {
		twAddr[s] = lay.Alloc(nu / 2 * 16)
	}
	if err := lay.Err(); err != nil {
		return nil, err
	}

	p := core.NewProgram("fft")
	p.CompileAndConfigure(cfg.Fabric, g)
	for s := 0; s < stages; s++ {
		src, dst := buf[s%2], buf[1-s%2]
		span := uint64(n >> (s + 1))
		groups := nu / (2 * span)
		half := func(base, off uint64) isa.Affine {
			return isa.Strided2D(base+off, span*16, 2*span*16, groups)
		}
		p.Emit(isa.MemPort{Src: half(src, 0), Dst: p.In("E")})
		p.Emit(isa.MemPort{Src: half(src, span*16), Dst: p.In("O")})
		p.Emit(isa.MemPort{Src: isa.Linear(twAddr[s], nu/2*16), Dst: p.In("W")})
		p.Emit(isa.PortMem{Src: p.Out("S"), Dst: half(dst, 0)})
		p.Emit(isa.PortMem{Src: p.Out("T"), Dst: half(dst, span*16)})
		p.Emit(isa.BarrierAll{})
		p.Delay(4)
	}
	if err := p.Err(); err != nil {
		return nil, err
	}

	// Golden: identical fixed-point arithmetic.
	gr := append([]int64(nil), re...)
	gi := append([]int64(nil), im...)
	for s := 0; s < stages; s++ {
		span := n >> (s + 1)
		nr := make([]int64, n)
		ni := make([]int64, n)
		t := 0
		for base := 0; base < n; base += 2 * span {
			for j := 0; j < span; j++ {
				e, o := base+j, base+span+j
				nr[e] = gr[e] + gr[o]
				ni[e] = gi[e] + gi[o]
				dr, di := gr[e]-gr[o], gi[e]-gi[o]
				nr[o] = (dr*tw[s][2*t] - di*tw[s][2*t+1]) >> fftFrac
				ni[o] = (dr*tw[s][2*t+1] + di*tw[s][2*t]) >> fftFrac
				t++
			}
		}
		gr, gi = nr, ni
	}
	final := buf[stages%2]

	butterflies := uint64(stages) * nu / 2
	return &workloads.Instance{
		Name:  "fft",
		Progs: []*core.Program{p},
		Init: func(m *mem.Memory) {
			for i := 0; i < n; i++ {
				m.WriteU64(buf[0]+uint64(16*i), uint64(re[i]))
				m.WriteU64(buf[0]+uint64(16*i+8), uint64(im[i]))
			}
			for s := 0; s < stages; s++ {
				for i, v := range tw[s] {
					m.WriteU64(twAddr[s]+uint64(8*i), uint64(v))
				}
			}
		},
		Check: func(m *mem.Memory) error {
			for i := 0; i < n; i++ {
				gotR := int64(m.ReadU64(final + uint64(16*i)))
				gotI := int64(m.ReadU64(final + uint64(16*i+8)))
				if gotR != gr[i] || gotI != gi[i] {
					return fmt.Errorf("fft: out[%d] = (%d,%d), want (%d,%d)", i, gotR, gotI, gr[i], gi[i])
				}
			}
			return nil
		},
		Profile: baseline.Profile{
			Name:      "fft",
			KernelOps: butterflies * 12,
			MACs:      butterflies * 4,
			MemBytes:  uint64(stages) * nu * 40, // data in+out plus twiddles
		},
		Kernel: &asic.Kernel{
			Name: "fft", Graph: g, Iters: butterflies,
			BytesPerIter: 80, LocalSRAM: n * 16,
			SerialFrac: 0.02, // stage barriers
		},
		Patterns: "Log-Strided, Ping-Pong",
		Datapath: "Complex Butterfly (4-mul rotate)",
	}, nil
}
