package ext

import (
	"fmt"
	"math/rand"

	"softbrain/internal/baseline"
	"softbrain/internal/baseline/asic"
	"softbrain/internal/core"
	"softbrain/internal/dfg"
	"softbrain/internal/isa"
	"softbrain/internal/mem"
	"softbrain/internal/workloads"
)

// Needleman-Wunsch scoring constants (plain integers).
const (
	nwMatch    = 2
	nwMismatch = -1
	nwGap      = -1
)

// nwGraph scores one alignment cell: the classic three-way maximum of
// the diagonal move (plus match/mismatch, decided by a compare-select)
// and the two gap moves.
func nwGraph() (*dfg.Graph, error) {
	b := dfg.NewBuilder("nw")
	nwv := b.Input("NW", 1) // M[i-1][j-1]
	nv := b.Input("N", 1)   // M[i-1][j]
	wv := b.Input("W", 1)   // M[i][j-1]
	a := b.Input("A", 1)    // sequence characters
	bb := b.Input("B", 1)
	mismatch := int64(nwMismatch)
	gap := int64(nwGap)
	score := b.N(dfg.Sel(64),
		b.N(dfg.Eq(64), a.W(0), bb.W(0)),
		dfg.ImmRef(uint64(int64(nwMatch))),
		dfg.ImmRef(uint64(mismatch)))
	c1 := b.N(dfg.Add(64), nwv.W(0), score)
	c2 := b.N(dfg.Add(64), nv.W(0), dfg.ImmRef(uint64(gap)))
	c3 := b.N(dfg.Add(64), wv.W(0), dfg.ImmRef(uint64(gap)))
	b.Output("M", b.N(dfg.Max(64), c1, b.N(dfg.Max(64), c2, c3)))
	return b.Build()
}

// BuildNW aligns two length-n sequences with Needleman-Wunsch dynamic
// programming in wavefront order: the DP matrix is stored diagonal-major
// (the host's layout job), boundary cells are host-initialized, and each
// anti-diagonal is one phase — three shifted reads of the two previous
// diagonals, two character streams (one over the reversed second
// sequence), and a barrier carrying the wavefront dependence.
func BuildNW(cfg core.Config, scale int) (*workloads.Instance, error) {
	n := 24 * scale
	g, err := nwGraph()
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(103))
	seqA := make([]int64, n+1) // 1-indexed
	seqB := make([]int64, n+1)
	for i := 1; i <= n; i++ {
		seqA[i] = int64(rng.Intn(4)) // ACGT
		seqB[i] = int64(rng.Intn(4))
	}

	// Golden DP matrix.
	m := make([][]int64, n+1)
	for i := range m {
		m[i] = make([]int64, n+1)
		m[i][0] = int64(i) * nwGap
	}
	for j := 0; j <= n; j++ {
		m[0][j] = int64(j) * nwGap
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			s := int64(nwMismatch)
			if seqA[i] == seqB[j] {
				s = nwMatch
			}
			best := m[i-1][j-1] + s
			if c := m[i-1][j] + nwGap; c > best {
				best = c
			}
			if c := m[i][j-1] + nwGap; c > best {
				best = c
			}
			m[i][j] = best
		}
	}

	// Diagonal-major layout: diag d holds cells (i, d-i) for
	// i in [lo(d), hi(d)], stored ascending by i.
	lo := func(d int) int { return max(0, d-n) }
	hi := func(d int) int { return min(d, n) }
	lay := workloads.NewLayout()
	diagAddr := make([]uint64, 2*n+1)
	for d := 0; d <= 2*n; d++ {
		diagAddr[d] = lay.Alloc(uint64(hi(d)-lo(d)+1) * 8)
	}
	cellAddr := func(d, i int) uint64 { return diagAddr[d] + uint64(i-lo(d))*8 }
	aAddr := lay.Alloc(uint64(n+1) * 8)
	bRevAddr := lay.Alloc(uint64(n+1) * 8) // bRev[x] = seqB[n-x]
	if err := lay.Err(); err != nil {
		return nil, err
	}

	p := core.NewProgram("nw")
	p.CompileAndConfigure(cfg.Fabric, g)
	for d := 2; d <= 2*n; d++ {
		// Interior cells of this diagonal: i in [i0, i1], j = d-i >= 1.
		i0 := max(1, d-n)
		i1 := min(d-1, n)
		if i0 > i1 {
			continue
		}
		cnt := uint64(i1 - i0 + 1)
		p.Emit(isa.MemPort{Src: isa.Linear(cellAddr(d-2, i0-1), cnt*8), Dst: p.In("NW")})
		p.Emit(isa.MemPort{Src: isa.Linear(cellAddr(d-1, i0-1), cnt*8), Dst: p.In("N")})
		p.Emit(isa.MemPort{Src: isa.Linear(cellAddr(d-1, i0), cnt*8), Dst: p.In("W")})
		p.Emit(isa.MemPort{Src: isa.Linear(aAddr+uint64(i0)*8, cnt*8), Dst: p.In("A")})
		// j = d-i descends as i ascends; bRev[x] with x = n-j ascends.
		p.Emit(isa.MemPort{Src: isa.Linear(bRevAddr+uint64(n-(d-i0))*8, cnt*8), Dst: p.In("B")})
		p.Emit(isa.PortMem{Src: p.Out("M"), Dst: isa.Linear(cellAddr(d, i0), cnt*8)})
		p.Emit(isa.BarrierAll{}) // wavefront dependence
		p.Delay(3)
	}
	if err := p.Err(); err != nil {
		return nil, err
	}

	cells := uint64(n) * uint64(n)
	return &workloads.Instance{
		Name:  "nw",
		Progs: []*core.Program{p},
		Init: func(mm *mem.Memory) {
			for i := 0; i <= n; i++ {
				mm.WriteU64(aAddr+uint64(8*i), uint64(seqA[i]))
				mm.WriteU64(bRevAddr+uint64(8*i), uint64(seqB[n-i]))
			}
			// Boundary cells of every diagonal (i == 0 or j == 0).
			for d := 0; d <= 2*n; d++ {
				if d <= n {
					mm.WriteU64(cellAddr(d, 0), uint64(m[0][d]))
				}
				if d <= n {
					mm.WriteU64(cellAddr(d, d), uint64(m[d][0]))
				}
			}
		},
		Check: func(mm *mem.Memory) error {
			for d := 2; d <= 2*n; d++ {
				for i := max(1, d-n); i <= min(d-1, n); i++ {
					got := int64(mm.ReadU64(cellAddr(d, i)))
					if got != m[i][d-i] {
						return fmt.Errorf("nw: M[%d][%d] = %d, want %d", i, d-i, got, m[i][d-i])
					}
				}
			}
			return nil
		},
		Profile: baseline.Profile{
			Name:      "nw",
			KernelOps: 6 * cells,
			MemBytes:  cells * 16,
			BranchOps: cells / 2, // the data-dependent select
		},
		Kernel: &asic.Kernel{
			Name: "nw", Graph: g, Iters: cells,
			BytesPerIter: 48, LocalSRAM: 3 * (n + 1) * 8,
			SerialFrac: 0.05, // wavefront barriers
		},
		Patterns: "Wavefront Linear, Shifted Reads",
		Datapath: "Compare-Select + 3-Way Max",
	}, nil
}
