package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-exposition export over the typed registry, plus an
// in-process promtool-style lint of the format. The exporter is shared:
// sdserve renders its service counters and per-run aggregates with
// PromWriter, and sdobs -prom converts any saved metrics dump offline
// with WritePrometheus. CheckExposition gates both in CI, so a
// malformed metric name or an ungrouped family fails before any real
// scraper ever sees it.

// PromName sanitizes s into a legal Prometheus metric-name fragment:
// every character outside [a-zA-Z0-9_:] becomes '_', and a leading
// digit is prefixed with '_'.
func PromName(s string) string {
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscape escapes a label value per the exposition format: backslash,
// double quote, and newline.
func promEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// Label is one label pair on a sample.
type Label struct{ Name, Value string }

// PromWriter renders the Prometheus text exposition format. Families
// must be written contiguously (all samples of one metric before the
// next); Type records the family header once per family.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Type emits the # TYPE header for a family ("counter", "gauge",
// "histogram"), with an optional # HELP line when help is non-empty.
func (p *PromWriter) Type(name, typ, help string) {
	if p.err != nil {
		return
	}
	if help != "" {
		_, p.err = fmt.Fprintf(p.w, "# HELP %s %s\n", name, help)
		if p.err != nil {
			return
		}
	}
	_, p.err = fmt.Fprintf(p.w, "# TYPE %s %s\n", name, typ)
}

// Sample emits one sample line. Labels render in the given order.
func (p *PromWriter) Sample(name string, labels []Label, value float64) {
	if p.err != nil {
		return
	}
	var b strings.Builder
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, `%s="%s"`, l.Name, promEscape(l.Value))
		}
		b.WriteByte('}')
	}
	_, p.err = fmt.Fprintf(p.w, "%s %s\n", b.String(), formatPromValue(value))
}

// Histo emits a full cumulative histogram family (name_bucket with le
// labels ending at +Inf, name_sum, name_count) from per-bucket counts
// where bucket i covers values [i*width, (i+1)*width) and the last
// bucket catches overflow.
func (p *PromWriter) Histo(name string, labels []Label, width uint64, buckets []uint64, sum, count uint64) {
	var cum uint64
	for i, n := range buckets {
		cum += n
		le := "+Inf"
		if i < len(buckets)-1 {
			le = strconv.FormatUint(uint64(i+1)*width, 10)
		}
		p.Sample(name+"_bucket", append(append([]Label(nil), labels...), Label{"le", le}), float64(cum))
	}
	p.Sample(name+"_sum", labels, float64(sum))
	p.Sample(name+"_count", labels, float64(count))
}

// Err reports the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func formatPromValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders a metrics dump in the Prometheus text
// exposition format: per-unit cycles, stall-cause attribution,
// registered counters and gauges, cycle-bucketed histograms, and
// per-kind stream bytes. Metric names carry the sd_ prefix; the unit
// index is a label, so cluster dumps stay one family per metric.
func WritePrometheus(w io.Writer, d Dump) error {
	p := NewPromWriter(w)

	unitLabel := func(u UnitDump) Label { return Label{"unit", strconv.Itoa(u.Unit)} }

	p.Type("sd_unit_cycles", "gauge", "simulated cycles per unit")
	for _, u := range d.Units {
		p.Sample("sd_unit_cycles", []Label{unitLabel(u)}, float64(u.Cycles))
	}

	p.Type("sd_stall_cycles_total", "counter", "per-component stall-cause attribution (sums to elapsed cycles)")
	for _, u := range d.Units {
		for _, c := range u.Components {
			names := make([]string, 0, len(c.Causes))
			for k := range c.Causes {
				names = append(names, k)
			}
			sort.Strings(names)
			for _, cause := range names {
				p.Sample("sd_stall_cycles_total",
					[]Label{unitLabel(u), {"component", c.Name}, {"cause", cause}},
					float64(c.Causes[cause]))
			}
		}
	}

	// Registered scalar metrics, one family per name across units.
	counterNames := collectNames(d, func(u UnitDump) map[string]uint64 { return u.Counters })
	for _, name := range counterNames {
		fam := "sd_" + PromName(name) + "_total"
		p.Type(fam, "counter", "")
		for _, u := range d.Units {
			if v, ok := u.Counters[name]; ok {
				p.Sample(fam, []Label{unitLabel(u)}, float64(v))
			}
		}
	}
	gaugeNames := collectNames(d, func(u UnitDump) map[string]uint64 { return u.Gauges })
	for _, name := range gaugeNames {
		fam := "sd_" + PromName(name)
		p.Type(fam, "gauge", "")
		for _, u := range d.Units {
			if v, ok := u.Gauges[name]; ok {
				p.Sample(fam, []Label{unitLabel(u)}, float64(v))
			}
		}
	}

	histNames := map[string]bool{}
	var histOrder []string
	for _, u := range d.Units {
		for _, h := range u.Histograms {
			if !histNames[h.Name] {
				histNames[h.Name] = true
				histOrder = append(histOrder, h.Name)
			}
		}
	}
	for _, name := range histOrder {
		fam := "sd_" + PromName(name) + "_cycles"
		p.Type(fam, "histogram", "cycle-bucketed histogram")
		for _, u := range d.Units {
			for _, h := range u.Histograms {
				if h.Name == name {
					p.Histo(fam, []Label{unitLabel(u)}, h.Width, h.Buckets, h.Sum, h.Count)
				}
			}
		}
	}

	p.Type("sd_stream_bytes_total", "counter", "bytes moved per stream kind")
	for _, u := range d.Units {
		agg := map[string]uint64{}
		var kinds []string
		for _, s := range u.Streams {
			if _, ok := agg[s.Kind]; !ok {
				kinds = append(kinds, s.Kind)
			}
			agg[s.Kind] += s.Bytes
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			p.Sample("sd_stream_bytes_total", []Label{unitLabel(u), {"kind", k}}, float64(agg[k]))
		}
	}
	return p.Err()
}

// collectNames gathers the union of map keys across units, sorted.
func collectNames(d Dump, pick func(UnitDump) map[string]uint64) []string {
	seen := map[string]bool{}
	var names []string
	for _, u := range d.Units {
		for k := range pick(u) {
			if !seen[k] {
				seen[k] = true
				names = append(names, k)
			}
		}
	}
	sort.Strings(names)
	return names
}

var (
	promMetricRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// CheckExposition is the in-process promtool-style lint: it parses a
// text-exposition payload and rejects malformed metric or label names,
// unparseable values, unknown TYPE declarations, families whose samples
// are not contiguous, re-declared families, histograms without a +Inf
// bucket, and non-monotone cumulative bucket counts. A nil return means
// a real Prometheus scraper would ingest the payload.
func CheckExposition(data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("exposition: empty payload")
	}
	if data[len(data)-1] != '\n' {
		return fmt.Errorf("exposition: payload does not end with a newline")
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	closedFamilies := map[string]bool{} // families whose sample block ended
	declared := map[string]string{}     // family -> declared type
	current := ""                       // family currently emitting samples
	type histState struct {
		sawInf    bool // family saw at least one +Inf bucket
		seriesInf bool // current label series saw its +Inf bucket
		lastCum   float64
		lastKey   string // label fingerprint sans le, to reset monotonicity per series
	}
	hists := map[string]*histState{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "TYPE" && fields[1] != "HELP") {
				return fmt.Errorf("exposition line %d: malformed comment %q", lineNo, line)
			}
			name := fields[2]
			if !promMetricRe.MatchString(name) {
				return fmt.Errorf("exposition line %d: invalid metric name %q", lineNo, name)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("exposition line %d: TYPE without a type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("exposition line %d: unknown type %q", lineNo, fields[3])
				}
				if _, dup := declared[name]; dup {
					return fmt.Errorf("exposition line %d: family %s declared twice", lineNo, name)
				}
				declared[name] = fields[3]
			}
			continue
		}

		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return fmt.Errorf("exposition line %d: %w", lineNo, err)
		}
		family := promFamily(name, declared)
		if family != current {
			if current != "" {
				closedFamilies[current] = true
			}
			if closedFamilies[family] {
				return fmt.Errorf("exposition line %d: family %s samples are not contiguous", lineNo, family)
			}
			current = family
		}
		if declared[family] == "histogram" {
			h := hists[family]
			if h == nil {
				h = &histState{}
				hists[family] = h
			}
			if strings.HasSuffix(name, "_bucket") {
				le, series := "", make([]string, 0, len(labels))
				for _, l := range labels {
					if l.Name == "le" {
						le = l.Value
					} else {
						series = append(series, l.Name+"="+l.Value)
					}
				}
				if le == "" {
					return fmt.Errorf("exposition line %d: %s_bucket without le label", lineNo, family)
				}
				key := strings.Join(series, ",")
				if key != h.lastKey {
					if h.lastKey != "" && !h.seriesInf {
						return fmt.Errorf("exposition line %d: %s bucket series {%s} ended without a +Inf bucket",
							lineNo, family, h.lastKey)
					}
					h.lastKey, h.lastCum, h.seriesInf = key, 0, false
				}
				if value < h.lastCum {
					return fmt.Errorf("exposition line %d: %s cumulative bucket counts decrease", lineNo, family)
				}
				h.lastCum = value
				if le == "+Inf" {
					h.sawInf, h.seriesInf = true, true
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("exposition: %w", err)
	}
	for fam, typ := range declared {
		if typ == "histogram" {
			h := hists[fam]
			if h == nil || !h.sawInf {
				return fmt.Errorf("exposition: histogram %s has no +Inf bucket", fam)
			}
			if !h.seriesInf {
				return fmt.Errorf("exposition: histogram %s bucket series {%s} ended without a +Inf bucket",
					fam, h.lastKey)
			}
		}
	}
	return nil
}

// promFamily maps a sample name to its family: histogram component
// suffixes collapse onto the declared histogram family.
func promFamily(name string, declared map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && declared[base] == "histogram" {
			return base
		}
	}
	return name
}

// parsePromSample parses `name{l1="v1",...} value` (labels optional).
func parsePromSample(line string) (string, []Label, float64, error) {
	rest := line
	nameEnd := strings.IndexAny(rest, "{ ")
	if nameEnd <= 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name := rest[:nameEnd]
	if !promMetricRe.MatchString(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[nameEnd:]
	var labels []Label
	if rest[0] == '{' {
		close := -1
		inQuote := false
		for i := 1; i < len(rest); i++ {
			switch {
			case inQuote && rest[i] == '\\':
				i++
			case rest[i] == '"':
				inQuote = !inQuote
			case !inQuote && rest[i] == '}':
				close = i
			}
			if close >= 0 {
				break
			}
		}
		if close < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		var err error
		labels, err = parsePromLabels(rest[1:close])
		if err != nil {
			return "", nil, 0, err
		}
		rest = rest[close+1:]
	}
	rest = strings.TrimLeft(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("malformed value in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		switch fields[0] {
		case "+Inf", "-Inf", "NaN":
			v = 0
		default:
			return "", nil, 0, fmt.Errorf("unparseable value %q", fields[0])
		}
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			return "", nil, 0, fmt.Errorf("unparseable timestamp %q", fields[1])
		}
	}
	return name, labels, v, nil
}

func parsePromLabels(s string) ([]Label, error) {
	var labels []Label
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("malformed label in %q", s)
		}
		name := s[:eq]
		if !promLabelRe.MatchString(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %s value is not quoted", name)
		}
		var val strings.Builder
		i := 1
		for ; i < len(s); i++ {
			if s[i] == '\\' {
				if i+1 >= len(s) {
					return nil, fmt.Errorf("dangling escape in label %s", name)
				}
				switch s[i+1] {
				case '\\', '"':
					val.WriteByte(s[i+1])
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("invalid escape \\%c in label %s", s[i+1], name)
				}
				i++
				continue
			}
			if s[i] == '"' {
				break
			}
			val.WriteByte(s[i])
		}
		if i >= len(s) {
			return nil, fmt.Errorf("unterminated value for label %s", name)
		}
		labels = append(labels, Label{name, val.String()})
		s = s[i+1:]
		if len(s) > 0 {
			if s[0] != ',' {
				return nil, fmt.Errorf("expected ',' between labels, got %q", s)
			}
			s = s[1:]
		}
	}
	return labels, nil
}
