// Package obs is the unified observability layer: a typed metrics
// registry (counters, gauges, cycle-bucketed histograms) every machine
// component can register into, plus per-cycle stall-cause attribution
// with a hard conservation invariant — each component's cause counts
// sum exactly to its elapsed cycles. The registry is attached per unit
// and merged deterministically across a cluster, exported as a JSON
// dump, a Figure-14-style bandwidth table, and a Chrome/Perfetto
// trace-event file (docs/OBSERVABILITY.md).
//
// The layer is strictly observational: enabling it never changes a
// single simulated cycle, and a machine with no registry attached pays
// one nil check per cycle and allocates nothing.
package obs

import "fmt"

// Cause classifies where one component's cycle went. Every component
// reports exactly one cause per elapsed cycle, so per-component cause
// counts sum to elapsed cycles — the conservation invariant
// CheckConservation enforces.
type Cause uint8

const (
	// Busy: the component did observable work this cycle (moved bytes,
	// issued a request, fired an instance, retired a command), or holds
	// work in a fixed-latency pipeline that needs no external input.
	Busy Cause = iota
	// BarrierDrain: blocked behind an explicit barrier (or the
	// barrier-like SD_Config quiesce) draining older streams.
	BarrierDrain
	// MSHRFull: a memory request is staged and its destination has
	// credit, but every MSHR is occupied by an outstanding miss.
	MSHRFull
	// PortFull: blocked on a full downstream buffer — a vector port
	// without credit, a full command queue, or a full write buffer.
	PortFull
	// PortEmpty: starved by an empty upstream buffer — a vector port
	// with no data, or an indirect stream with no staged indices.
	PortEmpty
	// DRAMBW: waiting on the memory system — a response in flight or a
	// write completion not yet durable (includes cache-hit latency).
	DRAMBW
	// CauseIdle: no work queued anywhere in the component.
	CauseIdle

	// NumCauses is the size of the taxonomy.
	NumCauses
)

var causeNames = [NumCauses]string{
	"busy", "barrier-drain", "mshr-full", "port-full", "port-empty", "dram-bw", "idle",
}

func (c Cause) String() string {
	if c < NumCauses {
		return causeNames[c]
	}
	return fmt.Sprintf("Cause(%d)", uint8(c))
}

// CauseNames lists the taxonomy in declaration order.
func CauseNames() []string { return causeNames[:] }

// stallPriority ranks causes for components that aggregate several
// streams: a workless cycle is attributed to the most actionable
// blocker across the streams (an MSHR-full stall outranks a starved
// port, which outranks plain idleness).
var stallPriority = [NumCauses]uint8{
	Busy:         7,
	MSHRFull:     6,
	PortFull:     5,
	DRAMBW:       4,
	PortEmpty:    3,
	BarrierDrain: 2,
	CauseIdle:    0,
}

// Worse returns whichever of the two causes ranks higher in the
// stall-priority order.
func Worse(a, b Cause) Cause {
	if stallPriority[a] >= stallPriority[b] {
		return a
	}
	return b
}

// CauseFromName maps a taxonomy name back to its Cause.
func CauseFromName(name string) (Cause, bool) {
	for i, n := range causeNames {
		if n == name {
			return Cause(i), true
		}
	}
	return 0, false
}
