package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Event is one Chrome trace-event (the JSON format Perfetto and
// chrome://tracing both load). Timestamps are in microseconds; we map
// one simulated cycle to one microsecond.
type Event struct {
	Name string         `json:"name,omitempty"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  *uint64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the object form of the trace-event format.
type traceFile struct {
	TraceEvents []Event `json:"traceEvents"`
	DisplayUnit string  `json:"displayTimeUnit,omitempty"`
}

// SpanEvent is one stream command's lifetime for the trace export
// (mirrors trace.Span; obs stays import-free of internal/trace).
type SpanEvent struct {
	ID        int
	Label     string
	Enqueued  uint64
	Issued    uint64
	Completed uint64
	Done      bool
}

// TraceInput is one unit's contribution to the trace: its stream
// lifetimes, its per-component stall slices, and the cycle the unit
// retired at (used to close still-open spans).
type TraceInput struct {
	Unit     int
	Spans    []SpanEvent
	Attrs    []*Attribution
	EndCycle uint64
}

// Thread-ID layout within a unit's process: components occupy low
// tids in registration order; each stream lifetime gets its own tid so
// B/E pairs trivially nest.
const streamTidBase = 1000

// WriteTrace renders the inputs as a Chrome trace-event JSON file:
// one process per unit, one thread per component carrying its stall
// slices as complete (X) events, and one thread per stream carrying
// its enqueue→issue→complete lifetime as nested B/E pairs. Idle runs
// are omitted — gaps on a component track are idle by conservation.
func WriteTrace(w io.Writer, inputs []TraceInput) error {
	f := traceFile{TraceEvents: []Event{}, DisplayUnit: "ms"}
	for _, in := range inputs {
		pid := in.Unit
		f.TraceEvents = append(f.TraceEvents, Event{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": fmt.Sprintf("unit %d", in.Unit)},
		})
		for tid, a := range in.Attrs {
			f.TraceEvents = append(f.TraceEvents, Event{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": a.Name()},
			})
			slices, truncated := a.Slices()
			for _, s := range slices {
				if s.Cause == CauseIdle {
					continue
				}
				dur := s.End - s.Start
				f.TraceEvents = append(f.TraceEvents, Event{
					Name: s.Cause.String(), Ph: "X", Ts: s.Start, Dur: &dur,
					Pid: pid, Tid: tid, Cat: "stall",
				})
			}
			if truncated {
				f.TraceEvents = append(f.TraceEvents, Event{
					Name: "slice-cap-reached", Ph: "M", Pid: pid, Tid: tid,
					Args: map[string]any{"component": a.Name()},
				})
			}
		}
		for i, s := range in.Spans {
			tid := streamTidBase + i
			f.TraceEvents = append(f.TraceEvents, Event{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": fmt.Sprintf("stream #%d", s.ID)},
			})
			end := in.EndCycle
			if s.Done {
				end = s.Completed
			}
			// Outer span: whole lifetime from enqueue. Inner span:
			// issued→completed (the cycles the stream held an engine).
			f.TraceEvents = append(f.TraceEvents,
				Event{Name: s.Label, Ph: "B", Ts: s.Enqueued, Pid: pid, Tid: tid, Cat: "stream"},
				Event{Name: "active", Ph: "B", Ts: s.Issued, Pid: pid, Tid: tid, Cat: "stream"},
				Event{Ph: "E", Ts: end, Pid: pid, Tid: tid},
				Event{Ph: "E", Ts: end, Pid: pid, Tid: tid},
			)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// ValidateTrace checks data against the trace-event contract the
// export promises: well-formed JSON in object form, a known phase on
// every event, names on B/X/M events, durations on X events,
// non-decreasing timestamps per (pid, tid) track, and B/E pairs that
// match up (every E closes a B, every B is closed).
func ValidateTrace(data []byte) error {
	var f traceFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("trace JSON: %w", err)
	}
	if len(f.TraceEvents) == 0 {
		return fmt.Errorf("trace has no events")
	}
	type track struct{ pid, tid int }
	lastTs := map[track]uint64{}
	open := map[track]int{}
	for i, e := range f.TraceEvents {
		tr := track{e.Pid, e.Tid}
		switch e.Ph {
		case "M":
			if e.Name == "" {
				return fmt.Errorf("event %d: metadata without name", i)
			}
			continue
		case "B":
			if e.Name == "" {
				return fmt.Errorf("event %d: B without name", i)
			}
			open[tr]++
		case "E":
			if open[tr] == 0 {
				return fmt.Errorf("event %d: E with no open B on pid %d tid %d", i, e.Pid, e.Tid)
			}
			open[tr]--
		case "X":
			if e.Name == "" {
				return fmt.Errorf("event %d: X without name", i)
			}
			if e.Dur == nil {
				return fmt.Errorf("event %d: X without dur", i)
			}
		default:
			return fmt.Errorf("event %d: unknown phase %q", i, e.Ph)
		}
		if prev, ok := lastTs[tr]; ok && e.Ts < prev {
			return fmt.Errorf("event %d: ts %d < %d on pid %d tid %d", i, e.Ts, prev, e.Pid, e.Tid)
		}
		lastTs[tr] = e.Ts
	}
	for tr, n := range open {
		if n != 0 {
			return fmt.Errorf("pid %d tid %d: %d unclosed B events", tr.pid, tr.tid, n)
		}
	}
	return nil
}
