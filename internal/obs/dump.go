package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// ComponentDump is one component's stall-cause account in a dump.
// Causes is keyed by taxonomy name so JSON marshaling (sorted map
// keys) is deterministic.
type ComponentDump struct {
	Name    string            `json:"name"`
	Elapsed uint64            `json:"elapsed"`
	Causes  map[string]uint64 `json:"causes"`
}

// HistogramDump is one histogram's state in a dump.
type HistogramDump struct {
	Name    string   `json:"name"`
	Width   uint64   `json:"width"`
	Buckets []uint64 `json:"buckets"`
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Max     uint64   `json:"max"`
}

// BarrierDrainDump is one barrier's drain cost in a dump: the cycles
// the barrier at trace position Pos held the dispatch queue head
// waiting for in-flight streams. This is the per-barrier refinement of
// the dispatcher's barrier-drain attribution (which additionally
// counts SD_Config quiesce cycles), and the profile format consumed by
// the fix pass's cost-aware placement (internal/fix.Profile).
type BarrierDrainDump struct {
	Pos    int    `json:"pos"`
	Kind   string `json:"kind"`
	Cycles uint64 `json:"cycles"`
}

// UnitDump is one unit's full metrics: the simulated cycle count, each
// component's attribution, registered scalar metrics, per-stream data
// movement, and per-barrier drain costs.
type UnitDump struct {
	Unit          int                `json:"unit"`
	Cycles        uint64             `json:"cycles"`
	Components    []ComponentDump    `json:"components"`
	Counters      map[string]uint64  `json:"counters,omitempty"`
	Gauges        map[string]uint64  `json:"gauges,omitempty"`
	Histograms    []HistogramDump    `json:"histograms,omitempty"`
	Streams       []StreamBW         `json:"streams,omitempty"`
	BarrierDrains []BarrierDrainDump `json:"barrier_drains,omitempty"`
}

// Dump is the machine-level metrics dump: per-unit sections plus a
// cross-unit total (components summed by name, streams concatenated).
type Dump struct {
	Units []UnitDump `json:"units"`
	Total UnitDump   `json:"total"`
}

// SetCycles records the unit's total simulated cycle count, the
// denominator of the conservation invariant.
func (r *Registry) SetCycles(c uint64) {
	if r != nil {
		r.cycles = c
	}
}

// Dump snapshots the registry. Component order is registration order;
// map-backed sections are deterministic via sorted JSON keys.
func (r *Registry) Dump() UnitDump {
	d := UnitDump{Unit: r.Unit()}
	if r == nil {
		return d
	}
	d.Cycles = r.cycles
	for _, a := range r.attrs {
		cd := ComponentDump{Name: a.name, Elapsed: a.Elapsed(), Causes: map[string]uint64{}}
		for c, n := range a.causes {
			if n != 0 {
				cd.Causes[Cause(c).String()] = n
			}
		}
		d.Components = append(d.Components, cd)
	}
	if len(r.counters) > 0 {
		d.Counters = map[string]uint64{}
		for _, c := range r.counters {
			d.Counters[c.name] = c.v
		}
	}
	if len(r.gauges) > 0 {
		d.Gauges = map[string]uint64{}
		for _, g := range r.gauges {
			d.Gauges[g.name] = g.v
		}
	}
	for _, h := range r.hists {
		d.Histograms = append(d.Histograms, HistogramDump{
			Name: h.name, Width: h.width,
			Buckets: append([]uint64(nil), h.buckets...),
			Count:   h.count, Sum: h.sum, Max: h.max,
		})
	}
	d.Streams = r.Streams()
	d.BarrierDrains = append([]BarrierDrainDump(nil), r.barriers...)
	return d
}

// Merge combines per-unit dumps (in the given order — callers pass
// unit order, keeping cluster dumps deterministic) into one Dump with
// a cross-unit total section.
func Merge(units []UnitDump) Dump {
	d := Dump{Units: units, Total: UnitDump{Unit: -1}}
	comp := map[string]*ComponentDump{}
	var order []string
	for _, u := range units {
		if u.Cycles > d.Total.Cycles {
			d.Total.Cycles = u.Cycles
		}
		for _, c := range u.Components {
			t, ok := comp[c.Name]
			if !ok {
				t = &ComponentDump{Name: c.Name, Causes: map[string]uint64{}}
				comp[c.Name] = t
				order = append(order, c.Name)
			}
			t.Elapsed += c.Elapsed
			for k, v := range c.Causes {
				t.Causes[k] += v
			}
		}
		for k, v := range u.Counters {
			if d.Total.Counters == nil {
				d.Total.Counters = map[string]uint64{}
			}
			d.Total.Counters[k] += v
		}
		d.Total.Streams = append(d.Total.Streams, u.Streams...)
		// BarrierDrains stay per-unit: positions index each unit's own
		// trace, so a cross-unit total would conflate programs.
	}
	for _, name := range order {
		d.Total.Components = append(d.Total.Components, *comp[name])
	}
	return d
}

// MarshalIndent renders the dump as deterministic, human-diffable
// JSON (map keys sort; slice order is registration/unit order).
func (d Dump) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// CheckConservation enforces the hard invariant: every component's
// cause counts sum exactly to its unit's elapsed cycles. A violation
// means a classification path dropped or double-counted a cycle.
func CheckConservation(d Dump) error {
	for _, u := range d.Units {
		for _, c := range u.Components {
			var sum uint64
			for _, v := range c.Causes {
				sum += v
			}
			if sum != c.Elapsed {
				return fmt.Errorf("unit %d %s: causes sum to %d, elapsed %d", u.Unit, c.Name, sum, c.Elapsed)
			}
			if c.Elapsed != u.Cycles {
				return fmt.Errorf("unit %d %s: elapsed %d != unit cycles %d", u.Unit, c.Name, c.Elapsed, u.Cycles)
			}
		}
	}
	return nil
}

// BandwidthTable renders the Figure-14-style utilization report: data
// moved per stream kind, bytes per cycle, and percent of the memory
// system's peak bandwidth (pass mem.SysConfig line bytes / miss
// interval). Memory-facing kinds count toward DRAM utilization.
func BandwidthTable(d Dump, peakBytesPerCycle float64) string {
	type row struct {
		kind    string
		streams int
		bytes   uint64
	}
	agg := map[string]*row{}
	var order []string
	for _, s := range d.Total.Streams {
		r, ok := agg[s.Kind]
		if !ok {
			r = &row{kind: s.Kind}
			agg[s.Kind] = r
			order = append(order, s.Kind)
		}
		r.streams++
		r.bytes += s.Bytes
	}
	sort.Strings(order)
	cycles := d.Total.Cycles
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %8s %14s %10s %8s\n", "kind", "streams", "bytes", "B/cycle", "%peak")
	var memBytes uint64
	for _, k := range order {
		r := agg[k]
		bpc := 0.0
		if cycles > 0 {
			bpc = float64(r.bytes) / float64(cycles)
		}
		pk := "-"
		if MemKind(k) && peakBytesPerCycle > 0 {
			memBytes += r.bytes
			pk = fmt.Sprintf("%.1f%%", 100*bpc/peakBytesPerCycle)
		}
		fmt.Fprintf(&b, "%-14s %8d %14d %10.2f %8s\n", r.kind, r.streams, r.bytes, bpc, pk)
	}
	if peakBytesPerCycle > 0 && cycles > 0 {
		util := 100 * float64(memBytes) / float64(cycles) / peakBytesPerCycle
		fmt.Fprintf(&b, "memory streams: %d bytes over %d cycles = %.2f B/cycle (%.1f%% of %.0f B/cycle peak)\n",
			memBytes, cycles, float64(memBytes)/float64(cycles), util, peakBytesPerCycle)
	}
	return b.String()
}

// MemKind reports whether a stream kind moves data through the memory
// system (counts toward DRAM bandwidth) rather than scratchpad or
// port-to-port recurrence.
func MemKind(k string) bool {
	switch k {
	case "SD_Mem_Port", "SD_Port_Mem", "SD_Mem_Scratch", "SD_IndPort_Port", "SD_IndPort_Mem", "SD_Config":
		return true
	}
	return false
}
