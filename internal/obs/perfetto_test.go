package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func sampleInputs() []TraceInput {
	r := New(0, Options{Slices: 16})
	a := r.Attribution("mse")
	a.Account(Busy, 0, 10)
	a.Account(DRAMBW, 10, 30)
	a.Account(CauseIdle, 30, 40)
	return []TraceInput{{
		Unit:  0,
		Attrs: r.Attributions(),
		Spans: []SpanEvent{
			{ID: 0, Label: "SD_Mem_Port(...)", Enqueued: 0, Issued: 2, Completed: 30, Done: true},
			{ID: 1, Label: "SD_Port_Mem(...)", Enqueued: 1, Issued: 5}, // never completed
		},
		EndCycle: 40,
	}}
}

func TestWriteTraceValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, sampleInputs()); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("self-validation failed: %v\n%s", err, buf.String())
	}
	// Idle runs are omitted; busy and dram-bw slices are present.
	s := buf.String()
	for _, want := range []string{`"busy"`, `"dram-bw"`, `"stream #1"`} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("trace missing %s:\n%s", want, s)
		}
	}
	if bytes.Contains(buf.Bytes(), []byte(`"idle"`)) {
		t.Errorf("idle slice leaked into trace:\n%s", s)
	}
}

func TestWriteTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteTrace(&a, sampleInputs()); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&b, sampleInputs()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("trace output not deterministic")
	}
}

func TestValidateTraceRejects(t *testing.T) {
	mk := func(events []Event) []byte {
		b, err := json.Marshal(traceFile{TraceEvents: events})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	dur := uint64(5)
	cases := []struct {
		name   string
		events []Event
	}{
		{"empty", nil},
		{"unknown phase", []Event{{Name: "x", Ph: "Q"}}},
		{"B without name", []Event{{Ph: "B"}, {Ph: "E"}}},
		{"E without B", []Event{{Ph: "E"}}},
		{"unclosed B", []Event{{Name: "x", Ph: "B"}}},
		{"X without dur", []Event{{Name: "x", Ph: "X"}}},
		{"ts regression", []Event{
			{Name: "a", Ph: "X", Ts: 10, Dur: &dur},
			{Name: "b", Ph: "X", Ts: 3, Dur: &dur},
		}},
	}
	for _, c := range cases {
		if err := ValidateTrace(mk(c.events)); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}
	if err := ValidateTrace([]byte("not json")); err == nil {
		t.Error("malformed JSON validated")
	}
	ok := []Event{
		{Name: "t", Ph: "M"},
		{Name: "a", Ph: "B", Ts: 1},
		{Name: "b", Ph: "X", Ts: 2, Dur: &dur},
		{Ph: "E", Ts: 9},
	}
	if err := ValidateTrace(mk(ok)); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
}
