package obs_test

import (
	"bytes"
	"strings"
	"testing"

	"softbrain/internal/core"
	"softbrain/internal/obs"
	"softbrain/internal/workloads/machsuite"
)

// TestWritePrometheusRealDump renders a real run's metrics dump and
// requires the output to pass the exposition lint and to carry the
// load-bearing families.
func TestWritePrometheusRealDump(t *testing.T) {
	e, err := machsuite.Find("gemm")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	inst, err := e.Build(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, dump, err := inst.RunMetrics(cfg, obs.Options{})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, dump); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := obs.CheckExposition(buf.Bytes()); err != nil {
		t.Fatalf("exporter output failed its own lint: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE sd_unit_cycles gauge",
		"# TYPE sd_stall_cycles_total counter",
		`sd_stall_cycles_total{unit="0",component="dispatch"`,
		"# TYPE sd_mem_bytes_total counter",
		"# TYPE sd_dispatch_latency_cycles histogram",
		`sd_dispatch_latency_cycles_bucket{unit="0",le="+Inf"}`,
		`sd_stream_bytes_total{unit="0",kind="SD_Mem_Port"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"mem-bytes":        "mem_bytes",
		"dispatch-latency": "dispatch_latency",
		"ok_name:x":        "ok_name:x",
		"9lives":           "_9lives",
		"a b.c":            "a_b_c",
	}
	for in, want := range cases {
		if got := obs.PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestCheckExposition pins the lint's verdicts on known-good and
// known-bad payloads — the in-process stand-in for promtool check
// metrics.
func TestCheckExposition(t *testing.T) {
	good := []string{
		"a_total 1\n",
		"# TYPE a_total counter\na_total{x=\"y\"} 1\na_total{x=\"z\"} 2\n# TYPE b gauge\nb 0.5\n",
		"# HELP h some help\n# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 7\nh_count 2\n",
		"esc{l=\"a\\\\b\\\"c\\nd\"} 1\n",
	}
	for i, g := range good {
		if err := obs.CheckExposition([]byte(g)); err != nil {
			t.Errorf("good[%d] rejected: %v\n%s", i, err, g)
		}
	}

	bad := map[string]string{
		"empty":            "",
		"no newline":       "a 1",
		"bad name":         "3bad 1\n",
		"bad label name":   "a{3x=\"v\"} 1\n",
		"unquoted label":   "a{x=y} 1\n",
		"bad value":        "a one\n",
		"unknown type":     "# TYPE a widget\na 1\n",
		"dup family":       "# TYPE a counter\n# TYPE a counter\na 1\n",
		"ungrouped":        "a 1\nb 2\na 3\n",
		"histogram no inf": "# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_sum 1\nh_count 1\n",
		"bucket decrease":  "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"bad escape":       "a{x=\"\\q\"} 1\n",
	}
	for name, b := range bad {
		if err := obs.CheckExposition([]byte(b)); err == nil {
			t.Errorf("bad payload %q accepted:\n%s", name, b)
		}
	}
}
