package obs

import "sort"

// Counter is a monotone event count. The nil Counter swallows updates,
// so callers hold a possibly-nil pointer and never branch on enablement.
type Counter struct {
	name string
	v    uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Set overwrites the count. Components that keep their own monotone
// counters snapshot them into the registry at collection time; Set is
// idempotent where repeated Adds would double-count.
func (c *Counter) Set(v uint64) {
	if c != nil {
		c.v = v
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a point-in-time value, set rather than accumulated. The nil
// Gauge swallows updates.
type Gauge struct {
	name string
	v    uint64
}

// Set records the gauge's current value.
func (g *Gauge) Set(v uint64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the last set value (0 for nil).
func (g *Gauge) Value() uint64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a cycle-bucketed histogram: observation v lands in
// bucket v/width, with the last bucket catching overflow. The nil
// Histogram swallows observations.
type Histogram struct {
	name    string
	width   uint64
	buckets []uint64

	count, sum, max uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	b := int(v / h.width)
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.buckets[b]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count is the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Slice is one run of consecutive cycles a component spent under a
// single cause, for the Perfetto export.
type Slice struct {
	Cause Cause  `json:"cause"`
	Start uint64 `json:"start"`
	End   uint64 `json:"end"` // exclusive
}

// Attribution is one component's stall-cause account. Exactly one cause
// is recorded per elapsed cycle (Account's contract), so the per-cause
// counts always sum to Elapsed.
type Attribution struct {
	name   string
	causes [NumCauses]uint64

	// Slice run-length encoding for the trace export. Recording stops
	// (truncated=true) once sliceCap is reached; counts are unaffected.
	slices    []Slice
	sliceCap  int
	cur       Cause
	curStart  uint64
	lastEnd   uint64
	started   bool
	truncated bool
}

// Name identifies the component ("mse", "dispatch", ...).
func (a *Attribution) Name() string { return a.name }

// Account attributes cycles [from, to) to cause. Callers must cover
// every elapsed cycle exactly once; spans must be non-overlapping and
// non-decreasing in time (the per-cycle classify and skip-replay paths
// both satisfy this by construction).
func (a *Attribution) Account(cause Cause, from, to uint64) {
	if a == nil || to <= from {
		return
	}
	a.causes[cause] += to - from
	a.lastEnd = to
	if a.sliceCap == 0 {
		return
	}
	switch {
	case !a.started:
		a.cur, a.curStart, a.started = cause, from, true
	case cause != a.cur:
		a.emit(Slice{Cause: a.cur, Start: a.curStart, End: from})
		a.cur, a.curStart = cause, from
	}
}

// Finish tops the account up to end with Idle cycles. A unit that
// retires before the rest of its cluster stops being stepped; the
// trailing cycles are idle by definition, and accounting them here
// keeps the conservation invariant against the cluster-wide cycle
// count. Safe to call when already complete (no-op).
func (a *Attribution) Finish(end uint64) {
	if a == nil {
		return
	}
	if a.lastEnd < end {
		a.Account(CauseIdle, a.lastEnd, end)
	}
}

// emit appends a closed slice, honoring the cap.
func (a *Attribution) emit(s Slice) {
	if len(a.slices) >= a.sliceCap {
		a.truncated = true
		return
	}
	a.slices = append(a.slices, s)
}

// Causes returns the per-cause cycle counts in taxonomy order.
func (a *Attribution) Causes() [NumCauses]uint64 {
	if a == nil {
		return [NumCauses]uint64{}
	}
	return a.causes
}

// Elapsed is the total number of cycles accounted.
func (a *Attribution) Elapsed() uint64 {
	if a == nil {
		return 0
	}
	var n uint64
	for _, c := range a.causes {
		n += c
	}
	return n
}

// Slices returns the closed cause runs plus the still-open run (closed
// at the last accounted cycle), and whether recording was truncated.
func (a *Attribution) Slices() ([]Slice, bool) {
	if a == nil {
		return nil, false
	}
	out := a.slices
	if a.started && a.lastEnd > a.curStart && len(out) < a.sliceCap {
		out = append(out[:len(out):len(out)], Slice{Cause: a.cur, Start: a.curStart, End: a.lastEnd})
	}
	return out, a.truncated
}

// StreamBW is one completed stream command's data movement, the row
// unit of the Figure-14-style bandwidth table.
type StreamBW struct {
	ID    int    `json:"id"`
	Kind  string `json:"kind"`
	Bytes uint64 `json:"bytes"`
}

// Options parameterizes a Registry.
type Options struct {
	// Slices caps the recorded stall slices per component, for the
	// Perfetto export. 0 disables slice recording (counts are always
	// kept); DefaultSlices is a sensible cap for traced runs.
	Slices int
}

// DefaultSlices bounds per-component slice memory for traced runs.
const DefaultSlices = 1 << 16

// Registry is one unit's metrics: component attributions plus the
// typed metrics its components registered. Registration order is
// preserved; dumps are deterministic.
type Registry struct {
	unit   int
	cycles uint64

	attrs    []*Attribution
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
	streams  []StreamBW
	barriers []BarrierDrainDump

	opts Options
}

// New builds an empty registry for the given unit index.
func New(unit int, opts Options) *Registry {
	return &Registry{unit: unit, opts: opts}
}

// Unit is the unit index the registry was built for.
func (r *Registry) Unit() int {
	if r == nil {
		return 0
	}
	return r.unit
}

// Attribution registers (or returns the existing) per-component
// stall-cause account named name. Nil registries return nil, which
// Account treats as a no-op.
func (r *Registry) Attribution(name string) *Attribution {
	if r == nil {
		return nil
	}
	for _, a := range r.attrs {
		if a.name == name {
			return a
		}
	}
	a := &Attribution{name: name, sliceCap: r.opts.Slices}
	r.attrs = append(r.attrs, a)
	return a
}

// Attributions returns the registered accounts in registration order.
func (r *Registry) Attributions() []*Attribution {
	if r == nil {
		return nil
	}
	return r.attrs
}

// Counter registers (or returns the existing) counter named name.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	for _, c := range r.counters {
		if c.name == name {
			return c
		}
	}
	c := &Counter{name: name}
	r.counters = append(r.counters, c)
	return c
}

// Gauge registers (or returns the existing) gauge named name.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	for _, g := range r.gauges {
		if g.name == name {
			return g
		}
	}
	g := &Gauge{name: name}
	r.gauges = append(r.gauges, g)
	return g
}

// Histogram registers (or returns the existing) cycle-bucketed
// histogram named name with the given bucket width and count.
func (r *Registry) Histogram(name string, width uint64, buckets int) *Histogram {
	if r == nil {
		return nil
	}
	for _, h := range r.hists {
		if h.name == name {
			return h
		}
	}
	if width == 0 {
		width = 1
	}
	if buckets < 1 {
		buckets = 1
	}
	h := &Histogram{name: name, width: width, buckets: make([]uint64, buckets)}
	r.hists = append(r.hists, h)
	return h
}

// Stream records one completed stream command's total data movement.
func (r *Registry) Stream(id int, kind string, bytes uint64) {
	if r == nil {
		return
	}
	r.streams = append(r.streams, StreamBW{ID: id, Kind: kind, Bytes: bytes})
}

// SetBarrierDrains replaces the per-barrier drain section (cycles each
// barrier held the dispatch queue head, keyed by trace position).
// Callers pass rows in ascending position order so dumps stay
// deterministic; replacement keeps repeated stats collection
// idempotent, matching Counter.Set.
func (r *Registry) SetBarrierDrains(ds []BarrierDrainDump) {
	if r == nil {
		return
	}
	r.barriers = append(r.barriers[:0], ds...)
}

// Streams returns the recorded stream rows sorted by stream ID.
func (r *Registry) Streams() []StreamBW {
	if r == nil {
		return nil
	}
	out := append([]StreamBW(nil), r.streams...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
