package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("c").Add(3)
	r.Gauge("g").Set(7)
	r.Histogram("h", 8, 4).Observe(9)
	r.Attribution("a").Account(Busy, 0, 10)
	r.Stream(1, "SD_Mem_Port", 64)
	r.SetCycles(5)
	if got := r.Counter("c").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	if d := r.Dump(); len(d.Components) != 0 || d.Cycles != 0 {
		t.Errorf("nil registry dump non-empty: %+v", d)
	}
	if s, _ := r.Attribution("a").Slices(); s != nil {
		t.Errorf("nil attribution slices: %v", s)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := New(0, Options{})
	if r.Counter("x") != r.Counter("x") {
		t.Error("Counter not idempotent")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Error("Gauge not idempotent")
	}
	if r.Histogram("x", 4, 4) != r.Histogram("x", 4, 4) {
		t.Error("Histogram not idempotent")
	}
	if r.Attribution("x") != r.Attribution("x") {
		t.Error("Attribution not idempotent")
	}
}

func TestAttributionConservationAndSlices(t *testing.T) {
	r := New(2, Options{Slices: 8})
	a := r.Attribution("mse")
	a.Account(Busy, 0, 5)
	a.Account(Busy, 5, 7) // merged into the same run
	a.Account(DRAMBW, 7, 207)
	a.Account(CauseIdle, 207, 300)
	if got := a.Elapsed(); got != 300 {
		t.Fatalf("elapsed = %d, want 300", got)
	}
	c := a.Causes()
	if c[Busy] != 7 || c[DRAMBW] != 200 || c[CauseIdle] != 93 {
		t.Fatalf("causes = %v", c)
	}
	slices, truncated := a.Slices()
	want := []Slice{
		{Busy, 0, 7},
		{DRAMBW, 7, 207},
		{CauseIdle, 207, 300},
	}
	if truncated || len(slices) != len(want) {
		t.Fatalf("slices = %v (truncated=%v)", slices, truncated)
	}
	for i, s := range slices {
		if s != want[i] {
			t.Errorf("slice %d = %v, want %v", i, s, want[i])
		}
	}

	r.SetCycles(300)
	d := Merge([]UnitDump{r.Dump()})
	if err := CheckConservation(d); err != nil {
		t.Errorf("conservation: %v", err)
	}
	// Break the invariant deliberately: an unaccounted cycle must trip it.
	r.SetCycles(301)
	if err := CheckConservation(Merge([]UnitDump{r.Dump()})); err == nil {
		t.Error("conservation check missed an unaccounted cycle")
	}
}

func TestAttributionSliceCap(t *testing.T) {
	r := New(0, Options{Slices: 2})
	a := r.Attribution("x")
	for i := uint64(0); i < 10; i++ {
		a.Account(Cause(i%2), i, i+1) // alternates every cycle
	}
	slices, truncated := a.Slices()
	if !truncated {
		t.Error("cap not reported as truncation")
	}
	if len(slices) > 2 {
		t.Errorf("cap exceeded: %d slices", len(slices))
	}
	if got := a.Elapsed(); got != 10 {
		t.Errorf("elapsed affected by cap: %d", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New(0, Options{})
	h := r.Histogram("lat", 10, 3)
	for _, v := range []uint64{0, 9, 10, 25, 1000} {
		h.Observe(v)
	}
	d := r.Dump().Histograms[0]
	if d.Count != 5 || d.Sum != 1044 || d.Max != 1000 {
		t.Fatalf("histogram stats: %+v", d)
	}
	if d.Buckets[0] != 2 || d.Buckets[1] != 1 || d.Buckets[2] != 2 {
		t.Fatalf("histogram buckets: %v", d.Buckets)
	}
}

func TestMergeTotals(t *testing.T) {
	mk := func(unit int, busy, idle uint64) UnitDump {
		r := New(unit, Options{})
		a := r.Attribution("disp")
		a.Account(Busy, 0, busy)
		a.Account(CauseIdle, busy, busy+idle)
		r.Counter("issued").Add(busy)
		r.Stream(unit, "SD_Mem_Port", 128)
		r.SetCycles(busy + idle)
		return r.Dump()
	}
	d := Merge([]UnitDump{mk(0, 10, 5), mk(1, 20, 15)})
	if d.Total.Cycles != 35 {
		t.Errorf("total cycles = %d, want max(15,35)=35", d.Total.Cycles)
	}
	if len(d.Total.Components) != 1 || d.Total.Components[0].Causes["busy"] != 30 {
		t.Errorf("total components: %+v", d.Total.Components)
	}
	if d.Total.Counters["issued"] != 30 {
		t.Errorf("total counters: %v", d.Total.Counters)
	}
	if len(d.Total.Streams) != 2 {
		t.Errorf("total streams: %v", d.Total.Streams)
	}
	if err := CheckConservation(d); err != nil {
		t.Errorf("conservation: %v", err)
	}

	// Determinism: merging the same dumps twice is byte-identical.
	b1, err := d.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Merge([]UnitDump{mk(0, 10, 5), mk(1, 20, 15)}).MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("merged dump not deterministic")
	}
}

func TestBandwidthTable(t *testing.T) {
	r := New(0, Options{})
	r.Attribution("mse").Account(Busy, 0, 100)
	r.Stream(0, "SD_Mem_Port", 800)
	r.Stream(1, "SD_Port_Port", 400)
	r.SetCycles(100)
	tbl := BandwidthTable(Merge([]UnitDump{r.Dump()}), 16)
	if !strings.Contains(tbl, "SD_Mem_Port") || !strings.Contains(tbl, "SD_Port_Port") {
		t.Fatalf("table missing kinds:\n%s", tbl)
	}
	// 800 bytes / 100 cycles = 8 B/cycle = 50% of 16 B/cycle peak.
	if !strings.Contains(tbl, "50.0%") {
		t.Errorf("memory utilization not reported:\n%s", tbl)
	}
	// Recurrence streams do not count toward DRAM bandwidth.
	if !strings.Contains(tbl, "memory streams: 800 bytes") {
		t.Errorf("memory-stream total wrong:\n%s", tbl)
	}
}

func TestCauseNames(t *testing.T) {
	for i := Cause(0); i < NumCauses; i++ {
		c, ok := CauseFromName(i.String())
		if !ok || c != i {
			t.Errorf("round trip failed for %v", i)
		}
	}
	if _, ok := CauseFromName("nope"); ok {
		t.Error("unknown name resolved")
	}
}
