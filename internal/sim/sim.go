// Package sim is the simulation kernel under internal/core: the
// unified component model the machine's cycle loop runs over. Every
// microarchitectural unit (CGRA executor, the three stream engines,
// the dispatcher, the control core) implements Component — one Tick
// shape instead of the five ad-hoc ones the machine used to sequence
// by hand — and reports a wake hint describing when it next needs a
// cycle.
//
// The kernel is event-driven: a component whose hint is WakeIdle or
// WakeTimed sleeps — its Tick is not called — until its timed wake
// arrives or a neighbor's action signals it. Signals are monotone
// event counters (Signal) raised by state-changing actions: a port
// push or pop, a stream kicked into an engine, a stream leaving an
// engine's table, a scratch-write-buffer slot freed. Each component's
// Watcher implementation sums the signals it depends on into a watch
// signature; the kernel snapshots the signature when the component
// goes to sleep and re-checks it each cycle — one integer compare per
// sleeping component — so a changed input wakes the component on
// exactly the cycle a tick-everything loop would have first acted on
// it. When every component sleeps, the machine state is provably
// frozen until the earliest timed wake and the run loop jumps there
// in O(1) (docs/SIMKERNEL.md gives the full soundness argument).
package sim

// WakeKind classifies a component's next-wake hint.
type WakeKind uint8

const (
	// WakeReady: the component can make progress now and must be
	// ticked every cycle.
	WakeReady WakeKind = iota
	// WakeTimed: the component is inert until a known future cycle
	// (a memory response in flight, a pipeline latency, a busy core).
	WakeTimed
	// WakeIdle: the component will do nothing until another
	// component's action changes its inputs.
	WakeIdle
)

func (k WakeKind) String() string {
	switch k {
	case WakeReady:
		return "ready"
	case WakeTimed:
		return "timed"
	case WakeIdle:
		return "idle"
	}
	return "WakeKind(?)"
}

// Hint is one component's answer to "when do you next need a cycle?".
// The zero value is WakeReady — a component that cannot prove it is
// inert defaults to being ticked every cycle, which is always sound.
type Hint struct {
	Kind WakeKind
	At   uint64 // wake cycle, meaningful only for WakeTimed
}

// ReadyNow hints that the component has work this cycle.
func ReadyNow() Hint { return Hint{Kind: WakeReady} }

// WakeAt hints that the component is inert until the given cycle.
func WakeAt(cycle uint64) Hint { return Hint{Kind: WakeTimed, At: cycle} }

// Idle hints that the component is inert until another component acts.
func Idle() Hint { return Hint{Kind: WakeIdle} }

// Earliest combines two hints: Ready dominates, then the earlier of
// two timed wakes, and Idle only when both sides are idle.
func (h Hint) Earliest(o Hint) Hint {
	switch {
	case h.Kind == WakeReady || o.Kind == WakeReady:
		return ReadyNow()
	case h.Kind == WakeTimed && o.Kind == WakeTimed:
		if o.At < h.At {
			return o
		}
		return h
	case o.Kind == WakeTimed:
		return o
	default:
		return h
	}
}

// Signal is a monotone event counter: the dependency edge of the
// wake-set scheduler. A component that changes state another component
// may be sleeping on raises the signal guarding that state (a port
// writer signals the port's reader, an engine retiring a stream
// signals the dispatcher); the sleeper's watch signature sums the
// signals it subscribes to, so any raise changes the signature and
// wakes it. Monotonicity is what makes the single-integer compare
// sound: distinct event histories can never collide back to an old
// signature value.
type Signal uint64

// Raise records one event.
func (s *Signal) Raise() { *s++ }

// Value reads the counter.
func (s Signal) Value() uint64 { return uint64(s) }

// Component is one simulated unit under the kernel.
//
// The wake-hint contract: after Tick(now) has run for every component
// of a machine, NextWake(now) must be sound — a component may report
// WakeIdle or WakeAt(c) only if ticking it at any cycle in (now, c)
// (or at any later cycle at all, for Idle), with every other
// component's state unchanged, would alter no state and no statistic.
// Over-reporting WakeReady is always safe; it only costs host time.
// A component whose per-cycle behavior in the frozen state is not a
// strict no-op (it counts stall cycles, say) additionally implements
// Skipper so skipped spans stay statistically cycle-exact.
//
// A component that also implements Watcher may be slept through
// cycles in which other components act: WatchSig must change whenever
// any external action could invalidate the hint early. A component
// without Watcher is ticked every cycle its hint is not WakeTimed in
// the future — sound, but it forfeits the wake-set savings.
type Component interface {
	// Name identifies the component in error attribution ("mse").
	Name() string
	// Tick advances the component one cycle.
	Tick(now uint64) error
	// NextWake reports when the component next needs a cycle, given
	// the machine state after the current cycle's ticks.
	NextWake(now uint64) Hint
	// Progress is a monotone counter that increases iff the component
	// has done observable work; the run loop's hang detection watches
	// the sum across components.
	Progress() uint64
}

// Watcher extends Component with the wake-set subscription: WatchSig
// returns a monotone signature — a sum of the Signals and event
// counters the component's current hint depends on. The kernel
// snapshots it when the component sleeps and wakes the component the
// first cycle it differs. Soundness requires only that every external
// event that could let the component act earlier than its hint
// promised changes the signature; spurious changes merely cost a
// workless tick.
type Watcher interface {
	WatchSig() uint64
}

// Skipper is implemented by components that must account for skipped
// cycles: OnSkip(from, to) reports that cycles [from, to) were elided
// — the component was asleep, so each of those cycles would have
// repeated the last executed tick's bookkeeping (stall counters,
// arbitration rotation) without changing any other state — and the
// component must apply that per-cycle bookkeeping now. The kernel
// replays lazily: a sleeping component accumulates its span and
// replays it immediately before its next real tick (or at the end of
// the run), which is equivalent because OnSkip touches only state no
// other component and no per-cycle classification reads.
type Skipper interface {
	OnSkip(from, to uint64)
}

// SchedStats counts what the wake-set scheduler did, for the
// event-driven win to be attributable rather than a wall-clock delta.
// It is deliberately not part of the obs metrics dump: dumps are
// byte-compared across scheduling modes, and these counters exist to
// differ between modes.
type SchedStats struct {
	Cycles     uint64 // cycles stepped by the run loop (not jumped)
	CompTicks  uint64 // component ticks actually executed
	CompSleeps uint64 // component-cycles slept during stepped cycles
	SigWakes   uint64 // wakes caused by a watch-signature change
	Jumps      uint64 // machine-level frozen jumps taken
	Skipped    uint64 // cycles elided by frozen jumps
	Spans      uint64 // multi-cycle spans retired in one call
	SpanCycles uint64 // cycles covered by retired spans

	// SpanHist buckets retired span lengths by floor(log2(n)):
	// bucket 0 holds length 1 (degenerate), bucket k lengths
	// [2^k, 2^(k+1)).
	SpanHist [16]uint64

	// TickHist buckets stepped cycles by how many components ticked:
	// TickHist[k] counts cycles with exactly k ticks (the last bucket
	// absorbs larger counts).
	TickHist [9]uint64
}

// AddSpan records one retired span of n cycles.
func (s *SchedStats) AddSpan(n uint64) {
	s.Spans++
	s.SpanCycles += n
	b := 0
	for v := n; v > 1 && b < len(s.SpanHist)-1; v >>= 1 {
		b++
	}
	s.SpanHist[b]++
}

// Add accumulates other into s (multi-unit aggregation).
func (s *SchedStats) Add(other SchedStats) {
	s.Cycles += other.Cycles
	s.CompTicks += other.CompTicks
	s.CompSleeps += other.CompSleeps
	s.SigWakes += other.SigWakes
	s.Jumps += other.Jumps
	s.Skipped += other.Skipped
	s.Spans += other.Spans
	s.SpanCycles += other.SpanCycles
	for i := range s.SpanHist {
		s.SpanHist[i] += other.SpanHist[i]
	}
	for i := range s.TickHist {
		s.TickHist[i] += other.TickHist[i]
	}
}

// Kernel is the registry of one machine's components, in tick order,
// plus the wake-set scheduler state for each: the cached hint and
// watch signature from the component's last tick, and the cycle of
// that tick (for lazy skip replay).
type Kernel struct {
	comps    []Component
	watchers []Watcher // index-aligned; nil when not a Watcher
	skippers []Skipper // index-aligned; nil when not a Skipper

	hints []Hint
	sigs  []uint64
	last  []int64 // cycle of the last executed tick, -1 before the first

	// Stats tallies the scheduler's behavior (not part of obs dumps).
	Stats SchedStats

	// TickBy tallies executed ticks per component, index-aligned with
	// Components() — the per-component view of Stats.CompTicks.
	TickBy []uint64
}

// Skipped is the number of cycles elided by frozen jumps, kept as a
// plain field view for existing callers.
func (k *Kernel) Skipped() uint64 { return k.Stats.Skipped }

// Register appends a component; registration order is tick order.
func (k *Kernel) Register(c Component) {
	k.comps = append(k.comps, c)
	w, _ := c.(Watcher)
	k.watchers = append(k.watchers, w)
	s, _ := c.(Skipper)
	k.skippers = append(k.skippers, s)
	k.hints = append(k.hints, ReadyNow())
	k.sigs = append(k.sigs, 0)
	k.last = append(k.last, -1)
	k.TickBy = append(k.TickBy, 0)
}

// Components returns the registered components in tick order.
func (k *Kernel) Components() []Component { return k.comps }

// Reset clears the cached wake state for a machine reused across runs:
// every component starts the new run Ready (its first tick re-caches a
// fresh hint and signature) and the lazy-replay cursors rewind to the
// new run's cycle 0. Statistics persist; they accumulate across runs
// like every other machine counter.
func (k *Kernel) Reset() {
	for i := range k.comps {
		k.hints[i] = ReadyNow()
		k.sigs[i] = 0
		k.last[i] = -1
	}
}

// Progress sums the components' monotone progress counters.
func (k *Kernel) Progress() uint64 {
	var p uint64
	for _, c := range k.comps {
		p += c.Progress()
	}
	return p
}

// ShouldTick decides whether component i needs its tick at cycle now:
// its cached hint says Ready, its timed wake has arrived, or — for a
// Watcher — its watch signature changed since it went to sleep. A
// non-Watcher component sleeps only inside a timed wait.
func (k *Kernel) ShouldTick(i int, now uint64) bool {
	h := k.hints[i]
	if h.Kind == WakeReady {
		return true
	}
	if h.Kind == WakeTimed && now >= h.At {
		return true
	}
	w := k.watchers[i]
	if w == nil {
		// Without a watch signature an Idle hint cannot be
		// re-validated against neighbors' actions; tick.
		return h.Kind != WakeTimed
	}
	if w.WatchSig() != k.sigs[i] {
		k.Stats.SigWakes++
		return true
	}
	return false
}

// BeforeTick replays component i's accumulated sleep span [last+1,
// now) immediately before its tick at now, keeping its per-cycle
// bookkeeping cycle-exact.
func (k *Kernel) BeforeTick(i int, now uint64) {
	if s := k.skippers[i]; s != nil {
		if from := uint64(k.last[i] + 1); from < now {
			s.OnSkip(from, now)
		}
	}
}

// AfterTick snapshots component i's hint and watch signature after its
// tick at cycle now. Later components in the same cycle may still
// change its inputs; the signature re-check in ShouldTick catches
// that on the next cycle, exactly when a tick-everything loop would
// act on it.
func (k *Kernel) AfterTick(i int, now uint64) {
	k.last[i] = int64(now)
	k.hints[i] = k.comps[i].NextWake(now)
	if w := k.watchers[i]; w != nil {
		k.sigs[i] = w.WatchSig()
	}
	k.Stats.CompTicks++
	k.TickBy[i]++
}

// NextWake combines the components' effective hints after a full
// cycle: Ready if any component will tick next cycle (cached hint
// Ready, timed wake due, or watch signature changed), otherwise the
// earliest timed wake, otherwise Idle. This is the frozen-jump probe:
// a WakeTimed answer proves no component can act before At.
func (k *Kernel) NextWake(now uint64) Hint {
	h := Idle()
	for i := range k.comps {
		hi := k.hints[i]
		switch hi.Kind {
		case WakeReady:
			return ReadyNow()
		case WakeTimed:
			if hi.At <= now+1 {
				return ReadyNow()
			}
		}
		if w := k.watchers[i]; w != nil {
			if w.WatchSig() != k.sigs[i] {
				return ReadyNow()
			}
		} else if hi.Kind == WakeIdle {
			return ReadyNow() // unwatched Idle component ticks every cycle
		}
		if hi.Kind == WakeTimed {
			h = h.Earliest(hi)
		}
	}
	return h
}

// SoloReady probes whether exactly one component is due to tick at
// cycle now — the entry condition for span retirement. It returns the
// index of the sole due component and a limit: the earliest cycle at
// which a sleeping component's timed wake arrives (MaxUint64 when
// every other component is idle). It returns (-1, 0) when zero or
// several components are due, or when a sleeping non-Watcher makes
// the frozen-peers claim unverifiable. The due test mirrors
// ShouldTick exactly, so a span starts only on a cycle where Step
// would have ticked exactly one component.
func (k *Kernel) SoloReady(now uint64) (int, uint64) {
	// Phase 1: hint-due components only — no signature computation, so
	// the common multi-active cycle bails out at the cost of a few
	// integer compares.
	sole := -1
	for i := range k.comps {
		h := k.hints[i]
		if h.Kind == WakeReady || (h.Kind == WakeTimed && now >= h.At) {
			if sole >= 0 {
				return -1, 0
			}
			sole = i
		}
	}
	// Phase 2: the sleepers. A moved watch signature either becomes the
	// sole due component or disqualifies the span; a quiet sleeper
	// contributes its timed wake to the span limit.
	limit := ^uint64(0)
	sigWoke := false
	for i := range k.comps {
		h := k.hints[i]
		if i == sole {
			continue
		}
		w := k.watchers[i]
		if w == nil {
			if h.Kind != WakeTimed {
				return -1, 0 // unverifiable sleeper
			}
		} else if w.WatchSig() != k.sigs[i] {
			if sole >= 0 {
				return -1, 0
			}
			sole, sigWoke = i, true
			continue
		}
		if h.Kind == WakeTimed && h.At < limit {
			limit = h.At
		}
	}
	if sole < 0 {
		return -1, 0
	}
	if sigWoke {
		k.Stats.SigWakes++
	}
	return sole, limit
}

// RetireSpan batches consecutive solo ticks of component sole starting
// at cycle now: tick(sole, t) is called once per cycle with the exact
// cycle number (it must run the component's ordinary Tick). The span
// is bit-exact with per-cycle stepping by construction — the same
// Ticks run at the same cycles, and every peer provably sleeps
// through the span just as ShouldTick would have decided. The span
// ends at the first cycle where one of three things happens:
//
//   - A peer LATER in tick order wakes: in Step, a component whose
//     watch signature the sole tick moved would have ticked that very
//     same cycle, so RetireSpan finishes the cycle inline — ticking
//     the due later peers in order, with the sole component's state
//     cached first exactly as Step's AfterTick ordering does — and
//     returns with that cycle counted.
//   - A peer EARLIER in tick order wakes, or the sole component's own
//     hint says it would not tick next cycle: the span ends after the
//     current cycle; the woken peer ticks next cycle under the normal
//     loop, exactly when Step would have run it.
//   - The exclusive limit arrives (a sleeping peer's timed wake, or
//     the caller's watchdog cap).
//
// Returns the number of cycles fully retired and the first tick
// error, if any; the erroring cycle is not counted, matching Step's
// accounting. The caller must have run BeforeTick(sole, now) first
// and must not call AfterTick — RetireSpan maintains the kernel's
// per-component cache itself.
func (k *Kernel) RetireSpan(sole int, now, limit uint64, tick func(int, uint64) error) (uint64, error) {
	c := k.comps[sole]
	ncomps := len(k.comps)
	n := uint64(0)
	for t := now; t < limit; t++ {
		if err := tick(sole, t); err != nil {
			return n, err
		}
		// Same-cycle wakes: does a later peer need this cycle?
		tail := false
		for j := sole + 1; j < ncomps; j++ {
			if w := k.watchers[j]; w != nil && w.WatchSig() != k.sigs[j] {
				tail = true
				break
			}
		}
		if tail {
			// Finish cycle t inline, mirroring Step for indices past
			// sole. The sole component's hint and signature cache first:
			// later peers' actions this cycle must be able to re-wake it
			// against that snapshot, as after Step's in-loop AfterTick.
			k.AfterTick(sole, t)
			ticked := 1
			for j := sole + 1; j < ncomps; j++ {
				if !k.ShouldTick(j, t) {
					k.Stats.CompSleeps++
					continue
				}
				k.BeforeTick(j, t)
				if err := tick(j, t); err != nil {
					return n, err
				}
				k.AfterTick(j, t)
				ticked++
			}
			k.Stats.CompSleeps += uint64(sole)
			k.Stats.Cycles++
			b := ticked
			if b >= len(k.Stats.TickHist) {
				b = len(k.Stats.TickHist) - 1
			}
			k.Stats.TickHist[b]++
			n++
			k.Stats.AddSpan(n)
			return n, nil
		}
		// Solo cycle: account it and decide whether the span continues.
		k.last[sole] = int64(t)
		k.TickBy[sole]++
		k.Stats.CompTicks++
		k.Stats.CompSleeps += uint64(ncomps - 1)
		k.Stats.Cycles++
		k.Stats.TickHist[1]++
		n++
		early := false
		for j := 0; j < sole; j++ {
			if w := k.watchers[j]; w != nil && w.WatchSig() != k.sigs[j] {
				early = true
				break
			}
		}
		if early {
			break
		}
		h := c.NextWake(t)
		if h.Kind != WakeReady && !(h.Kind == WakeTimed && t+1 >= h.At) {
			break
		}
	}
	k.hints[sole] = c.NextWake(uint64(k.last[sole]))
	if w := k.watchers[sole]; w != nil {
		k.sigs[sole] = w.WatchSig()
	}
	if n > 0 {
		k.Stats.AddSpan(n)
	}
	return n, nil
}

// Jump records a frozen jump over cycles [from, to): every component
// was asleep, so the span lands in each one's lazy replay span; only
// the statistics move here.
func (k *Kernel) Jump(from, to uint64) {
	if to <= from {
		return
	}
	k.Stats.Jumps++
	k.Stats.Skipped += to - from
}

// Flush replays every component's outstanding sleep span up to end
// (exclusive): cycles [last+1, end) were elided for a component whose
// last tick ran at cycle last. Call once when the run loop stops
// stepping the machine — at completion, or when a cluster peer
// outlives it — before reading any per-cycle statistic.
func (k *Kernel) Flush(end uint64) {
	for i := range k.comps {
		if s := k.skippers[i]; s != nil {
			if from := uint64(k.last[i] + 1); from < end {
				s.OnSkip(from, end)
			}
		}
		if k.last[i] < int64(end)-1 {
			k.last[i] = int64(end) - 1
		}
	}
}
